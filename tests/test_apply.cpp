// Tests for the batched SoA apply path (fem/assembly), the split-phase
// halo (mesh), pairwise summation, and the reduced-synchronization Krylov
// loops: the batched + comm-overlapped apply must match the scalar
// reference path on meshes with hanging nodes at P in {1, 2, 4}, Dirichlet
// handling must survive the weight-folding, halo misuse must throw, and
// CG/MINRES must issue at most 2 reduction rounds per iteration.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "fem/operators.hpp"
#include "la/krylov.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using fem::ElementOperator;
using forest::Connectivity;
using forest::Forest;
using mesh::Mesh;
using mesh::extract_mesh;
using alps::par::Comm;

/// Adapted forest with hanging nodes; at P > 1 the refined center octants
/// land near rank boundaries, so constraints cross ranks.
Forest adapted_forest(Comm& c, int rounds = 1) {
  Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
  const alps::octree::coord_t mid = alps::octree::coord_t{1}
                                    << (alps::octree::kMaxLevel - 1);
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
    for (std::size_t i = 0; i < flags.size(); ++i) {
      const auto& o = f.tree().leaves()[i];
      if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
    }
    f.tree().adapt(flags, 0, 6);
  }
  f.tree().update_ranges(c);
  f.balance(c);
  return f;
}

/// Deterministic ghost-consistent values keyed on the global id.
std::vector<double> gid_vector(const Mesh& m, int ncomp, double scale = 1.0) {
  std::vector<double> x(static_cast<std::size_t>(m.n_local) * ncomp);
  for (std::int64_t d = 0; d < m.n_local; ++d)
    for (int c = 0; c < ncomp; ++c)
      x[static_cast<std::size_t>(d) * ncomp + c] =
          scale * std::sin(0.37 * static_cast<double>(
                                      m.dof_gids[static_cast<std::size_t>(d)]) +
                           0.7 * c);
  return x;
}

void expect_near_rel(const std::vector<double>& a, const std::vector<double>& b,
                     double tol) {
  ASSERT_EQ(a.size(), b.size());
  double scale = 1.0;
  for (double v : b) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol * scale) << "at value index " << i;
}

class ApplyRanks : public ::testing::TestWithParam<int> {};

TEST_P(ApplyRanks, BatchedMatchesScalarWithHangingNodes) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(),
        [](const std::array<double, 3>& p) { return 1.0 + 3.0 * p[0]; },
        0b000111);
    const std::vector<double> x = gid_vector(m, 1);
    std::vector<double> y_batched(x.size()), y_scalar(x.size());
    op.apply(c, x, y_batched);
    op.apply_scalar(c, x, y_scalar);
    expect_near_rel(y_batched, y_scalar, 1e-13);

    // The raw (no-BC) path too: exercised by RHS lifting and energy.
    op.apply_raw(c, x, y_batched);
    op.apply_raw_scalar(c, x, y_scalar);
    expect_near_rel(y_batched, y_scalar, 1e-13);
  });
}

TEST_P(ApplyRanks, BatchedMatchesScalarVectorOperator) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Stokes-shaped 4-component block-diagonal operator with velocity-like
    // Dirichlet values: covers nc > 1 indexing, the 32x32 matvec, and
    // batches whose last lanes are padding.
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator lap = fem::build_scalar_laplace(
        m, f.connectivity(),
        [](const std::array<double, 3>& p) { return 1.0 + p[2]; }, 0b111111);
    ElementOperator op(&m, 4);
    const std::size_t bs = op.block_size();
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      const std::span<const double> m1 = lap.element_matrix(e);
      std::span<double> m4 = op.element_matrix(e);
      for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
          for (std::size_t cc = 0; cc < 4; ++cc)
            m4[(i * 4 + cc) * bs + j * 4 + cc] = m1[i * 8 + j];
    }
    for (std::int64_t d = 0; d < m.n_local; ++d)
      if (m.dof_boundary[static_cast<std::size_t>(d)] != 0)
        for (int cc = 0; cc < 3; ++cc) op.set_dirichlet(d, cc);

    const std::vector<double> x = gid_vector(m, 4);
    std::vector<double> y_batched(x.size()), y_scalar(x.size());
    op.apply(c, x, y_batched);
    op.apply_scalar(c, x, y_scalar);
    expect_near_rel(y_batched, y_scalar, 1e-13);
  });
}

TEST_P(ApplyRanks, NonsymmetricOperatorUsesGeneralKernelCorrectly) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Perturb one off-diagonal entry so the exact-symmetry scan fails and
    // the full (non-packed) layout is exercised alongside the scalar path.
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
        0b000011);
    for (std::size_t e = 0; e < m.elements.size(); ++e)
      op.element_matrix(e)[1] += 0.25;  // (0,1) only: now A != A^T
    const std::vector<double> x = gid_vector(m, 1);
    std::vector<double> y_batched(x.size()), y_scalar(x.size());
    op.apply(c, x, y_batched);
    op.apply_scalar(c, x, y_scalar);
    expect_near_rel(y_batched, y_scalar, 1e-13);
  });
}

TEST_P(ApplyRanks, AllDirichletActsAsIdentity) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Every value constrained: apply must return x exactly, including the
    // ghost entries (they arrive from their owners via the exchange).
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 2.0; },
        0b111111);
    for (std::int64_t d = 0; d < m.n_local; ++d) op.set_dirichlet(d, 0);
    const std::vector<double> x = gid_vector(m, 1);
    std::vector<double> y(x.size(), -7.0);
    op.apply(c, x, y);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(y[i], x[i]) << "at value index " << i;
  });
}

TEST_P(ApplyRanks, PlanRebuildsAfterMatrixOrBcEdit) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
        0b000011);
    const std::vector<double> x = gid_vector(m, 1);
    std::vector<double> y1(x.size()), y2(x.size()), ys(x.size());
    op.apply(c, x, y1);  // builds the plan
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      std::span<double> me = op.element_matrix(e);
      for (double& v : me) v *= 2.0;
    }
    op.apply(c, x, y2);  // must see the doubled matrices
    op.apply_scalar(c, x, ys);
    expect_near_rel(y2, ys, 1e-13);
  });
}

TEST_P(ApplyRanks, InteriorBoundarySplitCoversAllElements) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
        0b111111);
    const std::size_t nb = op.boundary_elements();
    const std::size_t ni = op.interior_elements();
    EXPECT_EQ(nb + ni, m.elements.size());
    if (c.size() == 1) {
      EXPECT_EQ(nb, 0u);  // no ghosts without neighbors
    }
  });
}

TEST_P(ApplyRanks, KrylovIssuesAtMostTwoSyncsPerIteration) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
        0b111111);
    const std::vector<double> xe = gid_vector(m, 1);
    std::vector<double> b(xe.size());
    op.apply(c, xe, b);
    la::KrylovOptions kopt;
    kopt.rtol = 1e-6;
    kopt.max_iterations = 300;

    for (const bool use_minres : {false, true}) {
      std::vector<double> x(xe.size(), 0.0);
      c.barrier();
      const std::uint64_t a0 = c.stats().allreduce_calls.load();
      const la::SolveResult r =
          use_minres ? la::minres(op.as_linop(c), b, x, la::identity_op(),
                                  op.as_multi_dot(c), kopt)
                     : la::cg(op.as_linop(c), b, x, la::identity_op(),
                              op.as_multi_dot(c), kopt);
      c.barrier();
      const std::uint64_t a1 = c.stats().allreduce_calls.load();
      EXPECT_TRUE(r.converged);
      ASSERT_GT(r.iterations, 0);
      // allreduce_calls counts every rank: rounds = delta / P. One fused
      // round precedes the loop; each iteration then costs exactly 2.
      const std::uint64_t rounds =
          (a1 - a0) / static_cast<std::uint64_t>(c.size());
      EXPECT_EQ(rounds, 1u + 2u * static_cast<std::uint64_t>(r.iterations))
          << (use_minres ? "minres" : "cg");
    }
  });
}

TEST_P(ApplyRanks, FusedDotsDoNotChangeIterationCounts) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
        0b111111);
    const std::vector<double> xe = gid_vector(m, 1);
    std::vector<double> b(xe.size());
    op.apply(c, xe, b);
    la::KrylovOptions kopt;
    kopt.rtol = 1e-6;
    kopt.max_iterations = 300;
    std::vector<double> x1(xe.size(), 0.0), x2(xe.size(), 0.0);
    const la::SolveResult fused = la::minres(
        op.as_linop(c), b, x1, la::identity_op(), op.as_multi_dot(c), kopt);
    const la::SolveResult perdot = la::minres(
        op.as_linop(c), b, x2, la::identity_op(), op.as_dot(c), kopt);
    EXPECT_TRUE(fused.converged);
    // Same pairwise local sums either way — identical residual histories.
    EXPECT_EQ(fused.iterations, perdot.iterations);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApplyRanks, ::testing::Values(1, 2, 4));

TEST(HaloSplitPhase, MisuseThrows) {
  alps::par::run(2, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    std::vector<double> v(static_cast<std::size_t>(m.n_local), 1.0);

    // Finish without a start.
    EXPECT_THROW(m.accumulate_finish(c, v), std::logic_error);
    EXPECT_THROW(m.exchange_finish(c, v), std::logic_error);

    // Double start, and finishing the wrong operation.
    m.accumulate_start(c, v);
    EXPECT_THROW(m.accumulate_start(c, v), std::logic_error);
    EXPECT_THROW(m.exchange_start(c, v), std::logic_error);
    EXPECT_THROW(m.exchange_finish(c, v), std::logic_error);
    m.accumulate_finish(c, v);  // proper completion still works

    // ncomp must match between start and finish.
    std::vector<double> v2(static_cast<std::size_t>(m.n_local) * 2, 1.0);
    m.exchange_start(c, v2, 2);
    EXPECT_THROW(m.exchange_finish(c, v2, 1), std::logic_error);
    m.exchange_finish(c, v2, 2);
  });
}

TEST(HaloSplitPhase, SplitEqualsFused) {
  alps::par::run(4, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    std::vector<double> a(static_cast<std::size_t>(m.n_local), 0.0);
    std::vector<double> b(static_cast<std::size_t>(m.n_local), 0.0);
    for (std::int64_t d = 0; d < m.n_local; ++d)
      a[static_cast<std::size_t>(d)] = b[static_cast<std::size_t>(d)] =
          0.5 + static_cast<double>(
                    m.dof_gids[static_cast<std::size_t>(d)] % 17);
    m.accumulate(c, a);
    m.exchange(c, a);
    m.accumulate_start(c, b);
    m.accumulate_finish(c, b);
    m.exchange_start(c, b);
    m.exchange_finish(c, b);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  });
}

TEST(PairwiseDot, MatchesHighPrecisionReferenceTightly) {
  // Magnitude-spread data with cancellation: naive left-to-right summation
  // drifts at ~1e-11 relative here; the blocked pairwise sum must pin the
  // result to near machine precision of the long-double reference.
  constexpr std::size_t n = 100'000;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = std::sin(0.1 * static_cast<double>(i));
    a[i] = s * std::exp(8.0 * std::cos(0.003 * static_cast<double>(i)));
    b[i] = (i % 2 == 0 ? 1.0 : -1.0) * (1.0 + 0.5 * s);
  }
  long double exact = 0.0L;
  long double abs_sum = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    exact += static_cast<long double>(a[i]) * static_cast<long double>(b[i]);
    abs_sum += std::abs(static_cast<long double>(a[i]) *
                        static_cast<long double>(b[i]));
  }
  const double got = la::pairwise_dot(a, b);
  const double err =
      std::abs(static_cast<double>(static_cast<long double>(got) - exact));
  EXPECT_LE(err, 1e-13 * static_cast<double>(abs_sum));
}

TEST(PairwiseDot, SmallSizesMatchNaiveExactly) {
  // Up to the base block the pairwise sum IS the naive sum — bitwise.
  for (const std::size_t n : {0u, 1u, 7u, 63u, 64u}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = std::cos(0.9 * static_cast<double>(i));
      b[i] = std::sin(1.7 * static_cast<double>(i)) + 0.3;
    }
    double naive = 0.0;
    for (std::size_t i = 0; i < n; ++i) naive += a[i] * b[i];
    EXPECT_EQ(la::pairwise_dot(a, b), naive);
  }
}

}  // namespace
