// Tests for the in-process message-passing runtime (src/par).

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "par/runtime.hpp"

namespace {

using alps::par::Comm;
using alps::par::CommStats;

class ParRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParRanks, AllgatherReturnsRankOrder) {
  alps::par::run(GetParam(), [](Comm& c) {
    std::vector<int> got = c.allgather(c.rank() * 10);
    ASSERT_EQ(static_cast<int>(got.size()), c.size());
    for (int r = 0; r < c.size(); ++r) EXPECT_EQ(got[r], r * 10);
  });
}

TEST_P(ParRanks, AllgathervConcatenatesVariableLengths) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Rank r contributes r values equal to r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    std::vector<int> got = c.allgatherv(mine);
    std::size_t expect_n = 0;
    for (int r = 0; r < c.size(); ++r) expect_n += static_cast<std::size_t>(r);
    ASSERT_EQ(got.size(), expect_n);
    std::size_t i = 0;
    for (int r = 0; r < c.size(); ++r)
      for (int k = 0; k < r; ++k) EXPECT_EQ(got[i++], r);
  });
}

TEST_P(ParRanks, AllreduceSumMaxMin) {
  alps::par::run(GetParam(), [](Comm& c) {
    const int p = c.size();
    EXPECT_EQ(c.allreduce_sum(c.rank()), p * (p - 1) / 2);
    EXPECT_EQ(c.allreduce_max(c.rank()), p - 1);
    EXPECT_EQ(c.allreduce_min(c.rank()), 0);
    EXPECT_TRUE(c.allreduce_or(c.rank() == 0));
    EXPECT_FALSE(c.allreduce_or(false));
  });
}

TEST_P(ParRanks, ExscanIsExclusivePrefixSum) {
  alps::par::run(GetParam(), [](Comm& c) {
    const std::int64_t mine = c.rank() + 1;
    const std::int64_t pre = c.exscan_sum(mine);
    std::int64_t expect = 0;
    for (int r = 0; r < c.rank(); ++r) expect += r + 1;
    EXPECT_EQ(pre, expect);
  });
}

TEST_P(ParRanks, PointToPointRing) {
  alps::par::run(GetParam(), [](Comm& c) {
    if (c.size() == 1) return;
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<double> payload = {1.5 * c.rank(), 2.5 * c.rank()};
    c.send(next, 7, payload);
    std::vector<double> got = c.recv<double>(prev, 7);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], 1.5 * prev);
    EXPECT_DOUBLE_EQ(got[1], 2.5 * prev);
  });
}

TEST_P(ParRanks, TagMatchingReordersMessages) {
  alps::par::run(GetParam(), [](Comm& c) {
    if (c.size() < 2) return;
    if (c.rank() == 0) {
      c.send(1, 100, std::vector<int>{1});
      c.send(1, 200, std::vector<int>{2});
    } else if (c.rank() == 1) {
      // Receive in the opposite order they were sent.
      EXPECT_EQ(c.recv<int>(0, 200).at(0), 2);
      EXPECT_EQ(c.recv<int>(0, 100).at(0), 1);
    }
  });
}

TEST_P(ParRanks, AlltoallvRoutesPersonalizedBuffers) {
  alps::par::run(GetParam(), [](Comm& c) {
    const int p = c.size();
    std::vector<std::vector<int>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      send[static_cast<std::size_t>(d)] = {c.rank() * 1000 + d};
    auto got = c.alltoallv(send);
    ASSERT_EQ(static_cast<int>(got.size()), p);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(got[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(got[static_cast<std::size_t>(s)][0], s * 1000 + c.rank());
    }
  });
}

TEST_P(ParRanks, BackToBackAlltoallvRoundsStaySeparated) {
  // Successive alltoallv rounds are separated by per-rank epoch tags, not
  // a trailing barrier, so a fast rank may enter round k+1 while a slow
  // one is still draining round k — the payloads must never mix.
  alps::par::run(GetParam(), [](Comm& c) {
    const int p = c.size();
    for (int round = 0; round < 64; ++round) {
      if ((round + c.rank()) % 3 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      std::vector<std::vector<int>> send(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d)
        send[static_cast<std::size_t>(d)] = {round * 10000 + c.rank() * 100 + d};
      const auto got = c.alltoallv(send);
      ASSERT_EQ(static_cast<int>(got.size()), p);
      for (int s = 0; s < p; ++s) {
        ASSERT_EQ(got[static_cast<std::size_t>(s)].size(), 1u);
        EXPECT_EQ(got[static_cast<std::size_t>(s)][0],
                  round * 10000 + s * 100 + c.rank());
      }
    }
  });
}

TEST(ParStats, AlltoallvPerformsNoBarrier) {
  // The epoch-tagged rounds replaced the trailing barrier; alltoallv must
  // not show up in the barrier counter any more.
  CommStats s = alps::par::run(4, [](Comm& c) {
    std::vector<std::vector<int>> send(4);
    send[static_cast<std::size_t>((c.rank() + 1) % 4)] = {1, 2, 3};
    c.alltoallv(send);
    c.alltoallv(send);
  });
  EXPECT_EQ(s.alltoall_calls, 8u);
  EXPECT_EQ(s.barrier_calls, 0u);
}

TEST_P(ParRanks, RepeatedCollectivesDoNotInterleave) {
  alps::par::run(GetParam(), [](Comm& c) {
    for (int round = 0; round < 50; ++round) {
      const int sum = c.allreduce_sum(round + c.rank());
      const int p = c.size();
      EXPECT_EQ(sum, round * p + p * (p - 1) / 2);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParRanks, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(ParStats, CountsPointToPointTraffic) {
  CommStats s = alps::par::run(2, [](Comm& c) {
    if (c.rank() == 0) c.send(1, 1, std::vector<char>(128, 'x'));
    if (c.rank() == 1) c.recv<char>(0, 1);
    c.barrier();
  });
  EXPECT_EQ(s.p2p_messages, 1u);
  EXPECT_EQ(s.p2p_bytes, 128u);
  EXPECT_EQ(s.barrier_calls, 2u);
}

TEST(ParStats, CountsCollectivePayloadBytes) {
  // Byte counters record the payload each rank contributes, summed over
  // ranks, alongside the per-rank call counters.
  CommStats s = alps::par::run(2, [](Comm& c) {
    c.allreduce_sum(1.0);                       // 8 bytes per rank
    c.allgather(42);                            // 4 bytes per rank
    std::vector<std::vector<int>> send(2);
    send[static_cast<std::size_t>(1 - c.rank())] = {7, 8};  // 8 bytes to peer
    c.alltoallv(send);
  });
  EXPECT_EQ(s.allreduce_calls, 2u);
  EXPECT_EQ(s.allreduce_bytes, 16u);
  EXPECT_EQ(s.allgather_calls, 2u);
  EXPECT_EQ(s.allgather_bytes, 8u);
  EXPECT_EQ(s.alltoall_calls, 2u);
  EXPECT_EQ(s.alltoall_bytes, 16u);
}

TEST(ParStats, ExscanAndAllgathervCountPayloadBytes) {
  CommStats s = alps::par::run(2, [](Comm& c) {
    c.exscan_sum(static_cast<std::int64_t>(c.rank()));  // 8 bytes per rank
    std::vector<double> mine(static_cast<std::size_t>(c.rank() + 1), 1.0);
    c.allgatherv(mine);  // 8 and 16 bytes
  });
  EXPECT_EQ(s.allreduce_bytes, 16u);   // exscan counts under allreduce
  EXPECT_EQ(s.allgather_bytes, 24u);
}

TEST(ParRun, PropagatesUniformExceptions) {
  EXPECT_THROW(alps::par::run(3,
                              [](Comm&) {
                                throw std::runtime_error("boom");
                              }),
               std::runtime_error);
}

TEST(ParRun, RejectsNonPositiveSize) {
  EXPECT_THROW(alps::par::run(0, [](Comm&) {}), std::invalid_argument);
}

}  // namespace
