// Tests for the variable-viscosity stabilized Stokes solver (src/stokes).

#include <gtest/gtest.h>

#include <cmath>

#include "rhea/viscosity.hpp"
#include "stokes/picard.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using forest::Connectivity;
using forest::Forest;
using mesh::extract_mesh;
using mesh::Mesh;
using par::Comm;
using stokes::StokesOptions;
using stokes::StokesSolver;

std::vector<double> constant_eta(const Mesh& m, double eta) {
  return std::vector<double>(m.elements.size() * 8, eta);
}

// Hot blob at the bottom center: buoyant rise test.
double blob_t(const std::array<double, 3>& p) {
  const double dx = p[0] - 0.5, dy = p[1] - 0.5, dz = p[2] - 0.25;
  return std::exp(-40.0 * (dx * dx + dy * dy + dz * dz));
}

class StokesRanks : public ::testing::TestWithParam<int> {};

TEST_P(StokesRanks, ZeroBuoyancyGivesZeroFlow) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    StokesOptions opt;
    StokesSolver solver(c, m, f.connectivity(), constant_eta(m, 1.0), opt);
    std::vector<double> rhs(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    std::vector<double> x(rhs.size(), 0.0);
    la::SolveResult r = solver.solve(c, rhs, x);
    EXPECT_TRUE(r.converged);
    for (double v : x) EXPECT_NEAR(v, 0.0, 1e-10);
  });
}

TEST_P(StokesRanks, HotBlobRises) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    const std::vector<double> t = fem::interpolate(m, blob_t);
    StokesOptions opt;
    opt.krylov.max_iterations = 300;
    opt.krylov.rtol = 1e-8;
    StokesSolver solver(c, m, f.connectivity(), constant_eta(m, 1.0), opt);
    const std::vector<double> rhs =
        StokesSolver::buoyancy_rhs(c, m, f.connectivity(), t, 1e4, 2, opt);
    std::vector<double> x(rhs.size(), 0.0);
    la::SolveResult r = solver.solve(c, rhs, x);
    EXPECT_TRUE(r.converged);
    // Vertical velocity above the blob must be positive (upwelling).
    double w_at_center = 0.0;
    bool found = false;
    for (std::int64_t d = 0; d < m.n_owned; ++d) {
      const auto& p = m.dof_coords[static_cast<std::size_t>(d)];
      if (std::abs(p[0] - 0.5) < 1e-9 && std::abs(p[1] - 0.5) < 1e-9 &&
          std::abs(p[2] - 0.5) < 1e-9) {
        w_at_center = x[static_cast<std::size_t>(d) * 4 + 2];
        found = true;
      }
    }
    const int who = c.allreduce_max(found ? c.rank() : -1);
    ASSERT_GE(who, 0);
    // Broadcast via allreduce (only one rank owns the node).
    w_at_center = c.allreduce_sum(found ? w_at_center : 0.0);
    EXPECT_GT(w_at_center, 1.0);
  });
}

TEST_P(StokesRanks, SolutionIsNearlyDivergenceFree) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    const std::vector<double> t = fem::interpolate(m, blob_t);
    StokesOptions opt;
    opt.krylov.rtol = 1e-10;
    opt.krylov.max_iterations = 400;
    StokesSolver solver(c, m, f.connectivity(), constant_eta(m, 1.0), opt);
    const std::vector<double> rhs =
        StokesSolver::buoyancy_rhs(c, m, f.connectivity(), t, 1e4, 2, opt);
    std::vector<double> x(rhs.size(), 0.0);
    ASSERT_TRUE(solver.solve(c, rhs, x).converged);
    // The discrete divergence of u integrated against each pressure test
    // function equals the (small) stabilization term C p: scale-check it
    // against the velocity magnitude.
    std::vector<double> ax(x.size());
    solver.op().apply(c, x, ax);
    double div2 = 0.0, vel2 = 0.0;
    for (std::int64_t d = 0; d < m.n_owned; ++d) {
      const double pres_res = ax[static_cast<std::size_t>(d) * 4 + 3] -
                              rhs[static_cast<std::size_t>(d) * 4 + 3];
      div2 += pres_res * pres_res;
      for (int cc = 0; cc < 3; ++cc)
        vel2 += x[static_cast<std::size_t>(d) * 4 + static_cast<std::size_t>(cc)] *
                x[static_cast<std::size_t>(d) * 4 + static_cast<std::size_t>(cc)];
    }
    div2 = c.allreduce_sum(div2);
    vel2 = c.allreduce_sum(vel2);
    EXPECT_LT(std::sqrt(div2), 1e-6 * std::sqrt(vel2) + 1e-8);
  });
}

TEST_P(StokesRanks, FreeSlipConstrainsNormalVelocity) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    const std::vector<double> t = fem::interpolate(m, blob_t);
    StokesOptions opt;
    StokesSolver solver(c, m, f.connectivity(), constant_eta(m, 1.0), opt);
    const std::vector<double> rhs =
        StokesSolver::buoyancy_rhs(c, m, f.connectivity(), t, 1e4, 2, opt);
    std::vector<double> x(rhs.size(), 0.0);
    solver.solve(c, rhs, x);
    for (std::int64_t d = 0; d < m.n_local; ++d) {
      const std::uint8_t mask = m.dof_boundary[static_cast<std::size_t>(d)];
      for (int cc = 0; cc < 3; ++cc)
        if (mask & (0b11u << (2 * cc))) {
          EXPECT_NEAR(
              x[static_cast<std::size_t>(d) * 4 + static_cast<std::size_t>(cc)],
              0.0, 1e-12);
        }
    }
  });
}

TEST_P(StokesRanks, MinresIterationsBoundedUnderViscosityContrast) {
  alps::par::run(GetParam(), [](Comm& c) {
    // 10^4 viscosity jump: the block preconditioner should keep MINRES
    // iteration counts modest (this is the Fig. 2 claim in miniature).
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    std::vector<double> eta(m.elements.size() * 8);
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      const auto xyz = m.element_corners_xyz(f.connectivity(),
                                             static_cast<std::int64_t>(e));
      const double z = xyz[0][2];
      for (int q = 0; q < 8; ++q)
        eta[8 * e + static_cast<std::size_t>(q)] = z > 0.5 ? 1e4 : 1.0;
    }
    const std::vector<double> t = fem::interpolate(m, blob_t);
    StokesOptions opt;
    opt.krylov.rtol = 1e-6;
    opt.krylov.max_iterations = 300;
    StokesSolver solver(c, m, f.connectivity(), eta, opt);
    const std::vector<double> rhs =
        StokesSolver::buoyancy_rhs(c, m, f.connectivity(), t, 1e4, 2, opt);
    std::vector<double> x(rhs.size(), 0.0);
    la::SolveResult r = solver.solve(c, rhs, x);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 150);
  });
}

TEST(StrainRate, LinearShearHasKnownInvariant) {
  alps::par::run(1, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    // u = (z, 0, 0): eps = [[0,0,.5],[0,0,0],[.5,0,0]], edot = 0.5.
    std::vector<double> x(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    for (std::int64_t d = 0; d < m.n_local; ++d)
      x[static_cast<std::size_t>(d) * 4] =
          m.dof_coords[static_cast<std::size_t>(d)][2];
    const std::vector<double> edot =
        stokes::strain_rate_invariant(m, f.connectivity(), x);
    for (double e : edot) EXPECT_NEAR(e, 0.5, 1e-12);
  });
}

TEST(Picard, YieldingLawConverges) {
  alps::par::run(1, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    const std::vector<double> t = fem::interpolate(m, blob_t);
    stokes::PicardOptions popt;
    popt.max_iterations = 8;
    popt.tolerance = 1e-2;
    popt.rayleigh = 1e4;
    popt.stokes.krylov.max_iterations = 300;
    rhea::YieldingLawOptions yopt;
    yopt.sigma_y = 10.0;
    std::vector<double> x(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    stokes::PicardResult r = stokes::solve_nonlinear_stokes(
        c, m, f.connectivity(), rhea::three_layer_yielding(yopt), t, x, popt);
    EXPECT_GE(r.iterations, 2);
    EXPECT_LT(r.velocity_change, 1e-2);
  });
}

TEST(Picard, HierarchyCacheReusesSetupAcrossIterationsAndSolves) {
  alps::par::run(2, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    const std::vector<double> t = fem::interpolate(m, blob_t);
    stokes::PicardOptions popt;
    popt.max_iterations = 4;
    popt.tolerance = 1e-12;  // force several iterations
    popt.rayleigh = 1e4;
    popt.stokes.krylov.max_iterations = 300;
    rhea::YieldingLawOptions yopt;
    yopt.sigma_y = 10.0;
    amg::HierarchyCache cache;
    std::vector<double> x(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    stokes::PicardResult r = stokes::solve_nonlinear_stokes(
        c, m, f.connectivity(), rhea::three_layer_yielding(yopt), t, x, popt,
        &cache);
    ASSERT_GE(r.iterations, 2);
    // Deterministic reuse accounting: exactly one symbolic setup, every
    // later iteration a numeric-only refresh.
    EXPECT_EQ(cache.stats.full_setups, 1);
    EXPECT_EQ(cache.stats.numeric_refreshes,
              static_cast<std::int64_t>(r.iterations) - 1);
    EXPECT_EQ(cache.stats.skipped, 0);
    ASSERT_EQ(r.iteration_timings.size(),
              static_cast<std::size_t>(r.iterations));

    // A second solve on the same mesh reuses the structure too: no new
    // symbolic setup, one more numeric refresh per iteration.
    stokes::PicardResult rb = stokes::solve_nonlinear_stokes(
        c, m, f.connectivity(), rhea::three_layer_yielding(yopt), t, x, popt,
        &cache);
    EXPECT_EQ(cache.stats.full_setups, 1);
    EXPECT_EQ(cache.stats.numeric_refreshes,
              static_cast<std::int64_t>(r.iterations + rb.iterations) - 1);

    // A large drift tolerance turns every reuse into a full skip.
    cache.bump_epoch();
    stokes::PicardOptions lazy = popt;
    lazy.stokes.reuse.viscosity_drift_tol = 1e9;
    stokes::PicardResult r2 = stokes::solve_nonlinear_stokes(
        c, m, f.connectivity(), rhea::three_layer_yielding(yopt), t, x, lazy,
        &cache);
    EXPECT_EQ(cache.stats.full_setups, 2);
    EXPECT_EQ(cache.stats.skipped, static_cast<std::int64_t>(r2.iterations) - 1);

    // Epoch bump invalidates: the next solve must rebuild from scratch.
    cache.bump_epoch();
    EXPECT_FALSE(cache.valid());
  });
}

TEST(Viscosity, ThreeLayerLawMatchesPaper) {
  rhea::YieldingLawOptions opt;
  opt.sigma_y = 1.0;
  opt.eta_min = 1e-8;
  opt.eta_max = 1e8;
  const auto law = rhea::three_layer_yielding(opt);
  // Lithosphere, cold, slow deformation: 10 exp(-6.9 T).
  EXPECT_NEAR(law({0, 0, 0.95}, 0.0, 1e-6), 10.0, 1e-9);
  // Lithosphere under fast deformation: yields to sigma_y / (2 edot).
  EXPECT_NEAR(law({0, 0, 0.95}, 0.0, 100.0), 1.0 / 200.0, 1e-12);
  // Aesthenosphere: 0.8 exp(-6.9 T).
  EXPECT_NEAR(law({0, 0, 0.8}, 1.0, 0.0), 0.8 * std::exp(-6.9), 1e-12);
  // Lower mantle: 50 exp(-6.9 T).
  EXPECT_NEAR(law({0, 0, 0.5}, 0.5, 0.0), 50.0 * std::exp(-3.45), 1e-9);
  // Four orders of magnitude contrast across temperature at fixed depth.
  EXPECT_GT(law({0, 0, 0.5}, 0.0, 0.0) / law({0, 0, 0.95}, 1.0, 100.0), 1e3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StokesRanks, ::testing::Values(1, 2));

}  // namespace
