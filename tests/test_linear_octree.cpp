// Tests for the distributed linear octree (src/octree/linear_octree).

#include <gtest/gtest.h>

#include <random>

#include "octree/linear_octree.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::octree;
using alps::par::Comm;

class TreeRanks : public ::testing::TestWithParam<int> {};

TEST_P(TreeRanks, NewUniformIsCompleteAndEvenlySplit) {
  alps::par::run(GetParam(), [](Comm& c) {
    const int level = 3;
    LinearOctree t = LinearOctree::new_uniform(c, 1, level);
    EXPECT_TRUE(t.locally_valid());
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    EXPECT_EQ(t.num_global(c), 512);
    const std::int64_t ideal = 512 / c.size();
    EXPECT_LE(std::abs(t.num_local() - ideal), 1);
    for (const Octant& o : t.leaves()) EXPECT_EQ(o.level, level);
  });
}

TEST_P(TreeRanks, GrowPruneMatchesDirectConstruction) {
  alps::par::run(GetParam(), [](Comm& c) {
    // The paper's grow-then-prune NEWTREE and the direct construction
    // must produce identical distributed forests.
    for (std::int32_t trees : {1, 3}) {
      for (int level : {0, 1, 3}) {
        LinearOctree direct = LinearOctree::new_uniform(c, trees, level);
        LinearOctree grown =
            LinearOctree::new_uniform_grow_prune(c, trees, level);
        EXPECT_EQ(direct.leaves(), grown.leaves());
        EXPECT_EQ(direct.range_begins(), grown.range_begins());
      }
    }
  });
}

TEST_P(TreeRanks, NewUniformMultiTree) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 5, 2);
    EXPECT_EQ(t.num_global(c), 5 * 64);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
  });
}

TEST_P(TreeRanks, OwnerOfIsConsistentWithOwnership) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    // Every local leaf must claim this rank as owner.
    for (const Octant& o : t.leaves()) EXPECT_EQ(t.owner_of(o), c.rank());
    // And every rank agrees on the owner of every leaf (spot-check roots).
    Octant probe{0, 0, 0, 0, 0};
    const int owner = t.owner_of(probe);
    const std::vector<int> all = c.allgather(owner);
    for (int v : all) EXPECT_EQ(v, all[0]);
  });
}

TEST_P(TreeRanks, FindContainingLocatesAncestorsAndLeaves) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    for (const Octant& o : t.leaves()) {
      EXPECT_GE(t.find_containing(o), 0);
      // A descendant of a local leaf is found through ancestry.
      const Octant d = o.child(3).child(6);
      const std::int64_t idx = t.find_containing(d);
      ASSERT_GE(idx, 0);
      EXPECT_TRUE(t.leaves()[static_cast<std::size_t>(idx)].is_ancestor_of(d));
    }
  });
}

TEST_P(TreeRanks, RefineAllThenCoarsenAllRestoresTree) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    const std::vector<Octant> before = t.leaves();
    std::vector<std::int8_t> refine(t.leaves().size(), 1);
    t.adapt(refine, 0, kMaxLevel);
    EXPECT_EQ(t.num_global(c), 8 * 64);
    EXPECT_TRUE(t.locally_valid());
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    std::vector<std::int8_t> coarsen(t.leaves().size(), -1);
    t.adapt(coarsen, 0, kMaxLevel);
    EXPECT_EQ(t.leaves(), before);
  });
}

TEST_P(TreeRanks, CoarsenStopsAtPartitionBoundaries) {
  alps::par::run(GetParam(), [](Comm& c) {
    // The paper forbids coarsening sibling sets that span ranks; the
    // count can therefore stay above the ideal 1/8 but completeness holds.
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    std::vector<std::int8_t> flags(t.leaves().size(), -1);
    t.adapt(flags, 0, kMaxLevel);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    const std::int64_t n = t.num_global(c);
    EXPECT_GE(n, 64);
    EXPECT_LE(n, 64 + 7 * (c.size() - 1));
  });
}

TEST_P(TreeRanks, AdaptRespectsLevelClamps) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    std::vector<std::int8_t> flags(t.leaves().size(), 1);
    t.adapt(flags, 0, 2);  // max_level == current level: no-op
    EXPECT_EQ(t.num_global(c), 64);
    flags.assign(t.leaves().size(), -1);
    t.adapt(flags, 2, kMaxLevel);  // min_level == current level: no-op
    EXPECT_EQ(t.num_global(c), 64);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeRanks, ::testing::Values(1, 2, 3, 5, 8));

TEST(Correspondence, IdentitySameKinds) {
  alps::par::run(1, [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    Correspondence cor = compute_correspondence(t.leaves(), t.leaves());
    ASSERT_EQ(cor.entries.size(), t.leaves().size());
    for (std::size_t i = 0; i < cor.entries.size(); ++i) {
      EXPECT_EQ(cor.entries[i].kind, Correspondence::Kind::kSame);
      EXPECT_EQ(cor.entries[i].old_begin, static_cast<std::int64_t>(i));
    }
  });
}

TEST(Correspondence, MixedRefineCoarsen) {
  alps::par::run(1, [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    const std::vector<Octant> old_leaves = t.leaves();
    // Refine first leaf, coarsen the second full sibling group (8..15).
    std::vector<std::int8_t> flags(old_leaves.size(), 0);
    flags[0] = 1;
    for (std::size_t i = 8; i < 16; ++i) flags[i] = -1;
    t.adapt(flags, 0, kMaxLevel);
    Correspondence cor = compute_correspondence(old_leaves, t.leaves());
    // First 8 new leaves come from refining old leaf 0.
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(cor.entries[static_cast<std::size_t>(i)].kind,
                Correspondence::Kind::kRefined);
      EXPECT_EQ(cor.entries[static_cast<std::size_t>(i)].old_begin, 0);
    }
    // Next 7 unchanged (old 1..7).
    for (int i = 8; i < 15; ++i)
      EXPECT_EQ(cor.entries[static_cast<std::size_t>(i)].kind,
                Correspondence::Kind::kSame);
    // Then one coarsened leaf absorbing old 8..15.
    EXPECT_EQ(cor.entries[15].kind, Correspondence::Kind::kCoarsened);
    EXPECT_EQ(cor.entries[15].old_begin, 8);
    EXPECT_EQ(cor.entries[15].old_end, 16);
  });
}

TEST(Correspondence, ThrowsOnMismatchedRegions) {
  alps::par::run(1, [](Comm& c) {
    LinearOctree a = LinearOctree::new_uniform(c, 1, 1);
    LinearOctree b = LinearOctree::new_uniform(c, 1, 2);
    std::vector<Octant> truncated = b.leaves();
    truncated.pop_back();
    EXPECT_THROW(compute_correspondence(a.leaves(), truncated),
                 std::runtime_error);
  });
}

}  // namespace
