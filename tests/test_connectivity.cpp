// Tests for forest-of-octrees connectivity and inter-tree transforms
// (src/forest/connectivity, src/forest/forest).

#include <gtest/gtest.h>

#include <random>

#include "forest/forest.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::forest;
using alps::octree::Adjacency;
using alps::octree::kNumAllDirs;
using alps::octree::kNumFaceDirs;
using alps::octree::LinearOctree;
using alps::octree::octant_len;
using alps::octree::coord_t;
using alps::par::Comm;

TEST(Connectivity, UnitCubeHasOnlyBoundaries) {
  Connectivity c = Connectivity::unit_cube();
  EXPECT_EQ(c.num_trees(), 1);
  for (int f = 0; f < 6; ++f) EXPECT_EQ(c.face(0, f).nbr_tree, -1);
}

TEST(Connectivity, BrickNeighborsMatchGrid) {
  Connectivity c = Connectivity::brick(3, 2, 1);
  EXPECT_EQ(c.num_trees(), 6);
  // Tree (1,0,0) has -x neighbor tree 0 and +x neighbor tree 2.
  EXPECT_EQ(c.face(1, 0).nbr_tree, 0);
  EXPECT_EQ(c.face(1, 1).nbr_tree, 2);
  EXPECT_EQ(c.face(1, 2).nbr_tree, -1);  // -y boundary
  EXPECT_EQ(c.face(1, 3).nbr_tree, 4);   // +y
  EXPECT_EQ(c.face(1, 4).nbr_tree, -1);
  EXPECT_EQ(c.face(1, 5).nbr_tree, -1);
}

TEST(Connectivity, BrickFaceCrossing) {
  Connectivity c = Connectivity::brick(2, 1, 1);
  // Rightmost octant of tree 0 crossing +x lands on leftmost of tree 1.
  Octant o{0, alps::octree::octant_len(2) * 3, 0, 0, 2};
  Octant n;
  ASSERT_TRUE(c.neighbor_across(o, 1, n));
  EXPECT_EQ(n.tree, 1);
  EXPECT_EQ(n.x, 0u);
  EXPECT_EQ(n.y, 0u);
  EXPECT_EQ(n.level, 2);
  // And the reverse crossing returns home.
  Octant back;
  ASSERT_TRUE(c.neighbor_across(n, 0, back));
  EXPECT_EQ(back, o);
}

TEST(Connectivity, PeriodicBrickWrapsAround) {
  Connectivity c = Connectivity::brick(2, 1, 1, /*period_x=*/true);
  Octant o{1, alps::octree::octant_len(1), 0, 0, 1};  // rightmost of tree 1
  Octant n;
  ASSERT_TRUE(c.neighbor_across(o, 1, n));
  EXPECT_EQ(n.tree, 0);
  EXPECT_EQ(n.x, 0u);
}

TEST(Connectivity, BrickEdgeDiagonalCrossesTwoTrees) {
  Connectivity c = Connectivity::brick(2, 2, 1);
  // Top-right corner octant of tree 0, direction (+x,+y) -> tree 3.
  const coord_t top = (coord_t{1} << alps::octree::kMaxLevel) - octant_len(3);
  Octant o{0, top, top, 0, 3};
  Octant n;
  ASSERT_TRUE(c.neighbor_across(o, 9, n));  // dir 9 = (+1,+1,0)
  EXPECT_EQ(n.tree, 3);
  EXPECT_EQ(n.x, 0u);
  EXPECT_EQ(n.y, 0u);
}

TEST(Connectivity, CubedSphereShellHas24Trees) {
  Connectivity c = Connectivity::cubed_sphere_shell();
  EXPECT_EQ(c.num_trees(), 24);
  // Every tree: 4 lateral faces connected, radial faces boundary.
  int boundary = 0, glued = 0;
  for (int t = 0; t < 24; ++t)
    for (int f = 0; f < 6; ++f)
      (c.face(t, f).nbr_tree < 0 ? boundary : glued)++;
  EXPECT_EQ(boundary, 48);  // 24 trees x 2 radial faces
  EXPECT_EQ(glued, 96);
}

TEST(Connectivity, CubedSphereTransformsRoundTrip) {
  Connectivity c = Connectivity::cubed_sphere_shell();
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> tree_d(0, 23), lv(1, 4);
  int crossings = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const int level = lv(rng);
    const coord_t n_cells = coord_t{1} << level;
    std::uniform_int_distribution<coord_t> cd(0, n_cells - 1);
    Octant o{tree_d(rng), cd(rng) * octant_len(level),
             cd(rng) * octant_len(level), cd(rng) * octant_len(level),
             static_cast<std::int8_t>(level)};
    for (int f = 0; f < kNumFaceDirs; ++f) {
      Octant nb;
      if (!c.neighbor_across(o, f, nb)) continue;
      ++crossings;
      EXPECT_TRUE(nb.inside_tree());
      // Crossing back along the opposite direction of the *mapped* face
      // must return the original octant; recover it by searching all six
      // directions of the neighbor for one that lands on `o`.
      bool found = false;
      for (int g = 0; g < kNumFaceDirs; ++g) {
        Octant back;
        if (c.neighbor_across(nb, g, back) && back == o) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "no inverse crossing for " << o.to_string();
    }
  }
  EXPECT_GT(crossings, 1000);
}

TEST(Connectivity, FromCornersRejectsOvershared) {
  std::vector<TreeCorners> corners;
  // Three identical trees: every face shared three times.
  TreeCorners t;
  for (int k = 0; k < 8; ++k) t[static_cast<std::size_t>(k)] = {k & 1, (k >> 1) & 1, (k >> 2) & 1};
  corners.assign(3, t);
  EXPECT_THROW(Connectivity::from_corners(corners), std::invalid_argument);
}

class ForestRanks : public ::testing::TestWithParam<int> {};

TEST_P(ForestRanks, BrickForestBalancesAcrossTrees) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::brick(2, 1, 1), 1);
    // Deep refinement near the shared face of tree 0.
    for (int round = 0; round < 4; ++round) {
      std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
      const coord_t top = coord_t{1} << alps::octree::kMaxLevel;
      for (std::size_t i = 0; i < f.tree().leaves().size(); ++i) {
        const Octant& o = f.tree().leaves()[i];
        if (o.tree == 0 && o.x + octant_len(o.level) == top && o.y == 0 &&
            o.z == 0)
          flags[i] = 1;
      }
      f.tree().adapt(flags, 0, alps::octree::kMaxLevel);
    }
    f.tree().update_ranges(c);
    EXPECT_FALSE(f.is_balanced(c));
    f.balance(c);
    EXPECT_TRUE(f.is_balanced(c));
    // Tree 1 must have been refined near the shared face by the ripple.
    int tree1_fine = 0;
    for (const Octant& o : f.tree().leaves())
      if (o.tree == 1 && o.level > 1) tree1_fine++;
    const int global_fine = c.allreduce_sum(tree1_fine);
    EXPECT_GT(global_fine, 0);
  });
}

TEST_P(ForestRanks, CubedSphereForestBalanceFixpoint) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::cubed_sphere_shell(), 1);
    std::mt19937 rng(5u + static_cast<unsigned>(c.rank()));
    for (int round = 0; round < 3; ++round) {
      std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
      std::uniform_int_distribution<int> coin(0, 3);
      for (auto& fl : flags)
        if (coin(rng) == 0) fl = 1;
      f.tree().adapt(flags, 0, 6);
    }
    f.tree().update_ranges(c);
    f.balance(c);
    EXPECT_TRUE(f.is_balanced(c));
    EXPECT_TRUE(LinearOctree::globally_complete(c, f.tree()));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestRanks, ::testing::Values(1, 2, 4));

}  // namespace
