// Memory observability (DESIGN.md §12): the obs::mem scope registry
// (set/add, RAII transients, per-rank slots and merge), HWM phase
// attribution, the RSS sampler's clean unavailable fallback, the
// analyze_memory cross-rank aggregation, and the rhea drift detector's
// injection hook tripping the flight recorder with the leaking rank
// named in the bundle.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "par/runtime.hpp"
#include "rhea/simulation.hpp"

namespace {

using namespace alps;

/// Restore every obs::mem switch after each test.
class MemRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_mem_enabled(true);
    obs::set_rss_unavailable_for_testing(false);
    obs::set_telemetry(false);
    obs::set_telemetry_path("");
    obs::telemetry_reset_for_testing();
    obs::set_enabled(false);
  }

  std::string temp_path(const std::string& name) {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
  }
};

using MemHwmTest = MemRegistryTest;
using MemRssTest = MemRegistryTest;
using MemAnalysisTest = MemRegistryTest;
using MemDriftTest = MemRegistryTest;

}  // namespace

// ---- scope registry ----------------------------------------------------

TEST_F(MemRegistryTest, SetAddAndClampOnOneRank) {
  obs::set_mem_enabled(true);
  const obs::MemScopeId id = obs::mem_scope("test.setadd");
  EXPECT_EQ(obs::mem_scope("test.setadd"), id);  // interning is stable
  par::run(1, [&](par::Comm&) {
    obs::mem_set(id, 1000);
    EXPECT_EQ(obs::mem_bytes(0, id), 1000u);
    obs::mem_add(id, 500);
    EXPECT_EQ(obs::mem_bytes(0, id), 1500u);
    obs::mem_add(id, -5000);  // clamped at zero, never wraps
    EXPECT_EQ(obs::mem_bytes(0, id), 0u);
    obs::mem_set(id, 64);
  });
  EXPECT_EQ(obs::mem_bytes(0, id), 64u);  // readable after the join
  EXPECT_GE(obs::mem_accounted(0), 64u);
}

TEST_F(MemRegistryTest, SetIsNoOpOnUnboundThread) {
  obs::set_mem_enabled(true);
  const obs::MemScopeId id = obs::mem_scope("test.unbound");
  par::run(1, [&](par::Comm&) { obs::mem_set(id, 11); });
  // This thread is not a rank thread: writes must not land anywhere.
  obs::mem_set(id, 999);
  obs::mem_add(id, 999);
  EXPECT_EQ(obs::mem_bytes(0, id), 11u);
}

TEST_F(MemRegistryTest, RaiiScopeTagsTransientAllocations) {
  obs::set_mem_enabled(true);
  const obs::MemScopeId id = obs::mem_scope("test.workspace");
  par::run(1, [&](par::Comm&) {
    EXPECT_EQ(obs::mem_bytes(0, id), 0u);
    {
      OBS_MEM_SCOPE("test.workspace", 4096);
      EXPECT_EQ(obs::mem_bytes(0, id), 4096u);
      {
        OBS_MEM_SCOPE("test.workspace", 1024);  // nesting accumulates
        EXPECT_EQ(obs::mem_bytes(0, id), 5120u);
      }
      EXPECT_EQ(obs::mem_bytes(0, id), 4096u);
    }
    EXPECT_EQ(obs::mem_bytes(0, id), 0u);  // fully unwound
  });
}

TEST_F(MemRegistryTest, VecBytesTracksCapacity) {
  std::vector<double> v;
  EXPECT_EQ(obs::vec_bytes(v), 0u);
  v.reserve(100);
  EXPECT_EQ(obs::vec_bytes(v), v.capacity() * sizeof(double));
  EXPECT_GE(obs::vec_bytes(v), 100u * sizeof(double));
}

TEST_F(MemRegistryTest, RankSlotsMergeAcrossFourRanks) {
  obs::set_mem_enabled(true);
  const obs::MemScopeId id = obs::mem_scope("test.merge");
  par::run(4, [&](par::Comm& c) {
    obs::mem_set(id, static_cast<std::uint64_t>(c.rank() + 1) * 1000);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(obs::mem_bytes(r, id),
              static_cast<std::uint64_t>(r + 1) * 1000);
  bool found = false;
  for (const auto& [name, bytes] : obs::aggregate_mem()) {
    if (name != "test.merge") continue;
    EXPECT_EQ(bytes, 10000u);  // 1000 + 2000 + 3000 + 4000
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(MemRegistryTest, SlotsResetAtWorldBegin) {
  obs::set_mem_enabled(true);
  const obs::MemScopeId id = obs::mem_scope("test.reset");
  par::run(2, [&](par::Comm&) { obs::mem_set(id, 777); });
  EXPECT_EQ(obs::mem_bytes(0, id), 777u);
  par::run(2, [&](par::Comm& c) {
    // A fresh world starts from a clean slate — no stale carry-over.
    EXPECT_EQ(obs::mem_bytes(c.rank(), id), 0u);
  });
}

TEST_F(MemRegistryTest, DisabledRegistryIgnoresWrites) {
  obs::set_mem_enabled(false);
  const obs::MemScopeId id = obs::mem_scope("test.disabled");
  par::run(1, [&](par::Comm&) {
    obs::mem_set(id, 123);
    obs::mem_add(id, 456);
  });
  EXPECT_EQ(obs::mem_bytes(0, id), 0u);
}

// ---- high-water marks --------------------------------------------------

TEST_F(MemHwmTest, HwmAttributesPeakToInnermostPhase) {
  obs::set_mem_enabled(true);
  obs::set_enabled(true);  // phases need the trace ring
  const obs::MemScopeId id = obs::mem_scope("test.hwmphase");
  par::run(1, [&](par::Comm&) {
    obs::mem_set(id, 100);
    {
      OBS_PHASE_SPAN("test.spike");
      obs::mem_set(id, 1u << 20);  // the peak happens inside the phase
    }
    obs::mem_set(id, 100);  // dropping back does not lower the HWM
  });
  const obs::MemHwm hwm = obs::mem_hwm(0);
  EXPECT_GE(hwm.bytes, 1u << 20);
  ASSERT_NE(hwm.phase, nullptr);
  EXPECT_STREQ(hwm.phase, "test.spike");
}

// ---- RSS sampling ------------------------------------------------------

TEST_F(MemRssTest, ForcedUnavailableDegradesCleanly) {
  obs::set_rss_unavailable_for_testing(true);
  const obs::RssSample s = obs::sample_rss();
  EXPECT_FALSE(s.available);
  EXPECT_EQ(s.rss_bytes, 0u);  // no fabricated numbers
  EXPECT_EQ(s.hwm_bytes, 0u);
}

TEST_F(MemRssTest, LinuxSampleIsOrderedWhenAvailable) {
  const obs::RssSample s = obs::sample_rss();
  if (!s.available) GTEST_SKIP() << "/proc not readable here";
  EXPECT_GT(s.rss_bytes, 0u);
  EXPECT_GE(s.hwm_bytes, s.rss_bytes);  // lifetime peak >= current
}

// ---- cross-rank aggregation --------------------------------------------

TEST_F(MemAnalysisTest, AnalyzeMemoryGathersRankStats) {
  obs::set_mem_enabled(true);
  const obs::MemScopeId a = obs::mem_scope("alpha.main");
  const obs::MemScopeId b = obs::mem_scope("beta.detail");
  obs::analysis::MemRecord rec;
  par::run(4, [&](par::Comm& c) {
    obs::mem_set(a, static_cast<std::uint64_t>(c.rank() + 1) * 100);
    obs::mem_set(b, 50);
    obs::analysis::MemRecord r = obs::analysis::analyze_memory(c, 7);
    if (c.rank() == 0) rec = r;
    // The record is identical on every rank (drift decisions are made
    // from it without further communication).
    EXPECT_EQ(r.acc_total, 1000u + 200u);
    EXPECT_EQ(r.acc_argmax, 3);
  });
  EXPECT_TRUE(rec.enabled);
  EXPECT_EQ(rec.step, 7);
  EXPECT_EQ(rec.ranks, 4);
  EXPECT_EQ(rec.acc_min, 150u);   // rank 0: 100 + 50
  EXPECT_EQ(rec.acc_max, 450u);   // rank 3: 400 + 50
  EXPECT_EQ(rec.acc_total, 1200u);
  EXPECT_DOUBLE_EQ(rec.acc_mean, 300.0);
  EXPECT_GE(rec.acc_imbalance, 1.0);
  ASSERT_EQ(rec.acc_by_rank.size(), 4u);
  EXPECT_EQ(rec.acc_by_rank[0], 150u);
  EXPECT_EQ(rec.acc_by_rank[3], 450u);
  EXPECT_GE(rec.acc_hwm_max, rec.acc_max);
  // Scope stats: "alpha.main" summed over ranks with the argmax rank.
  bool found_alpha = false;
  for (const auto& s : rec.scopes) {
    if (s.scope != "alpha.main") continue;
    EXPECT_EQ(s.total, 1000u);
    EXPECT_EQ(s.max, 400u);
    EXPECT_EQ(s.argmax, 3);
    found_alpha = true;
  }
  EXPECT_TRUE(found_alpha);
  // Subsystem grouping by the prefix before '.'.
  ASSERT_EQ(rec.subsystems.size(), 2u);
  EXPECT_EQ(rec.subsystems[0].scope, "alpha");
  EXPECT_EQ(rec.subsystems[1].scope, "beta");
  EXPECT_EQ(rec.subsystems[1].total, 200u);
}

TEST_F(MemAnalysisTest, DisabledAnalyzeReturnsInertRecord) {
  obs::set_mem_enabled(false);
  par::run(2, [&](par::Comm& c) {
    const obs::analysis::MemRecord r = obs::analysis::analyze_memory(c, 1);
    EXPECT_FALSE(r.enabled);
  });
}

TEST_F(MemAnalysisTest, MemoryJsonEmitsBlockAndCleanRssFallback) {
  obs::set_mem_enabled(true);
  obs::set_rss_unavailable_for_testing(true);
  obs::analysis::MemRecord rec;
  par::run(2, [&](par::Comm& c) {
    obs::mem_set(obs::mem_scope("gamma.data"), 1 << 10);
    obs::analysis::MemRecord r = obs::analysis::analyze_memory(c, 3);
    if (c.rank() == 0) rec = r;
  });
  EXPECT_FALSE(rec.rss_available);
  const std::string json =
      obs::analysis::memory_json(rec, /*dofs=*/512, "{\"warn\":false}");
  EXPECT_NE(json.find("\"accounted\""), std::string::npos);
  EXPECT_NE(json.find("\"gamma\""), std::string::npos);
  EXPECT_NE(json.find("\"drift\":{\"warn\":false}"), std::string::npos);
  // Unavailable RSS is exactly {"available":false} — no fabricated zeros.
  const std::size_t rss_pos = json.find("\"rss\":{");
  ASSERT_NE(rss_pos, std::string::npos);
  const std::size_t rss_end = json.find('}', rss_pos);
  const std::string rss_obj = json.substr(rss_pos, rss_end - rss_pos + 1);
  EXPECT_NE(rss_obj.find("\"available\":false"), std::string::npos);
  EXPECT_EQ(rss_obj.find("bytes"), std::string::npos);
}

// ---- drift detector ----------------------------------------------------

TEST_F(MemDriftTest, InjectTripsPanicAndNamesLeakingRank) {
  const std::string dump_dir = temp_path("alps_mem_drift_dump");
  std::filesystem::remove_all(dump_dir);
  ASSERT_EQ(setenv("ALPS_DUMP_DIR", dump_dir.c_str(), 1), 0);
  obs::set_mem_enabled(true);

  auto run = [] {
    par::run(2, [](par::Comm& c) {
      rhea::SimConfig cfg;
      cfg.init_level = 2;
      cfg.min_level = 1;
      cfg.max_level = 3;
      cfg.initial_adapt_rounds = 0;
      cfg.adapt_every = 0;  // non-adapting: the window never resets
      cfg.energy.kappa = 1e-6;
      cfg.energy.dirichlet_faces = 0b111111;
      cfg.prescribed_velocity = [](const std::array<double, 3>&, double) {
        return std::array<double, 3>{1.0, 0.0, 0.0};
      };
      cfg.mem_drift_window = 3;
      cfg.mem_drift_panic_bytes_per_step = 1e6;
      cfg.mem_drift_inject_rank = 1;  // rank 1 "leaks" 2 MB per step
      cfg.mem_drift_inject_bytes = 2'000'000;
      rhea::Simulation sim(c, cfg);
      sim.initialize([](const std::array<double, 3>& p) {
        return p[0] * (1.0 - p[0]);
      });
      sim.run(8);  // must die once the window fills at step 3
    });
  };
  EXPECT_THROW(run(), rhea::SentinelError);
  unsetenv("ALPS_DUMP_DIR");

  // The bundle names the leaking rank and carries the memory snapshot.
  std::ifstream reason(std::filesystem::path(dump_dir) / "reason.txt");
  std::stringstream ss;
  ss << reason.rdbuf();
  EXPECT_NE(ss.str().find("memory drift"), std::string::npos);
  EXPECT_NE(ss.str().find("rank 1"), std::string::npos);
  std::ifstream mem(std::filesystem::path(dump_dir) / "memory.json");
  ASSERT_TRUE(mem.good());
  std::stringstream ms;
  ms << mem.rdbuf();
  EXPECT_NE(ms.str().find("by_rank"), std::string::npos);
  std::filesystem::remove_all(dump_dir);
}

TEST_F(MemDriftTest, SteadyFootprintDoesNotTrip) {
  const std::string dump_dir = temp_path("alps_mem_steady_dump");
  std::filesystem::remove_all(dump_dir);
  ASSERT_EQ(setenv("ALPS_DUMP_DIR", dump_dir.c_str(), 1), 0);
  obs::set_mem_enabled(true);

  par::run(2, [](par::Comm& c) {
    rhea::SimConfig cfg;
    cfg.init_level = 2;
    cfg.min_level = 1;
    cfg.max_level = 3;
    cfg.initial_adapt_rounds = 0;
    cfg.adapt_every = 0;
    cfg.energy.kappa = 1e-6;
    cfg.energy.dirichlet_faces = 0b111111;
    cfg.prescribed_velocity = [](const std::array<double, 3>&, double) {
      return std::array<double, 3>{1.0, 0.0, 0.0};
    };
    cfg.mem_drift_window = 3;
    cfg.mem_drift_panic_bytes_per_step = 1e6;  // same threshold, no inject
    rhea::Simulation sim(c, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      return p[0] * (1.0 - p[0]);
    });
    sim.run(6);  // a steady footprint must survive the whole run
  });
  unsetenv("ALPS_DUMP_DIR");
  EXPECT_FALSE(std::filesystem::exists(dump_dir));
}
