// Tests for octant algebra and Morton encoding (src/octree/octant).

#include <gtest/gtest.h>

#include <random>

#include "octree/octant.hpp"

namespace {

using namespace alps::octree;

TEST(Morton, RoundTripExhaustiveSmall) {
  for (coord_t x = 0; x < 8; ++x)
    for (coord_t y = 0; y < 8; ++y)
      for (coord_t z = 0; z < 8; ++z) {
        coord_t a, b, c;
        morton_decode(morton_encode(x, y, z), a, b, c);
        EXPECT_EQ(a, x);
        EXPECT_EQ(b, y);
        EXPECT_EQ(c, z);
      }
}

TEST(Morton, RoundTripRandomFullRange) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<coord_t> dist(0, (coord_t{1} << kMaxLevel) - 1);
  for (int i = 0; i < 10000; ++i) {
    const coord_t x = dist(rng), y = dist(rng), z = dist(rng);
    coord_t a, b, c;
    morton_decode(morton_encode(x, y, z), a, b, c);
    EXPECT_EQ(a, x);
    EXPECT_EQ(b, y);
    EXPECT_EQ(c, z);
  }
}

TEST(Morton, XIsLowestBit) {
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
}

TEST(Octant, ChildParentRoundTrip) {
  Octant root{};  // level 0 at origin
  for (int i = 0; i < 8; ++i) {
    const Octant c = root.child(i);
    EXPECT_EQ(c.level, 1);
    EXPECT_EQ(c.child_id(), i);
    EXPECT_EQ(c.parent(), root);
  }
}

TEST(Octant, ChildrenAreMortonOrderedAndTile) {
  Octant o{0, 0, 0, 0, 0};
  Octant prev;
  morton_t covered = 0;
  for (int i = 0; i < 8; ++i) {
    const Octant c = o.child(i);
    if (i > 0) {
      EXPECT_TRUE(sfc_less(prev, c));
    }
    covered += c.morton_last() - c.morton() + 1;
    prev = c;
  }
  EXPECT_EQ(covered, octant_span(0));
}

TEST(Octant, AncestorLevels) {
  Octant o{0, 0, 0, 0, 0};
  Octant deep = o;
  for (int l = 0; l < 5; ++l) deep = deep.child(l % 8);
  EXPECT_EQ(deep.level, 5);
  const Octant anc = deep.ancestor(2);
  EXPECT_EQ(anc.level, 2);
  EXPECT_TRUE(anc.is_ancestor_of(deep));
  EXPECT_FALSE(deep.is_ancestor_of(anc));
  EXPECT_FALSE(deep.is_ancestor_of(deep));
}

TEST(Octant, AncestorPrecedesDescendantsInSfcOrder) {
  Octant o{0, 0, 0, 0, 3};
  o.x = 3 * octant_len(3);
  o.y = octant_len(3);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(sfc_less(o, o.child(i)));
}

TEST(Octant, MortonRangeNestsForDescendants) {
  Octant o{0, 0, 0, 0, 2};
  o.x = octant_len(2);
  const Octant d = o.child(3).child(5);
  EXPECT_GE(d.morton(), o.morton());
  EXPECT_LE(d.morton_last(), o.morton_last());
}

TEST(Octant, FaceNeighborsAreAdjacent) {
  Octant o{0, octant_len(3), octant_len(3), octant_len(3), 3};
  Octant n;
  ASSERT_TRUE(neighbor_inside(o, 1, n));  // +x
  EXPECT_EQ(n.x, o.x + octant_len(3));
  EXPECT_EQ(n.y, o.y);
  ASSERT_TRUE(neighbor_inside(o, 4, n));  // -z
  EXPECT_EQ(n.z, o.z - octant_len(3));
}

TEST(Octant, NeighborOutsideTreeDetected) {
  Octant corner{0, 0, 0, 0, 4};
  Octant n;
  EXPECT_FALSE(neighbor_inside(corner, 0, n));   // -x out
  EXPECT_FALSE(neighbor_inside(corner, 18, n));  // corner diag out
  EXPECT_TRUE(neighbor_inside(corner, 1, n));    // +x in
  // Far corner.
  const coord_t last = (coord_t{1} << kMaxLevel) - octant_len(4);
  Octant far{0, last, last, last, 4};
  EXPECT_FALSE(neighbor_inside(far, 1, n));
  EXPECT_TRUE(neighbor_inside(far, 0, n));
}

TEST(Octant, NeighborDirectionsCoverFaceEdgeCorner) {
  // Directions 0..5 have one nonzero, 6..17 two, 18..25 three.
  for (int d = 0; d < kNumAllDirs; ++d) {
    int nz = 0;
    for (int a = 0; a < 3; ++a) nz += kNeighborDirs[d][a] != 0 ? 1 : 0;
    if (d < 6)
      EXPECT_EQ(nz, 1) << d;
    else if (d < 18)
      EXPECT_EQ(nz, 2) << d;
    else
      EXPECT_EQ(nz, 3) << d;
  }
}

TEST(Octant, SfcCompareOrdersByTreeFirst) {
  Octant a{0, 500, 600, 700, 10};
  Octant b{1, 0, 0, 0, 0};
  EXPECT_TRUE(sfc_less(a, b));
  EXPECT_FALSE(sfc_less(b, a));
}

}  // namespace
