// Telemetry sink, structured Krylov convergence reporting, AMG
// convergence-factor tracking, and the failure flight recorder
// (DESIGN.md §8): JSONL record building and round-trip, solver status
// classification (zero RHS, NaN operator, indefinite operator,
// stagnation), residual history rings, and the end-to-end sentinel ->
// panic_dump path through the RHEA driver.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "amg/amg.hpp"
#include "la/csr.hpp"
#include "la/krylov.hpp"
#include "obs/dump.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "par/runtime.hpp"
#include "rhea/simulation.hpp"

namespace {

using namespace alps;

/// Restore every telemetry/trace switch after each test.
class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_telemetry(false);
    obs::set_telemetry_path("");
    obs::telemetry_reset_for_testing();
    obs::set_enabled(false);
    obs::set_comm_tracing(false);
  }

  std::string temp_path(const std::string& name) {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
  }
};

la::Csr laplace_1d(std::int64_t n) {
  std::vector<la::Triplet> t;
  for (std::int64_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return la::Csr::from_triplets(n, n, std::move(t));
}

la::DotFn serial_dot() {
  return [](std::span<const double> a, std::span<const double> b) {
    return la::local_dot(a, b);
  };
}

la::LinOp matrix_op(const la::Csr& m) {
  return [&m](std::span<const double> x, std::span<double> y) {
    m.matvec(x, y);
  };
}

}  // namespace

// ---- record builder ---------------------------------------------------

TEST_F(TelemetryTest, RecordBuildsValidJson) {
  const std::int64_t levels[] = {4, 8, 0};
  obs::TelemetryRecord rec;
  rec.field("step", std::int64_t{3})
      .field("dt", 0.25)
      .field("status", std::string("converged"))
      .field("per_level", std::span<const std::int64_t>(levels, 3));
  EXPECT_EQ(rec.json(),
            "{\"step\": 3, \"dt\": 0.25, \"status\": \"converged\", "
            "\"per_level\": [4, 8, 0]}");
}

TEST_F(TelemetryTest, NonFiniteDoublesBecomeNull) {
  obs::TelemetryRecord rec;
  rec.field("a", std::numeric_limits<double>::quiet_NaN())
      .field("b", std::numeric_limits<double>::infinity())
      .field("c", 1.5);
  EXPECT_EQ(rec.json(), "{\"a\": null, \"b\": null, \"c\": 1.5}");
}

TEST_F(TelemetryTest, TailRecordsEvenWhenFileSinkDisabled) {
  obs::set_telemetry(false);
  const std::uint64_t before = obs::telemetry_records();
  obs::TelemetryRecord rec;
  rec.field("step", 1);
  obs::telemetry_emit(rec);
  EXPECT_EQ(obs::telemetry_records(), before + 1);
  const std::vector<std::string> tail = obs::telemetry_tail();
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(tail.back(), "{\"step\": 1}");
}

TEST_F(TelemetryTest, FileRoundTrip) {
  const std::string path = temp_path("telemetry_roundtrip.jsonl");
  obs::set_telemetry_path(path);
  obs::set_telemetry(true);
  for (int s = 1; s <= 3; ++s) {
    obs::TelemetryRecord rec;
    rec.field("step", s).field("dt", 0.5 * s);
    obs::telemetry_emit(rec);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"step\": " + std::to_string(count)),
              std::string::npos);
  }
  EXPECT_EQ(count, 3);
}

TEST_F(TelemetryTest, HistoryRegistryIsBoundedPerName) {
  for (int h = 0; h < 7; ++h) {
    const std::vector<double> v = {1.0, 0.5, 0.1 * h};
    obs::record_history("test.hist", v);
  }
  for (const auto& [name, hists] : obs::histories()) {
    if (name != "test.hist") continue;
    EXPECT_EQ(hists.size(), 4u);  // bounded, newest kept
    // FIFO eviction: inserts 0..6 keep exactly 3,4,5,6 in order.
    for (std::size_t h = 0; h < hists.size(); ++h)
      EXPECT_DOUBLE_EQ(hists[h][2], 0.1 * (3.0 + static_cast<double>(h)));
    return;
  }
  FAIL() << "history name not found";
}

// ---- structured Krylov convergence ------------------------------------

TEST_F(TelemetryTest, ZeroRhsSolvesReportConvergedWithNoIterations) {
  la::Csr a = laplace_1d(16);
  const std::vector<double> b(16, 0.0);
  la::KrylovOptions opt;
  opt.history_capacity = 8;
  for (const bool use_cg : {true, false}) {
    std::vector<double> x(16, 0.0);
    const la::SolveResult r =
        use_cg ? la::cg(matrix_op(a), b, x, la::identity_op(), serial_dot(),
                        opt)
               : la::minres(matrix_op(a), b, x, la::identity_op(),
                            serial_dot(), opt);
    EXPECT_EQ(r.status, la::SolveStatus::kConverged);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 0);
    EXPECT_TRUE(r.residual_history.empty());
    for (double v : x) EXPECT_EQ(v, 0.0);
  }
}

TEST_F(TelemetryTest, NanOperatorReportsNonFinite) {
  const la::LinOp nan_op = [](std::span<const double>, std::span<double> y) {
    for (double& v : y) v = std::numeric_limits<double>::quiet_NaN();
  };
  const std::vector<double> b(8, 1.0);
  la::KrylovOptions opt;
  for (const bool use_cg : {true, false}) {
    std::vector<double> x(8, 0.0);
    const la::SolveResult r =
        use_cg ? la::cg(nan_op, b, x, la::identity_op(), serial_dot(), opt)
               : la::minres(nan_op, b, x, la::identity_op(), serial_dot(),
                            opt);
    EXPECT_EQ(r.status, la::SolveStatus::kNonFinite);
    EXPECT_FALSE(r.converged);
  }
}

TEST_F(TelemetryTest, CgOnNegativeDefiniteOperatorReportsDiverged) {
  la::Csr a = laplace_1d(16);
  const la::LinOp neg = [&a](std::span<const double> x, std::span<double> y) {
    a.matvec(x, y);
    for (double& v : y) v = -v;
  };
  const std::vector<double> b(16, 1.0);
  std::vector<double> x(16, 0.0);
  const la::SolveResult r =
      la::cg(neg, b, x, la::identity_op(), serial_dot(), la::KrylovOptions{});
  EXPECT_EQ(r.status, la::SolveStatus::kDiverged);
  EXPECT_FALSE(r.converged);
}

TEST_F(TelemetryTest, UnreachableToleranceReportsStagnation) {
  // Random RHS on a system large enough that round-off keeps the residual
  // from ever reaching exactly zero (smooth RHS on the 1d Laplacian lets
  // CG terminate with an exact zero residual).
  la::Csr a = laplace_1d(400);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> b(400);
  for (double& v : b) v = val(rng);
  std::vector<double> x(400, 0.0);
  la::KrylovOptions opt;
  opt.rtol = 1e-300;  // unreachable: the solve bottoms out at round-off
  opt.max_iterations = 5000;
  opt.stagnation_window = 25;
  const la::SolveResult r =
      la::cg(matrix_op(a), b, x, la::identity_op(), serial_dot(), opt);
  EXPECT_EQ(r.status, la::SolveStatus::kStagnated);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.iterations, opt.stagnation_window);
  EXPECT_LT(r.iterations, opt.max_iterations);  // bailed early, not budget
  EXPECT_LT(r.relative_residual, 1.0);  // it did make progress first
}

TEST_F(TelemetryTest, ResidualHistoryRingKeepsMostRecent) {
  la::Csr a = laplace_1d(64);
  const std::vector<double> b(64, 1.0);
  std::vector<double> x(64, 0.0);
  la::KrylovOptions opt;
  opt.rtol = 1e-10;
  opt.history_capacity = 5;
  const la::SolveResult r =
      la::cg(matrix_op(a), b, x, la::identity_op(), serial_dot(), opt);
  ASSERT_TRUE(r.converged);
  ASSERT_GT(r.iterations, 5);  // 1d Laplace needs ~n iterations
  ASSERT_EQ(r.residual_history.size(), 5u);
  // Chronological: the last entry is the final residual.
  EXPECT_DOUBLE_EQ(r.residual_history.back(), r.relative_residual);
}

TEST_F(TelemetryTest, StatusTokensAreStable) {
  EXPECT_STREQ(la::to_string(la::SolveStatus::kConverged), "converged");
  EXPECT_STREQ(la::to_string(la::SolveStatus::kMaxIterations),
               "max_iterations");
  EXPECT_STREQ(la::to_string(la::SolveStatus::kStagnated), "stagnated");
  EXPECT_STREQ(la::to_string(la::SolveStatus::kDiverged), "diverged");
  EXPECT_STREQ(la::to_string(la::SolveStatus::kNonFinite), "non_finite");
}

// ---- AMG convergence factors ------------------------------------------

TEST_F(TelemetryTest, AmgSolveTracksConvergenceFactors) {
  amg::AmgOptions opt;
  opt.track_convergence = true;
  amg::Amg solver(laplace_1d(400), opt);
  const std::vector<double> b(400, 1.0);
  std::vector<double> x(400, 0.0);
  solver.solve(b, x, 5);
  const std::vector<double>& f = solver.convergence_factors();
  ASSERT_EQ(f.size(), 5u);
  for (double factor : f) {
    EXPECT_GE(factor, 0.0);
    EXPECT_LT(factor, 1.0);  // every V-cycle contracts the residual
  }
  // The factors landed in the shared history registry for the recorder.
  bool found = false;
  for (const auto& [name, hists] : obs::histories())
    found = found || name == "amg.solve.factors";
  EXPECT_TRUE(found);
}

// ---- flight recorder --------------------------------------------------

TEST_F(TelemetryTest, SentinelTripWritesFlightRecorderBundle) {
  const std::string dump_dir = temp_path("alps_dump_test");
  std::filesystem::remove_all(dump_dir);
  ASSERT_EQ(setenv("ALPS_DUMP_DIR", dump_dir.c_str(), 1), 0);
  obs::set_telemetry_path(temp_path("telemetry_nan.jsonl"));
  obs::set_telemetry(true);

  auto run = [] {
    par::run(2, [](par::Comm& c) {
      rhea::SimConfig cfg;
      cfg.init_level = 2;
      cfg.min_level = 1;
      cfg.max_level = 3;
      cfg.initial_adapt_rounds = 0;
      cfg.adapt_every = 0;
      cfg.energy.kappa = 1e-6;
      cfg.energy.dirichlet_faces = 0b111111;
      cfg.prescribed_velocity = [](const std::array<double, 3>&, double) {
        return std::array<double, 3>{1.0, 0.0, 0.0};
      };
      cfg.nan_inject_step = 2;
      rhea::Simulation sim(c, cfg);
      sim.initialize([](const std::array<double, 3>& p) {
        return p[0] * (1.0 - p[0]);
      });
      sim.run(6);  // must die at step 2
    });
  };
  EXPECT_THROW(run(), rhea::SentinelError);
  unsetenv("ALPS_DUMP_DIR");

  // The bundle exists and has every artifact of the documented layout.
  for (const char* name :
       {"reason.txt", "trace.json", "counters.json", "phases.json",
        "residuals.json", "memory.json", "telemetry_tail.jsonl",
        "snapshot.vtk"}) {
    EXPECT_TRUE(
        std::filesystem::exists(std::filesystem::path(dump_dir) / name))
        << name;
  }
  std::ifstream reason(std::filesystem::path(dump_dir) / "reason.txt");
  std::stringstream ss;
  ss << reason.rdbuf();
  EXPECT_NE(ss.str().find("sentinel"), std::string::npos);
  EXPECT_NE(ss.str().find("step 2"), std::string::npos);
  // Telemetry was on, so the tail carries the pre-crash records.
  std::ifstream tail(std::filesystem::path(dump_dir) /
                     "telemetry_tail.jsonl");
  std::string first_line;
  EXPECT_TRUE(static_cast<bool>(std::getline(tail, first_line)));
  EXPECT_EQ(first_line.front(), '{');
  std::filesystem::remove_all(dump_dir);
}

TEST_F(TelemetryTest, TraceExportReportsDroppedEventsPerRank) {
  const std::size_t old_cap = obs::set_ring_capacity(4);
  obs::set_enabled(true);
  par::run(2, [](par::Comm&) {
    for (int i = 0; i < 32; ++i) OBS_SPAN("overflow.span");
  });
  obs::set_ring_capacity(old_cap);
  EXPECT_GT(obs::dropped(0), 0u);
  const std::string json = obs::chrome_trace_json();
  const std::size_t pos = json.find("\"alpsDropped\": [");
  ASSERT_NE(pos, std::string::npos);
  // Both ranks overflowed: the array holds two non-zero counts.
  EXPECT_EQ(json.find("\"alpsDropped\": [0, 0]"), std::string::npos);
}
