// Tests for SFC repartitioning with payload transfer (src/octree/partition).

#include <gtest/gtest.h>

#include "octree/balance.hpp"
#include "octree/partition.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::octree;
using alps::par::Comm;

class PartRanks : public ::testing::TestWithParam<int> {};

TEST_P(PartRanks, SkewedTreeRebalancesToIdeal) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Build skew: only rank 0 refines its leaves twice.
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    for (int round = 0; round < 2; ++round) {
      std::vector<std::int8_t> flags(
          t.leaves().size(), static_cast<std::int8_t>(c.rank() == 0 ? 1 : 0));
      t.adapt(flags, 0, kMaxLevel);
    }
    t.update_ranges(c);
    partition(c, t);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    EXPECT_LE(load_imbalance(c, t), 1.0 + 1.0 / 8.0);
    const std::int64_t n = t.num_global(c);
    const std::int64_t ideal = n / c.size();
    EXPECT_LE(std::abs(t.num_local() - ideal), 1);
  });
}

TEST_P(PartRanks, PayloadsFollowTheirLeaves) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    const std::int64_t my_offset = c.exscan_sum(t.num_local());
    // Payload: 2 components, [global index, 2*global index].
    LeafPayload f;
    f.ncomp = 2;
    for (std::int64_t i = 0; i < t.num_local(); ++i) {
      f.data.push_back(static_cast<double>(my_offset + i));
      f.data.push_back(2.0 * static_cast<double>(my_offset + i));
    }
    // Skew weights so the partition moves things around.
    std::vector<double> w(static_cast<std::size_t>(t.num_local()));
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = 1.0 + static_cast<double>(my_offset + static_cast<std::int64_t>(i));
    LeafPayload* fs[] = {&f};
    partition(c, t, fs, w);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    const std::int64_t new_offset = c.exscan_sum(t.num_local());
    ASSERT_EQ(static_cast<std::int64_t>(f.data.size()), 2 * t.num_local());
    for (std::int64_t i = 0; i < t.num_local(); ++i) {
      EXPECT_DOUBLE_EQ(f.data[static_cast<std::size_t>(2 * i)],
                       static_cast<double>(new_offset + i));
      EXPECT_DOUBLE_EQ(f.data[static_cast<std::size_t>(2 * i + 1)],
                       2.0 * static_cast<double>(new_offset + i));
    }
  });
}

TEST_P(PartRanks, WeightedPartitionBalancesWeight) {
  alps::par::run(GetParam(), [](Comm& c) {
    if (c.size() == 1) return;
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    const std::int64_t my_offset = c.exscan_sum(t.num_local());
    const std::int64_t n_global = t.num_global(c);
    // First half of the curve weighs 10x the second half.
    std::vector<double> w(static_cast<std::size_t>(t.num_local()));
    for (std::int64_t i = 0; i < t.num_local(); ++i)
      w[static_cast<std::size_t>(i)] = (my_offset + i) < n_global / 2 ? 10.0 : 1.0;
    partition(c, t, {}, w);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    // Weight per rank should be near ideal: total = (10+1)*N/2.
    const double total = 11.0 * static_cast<double>(n_global) / 2.0;
    // Recompute local weight from the new distribution.
    const std::int64_t new_offset = c.exscan_sum(t.num_local());
    double local = 0;
    for (std::int64_t i = 0; i < t.num_local(); ++i)
      local += (new_offset + i) < n_global / 2 ? 10.0 : 1.0;
    const double ideal = total / c.size();
    EXPECT_LE(local, ideal + 10.0);  // within one heavy element
    EXPECT_GE(local, ideal - 10.0);
  });
}

TEST_P(PartRanks, PartitionIsIdempotent) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 2, 2);
    partition(c, t);
    const std::vector<Octant> first = t.leaves();
    partition(c, t);
    EXPECT_EQ(t.leaves(), first);
  });
}

TEST_P(PartRanks, PartitionAfterBalanceKeepsCompleteness) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 1);
    for (int round = 0; round < 4; ++round) {
      std::vector<std::int8_t> flags(t.leaves().size(), 0);
      for (std::size_t i = 0; i < t.leaves().size(); ++i) {
        const Octant& o = t.leaves()[i];
        if (o.x == 0 && o.y == 0 && o.z == 0) flags[i] = 1;
      }
      t.adapt(flags, 0, kMaxLevel);
    }
    t.update_ranges(c);
    balance(c, t);
    partition(c, t);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    EXPECT_TRUE(is_balanced(c, t));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartRanks, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
