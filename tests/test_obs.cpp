// alps::obs: per-rank span recording, rank attribution, counter merge,
// cross-rank phase aggregation, Chrome-trace export, and the guarantee
// that disabled tracing records no events while phase accumulation keeps
// working (it powers rhea::PhaseTimers).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "par/runtime.hpp"

using namespace alps;

namespace {

/// Restore the tracing switches after each test so ordering never leaks.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_comm_tracing(false);
  }
};

const obs::SpanEvent* find_event(const std::vector<obs::SpanEvent>& events,
                                 const char* name) {
  for (const auto& e : events)
    if (std::string(e.name) == name) return &e;
  return nullptr;
}

}  // namespace

TEST_F(ObsTest, SpanNestingAndRankAttribution) {
  for (int p : {1, 4}) {
    obs::set_enabled(true);
    par::run(p, [](par::Comm& c) {
      OBS_SPAN("outer");
      {
        OBS_SPAN("inner");
        volatile int sink = 0;
        for (int i = 0; i < 1000 * (c.rank() + 1); ++i) sink = sink + i;
      }
    });
    ASSERT_EQ(obs::world_size(), p);
    for (int r = 0; r < p; ++r) {
      const std::vector<obs::SpanEvent> ev = obs::events(r);
      EXPECT_EQ(obs::dropped(r), 0u);
      const obs::SpanEvent* outer = find_event(ev, "outer");
      const obs::SpanEvent* inner = find_event(ev, "inner");
      ASSERT_NE(outer, nullptr) << "rank " << r;
      ASSERT_NE(inner, nullptr) << "rank " << r;
      // Scoped nesting: the inner interval is contained in the outer one,
      // and the inner span closes (and is stored) first.
      EXPECT_GE(inner->start_ns, outer->start_ns);
      EXPECT_LE(inner->start_ns + inner->dur_ns,
                outer->start_ns + outer->dur_ns);
      EXPECT_LT(inner - ev.data(), outer - ev.data());
    }
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNoEventsButPhasesAccumulate) {
  obs::set_enabled(false);
  double phase_rank0 = 0.0;
  par::run(2, [&](par::Comm& c) {
    {
      OBS_PHASE_SPAN("test.phase");
      volatile int sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + i;
    }
    OBS_SPAN("test.solver_span");
    if (c.rank() == 0) phase_rank0 = obs::phase_seconds("test.phase");
  });
  for (int r = 0; r < 2; ++r) EXPECT_TRUE(obs::events(r).empty());
  EXPECT_GT(phase_rank0, 0.0);
  EXPECT_GT(obs::phase_seconds(0, "test.phase"), 0.0);
}

TEST_F(ObsTest, CommSpansOnlyRecordedWithCommTracing) {
  obs::set_enabled(true);
  par::run(2, [](par::Comm& c) { c.barrier(); });
  EXPECT_EQ(find_event(obs::events(0), "par.barrier"), nullptr);

  obs::set_comm_tracing(true);
  par::run(2, [](par::Comm& c) { c.barrier(); });
  EXPECT_NE(find_event(obs::events(0), "par.barrier"), nullptr);
  EXPECT_NE(find_event(obs::events(1), "par.barrier"), nullptr);
}

TEST_F(ObsTest, CounterRegistryMergesAcrossRanks) {
  const obs::CounterId id = obs::counter("test.counter");
  EXPECT_EQ(obs::counter("test.counter"), id);  // interned once
  par::run(4, [&](par::Comm& c) {
    obs::counter_add(id, static_cast<std::uint64_t>(c.rank()) + 1);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(obs::counter_value(r, id), static_cast<std::uint64_t>(r) + 1);
  const auto merged = obs::aggregate_counters();
  std::uint64_t sum = 0;
  for (const auto& [name, value] : merged)
    if (name == "test.counter") sum = value;
  EXPECT_EQ(sum, 10u);  // 1 + 2 + 3 + 4
}

TEST_F(ObsTest, AggregatorMatchesHandComputedStatistics) {
  par::run(4, [](par::Comm& c) {
    const double vals[] = {1.0, 2.0, 3.0, 10.0};
    obs::phase_add("test.agg", vals[c.rank()]);
  });
  const std::vector<obs::PhaseBreakdown> phases = obs::aggregate_phases();
  const obs::PhaseBreakdown* b = nullptr;
  for (const auto& p : phases)
    if (p.name == "test.agg") b = &p;
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->ranks, 4);
  EXPECT_DOUBLE_EQ(b->min_s, 1.0);
  EXPECT_DOUBLE_EQ(b->max_s, 10.0);
  EXPECT_DOUBLE_EQ(b->median_s, 2.5);  // even count: mean of middle two
  EXPECT_DOUBLE_EQ(b->mean_s, 4.0);
  EXPECT_DOUBLE_EQ(b->total_s, 16.0);
  EXPECT_DOUBLE_EQ(b->imbalance, 2.5);  // max / mean
}

TEST_F(ObsTest, AggregatorCountsAbsentRanksAsZero) {
  par::run(2, [](par::Comm& c) {
    if (c.rank() == 0) obs::phase_add("test.lopsided", 4.0);
  });
  const auto phases = obs::aggregate_phases();
  const obs::PhaseBreakdown* b = nullptr;
  for (const auto& p : phases)
    if (p.name == "test.lopsided") b = &p;
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->min_s, 0.0);
  EXPECT_DOUBLE_EQ(b->max_s, 4.0);
  EXPECT_DOUBLE_EQ(b->mean_s, 2.0);
  EXPECT_DOUBLE_EQ(b->imbalance, 2.0);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  obs::set_enabled(true);
  par::run(2, [](par::Comm&) {
    OBS_SPAN("trace.outer");
    OBS_SPAN("trace.inner");
  });
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"trace.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  // Balanced braces and brackets (no string values contain either).
  std::int64_t braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') braces++;
    if (ch == '}') braces--;
    if (ch == '[') brackets++;
    if (ch == ']') brackets--;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // 2 metadata + >= 4 span events ("X").
  std::size_t x_events = 0;
  for (std::size_t pos = json.find("\"ph\": \"X\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"X\"", pos + 1))
    x_events++;
  EXPECT_GE(x_events, 4u);
}

TEST_F(ObsTest, RingCapacityDropsExcessEventsAndCounts) {
  obs::set_enabled(true);
  const std::size_t old = obs::set_ring_capacity(4);
  par::run(1, [](par::Comm&) {
    for (int i = 0; i < 10; ++i) {
      OBS_SPAN("ring.filler");
    }
  });
  EXPECT_EQ(obs::events(0).size(), 4u);
  EXPECT_EQ(obs::dropped(0), 6u);
  obs::set_ring_capacity(old);
}

TEST_F(ObsTest, WorldBeginResetsSlots) {
  obs::set_enabled(true);
  par::run(2, [](par::Comm&) { OBS_SPAN("first.run"); });
  EXPECT_FALSE(obs::events(0).empty());
  par::run(1, [](par::Comm&) {});
  EXPECT_EQ(obs::world_size(), 1);
  EXPECT_TRUE(obs::events(0).empty());
}

TEST_F(ObsTest, UnboundThreadsRecordNothing) {
  obs::set_enabled(true);
  par::run(1, [](par::Comm&) {});
  // The main thread is never bound to a rank slot: spans, counters, and
  // phases away from rank threads must be silent no-ops.
  {
    OBS_SPAN("unbound.span");
  }
  obs::counter_add(obs::wellknown::amg_vcycles(), 7);
  obs::phase_add("unbound.phase", 1.0);
  EXPECT_TRUE(obs::events(0).empty());
  EXPECT_EQ(obs::counter_value(0, obs::wellknown::amg_vcycles()), 0u);
  EXPECT_DOUBLE_EQ(obs::phase_seconds(0, "unbound.phase"), 0.0);
}
