// Convergence studies: manufactured solutions verifying the discrete
// operators at the rates theory predicts. These stand in for the paper's
// verification against CitcomCU (DESIGN.md substitutions).

#include <gtest/gtest.h>

#include <cmath>

#include "amg/amg.hpp"
#include "dg/advect.hpp"
#include "energy/energy.hpp"
#include "fem/operators.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using forest::Connectivity;
using forest::Forest;
using mesh::extract_mesh;
using mesh::Mesh;
using par::Comm;

// Manufactured Poisson problem: -Laplace(u) = f with
// u = sin(pi x) sin(pi y) sin(pi z), f = 3 pi^2 u, u = 0 on the boundary.
double mms_u(const std::array<double, 3>& p) {
  return std::sin(M_PI * p[0]) * std::sin(M_PI * p[1]) * std::sin(M_PI * p[2]);
}

double solve_poisson_mms(Comm& c, int level) {
  Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), level);
  Mesh m = extract_mesh(c, f);
  fem::ElementOperator op = fem::build_scalar_laplace(
      m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
      0b111111);
  // RHS: consistent mass times f (f interpolated nodally is adequate for
  // the rate test).
  fem::ElementOperator mass = fem::build_mass(m, f.connectivity());
  std::vector<double> fvec(static_cast<std::size_t>(m.n_local));
  for (std::int64_t i = 0; i < m.n_local; ++i)
    fvec[static_cast<std::size_t>(i)] =
        3.0 * M_PI * M_PI * mms_u(m.dof_coords[static_cast<std::size_t>(i)]);
  std::vector<double> b(fvec.size());
  mass.apply_raw(c, fvec, b);
  for (std::int64_t i = 0; i < m.n_local; ++i)
    if (m.dof_boundary[static_cast<std::size_t>(i)])
      b[static_cast<std::size_t>(i)] = 0.0;
  std::vector<double> x(fvec.size(), 0.0);
  la::KrylovOptions kopt;
  kopt.rtol = 1e-11;
  kopt.max_iterations = 4000;
  la::SolveResult r =
      la::cg(op.as_linop(c), b, x, la::identity_op(), op.as_dot(c), kopt);
  EXPECT_TRUE(r.converged);
  // Nodal max error.
  double err = 0;
  for (std::int64_t i = 0; i < m.n_local; ++i)
    err = std::max(err, std::abs(x[static_cast<std::size_t>(i)] -
                                 mms_u(m.dof_coords[static_cast<std::size_t>(i)])));
  return c.allreduce_max(err);
}

TEST(Convergence, PoissonTrilinearIsSecondOrder) {
  alps::par::run(2, [](Comm& c) {
    const double e2 = solve_poisson_mms(c, 2);
    const double e3 = solve_poisson_mms(c, 3);
    const double e4 = solve_poisson_mms(c, 4);
    const double rate23 = std::log2(e2 / e3);
    const double rate34 = std::log2(e3 / e4);
    EXPECT_GT(rate23, 1.6);
    EXPECT_GT(rate34, 1.7);  // asymptotic rate 2 for Q1 elements
    EXPECT_LT(e4, 0.01);
  });
}

TEST(Convergence, DiffusionDecayRateMatchesAnalytic) {
  // dT/dt = Laplace(T): the mode sin(pi x) with T = 0 at x-walls decays
  // as exp(-pi^2 t). Run the explicit solver and fit the rate.
  alps::par::run(1, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 4);
    Mesh m = extract_mesh(c, f);
    std::vector<double> t = fem::interpolate(m, [](const std::array<double, 3>& p) {
      return std::sin(M_PI * p[0]);
    });
    std::vector<double> vel(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    energy::EnergyOptions opt;
    opt.kappa = 1.0;
    opt.dirichlet_faces = 0b000011;  // x-walls only
    energy::EnergySolver solver(c, m, f.connectivity(), vel, opt);
    const double dt = solver.stable_dt(c);
    const auto amp = [&] {
      double a = 0;
      for (std::int64_t i = 0; i < m.n_owned; ++i)
        a = std::max(a, std::abs(t[static_cast<std::size_t>(i)]));
      return c.allreduce_max(a);
    };
    const double a0 = amp();
    const int steps = 40;
    for (int s = 0; s < steps; ++s) solver.step(c, t, dt);
    const double a1 = amp();
    const double rate = -std::log(a1 / a0) / (steps * dt);
    EXPECT_NEAR(rate, M_PI * M_PI, 0.05 * M_PI * M_PI);
  });
}

TEST(Convergence, DgSpectralAccuracyInOrder) {
  // Advecting a smooth profile for a fixed short time: the error should
  // drop by orders of magnitude as p increases on a fixed mesh.
  alps::par::run(1, [](Comm& c) {
    double errs[3];
    int k = 0;
    for (int p : {2, 4, 6}) {
      Forest f = Forest::new_uniform(
          c, Connectivity::brick(1, 1, 1, true, true, true), 1);
      dg::DgAdvection dgs(c, f, p, dg::brick_geometry(f.connectivity()),
                          [](const std::array<double, 3>&, double) {
                            return std::array<double, 3>{1.0, 0.0, 0.0};
                          });
      const auto wave = [](const std::array<double, 3>& x) {
        return std::sin(2.0 * M_PI * x[0]);
      };
      std::vector<double> u = dgs.interpolate(wave);
      const double dt0 = dgs.stable_dt(c, 0.0, 0.15);
      const double t_final = 0.1;
      const int steps = static_cast<int>(std::ceil(t_final / dt0));
      const double dt = t_final / steps;
      double t = 0.0;
      for (int s = 0; s < steps; ++s) {
        dgs.step(c, u, t, dt);
        t += dt;
      }
      // Exact: the wave shifted by t_final.
      double err = 0;
      const std::int64_t n3 = dgs.nodes_per_elem();
      for (std::int64_t e = 0; e < dgs.num_local_elements(); ++e)
        for (std::int64_t n = 0; n < n3; ++n) {
          const auto x = dgs.node_xyz(e, n);
          const double exact = std::sin(2.0 * M_PI * (x[0] - t_final));
          err = std::max(err,
                         std::abs(u[static_cast<std::size_t>(e * n3 + n)] - exact));
        }
      errs[k++] = c.allreduce_max(err);
    }
    EXPECT_LT(errs[1], 0.2 * errs[0]);
    EXPECT_LT(errs[2], 0.5 * errs[1]);
    EXPECT_LT(errs[2], 1e-3);
  });
}

TEST(Convergence, PoissonOnAdaptedMeshBeatsUniformAtSameSize) {
  // AMR value proposition in miniature: for a solution with a sharp
  // feature, an adapted mesh reaches lower error than the uniform mesh
  // with comparable element count.
  alps::par::run(1, [](Comm& c) {
    const auto sharp = [](const std::array<double, 3>& p) {
      const double dx = p[0] - 0.5, dy = p[1] - 0.5, dz = p[2] - 0.5;
      return std::exp(-50.0 * (dx * dx + dy * dy + dz * dz));
    };
    const auto run_case = [&](Forest f) {
      Mesh m = extract_mesh(c, f);
      std::vector<double> g(static_cast<std::size_t>(m.n_local), 0.0);
      // Interpolation error of the sharp profile as the error proxy
      // (solver-independent and monotone in resolution near the bump).
      double err = 0;
      const auto& conn = f.connectivity();
      for (std::size_t e = 0; e < m.elements.size(); ++e) {
        const auto xyz = m.element_corners_xyz(conn, static_cast<std::int64_t>(e));
        // Compare center value vs trilinear average of corners.
        std::array<double, 3> ctr{};
        double avg = 0;
        for (int k = 0; k < 8; ++k) {
          for (int d = 0; d < 3; ++d)
            ctr[static_cast<std::size_t>(d)] +=
                xyz[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)] / 8.0;
          avg += sharp(xyz[static_cast<std::size_t>(k)]) / 8.0;
        }
        err = std::max(err, std::abs(sharp(ctr) - avg));
      }
      return std::pair<double, std::int64_t>(
          c.allreduce_max(err), c.allreduce_sum(f.tree().num_local()));
    };

    Forest uniform = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    auto [eu, nu] = run_case(std::move(uniform));

    Forest adapted = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    for (int round = 0; round < 3; ++round) {
      std::vector<std::int8_t> flags(adapted.tree().leaves().size(), 0);
      const auto& conn = adapted.connectivity();
      for (std::size_t e = 0; e < flags.size(); ++e) {
        const auto& o = adapted.tree().leaves()[e];
        const auto h = octree::octant_len(o.level);
        const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
        const double r2 = (p[0] - 0.5) * (p[0] - 0.5) +
                          (p[1] - 0.5) * (p[1] - 0.5) +
                          (p[2] - 0.5) * (p[2] - 0.5);
        if (r2 < 0.015) flags[e] = 1;
      }
      adapted.tree().adapt(flags, 2, 5);
      adapted.tree().update_ranges(c);
    }
    adapted.balance(c);
    auto [ea, na] = run_case(std::move(adapted));

    EXPECT_LE(na, 2 * nu);   // comparable budget
    EXPECT_LT(ea, 0.5 * eu); // much lower error at the feature
  });
}

}  // namespace
