// Tests for CSR matrices, dense LU, MINRES and CG (src/la).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/csr.hpp"
#include "la/krylov.hpp"

namespace {

using namespace alps::la;

Csr laplace_1d(std::int64_t n) {
  std::vector<Triplet> t;
  for (std::int64_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return Csr::from_triplets(n, n, std::move(t));
}

DotFn serial_dot() {
  return [](std::span<const double> a, std::span<const double> b) {
    return local_dot(a, b);
  };
}

LinOp matrix_op(const Csr& m) {
  return [&m](std::span<const double> x, std::span<double> y) {
    m.matvec(x, y);
  };
}

TEST(Csr, FromTripletsSumsDuplicates) {
  Csr m = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 2);
  std::vector<double> x = {1.0, 1.0}, y(2);
  m.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Csr, EmptyRowsAreHandled) {
  Csr m = Csr::from_triplets(4, 4, {{0, 0, 1.0}, {3, 3, 2.0}});
  std::vector<double> x = {1, 1, 1, 1}, y(4);
  m.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 2.0);
}

TEST(Csr, RejectsOutOfRangeIndices) {
  EXPECT_THROW(Csr::from_triplets(2, 2, {{2, 0, 1.0}}), std::out_of_range);
}

TEST(Csr, TransposeRoundTrip) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::int64_t> idx(0, 9);
  std::uniform_real_distribution<double> val(-1, 1);
  std::vector<Triplet> t;
  for (int i = 0; i < 40; ++i) t.push_back({idx(rng), idx(rng), val(rng)});
  Csr a = Csr::from_triplets(10, 10, t);
  Csr att = a.transpose().transpose();
  std::vector<double> x(10), y1(10), y2(10);
  for (auto& v : x) v = val(rng);
  a.matvec(x, y1);
  att.matvec(x, y2);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-14);
}

TEST(Csr, MultiplyMatchesDense) {
  Csr a = Csr::from_triplets(3, 2, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}, {2, 0, 4}});
  Csr b = Csr::from_triplets(2, 3, {{0, 0, 5}, {0, 2, 6}, {1, 1, 7}});
  Csr c = Csr::multiply(a, b);
  // Dense check: C = A*B.
  const double expect[3][3] = {{5, 14, 6}, {0, 21, 0}, {20, 0, 24}};
  std::vector<double> x(3), y(3);
  for (int col = 0; col < 3; ++col) {
    x.assign(3, 0.0);
    x[static_cast<std::size_t>(col)] = 1.0;
    c.matvec(x, y);
    for (int row = 0; row < 3; ++row)
      EXPECT_NEAR(y[static_cast<std::size_t>(row)], expect[row][col], 1e-14);
  }
}

TEST(Csr, MatvecTranspose) {
  Csr a = Csr::from_triplets(2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  std::vector<double> x = {1.0, 2.0}, y(3);
  a.matvec_transpose(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(DenseLu, SolvesRandomSystem) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> val(-1, 1);
  const std::int64_t n = 20;
  std::vector<Triplet> t;
  for (std::int64_t i = 0; i < n; ++i) {
    t.push_back({i, i, 5.0 + val(rng)});
    for (std::int64_t j = 0; j < n; ++j)
      if (j != i) t.push_back({i, j, 0.3 * val(rng)});
  }
  Csr a = Csr::from_triplets(n, n, std::move(t));
  std::vector<double> xref(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n)),
      x(static_cast<std::size_t>(n));
  for (auto& v : xref) v = val(rng);
  a.matvec(xref, b);
  DenseLu lu(a);
  lu.solve(b, x);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xref[static_cast<std::size_t>(i)], 1e-10);
}

TEST(DenseLu, ThrowsOnSingular) {
  Csr a = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(DenseLu{a}, std::runtime_error);
}

TEST(Cg, SolvesSpdLaplace) {
  const std::int64_t n = 100;
  Csr a = laplace_1d(n);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0), x(static_cast<std::size_t>(n), 0.0);
  KrylovOptions opt;
  opt.max_iterations = 500;
  opt.rtol = 1e-10;
  SolveResult r = cg(matrix_op(a), b, x, identity_op(), serial_dot(), opt);
  EXPECT_TRUE(r.converged);
  std::vector<double> ax(static_cast<std::size_t>(n));
  a.matvec(x, ax);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)], 1.0, 1e-7);
}

TEST(Cg, JacobiPreconditioningReducesIterations) {
  // Badly scaled diagonal system.
  const std::int64_t n = 200;
  const auto dscale = [n](std::int64_t i) { return 1.0 + 1000.0 * i / n; };
  std::vector<Triplet> t;
  for (std::int64_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0 * dscale(i)});
    // Symmetric off-diagonals keep the matrix SPD (diagonally dominant).
    if (i > 0) t.push_back({i, i - 1, -0.5 * std::min(dscale(i), dscale(i - 1))});
    if (i + 1 < n) t.push_back({i, i + 1, -0.5 * std::min(dscale(i), dscale(i + 1))});
  }
  Csr a = Csr::from_triplets(n, n, std::move(t));
  const std::vector<double> diag = a.diagonal();
  LinOp jacobi = [&diag](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] / diag[i];
  };
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x1(static_cast<std::size_t>(n), 0.0), x2(static_cast<std::size_t>(n), 0.0);
  KrylovOptions opt;
  opt.rtol = 1e-8;
  SolveResult plain = cg(matrix_op(a), b, x1, identity_op(), serial_dot(), opt);
  SolveResult prec = cg(matrix_op(a), b, x2, jacobi, serial_dot(), opt);
  EXPECT_TRUE(prec.converged);
  EXPECT_LE(prec.iterations, plain.iterations);
}

TEST(Minres, SolvesSpdSystem) {
  const std::int64_t n = 100;
  Csr a = laplace_1d(n);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0), x(static_cast<std::size_t>(n), 0.0);
  KrylovOptions opt;
  opt.max_iterations = 500;
  opt.rtol = 1e-10;
  SolveResult r = minres(matrix_op(a), b, x, identity_op(), serial_dot(), opt);
  EXPECT_TRUE(r.converged);
  std::vector<double> ax(static_cast<std::size_t>(n));
  a.matvec(x, ax);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)], 1.0, 1e-6);
}

TEST(Minres, SolvesIndefiniteSaddleSystem) {
  // [A  B^T; B 0]-like symmetric indefinite system.
  const std::int64_t m = 40, k = 10, n = m + k;
  std::vector<Triplet> t;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> val(-1, 1);
  for (std::int64_t i = 0; i < m; ++i) {
    t.push_back({i, i, 4.0});
    if (i > 0) {
      t.push_back({i, i - 1, -1.0});
      t.push_back({i - 1, i, -1.0});
    }
  }
  for (std::int64_t j = 0; j < k; ++j)
    for (std::int64_t i = 0; i < m; i += 7) {
      const double v = val(rng);
      t.push_back({m + j, (i + j) % m, v});
      t.push_back({(i + j) % m, m + j, v});
    }
  Csr a = Csr::from_triplets(n, n, std::move(t));
  std::vector<double> xref(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n)),
      x(static_cast<std::size_t>(n), 0.0);
  for (auto& v : xref) v = val(rng);
  a.matvec(xref, b);
  KrylovOptions opt;
  opt.max_iterations = 2000;
  opt.rtol = 1e-12;
  SolveResult r = minres(matrix_op(a), b, x, identity_op(), serial_dot(), opt);
  EXPECT_TRUE(r.converged);
  std::vector<double> ax(static_cast<std::size_t>(n));
  a.matvec(x, ax);
  double err = 0;
  for (std::int64_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(ax[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)]));
  EXPECT_LT(err, 1e-8);
}

TEST(Minres, ZeroRhsConvergesImmediately) {
  Csr a = laplace_1d(10);
  std::vector<double> b(10, 0.0), x(10, 0.0);
  SolveResult r = minres(matrix_op(a), b, x, identity_op(), serial_dot(), {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
