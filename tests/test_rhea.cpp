// End-to-end tests for the RHEA simulation driver (src/rhea).

#include <gtest/gtest.h>

#include <cmath>

#include "octree/balance.hpp"
#include "rhea/simulation.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using forest::Connectivity;
using par::Comm;
using rhea::SimConfig;
using rhea::Simulation;

double front_t0(const std::array<double, 3>& p) {
  const double dx = p[0] - 0.35, dy = p[1] - 0.5, dz = p[2] - 0.5;
  return std::exp(-60.0 * (dx * dx + dy * dy + dz * dz));
}

SimConfig advection_config() {
  SimConfig cfg;
  cfg.init_level = 3;
  cfg.min_level = 2;
  cfg.max_level = 5;
  cfg.initial_adapt_rounds = 2;
  cfg.adapt_every = 4;
  cfg.energy.kappa = 1e-6;
  cfg.energy.dirichlet_faces = 0b111111;
  cfg.prescribed_velocity = [](const std::array<double, 3>&, double) {
    return std::array<double, 3>{1.0, 0.0, 0.0};
  };
  return cfg;
}

class RheaRanks : public ::testing::TestWithParam<int> {};

TEST_P(RheaRanks, AdvectionRunAdaptsAndHoldsElementCount) {
  alps::par::run(GetParam(), [](Comm& c) {
    SimConfig cfg = advection_config();
    Simulation sim(c, cfg);
    sim.initialize(front_t0);
    const std::int64_t n0 = sim.global_elements();
    cfg.target_elements = n0;
    sim.run(12);  // 3 adaptation cycles at adapt_every = 4
    EXPECT_GE(sim.adapt_history().size(), 2u);
    // MARKELEMENTS holds the total roughly constant (Fig. 5 behaviour).
    for (const auto& st : sim.adapt_history()) {
      EXPECT_GT(st.total_elements, n0 / 4);
      EXPECT_LT(st.total_elements, n0 * 4);
      EXPECT_EQ(st.refined * 0 + st.unchanged + st.refined + st.coarsened,
                st.unchanged + st.refined + st.coarsened);  // tautology guard
      EXPECT_GE(st.refined, 0);
    }
    // Mesh stays balanced and complete through the cycles.
    EXPECT_TRUE(sim.forest().is_balanced(c));
    EXPECT_TRUE(octree::LinearOctree::globally_complete(
        c, const_cast<Simulation&>(sim).forest().tree()));
  });
}

TEST_P(RheaRanks, RefinementFollowsTheMovingFront) {
  alps::par::run(GetParam(), [](Comm& c) {
    Simulation sim(c, advection_config());
    sim.initialize(front_t0);
    sim.run(12);
    // The fine elements should cluster near the (advected) blob; its
    // center moved right from x = 0.35 by roughly the elapsed time.
    const double cx = 0.35 + sim.time();
    double fine_near = 0, fine_far = 0;
    const auto& conn = sim.forest().connectivity();
    for (const auto& o : sim.forest().tree().leaves()) {
      if (o.level < 5) continue;
      const auto h = octree::octant_len(o.level);
      const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
      (std::abs(p[0] - cx) < 0.25 ? fine_near : fine_far) += 1;
    }
    fine_near = c.allreduce_sum(fine_near);
    fine_far = c.allreduce_sum(fine_far);
    if (fine_near + fine_far > 0) {
      EXPECT_GT(fine_near, fine_far);
    }
  });
}

TEST_P(RheaRanks, TimersArePopulated) {
  alps::par::run(GetParam(), [](Comm& c) {
    Simulation sim(c, advection_config());
    sim.initialize(front_t0);
    sim.run(8);
    const rhea::PhaseTimers& t = sim.timers();
    EXPECT_GT(t.time_integration, 0.0);
    EXPECT_GT(t.mark_elements, 0.0);
    EXPECT_GT(t.balance, 0.0);
    EXPECT_GT(t.extract_mesh, 0.0);
    EXPECT_GE(t.amr_total(), t.balance);
  });
}

TEST_P(RheaRanks, AdaptationStatsAreConsistent) {
  alps::par::run(GetParam(), [](Comm& c) {
    Simulation sim(c, advection_config());
    sim.initialize(front_t0);
    const std::int64_t before = sim.global_elements();
    sim.run(5);  // one adaptation at step 4
    ASSERT_GE(sim.adapt_history().size(), 1u);
    const auto& st = sim.adapt_history().front();
    // Old elements partition into refined/coarsened/unchanged.
    EXPECT_EQ(st.refined + st.coarsened + st.unchanged, before);
    // New totals: unchanged + 8*refined + coarsened/8 + balance_added.
    EXPECT_EQ(st.total_elements,
              st.unchanged + 8 * st.refined + st.coarsened / 8 +
                  st.balance_added);
    // Level histogram sums to the total.
    std::int64_t sum = 0;
    for (auto v : st.per_level) sum += v;
    EXPECT_EQ(sum, st.total_elements);
  });
}

TEST_P(RheaRanks, SmallMantleConvectionRunsStably) {
  alps::par::run(GetParam(), [](Comm& c) {
    SimConfig cfg;
    cfg.init_level = 2;
    cfg.min_level = 2;
    cfg.max_level = 4;
    cfg.initial_adapt_rounds = 1;
    cfg.adapt_every = 3;
    cfg.energy.kappa = 1.0;
    cfg.picard.rayleigh = 1e4;
    cfg.picard.max_iterations = 2;
    cfg.picard.stokes.krylov.max_iterations = 200;
    cfg.picard.stokes.krylov.rtol = 1e-6;
    rhea::YieldingLawOptions yopt;
    cfg.law = rhea::three_layer_yielding(yopt);
    Simulation sim(c, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      return (1.0 - p[2]) + 0.1 * std::cos(M_PI * p[0]) * std::sin(M_PI * p[2]);
    });
    sim.run(4);
    // Convection started: nonzero velocity somewhere.
    double vmax = 0;
    for (std::int64_t d = 0; d < sim.mesh().n_owned; ++d)
      for (int cc = 0; cc < 3; ++cc)
        vmax = std::max(vmax, std::abs(sim.solution()[static_cast<std::size_t>(
                                  d * 4 + cc)]));
    EXPECT_GT(c.allreduce_max(vmax), 1e-2);
    // Temperature remains bounded (no blow-up).
    double tmax = 0;
    for (double v : sim.temperature()) tmax = std::max(tmax, std::abs(v));
    EXPECT_LT(c.allreduce_max(tmax), 2.0);
    EXPECT_GT(sim.timers().minres + sim.timers().amg_apply, 0.0);
  });
}

TEST_P(RheaRanks, GoalOrientedAdaptationTracksGoalRegion) {
  alps::par::run(GetParam(), [](Comm& c) {
    // With an adjoint goal at the right wall and flow in +x, refinement
    // should end up biased toward the right (upstream-of-goal) half even
    // though the temperature front starts on the left.
    SimConfig cfg = advection_config();
    cfg.goal_region = [](const std::array<double, 3>& p) {
      return p[0] > 0.8 ? 1.0 : 0.0;
    };
    cfg.adjoint_pseudo_steps = 8;
    Simulation sim(c, cfg);
    sim.initialize(front_t0);
    sim.run(10);
    ASSERT_GE(sim.adapt_history().size(), 1u);
    double left = 0, right = 0;
    const auto& conn = sim.forest().connectivity();
    for (const auto& o : sim.forest().tree().leaves()) {
      if (o.level < 4) continue;
      const auto h = octree::octant_len(o.level);
      const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
      (p[0] < 0.5 ? left : right) += 1;
    }
    left = c.allreduce_sum(left);
    right = c.allreduce_sum(right);
    EXPECT_GT(right, left);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, RheaRanks, ::testing::Values(1, 2));

}  // namespace
