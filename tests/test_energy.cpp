// Tests for the SUPG advection-diffusion solver (src/energy).

#include <gtest/gtest.h>

#include <cmath>

#include "energy/energy.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using energy::EnergyOptions;
using energy::EnergySolver;
using forest::Connectivity;
using forest::Forest;
using mesh::extract_mesh;
using mesh::Mesh;
using par::Comm;

std::vector<double> zero_velocity(const Mesh& m) {
  return std::vector<double>(static_cast<std::size_t>(m.n_local) * 4, 0.0);
}

class EnergyRanks : public ::testing::TestWithParam<int> {};

TEST_P(EnergyRanks, ConductiveProfileIsSteadyState) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    // T = 1 - z satisfies Laplace(T) = 0 with T(bottom)=1, T(top)=0.
    std::vector<double> t = fem::interpolate(
        m, [](const std::array<double, 3>& p) { return 1.0 - p[2]; });
    const std::vector<double> t0 = t;
    EnergyOptions opt;
    EnergySolver solver(c, m, f.connectivity(), zero_velocity(m), opt);
    const double dt = solver.stable_dt(c);
    EXPECT_GT(dt, 0.0);
    for (int s = 0; s < 5; ++s) solver.step(c, t, dt);
    for (std::size_t i = 0; i < t.size(); ++i)
      EXPECT_NEAR(t[i], t0[i], 1e-10);
  });
}

TEST_P(EnergyRanks, DiffusionDecaysPerturbation) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    std::vector<double> t = fem::interpolate(m, [](const std::array<double, 3>& p) {
      return (1.0 - p[2]) +
             0.2 * std::sin(M_PI * p[2]) * std::sin(2 * M_PI * p[0]);
    });
    EnergyOptions opt;
    EnergySolver solver(c, m, f.connectivity(), zero_velocity(m), opt);
    const auto energy_norm = [&](const std::vector<double>& v) {
      double s = 0;
      for (std::int64_t i = 0; i < m.n_owned; ++i) {
        const double d = v[static_cast<std::size_t>(i)] -
                         (1.0 - m.dof_coords[static_cast<std::size_t>(i)][2]);
        s += d * d;
      }
      return c.allreduce_sum(s);
    };
    const double e0 = energy_norm(t);
    const double dt = solver.stable_dt(c);
    for (int s = 0; s < 20; ++s) solver.step(c, t, dt);
    EXPECT_LT(energy_norm(t), 0.9 * e0);
  });
}

TEST_P(EnergyRanks, UniformAdvectionMovesBlob) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 4);
    Mesh m = extract_mesh(c, f);
    const auto blob = [](const std::array<double, 3>& p) {
      const double dx = p[0] - 0.3, dy = p[1] - 0.5, dz = p[2] - 0.5;
      return std::exp(-100.0 * (dx * dx + dy * dy + dz * dz));
    };
    std::vector<double> t = fem::interpolate(m, blob);
    std::vector<double> vel(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    for (std::int64_t d = 0; d < m.n_local; ++d)
      vel[static_cast<std::size_t>(d) * 4] = 1.0;  // u = (1,0,0)
    EnergyOptions opt;
    opt.kappa = 1e-6;  // high-Peclet transport, as in the paper's tests
    opt.dirichlet_faces = 0b111111;
    EnergySolver solver(c, m, f.connectivity(), vel, opt);
    const double dt = solver.stable_dt(c);
    double moved = 0.0;
    const int nsteps = 8;  // keep the blob away from the outflow boundary
    for (int s = 0; s < nsteps; ++s) solver.step(c, t, dt);
    moved = nsteps * dt;
    // Center of mass along x should shift by ~moved.
    double cx = 0.0, mass = 0.0;
    for (std::int64_t i = 0; i < m.n_owned; ++i) {
      cx += t[static_cast<std::size_t>(i)] *
            m.dof_coords[static_cast<std::size_t>(i)][0];
      mass += t[static_cast<std::size_t>(i)];
    }
    cx = c.allreduce_sum(cx);
    mass = c.allreduce_sum(mass);
    EXPECT_NEAR(cx / mass, 0.3 + moved, 0.02);
  });
}

TEST_P(EnergyRanks, SupgLimitsOvershoots) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Sharp front advection at vanishing diffusivity: Galerkin without
    // SUPG would oscillate wildly; SUPG keeps overshoots modest.
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 4);
    Mesh m = extract_mesh(c, f);
    std::vector<double> t = fem::interpolate(m, [](const std::array<double, 3>& p) {
      return p[0] < 0.3 ? 1.0 : 0.0;
    });
    std::vector<double> vel(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    for (std::int64_t d = 0; d < m.n_local; ++d)
      vel[static_cast<std::size_t>(d) * 4] = 1.0;
    EnergyOptions opt;
    opt.kappa = 1e-9;
    opt.dirichlet_faces = 0b000001;  // inflow only
    EnergySolver solver(c, m, f.connectivity(), vel, opt);
    const double dt = solver.stable_dt(c);
    for (int s = 0; s < 30; ++s) solver.step(c, t, dt);
    double tmin = 1e30, tmax = -1e30;
    for (std::int64_t i = 0; i < m.n_owned; ++i) {
      tmin = std::min(tmin, t[static_cast<std::size_t>(i)]);
      tmax = std::max(tmax, t[static_cast<std::size_t>(i)]);
    }
    tmin = c.allreduce_min(tmin);
    tmax = c.allreduce_max(tmax);
    EXPECT_GT(tmin, -0.35);
    EXPECT_LT(tmax, 1.35);
  });
}

TEST_P(EnergyRanks, InternalHeatingRaisesTemperature) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    std::vector<double> t(static_cast<std::size_t>(m.n_local), 0.0);
    EnergyOptions opt;
    opt.heat_source = 5.0;
    EnergySolver solver(c, m, f.connectivity(), zero_velocity(m), opt);
    const double dt = solver.stable_dt(c);
    for (int s = 0; s < 10; ++s) solver.step(c, t, dt);
    double interior_max = 0.0;
    for (std::int64_t i = 0; i < m.n_owned; ++i)
      if (m.dof_boundary[static_cast<std::size_t>(i)] == 0)
        interior_max = std::max(interior_max, t[static_cast<std::size_t>(i)]);
    EXPECT_GT(c.allreduce_max(interior_max), 0.0);
  });
}

TEST_P(EnergyRanks, StableDtShrinksWithRefinement) {
  alps::par::run(GetParam(), [](Comm& c) {
    EnergyOptions opt;
    opt.kappa = 1e-6;
    double dts[2];
    int k = 0;
    for (int level : {3, 4}) {
      Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), level);
      Mesh m = extract_mesh(c, f);
      std::vector<double> vel(static_cast<std::size_t>(m.n_local) * 4, 0.0);
      for (std::int64_t d = 0; d < m.n_local; ++d)
        vel[static_cast<std::size_t>(d) * 4] = 1.0;
      EnergySolver solver(c, m, f.connectivity(), vel, opt);
      dts[k++] = solver.stable_dt(c);
    }
    EXPECT_NEAR(dts[1], 0.5 * dts[0], 1e-9);  // advective limit halves
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnergyRanks, ::testing::Values(1, 2));

}  // namespace
