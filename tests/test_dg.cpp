// Tests for the high-order nodal DG module (src/dg).

#include <gtest/gtest.h>

#include <cmath>

#include "dg/advect.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using dg::DerivativeKernel;
using dg::DgAdvection;
using dg::lgl_rule;
using dg::LglRule;
using forest::Connectivity;
using forest::Forest;
using par::Comm;

TEST(Lgl, NodesAndWeightsKnownValues) {
  // p = 1: endpoints, equal weights.
  LglRule r1 = lgl_rule(1);
  EXPECT_NEAR(r1.nodes[0], 0.0, 1e-15);
  EXPECT_NEAR(r1.nodes[1], 1.0, 1e-15);
  EXPECT_NEAR(r1.weights[0], 0.5, 1e-15);
  // p = 2: midpoint with weight 2/3 (on [0,1]: 4/6).
  LglRule r2 = lgl_rule(2);
  EXPECT_NEAR(r2.nodes[1], 0.5, 1e-14);
  EXPECT_NEAR(r2.weights[1], 4.0 / 6.0, 1e-14);
  // p = 4: interior nodes at (1 +- sqrt(3/7))/2.
  LglRule r4 = lgl_rule(4);
  EXPECT_NEAR(r4.nodes[1], 0.5 * (1.0 - std::sqrt(3.0 / 7.0)), 1e-12);
  EXPECT_NEAR(r4.nodes[3], 0.5 * (1.0 + std::sqrt(3.0 / 7.0)), 1e-12);
}

TEST(Lgl, WeightsIntegratePolynomialsExactly) {
  for (int p = 1; p <= 8; ++p) {
    LglRule r = lgl_rule(p);
    // LGL integrates degree 2p-1 exactly; check x^(2p-1).
    double s = 0.0;
    for (std::size_t i = 0; i < r.nodes.size(); ++i)
      s += r.weights[i] * std::pow(r.nodes[i], 2 * p - 1);
    EXPECT_NEAR(s, 1.0 / (2.0 * p), 1e-12) << "p=" << p;
    double total = 0.0;
    for (double w : r.weights) total += w;
    EXPECT_NEAR(total, 1.0, 1e-13);
  }
}

TEST(Lgl, DifferentiationMatrixExactOnPolynomials) {
  for (int p = 2; p <= 6; ++p) {
    LglRule r = lgl_rule(p);
    std::vector<double> d = dg::differentiation_matrix(r);
    const std::size_t n = r.nodes.size();
    // Differentiate x^p: derivative p x^(p-1).
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        s += d[i * n + j] * std::pow(r.nodes[j], p);
      EXPECT_NEAR(s, p * std::pow(r.nodes[i], p - 1), 1e-10);
    }
  }
}

TEST(Kernels, TensorAndMatrixAgree) {
  for (int p : {1, 2, 4, 6}) {
    DerivativeKernel k(p);
    const std::int64_t n3 = k.nodes_per_elem();
    std::vector<double> u(static_cast<std::size_t>(n3));
    for (std::size_t i = 0; i < u.size(); ++i)
      u[i] = std::sin(0.37 * static_cast<double>(i));
    std::vector<double> tx(u.size()), ty(u.size()), tz(u.size());
    std::vector<double> mx(u.size()), my(u.size()), mz(u.size());
    k.apply_tensor(u, tx, ty, tz);
    k.apply_matrix(u, mx, my, mz);
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_NEAR(tx[i], mx[i], 1e-10);
      EXPECT_NEAR(ty[i], my[i], 1e-10);
      EXPECT_NEAR(tz[i], mz[i], 1e-10);
    }
  }
}

TEST(Kernels, FlopCountsMatchPaperFormulas) {
  DerivativeKernel k(4);
  EXPECT_EQ(k.flops_tensor(), 6 * 5 * 5 * 5 * 5);
  EXPECT_EQ(k.flops_matrix(), 6LL * 5 * 5 * 5 * 5 * 5 * 5);
}

class DgRanks : public ::testing::TestWithParam<int> {};

TEST_P(DgRanks, ConstantFieldIsSteady) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::brick(2, 1, 1, true, true, true), 1);
    DgAdvection dg(c, f, 3, dg::brick_geometry(f.connectivity()),
                   [](const std::array<double, 3>&, double) {
                     return std::array<double, 3>{1.0, 0.5, -0.25};
                   });
    std::vector<double> u =
        dg.interpolate([](const std::array<double, 3>&) { return 4.2; });
    std::vector<double> r(u.size());
    dg.rhs(c, u, 0.0, r);
    for (double v : r) EXPECT_NEAR(v, 0.0, 1e-10);
  });
}

TEST_P(DgRanks, LinearFieldHasExactDerivative) {
  alps::par::run(GetParam(), [](Comm& c) {
    // du/dt = -a . grad(u) with u = x: rhs must be exactly -a_x.
    Forest f = Forest::new_uniform(c, Connectivity::brick(1, 1, 1, true, true, true), 1);
    DgAdvection dg(c, f, 2, dg::brick_geometry(f.connectivity()),
                   [](const std::array<double, 3>&, double) {
                     return std::array<double, 3>{2.0, 0.0, 0.0};
                   });
    std::vector<double> u = dg.interpolate(
        [](const std::array<double, 3>& p) { return 3.0 * p[1]; });
    std::vector<double> r(u.size());
    dg.rhs(c, u, 0.0, r);
    // velocity has no y-component: rhs = 0 despite gradient in y
    // (checks metric terms and face coupling don't pollute).
    for (double v : r) EXPECT_NEAR(v, 0.0, 1e-10);
  });
}

TEST_P(DgRanks, PeriodicAdvectionReturnsToStart) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Advect a smooth bump across a periodic unit cube and back to the
    // starting position; high-order DG should return it almost exactly.
    Forest f = Forest::new_uniform(
        c, Connectivity::brick(1, 1, 1, true, true, true), 1);
    const int p = 6;
    DgAdvection dg(c, f, p, dg::brick_geometry(f.connectivity()),
                   [](const std::array<double, 3>&, double) {
                     return std::array<double, 3>{1.0, 0.0, 0.0};
                   });
    const auto bump = [](const std::array<double, 3>& x) {
      return std::sin(2.0 * M_PI * x[0]) * std::cos(2.0 * M_PI * x[1]);
    };
    std::vector<double> u = dg.interpolate(bump);
    const std::vector<double> u0 = u;
    const double dt0 = dg.stable_dt(c, 0.0);
    const int steps = static_cast<int>(std::ceil(1.0 / dt0));
    const double dt = 1.0 / steps;  // exactly one period
    double t = 0.0;
    for (int s = 0; s < steps; ++s) {
      dg.step(c, u, t, dt);
      t += dt;
    }
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      err = std::max(err, std::abs(u[i] - u0[i]));
      norm = std::max(norm, std::abs(u0[i]));
    }
    err = c.allreduce_max(err);
    EXPECT_LT(err, 0.02 * norm);
  });
}

TEST_P(DgRanks, MassConservedOnPeriodicMesh) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(
        c, Connectivity::brick(2, 2, 1, true, true, true), 1);
    DgAdvection dg(c, f, 4, dg::brick_geometry(f.connectivity()),
                   [](const std::array<double, 3>&, double) {
                     return std::array<double, 3>{0.7, 0.4, 0.0};
                   });
    std::vector<double> u = dg.interpolate([](const std::array<double, 3>& x) {
      return 1.0 + 0.5 * std::sin(M_PI * x[0]) * std::sin(M_PI * x[1]);
    });
    const double m0 = dg.integral(c, u);
    const double dt = dg.stable_dt(c, 0.0);
    double t = 0.0;
    for (int s = 0; s < 10; ++s) {
      dg.step(c, u, t, dt);
      t += dt;
    }
    EXPECT_NEAR(dg.integral(c, u), m0, 5e-4 * std::abs(m0));
  });
}

TEST_P(DgRanks, NonconformingMeshStaysStableAndAccurate) {
  alps::par::run(GetParam(), [](Comm& c) {
    // Refine half the domain: 2:1 faces appear; advection across them
    // must remain stable and roughly conservative.
    Forest f = Forest::new_uniform(
        c, Connectivity::brick(1, 1, 1, true, true, true), 1);
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
    for (std::size_t i = 0; i < flags.size(); ++i)
      if (f.tree().leaves()[i].x == 0) flags[i] = 1;
    f.tree().adapt(flags, 0, 6);
    f.tree().update_ranges(c);
    f.balance(c);
    f.partition(c);
    DgAdvection dg(c, f, 4, dg::brick_geometry(f.connectivity()),
                   [](const std::array<double, 3>&, double) {
                     return std::array<double, 3>{1.0, 0.0, 0.0};
                   });
    std::vector<double> u = dg.interpolate([](const std::array<double, 3>& x) {
      return std::exp(-30.0 * ((x[0] - 0.5) * (x[0] - 0.5) +
                               (x[1] - 0.5) * (x[1] - 0.5)));
    });
    const double m0 = dg.integral(c, u);
    const double dt = dg.stable_dt(c, 0.0);
    double t = 0.0;
    double umax0 = 0.0;
    for (double v : u) umax0 = std::max(umax0, std::abs(v));
    umax0 = c.allreduce_max(umax0);
    for (int s = 0; s < 20; ++s) {
      dg.step(c, u, t, dt);
      t += dt;
    }
    double umax = 0.0;
    for (double v : u) umax = std::max(umax, std::abs(v));
    umax = c.allreduce_max(umax);
    EXPECT_LT(umax, 1.5 * umax0);  // stable
    EXPECT_NEAR(dg.integral(c, u), m0, 0.02 * std::abs(m0) + 1e-6);
  });
}

TEST_P(DgRanks, CubedSphereSolidBodyRotationIsStable) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f =
        Forest::new_uniform(c, Connectivity::cubed_sphere_shell(), 1);
    DgAdvection dg(c, f, 3,
                   dg::shell_geometry(f.connectivity(), 0.55, 1.0),
                   [](const std::array<double, 3>& x, double) {
                     return dg::solid_body_rotation(x, 1.0);
                   });
    std::vector<double> u = dg.interpolate([](const std::array<double, 3>& x) {
      const double dx = x[0] - 0.8, dy = x[1], dz = x[2];
      return std::exp(-20.0 * (dx * dx + dy * dy + dz * dz));
    });
    const double m0 = dg.integral(c, u);
    const double dt = dg.stable_dt(c, 0.0);
    double t = 0.0;
    for (int s = 0; s < 10; ++s) {
      dg.step(c, u, t, dt);
      t += dt;
    }
    double umax = 0.0;
    for (double v : u) umax = std::max(umax, std::abs(v));
    EXPECT_LT(c.allreduce_max(umax), 2.0);
    EXPECT_NEAR(dg.integral(c, u), m0, 0.05 * std::abs(m0) + 1e-6);
  });
}

TEST_P(DgRanks, AdaptivityTransferPreservesPolynomials) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 1);
    const int p = 3;
    DgAdvection dg(c, f, p, dg::brick_geometry(f.connectivity()),
                   [](const std::array<double, 3>&, double) {
                     return std::array<double, 3>{1, 0, 0};
                   });
    // A degree-3 polynomial is represented exactly at order 3 and must
    // survive refine + coarsen exactly.
    const auto poly = [](const std::array<double, 3>& x) {
      return x[0] * x[0] * x[0] - 2.0 * x[1] * x[1] + x[2] + 0.3 * x[0] * x[1] * x[2];
    };
    std::vector<double> u = dg.interpolate(poly);
    const std::vector<octree::Octant> leaves0 = f.tree().leaves();
    std::vector<std::int8_t> flags(leaves0.size(), 1);
    f.tree().adapt(flags, 0, 6);
    auto corr = octree::compute_correspondence(leaves0, f.tree().leaves());
    std::vector<double> u1 = dg::dg_interpolate_element_values(
        p, leaves0, f.tree().leaves(), corr, u);
    // Verify against analytic values on the refined forest.
    DgAdvection dg1(c, f, p, dg::brick_geometry(f.connectivity()),
                    [](const std::array<double, 3>&, double) {
                      return std::array<double, 3>{1, 0, 0};
                    });
    const std::vector<double> exact = dg1.interpolate(poly);
    for (std::size_t i = 0; i < u1.size(); ++i)
      EXPECT_NEAR(u1[i], exact[i], 1e-11);
    // Coarsen back.
    const std::vector<octree::Octant> leaves1 = f.tree().leaves();
    std::vector<std::int8_t> cf(leaves1.size(), -1);
    f.tree().adapt(cf, 0, 6);
    auto corr2 = octree::compute_correspondence(leaves1, f.tree().leaves());
    std::vector<double> u2 = dg::dg_interpolate_element_values(
        p, leaves1, f.tree().leaves(), corr2, u1);
    for (std::size_t i = 0; i < u.size(); ++i) EXPECT_NEAR(u2[i], u[i], 1e-11);
  });
}

TEST_P(DgRanks, MatrixAndTensorKernelsGiveSameRhs) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(
        c, Connectivity::brick(1, 1, 1, true, true, true), 1);
    const auto vel = [](const std::array<double, 3>&, double) {
      return std::array<double, 3>{0.8, -0.3, 0.1};
    };
    DgAdvection tensor(c, f, 3, dg::brick_geometry(f.connectivity()), vel,
                       /*use_matrix_kernel=*/false);
    DgAdvection matrix(c, f, 3, dg::brick_geometry(f.connectivity()), vel,
                       /*use_matrix_kernel=*/true);
    const auto field = [](const std::array<double, 3>& x) {
      return std::sin(2 * M_PI * x[0]) * std::cos(2 * M_PI * x[1]) + x[2];
    };
    std::vector<double> u = tensor.interpolate(field);
    std::vector<double> rt(u.size()), rm(u.size());
    tensor.rhs(c, u, 0.0, rt);
    matrix.rhs(c, u, 0.0, rm);
    for (std::size_t i = 0; i < u.size(); ++i)
      EXPECT_NEAR(rt[i], rm[i], 1e-9);
    // The flop accounting reflects the 6(p+1)^6 vs 6(p+1)^4 difference.
    EXPECT_GT(matrix.kernel_flops(), 10 * tensor.kernel_flops());
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, DgRanks, ::testing::Values(1, 2));

}  // namespace
