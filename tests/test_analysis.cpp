// obs::analysis + obs hardware counters: Scalasca-style wait-state
// classification (late-sender blame, collective imbalance, achieved
// overlap), per-step critical-path stitching via analyze_step, Perfetto
// flow-event pairing across ranks, and the perf_event sampling fallback
// (real counts when permitted, clean "unavailable" otherwise).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/hwcounters.hpp"
#include "obs/obs.hpp"
#include "par/runtime.hpp"

using namespace alps;

namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Restore every analysis/tracing/hw switch so test ordering never leaks.
class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_analysis_enabled(true); }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_analysis_enabled(true);  // default-on
    obs::set_hw_enabled(false);
    obs::set_hw_unavailable_for_testing(false);
    obs::analysis::reset_records();
  }
};

const obs::PhaseWaitSample* find_phase(
    const std::vector<obs::PhaseWaitSample>& samples, const char* phase) {
  for (const auto& s : samples)
    if (s.phase == phase) return &s;
  return nullptr;
}

}  // namespace

TEST_F(AnalysisTest, LateSenderBlockedTimeIsAttributedToTheSlowSender) {
  par::run(2, [](par::Comm& c) {
    OBS_PHASE_SPAN("test.late_sender");
    if (c.rank() == 1) {
      sleep_ms(30);  // the receiver is already blocked when this posts
      c.send(0, 7, std::vector<double>{1.0});
    } else {
      (void)c.recv<double>(1, 7);
    }
  });
  const auto samples = obs::wait_samples(0);
  const obs::PhaseWaitSample* s = find_phase(samples, "test.late_sender");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->w.recvs, 1u);
  EXPECT_EQ(s->w.waited_recvs, 1u);
  // Most of the ~30ms block predates the send: late-sender, blamed on 1.
  EXPECT_GT(s->w.late_sender_s, 0.005);
  ASSERT_EQ(s->late_sender_by_rank.size(), 1u);
  EXPECT_EQ(s->late_sender_by_rank[0].first, 1);
  EXPECT_GT(s->late_sender_by_rank[0].second, 0.005);
}

TEST_F(AnalysisTest, LateReceiverCountsQueuedTimeWithoutBlocking) {
  par::run(2, [](par::Comm& c) {
    OBS_PHASE_SPAN("test.late_receiver");
    if (c.rank() == 1) {
      c.send(0, 7, std::vector<double>{1.0});
    } else {
      sleep_ms(30);  // the message sits queued while this rank "computes"
      (void)c.recv<double>(1, 7);
    }
  });
  const auto samples = obs::wait_samples(0);
  const obs::PhaseWaitSample* s = find_phase(samples, "test.late_receiver");
  ASSERT_NE(s, nullptr);
  // Queue time was hidden by local work: no late-sender blame, and the
  // hidden-communication bucket carries roughly the sleep.
  EXPECT_LT(s->w.late_sender_s, 0.005);
  EXPECT_GT(s->w.late_receiver_s, 0.005);
}

TEST_F(AnalysisTest, CollectiveImbalanceLandsInTheCollectiveBucket) {
  par::run(2, [](par::Comm& c) {
    OBS_PHASE_SPAN("test.collective");
    if (c.rank() == 0) sleep_ms(30);
    c.barrier();
  });
  const auto fast = obs::wait_samples(1);
  const obs::PhaseWaitSample* s = find_phase(fast, "test.collective");
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->w.collectives, 1u);
  EXPECT_GT(s->w.collective_s, 0.005);  // blocked on the sleeping rank
  const auto slow = obs::wait_samples(0);
  const obs::PhaseWaitSample* t = find_phase(slow, "test.collective");
  ASSERT_NE(t, nullptr);
  EXPECT_LT(t->w.collective_s, 0.02);  // the straggler barely waits
}

TEST_F(AnalysisTest, OverlapMarksMeasureCoveredVersusWaitedHaloTime) {
  par::run(2, [](par::Comm& c) {
    OBS_PHASE_SPAN("test.overlap");
    if (c.rank() == 1) {
      sleep_ms(20);
      c.send(0, 9, std::vector<double>{2.0});
    } else {
      // Split-phase halo shape: post (start), compute, consume (finish).
      obs::overlap_mark_start();
      sleep_ms(5);  // overlapped local compute
      obs::overlap_mark_finish_begin();
      (void)c.recv<double>(1, 9);  // still waits: sender is slower
      obs::overlap_mark_finish_end();
    }
  });
  const auto samples = obs::wait_samples(0);
  const obs::PhaseWaitSample* s = find_phase(samples, "test.overlap");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->w.halo_ops, 1u);
  EXPECT_GT(s->w.overlap_covered_s, 0.002);  // the 5ms compute
  EXPECT_GT(s->w.overlap_waited_s, 0.002);   // the residual block
  const double cov = s->w.overlap_covered_s /
                     (s->w.overlap_covered_s + s->w.overlap_waited_s);
  EXPECT_GE(cov, 0.0);
  EXPECT_LE(cov, 1.0);
}

TEST_F(AnalysisTest, AnalyzeStepStitchesCriticalPathToTheSlowestRank) {
  obs::analysis::reset_records();
  obs::analysis::StepRecord recs[4];
  par::run(4, [&](par::Comm& c) {
    {
      OBS_PHASE_SPAN("test.stitch");
      sleep_ms(2 + 10 * c.rank());  // rank 3 is the straggler
    }
    recs[c.rank()] = obs::analysis::analyze_step(c, 1);
  });
  const obs::analysis::StepRecord& rec = recs[0];
  EXPECT_EQ(rec.step, 1);
  const obs::analysis::PhaseCritical* c3 = nullptr;
  for (const auto& p : rec.critical)
    if (p.phase == "test.stitch") c3 = &p;
  ASSERT_NE(c3, nullptr);
  EXPECT_EQ(c3->rank, 3);
  EXPECT_GE(c3->cp_s, c3->mean_s);
  EXPECT_GT(c3->imbalance, 1.0);
  EXPECT_GE(rec.cp_length_s, rec.mean_length_s);
  // Every rank computed the same stitched record (it is a collective).
  for (int r = 1; r < 4; ++r)
    EXPECT_DOUBLE_EQ(recs[r].cp_length_s, rec.cp_length_s);
  // Rank 0 archived it for bench::Reporter / telemetry.
  ASSERT_EQ(obs::analysis::step_records().size(), 1u);
  EXPECT_DOUBLE_EQ(obs::analysis::step_records()[0].cp_length_s,
                   rec.cp_length_s);
}

TEST_F(AnalysisTest, AnalyzeStepBucketsRespectWallTimeAndBlameSlowRank) {
  obs::analysis::reset_records();
  obs::analysis::StepRecord rec;
  par::run(2, [&](par::Comm& c) {
    {
      OBS_PHASE_SPAN("test.blame");
      if (c.rank() == 1) {
        sleep_ms(25);
        c.send(0, 3, std::vector<double>{1.0});
      } else {
        (void)c.recv<double>(1, 3);
      }
    }
    rec = obs::analysis::analyze_step(c, 1);
  });
  const obs::analysis::PhaseWaits* w = nullptr;
  for (const auto& p : rec.waits)
    if (p.phase == "test.blame") w = &p;
  ASSERT_NE(w, nullptr);
  // The locally-exact buckets can never exceed the rank-summed wall time.
  EXPECT_LE(w->w.late_sender_s + w->w.transfer_s + w->w.collective_s,
            w->wall_s * 1.01 + 1e-9);
  EXPECT_EQ(w->blamed_rank, 1);
  EXPECT_GT(w->blamed_s, 0.005);
  // A second analyze_step reports only new activity (delta semantics).
  par::run(2, [&](par::Comm& c) { rec = obs::analysis::analyze_step(c, 2); });
  for (const auto& p : rec.waits) EXPECT_LT(p.w.late_sender_s, 0.005);
}

TEST_F(AnalysisTest, JsonBlocksCarryTheAnalysisFields) {
  obs::analysis::StepRecord rec;
  par::run(2, [&](par::Comm& c) {
    {
      OBS_PHASE_SPAN("test.json");
      if (c.rank() == 1) c.send(0, 4, std::vector<double>{1.0});
      else (void)c.recv<double>(1, 4);
    }
    rec = obs::analysis::analyze_step(c, 5);
  });
  const std::string cp = obs::analysis::critical_path_json(rec);
  EXPECT_NE(cp.find("\"length_s\":"), std::string::npos);
  EXPECT_NE(cp.find("\"phases\":["), std::string::npos);
  EXPECT_NE(cp.find("test.json"), std::string::npos);
  const std::string ws = obs::analysis::wait_states_json(rec);
  EXPECT_NE(ws.find("\"wall_s\":"), std::string::npos);
  EXPECT_NE(ws.find("\"late_sender_s\":"), std::string::npos);
  const auto sum = obs::analysis::summarize({rec, rec});
  EXPECT_EQ(sum.steps, 2);
  EXPECT_DOUBLE_EQ(sum.cp_length_s, 2 * rec.cp_length_s);
}

TEST_F(AnalysisTest, AnalyzeStepIsInertWhenAnalysisIsDisabled) {
  obs::set_analysis_enabled(false);
  obs::analysis::StepRecord rec;
  par::run(2, [&](par::Comm& c) {
    OBS_PHASE_SPAN("test.disabled");
    if (c.rank() == 1) c.send(0, 2, std::vector<double>{1.0});
    else (void)c.recv<double>(1, 2);
    rec = obs::analysis::analyze_step(c, 1);
  });
  EXPECT_TRUE(rec.critical.empty());
  EXPECT_TRUE(rec.waits.empty());
  EXPECT_TRUE(obs::wait_samples(0).empty());
}

TEST_F(AnalysisTest, FlowEventsPairAcrossRanksWithMatchingIds) {
  obs::set_enabled(true);
  par::run(2, [](par::Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 11, std::vector<double>{1.0});
      obs::flow_emit(1, obs::kFlowHaloExchange, true);
    } else {
      obs::flow_emit(0, obs::kFlowHaloExchange, false);
      (void)c.recv<double>(0, 11);
    }
  });
  const std::vector<obs::FlowEvent> f0 = obs::flows(0);
  const std::vector<obs::FlowEvent> f1 = obs::flows(1);
  ASSERT_EQ(f0.size(), 1u);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_TRUE(f0[0].start);
  EXPECT_FALSE(f1[0].start);
  // Both sides derived the same id from their local sequence counters.
  EXPECT_EQ(f0[0].id, f1[0].id);
  EXPECT_EQ(obs::flow_dropped(0), 0u);
  EXPECT_EQ(obs::flow_dropped(1), 0u);
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"alpsFlowDropped\""), std::string::npos);
}

TEST_F(AnalysisTest, FlowSequencesStayMatchedWhenTracingTogglesMidRun) {
  obs::set_enabled(false);
  par::run(2, [](par::Comm& c) {
    // First pair invisible (tracing off), second pair visible: the ids
    // still match because the sequence advances regardless. The toggle is
    // global, so barriers fence it from both emits.
    obs::flow_emit(1 - c.rank(), obs::kFlowGhostForward, c.rank() == 0);
    c.barrier();
    if (c.rank() == 0) obs::set_enabled(true);
    c.barrier();
    obs::flow_emit(1 - c.rank(), obs::kFlowGhostForward, c.rank() == 0);
  });
  const std::vector<obs::FlowEvent> f0 = obs::flows(0);
  const std::vector<obs::FlowEvent> f1 = obs::flows(1);
  ASSERT_EQ(f0.size(), 1u);
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f0[0].id, f1[0].id);
}

TEST_F(AnalysisTest, HwSpansReportUnavailableInsteadOfFabricatingZeros) {
  obs::set_hw_enabled(true);
  obs::set_hw_unavailable_for_testing(true);
  par::run(2, [](par::Comm&) {
    OBS_HW_SPAN("test.hw_unavail");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  });
  bool found = false;
  for (const auto& [name, c] : obs::aggregate_hw()) {
    if (name != "test.hw_unavail") continue;
    found = true;
#ifndef ALPS_OBS_DISABLE
    EXPECT_EQ(c.spans, 2u);  // one scope per rank, still counted
#endif
    EXPECT_FALSE(c.available());
    EXPECT_FALSE(c.cycles_ok);
    EXPECT_EQ(c.cycles, 0u);
  }
#ifndef ALPS_OBS_DISABLE
  EXPECT_TRUE(found);
#else
  // -DALPS_OBS_DISABLE compiles OBS_HW_SPAN out entirely: zero cost,
  // zero records.
  EXPECT_FALSE(found);
#endif
}

TEST_F(AnalysisTest, HwSpansDeliverRealCountsWhenPerfIsPermitted) {
  obs::set_hw_enabled(true);
  par::run(1, [](par::Comm&) {
    OBS_HW_SPAN("test.hw_real");
    volatile double x = 1.0;
    for (int i = 0; i < 200000; ++i) x = x * 1.0000001 + 1e-9;
  });
#ifndef ALPS_OBS_DISABLE
  bool found = false;
  for (const auto& [name, c] : obs::aggregate_hw()) {
    if (name != "test.hw_real") continue;
    found = true;
    EXPECT_EQ(c.spans, 1u);
    if (obs::hw_available()) {
      // The probe passed: at least cycles/instructions count for real.
      EXPECT_TRUE(c.available());
      if (c.cycles_ok) EXPECT_GT(c.cycles, 0u);
      if (c.instructions_ok) EXPECT_GT(c.instructions, 0u);
    } else {
      // Unprivileged environment: clean unavailable, never fake counts.
      EXPECT_FALSE(c.available());
    }
  }
  EXPECT_TRUE(found);
#endif
}

TEST_F(AnalysisTest, DisabledHwSamplingRecordsNothing) {
  obs::set_hw_enabled(false);
  par::run(1, [](par::Comm&) { OBS_HW_SPAN("test.hw_off"); });
  for (const auto& [name, c] : obs::aggregate_hw())
    EXPECT_NE(name, "test.hw_off");
}
