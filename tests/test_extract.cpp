// Parity tests for the extraction rewrite (src/mesh/extract.cpp): the
// hashed and incremental paths must be BIT-IDENTICAL to the per-corner
// reference oracle — same global numbering, same constraint rows (masters
// and weights), same halo plans — across rank counts, geometries, and
// refine/coarsen/repartition sequences. The incremental path additionally
// must reuse a positive fraction of elements on non-repartitioning adapts
// and fall back to a full extraction (identical result, epoch reset) when
// the ownership ranges moved or there is no usable previous mesh.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/ghost.hpp"
#include "mesh/mesh.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::mesh;
using alps::forest::Connectivity;
using alps::forest::Forest;
using alps::octree::Adjacency;
using alps::octree::coord_t;
using alps::octree::kMaxLevel;
using alps::octree::octant_len;
using alps::octree::Octant;
using alps::par::Comm;

// Every field that defines the mesh contract, compared exactly (doubles
// included — the two paths must agree bitwise, not approximately).
void expect_mesh_equal(const Mesh& a, const Mesh& b) {
  ASSERT_EQ(a.elements.size(), b.elements.size());
  for (std::size_t e = 0; e < a.elements.size(); ++e)
    EXPECT_TRUE(a.elements[e] == b.elements[e]) << "element " << e;

  EXPECT_EQ(a.n_owned, b.n_owned);
  EXPECT_EQ(a.n_local, b.n_local);
  EXPECT_EQ(a.n_global, b.n_global);
  EXPECT_EQ(a.gid_offset, b.gid_offset);
  ASSERT_EQ(a.dof_keys.size(), b.dof_keys.size());
  for (std::size_t i = 0; i < a.dof_keys.size(); ++i)
    EXPECT_TRUE(a.dof_keys[i] == b.dof_keys[i]) << "dof key " << i;
  EXPECT_EQ(a.dof_gids, b.dof_gids);
  EXPECT_EQ(a.dof_boundary, b.dof_boundary);
  ASSERT_EQ(a.dof_coords.size(), b.dof_coords.size());
  for (std::size_t i = 0; i < a.dof_coords.size(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_EQ(a.dof_coords[i][d], b.dof_coords[i][d]) << "coord " << i;

  ASSERT_EQ(a.corners.size(), b.corners.size());
  for (std::size_t e = 0; e < a.corners.size(); ++e)
    for (int c = 0; c < 8; ++c) {
      const Corner& ca = a.corners[e][static_cast<std::size_t>(c)];
      const Corner& cb = b.corners[e][static_cast<std::size_t>(c)];
      EXPECT_EQ(ca.hanging, cb.hanging) << "element " << e << " corner " << c;
      ASSERT_EQ(ca.n, cb.n) << "element " << e << " corner " << c;
      for (int i = 0; i < ca.n; ++i) {
        EXPECT_EQ(ca.dof[static_cast<std::size_t>(i)],
                  cb.dof[static_cast<std::size_t>(i)])
            << "element " << e << " corner " << c << " master " << i;
        EXPECT_EQ(ca.w[static_cast<std::size_t>(i)],
                  cb.w[static_cast<std::size_t>(i)])
            << "element " << e << " corner " << c << " weight " << i;
      }
    }

  EXPECT_EQ(a.send_idx, b.send_idx);
  EXPECT_EQ(a.recv_idx, b.recv_idx);
}

// Refine every leaf whose center is within sqrt(r2) of `center` (in the
// per-tree reference cube), then balance. Deterministic on any rank count.
void refine_near(Comm& c, Forest& f, const std::array<double, 3>& center,
                 double r2, int max_level) {
  const auto& conn = f.connectivity();
  std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const Octant& o = f.tree().leaves()[i];
    const coord_t h = octant_len(o.level);
    const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
    const double d2 = (p[0] - center[0]) * (p[0] - center[0]) +
                      (p[1] - center[1]) * (p[1] - center[1]) +
                      (p[2] - center[2]) * (p[2] - center[2]);
    if (d2 < r2 && o.level < max_level) flags[i] = 1;
  }
  f.tree().adapt(flags, 0, max_level);
  f.balance(c, Adjacency::kFaceEdge);
}

// Coarsen every leaf above `level` whose center is within sqrt(r2) of
// `center` (complete local sibling groups only, per the adapt contract).
void coarsen_near(Comm& c, Forest& f, const std::array<double, 3>& center,
                  double r2, int min_level) {
  const auto& conn = f.connectivity();
  std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const Octant& o = f.tree().leaves()[i];
    const coord_t h = octant_len(o.level);
    const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
    const double d2 = (p[0] - center[0]) * (p[0] - center[0]) +
                      (p[1] - center[1]) * (p[1] - center[1]) +
                      (p[2] - center[2]) * (p[2] - center[2]);
    if (d2 < r2 && o.level > min_level) flags[i] = -1;
  }
  f.tree().adapt(flags, min_level, kMaxLevel);
  f.balance(c, Adjacency::kFaceEdge);
}

// An adapted, balanced, evenly-partitioned forest with hanging nodes.
Forest adapted_forest(Comm& c, Connectivity conn, int level) {
  Forest f = Forest::new_uniform(c, std::move(conn), level);
  refine_near(c, f, {0.5, 0.5, 0.5}, 0.1, level + 2);
  refine_near(c, f, {0.5, 0.5, 0.5}, 0.03, level + 2);
  f.tree().update_ranges(c);
  f.partition(c);
  return f;
}

class ExtractRanks : public ::testing::TestWithParam<int> {};

TEST_P(ExtractRanks, HashedMatchesReferenceUnitCube) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    Mesh ref = extract_mesh_reference(c, f);
    Mesh hashed = extract_mesh(c, f);
    expect_mesh_equal(ref, hashed);
    EXPECT_EQ(hashed.epoch, 1);
  });
}

TEST_P(ExtractRanks, HashedMatchesReferenceTwoTreeBrick) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::brick(2, 1, 1), 2);
    expect_mesh_equal(extract_mesh_reference(c, f), extract_mesh(c, f));
  });
}

TEST_P(ExtractRanks, HashedMatchesReferenceCubedSphereShell) {
  alps::par::run(GetParam(), [](Comm& c) {
    // 24 trees with rotated inter-tree coordinate frames: the hardest
    // canonicalization case (corner nodes shared by up to 4 frames).
    Forest f = adapted_forest(c, Connectivity::cubed_sphere_shell(), 1);
    expect_mesh_equal(extract_mesh_reference(c, f), extract_mesh(c, f));
  });
}

TEST_P(ExtractRanks, GhostOverloadMatchesSelfComputed) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    std::vector<Octant> ghosts =
        ghost_layer(c, f.tree(), f.connectivity());
    expect_mesh_equal(extract_mesh(c, f),
                      extract_mesh(c, f, std::move(ghosts)));
  });
}

TEST_P(ExtractRanks, IncrementalMatchesReferenceAndReuses) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    Mesh prev = extract_mesh(c, f);

    // Local adaptation, no repartition: ownership ranges stay fixed.
    refine_near(c, f, {0.2, 0.8, 0.3}, 0.04, 4);
    ExtractStats stats;
    Mesh incr = extract_mesh_incremental(
        c, f, ghost_layer(c, f.tree(), f.connectivity()), prev, &stats);
    expect_mesh_equal(extract_mesh_reference(c, f), incr);

    EXPECT_FALSE(c.allreduce_or(stats.fallback));
    EXPECT_GT(c.allreduce_sum(stats.reused), 0);
    EXPECT_GT(c.allreduce_sum(stats.recomputed), 0);
    EXPECT_EQ(stats.reused + stats.recomputed,
              static_cast<std::int64_t>(incr.elements.size()));
    EXPECT_EQ(incr.epoch, 2);
  });
}

TEST_P(ExtractRanks, IncrementalChainAcrossRefineAndCoarsen) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);

    // Refine a front, coarsen it back, refine elsewhere — each step
    // re-extracts incrementally from the previous mesh and must match
    // the oracle; the epoch counts the chain.
    const std::array<std::array<double, 3>, 3> centers = {
        {{0.2, 0.8, 0.3}, {0.2, 0.8, 0.3}, {0.8, 0.2, 0.7}}};
    for (int step = 0; step < 3; ++step) {
      if (step == 1)
        coarsen_near(c, f, centers[static_cast<std::size_t>(step)], 0.04, 2);
      else
        refine_near(c, f, centers[static_cast<std::size_t>(step)], 0.04, 4);
      ExtractStats stats;
      Mesh next = extract_mesh_incremental(
          c, f, ghost_layer(c, f.tree(), f.connectivity()), m, &stats);
      expect_mesh_equal(extract_mesh_reference(c, f), next);
      EXPECT_FALSE(c.allreduce_or(stats.fallback));
      EXPECT_EQ(next.epoch, m.epoch + 1);
      m = std::move(next);
    }
    EXPECT_EQ(m.epoch, 4);
  });
}

TEST_P(ExtractRanks, IncrementalFallsBackAfterPartition) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    Mesh prev = extract_mesh(c, f);

    // Skew the element distribution, then repartition: ranges move on
    // P > 1, and the incremental path must detect it and do a full
    // rebuild (bit-identical to the oracle, epoch reset to 1).
    refine_near(c, f, {0.1, 0.1, 0.1}, 0.06, 4);
    f.tree().update_ranges(c);
    f.partition(c);
    ExtractStats stats;
    Mesh after = extract_mesh_incremental(
        c, f, ghost_layer(c, f.tree(), f.connectivity()), prev, &stats);
    expect_mesh_equal(extract_mesh_reference(c, f), after);
    if (c.size() > 1) {
      EXPECT_TRUE(stats.fallback);
      EXPECT_EQ(after.epoch, 1);
    }
  });
}

TEST_P(ExtractRanks, NeverExtractedPreviousFallsBack) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    Mesh prev;  // epoch 0: no provenance, must fall back
    ExtractStats stats;
    Mesh m = extract_mesh_incremental(
        c, f, ghost_layer(c, f.tree(), f.connectivity()), prev, &stats);
    expect_mesh_equal(extract_mesh_reference(c, f), m);
    EXPECT_TRUE(stats.fallback);
    EXPECT_EQ(stats.reused, 0);
    EXPECT_EQ(m.epoch, 1);
  });
}

TEST_P(ExtractRanks, IncrementalIdentityAdaptReusesEverything) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = adapted_forest(c, Connectivity::unit_cube(), 2);
    Mesh prev = extract_mesh(c, f);

    // No adaptation at all: every element must take the reuse path.
    ExtractStats stats;
    Mesh again = extract_mesh_incremental(
        c, f, ghost_layer(c, f.tree(), f.connectivity()), prev, &stats);
    expect_mesh_equal(extract_mesh_reference(c, f), again);
    EXPECT_FALSE(c.allreduce_or(stats.fallback));
    EXPECT_EQ(stats.recomputed, 0);
    EXPECT_EQ(stats.reused,
              static_cast<std::int64_t>(again.elements.size()));
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, ExtractRanks, ::testing::Values(1, 2, 4));

}  // namespace
