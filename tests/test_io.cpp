// Tests for the VTK writer (src/io) and the adjoint indicator
// (src/rhea/indicator extension).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fem/operators.hpp"
#include "io/vtk.hpp"
#include "mesh/fields.hpp"
#include "rhea/indicator.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using forest::Connectivity;
using forest::Forest;
using par::Comm;

class IoRanks : public ::testing::TestWithParam<int> {};

TEST_P(IoRanks, VtkFileHasConsistentCounts) {
  const std::string path =
      "/tmp/alps_test_" + std::to_string(GetParam()) + ".vtk";
  alps::par::run(GetParam(), [&path](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    mesh::Mesh m = mesh::extract_mesh(c, f);
    std::vector<double> nodal = fem::interpolate(
        m, [](const std::array<double, 3>& p) { return p[0] + p[1]; });
    io::VtkField field{"T", mesh::to_element_values(m, nodal)};
    io::write_vtk(c, f.connectivity(), m, path, {field});
  });
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::int64_t points = 0, cells = 0;
  bool has_level = false, has_t = false;
  std::int64_t data_lines = 0;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string tok;
    ss >> tok;
    if (tok == "POINTS") ss >> points;
    if (tok == "CELLS") ss >> cells;
    if (line.rfind("SCALARS level", 0) == 0) has_level = true;
    if (line.rfind("SCALARS T", 0) == 0) has_t = true;
    data_lines++;
  }
  EXPECT_EQ(cells, 64);
  EXPECT_EQ(points, 8 * 64);
  EXPECT_TRUE(has_level);
  EXPECT_TRUE(has_t);
  EXPECT_GT(data_lines, points);  // point data present
  std::remove(path.c_str());
}

TEST_P(IoRanks, VtkRejectsWrongFieldSize) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 1);
    mesh::Mesh m = mesh::extract_mesh(c, f);
    io::VtkField bad{"x", std::vector<double>(3, 0.0)};
    EXPECT_THROW(io::write_vtk(c, f.connectivity(), m, "/tmp/x.vtk", {bad}),
                 std::invalid_argument);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, IoRanks, ::testing::Values(1, 2));

TEST(AdjointIndicator, ConcentratesUpstreamOfGoal) {
  alps::par::run(1, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    mesh::Mesh m = mesh::extract_mesh(c, f);
    // Temperature varies everywhere; flow is +x; the goal sits at the
    // right wall, so the adjoint spreads leftward from it and the
    // indicator must prefer the right half (the region whose errors are
    // advected INTO the goal) over the far-left inflow corner.
    std::vector<double> t = fem::interpolate(m, [](const std::array<double, 3>& p) {
      return std::sin(3.0 * p[0]) * std::cos(2.0 * p[1]) * std::cos(p[2]);
    });
    std::vector<double> vel(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    for (std::int64_t d = 0; d < m.n_local; ++d)
      vel[static_cast<std::size_t>(d * 4)] = 1.0;
    const auto goal = [](const std::array<double, 3>& p) {
      return p[0] > 0.85 ? 1.0 : 0.0;
    };
    const std::vector<double> eta = rhea::adjoint_indicator(
        c, m, f.connectivity(), t, vel, goal, 1e-4, 5);
    double left = 0, right = 0;
    const auto& conn = f.connectivity();
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      const auto& o = m.elements[e];
      const auto h = alps::octree::octant_len(o.level);
      const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
      (p[0] < 0.5 ? left : right) += eta[e];
    }
    EXPECT_GT(right, 2.0 * left);
  });
}

TEST(AdjointIndicator, ZeroGoalGivesZeroIndicator) {
  alps::par::run(1, [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    mesh::Mesh m = mesh::extract_mesh(c, f);
    std::vector<double> t = fem::interpolate(
        m, [](const std::array<double, 3>& p) { return p[0]; });
    std::vector<double> vel(static_cast<std::size_t>(m.n_local) * 4, 0.0);
    const std::vector<double> eta = rhea::adjoint_indicator(
        c, m, f.connectivity(), t, vel,
        [](const std::array<double, 3>&) { return 0.0; }, 1e-4, 5);
    for (double e : eta) EXPECT_NEAR(e, 0.0, 1e-14);
  });
}

}  // namespace
