// Tests for EXTRACTMESH: node numbering, hanging constraints, ghosts
// (src/mesh/mesh, src/mesh/ghost).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>

#include "mesh/fields.hpp"
#include "mesh/mesh.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::mesh;
using alps::forest::Connectivity;
using alps::forest::Forest;
using alps::octree::Adjacency;
using alps::octree::kMaxLevel;
using alps::octree::LinearOctree;
using alps::par::Comm;

Forest uniform_forest(Comm& c, Connectivity conn, int level) {
  return Forest::new_uniform(c, std::move(conn), level);
}

// Refine the leaf at the domain center a few times and balance, producing
// hanging nodes on faces and edges.
void make_adapted(Comm& c, Forest& f, int rounds) {
  const alps::octree::coord_t mid = alps::octree::coord_t{1}
                                    << (kMaxLevel - 1);
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
    for (std::size_t i = 0; i < f.tree().leaves().size(); ++i) {
      const auto& o = f.tree().leaves()[i];
      if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
    }
    f.tree().adapt(flags, 0, kMaxLevel);
  }
  f.tree().update_ranges(c);
  f.balance(c, Adjacency::kFaceEdge);
}

class MeshRanks : public ::testing::TestWithParam<int> {};

TEST_P(MeshRanks, UniformCubeNodeCount) {
  alps::par::run(GetParam(), [](Comm& c) {
    const int level = 3;
    Forest f = uniform_forest(c, Connectivity::unit_cube(), level);
    Mesh m = extract_mesh(c, f);
    const std::int64_t n = (1 << level) + 1;
    EXPECT_EQ(m.n_global, n * n * n);
    // No hanging nodes on a uniform mesh.
    for (const auto& ec : m.corners)
      for (const Corner& cc : ec) {
        EXPECT_EQ(cc.hanging, 0);
        EXPECT_EQ(cc.n, 1);
        EXPECT_DOUBLE_EQ(cc.w[0], 1.0);
      }
    // Owned dof counts sum to the global count.
    EXPECT_EQ(c.allreduce_sum(m.n_owned), m.n_global);
  });
}

TEST_P(MeshRanks, TwoTreeBrickSharesInterfaceNodes) {
  alps::par::run(GetParam(), [](Comm& c) {
    const int level = 2;
    Forest f = uniform_forest(c, Connectivity::brick(2, 1, 1), level);
    Mesh m = extract_mesh(c, f);
    const std::int64_t n = (1 << level) + 1;  // nodes per tree per axis
    // Interface plane shared: 2*n^3 - n^2.
    EXPECT_EQ(m.n_global, 2 * n * n * n - n * n);
  });
}

TEST_P(MeshRanks, BoundaryMaskCountsSurfaceNodes) {
  alps::par::run(GetParam(), [](Comm& c) {
    const int level = 3;
    Forest f = uniform_forest(c, Connectivity::unit_cube(), level);
    Mesh m = extract_mesh(c, f);
    std::int64_t boundary_owned = 0;
    for (std::int64_t i = 0; i < m.n_owned; ++i)
      if (m.dof_boundary[static_cast<std::size_t>(i)] != 0) boundary_owned++;
    const std::int64_t n = (1 << level) + 1;
    EXPECT_EQ(c.allreduce_sum(boundary_owned), n * n * n - (n - 2) * (n - 2) * (n - 2));
  });
}

TEST_P(MeshRanks, HangingConstraintsPartitionOfUnity) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 2);
    make_adapted(c, f, 3);
    Mesh m = extract_mesh(c, f);
    std::int64_t hanging = 0;
    for (const auto& ec : m.corners)
      for (const Corner& cc : ec) {
        double sum = 0;
        for (int i = 0; i < cc.n; ++i) sum += cc.w[static_cast<std::size_t>(i)];
        EXPECT_NEAR(sum, 1.0, 1e-14);
        if (cc.hanging) {
          hanging++;
          EXPECT_GE(cc.n, 2);
          EXPECT_LE(cc.n, 4);
        }
      }
    EXPECT_GT(c.allreduce_sum(hanging), 0);
  });
}

TEST_P(MeshRanks, LinearFieldIsReproducedThroughConstraints) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 2);
    make_adapted(c, f, 2);
    Mesh m = extract_mesh(c, f);
    // f(x,y,z) = 1 + 2x - 3y + 0.5z at the dof coordinates.
    std::vector<double> nodal(static_cast<std::size_t>(m.n_local));
    for (std::size_t i = 0; i < nodal.size(); ++i) {
      const auto& p = m.dof_coords[i];
      nodal[i] = 1.0 + 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2];
    }
    const std::vector<double> ev = to_element_values(m, nodal);
    const auto& conn = f.connectivity();
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      const auto xyz = m.element_corners_xyz(conn, static_cast<std::int64_t>(e));
      for (int k = 0; k < 8; ++k) {
        const auto& p = xyz[static_cast<std::size_t>(k)];
        const double expect = 1.0 + 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2];
        EXPECT_NEAR(ev[8 * e + static_cast<std::size_t>(k)], expect, 1e-12);
      }
    }
  });
}

TEST_P(MeshRanks, ElementValuesAgreeAtSharedPoints) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 2);
    make_adapted(c, f, 3);
    Mesh m = extract_mesh(c, f);
    // Random-but-consistent nodal values: hash of the global id.
    std::vector<double> nodal(static_cast<std::size_t>(m.n_local));
    for (std::size_t i = 0; i < nodal.size(); ++i)
      nodal[i] = std::sin(0.1 * static_cast<double>(m.dof_gids[i]));
    const std::vector<double> ev = to_element_values(m, nodal);
    // Two local elements assigning different values to the same physical
    // corner point would break continuity.
    std::map<std::array<long, 3>, double> seen;
    const auto& conn = f.connectivity();
    for (std::size_t e = 0; e < m.elements.size(); ++e) {
      const auto xyz = m.element_corners_xyz(conn, static_cast<std::int64_t>(e));
      for (int k = 0; k < 8; ++k) {
        std::array<long, 3> key;
        for (int d = 0; d < 3; ++d)
          key[static_cast<std::size_t>(d)] = std::lround(
              xyz[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)] *
              (1 << 20));
        auto [it, inserted] =
            seen.try_emplace(key, ev[8 * e + static_cast<std::size_t>(k)]);
        if (!inserted) {
          EXPECT_NEAR(it->second, ev[8 * e + static_cast<std::size_t>(k)], 1e-12);
        }
      }
    }
  });
}

TEST_P(MeshRanks, ExchangeFillsGhostsWithOwnerValues) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    std::vector<double> v(static_cast<std::size_t>(m.n_local), -1.0);
    for (std::int64_t i = 0; i < m.n_owned; ++i)
      v[static_cast<std::size_t>(i)] = static_cast<double>(m.dof_gids[static_cast<std::size_t>(i)]);
    m.exchange(c, v);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i)],
                       static_cast<double>(m.dof_gids[static_cast<std::size_t>(i)]));
  });
}

TEST_P(MeshRanks, AccumulateSumsGhostContributions) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    // Every rank contributes 1 per local dof copy; after accumulate the
    // owner's entry counts the number of ranks that had the dof.
    std::vector<double> v(static_cast<std::size_t>(m.n_local), 1.0);
    m.accumulate(c, v);
    double total = 0;
    for (std::int64_t i = 0; i < m.n_owned; ++i)
      total += v[static_cast<std::size_t>(i)];
    const double global = c.allreduce_sum(total);
    double copies = static_cast<double>(m.n_local);
    const double expected = c.allreduce_sum(copies);
    EXPECT_DOUBLE_EQ(global, expected);
  });
}

TEST_P(MeshRanks, GlobalCountIndependentOfRankCount) {
  // Extract the same adapted mesh on different communicator sizes; the
  // reference global dof count comes from a single-rank run.
  static std::int64_t reference = -1;
  alps::par::run(1, [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 2);
    make_adapted(c, f, 3);
    Mesh m = extract_mesh(c, f);
    reference = m.n_global;
  });
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = uniform_forest(c, Connectivity::unit_cube(), 2);
    make_adapted(c, f, 3);
    Mesh m = extract_mesh(c, f);
    EXPECT_EQ(m.n_global, reference);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshRanks, ::testing::Values(1, 2, 3, 5));

TEST(MeshCanonical, UnitCubeNodesAreTheirOwnCanonicalForm) {
  Connectivity conn = Connectivity::unit_cube();
  const alps::octree::coord_t n = alps::octree::coord_t{1} << kMaxLevel;
  auto [k, mask] = canonical_node(conn, NodeKey{0, 0, 0, 0});
  EXPECT_EQ(k, (NodeKey{0, 0, 0, 0}));
  EXPECT_EQ(mask, 0b010101);  // -x, -y, -z faces
  auto [k2, mask2] = canonical_node(conn, NodeKey{0, n, n, n});
  EXPECT_EQ(mask2, 0b101010);
}

TEST(MeshCanonical, BrickInterfaceNodesCanonicalizeToLowerTree) {
  Connectivity conn = Connectivity::brick(2, 1, 1);
  const alps::octree::coord_t n = alps::octree::coord_t{1} << kMaxLevel;
  // Node on tree 1's -x face == tree 0's +x face.
  auto [k, mask] = canonical_node(conn, NodeKey{1, 0, n / 2, n / 2});
  EXPECT_EQ(k.tree, 0);
  EXPECT_EQ(k.x, n);
  EXPECT_EQ(k.y, n / 2);
  EXPECT_EQ(mask, 0);  // interior interface, not physical boundary
}

TEST(MeshCanonical, CubedSphereCornersHaveThreeReps) {
  Connectivity conn = Connectivity::cubed_sphere_shell();
  const alps::octree::coord_t n = alps::octree::coord_t{1} << kMaxLevel;
  // A node at a lateral edge of tree 0 (on two cap boundaries).
  auto [k, mask] = canonical_node(conn, NodeKey{0, 0, 0, n / 2});
  // Physically interior to the shell except radial boundaries.
  EXPECT_EQ(mask & 0b001111, 0);
  EXPECT_LE(k.tree, 0 + 23);
}

}  // namespace
