// Tests for the amortized AMG setup: distributed two-pass Galerkin
// product vs a replicated serial triple product, numeric hierarchy
// refresh (DistAmg::refresh_numeric) parity with a fresh setup, the
// Stokes-level HierarchyCache policy, and the Chebyshev smoother in both
// the replicated and the distributed hierarchy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "amg/amg.hpp"
#include "amg/dist_amg.hpp"
#include "amg/hierarchy_cache.hpp"
#include "la/dist_csr.hpp"
#include "la/krylov.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using la::Csr;
using la::DistCsr;
using la::Triplet;
using par::Comm;

// 3D 7-point Laplacian with an optional coefficient jump (same builder as
// tests/test_dist_la.cpp).
Csr laplace_3d(std::int64_t n, double coeff_jump = 1.0) {
  const auto id = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (k * n + j) * n + i;
  };
  std::vector<Triplet> t;
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        const double c = (i < n / 2) ? 1.0 : coeff_jump;
        const std::int64_t r = id(i, j, k);
        double diag = 0.0;
        const auto add = [&](std::int64_t ii, std::int64_t jj, std::int64_t kk) {
          if (ii < 0 || jj < 0 || kk < 0 || ii >= n || jj >= n || kk >= n) {
            diag += c;
            return;
          }
          const double cc = (ii < n / 2) ? 1.0 : coeff_jump;
          const double h = 0.5 * (c + cc);
          t.push_back({r, id(ii, jj, kk), -h});
          diag += h;
        };
        add(i - 1, j, k);
        add(i + 1, j, k);
        add(i, j - 1, k);
        add(i, j + 1, k);
        add(i, j, k - 1);
        add(i, j, k + 1);
        t.push_back({r, r, diag});
      }
  return Csr::from_triplets(n * n * n, n * n * n, std::move(t));
}

std::vector<Triplet> to_triplets(const Csr& a) {
  std::vector<Triplet> t;
  for (std::int64_t r = 0; r < a.rows(); ++r)
    for (std::int64_t k = a.rowptr()[static_cast<std::size_t>(r)];
         k < a.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      t.push_back({r, a.colidx()[static_cast<std::size_t>(k)],
                   a.values()[static_cast<std::size_t>(k)]});
  return t;
}

DistCsr distribute(Comm& c, const Csr& ref) {
  const auto off = DistCsr::uniform_offsets(c.size(), ref.rows());
  std::vector<Triplet> mine;
  for (const Triplet& t : to_triplets(ref))
    if (la::owner_of(off, t.row) == c.rank()) mine.push_back(t);
  return DistCsr::from_triplets(c, off, off, std::move(mine));
}

void expect_same_matrix(const Csr& a, const Csr& b, double tol,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  for (std::size_t k = 0; k < a.values().size(); ++k) {
    ASSERT_EQ(a.colidx()[k], b.colidx()[k]) << what << " entry " << k;
    ASSERT_NEAR(a.values()[k], b.values()[k],
                tol * std::max(1.0, std::abs(a.values()[k])))
        << what << " entry " << k;
  }
}

double dist_residual_norm(Comm& c, const DistCsr& a, std::span<const double> b,
                          std::span<const double> x) {
  std::vector<double> ax(static_cast<std::size_t>(a.owned_rows()));
  a.matvec(c, x, ax);
  double s = 0;
  for (std::size_t i = 0; i < ax.size(); ++i)
    s += (b[i] - ax[i]) * (b[i] - ax[i]);
  return std::sqrt(c.allreduce_sum(s));
}

// ---- Galerkin product correctness -----------------------------------------

TEST(DistAmgGalerkin, CoarseOperatorsMatchSerialTripleProduct) {
  // Every coarse operator of the distributed hierarchy must equal
  // P^T A P computed serially from the replicated A and P of that level —
  // this pins down the full two-pass RAP (symbolic + numeric + off-owner
  // routing) against an independent reference.
  const Csr ref = laplace_3d(8);
  for (int p : {1, 2, 4}) {
    alps::par::run(p, [&ref](Comm& c) {
      amg::DistAmg amg(c, distribute(c, ref), {});
      for (int lvl = 0; lvl + 1 < amg.num_grid_levels(); ++lvl) {
        const Csr a = amg.matrix(lvl).replicate(c);
        const Csr pr = amg.prolongation(lvl).replicate(c);
        const Csr expect = Csr::multiply(pr.transpose(), Csr::multiply(a, pr));
        const Csr got = amg.matrix(lvl + 1).replicate(c);
        expect_same_matrix(expect, got, 1e-12, "coarse level");
      }
    });
  }
}

TEST(DistAmgGalerkin, SingleRankHierarchyMatchesSerialAmg) {
  // At P = 1 the per-rank coarsening is exactly the serial algorithm, so
  // the whole hierarchy (not just each triple product) must coincide.
  const Csr ref = laplace_3d(8);
  const amg::Amg serial(ref, {});
  alps::par::run(1, [&ref, &serial](Comm& c) {
    amg::DistAmg dist(c, distribute(c, ref), {});
    ASSERT_EQ(dist.num_levels(), serial.num_levels());
    for (int lvl = 0; lvl < dist.num_levels(); ++lvl) {
      EXPECT_EQ(dist.level_stats()[static_cast<std::size_t>(lvl)].n,
                serial.level_stats()[static_cast<std::size_t>(lvl)].n);
      EXPECT_EQ(dist.level_stats()[static_cast<std::size_t>(lvl)].nnz,
                serial.level_stats()[static_cast<std::size_t>(lvl)].nnz);
    }
  });
}

// ---- numeric refresh -------------------------------------------------------

TEST(DistAmgReuse, RefreshWithIdenticalValuesIsExactParity) {
  const Csr ref = laplace_3d(8, 10.0);
  for (int p : {1, 2, 4}) {
    alps::par::run(p, [&ref](Comm& c) {
      amg::DistAmg fresh(c, distribute(c, ref), {});
      amg::DistAmg reused(c, distribute(c, ref), {});
      reused.refresh_numeric(c, distribute(c, ref));
      // The numeric pass is the same code in both paths, so the coarse
      // values are bit-identical, not merely close.
      for (int lvl = 0; lvl < reused.num_grid_levels(); ++lvl) {
        const Csr a = fresh.matrix(lvl).replicate(c);
        const Csr b = reused.matrix(lvl).replicate(c);
        ASSERT_EQ(a.nnz(), b.nnz());
        for (std::size_t k = 0; k < a.values().size(); ++k)
          ASSERT_EQ(a.values()[k], b.values()[k]);
      }
      // V-cycle residual reduction agrees to 1e-12 (ISSUE criterion).
      const std::int64_t nown = fresh.finest().owned_rows();
      std::vector<double> b(static_cast<std::size_t>(nown), 1.0);
      std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
      fresh.vcycle(c, b, x1);
      reused.vcycle(c, b, x2);
      const double r1 = dist_residual_norm(c, fresh.finest(), b, x1);
      const double r2 = dist_residual_norm(c, reused.finest(), b, x2);
      EXPECT_NEAR(r1, r2, 1e-12 * std::max(1.0, r1));
    });
  }
}

TEST(DistAmgReuse, RefreshedCoarseOperatorsTrackNewValues) {
  // Change the operator values (same sparsity pattern, as a viscosity
  // update does) and refresh: every coarse operator must equal the triple
  // product of the *new* values through the *frozen* interpolation.
  const Csr a1 = laplace_3d(8);
  const Csr a2 = laplace_3d(8, 50.0);  // same pattern, jumped coefficients
  ASSERT_EQ(a1.nnz(), a2.nnz());
  for (int p : {1, 2, 4}) {
    alps::par::run(p, [&a1, &a2](Comm& c) {
      amg::DistAmg amg(c, distribute(c, a1), {});
      amg.refresh_numeric(c, distribute(c, a2));
      for (int lvl = 0; lvl + 1 < amg.num_grid_levels(); ++lvl) {
        const Csr a = amg.matrix(lvl).replicate(c);
        const Csr pr = amg.prolongation(lvl).replicate(c);
        const Csr expect = Csr::multiply(pr.transpose(), Csr::multiply(a, pr));
        const Csr got = amg.matrix(lvl + 1).replicate(c);
        expect_same_matrix(expect, got, 1e-12, "refreshed level");
      }
      // The refreshed hierarchy still solves the new operator.
      const std::int64_t nown = amg.finest().owned_rows();
      std::vector<double> b(static_cast<std::size_t>(nown), 1.0);
      std::vector<double> x(b.size(), 0.0);
      const double r0 = dist_residual_norm(c, amg.finest(), b, x);
      amg.solve(c, b, x, 12);
      EXPECT_LT(dist_residual_norm(c, amg.finest(), b, x), 1e-5 * r0);
    });
  }
}

TEST(DistAmgReuse, RefreshRejectsStructuralMismatch) {
  const Csr a1 = laplace_3d(8);
  const Csr a2 = laplace_3d(7);  // different mesh: different pattern
  alps::par::run(2, [&a1, &a2](Comm& c) {
    amg::DistAmg amg(c, distribute(c, a1), {});
    EXPECT_THROW(amg.refresh_numeric(c, distribute(c, a2)), std::logic_error);
  });
}

// ---- Chebyshev smoothing ---------------------------------------------------

TEST(AmgChebyshev, VcycleContractsWithPolynomialSmoother) {
  const Csr ref = laplace_3d(10);
  amg::AmgOptions opt;
  opt.smoother = amg::Smoother::kChebyshev;
  const amg::Amg amg(ref, opt);
  std::vector<double> b(static_cast<std::size_t>(ref.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  std::vector<double> r(b.size());
  const auto rnorm = [&] {
    ref.matvec(x, r);
    double s = 0;
    for (std::size_t i = 0; i < r.size(); ++i)
      s += (b[i] - r[i]) * (b[i] - r[i]);
    return std::sqrt(s);
  };
  const double r0 = rnorm();
  amg.vcycle(b, x);
  const double r1 = rnorm();
  amg.vcycle(b, x);
  const double r2 = rnorm();
  // A degree-3 polynomial smoother contracts less per cycle than
  // symmetric GS (~0.5 vs ~0.1 here) but costs only matvecs; the Krylov
  // iteration bound below is the acceptance criterion that matters.
  EXPECT_LT(r1, 0.6 * r0);
  EXPECT_LT(r2, 0.6 * r1);
}

TEST(DistAmgChebyshev, VcycleContractsAcrossRanks) {
  const Csr ref = laplace_3d(10);
  alps::par::run(4, [&ref](Comm& c) {
    amg::AmgOptions opt;
    opt.smoother = amg::Smoother::kChebyshev;
    amg::DistAmg amg(c, distribute(c, ref), opt);
    const std::int64_t nown = amg.finest().owned_rows();
    std::mt19937 rng(5 + static_cast<unsigned>(c.rank()));
    std::uniform_real_distribution<double> val(-1, 1);
    std::vector<double> b(static_cast<std::size_t>(nown));
    for (auto& v : b) v = val(rng);
    std::vector<double> x(b.size(), 0.0);
    const double r0 = dist_residual_norm(c, amg.finest(), b, x);
    amg.vcycle(c, b, x);
    const double r1 = dist_residual_norm(c, amg.finest(), b, x);
    amg.vcycle(c, b, x);
    const double r2 = dist_residual_norm(c, amg.finest(), b, x);
    EXPECT_LT(r1, 0.35 * r0);
    EXPECT_LT(r2, 0.35 * r1);
  });
}

int dist_pcg_iterations(Comm& c, const Csr& ref, const amg::AmgOptions& opt) {
  amg::DistAmg amg(c, distribute(c, ref), opt);
  const DistCsr& fine = amg.finest();
  la::LinOp op = [&c, &fine](std::span<const double> x, std::span<double> y) {
    fine.matvec(c, x, y);
  };
  la::LinOp pre = [&c, &amg](std::span<const double> x, std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    amg.vcycle(c, x, y);
  };
  la::DotFn dot = [&c](std::span<const double> x, std::span<const double> y) {
    return c.allreduce_sum(la::local_dot(x, y));
  };
  std::vector<double> b(static_cast<std::size_t>(fine.owned_rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  la::KrylovOptions kopt;
  kopt.rtol = 1e-10;
  const la::SolveResult r = la::cg(op, b, x, pre, dot, kopt);
  EXPECT_TRUE(r.converged);
  return r.iterations;
}

TEST(DistAmgChebyshev, KrylovIterationsCompetitiveWithHybridGS) {
  // The ISSUE acceptance bound: Chebyshev smoothing must stay within
  // +20% Krylov iterations of the hybrid Gauss-Seidel baseline (plus a
  // one-iteration floor for tiny counts).
  const Csr ref = laplace_3d(10);
  alps::par::run(4, [&ref](Comm& c) {
    amg::AmgOptions gs;  // default smoother
    amg::AmgOptions cheb;
    cheb.smoother = amg::Smoother::kChebyshev;
    const int it_gs = dist_pcg_iterations(c, ref, gs);
    const int it_cheb = dist_pcg_iterations(c, ref, cheb);
    EXPECT_LE(it_cheb, (6 * it_gs) / 5 + 1)
        << "cheb=" << it_cheb << " gs=" << it_gs;
  });
}

// ---- hierarchy cache -------------------------------------------------------

TEST(HierarchyCache, EpochInvalidatesAndStatsStayDeterministic) {
  amg::HierarchyCache cache;
  EXPECT_FALSE(cache.valid());
  cache.mark_built();
  // mark_built alone is not enough: there must be hierarchies.
  EXPECT_FALSE(cache.valid());
  const Csr ref = laplace_3d(6);
  alps::par::run(1, [&ref, &cache](Comm& c) {
    for (auto& a : cache.amg)
      a = std::make_unique<amg::DistAmg>(c, distribute(c, ref));
  });
  cache.mark_built();
  EXPECT_TRUE(cache.valid());
  cache.bump_epoch();
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(cache.amg[0], nullptr);  // hierarchies freed on invalidation
}

}  // namespace
