// Edge cases and failure injection across modules: deep refinement near
// the coordinate limits, empty ranks, degenerate inputs, and argument
// validation (the error paths a downstream user will eventually hit).

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/fields.hpp"
#include "octree/balance.hpp"
#include "octree/mark.hpp"
#include "octree/partition.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::octree;
using alps::forest::Connectivity;
using alps::forest::Forest;
using alps::par::Comm;

TEST(EdgeCases, DeepRefinementNearMaxLevel) {
  alps::par::run(1, [](Comm& c) {
    // Drive one element to kMaxLevel; coordinates sit at the bottom of
    // the Morton range and must not overflow or alias.
    LinearOctree t = LinearOctree::new_uniform(c, 1, 1);
    for (int round = 0; round < kMaxLevel - 1; ++round) {
      std::vector<std::int8_t> flags(t.leaves().size(), 0);
      flags[0] = 1;
      t.adapt(flags, 0, kMaxLevel);
    }
    int deepest = 0;
    for (const Octant& o : t.leaves())
      deepest = std::max(deepest, static_cast<int>(o.level));
    EXPECT_EQ(deepest, kMaxLevel);
    EXPECT_TRUE(t.locally_valid());
    // Refinement past kMaxLevel is refused by the clamp.
    std::vector<std::int8_t> flags(t.leaves().size(), 1);
    const std::int64_t n = t.num_local();
    t.adapt(flags, 0, kMaxLevel);
    int over = 0;
    for (const Octant& o : t.leaves())
      if (o.level > kMaxLevel) over++;
    EXPECT_EQ(over, 0);
    EXPECT_GT(t.num_local(), n);  // shallower leaves still refined
  });
}

TEST(EdgeCases, MoreRanksThanElements) {
  alps::par::run(7, [](Comm& c) {
    // A level-0 forest with 2 trees on 7 ranks: most ranks own nothing;
    // every collective algorithm must still work.
    LinearOctree t = LinearOctree::new_uniform(c, 2, 0);
    EXPECT_EQ(t.num_global(c), 2);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    balance(c, t);
    partition(c, t);
    EXPECT_EQ(t.num_global(c), 2);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    // Refining everything gives each rank some work again.
    std::vector<std::int8_t> flags(t.leaves().size(), 1);
    t.adapt(flags, 0, 3);
    t.update_ranges(c);
    partition(c, t);
    EXPECT_EQ(t.num_global(c), 16);
  });
}

TEST(EdgeCases, MeshExtractionWithEmptyRank) {
  alps::par::run(5, [](Comm& c) {
    // 4 elements on 5 ranks: one rank has no elements but participates in
    // numbering, exchange and field conversion.
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 0);
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 1);
    f.tree().adapt(flags, 0, 2);
    f.tree().update_ranges(c);
    alps::mesh::Mesh m = alps::mesh::extract_mesh(c, f);
    EXPECT_EQ(m.n_global, 27);  // 8 elements -> 3^3 nodes
    std::vector<double> v(static_cast<std::size_t>(m.n_local), 1.0);
    m.exchange(c, v);
    const std::vector<double> ev = alps::mesh::to_element_values(m, v);
    for (double x : ev) EXPECT_DOUBLE_EQ(x, 1.0);
  });
}

TEST(EdgeCases, AdaptRejectsWrongFlagCount) {
  alps::par::run(1, [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 1);
    std::vector<std::int8_t> flags(3, 0);
    EXPECT_THROW(t.adapt(flags, 0, 5), std::invalid_argument);
  });
}

TEST(EdgeCases, PartitionRejectsMismatchedPayload) {
  alps::par::run(2, [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    LeafPayload bad{4, std::vector<double>(3, 0.0)};
    LeafPayload* ps[] = {&bad};
    EXPECT_THROW(partition(c, t, ps), std::invalid_argument);
  });
}

TEST(EdgeCases, MarkRejectsWrongIndicatorCount) {
  alps::par::run(1, [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    std::vector<double> eta(5, 1.0);
    MarkOptions opt;
    EXPECT_THROW(mark_elements(c, t, eta, opt), std::invalid_argument);
  });
}

TEST(EdgeCases, BalanceIdempotent) {
  alps::par::run(2, [](Comm& c) {
    const coord_t mid = coord_t{1} << (kMaxLevel - 1);
    LinearOctree t = LinearOctree::new_uniform(c, 1, 1);
    for (int round = 0; round < 5; ++round) {
      std::vector<std::int8_t> flags(t.leaves().size(), 0);
      for (std::size_t i = 0; i < t.leaves().size(); ++i) {
        const Octant& o = t.leaves()[i];
        if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
      }
      t.adapt(flags, 0, kMaxLevel);
    }
    t.update_ranges(c);
    balance(c, t);
    const std::vector<Octant> once = t.leaves();
    const int rounds = balance(c, t);
    EXPECT_EQ(t.leaves(), once);   // fixpoint
    EXPECT_EQ(rounds, 1);          // detected in a single no-op round
  });
}

TEST(EdgeCases, WeightedPartitionWithTinyWeights) {
  alps::par::run(3, [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    std::vector<double> w(static_cast<std::size_t>(t.num_local()), 1e-300);
    partition(c, t, {}, w);
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
  });
}

TEST(EdgeCases, WeightedPartitionRejectsAllZeroWeights) {
  alps::par::run(2, [](Comm& c) {
    // A zero global weight sum would make destination ranks NaN; the
    // library refuses instead of silently collapsing the partition.
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    std::vector<double> w(static_cast<std::size_t>(t.num_local()), 0.0);
    EXPECT_THROW(partition(c, t, {}, w), std::invalid_argument);
  });
}

TEST(EdgeCases, CubedSphereDeepAdaptAcrossCapCorners) {
  alps::par::run(2, [](Comm& c) {
    // Refine exactly at a cube-corner tree junction (3 caps meet) and
    // confirm balance converges and the forest stays complete.
    Forest f = Forest::new_uniform(c, Connectivity::cubed_sphere_shell(), 1);
    for (int round = 0; round < 3; ++round) {
      std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
      for (std::size_t i = 0; i < flags.size(); ++i) {
        const Octant& o = f.tree().leaves()[i];
        if (o.tree == 0 && o.x == 0 && o.y == 0) flags[i] = 1;
      }
      f.tree().adapt(flags, 0, 5);
    }
    f.tree().update_ranges(c);
    f.balance(c);
    EXPECT_TRUE(f.is_balanced(c));
    EXPECT_TRUE(LinearOctree::globally_complete(c, f.tree()));
  });
}

}  // namespace
