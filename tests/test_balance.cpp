// Tests for 2:1 balance by ripple propagation (src/octree/balance).

#include <gtest/gtest.h>

#include <random>

#include "octree/balance.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::octree;
using alps::par::Comm;

// Refine toward the domain center to build a deep, unbalanced tree: the
// deepest leaf keeps its anchor at the center, so it stays face-adjacent
// to the untouched coarse octants across the center planes (point
// refinement toward a domain *corner* would stay graded).
void refine_toward_origin(alps::par::Comm& c, LinearOctree& t, int times) {
  const coord_t mid = coord_t{1} << (kMaxLevel - 1);
  for (int round = 0; round < times; ++round) {
    std::vector<std::int8_t> flags(t.leaves().size(), 0);
    for (std::size_t i = 0; i < t.leaves().size(); ++i) {
      const Octant& o = t.leaves()[i];
      if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
    }
    t.adapt(flags, 0, kMaxLevel);
  }
  t.update_ranges(c);
}

class BalanceRanks : public ::testing::TestWithParam<int> {};

TEST_P(BalanceRanks, UniformTreeIsAlreadyBalanced) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    EXPECT_TRUE(is_balanced(c, t));
    const std::int64_t before = t.num_global(c);
    balance(c, t);
    EXPECT_EQ(t.num_global(c), before);
  });
}

TEST_P(BalanceRanks, DeepCornerRefinementGetsBalanced) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 1);
    refine_toward_origin(c, t, 5);
    EXPECT_FALSE(is_balanced(c, t));
    balance(c, t);
    EXPECT_TRUE(t.locally_valid());
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    EXPECT_TRUE(is_balanced(c, t));
  });
}

TEST_P(BalanceRanks, BalancePreservesExistingLeavesRegions) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 1);
    refine_toward_origin(c, t, 4);
    const std::int64_t before = t.num_global(c);
    balance(c, t);
    // Balance only refines, never coarsens.
    EXPECT_GE(t.num_global(c), before);
  });
}

TEST_P(BalanceRanks, FaceOnlyWeakerThanFaceEdge) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t_face = LinearOctree::new_uniform(c, 1, 1);
    refine_toward_origin(c, t_face, 5);
    LinearOctree t_edge = t_face;
    balance(c, t_face, Adjacency::kFace);
    balance(c, t_edge, Adjacency::kFaceEdge);
    EXPECT_TRUE(is_balanced(c, t_face, Adjacency::kFace));
    EXPECT_TRUE(is_balanced(c, t_edge, Adjacency::kFaceEdge));
    EXPECT_LE(t_face.num_global(c), t_edge.num_global(c));
  });
}

TEST_P(BalanceRanks, RandomRefinementPropertyTest) {
  alps::par::run(GetParam(), [](Comm& c) {
    std::mt19937 rng(1234u + static_cast<unsigned>(c.rank()));
    LinearOctree t = LinearOctree::new_uniform(c, 1, 2);
    for (int round = 0; round < 4; ++round) {
      std::vector<std::int8_t> flags(t.leaves().size(), 0);
      std::uniform_int_distribution<int> coin(0, 4);
      for (auto& f : flags)
        if (coin(rng) == 0) f = 1;
      t.adapt(flags, 0, 9);
    }
    t.update_ranges(c);
    balance(c, t);
    EXPECT_TRUE(is_balanced(c, t));
    EXPECT_TRUE(LinearOctree::globally_complete(c, t));
    // Full-connectivity balance is the strongest variant.
    balance(c, t, Adjacency::kFull);
    EXPECT_TRUE(is_balanced(c, t, Adjacency::kFull));
  });
}

TEST_P(BalanceRanks, RoundCountScalesWithDepth) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree shallow = LinearOctree::new_uniform(c, 1, 1);
    refine_toward_origin(c, shallow, 2);
    LinearOctree deep = LinearOctree::new_uniform(c, 1, 1);
    refine_toward_origin(c, deep, 7);
    const int r_shallow = balance(c, shallow);
    const int r_deep = balance(c, deep);
    EXPECT_LE(r_shallow, r_deep);
    EXPECT_LE(r_deep, 10);  // bounded by the number of levels + epsilon
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, BalanceRanks, ::testing::Values(1, 2, 4, 7));

}  // namespace
