// Tests for field interpolation and transfer across adaptation and
// repartitioning (src/mesh/fields) — the full Fig. 4 pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/fields.hpp"
#include "octree/partition.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::mesh;
using alps::forest::Connectivity;
using alps::forest::Forest;
using alps::octree::Adjacency;
using alps::octree::compute_correspondence;
using alps::octree::Correspondence;
using alps::octree::kMaxLevel;
using alps::octree::LeafPayload;
using alps::octree::Octant;
using alps::par::Comm;

double linear_f(const std::array<double, 3>& p) {
  return 0.25 + 1.5 * p[0] - 2.0 * p[1] + 3.0 * p[2];
}

std::vector<double> sample_linear(const Forest& /*f*/, const Mesh& m) {
  std::vector<double> nodal(static_cast<std::size_t>(m.n_local));
  for (std::size_t i = 0; i < nodal.size(); ++i)
    nodal[i] = linear_f(m.dof_coords[i]);
  return nodal;
}

class FieldRanks : public ::testing::TestWithParam<int> {};

TEST_P(FieldRanks, RoundTripNodalElementNodal) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    std::vector<double> nodal(static_cast<std::size_t>(m.n_local));
    for (std::int64_t i = 0; i < m.n_owned; ++i)
      nodal[static_cast<std::size_t>(i)] =
          std::cos(0.01 * static_cast<double>(m.dof_gids[static_cast<std::size_t>(i)]));
    m.exchange(c, nodal);
    const std::vector<double> ev = to_element_values(m, nodal);
    const std::vector<double> back = from_element_values(c, m, ev);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      EXPECT_NEAR(back[static_cast<std::size_t>(i)],
                  nodal[static_cast<std::size_t>(i)], 1e-14);
  });
}

TEST_P(FieldRanks, RefineAllPreservesLinearExactly) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    const std::vector<double> nodal = sample_linear(f, m);
    std::vector<double> ev = to_element_values(m, nodal);

    const std::vector<Octant> old_leaves = f.tree().leaves();
    std::vector<std::int8_t> flags(old_leaves.size(), 1);
    f.tree().adapt(flags, 0, kMaxLevel);
    const Correspondence corr =
        compute_correspondence(old_leaves, f.tree().leaves());
    ev = interpolate_element_values(old_leaves, f.tree().leaves(), corr, ev);

    Mesh m2 = extract_mesh(c, f);
    const std::vector<double> nodal2 = from_element_values(c, m2, ev);
    for (std::size_t i = 0; i < nodal2.size(); ++i)
      EXPECT_NEAR(nodal2[i], linear_f(m2.dof_coords[i]), 1e-12);
  });
}

TEST_P(FieldRanks, CoarsenUndoesRefineExactly) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 3);
    Mesh m = extract_mesh(c, f);
    std::vector<double> nodal(static_cast<std::size_t>(m.n_local));
    for (std::int64_t i = 0; i < m.n_owned; ++i)
      nodal[static_cast<std::size_t>(i)] =
          std::sin(0.37 * static_cast<double>(m.dof_gids[static_cast<std::size_t>(i)]));
    m.exchange(c, nodal);
    std::vector<double> ev0 = to_element_values(m, nodal);

    // Refine everything, then coarsen back.
    std::vector<Octant> leaves0 = f.tree().leaves();
    std::vector<std::int8_t> flags(leaves0.size(), 1);
    f.tree().adapt(flags, 0, kMaxLevel);
    Correspondence up = compute_correspondence(leaves0, f.tree().leaves());
    std::vector<double> ev1 =
        interpolate_element_values(leaves0, f.tree().leaves(), up, ev0);

    std::vector<Octant> leaves1 = f.tree().leaves();
    flags.assign(leaves1.size(), -1);
    f.tree().adapt(flags, 0, kMaxLevel);
    Correspondence down = compute_correspondence(leaves1, f.tree().leaves());
    std::vector<double> ev2 =
        interpolate_element_values(leaves1, f.tree().leaves(), down, ev1);

    ASSERT_EQ(f.tree().leaves(), leaves0);
    for (std::size_t i = 0; i < ev0.size(); ++i)
      EXPECT_NEAR(ev2[i], ev0[i], 1e-14);
  });
}

TEST_P(FieldRanks, FullAdaptPipelineKeepsLinearField) {
  alps::par::run(GetParam(), [](Comm& c) {
    // The complete Fig. 4 cycle: adapt -> balance -> interpolate ->
    // partition(+transfer) -> extract -> nodal, with a linear field that
    // must survive bit-for-bit (trilinear elements reproduce linears).
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    std::vector<double> ev = to_element_values(m, sample_linear(f, m));

    for (int cycle = 0; cycle < 3; ++cycle) {
      // Mark: refine near the moving point, coarsen elsewhere.
      const double cx = 0.25 + 0.2 * cycle;
      std::vector<std::int8_t> flags(f.tree().leaves().size(), -1);
      const auto& conn = f.connectivity();
      for (std::size_t e = 0; e < f.tree().leaves().size(); ++e) {
        const Octant& o = f.tree().leaves()[e];
        const alps::octree::coord_t h = alps::octree::octant_len(o.level);
        const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
        const double d = std::abs(p[0] - cx) + std::abs(p[1] - 0.5) +
                         std::abs(p[2] - 0.5);
        if (d < 0.3 && o.level < 5) flags[e] = 1;
      }
      std::vector<Octant> old_leaves = f.tree().leaves();
      f.tree().adapt(flags, 2, 5);
      f.balance(c, Adjacency::kFaceEdge);
      Correspondence corr =
          compute_correspondence(old_leaves, f.tree().leaves());
      ev = interpolate_element_values(old_leaves, f.tree().leaves(), corr, ev);

      // Repartition with the element values as payload.
      LeafPayload payload{8, ev};
      LeafPayload* ps[] = {&payload};
      f.partition(c, ps);
      ev = std::move(payload.data);

      Mesh m2 = extract_mesh(c, f);
      const std::vector<double> nodal = from_element_values(c, m2, ev);
      for (std::size_t i = 0; i < nodal.size(); ++i)
        EXPECT_NEAR(nodal[i], linear_f(m2.dof_coords[i]), 1e-11)
            << "cycle " << cycle;
      // Keep going with exact element values for the next cycle.
      ev = to_element_values(m2, nodal);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, FieldRanks, ::testing::Values(1, 2, 4));

}  // namespace
