// Tests for MARKELEMENTS threshold iteration (src/octree/mark).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "octree/mark.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps::octree;
using alps::par::Comm;

std::vector<double> random_eta(const LinearOctree& t, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> eta(t.leaves().size());
  for (double& e : eta) e = dist(rng);
  return eta;
}

class MarkRanks : public ::testing::TestWithParam<int> {};

TEST_P(MarkRanks, HoldsElementCountNearTarget) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 4);  // 4096 elements
    const std::vector<double> eta =
        random_eta(t, 7u + static_cast<unsigned>(c.rank()));
    MarkOptions opt;
    opt.target_elements = 4096;
    opt.tolerance = 0.05;
    const std::vector<std::int8_t> flags = mark_elements(c, t, eta, opt);
    const std::int64_t expected = expected_count(c, t, flags);
    EXPECT_NEAR(static_cast<double>(expected), 4096.0, 0.10 * 4096.0);
  });
}

TEST_P(MarkRanks, GrowsTowardLargerTarget) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);  // 512
    const std::vector<double> eta =
        random_eta(t, 11u + static_cast<unsigned>(c.rank()));
    MarkOptions opt;
    opt.target_elements = 2000;
    const std::vector<std::int8_t> flags = mark_elements(c, t, eta, opt);
    const std::int64_t expected = expected_count(c, t, flags);
    EXPECT_GT(expected, 512);
    EXPECT_NEAR(static_cast<double>(expected), 2000.0, 0.25 * 2000.0);
  });
}

TEST_P(MarkRanks, RefinesHighErrorCoarsensLowError) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    // Error = 1 on the first half of the SFC, ~0 on the second.
    const std::int64_t off = c.exscan_sum(t.num_local());
    const std::int64_t n = t.num_global(c);
    std::vector<double> eta(t.leaves().size());
    for (std::int64_t i = 0; i < t.num_local(); ++i)
      eta[static_cast<std::size_t>(i)] = (off + i) < n / 2 ? 1.0 : 1e-9;
    MarkOptions opt;
    opt.target_elements = n;  // keep total roughly constant
    const std::vector<std::int8_t> flags = mark_elements(c, t, eta, opt);
    for (std::int64_t i = 0; i < t.num_local(); ++i) {
      if ((off + i) < n / 2)
        EXPECT_GE(flags[static_cast<std::size_t>(i)], 0);
      else
        EXPECT_LE(flags[static_cast<std::size_t>(i)], 0);
    }
  });
}

TEST_P(MarkRanks, RespectsLevelBounds) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    const std::vector<double> eta =
        random_eta(t, 13u + static_cast<unsigned>(c.rank()));
    MarkOptions opt;
    opt.target_elements = 10000;  // wants heavy refinement
    opt.max_level = 3;            // but nothing may refine
    std::vector<std::int8_t> flags = mark_elements(c, t, eta, opt);
    for (std::int8_t f : flags) EXPECT_LE(f, 0);
    opt.max_level = kMaxLevel;
    opt.target_elements = 1;  // wants heavy coarsening
    opt.min_level = 3;        // but nothing may coarsen
    flags = mark_elements(c, t, eta, opt);
    for (std::int8_t f : flags) EXPECT_GE(f, 0);
  });
}

TEST_P(MarkRanks, UniformErrorStillTerminates) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    std::vector<double> eta(t.leaves().size(), 0.5);
    MarkOptions opt;
    opt.target_elements = 512;
    const std::vector<std::int8_t> flags = mark_elements(c, t, eta, opt);
    ASSERT_EQ(flags.size(), t.leaves().size());
  });
}

TEST_P(MarkRanks, ZeroErrorEverywhereCoarsens) {
  alps::par::run(GetParam(), [](Comm& c) {
    LinearOctree t = LinearOctree::new_uniform(c, 1, 3);
    std::vector<double> eta(t.leaves().size(), 0.0);
    MarkOptions opt;
    opt.target_elements = 64;
    const std::vector<std::int8_t> flags = mark_elements(c, t, eta, opt);
    for (std::int8_t f : flags) EXPECT_EQ(f, -1);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MarkRanks, ::testing::Values(1, 2, 4, 6));

}  // namespace
