// Tests for the Ruge-Stüben AMG hierarchy (src/amg).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "amg/amg.hpp"
#include "la/krylov.hpp"

namespace {

using namespace alps;
using la::Csr;
using la::Triplet;

// 3D 7-point Laplacian on an n^3 grid with Dirichlet-eliminated boundary,
// optionally with a strongly varying coefficient between the two halves.
Csr laplace_3d(std::int64_t n, double coeff_jump = 1.0) {
  const auto id = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (k * n + j) * n + i;
  };
  std::vector<Triplet> t;
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        const double c = (i < n / 2) ? 1.0 : coeff_jump;
        const std::int64_t r = id(i, j, k);
        double diag = 0.0;
        const auto add = [&](std::int64_t ii, std::int64_t jj, std::int64_t kk) {
          if (ii < 0 || jj < 0 || kk < 0 || ii >= n || jj >= n || kk >= n) {
            diag += c;  // Dirichlet neighbor eliminated
            return;
          }
          const double cc = (ii < n / 2) ? 1.0 : coeff_jump;
          const double h = 0.5 * (c + cc);  // harmonic-ish face coefficient
          t.push_back({r, id(ii, jj, kk), -h});
          diag += h;
        };
        add(i - 1, j, k);
        add(i + 1, j, k);
        add(i, j - 1, k);
        add(i, j + 1, k);
        add(i, j, k - 1);
        add(i, j, k + 1);
        t.push_back({r, r, diag});
      }
  return Csr::from_triplets(n * n * n, n * n * n, std::move(t));
}

double residual_norm(const Csr& a, std::span<const double> b,
                     std::span<const double> x) {
  std::vector<double> ax(x.size());
  a.matvec(x, ax);
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    s += (b[i] - ax[i]) * (b[i] - ax[i]);
  return std::sqrt(s);
}

TEST(Amg, BuildsMultipleLevels) {
  amg::Amg amg(laplace_3d(12), {});
  EXPECT_GE(amg.num_levels(), 3);
  // Each level meaningfully smaller.
  const auto& stats = amg.level_stats();
  for (std::size_t k = 1; k < stats.size(); ++k)
    EXPECT_LT(stats[k].n, stats[k - 1].n);
  EXPECT_LT(amg.operator_complexity(), 3.0);
  EXPECT_LT(amg.grid_complexity(), 2.0);
}

TEST(Amg, VcycleContractsError) {
  Csr a = laplace_3d(10);
  amg::Amg amg(a, {});
  const std::int64_t n = a.rows();
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> val(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = val(rng);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const double r0 = residual_norm(a, b, x);
  amg.vcycle(b, x);
  const double r1 = residual_norm(a, b, x);
  amg.vcycle(b, x);
  const double r2 = residual_norm(a, b, x);
  // Healthy AMG contracts the residual by a solid factor per cycle.
  EXPECT_LT(r1, 0.3 * r0);
  EXPECT_LT(r2, 0.3 * r1);
}

TEST(Amg, ConvergenceFactorStableAcrossSizes) {
  // Near-optimal AMG: per-cycle contraction should not degrade much as
  // the problem grows (this is what makes MINRES counts flat in Fig. 2).
  double factors[2];
  int idx = 0;
  for (std::int64_t n : {8, 16}) {
    Csr a = laplace_3d(n);
    amg::Amg amg(a, {});
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
    double r_prev = residual_norm(a, b, x);
    double rho = 0.0;
    for (int c = 0; c < 6; ++c) {
      amg.vcycle(b, x);
      const double r = residual_norm(a, b, x);
      rho = r / r_prev;
      r_prev = r;
    }
    factors[idx++] = rho;
  }
  EXPECT_LT(factors[1], std::max(0.5, 3.0 * factors[0]));
}

TEST(Amg, HandlesStrongCoefficientJumps) {
  // 10^5 viscosity contrast, as in the mantle problem.
  Csr a = laplace_3d(10, 1e5);
  amg::Amg amg(a, {});
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  const double r0 = residual_norm(a, b, x);
  amg.solve(b, x, 10);
  EXPECT_LT(residual_norm(a, b, x), 1e-6 * r0);
}

TEST(Amg, ActsAsSpdPreconditionerForCg) {
  Csr a = laplace_3d(10);
  amg::Amg amg(a, {});
  la::LinOp op = [&a](std::span<const double> x, std::span<double> y) {
    a.matvec(x, y);
  };
  la::LinOp pre = [&amg](std::span<const double> x, std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    amg.vcycle(x, y);
  };
  la::DotFn dot = [](std::span<const double> x, std::span<const double> y) {
    return la::local_dot(x, y);
  };
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  la::KrylovOptions opt;
  opt.rtol = 1e-10;
  la::SolveResult r = la::cg(op, b, x, pre, dot, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 15);  // AMG-preconditioned CG converges fast
}

TEST(Amg, TinyMatrixFallsBackToDirectSolve) {
  Csr a = laplace_3d(3);  // 27 unknowns < coarse_size
  amg::Amg amg(a, {});
  EXPECT_EQ(amg.num_levels(), 1);
  std::vector<double> b(27, 1.0), x(27, 0.0);
  amg.vcycle(b, x);
  EXPECT_LT(residual_norm(a, b, x), 1e-10);
}

}  // namespace
