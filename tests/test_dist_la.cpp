// Tests for the distributed owned-row matrix stack (src/la/dist_csr) and
// the distributed AMG hierarchy (src/amg/dist_amg): ghost-plan
// construction, matvec / transpose-matvec against a replicated-CSR
// reference on random partitions, distributed assembly equivalence, and
// Poisson AMG convergence mirroring tests/test_amg.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "amg/amg.hpp"
#include "amg/dist_amg.hpp"
#include "fem/operators.hpp"
#include "la/dist_csr.hpp"
#include "la/krylov.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using la::Csr;
using la::DistCsr;
using la::Triplet;
using par::Comm;

// 3D 7-point Laplacian with Dirichlet-eliminated boundary (mirrors the
// builder in test_amg.cpp).
Csr laplace_3d(std::int64_t n, double coeff_jump = 1.0) {
  const auto id = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (k * n + j) * n + i;
  };
  std::vector<Triplet> t;
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        const double c = (i < n / 2) ? 1.0 : coeff_jump;
        const std::int64_t r = id(i, j, k);
        double diag = 0.0;
        const auto add = [&](std::int64_t ii, std::int64_t jj, std::int64_t kk) {
          if (ii < 0 || jj < 0 || kk < 0 || ii >= n || jj >= n || kk >= n) {
            diag += c;
            return;
          }
          const double cc = (ii < n / 2) ? 1.0 : coeff_jump;
          const double h = 0.5 * (c + cc);
          t.push_back({r, id(ii, jj, kk), -h});
          diag += h;
        };
        add(i - 1, j, k);
        add(i + 1, j, k);
        add(i, j - 1, k);
        add(i, j + 1, k);
        add(i, j, k - 1);
        add(i, j, k + 1);
        t.push_back({r, r, diag});
      }
  return Csr::from_triplets(n * n * n, n * n * n, std::move(t));
}

std::vector<Triplet> to_triplets(const Csr& a) {
  std::vector<Triplet> t;
  for (std::int64_t r = 0; r < a.rows(); ++r)
    for (std::int64_t k = a.rowptr()[static_cast<std::size_t>(r)];
         k < a.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      t.push_back({r, a.colidx()[static_cast<std::size_t>(k)],
                   a.values()[static_cast<std::size_t>(k)]});
  return t;
}

// Random monotone partition of [0, n) into `p` (possibly empty) ranges;
// deterministic, so every rank computes the same offsets.
std::vector<std::int64_t> random_offsets(int p, std::int64_t n,
                                         unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> cut(0, n);
  std::vector<std::int64_t> off(static_cast<std::size_t>(p) + 1);
  off.front() = 0;
  off.back() = n;
  for (int r = 1; r < p; ++r) off[static_cast<std::size_t>(r)] = cut(rng);
  std::sort(off.begin(), off.end());
  return off;
}

TEST(GhostExchange, PlanRoutesOwnedValuesToGhostSlots) {
  alps::par::run(3, [](Comm& c) {
    // Partition [0, 9) into thirds; every rank ghosts one entry from each
    // other rank: rank r needs gids {(r+1)*3, (r+2)*3 mod 9} (sorted).
    const std::vector<std::int64_t> off = {0, 3, 6, 9};
    std::vector<std::int64_t> ghosts;
    for (int r = 0; r < 3; ++r)
      if (r != c.rank()) ghosts.push_back(3 * r);
    la::GhostExchange plan(c, ghosts, off);
    EXPECT_EQ(plan.num_ghosts(), 2u);
    // Owned values are gid * 10; ghosts must come back as owner values.
    std::vector<double> owned = {0, 0, 0};
    for (int i = 0; i < 3; ++i) owned[static_cast<std::size_t>(i)] =
        static_cast<double>((off[static_cast<std::size_t>(c.rank())] + i) * 10);
    std::vector<double> gv(2, -1.0);
    plan.forward<double>(c, owned, gv);
    for (std::size_t i = 0; i < ghosts.size(); ++i)
      EXPECT_DOUBLE_EQ(gv[i], static_cast<double>(ghosts[i] * 10));
    // reverse_add: each ghost slot contributes 1 to its owner; every
    // owned boundary entry is ghosted by the two other ranks.
    std::vector<double> contrib(2, 1.0);
    std::vector<double> acc = {0, 0, 0};
    plan.reverse_add<double>(c, contrib, acc);
    EXPECT_DOUBLE_EQ(acc[0], 2.0);  // gid 3*rank ghosted by both others
    EXPECT_DOUBLE_EQ(acc[1], 0.0);
    EXPECT_DOUBLE_EQ(acc[2], 0.0);
  });
}

class DistCsrRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistCsrRanks, MatvecMatchesReplicatedOnRandomPartitions) {
  const int p = GetParam();
  alps::par::run(p, [p](Comm& c) {
    for (unsigned seed = 1; seed <= 3; ++seed) {
      const std::int64_t n = 6;
      const Csr ref = laplace_3d(n);
      // Every rank regenerates the same triplets and contributes an
      // interleaved slice, exercising the off-owner routing.
      const std::vector<Triplet> all = to_triplets(ref);
      std::vector<Triplet> mine;
      for (std::size_t i = 0; i < all.size(); ++i)
        if (static_cast<int>(i % static_cast<std::size_t>(p)) == c.rank())
          mine.push_back(all[i]);
      const auto off = random_offsets(p, ref.rows(), seed);
      const DistCsr a = DistCsr::from_triplets(c, off, off, std::move(mine));
      const std::int64_t lo = off[static_cast<std::size_t>(c.rank())];
      const std::int64_t nown = a.owned_rows();
      EXPECT_EQ(c.allreduce_sum(a.local_nnz()), ref.nnz());

      std::mt19937 rng(100 + seed);
      std::uniform_real_distribution<double> val(-1, 1);
      std::vector<double> xg(static_cast<std::size_t>(ref.rows()));
      for (auto& v : xg) v = val(rng);
      std::vector<double> yg(xg.size());
      ref.matvec(xg, yg);

      std::vector<double> x(static_cast<std::size_t>(nown)),
          y(static_cast<std::size_t>(nown));
      for (std::int64_t i = 0; i < nown; ++i)
        x[static_cast<std::size_t>(i)] = xg[static_cast<std::size_t>(lo + i)];
      a.matvec(c, x, y);
      for (std::int64_t i = 0; i < nown; ++i)
        EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                    yg[static_cast<std::size_t>(lo + i)], 1e-13);

      // Transpose matvec against the replicated reference.
      std::vector<double> ytg(xg.size());
      ref.matvec_transpose(xg, ytg);
      std::vector<double> yt(static_cast<std::size_t>(nown));
      a.matvec_transpose(c, x, yt);
      for (std::int64_t i = 0; i < nown; ++i)
        EXPECT_NEAR(yt[static_cast<std::size_t>(i)],
                    ytg[static_cast<std::size_t>(lo + i)], 1e-13);
    }
  });
}

TEST_P(DistCsrRanks, ReplicateRoundTripsAndFetchRowsServesRemoteRows) {
  const int p = GetParam();
  alps::par::run(p, [p](Comm& c) {
    const Csr ref = laplace_3d(5);
    std::vector<Triplet> all = to_triplets(ref);
    std::vector<Triplet> mine;
    for (std::size_t i = 0; i < all.size(); ++i)
      if (static_cast<int>(i % static_cast<std::size_t>(p)) == c.rank())
        mine.push_back(all[i]);
    const auto off = DistCsr::uniform_offsets(p, ref.rows());
    const DistCsr a = DistCsr::from_triplets(c, off, off, std::move(mine));

    const Csr round = a.replicate(c);
    ASSERT_EQ(round.nnz(), ref.nnz());
    for (std::size_t k = 0; k < ref.values().size(); ++k) {
      EXPECT_EQ(round.colidx()[k], ref.colidx()[k]);
      EXPECT_NEAR(round.values()[k], ref.values()[k], 1e-14);
    }

    // Fetch a handful of remote rows and compare entry sums.
    std::vector<std::int64_t> want;
    for (std::int64_t g = 0; g < ref.rows(); g += 17)
      if (g < a.row_begin() || g >= a.row_end()) want.push_back(g);
    std::vector<std::int64_t> rp, cg;
    std::vector<double> v;
    a.fetch_rows(c, want, rp, cg, v);
    ASSERT_EQ(rp.size(), want.size() + 1);
    for (std::size_t i = 0; i < want.size(); ++i) {
      const std::int64_t g = want[i];
      const std::int64_t ref_len =
          ref.rowptr()[static_cast<std::size_t>(g) + 1] -
          ref.rowptr()[static_cast<std::size_t>(g)];
      EXPECT_EQ(rp[i + 1] - rp[i], ref_len);
      double got = 0, expect = 0;
      for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k)
        got += v[static_cast<std::size_t>(k)];
      for (std::int64_t k = ref.rowptr()[static_cast<std::size_t>(g)];
           k < ref.rowptr()[static_cast<std::size_t>(g) + 1]; ++k)
        expect += ref.values()[static_cast<std::size_t>(k)];
      EXPECT_NEAR(got, expect, 1e-14);
    }
  });
}

TEST(DistAssembly, DistributedMatrixMatchesReplicatedAssembly) {
  alps::par::run(2, [](Comm& c) {
    forest::Forest f =
        forest::Forest::new_uniform(c, forest::Connectivity::unit_cube(), 2);
    mesh::Mesh m = mesh::extract_mesh(c, f);
    fem::ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(),
        [](const std::array<double, 3>& p) { return 1.0 + p[0]; }, 0b111111);
    const Csr ref = op.assemble_global(c);
    const DistCsr dist = op.assemble_dist(c);
    EXPECT_EQ(dist.global_rows(), ref.rows());
    EXPECT_LT(dist.local_nnz(), ref.nnz());  // each rank holds a strict part
    const Csr round = dist.replicate(c);
    ASSERT_EQ(round.nnz(), ref.nnz());
    for (std::size_t k = 0; k < ref.values().size(); ++k) {
      ASSERT_EQ(round.colidx()[k], ref.colidx()[k]);
      ASSERT_NEAR(round.values()[k], ref.values()[k], 1e-12);
    }
  });
}

double dist_residual_norm(Comm& c, const DistCsr& a, std::span<const double> b,
                          std::span<const double> x) {
  std::vector<double> ax(static_cast<std::size_t>(a.owned_rows()));
  a.matvec(c, x, ax);
  double s = 0;
  for (std::size_t i = 0; i < ax.size(); ++i)
    s += (b[i] - ax[i]) * (b[i] - ax[i]);
  return std::sqrt(c.allreduce_sum(s));
}

TEST(DistAmg, VcycleContractsErrorAcrossRanks) {
  alps::par::run(4, [](Comm& c) {
    const Csr ref = laplace_3d(10);
    const auto off = DistCsr::uniform_offsets(c.size(), ref.rows());
    std::vector<Triplet> mine;
    const std::vector<Triplet> all = to_triplets(ref);
    for (const Triplet& t : all)
      if (la::owner_of(off, t.row) == c.rank()) mine.push_back(t);
    DistCsr a = DistCsr::from_triplets(c, off, off, std::move(mine));
    const std::int64_t nown = a.owned_rows();
    amg::DistAmg amg(c, std::move(a), {});
    EXPECT_GE(amg.num_levels(), 3);

    const DistCsr& fine = amg.finest();
    std::mt19937 rng(5 + static_cast<unsigned>(c.rank()));
    std::uniform_real_distribution<double> val(-1, 1);
    std::vector<double> b(static_cast<std::size_t>(nown));
    for (auto& v : b) v = val(rng);
    std::vector<double> x(static_cast<std::size_t>(nown), 0.0);
    const double r0 = dist_residual_norm(c, fine, b, x);
    amg.vcycle(c, b, x);
    const double r1 = dist_residual_norm(c, fine, b, x);
    amg.vcycle(c, b, x);
    const double r2 = dist_residual_norm(c, fine, b, x);
    EXPECT_LT(r1, 0.35 * r0);
    EXPECT_LT(r2, 0.35 * r1);
  });
}

// AMG-preconditioned CG iteration count for the replicated hierarchy.
int serial_pcg_iterations(const Csr& a) {
  amg::Amg amg(a, {});
  la::LinOp op = [&a](std::span<const double> x, std::span<double> y) {
    a.matvec(x, y);
  };
  la::LinOp pre = [&amg](std::span<const double> x, std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    amg.vcycle(x, y);
  };
  la::DotFn dot = [](std::span<const double> x, std::span<const double> y) {
    return la::local_dot(x, y);
  };
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  la::KrylovOptions opt;
  opt.rtol = 1e-10;
  const la::SolveResult r = la::cg(op, b, x, pre, dot, opt);
  EXPECT_TRUE(r.converged);
  return r.iterations;
}

TEST(DistAmg, PcgIterationsMatchReplicatedHierarchyWithinTwo) {
  // The Fig. 9 / Fig. 2 criterion in miniature: the distributed hierarchy
  // (per-rank coarsening, hybrid smoothing) must not degrade Krylov
  // convergence by more than a couple of iterations vs the replicated one.
  const Csr ref = laplace_3d(10);
  const int serial_iters = serial_pcg_iterations(ref);
  for (int p : {1, 3, 4}) {
    alps::par::run(p, [&ref, serial_iters](Comm& c) {
      const auto off = DistCsr::uniform_offsets(c.size(), ref.rows());
      std::vector<Triplet> mine;
      for (const Triplet& t : to_triplets(ref))
        if (la::owner_of(off, t.row) == c.rank()) mine.push_back(t);
      DistCsr a = DistCsr::from_triplets(c, off, off, std::move(mine));
      const std::int64_t nown = a.owned_rows();
      amg::DistAmg amg(c, std::move(a), {});
      const DistCsr& fine = amg.finest();
      la::LinOp op = [&c, &fine](std::span<const double> x,
                                 std::span<double> y) {
        fine.matvec(c, x, y);
      };
      la::LinOp pre = [&c, &amg](std::span<const double> x,
                                 std::span<double> y) {
        std::fill(y.begin(), y.end(), 0.0);
        amg.vcycle(c, x, y);
      };
      la::DotFn dot = [&c](std::span<const double> x,
                           std::span<const double> y) {
        return c.allreduce_sum(la::local_dot(x, y));
      };
      std::vector<double> b(static_cast<std::size_t>(nown), 1.0);
      std::vector<double> x(b.size(), 0.0);
      la::KrylovOptions opt;
      opt.rtol = 1e-10;
      const la::SolveResult r = la::cg(op, b, x, pre, dot, opt);
      EXPECT_TRUE(r.converged);
      EXPECT_LE(std::abs(r.iterations - serial_iters), 2)
          << "P=" << c.size() << " dist=" << r.iterations
          << " serial=" << serial_iters;
      if (c.size() == 1) {
        // At P = 1 the per-rank coarsening is exactly the serial one.
        EXPECT_EQ(r.iterations, serial_iters);
      }
    });
  }
}

TEST(DistAmg, HandlesStrongCoefficientJumpsAcrossRanks) {
  alps::par::run(3, [](Comm& c) {
    const Csr ref = laplace_3d(10, 1e5);
    const auto off = DistCsr::uniform_offsets(c.size(), ref.rows());
    std::vector<Triplet> mine;
    for (const Triplet& t : to_triplets(ref))
      if (la::owner_of(off, t.row) == c.rank()) mine.push_back(t);
    DistCsr a = DistCsr::from_triplets(c, off, off, std::move(mine));
    const std::int64_t nown = a.owned_rows();
    amg::DistAmg amg(c, std::move(a), {});
    const DistCsr& fine = amg.finest();
    std::vector<double> b(static_cast<std::size_t>(nown), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const double r0 = dist_residual_norm(c, fine, b, x);
    amg.solve(c, b, x, 12);
    EXPECT_LT(dist_residual_norm(c, fine, b, x), 1e-6 * r0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistCsrRanks, ::testing::Values(1, 3, 4));

}  // namespace
