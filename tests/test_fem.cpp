// Tests for trilinear hex element kernels and the distributed element
// operator (src/fem).

#include <gtest/gtest.h>

#include <cmath>

#include "amg/amg.hpp"
#include "fem/operators.hpp"
#include "par/runtime.hpp"

namespace {

using namespace alps;
using fem::ElemGeom;
using fem::ElementOperator;
using fem::MappedQuad;
using forest::Connectivity;
using forest::Forest;
using mesh::Mesh;
using mesh::extract_mesh;
using alps::par::Comm;

ElemGeom unit_cube_geom(double h = 1.0) {
  ElemGeom g;
  for (int i = 0; i < 8; ++i)
    g[static_cast<std::size_t>(i)] = {h * ((i & 1) ? 1 : 0), h * ((i & 2) ? 1 : 0),
                                      h * ((i & 4) ? 1 : 0)};
  return g;
}

TEST(Hex8, VolumeOfScaledCube) {
  EXPECT_NEAR(fem::element_volume(unit_cube_geom(1.0)), 1.0, 1e-14);
  EXPECT_NEAR(fem::element_volume(unit_cube_geom(0.25)), 0.015625, 1e-14);
}

TEST(Hex8, StiffnessRowsSumToZero) {
  const MappedQuad mq = fem::map_element(unit_cube_geom(0.5));
  std::array<double, 8> eta;
  eta.fill(3.0);
  const fem::Mat8 k = fem::stiffness(mq, eta);
  for (int i = 0; i < 8; ++i) {
    double s = 0;
    for (int j = 0; j < 8; ++j)
      s += k[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    EXPECT_NEAR(s, 0.0, 1e-12);  // constants are in the kernel
  }
}

TEST(Hex8, StiffnessScalesLinearlyWithViscosity) {
  const MappedQuad mq = fem::map_element(unit_cube_geom(1.0));
  std::array<double, 8> e1, e7;
  e1.fill(1.0);
  e7.fill(7.0);
  const fem::Mat8 k1 = fem::stiffness(mq, e1);
  const fem::Mat8 k7 = fem::stiffness(mq, e7);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      EXPECT_NEAR(k7[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  7.0 * k1[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  1e-12);
}

TEST(Hex8, MassTotalEqualsVolume) {
  const MappedQuad mq = fem::map_element(unit_cube_geom(0.5));
  const fem::Mat8 m = fem::mass(mq);
  double total = 0;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      total += m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  EXPECT_NEAR(total, 0.125, 1e-14);
  const std::array<double, 8> lm = fem::lumped_mass(mq);
  double lt = 0;
  for (double v : lm) lt += v;
  EXPECT_NEAR(lt, 0.125, 1e-14);
}

TEST(Hex8, ViscousBlockAnnihilatesRigidMotions) {
  const MappedQuad mq = fem::map_element(unit_cube_geom(1.0));
  std::array<double, 8> eta;
  eta.fill(2.0);
  const auto a = fem::viscous_block(mq, eta);
  // Translation: u = (1,0,0) everywhere.
  std::array<double, 24> u{}, au{};
  for (int i = 0; i < 8; ++i) u[static_cast<std::size_t>(3 * i)] = 1.0;
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c)
      au[static_cast<std::size_t>(r)] +=
          a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
          u[static_cast<std::size_t>(c)];
  for (int r = 0; r < 24; ++r)
    EXPECT_NEAR(au[static_cast<std::size_t>(r)], 0.0, 1e-12);
  // Rigid rotation about z: u = (-y, x, 0): eps(u) = 0.
  std::array<double, 24> rot{}, arot{};
  for (int i = 0; i < 8; ++i) {
    const double x = (i & 1) ? 1 : 0, y = (i & 2) ? 1 : 0;
    rot[static_cast<std::size_t>(3 * i + 0)] = -y;
    rot[static_cast<std::size_t>(3 * i + 1)] = x;
  }
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c)
      arot[static_cast<std::size_t>(r)] +=
          a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
          rot[static_cast<std::size_t>(c)];
  for (int r = 0; r < 24; ++r)
    EXPECT_NEAR(arot[static_cast<std::size_t>(r)], 0.0, 1e-12);
}

TEST(Hex8, DivergenceDetectsLinearExpansion) {
  const MappedQuad mq = fem::map_element(unit_cube_geom(1.0));
  const auto b = fem::divergence_block(mq);
  // u = (x, 0, 0): div u = 1, so sum_i B_(i)(u) = -int div u = -1.
  std::array<double, 24> u{};
  for (int i = 0; i < 8; ++i)
    u[static_cast<std::size_t>(3 * i)] = (i & 1) ? 1.0 : 0.0;
  double total = 0;
  for (int i = 0; i < 8; ++i) {
    double s = 0;
    for (int c = 0; c < 24; ++c)
      s += b[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] *
           u[static_cast<std::size_t>(c)];
    total += s;
  }
  EXPECT_NEAR(total, -1.0, 1e-12);
}

TEST(Hex8, PressureStabilizationKillsConstantsOnly) {
  const MappedQuad mq = fem::map_element(unit_cube_geom(1.0));
  const fem::Mat8 c = fem::pressure_stabilization(mq, 2.0);
  // Constant pressure in the kernel.
  std::array<double, 8> ones{};
  ones.fill(1.0);
  for (int i = 0; i < 8; ++i) {
    double s = 0;
    for (int j = 0; j < 8; ++j)
      s += c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
           ones[static_cast<std::size_t>(j)];
    EXPECT_NEAR(s, 0.0, 1e-13);
  }
  // Non-constant mode has positive energy.
  std::array<double, 8> mode{};
  for (int i = 0; i < 8; ++i) mode[static_cast<std::size_t>(i)] = (i & 1) ? 1.0 : -1.0;
  double energy = 0;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      energy += mode[static_cast<std::size_t>(i)] *
                c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
                mode[static_cast<std::size_t>(j)];
  EXPECT_GT(energy, 1e-6);
}

TEST(Hex8, SupgTauLimits) {
  EXPECT_DOUBLE_EQ(fem::supg_tau(0.1, 0.0, 1.0), 0.0);
  // Advection-dominated: tau -> h/(2|u|).
  EXPECT_NEAR(fem::supg_tau(0.1, 100.0, 1e-9), 0.1 / 200.0, 1e-8);
  // Diffusion-dominated: tau -> h^2/(12 kappa), tiny compared to h/(2|u|).
  EXPECT_NEAR(fem::supg_tau(0.1, 0.01, 10.0), 0.01 / 120.0, 1e-7);
  EXPECT_LT(fem::supg_tau(0.1, 0.01, 10.0), 0.1 / (2.0 * 0.01) * 0.01);
}

class FemRanks : public ::testing::TestWithParam<int> {};

TEST_P(FemRanks, LaplaceSolveReproducesLinearSolution) {
  alps::par::run(GetParam(), [](Comm& c) {
    // -div(grad u) = 0 with u = x + 2y - z on the boundary: the exact
    // solution is linear, so trilinear FEM reproduces it to roundoff.
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    // Refine a bit to get hanging nodes into the operator.
    const alps::octree::coord_t mid = alps::octree::coord_t{1}
                                      << (alps::octree::kMaxLevel - 1);
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
    for (std::size_t i = 0; i < flags.size(); ++i) {
      const auto& o = f.tree().leaves()[i];
      if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
    }
    f.tree().adapt(flags, 0, 6);
    f.tree().update_ranges(c);
    f.balance(c);
    Mesh m = extract_mesh(c, f);

    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(), [](const std::array<double, 3>&) { return 1.0; },
        0b111111);
    const auto exact = [](const std::array<double, 3>& p) {
      return p[0] + 2.0 * p[1] - p[2];
    };
    std::vector<double> g(static_cast<std::size_t>(m.n_local), 0.0);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      if (m.dof_boundary[static_cast<std::size_t>(i)])
        g[static_cast<std::size_t>(i)] = exact(m.dof_coords[static_cast<std::size_t>(i)]);
    std::vector<double> b(static_cast<std::size_t>(m.n_local), 0.0);
    op.lift_bcs(c, g, b);
    std::vector<double> x = g;
    la::KrylovOptions kopt;
    kopt.rtol = 1e-12;
    kopt.max_iterations = 2000;
    la::SolveResult r =
        la::cg(op.as_linop(c), b, x, la::identity_op(), op.as_dot(c), kopt);
    EXPECT_TRUE(r.converged);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  exact(m.dof_coords[static_cast<std::size_t>(i)]), 1e-8);
  });
}

TEST_P(FemRanks, DistributedApplyMatchesGatheredMatrix) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    Mesh m = extract_mesh(c, f);
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(),
        [](const std::array<double, 3>& p) { return 1.0 + p[0]; }, 0b000011);
    la::Csr global = op.assemble_global(c);
    EXPECT_EQ(global.rows(), m.n_global);

    // Random-but-deterministic global vector.
    std::vector<double> xg(static_cast<std::size_t>(m.n_global));
    for (std::size_t i = 0; i < xg.size(); ++i)
      xg[i] = std::sin(0.37 * static_cast<double>(i));
    std::vector<double> yg(static_cast<std::size_t>(m.n_global));
    global.matvec(xg, yg);

    std::vector<double> x(static_cast<std::size_t>(m.n_local));
    for (std::int64_t i = 0; i < m.n_local; ++i)
      x[static_cast<std::size_t>(i)] =
          xg[static_cast<std::size_t>(m.dof_gids[static_cast<std::size_t>(i)])];
    std::vector<double> y(static_cast<std::size_t>(m.n_local));
    op.apply(c, x, y);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                  yg[static_cast<std::size_t>(m.dof_gids[static_cast<std::size_t>(i)])],
                  1e-10);
  });
}

TEST_P(FemRanks, AmgPreconditionedCgOnAdaptedVariableViscosity) {
  alps::par::run(GetParam(), [](Comm& c) {
    Forest f = Forest::new_uniform(c, Connectivity::unit_cube(), 2);
    const alps::octree::coord_t mid = alps::octree::coord_t{1}
                                      << (alps::octree::kMaxLevel - 1);
    for (int round = 0; round < 2; ++round) {
      std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
      for (std::size_t i = 0; i < flags.size(); ++i) {
        const auto& o = f.tree().leaves()[i];
        if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
      }
      f.tree().adapt(flags, 0, 6);
    }
    f.tree().update_ranges(c);
    f.balance(c);
    Mesh m = extract_mesh(c, f);
    // 10^4 viscosity contrast.
    ElementOperator op = fem::build_scalar_laplace(
        m, f.connectivity(),
        [](const std::array<double, 3>& p) { return p[2] > 0.5 ? 1e4 : 1.0; },
        0b111111);
    la::Csr global = op.assemble_global(c);
    amg::Amg amg(global, {});
    la::LinOp pre = [&amg, &m](std::span<const double> x, std::span<double> y) {
      // Scatter to global, V-cycle, gather back: the serial-AMG stand-in.
      std::vector<double> xg(static_cast<std::size_t>(m.n_global), 0.0);
      for (std::int64_t i = 0; i < m.n_owned; ++i)
        xg[static_cast<std::size_t>(m.dof_gids[static_cast<std::size_t>(i)])] =
            x[static_cast<std::size_t>(i)];
      std::vector<double> yg(static_cast<std::size_t>(m.n_global), 0.0);
      // NOTE: single-rank only shortcut in this test (values complete).
      std::vector<double> tmp = xg;
      (void)tmp;
      std::fill(yg.begin(), yg.end(), 0.0);
      amg.vcycle(xg, yg);
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(y.size()); ++i)
        y[static_cast<std::size_t>(i)] =
            yg[static_cast<std::size_t>(m.dof_gids[static_cast<std::size_t>(i)])];
    };
    if (c.size() > 1) return;  // the shortcut above is serial-only
    std::vector<double> b(static_cast<std::size_t>(m.n_local), 1.0);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      if (m.dof_boundary[static_cast<std::size_t>(i)]) b[static_cast<std::size_t>(i)] = 0.0;
    std::vector<double> x(static_cast<std::size_t>(m.n_local), 0.0);
    la::KrylovOptions kopt;
    kopt.rtol = 1e-8;
    la::SolveResult r = la::cg(op.as_linop(c), b, x, pre, op.as_dot(c), kopt);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 25);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, FemRanks, ::testing::Values(1, 2, 4));

}  // namespace
