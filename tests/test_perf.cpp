// Tests for the performance model (src/perf).

#include <gtest/gtest.h>

#include "perf/model.hpp"

namespace {

using namespace alps::perf;

TEST(PerfModel, CollectiveGrowsLogarithmically) {
  MachineModel m = MachineModel::ranger();
  EXPECT_DOUBLE_EQ(collective_time(m, 1, 8), 0.0);
  const double t2 = collective_time(m, 2, 8);
  const double t1024 = collective_time(m, 1024, 8);
  EXPECT_GT(t2, 0.0);
  EXPECT_NEAR(t1024 / t2, 10.0, 1e-9);  // log2(1024) rounds
}

TEST(PerfModel, NeighborTimeSplitsLatencyAndBandwidth) {
  MachineModel m = MachineModel::ranger();
  const double lat_only = neighbor_time(m, 10, 0.0);
  EXPECT_NEAR(lat_only, 10.0 * (m.alpha + m.sync), 1e-12);
  const double bw = neighbor_time(m, 0, 1e6) ;
  EXPECT_NEAR(bw, 1e6 * m.beta, 1e-12);
}

TEST(PerfModel, GhostBytesScaleAsSurface) {
  // 8x the elements -> 4x the surface.
  const double b1 = ghost_bytes_per_rank(1000, 8.0);
  const double b8 = ghost_bytes_per_rank(8000, 8.0);
  EXPECT_NEAR(b8 / b1, 4.0, 1e-9);
}

TEST(PerfModel, PhaseTimeIdealWorkSplit) {
  MachineModel m = MachineModel::ranger();
  m.sync = 0;  // isolate the work term
  PhaseCost c{"w", 100.0, 0, 8, 0, 0.0};
  EXPECT_NEAR(phase_time(m, c, 1), 100.0, 1e-12);
  EXPECT_NEAR(phase_time(m, c, 100), 1.0, 1e-12);
}

TEST(PerfModel, CommunicationEventuallyDominates) {
  MachineModel m = MachineModel::ranger();
  PhaseCost c{"w", 1.0, 10, 8, 20, 1e4};
  double prev_eff = 1.0;
  for (std::int64_t p = 1; p <= 1 << 20; p *= 16) {
    const double t = phase_time(m, c, p);
    const double eff = (1.0 / static_cast<double>(p)) / t;
    EXPECT_LE(eff, prev_eff + 1e-12);  // efficiency decays monotonically
    prev_eff = eff;
  }
  EXPECT_LT(prev_eff, 0.5);  // at 1M cores latency has taken over
}

TEST(PerfModel, ContentionRampsOverNodeFill) {
  MachineModel m = MachineModel::ranger();
  EXPECT_DOUBLE_EQ(contention_factor(m, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(contention_factor(m, 16, 16), 1.0);  // at base: none
  EXPECT_NEAR(contention_factor(m, 16, 1), m.node_contention, 1e-12);
  EXPECT_NEAR(contention_factor(m, 4096, 1), m.node_contention, 1e-12);
  // Half-filled node: halfway up the ramp.
  EXPECT_NEAR(contention_factor(m, 4, 1),
              1.0 + 0.5 * (m.node_contention - 1.0), 1e-12);
}

TEST(PerfModel, PhaseCostFromStatsDividesByRanks) {
  alps::par::CommStats s{};
  s.p2p_messages = 40;       // 10 per rank at P = 4
  s.p2p_bytes = 4000;        // 1000 per rank
  s.allreduce_calls = 8;     // 2 logical rounds at P = 4
  s.allreduce_bytes = 64;    // 8 bytes per call
  s.allgather_calls = 4;     // 1 logical round
  s.allgather_bytes = 48;    // 12 bytes per call
  const PhaseCost c = phase_cost_from_stats("phase", 2.5, s, 4);
  EXPECT_EQ(c.name, "phase");
  EXPECT_DOUBLE_EQ(c.work_seconds, 2.5);
  EXPECT_EQ(c.collectives, 3);  // (8 + 4) / 4
  EXPECT_EQ(c.collective_bytes, (64 + 48) / 12);
  EXPECT_EQ(c.p2p_msgs_per_rank, 10);
  EXPECT_DOUBLE_EQ(c.p2p_bytes_per_rank, 1000.0);
}

TEST(PerfModel, PhaseCostFromStatsHandlesNoCollectives) {
  alps::par::CommStats s{};
  const PhaseCost c = phase_cost_from_stats("quiet", 1.0, s, 2);
  EXPECT_EQ(c.collectives, 0);
  EXPECT_EQ(c.collective_bytes, 8);  // keeps the PhaseCost default
}

TEST(PerfModel, MeasureSecondsIsPositive) {
  const double t = measure_seconds([] {
    volatile double s = 0;
    for (int i = 0; i < 100000; ++i) s = s + i;
  });
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
}

}  // namespace
