// obs::Histogram + obs::serve: log-bucket boundary exactness, the <= 4%
// quantile error bound against sorted references (random and adversarial
// inputs), exact cross-rank merge associativity through the analyze_step
// piggyback at P in {1, 2, 4}, the Prometheus / status renderers, and a
// live HTTP smoke test of all four endpoints (the test TSan points at:
// concurrent publisher + server + client). Every test also compiles (and
// the guards assert the no-op behavior) under -DALPS_OBS_DISABLE.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "obs/serve.hpp"
#include "par/runtime.hpp"

#ifndef ALPS_OBS_DISABLE
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace alps;
using obs::Histogram;

namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_analysis_enabled(true); }
  void TearDown() override {
    obs::serve_stop();
    obs::metrics_reset_for_testing();
    obs::analysis::reset_records();
    obs::set_analysis_enabled(true);  // default-on
  }
};

/// Nearest-rank reference quantile: the floor(q*n)-th (0-based) element
/// of the sorted sample — exactly the rank Histogram::quantile targets.
double ref_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  std::size_t idx = static_cast<std::size_t>(
      std::floor(q * static_cast<double>(sorted.size())));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void expect_quantiles_within_4pct(const Histogram& h,
                                  const std::vector<double>& samples) {
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double ref = ref_quantile(samples, q);
    const double got = h.quantile(q);
    EXPECT_LE(std::abs(got - ref), 0.04 * ref)
        << "q=" << q << " ref=" << ref << " got=" << got;
  }
}

}  // namespace

// ---- bucket scheme -----------------------------------------------------

TEST_F(ServeTest, BucketBoundariesMapExactly) {
  // upper(i) itself belongs to bucket i (buckets are (lower, upper]); one
  // ulp above it belongs to bucket i+1. The log-estimate in bucket_index
  // settles against the cumulative-product boundary table, so this holds
  // at every boundary, not just away from FP rounding trouble.
  EXPECT_EQ(Histogram::bucket_index(Histogram::first_upper()), 0);
  for (const int i : {0, 1, 7, 57, 133, 200, 317, Histogram::kBucketCount - 2,
                      Histogram::kBucketCount - 1}) {
    const double up = Histogram::bucket_upper(i);
    EXPECT_EQ(Histogram::bucket_index(up), i) << "at boundary " << i;
    if (i + 1 < Histogram::kBucketCount) {
      const double above =
          std::nextafter(up, std::numeric_limits<double>::infinity());
      EXPECT_EQ(Histogram::bucket_index(above), i + 1) << "above " << i;
    }
    if (i > 0) {
      EXPECT_DOUBLE_EQ(Histogram::bucket_lower(i),
                       Histogram::bucket_upper(i - 1));
    }
  }
  // Below the first bound and beyond the last: clamped, never out of range.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(Histogram::first_upper() / 2), 0);
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kBucketCount - 1);
}

TEST_F(ServeTest, RecordTracksExactCountSumMinMax) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  h.record(std::nan(""));  // dropped
  h.record(-1.0);          // dropped
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7e-3);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 4e-3);
}

// ---- quantile error bound ----------------------------------------------

TEST_F(ServeTest, QuantilesWithin4PercentOnRandomInput) {
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> logu(std::log(1e-6), std::log(1.0));
  std::vector<double> samples;
  Histogram h;
  for (int i = 0; i < 10000; ++i) {
    const double v = std::exp(logu(rng));
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_within_4pct(h, samples);
}

TEST_F(ServeTest, QuantilesExactWhenAllSamplesShareOneBucket) {
  // Adversarial: every sample identical. The bucket midpoint would be off
  // by up to 3.92%, but clamping to the exact [min, max] makes every
  // quantile exact.
  Histogram h;
  std::vector<double> samples(1000, 3.3e-4);
  for (const double v : samples) h.record(v);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.3e-4);
}

TEST_F(ServeTest, QuantilesWithin4PercentOnBimodalInput) {
  // Adversarial: two modes four decades apart; nearest-rank must jump
  // cleanly from one mode to the other with no interpolation artifacts.
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(1.1e-5);
  for (int i = 0; i < 500; ++i) samples.push_back(0.9e-1);
  for (const double v : samples) h.record(v);
  expect_quantiles_within_4pct(h, samples);
  // p25 sits in the low mode, exactly (clamp to min on the low side).
  const double p25 = h.quantile(0.25);
  EXPECT_LE(std::abs(p25 - 1.1e-5), 0.04 * 1.1e-5);
}

// ---- merging -----------------------------------------------------------

TEST_F(ServeTest, MergeIsExactAndAssociative) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> logu(std::log(1e-7), std::log(1e1));
  Histogram a, b, c, all;
  for (int i = 0; i < 3000; ++i) {
    const double v = std::exp(logu(rng));
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    all.record(v);
  }
  Histogram ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.count(), all.count());
  // Bucket counts are exact integers; the sum is FP and only order-stable
  // to rounding.
  EXPECT_NEAR(ab_c.sum(), all.sum(), 1e-12 * all.sum());
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(ab_c.bucket(i), all.bucket(i)) << "bucket " << i;
    EXPECT_EQ(a_bc.bucket(i), ab_c.bucket(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(ab_c.min(), all.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), all.max());
}

TEST_F(ServeTest, DeltaSinceIsolatesTheStepWindow) {
  Histogram cum;
  cum.record(1e-4);
  cum.record(2e-4);
  const Histogram base = cum;
  cum.record(5e-2);
  cum.record(6e-2);
  const Histogram d = cum.delta_since(base);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_NEAR(d.sum(), 0.11, 1e-12);
  // Window min/max are bucket-midpoint estimates; the quantile invariant
  // p50 <= max must survive re-estimation.
  EXPECT_GT(d.min(), 0.04);
  EXPECT_LE(d.quantile(0.5), d.max());
  // Nearest-rank at q=0.5 over {5e-2, 6e-2} targets index floor(0.5*2)=1,
  // i.e. the 6e-2 sample.
  EXPECT_LE(std::abs(d.quantile(0.5) - 6e-2), 0.04 * 6e-2);
}

TEST_F(ServeTest, CrossRankMergeThroughAnalyzeStepMatchesDirectRecording) {
  // The same fixed sample set, dealt round-robin to P ranks, must stitch
  // into bucket-identical histograms for every P: ship-as-sparse-delta +
  // elementwise add is exact, so grouping cannot matter.
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> logu(std::log(1e-6), std::log(1e-1));
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(std::exp(logu(rng)));
  Histogram direct;
  for (const double v : samples) direct.record(v);

  for (const int nranks : {1, 2, 4}) {
    obs::analysis::StepRecord rec;
    par::run(nranks, [&samples, &rec](par::Comm& comm) {
      for (std::size_t i = 0; i < samples.size(); ++i)
        if (static_cast<int>(i % static_cast<std::size_t>(comm.size())) ==
            comm.rank())
          obs::hist_record("test.serve.merge", samples[i]);
      const obs::analysis::StepRecord r =
          obs::analysis::analyze_step(comm, 1);
      if (comm.rank() == 0) rec = r;
    });
    const obs::analysis::PhaseLatency* found = nullptr;
    for (const auto& l : rec.latency)
      if (l.phase == "test.serve.merge") found = &l;
#ifndef ALPS_OBS_DISABLE
    ASSERT_NE(found, nullptr) << "P=" << nranks;
    EXPECT_EQ(found->hist.count(), direct.count()) << "P=" << nranks;
    EXPECT_NEAR(found->hist.sum(), direct.sum(), 1e-9 * direct.sum());
    for (int i = 0; i < Histogram::kBucketCount; ++i)
      ASSERT_EQ(found->hist.bucket(i), direct.bucket(i))
          << "P=" << nranks << " bucket " << i;
    expect_quantiles_within_4pct(found->hist, samples);
#else
    // Observability compiled out: analyze_step is a no-op shell and no
    // histograms travel.
    EXPECT_EQ(found, nullptr);
#endif
    obs::analysis::reset_records();
  }
}

// ---- renderers ---------------------------------------------------------

namespace {

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsSnapshot snap;
  snap.step = 7;
  snap.sim_time = 0.125;
  snap.dt = 0.015;
  snap.dofs = 40000;
  snap.elements = 9000;
  snap.ranks = 4;
  snap.partition_imbalance = 1.08;
  snap.cp_imbalance = 1.3;
  snap.solver_ran = true;
  snap.solver_status = "converged";
  snap.solver_iterations = 42;
  snap.solver_relres = 3e-6;
  snap.picard_iterations = 2;
  snap.counters.emplace_back("amg.vcycles", 12u);
  Histogram h;
  h.record(1e-3);
  h.record(2e-3);
  h.record(8e-3);
  snap.hists.emplace_back("fem.apply", h);
  snap.wait_blocked_s = 0.02;
  return snap;
}

}  // namespace

TEST_F(ServeTest, PrometheusTextExposesGaugesCountersAndHistogram) {
  const std::string text = obs::prometheus_text(sample_snapshot());
#ifndef ALPS_OBS_DISABLE
  EXPECT_NE(text.find("alps_up 1"), std::string::npos);
  EXPECT_NE(text.find("alps_step 7"), std::string::npos);
  EXPECT_NE(text.find("alps_dofs 40000"), std::string::npos);
  EXPECT_NE(text.find("alps_healthy 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE alps_amg_vcycles_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("alps_amg_vcycles_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE alps_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("alps_latency_seconds_bucket{phase=\"fem.apply\",le="),
            std::string::npos);
  EXPECT_NE(
      text.find("alps_latency_seconds_bucket{phase=\"fem.apply\",le=\"+Inf\"} "
                "3"),
      std::string::npos);
  EXPECT_NE(text.find("alps_latency_seconds_count{phase=\"fem.apply\"} 3"),
            std::string::npos);
  // Bucket series are cumulative: counts must be monotone down the text.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  while ((pos = text.find("le=\"", pos)) != std::string::npos) {
    const std::size_t sp = text.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t n = std::strtoull(text.c_str() + sp + 2, nullptr, 10);
    EXPECT_GE(n, prev);
    prev = n;
    pos = sp;
  }
#else
  EXPECT_TRUE(text.empty());
#endif
}

TEST_F(ServeTest, StatusJsonCarriesSolverEtaAndHealth) {
  obs::MetricsSnapshot snap = sample_snapshot();
  std::string j = obs::status_json(snap, 12.5, 0.8, 100);
#ifndef ALPS_OBS_DISABLE
  EXPECT_NE(j.find("\"step\":7"), std::string::npos);
  EXPECT_NE(j.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(j.find("\"status\":\"converged\""), std::string::npos);
  EXPECT_NE(j.find("\"target_steps\":100"), std::string::npos);
  EXPECT_NE(j.find("\"eta_s\":12.5"), std::string::npos);
  EXPECT_NE(j.find("\"step_rate_per_s\":0.8"), std::string::npos);
  // Unknown rate/ETA and a never-ran solver render as nulls, not garbage.
  snap.solver_ran = false;
  j = obs::status_json(snap, -1, 0, -1);
  EXPECT_NE(j.find("\"status\":null"), std::string::npos);
  EXPECT_NE(j.find("\"eta_s\":null"), std::string::npos);
  EXPECT_NE(j.find("\"target_steps\":null"), std::string::npos);
#else
  EXPECT_TRUE(j.empty());
#endif
}

// ---- live endpoint -----------------------------------------------------

#ifndef ALPS_OBS_DISABLE
namespace {

/// Minimal blocking HTTP GET against 127.0.0.1:port; returns the full
/// response (headers + body), empty on connect failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace

TEST_F(ServeTest, LiveServerServesAllFourEndpoints) {
  std::string err;
  const int port = obs::serve_start(0, &err);
  ASSERT_GT(port, 0) << err;
  EXPECT_TRUE(obs::serve_active());
  EXPECT_EQ(obs::serve_port(), port);

  // Before any publish: up, but explicitly empty-handed.
  EXPECT_NE(http_get(port, "/metrics").find("no snapshot published yet"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/status").find("{\"step\":null}"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/healthz").find("200 OK"), std::string::npos);

  obs::metrics_publish(sample_snapshot());
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("alps_step 7"), std::string::npos);
  EXPECT_NE(metrics.find("alps_latency_seconds_bucket{phase=\"fem.apply\""),
            std::string::npos);
  const std::string status = http_get(port, "/status");
  EXPECT_NE(status.find("\"step\":7"), std::string::npos);
  EXPECT_NE(status.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(http_get(port, "/telemetry/tail").find("200 OK"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/nope").find("404"), std::string::npos);

  // Concurrent scrape vs publish: what TSan watches. The publisher spins
  // on the retired slot's reader count, the reader pins before reading.
  for (int i = 0; i < 50; ++i) {
    obs::MetricsSnapshot snap = sample_snapshot();
    snap.step = 100 + i;
    obs::metrics_publish(snap);
    const std::string m = http_get(port, "/metrics");
    EXPECT_NE(m.find("alps_step "), std::string::npos);
  }

  obs::serve_stop();
  EXPECT_FALSE(obs::serve_active());
  EXPECT_EQ(obs::serve_port(), -1);
}

TEST_F(ServeTest, HealthzFlipsTo503OnStagnationAndStickyMark) {
  const int port = obs::serve_start(0);
  ASSERT_GT(port, 0);
  obs::metrics_set_stagnation_limit(3);

  obs::MetricsSnapshot snap = sample_snapshot();
  snap.solver_status = "stagnated";
  for (int i = 0; i < 2; ++i) obs::metrics_publish(snap);
  EXPECT_NE(http_get(port, "/healthz").find("200 OK"), std::string::npos);
  obs::metrics_publish(snap);  // third consecutive: trip
  const std::string r = http_get(port, "/healthz");
  EXPECT_NE(r.find("503"), std::string::npos);
  EXPECT_NE(r.find("stagnated_solves=3"), std::string::npos);

  // One good solve clears the run...
  snap.solver_status = "converged";
  obs::metrics_publish(snap);
  EXPECT_NE(http_get(port, "/healthz").find("200 OK"), std::string::npos);

  // ...but the sentinel mark is sticky, even before the next publish.
  obs::metrics_mark_unhealthy("sentinel: test NaN");
  const std::string dead = http_get(port, "/healthz");
  EXPECT_NE(dead.find("503"), std::string::npos);
  EXPECT_NE(dead.find("sentinel: test NaN"), std::string::npos);
  obs::metrics_publish(snap);  // publishing cannot resurrect it
  EXPECT_NE(http_get(port, "/healthz").find("503"), std::string::npos);
  EXPECT_NE(http_get(port, "/metrics").find("alps_healthy 0"),
            std::string::npos);
}
#endif  // ALPS_OBS_DISABLE

// ---- compiled-out guard ------------------------------------------------

TEST_F(ServeTest, DisabledBuildCompilesMacrosAndStubsToNoOps) {
  // Must compile in BOTH modes; the assertions flip with the macro.
  { OBS_HIST_SPAN("test.serve.macro"); }
#ifdef ALPS_OBS_DISABLE
  EXPECT_EQ(obs::serve_start(0), -1);
  EXPECT_EQ(obs::serve_maybe_start(), -1);
  EXPECT_FALSE(obs::serve_active());
  EXPECT_EQ(obs::serve_port(), -1);
  obs::MetricsSnapshot snap;
  obs::metrics_publish(snap);  // all no-ops, nothing to observe
  obs::metrics_mark_unhealthy("x");
  obs::metrics_linger_if_unhealthy();
  EXPECT_TRUE(obs::prometheus_text(snap).empty());
  EXPECT_TRUE(obs::status_json(snap, 0, 0, 0).empty());
#else
  SUCCEED();  // the live tests above cover the enabled half
#endif
}
