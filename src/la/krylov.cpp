#include "la/krylov.hpp"

#include <cmath>

namespace alps::la {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kMaxIterations: return "max_iterations";
    case SolveStatus::kStagnated: return "stagnated";
    case SolveStatus::kDiverged: return "diverged";
    case SolveStatus::kNonFinite: return "non_finite";
  }
  return "unknown";
}

namespace detail {

bool ConvergenceMonitor::update(int j, double relres) {
  res_.iterations = j;
  res_.relative_residual = relres;
  ring_.push(relres);
  if (!std::isfinite(relres)) {
    res_.status = SolveStatus::kNonFinite;
    return false;
  }
  if (relres < opt_.rtol) {
    res_.status = SolveStatus::kConverged;
    return false;
  }
  if (relres > opt_.divergence_tol) {
    res_.status = SolveStatus::kDiverged;
    return false;
  }
  if (best_ < 0.0 || relres < best_) {
    best_ = relres;
    best_iter_ = j;
  } else if (opt_.stagnation_window > 0 &&
             j - best_iter_ >= opt_.stagnation_window) {
    res_.status = SolveStatus::kStagnated;
    return false;
  }
  return true;
}

void ConvergenceMonitor::finish() {
  res_.residual_history = ring_.take();
  res_.converged = res_.status == SolveStatus::kConverged;
}

}  // namespace detail

}  // namespace alps::la
