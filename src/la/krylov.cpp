#include "la/krylov.hpp"

#include <cmath>

namespace alps::la {

MultiDotFn multi_dot_from(DotFn dot) {
  return [dot = std::move(dot)](std::span<const DotPair> pairs,
                                std::span<double> out) {
    for (std::size_t k = 0; k < pairs.size(); ++k)
      out[k] = dot(pairs[k].a, pairs[k].b);
  };
}

double pairwise_dot(std::span<const double> a, std::span<const double> b) {
  // Base blocks sum naively (vectorizable, cache-friendly); block sums
  // combine pairwise so the error constant grows with log(n/kBlock).
  constexpr std::size_t kBlock = 64;
  const std::size_t n = a.size();
  if (n <= kBlock) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  }
  // Split at the largest kBlock multiple <= n/2 so equal-length inputs
  // always split identically regardless of how they were produced.
  const std::size_t half = ((n / 2 + kBlock - 1) / kBlock) * kBlock;
  return pairwise_dot(a.first(half), b.first(half)) +
         pairwise_dot(a.subspan(half), b.subspan(half));
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kMaxIterations: return "max_iterations";
    case SolveStatus::kStagnated: return "stagnated";
    case SolveStatus::kDiverged: return "diverged";
    case SolveStatus::kNonFinite: return "non_finite";
  }
  return "unknown";
}

namespace detail {

bool ConvergenceMonitor::update(int j, double relres) {
  res_.iterations = j;
  res_.relative_residual = relres;
  ring_.push(relres);
  if (!std::isfinite(relres)) {
    res_.status = SolveStatus::kNonFinite;
    return false;
  }
  if (relres < opt_.rtol) {
    res_.status = SolveStatus::kConverged;
    return false;
  }
  if (relres > opt_.divergence_tol) {
    res_.status = SolveStatus::kDiverged;
    return false;
  }
  if (best_ < 0.0 || relres < best_) {
    best_ = relres;
    best_iter_ = j;
  } else if (opt_.stagnation_window > 0 &&
             j - best_iter_ >= opt_.stagnation_window) {
    res_.status = SolveStatus::kStagnated;
    return false;
  }
  return true;
}

void ConvergenceMonitor::finish() {
  res_.residual_history = ring_.take();
  res_.converged = res_.status == SolveStatus::kConverged;
}

}  // namespace detail

}  // namespace alps::la
