#include <cmath>
#include <vector>

#include "la/krylov.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"

namespace alps::la {

SolveResult cg(const LinOp& op, std::span<const double> b,
               std::span<double> x, const LinOp& precond,
               const MultiDotFn& dots, const KrylovOptions& opt) {
  OBS_SPAN("la.cg");
  OBS_HIST_SPAN("la.cg");
  const std::size_t n = x.size();
  std::vector<double> r(n), z(n), p(n), ap(n);
  std::uint64_t syncs = 0;
  const auto dot1 = [&](std::span<const double> u, std::span<const double> v) {
    const DotPair pair{u, v};
    double out = 0.0;
    dots(std::span<const DotPair>(&pair, 1), std::span<double>(&out, 1));
    ++syncs;
    return out;
  };
  const auto dot2 = [&](const DotPair& p0, const DotPair& p1, double& o0,
                        double& o1) {
    const DotPair pair[2] = {p0, p1};
    double out[2] = {0.0, 0.0};
    dots(std::span<const DotPair>(pair, 2), std::span<double>(out, 2));
    ++syncs;
    o0 = out[0];
    o1 = out[1];
  };

  op(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  SolveResult res;
  detail::ConvergenceMonitor mon(opt, res);
  // <r,r> (initial norm) and <r,z> (first beta denominator) fuse into the
  // single startup reduction.
  precond(r, z);
  double rr0 = 0.0, rz = 0.0;
  dot2({r, r}, {r, z}, rr0, rz);
  if (!std::isfinite(rr0)) {
    res.status = SolveStatus::kNonFinite;
    mon.finish();
    obs::counter_add(obs::wellknown::cg_syncs(), syncs);
    return res;
  }
  const double norm0 = std::sqrt(std::max(0.0, rr0));
  if (norm0 == 0.0) {
    res.status = SolveStatus::kConverged;
    mon.finish();
    obs::counter_add(obs::wellknown::cg_syncs(), syncs);
    return res;
  }
  std::copy(z.begin(), z.end(), p.begin());

  for (int j = 1; j <= opt.max_iterations; ++j) {
    op(p, ap);
    const double pap = dot1(p, ap);  // sync 1 of the iteration
    if (!std::isfinite(pap)) {
      res.status = SolveStatus::kNonFinite;
      break;
    }
    if (pap <= 0.0) {  // loss of positive definiteness
      res.status = SolveStatus::kDiverged;
      break;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    // Apply the preconditioner before the convergence test so <r,r> and
    // <r,z> share one reduction: sync 2 of the iteration. On the final
    // (converging) iteration this spends one preconditioner application
    // whose z is discarded — the price of dropping the third allreduce.
    precond(r, z);
    double rr = 0.0, rz_new = 0.0;
    dot2({r, r}, {r, z}, rr, rz_new);
    const double relres =
        std::isfinite(rr) ? std::sqrt(std::max(0.0, rr)) / norm0 : rr;
    if (!mon.update(j, relres)) break;
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  mon.finish();
  obs::counter_add(obs::wellknown::cg_iterations(),
                   static_cast<std::uint64_t>(res.iterations));
  obs::counter_add(obs::wellknown::cg_syncs(), syncs);
  return res;
}

}  // namespace alps::la
