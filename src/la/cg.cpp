#include <cmath>
#include <vector>

#include "la/krylov.hpp"
#include "obs/obs.hpp"

namespace alps::la {

SolveResult cg(const LinOp& op, std::span<const double> b,
               std::span<double> x, const LinOp& precond, const DotFn& dot,
               const KrylovOptions& opt) {
  OBS_SPAN("la.cg");
  const std::size_t n = x.size();
  std::vector<double> r(n), z(n), p(n), ap(n);
  op(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  SolveResult res;
  detail::ConvergenceMonitor mon(opt, res);
  const double rr0 = dot(r, r);
  if (!std::isfinite(rr0)) {
    res.status = SolveStatus::kNonFinite;
    mon.finish();
    return res;
  }
  const double norm0 = std::sqrt(std::max(0.0, rr0));
  if (norm0 == 0.0) {
    res.status = SolveStatus::kConverged;
    mon.finish();
    return res;
  }
  precond(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  for (int j = 1; j <= opt.max_iterations; ++j) {
    op(p, ap);
    const double pap = dot(p, ap);
    if (!std::isfinite(pap)) {
      res.status = SolveStatus::kNonFinite;
      break;
    }
    if (pap <= 0.0) {  // loss of positive definiteness
      res.status = SolveStatus::kDiverged;
      break;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr = dot(r, r);
    const double relres =
        std::isfinite(rr) ? std::sqrt(std::max(0.0, rr)) / norm0 : rr;
    if (!mon.update(j, relres)) break;
    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  mon.finish();
  obs::counter_add(obs::wellknown::cg_iterations(),
                   static_cast<std::uint64_t>(res.iterations));
  return res;
}

}  // namespace alps::la
