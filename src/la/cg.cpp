#include <cmath>
#include <vector>

#include "la/krylov.hpp"
#include "obs/obs.hpp"

namespace alps::la {

SolveResult cg(const LinOp& op, std::span<const double> b,
               std::span<double> x, const LinOp& precond, const DotFn& dot,
               const KrylovOptions& opt) {
  OBS_SPAN("la.cg");
  const std::size_t n = x.size();
  std::vector<double> r(n), z(n), p(n), ap(n);
  op(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double norm0 = std::sqrt(std::max(0.0, dot(r, r)));
  SolveResult res;
  if (norm0 == 0.0) {
    res.converged = true;
    return res;
  }
  precond(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  for (int j = 1; j <= opt.max_iterations; ++j) {
    op(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // loss of positive definiteness
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    res.iterations = j;
    res.relative_residual = std::sqrt(std::max(0.0, dot(r, r))) / norm0;
    if (res.relative_residual < opt.rtol) {
      res.converged = true;
      break;
    }
    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  obs::counter_add(obs::wellknown::cg_iterations(),
                   static_cast<std::uint64_t>(res.iterations));
  return res;
}

}  // namespace alps::la
