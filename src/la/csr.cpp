#include "la/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace alps::la {

Csr Csr::from_triplets(std::int64_t nrows, std::int64_t ncols,
                       std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  Csr m(nrows, ncols);
  m.colidx_.reserve(triplets.size());
  m.val_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const std::int64_t r = triplets[i].row, c = triplets[i].col;
    if (r < 0 || r >= nrows || c < 0 || c >= ncols)
      throw std::out_of_range("Csr::from_triplets: index out of range");
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c)
      v += triplets[i++].val;
    m.colidx_.push_back(c);
    m.val_.push_back(v);
    m.rowptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.val_.size());
  }
  // Fill gaps for empty rows.
  for (std::size_t r = 1; r < m.rowptr_.size(); ++r)
    m.rowptr_[r] = std::max(m.rowptr_[r], m.rowptr_[r - 1]);
  return m;
}

void Csr::matvec(std::span<const double> x, std::span<double> y) const {
  assert(static_cast<std::int64_t>(x.size()) >= ncols_);
  assert(static_cast<std::int64_t>(y.size()) >= nrows_);
  for (std::int64_t r = 0; r < nrows_; ++r) {
    double s = 0.0;
    for (std::int64_t k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k)
      s += val_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(r)] = s;
  }
}

void Csr::matvec_transpose(std::span<const double> x,
                           std::span<double> y) const {
  std::fill(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(ncols_), 0.0);
  for (std::int64_t r = 0; r < nrows_; ++r)
    for (std::int64_t k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k)
      y[static_cast<std::size_t>(colidx_[static_cast<std::size_t>(k)])] +=
          val_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(r)];
}

std::vector<double> Csr::diagonal() const {
  std::vector<double> d(static_cast<std::size_t>(nrows_), 0.0);
  for (std::int64_t r = 0; r < nrows_; ++r)
    for (std::int64_t k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k)
      if (colidx_[static_cast<std::size_t>(k)] == r)
        d[static_cast<std::size_t>(r)] = val_[static_cast<std::size_t>(k)];
  return d;
}

Csr Csr::transpose() const {
  std::vector<Triplet> t;
  t.reserve(val_.size());
  for (std::int64_t r = 0; r < nrows_; ++r)
    for (std::int64_t k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k)
      t.push_back(Triplet{colidx_[static_cast<std::size_t>(k)], r,
                          val_[static_cast<std::size_t>(k)]});
  return from_triplets(ncols_, nrows_, std::move(t));
}

Csr Csr::multiply(const Csr& a, const Csr& b) {
  if (a.ncols_ != b.nrows_)
    throw std::invalid_argument("Csr::multiply: dimension mismatch");
  // Row-by-row with a dense accumulator (sized to b.cols); fine for the
  // moderate bandwidths of FEM and AMG matrices.
  std::vector<double> acc(static_cast<std::size_t>(b.ncols_), 0.0);
  std::vector<std::int64_t> marker(static_cast<std::size_t>(b.ncols_), -1);
  Csr c(a.nrows_, b.ncols_);
  std::vector<std::int64_t> cols_in_row;
  for (std::int64_t r = 0; r < a.nrows_; ++r) {
    cols_in_row.clear();
    for (std::int64_t ka = a.rowptr_[static_cast<std::size_t>(r)];
         ka < a.rowptr_[static_cast<std::size_t>(r) + 1]; ++ka) {
      const std::int64_t j = a.colidx_[static_cast<std::size_t>(ka)];
      const double av = a.val_[static_cast<std::size_t>(ka)];
      for (std::int64_t kb = b.rowptr_[static_cast<std::size_t>(j)];
           kb < b.rowptr_[static_cast<std::size_t>(j) + 1]; ++kb) {
        const std::int64_t col = b.colidx_[static_cast<std::size_t>(kb)];
        if (marker[static_cast<std::size_t>(col)] != r) {
          marker[static_cast<std::size_t>(col)] = r;
          acc[static_cast<std::size_t>(col)] = 0.0;
          cols_in_row.push_back(col);
        }
        acc[static_cast<std::size_t>(col)] +=
            av * b.val_[static_cast<std::size_t>(kb)];
      }
    }
    std::sort(cols_in_row.begin(), cols_in_row.end());
    for (std::int64_t col : cols_in_row) {
      c.colidx_.push_back(col);
      c.val_.push_back(acc[static_cast<std::size_t>(col)]);
    }
    c.rowptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(c.val_.size());
  }
  return c;
}

DenseLu::DenseLu(const Csr& a) : n_(a.rows()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("DenseLu: matrix must be square");
  lu_.assign(static_cast<std::size_t>(n_ * n_), 0.0);
  piv_.resize(static_cast<std::size_t>(n_));
  for (std::int64_t r = 0; r < n_; ++r)
    for (std::int64_t k = a.rowptr()[static_cast<std::size_t>(r)];
         k < a.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      lu_[static_cast<std::size_t>(r * n_ +
                                   a.colidx()[static_cast<std::size_t>(k)])] =
          a.values()[static_cast<std::size_t>(k)];
  for (std::int64_t k = 0; k < n_; ++k) {
    std::int64_t pivot = k;
    for (std::int64_t i = k + 1; i < n_; ++i)
      if (std::abs(lu_[static_cast<std::size_t>(i * n_ + k)]) >
          std::abs(lu_[static_cast<std::size_t>(pivot * n_ + k)]))
        pivot = i;
    piv_[static_cast<std::size_t>(k)] = static_cast<std::int32_t>(pivot);
    if (pivot != k)
      for (std::int64_t j = 0; j < n_; ++j)
        std::swap(lu_[static_cast<std::size_t>(k * n_ + j)],
                  lu_[static_cast<std::size_t>(pivot * n_ + j)]);
    const double d = lu_[static_cast<std::size_t>(k * n_ + k)];
    if (d == 0.0) throw std::runtime_error("DenseLu: singular matrix");
    for (std::int64_t i = k + 1; i < n_; ++i) {
      const double f = lu_[static_cast<std::size_t>(i * n_ + k)] / d;
      lu_[static_cast<std::size_t>(i * n_ + k)] = f;
      for (std::int64_t j = k + 1; j < n_; ++j)
        lu_[static_cast<std::size_t>(i * n_ + j)] -=
            f * lu_[static_cast<std::size_t>(k * n_ + j)];
    }
  }
}

void DenseLu::solve(std::span<const double> b, std::span<double> x) const {
  std::copy(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n_), x.begin());
  for (std::int64_t k = 0; k < n_; ++k) {
    std::swap(x[static_cast<std::size_t>(k)],
              x[static_cast<std::size_t>(piv_[static_cast<std::size_t>(k)])]);
    for (std::int64_t i = k + 1; i < n_; ++i)
      x[static_cast<std::size_t>(i)] -=
          lu_[static_cast<std::size_t>(i * n_ + k)] *
          x[static_cast<std::size_t>(k)];
  }
  for (std::int64_t i = n_ - 1; i >= 0; --i) {
    for (std::int64_t j = i + 1; j < n_; ++j)
      x[static_cast<std::size_t>(i)] -=
          lu_[static_cast<std::size_t>(i * n_ + j)] *
          x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] /= lu_[static_cast<std::size_t>(i * n_ + i)];
  }
}

}  // namespace alps::la
