#pragma once
// Krylov solvers used by RHEA (paper Sec. III): preconditioned MINRES for
// the symmetric indefinite stabilized Stokes system, and preconditioned
// CG for SPD subsystems. Operators and inner products are abstract so the
// same code runs on serial matrices and on distributed matrix-free
// operators (dot products then carry the allreduce).
//
// Convergence reporting is structured (DESIGN.md §8): every solve returns
// a SolveStatus — not just a converged bool — and can optionally record a
// per-iteration relative-residual history ring for telemetry and the
// flight recorder. Non-finite residuals terminate the iteration
// immediately instead of silently spinning to max_iterations.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace alps::la {

/// y = Op(x); x and y have the same layout (owned + ghost for distributed).
using LinOp = std::function<void(std::span<const double>, std::span<double>)>;

/// Globally-consistent inner product (sums owned entries + allreduce in
/// the distributed case).
using DotFn =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// One (a, b) operand pair of a fused inner-product round.
struct DotPair {
  std::span<const double> a, b;
};

/// Compute out[k] = <pairs[k].a, pairs[k].b> for every pair with a single
/// global synchronization (one multi-value allreduce in the distributed
/// case). The reduced-synchronization Krylov iterations issue all
/// independent dot products of a reduction point through one call, so a
/// CG iteration costs 2 global syncs instead of 3-5.
using MultiDotFn =
    std::function<void(std::span<const DotPair>, std::span<double>)>;

/// Lift a scalar DotFn into a MultiDotFn. No fusion happens — each pair
/// still reduces separately — so this is the compatibility path for
/// serial dots and existing callers; distributed operators should provide
/// a genuinely fused implementation (ElementOperator::as_multi_dot).
MultiDotFn multi_dot_from(DotFn dot);

/// Blocked pairwise (cascaded) summation of sum_i a[i]*b[i]: contiguous
/// blocks are summed naively, block sums combine pairwise, keeping the
/// rounding error O(log n) instead of O(n). This makes Krylov residual
/// histories reproducible across element-batch sizes and rank counts to
/// tight tolerance where naive left-to-right summation drifts.
double pairwise_dot(std::span<const double> a, std::span<const double> b);

/// Why a Krylov iteration stopped.
enum class SolveStatus : std::uint8_t {
  kConverged = 0,      // relative residual dropped below rtol
  kMaxIterations = 1,  // budget exhausted without meeting rtol
  kStagnated = 2,      // no new residual minimum for stagnation_window its
  kDiverged = 3,       // residual blew past divergence_tol, or breakdown
  kNonFinite = 4,      // NaN/Inf detected in the recurrence
};

/// Stable lower-case token for logs/telemetry ("converged", "diverged", ...).
const char* to_string(SolveStatus s);

struct SolveResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;  // == (status == SolveStatus::kConverged)
  SolveStatus status = SolveStatus::kMaxIterations;
  /// Relative residual after each iteration, oldest first — the last
  /// `history_capacity` values when the solve ran longer than the ring.
  /// Empty when history_capacity == 0 or the solve took 0 iterations.
  std::vector<double> residual_history;
};

struct KrylovOptions {
  int max_iterations = 500;
  double rtol = 1e-8;
  /// Relative residual beyond which the solve is declared diverged.
  double divergence_tol = 1e8;
  /// Iterations without a new all-time-best residual before declaring
  /// stagnation; 0 disables the check.
  int stagnation_window = 0;
  /// Capacity of the per-iteration residual history ring; 0 records none.
  int history_capacity = 0;
};

namespace detail {

/// Fixed-capacity ring keeping the most recent residuals in order.
class ResidualRing {
 public:
  explicit ResidualRing(int capacity)
      : cap_(capacity > 0 ? static_cast<std::size_t>(capacity) : 0) {}

  void push(double relres) {
    if (cap_ == 0) return;
    if (ring_.size() < cap_) {
      ring_.push_back(relres);
    } else {
      ring_[head_] = relres;
      head_ = (head_ + 1) % cap_;
    }
  }

  /// Drain into a chronologically-ordered vector.
  std::vector<double> take() {
    std::vector<double> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    ring_.clear();
    head_ = 0;
    return out;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;
  std::vector<double> ring_;
};

/// Shared per-iteration bookkeeping: history ring, stagnation tracking,
/// divergence and non-finite classification. update() returns false when
/// the iteration must stop, with `result` already classified.
class ConvergenceMonitor {
 public:
  ConvergenceMonitor(const KrylovOptions& opt, SolveResult& result)
      : opt_(opt), res_(result), ring_(opt.history_capacity) {}

  /// Record the residual of iteration `j` and classify. Returns true to
  /// keep iterating.
  bool update(int j, double relres);

  /// Close out the solve: linearize the history ring and sync the
  /// `converged` mirror with the status.
  void finish();

 private:
  const KrylovOptions& opt_;
  SolveResult& res_;
  ResidualRing ring_;
  double best_ = -1.0;  // all-time-best residual (-1: none yet)
  int best_iter_ = 0;
};

}  // namespace detail

/// Preconditioned MINRES (Paige & Saunders; implementation follows Elman,
/// Silvester & Wathen). `precond` must be SPD; pass identity for none.
/// On entry x is the initial guess; on exit the approximate solution.
/// Issues 2 global synchronization rounds per iteration through `dots`
/// (counted in the "comm.sync.minres" obs counter).
SolveResult minres(const LinOp& op, std::span<const double> b,
                   std::span<double> x, const LinOp& precond,
                   const MultiDotFn& dots, const KrylovOptions& opt);
inline SolveResult minres(const LinOp& op, std::span<const double> b,
                          std::span<double> x, const LinOp& precond,
                          const DotFn& dot, const KrylovOptions& opt) {
  return minres(op, b, x, precond, multi_dot_from(dot), opt);
}

/// Preconditioned conjugate gradients for SPD systems. The two dot
/// products following the preconditioner application — <r,r> for the
/// convergence test and <r,z> for beta — fuse into one reduction, so an
/// iteration costs 2 global syncs ("comm.sync.cg") instead of 3.
SolveResult cg(const LinOp& op, std::span<const double> b,
               std::span<double> x, const LinOp& precond,
               const MultiDotFn& dots, const KrylovOptions& opt);
inline SolveResult cg(const LinOp& op, std::span<const double> b,
                      std::span<double> x, const LinOp& precond,
                      const DotFn& dot, const KrylovOptions& opt) {
  return cg(op, b, x, precond, multi_dot_from(dot), opt);
}

/// Convenience identity preconditioner.
inline LinOp identity_op() {
  return [](std::span<const double> x, std::span<double> y) {
    std::copy(x.begin(), x.end(), y.begin());
  };
}

}  // namespace alps::la
