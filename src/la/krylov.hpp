#pragma once
// Krylov solvers used by RHEA (paper Sec. III): preconditioned MINRES for
// the symmetric indefinite stabilized Stokes system, and preconditioned
// CG for SPD subsystems. Operators and inner products are abstract so the
// same code runs on serial matrices and on distributed matrix-free
// operators (dot products then carry the allreduce).

#include <functional>
#include <span>

namespace alps::la {

/// y = Op(x); x and y have the same layout (owned + ghost for distributed).
using LinOp = std::function<void(std::span<const double>, std::span<double>)>;

/// Globally-consistent inner product (sums owned entries + allreduce in
/// the distributed case).
using DotFn =
    std::function<double(std::span<const double>, std::span<const double>)>;

struct SolveResult {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

struct KrylovOptions {
  int max_iterations = 500;
  double rtol = 1e-8;
};

/// Preconditioned MINRES (Paige & Saunders; implementation follows Elman,
/// Silvester & Wathen). `precond` must be SPD; pass identity for none.
/// On entry x is the initial guess; on exit the approximate solution.
SolveResult minres(const LinOp& op, std::span<const double> b,
                   std::span<double> x, const LinOp& precond,
                   const DotFn& dot, const KrylovOptions& opt);

/// Preconditioned conjugate gradients for SPD systems.
SolveResult cg(const LinOp& op, std::span<const double> b,
               std::span<double> x, const LinOp& precond, const DotFn& dot,
               const KrylovOptions& opt);

/// Convenience identity preconditioner.
inline LinOp identity_op() {
  return [](std::span<const double> x, std::span<double> y) {
    std::copy(x.begin(), x.end(), y.begin());
  };
}

}  // namespace alps::la
