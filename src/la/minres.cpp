#include <cmath>
#include <vector>

#include "la/krylov.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"

namespace alps::la {

SolveResult minres(const LinOp& op, std::span<const double> b,
                   std::span<double> x, const LinOp& precond,
                   const MultiDotFn& dots, const KrylovOptions& opt) {
  OBS_SPAN("la.minres");
  OBS_HIST_SPAN("la.minres");
  const std::size_t n = x.size();
  std::vector<double> v(n), v_old(n, 0.0), v_new(n), z(n), z_new(n);
  std::vector<double> w(n, 0.0), w_old(n, 0.0), w_new(n), az(n);
  std::uint64_t syncs = 0;
  // The Lanczos recurrence's two inner products sit on opposite sides of
  // the preconditioner application, so they cannot fuse; MINRES runs at
  // exactly 2 synchronization rounds per iteration (the residual estimate
  // comes from the Givens recurrence, not a third dot).
  const auto dot = [&](std::span<const double> a2, std::span<const double> b2) {
    const DotPair pair{a2, b2};
    double out = 0.0;
    dots(std::span<const DotPair>(&pair, 1), std::span<double>(&out, 1));
    ++syncs;
    return out;
  };

  // v1 = b - A x0, z1 = M v1.
  op(x, az);
  for (std::size_t i = 0; i < n; ++i) v[i] = b[i] - az[i];
  precond(v, z);
  SolveResult res;
  detail::ConvergenceMonitor mon(opt, res);
  const double zv0 = dot(z, v);
  if (!std::isfinite(zv0)) {
    res.status = SolveStatus::kNonFinite;
    mon.finish();
    obs::counter_add(obs::wellknown::minres_syncs(), syncs);
    return res;
  }
  double gamma = std::sqrt(std::max(0.0, zv0));
  const double norm0 = gamma;
  if (norm0 == 0.0) {
    res.status = SolveStatus::kConverged;
    mon.finish();
    obs::counter_add(obs::wellknown::minres_syncs(), syncs);
    return res;
  }

  double gamma_old = 1.0, eta = gamma;
  double s_prev = 0.0, s_cur = 0.0, c_prev = 1.0, c_cur = 1.0;

  for (int j = 1; j <= opt.max_iterations; ++j) {
    for (std::size_t i = 0; i < n; ++i) z[i] /= gamma;
    op(z, az);
    const double delta = dot(az, z);
    for (std::size_t i = 0; i < n; ++i)
      v_new[i] = az[i] - (delta / gamma) * v[i] - (gamma / gamma_old) * v_old[i];
    precond(v_new, z_new);
    const double zv = dot(z_new, v_new);
    if (!std::isfinite(zv)) {
      res.iterations = j;
      res.status = SolveStatus::kNonFinite;
      break;
    }
    const double gamma_new = std::sqrt(std::max(0.0, zv));

    const double alpha0 = c_cur * delta - c_prev * s_cur * gamma;
    const double alpha1 = std::sqrt(alpha0 * alpha0 + gamma_new * gamma_new);
    const double alpha2 = s_cur * delta + c_prev * c_cur * gamma;
    const double alpha3 = s_prev * gamma;
    if (alpha1 == 0.0) {  // Lanczos breakdown
      res.iterations = j;
      res.status = SolveStatus::kDiverged;
      break;
    }
    if (!std::isfinite(alpha1)) {
      res.iterations = j;
      res.status = SolveStatus::kNonFinite;
      break;
    }

    c_prev = c_cur;
    s_prev = s_cur;
    c_cur = alpha0 / alpha1;
    s_cur = gamma_new / alpha1;

    for (std::size_t i = 0; i < n; ++i)
      w_new[i] = (z[i] - alpha3 * w_old[i] - alpha2 * w[i]) / alpha1;
    for (std::size_t i = 0; i < n; ++i) x[i] += c_cur * eta * w_new[i];
    eta = -s_cur * eta;

    std::swap(v_old, v);
    std::swap(v, v_new);
    std::swap(w_old, w);
    std::swap(w, w_new);
    std::swap(z, z_new);
    gamma_old = gamma;
    gamma = gamma_new;

    if (!mon.update(j, std::abs(eta) / norm0)) break;
    if (gamma == 0.0) {  // exact solution reached
      res.status = SolveStatus::kConverged;
      res.relative_residual = 0.0;
      break;
    }
  }
  mon.finish();
  obs::counter_add(obs::wellknown::minres_iterations(),
                   static_cast<std::uint64_t>(res.iterations));
  obs::counter_add(obs::wellknown::minres_syncs(), syncs);
  return res;
}

}  // namespace alps::la
