#include "la/dist_csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace alps::la {

namespace {

struct RowEntry {
  std::int64_t col = 0;
  double val = 0.0;
};

}  // namespace

GhostExchange::GhostExchange(par::Comm& comm,
                             std::span<const std::int64_t> ghost_gids,
                             std::span<const std::int64_t> offsets) {
  const int p = comm.size();
  send_idx_.assign(static_cast<std::size_t>(p), {});
  recv_idx_.assign(static_cast<std::size_t>(p), {});
  num_ghosts_ = ghost_gids.size();
  const std::int64_t lo = offsets[static_cast<std::size_t>(comm.rank())];

  // Each ghost slot asks its owner for one owned entry; the alltoallv of
  // requested gids tells every owner which entries to pack per neighbor.
  std::vector<std::vector<std::int64_t>> want(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < ghost_gids.size(); ++i) {
    const int owner = owner_of(offsets, ghost_gids[i]);
    if (owner == comm.rank())
      throw std::logic_error("GhostExchange: ghost gid owned locally");
    want[static_cast<std::size_t>(owner)].push_back(ghost_gids[i]);
    recv_idx_[static_cast<std::size_t>(owner)].push_back(
        static_cast<std::int32_t>(i));
  }
  const std::vector<std::vector<std::int64_t>> asked = comm.alltoallv(want);
  for (int r = 0; r < p; ++r)
    for (std::int64_t gid : asked[static_cast<std::size_t>(r)])
      send_idx_[static_cast<std::size_t>(r)].push_back(
          static_cast<std::int32_t>(gid - lo));
}

std::vector<std::int64_t> DistCsr::uniform_offsets(int nranks, std::int64_t n) {
  std::vector<std::int64_t> off(static_cast<std::size_t>(nranks) + 1, 0);
  for (int r = 0; r < nranks; ++r)
    off[static_cast<std::size_t>(r) + 1] =
        off[static_cast<std::size_t>(r)] +
        n / nranks + (r < n % nranks ? 1 : 0);
  return off;
}

DistCsr DistCsr::from_triplets(par::Comm& comm,
                               std::vector<std::int64_t> row_offsets,
                               std::vector<std::int64_t> col_offsets,
                               std::vector<Triplet> triplets) {
  const int p = comm.size();
  if (row_offsets.size() != static_cast<std::size_t>(p) + 1 ||
      col_offsets.size() != static_cast<std::size_t>(p) + 1)
    throw std::invalid_argument("DistCsr::from_triplets: offsets must be P+1");

  // Route every triplet to the owner of its row.
  std::vector<std::vector<Triplet>> outbox(static_cast<std::size_t>(p));
  for (const Triplet& t : triplets)
    outbox[static_cast<std::size_t>(owner_of(row_offsets, t.row))].push_back(t);
  triplets.clear();
  triplets.shrink_to_fit();
  std::vector<std::vector<Triplet>> inbox = comm.alltoallv(outbox);
  outbox.clear();

  DistCsr m;
  m.row_offsets_ = std::move(row_offsets);
  m.col_offsets_ = std::move(col_offsets);
  const std::size_t me = static_cast<std::size_t>(comm.rank());
  m.row_lo_ = m.row_offsets_[me];
  m.row_hi_ = m.row_offsets_[me + 1];
  m.col_lo_ = m.col_offsets_[me];
  m.col_hi_ = m.col_offsets_[me + 1];

  // Split owned rows into the owned-column and ghost-column blocks.
  std::vector<Triplet> diag_t, offd_t;
  std::vector<std::int64_t> ghosts;
  for (const auto& batch : inbox)
    for (const Triplet& t : batch) {
      if (t.row < m.row_lo_ || t.row >= m.row_hi_)
        throw std::out_of_range("DistCsr::from_triplets: misrouted row");
      if (t.col >= m.col_lo_ && t.col < m.col_hi_)
        diag_t.push_back(Triplet{t.row - m.row_lo_, t.col - m.col_lo_, t.val});
      else
        ghosts.push_back(t.col);
    }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  for (const auto& batch : inbox)
    for (const Triplet& t : batch) {
      if (t.col >= m.col_lo_ && t.col < m.col_hi_) continue;
      const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), t.col);
      offd_t.push_back(Triplet{
          t.row - m.row_lo_,
          static_cast<std::int64_t>(it - ghosts.begin()), t.val});
    }
  inbox.clear();

  m.ghost_gids_ = std::move(ghosts);
  m.diag_ = Csr::from_triplets(m.owned_rows(), m.owned_cols(), std::move(diag_t));
  m.offd_ = Csr::from_triplets(m.owned_rows(),
                               static_cast<std::int64_t>(m.ghost_gids_.size()),
                               std::move(offd_t));
  m.plan_ = GhostExchange(comm, m.ghost_gids_, m.col_offsets_);
  return m;
}

void DistCsr::matvec(par::Comm& comm, std::span<const double> x,
                     std::span<double> y) const {
  OBS_SPAN("la.matvec");
  // Post the halo sends, overlap with the owned-column block, then fold
  // in the ghost block once the neighbor values have arrived.
  plan_.forward_begin(comm, x);
  diag_.matvec(x, y);
  ghost_vals_.resize(ghost_gids_.size());
  plan_.forward_finish<double>(comm, ghost_vals_);
  const auto& rp = offd_.rowptr();
  const auto& ci = offd_.colidx();
  const auto& v = offd_.values();
  for (std::int64_t r = 0; r < offd_.rows(); ++r) {
    double s = 0.0;
    for (std::int64_t k = rp[static_cast<std::size_t>(r)];
         k < rp[static_cast<std::size_t>(r) + 1]; ++k)
      s += v[static_cast<std::size_t>(k)] *
           ghost_vals_[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(r)] += s;
  }
}

void DistCsr::matvec_transpose(par::Comm& comm, std::span<const double> x,
                               std::span<double> y) const {
  OBS_SPAN("la.matvec_transpose");
  std::fill(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(owned_cols()),
            0.0);
  ghost_acc_.assign(ghost_gids_.size(), 0.0);
  for (std::int64_t r = 0; r < diag_.rows(); ++r) {
    const double xv = x[static_cast<std::size_t>(r)];
    const auto& rp = diag_.rowptr();
    for (std::int64_t k = rp[static_cast<std::size_t>(r)];
         k < rp[static_cast<std::size_t>(r) + 1]; ++k)
      y[static_cast<std::size_t>(diag_.colidx()[static_cast<std::size_t>(k)])] +=
          diag_.values()[static_cast<std::size_t>(k)] * xv;
    const auto& rpo = offd_.rowptr();
    for (std::int64_t k = rpo[static_cast<std::size_t>(r)];
         k < rpo[static_cast<std::size_t>(r) + 1]; ++k)
      ghost_acc_[static_cast<std::size_t>(
          offd_.colidx()[static_cast<std::size_t>(k)])] +=
          offd_.values()[static_cast<std::size_t>(k)] * xv;
  }
  plan_.reverse_add<double>(comm, ghost_acc_, y);
}

std::vector<double> DistCsr::diagonal() const {
  if (row_lo_ != col_lo_ || row_hi_ != col_hi_)
    throw std::logic_error("DistCsr::diagonal: partitions must coincide");
  return diag_.diagonal();
}

void DistCsr::fetch_rows(par::Comm& comm,
                         std::span<const std::int64_t> gids,
                         std::vector<std::int64_t>& rowptr,
                         std::vector<std::int64_t>& col_gids,
                         std::vector<double>& vals) const {
  const int p = comm.size();
  std::vector<std::vector<std::int64_t>> req(static_cast<std::size_t>(p));
  // (owner, position within that owner's reply) per requested gid.
  std::vector<std::pair<int, std::size_t>> where(gids.size());
  for (std::size_t i = 0; i < gids.size(); ++i) {
    const int owner = owner_of(row_offsets_, gids[i]);
    where[i] = {owner, req[static_cast<std::size_t>(owner)].size()};
    req[static_cast<std::size_t>(owner)].push_back(gids[i]);
  }
  const std::vector<std::vector<std::int64_t>> asked = comm.alltoallv(req);

  // Serve: per requester, row lengths then the packed entries.
  std::vector<std::vector<std::int64_t>> len_out(static_cast<std::size_t>(p));
  std::vector<std::vector<RowEntry>> ent_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    for (std::int64_t gid : asked[static_cast<std::size_t>(r)]) {
      if (gid < row_lo_ || gid >= row_hi_)
        throw std::out_of_range("DistCsr::fetch_rows: misrouted request");
      const std::size_t lr = static_cast<std::size_t>(gid - row_lo_);
      std::int64_t n = 0;
      for (std::int64_t k = diag_.rowptr()[lr]; k < diag_.rowptr()[lr + 1]; ++k) {
        ent_out[static_cast<std::size_t>(r)].push_back(RowEntry{
            col_lo_ + diag_.colidx()[static_cast<std::size_t>(k)],
            diag_.values()[static_cast<std::size_t>(k)]});
        ++n;
      }
      for (std::int64_t k = offd_.rowptr()[lr]; k < offd_.rowptr()[lr + 1]; ++k) {
        ent_out[static_cast<std::size_t>(r)].push_back(RowEntry{
            ghost_gids_[static_cast<std::size_t>(
                offd_.colidx()[static_cast<std::size_t>(k)])],
            offd_.values()[static_cast<std::size_t>(k)]});
        ++n;
      }
      len_out[static_cast<std::size_t>(r)].push_back(n);
    }
  const std::vector<std::vector<std::int64_t>> len_in = comm.alltoallv(len_out);
  const std::vector<std::vector<RowEntry>> ent_in = comm.alltoallv(ent_out);

  // Reassemble in the caller's gid order.
  rowptr.assign(gids.size() + 1, 0);
  for (std::size_t i = 0; i < gids.size(); ++i)
    rowptr[i + 1] = len_in[static_cast<std::size_t>(where[i].first)][where[i].second];
  for (std::size_t i = 0; i < gids.size(); ++i) rowptr[i + 1] += rowptr[i];
  // Entry offset of each reply row within its owner's packed entries.
  std::vector<std::vector<std::int64_t>> ent_off(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& lens = len_in[static_cast<std::size_t>(r)];
    auto& off = ent_off[static_cast<std::size_t>(r)];
    off.assign(lens.size() + 1, 0);
    for (std::size_t i = 0; i < lens.size(); ++i) off[i + 1] = off[i] + lens[i];
  }
  col_gids.assign(static_cast<std::size_t>(rowptr.back()), 0);
  vals.assign(static_cast<std::size_t>(rowptr.back()), 0.0);
  for (std::size_t i = 0; i < gids.size(); ++i) {
    const auto [owner, pos] = where[i];
    const auto& ents = ent_in[static_cast<std::size_t>(owner)];
    const std::int64_t src = ent_off[static_cast<std::size_t>(owner)][pos];
    const std::int64_t n = rowptr[i + 1] - rowptr[i];
    for (std::int64_t k = 0; k < n; ++k) {
      col_gids[static_cast<std::size_t>(rowptr[i] + k)] =
          ents[static_cast<std::size_t>(src + k)].col;
      vals[static_cast<std::size_t>(rowptr[i] + k)] =
          ents[static_cast<std::size_t>(src + k)].val;
    }
  }
}

Csr DistCsr::replicate(par::Comm& comm) const {
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(local_nnz()));
  for (std::int64_t r = 0; r < diag_.rows(); ++r) {
    for (std::int64_t k = diag_.rowptr()[static_cast<std::size_t>(r)];
         k < diag_.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      t.push_back(Triplet{
          row_lo_ + r,
          col_lo_ + diag_.colidx()[static_cast<std::size_t>(k)],
          diag_.values()[static_cast<std::size_t>(k)]});
    for (std::int64_t k = offd_.rowptr()[static_cast<std::size_t>(r)];
         k < offd_.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      t.push_back(Triplet{
          row_lo_ + r,
          ghost_gids_[static_cast<std::size_t>(
              offd_.colidx()[static_cast<std::size_t>(k)])],
          offd_.values()[static_cast<std::size_t>(k)]});
  }
  std::vector<Triplet> all = comm.allgatherv(t);
  return Csr::from_triplets(global_rows(), global_cols(), std::move(all));
}

}  // namespace alps::la
