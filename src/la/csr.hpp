#pragma once
// Compressed sparse row matrices and small dense helpers used by the
// solvers and the AMG hierarchy.

#include <cstdint>
#include <span>
#include <vector>

#include "obs/mem.hpp"

namespace alps::la {

struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double val = 0.0;
};

class Csr {
 public:
  Csr() = default;
  Csr(std::int64_t nrows, std::int64_t ncols) : nrows_(nrows), ncols_(ncols) {
    rowptr_.assign(static_cast<std::size_t>(nrows) + 1, 0);
  }

  /// Build from triplets; duplicate entries are summed.
  static Csr from_triplets(std::int64_t nrows, std::int64_t ncols,
                           std::vector<Triplet> triplets);

  std::int64_t rows() const { return nrows_; }
  std::int64_t cols() const { return ncols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  const std::vector<std::int64_t>& rowptr() const { return rowptr_; }
  const std::vector<std::int64_t>& colidx() const { return colidx_; }
  const std::vector<double>& values() const { return val_; }
  std::vector<double>& values() { return val_; }

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;
  /// y = A^T x.
  void matvec_transpose(std::span<const double> x, std::span<double> y) const;

  /// Diagonal entries (0 where structurally absent).
  std::vector<double> diagonal() const;

  Csr transpose() const;

  /// C = A * B (sparse-sparse product).
  static Csr multiply(const Csr& a, const Csr& b);

  /// Heap bytes held (capacity-based; see obs::vec_bytes).
  std::uint64_t memory_bytes() const {
    return obs::vec_bytes(rowptr_) + obs::vec_bytes(colidx_) +
           obs::vec_bytes(val_);
  }

 private:
  std::int64_t nrows_ = 0, ncols_ = 0;
  std::vector<std::int64_t> rowptr_;
  std::vector<std::int64_t> colidx_;
  std::vector<double> val_;
};

// ---- small vector helpers (local, no communication) ----------------------
inline void axpy(double a, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}
inline void scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}
inline double local_dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Dense LU with partial pivoting for tiny coarsest-level solves.
class DenseLu {
 public:
  explicit DenseLu(const Csr& a);
  void solve(std::span<const double> b, std::span<double> x) const;
  std::int64_t n() const { return n_; }
  std::uint64_t memory_bytes() const {
    return obs::vec_bytes(lu_) + obs::vec_bytes(piv_);
  }

 private:
  std::int64_t n_ = 0;
  std::vector<double> lu_;
  std::vector<std::int32_t> piv_;
};

}  // namespace alps::la
