#pragma once
// Distributed owned-row sparse matrices (paper Sec. III): every rank
// stores only the rows of the global ids it owns, split into a local
// block (columns owned by this rank) and a ghost block (columns owned
// elsewhere, compressed to a sorted ghost-gid list). A ghost-exchange
// plan — which owned entries each neighbor needs, which ghost slots each
// neighbor fills — is computed once from the column gids and reused by
// every matvec, so the per-application cost is O(N_local + ghosts), not
// O(N_global). This is the owned-row/ghost-column layout of hypre's
// ParCSR and p4est-based FEM stacks, and it is what lets the AMG
// preconditioner weak-scale.

#include <cstdint>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "par/comm.hpp"

namespace alps::la {

/// Returns the rank owning global id `gid` under the partition `offsets`
/// (size P+1, offsets[r] .. offsets[r+1] owned by rank r).
inline int owner_of(std::span<const std::int64_t> offsets, std::int64_t gid) {
  auto it = std::upper_bound(offsets.begin(), offsets.end() - 1, gid);
  return static_cast<int>(it - offsets.begin()) - 1;
}

/// Point-to-point halo-exchange plan between owned vector entries and the
/// ghost slots that reference them on other ranks. Built once per matrix;
/// each exchange is pure p2p (no collectives), so its cost scales with the
/// partition surface, not the problem size.
class GhostExchange {
 public:
  GhostExchange() = default;

  /// `ghost_gids`: sorted unique global ids needed locally but owned by
  /// other ranks; `offsets`: ownership ranges (size P+1). Collective.
  GhostExchange(par::Comm& comm, std::span<const std::int64_t> ghost_gids,
                std::span<const std::int64_t> offsets);

  std::size_t num_ghosts() const { return num_ghosts_; }

  /// Post the owned-value sends to every neighbor. Non-blocking in the
  /// in-process runtime (messages are buffered), so callers can overlap
  /// local compute between begin and finish.
  template <typename T>
  void forward_begin(par::Comm& comm, std::span<const T> owned) const {
    const int p = comm.size();
    std::vector<T> buf;
    std::uint64_t bytes = 0;
    for (int r = 0; r < p; ++r) {
      const auto& idx = send_idx_[static_cast<std::size_t>(r)];
      if (idx.empty()) continue;
      buf.clear();
      buf.reserve(idx.size());
      for (std::int32_t i : idx) buf.push_back(owned[static_cast<std::size_t>(i)]);
      bytes += idx.size() * sizeof(T);
      // Flow start stamped before the post (delivery is instantaneous).
      obs::flow_emit(r, obs::kFlowGhostForward, true);
      comm.send(r, kForwardTag, buf);
    }
    obs::counter_add(obs::wellknown::ghost_exchange_bytes(), bytes);
    obs::overlap_mark_start();
  }

  /// Receive the neighbors' owned values into the local ghost slots.
  template <typename T>
  void forward_finish(par::Comm& comm, std::span<T> ghosts) const {
    obs::overlap_mark_finish_begin();
    const int p = comm.size();
    for (int r = 0; r < p; ++r) {
      const auto& idx = recv_idx_[static_cast<std::size_t>(r)];
      if (idx.empty()) continue;
      const std::vector<T> buf = comm.recv<T>(r, kForwardTag);
      obs::flow_emit(r, obs::kFlowGhostForward, false);
      for (std::size_t i = 0; i < idx.size(); ++i)
        ghosts[static_cast<std::size_t>(idx[i])] = buf[i];
    }
    obs::overlap_mark_finish_end();
  }

  /// Fill `ghosts` (num_ghosts entries) with the owners' `owned` values.
  /// Collective over the plan's neighbors.
  template <typename T>
  void forward(par::Comm& comm, std::span<const T> owned,
               std::span<T> ghosts) const {
    forward_begin(comm, owned);
    forward_finish(comm, ghosts);
  }

  /// Add the local ghost-slot contributions into the owners' `owned`
  /// entries (the adjoint of forward; used by transpose matvecs).
  template <typename T>
  void reverse_add(par::Comm& comm, std::span<const T> ghosts,
                   std::span<T> owned) const {
    const int p = comm.size();
    std::vector<T> buf;
    std::uint64_t bytes = 0;
    for (int r = 0; r < p; ++r) {
      const auto& idx = recv_idx_[static_cast<std::size_t>(r)];
      if (idx.empty()) continue;
      buf.clear();
      buf.reserve(idx.size());
      for (std::int32_t i : idx) buf.push_back(ghosts[static_cast<std::size_t>(i)]);
      bytes += idx.size() * sizeof(T);
      obs::flow_emit(r, obs::kFlowGhostReverse, true);
      comm.send(r, kReverseTag, buf);
    }
    obs::counter_add(obs::wellknown::ghost_exchange_bytes(), bytes);
    for (int r = 0; r < p; ++r) {
      const auto& idx = send_idx_[static_cast<std::size_t>(r)];
      if (idx.empty()) continue;
      const std::vector<T> buf_in = comm.recv<T>(r, kReverseTag);
      obs::flow_emit(r, obs::kFlowGhostReverse, false);
      for (std::size_t i = 0; i < idx.size(); ++i)
        owned[static_cast<std::size_t>(idx[i])] += buf_in[i];
    }
  }

  const std::vector<std::vector<std::int32_t>>& send_idx() const {
    return send_idx_;
  }
  const std::vector<std::vector<std::int32_t>>& recv_idx() const {
    return recv_idx_;
  }

  /// Heap bytes of the plan's index tables (capacity-based).
  std::uint64_t memory_bytes() const {
    std::uint64_t b = obs::vec_bytes(send_idx_) + obs::vec_bytes(recv_idx_);
    for (const auto& v : send_idx_) b += obs::vec_bytes(v);
    for (const auto& v : recv_idx_) b += obs::vec_bytes(v);
    return b;
  }

 private:
  static constexpr int kForwardTag = 0x6700;
  static constexpr int kReverseTag = 0x6701;

  // One slot per rank; empty for non-neighbors. send_idx_[r]: owned local
  // indices rank r ghosts; recv_idx_[r]: local ghost slots rank r fills.
  std::vector<std::vector<std::int32_t>> send_idx_, recv_idx_;
  std::size_t num_ghosts_ = 0;
};

/// Owned-row distributed CSR: rows [row_offsets[r], row_offsets[r+1])
/// live on rank r, columns are split into the owned block `diag` (local
/// column index = gid - col_begin) and the ghost block `offd` (local
/// column index into the sorted `ghost_gids` list).
class DistCsr {
 public:
  DistCsr() = default;

  /// Build from triplets with *global* row/col ids; rows owned by other
  /// ranks are routed to their owners (one alltoallv), duplicates are
  /// summed. `row_offsets`/`col_offsets` are the ownership partitions
  /// (size P+1, identical on every rank). Collective.
  static DistCsr from_triplets(par::Comm& comm,
                               std::vector<std::int64_t> row_offsets,
                               std::vector<std::int64_t> col_offsets,
                               std::vector<Triplet> triplets);

  /// Partition [0, n) into P near-equal contiguous ranges.
  static std::vector<std::int64_t> uniform_offsets(int nranks, std::int64_t n);

  std::int64_t global_rows() const { return row_offsets_.empty() ? 0 : row_offsets_.back(); }
  std::int64_t global_cols() const { return col_offsets_.empty() ? 0 : col_offsets_.back(); }
  std::int64_t row_begin() const { return row_lo_; }
  std::int64_t row_end() const { return row_hi_; }
  std::int64_t col_begin() const { return col_lo_; }
  std::int64_t col_end() const { return col_hi_; }
  std::int64_t owned_rows() const { return row_hi_ - row_lo_; }
  std::int64_t owned_cols() const { return col_hi_ - col_lo_; }
  std::int64_t local_nnz() const { return diag_.nnz() + offd_.nnz(); }

  const std::vector<std::int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::int64_t>& col_offsets() const { return col_offsets_; }
  const Csr& diag() const { return diag_; }
  const Csr& offd() const { return offd_; }
  /// Mutable value arrays (pattern-preserving numeric updates only, e.g.
  /// the cached Galerkin refresh of the AMG hierarchy).
  std::vector<double>& diag_values() { return diag_.values(); }
  std::vector<double>& offd_values() { return offd_.values(); }
  const std::vector<std::int64_t>& ghost_gids() const { return ghost_gids_; }
  const GhostExchange& plan() const { return plan_; }

  /// y = A x over owned entries (x: owned_cols, y: owned_rows). Posts the
  /// ghost sends, computes the owned-column block while they are in
  /// flight, then folds in the ghost block. Allocation-free after the
  /// first call. Collective.
  void matvec(par::Comm& comm, std::span<const double> x,
              std::span<double> y) const;

  /// y = A^T x (x: owned_rows, y: owned_cols): local transpose products,
  /// then reverse-accumulation of the ghost-column contributions to their
  /// owners. Collective.
  void matvec_transpose(par::Comm& comm, std::span<const double> x,
                        std::span<double> y) const;

  /// Owned diagonal entries (0 where structurally absent). Requires the
  /// row and column partitions to coincide.
  std::vector<double> diagonal() const;

  /// Fetch complete remote rows (columns as global ids) for the given
  /// remotely-owned row gids, in order. Used by the distributed Galerkin
  /// product to pull the interpolation rows of ghost points. Collective.
  void fetch_rows(par::Comm& comm, std::span<const std::int64_t> gids,
                  std::vector<std::int64_t>& rowptr,
                  std::vector<std::int64_t>& col_gids,
                  std::vector<double>& vals) const;

  /// Gather the full matrix on every rank. Only for the tiny replicated
  /// coarsest AMG level and test/bench reference paths — never on the
  /// per-iteration solve path. Collective.
  Csr replicate(par::Comm& comm) const;

  /// This rank's heap bytes: partition tables, diag/offd blocks, ghost
  /// gid list, exchange plan, and the persistent matvec ghost buffers.
  std::uint64_t memory_bytes() const {
    return obs::vec_bytes(row_offsets_) + obs::vec_bytes(col_offsets_) +
           diag_.memory_bytes() + offd_.memory_bytes() +
           obs::vec_bytes(ghost_gids_) + plan_.memory_bytes() +
           obs::vec_bytes(ghost_vals_) + obs::vec_bytes(ghost_acc_);
  }

 private:
  std::vector<std::int64_t> row_offsets_, col_offsets_;
  std::int64_t row_lo_ = 0, row_hi_ = 0, col_lo_ = 0, col_hi_ = 0;
  Csr diag_;   // owned rows x owned cols
  Csr offd_;   // owned rows x ghost cols
  std::vector<std::int64_t> ghost_gids_;  // sorted, unique
  GhostExchange plan_;
  // Matvec workspaces (mutable: matvec is logically const).
  mutable std::vector<double> ghost_vals_, ghost_acc_;
};

}  // namespace alps::la
