#include "par/comm.hpp"

#include <algorithm>

namespace alps::par {

World::World(int size)
    : size_(size),
      mailboxes_(static_cast<std::size_t>(size)),
      barrier_(size),
      a2a_epoch_(static_cast<std::size_t>(size), 0),
      stage_(static_cast<std::size_t>(size), nullptr),
      stage_sizes_(static_cast<std::size_t>(size), 0) {
  if (size < 1) throw std::invalid_argument("par::World: size must be >= 1");
}

std::uint64_t World::mailbox_pending_bytes(int rank) {
  if (rank < 0 || rank >= size_)
    throw std::out_of_range("par::World: bad rank");
  detail::Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mtx);
  std::uint64_t bytes = 0;
  for (const detail::Envelope& e : box.queue)
    bytes += e.data.capacity() + sizeof e;
  return bytes;
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (dest < 0 || dest >= size())
    throw std::out_of_range("par::Comm::send: bad destination rank");
  world_->stats_.p2p_messages++;
  world_->stats_.p2p_bytes += data.size();
  detail::Mailbox& box = world_->mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mtx);
    box.queue.push_back(detail::Envelope{
        rank_, tag, obs::wait_now(),
        std::vector<std::byte>(data.begin(), data.end())});
  }
  box.cv.notify_all();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  // With ALPS_TRACE=comm this exposes receive-wait time — the per-rank
  // imbalance signal — without touching the hot path otherwise.
  OBS_COMM_SPAN("par.recv");
  // Wait-state accounting (obs::analysis): when the matching envelope is
  // found, the blocked interval [enter, now) is classified against the
  // envelope's send timestamp. wait_now() is 0 when accounting is off.
  const std::uint64_t t_enter = obs::wait_now();
  detail::Mailbox& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mtx);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        std::vector<std::byte> data = std::move(it->data);
        const std::uint64_t sent_ns = it->sent_ns;
        box.queue.erase(it);
        if (t_enter != 0)
          obs::wait_record_recv(src, t_enter, sent_ns, obs::wait_now());
        return data;
      }
    }
    box.cv.wait(lock);
  }
}

void Comm::allreduce_sum(std::span<const double> in, std::span<double> out) {
  if (in.size() != out.size())
    throw std::invalid_argument("par::Comm::allreduce_sum: length mismatch");
  if (!in.empty() && in.data() == out.data())
    throw std::invalid_argument("par::Comm::allreduce_sum: in/out overlap");
  OBS_COMM_SPAN("par.allreduce");
  world_->stats_.allreduce_calls++;
  world_->stats_.allreduce_bytes += in.size() * sizeof(double);
  publish(in.data(), in.size() * sizeof(double));
  std::fill(out.begin(), out.end(), 0.0);
  for (int r = 0; r < size(); ++r) {
    const double* src = static_cast<const double*>(world_->stage_[r]);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += src[i];
  }
  release();
}

void Comm::barrier() {
  OBS_COMM_SPAN("par.barrier");
  world_->stats_.barrier_calls++;
  const std::uint64_t t0 = obs::wait_now();
  world_->barrier_.arrive_and_wait();
  if (t0 != 0) obs::wait_record_collective(t0, obs::wait_now());
}

void Comm::publish(const void* p, std::size_t bytes) {
  world_->stage_[static_cast<std::size_t>(rank_)] = p;
  world_->stage_sizes_[static_cast<std::size_t>(rank_)] = bytes;
  // Time blocked at the staging barrier is collective imbalance: the
  // last-arriving rank waits ~0, everyone else absorbs its lateness.
  const std::uint64_t t0 = obs::wait_now();
  world_->barrier_.arrive_and_wait();  // all contributions visible
  if (t0 != 0) obs::wait_record_collective(t0, obs::wait_now());
}

void Comm::release() {
  const std::uint64_t t0 = obs::wait_now();
  world_->barrier_.arrive_and_wait();  // all readers done; slots reusable
  // The release barrier belongs to the same collective call: add its
  // blocked time but do not count a second call.
  if (t0 != 0) obs::wait_record_collective(t0, obs::wait_now(), false);
}

}  // namespace alps::par
