#pragma once
// In-process message-passing runtime: the MPI substitute used by every
// distributed algorithm in this repository (see DESIGN.md, Substitutions).
//
// P "ranks" execute concurrently as std::threads and communicate only
// through this interface: matched point-to-point messages plus the
// collectives the paper's algorithms need (allgather for partition
// ranges, allreduce for MarkElements thresholds and balance fixpoints,
// alltoallv for partition/field transfer, exscan for global numbering).
//
// Collectives are staged through shared memory guarded by a barrier; the
// traffic they *would* generate on a network is recorded in CommStats so
// the performance model (src/perf) can synthesize large-P timings from
// counted, not invented, communication.

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"

namespace alps::par {

/// Live communication counters (shared, thread-safe). Calls and payload
/// bytes are incremented once per participating rank; the *_bytes fields
/// record the payload each rank contributes to the collective (what it
/// would put on a network), so the perf model sees measured traffic, not
/// just call counts. In this in-process runtime alltoallv is transported
/// over p2p messages, so its payload also appears in p2p_bytes.
struct AtomicCommStats {
  std::atomic<std::uint64_t> p2p_messages{0};
  std::atomic<std::uint64_t> p2p_bytes{0};
  std::atomic<std::uint64_t> allreduce_calls{0};
  std::atomic<std::uint64_t> allreduce_bytes{0};
  std::atomic<std::uint64_t> allgather_calls{0};
  std::atomic<std::uint64_t> allgather_bytes{0};
  std::atomic<std::uint64_t> alltoall_calls{0};
  std::atomic<std::uint64_t> alltoall_bytes{0};
  std::atomic<std::uint64_t> barrier_calls{0};

  void reset() {
    p2p_messages = 0;
    p2p_bytes = 0;
    allreduce_calls = 0;
    allreduce_bytes = 0;
    allgather_calls = 0;
    allgather_bytes = 0;
    alltoall_calls = 0;
    alltoall_bytes = 0;
    barrier_calls = 0;
  }
};

/// Copyable snapshot of the counters, returned from par::run.
struct CommStats {
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t allreduce_calls = 0;
  std::uint64_t allreduce_bytes = 0;
  std::uint64_t allgather_calls = 0;
  std::uint64_t allgather_bytes = 0;
  std::uint64_t alltoall_calls = 0;
  std::uint64_t alltoall_bytes = 0;
  std::uint64_t barrier_calls = 0;
};

inline CommStats snapshot(const AtomicCommStats& s) {
  return CommStats{s.p2p_messages.load(),    s.p2p_bytes.load(),
                   s.allreduce_calls.load(), s.allreduce_bytes.load(),
                   s.allgather_calls.load(), s.allgather_bytes.load(),
                   s.alltoall_calls.load(),  s.alltoall_bytes.load(),
                   s.barrier_calls.load()};
}

namespace detail {

struct Envelope {
  int src = -1;
  int tag = 0;
  // Post time of the send (obs trace clock). Lets the receiver classify
  // its blocked time exactly — waited-before-post is late-sender time,
  // waited-after-post is transfer — without a cross-rank exchange. 0 when
  // wait-state accounting is off.
  std::uint64_t sent_ns = 0;
  std::vector<std::byte> data;
};

struct Mailbox {
  std::mutex mtx;
  std::condition_variable cv;
  std::deque<Envelope> queue;
};

}  // namespace detail

/// Shared state owned by the Runtime; one instance per "world".
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }
  AtomicCommStats& stats() { return stats_; }

  /// Bytes of undelivered envelopes queued in `rank`'s mailbox (payload
  /// plus envelope headers) — what the "par.mailbox" memory scope
  /// reports. Takes the mailbox lock; cold path.
  std::uint64_t mailbox_pending_bytes(int rank);

 private:
  friend class Comm;

  int size_;
  std::vector<detail::Mailbox> mailboxes_;
  std::barrier<> barrier_;
  // Per-rank alltoallv round counter. alltoallv is collective, so every
  // rank's own counter agrees at matching calls; folding it into the
  // message tag keeps successive rounds from interleaving without a
  // trailing barrier (each rank only touches its own slot).
  std::vector<std::uint64_t> a2a_epoch_;
  // Staging area for shared-memory collectives. Each rank deposits a
  // pointer to its contribution; two barrier phases separate publish
  // and read so slots can be reused immediately afterwards.
  std::vector<const void*> stage_;
  std::vector<std::size_t> stage_sizes_;
  AtomicCommStats stats_;
};

/// Per-rank handle; the only way ranks interact. Mirrors the slice of MPI
/// the paper's algorithms rely on.
class Comm {
 public:
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size_; }

  // ---- point-to-point -------------------------------------------------
  void send_bytes(int dest, int tag, std::span<const std::byte> data);
  std::vector<std::byte> recv_bytes(int src, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send(dest, tag, std::span<const T>(data));
  }
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recv_bytes(src, tag);
    if (raw.size() % sizeof(T) != 0)
      throw std::runtime_error("par::Comm::recv: size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  // ---- collectives ----------------------------------------------------
  void barrier();

  /// Gather one element from every rank, in rank order, on every rank.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    OBS_COMM_SPAN("par.allgather");
    world_->stats_.allgather_calls++;
    world_->stats_.allgather_bytes += sizeof(T);
    publish(&value, sizeof(T));
    std::vector<T> out(size());
    for (int r = 0; r < size(); ++r)
      std::memcpy(&out[r], world_->stage_[r], sizeof(T));
    release();
    return out;
  }

  /// Gather variable-length contributions, concatenated in rank order.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    OBS_COMM_SPAN("par.allgatherv");
    world_->stats_.allgather_calls++;
    world_->stats_.allgather_bytes += local.size() * sizeof(T);
    publish(local.data(), local.size() * sizeof(T));
    std::vector<T> out;
    for (int r = 0; r < size(); ++r) {
      std::size_t n = world_->stage_sizes_[r] / sizeof(T);
      std::size_t off = out.size();
      out.resize(off + n);
      if (n > 0) std::memcpy(out.data() + off, world_->stage_[r], n * sizeof(T));
    }
    release();
    return out;
  }
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& local) {
    return allgatherv(std::span<const T>(local));
  }

  /// Gather variable-length contributions onto `root` only (point-to-
  /// point, concatenated in rank order); other ranks return empty. Unlike
  /// allgatherv this keeps every rank except the root at O(local) memory.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ != root) {
      send(root, kGatherTag, local);
      return {};
    }
    std::vector<T> out;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        out.insert(out.end(), local.begin(), local.end());
      } else {
        const std::vector<T> part = recv<T>(r, kGatherTag);
        out.insert(out.end(), part.begin(), part.end());
      }
    }
    return out;
  }
  template <typename T>
  std::vector<T> gatherv(const std::vector<T>& local, int root) {
    return gatherv(std::span<const T>(local), root);
  }

  /// Reduce a single value with a binary op; result on every rank.
  template <typename T, typename Op>
  T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    OBS_COMM_SPAN("par.allreduce");
    world_->stats_.allreduce_calls++;
    world_->stats_.allreduce_bytes += sizeof(T);
    publish(&value, sizeof(T));
    T acc;
    std::memcpy(&acc, world_->stage_[0], sizeof(T));
    for (int r = 1; r < size(); ++r) {
      T v;
      std::memcpy(&v, world_->stage_[r], sizeof(T));
      acc = op(acc, v);
    }
    release();
    return acc;
  }

  template <typename T>
  T allreduce_sum(const T& v) {
    return allreduce(v, [](T a, T b) { return a + b; });
  }

  /// Element-wise sum-reduce a vector in ONE collective round: out[i] =
  /// sum over ranks of in[i]. This is what lets the Krylov solvers fuse
  /// their independent dot products into a single synchronization per
  /// reduction point instead of one allreduce per scalar. `out` must not
  /// overlap `in` and both sides must pass the same length.
  void allreduce_sum(std::span<const double> in, std::span<double> out);
  template <typename T>
  T allreduce_max(const T& v) {
    return allreduce(v, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T allreduce_min(const T& v) {
    return allreduce(v, [](T a, T b) { return a < b ? a : b; });
  }
  bool allreduce_or(bool v) {
    int r = allreduce_sum<int>(v ? 1 : 0);
    return r != 0;
  }

  /// Exclusive prefix sum: rank r receives sum of values of ranks < r.
  template <typename T>
  T exscan_sum(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    OBS_COMM_SPAN("par.exscan");
    world_->stats_.allreduce_calls++;
    world_->stats_.allreduce_bytes += sizeof(T);
    publish(&value, sizeof(T));
    T acc{};
    for (int r = 0; r < rank_; ++r) {
      T v;
      std::memcpy(&v, world_->stage_[r], sizeof(T));
      acc = acc + v;
    }
    release();
    return acc;
  }

  /// Personalized all-to-all: sendbufs[d] goes to rank d; returns one
  /// buffer per source rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& sendbufs) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (static_cast<int>(sendbufs.size()) != size())
      throw std::runtime_error("par::Comm::alltoallv: need one buffer per rank");
    OBS_COMM_SPAN("par.alltoallv");
    world_->stats_.alltoall_calls++;
    // Tag this round with the per-communicator epoch: senders and
    // receivers agree on it because alltoallv is collective, and a
    // message from round k can never match a recv of round k+1, so no
    // barrier is needed between successive rounds.
    const std::uint64_t epoch =
        world_->a2a_epoch_[static_cast<std::size_t>(rank_)]++;
    const int tag =
        kAlltoallTag | static_cast<int>((epoch & 0x7fffu) << 16);
    for (int d = 0; d < size(); ++d)
      if (d != rank_) {
        world_->stats_.alltoall_bytes +=
            sendbufs[static_cast<std::size_t>(d)].size() * sizeof(T);
        send(d, tag, sendbufs[d]);
      }
    std::vector<std::vector<T>> out(size());
    out[rank_] = sendbufs[rank_];
    for (int s = 0; s < size(); ++s)
      if (s != rank_) out[s] = recv<T>(s, tag);
    return out;
  }

  AtomicCommStats& stats() { return world_->stats_; }

  /// Bytes queued for (but not yet received by) this rank.
  std::uint64_t pending_recv_bytes() {
    return world_->mailbox_pending_bytes(rank_);
  }

 private:
  static constexpr int kAlltoallTag = 0x7f00;
  static constexpr int kGatherTag = 0x7f01;

  void publish(const void* p, std::size_t bytes);
  void release();

  World* world_;
  int rank_;
};

}  // namespace alps::par
