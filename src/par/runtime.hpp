#pragma once
// Thread harness that runs an SPMD function on P simulated ranks.

#include <functional>

#include "par/comm.hpp"

namespace alps::par {

/// Run `body` on `nranks` ranks, each on its own thread, sharing one World.
/// Exceptions thrown by any rank are rethrown on the caller's thread after
/// all ranks have been joined. Returns the accumulated CommStats.
CommStats run(int nranks, const std::function<void(Comm&)>& body);

}  // namespace alps::par
