#include "par/runtime.hpp"

#include <exception>
#include <thread>

namespace alps::par {

CommStats run(int nranks, const std::function<void(Comm&)>& body) {
  World world(nranks);
  // Fresh per-rank observability slots for this world: spans, counters,
  // and phase accumulators recorded by the rank threads stay readable
  // (obs::events, obs::aggregate_phases, ...) until the next run.
  obs::world_begin(nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      obs::rank_bind(r);
      Comm comm(world, r);
      try {
        body(comm);
      } catch (...) {
        // Store and exit the rank. If the failure is deterministic every
        // rank reaches it and the first exception is rethrown below; a
        // single-rank failure while peers wait on it would deadlock, so
        // rank bodies are written to fail uniformly.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      obs::rank_unbind();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  return snapshot(world.stats());
}

}  // namespace alps::par
