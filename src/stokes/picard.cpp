#include "stokes/picard.hpp"

#include <cmath>

namespace alps::stokes {

std::vector<double> strain_rate_invariant(const Mesh& m,
                                          const forest::Connectivity& conn,
                                          std::span<const double> x) {
  std::vector<double> edot(m.elements.size() * 8, 0.0);
  std::array<std::array<double, 3>, 8> ue;
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::MappedQuad mq =
        fem::map_element(fem::element_geometry(m, conn, e));
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      for (int c = 0; c < 3; ++c) {
        double v = 0.0;
        for (int k = 0; k < cc.n; ++k)
          v += cc.w[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]) * 4 +
                 static_cast<std::size_t>(c)];
        ue[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] = v;
      }
    }
    for (int q = 0; q < fem::kQuad; ++q) {
      double grad[3][3] = {};
      for (int i = 0; i < 8; ++i)
        for (int c = 0; c < 3; ++c)
          for (int d = 0; d < 3; ++d)
            grad[c][d] += ue[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] *
                          mq.dn[static_cast<std::size_t>(q)]
                               [static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(d)];
      const double div = grad[0][0] + grad[1][1] + grad[2][2];
      double ss = 0.0;
      for (int c = 0; c < 3; ++c)
        for (int d = 0; d < 3; ++d) {
          double eps = 0.5 * (grad[c][d] + grad[d][c]);
          if (c == d) eps -= div / 3.0;  // deviatoric part
          ss += eps * eps;
        }
      edot[8 * e + static_cast<std::size_t>(q)] = std::sqrt(0.5 * ss);
    }
  }
  return edot;
}

std::vector<double> evaluate_viscosity(const Mesh& m,
                                       const forest::Connectivity& conn,
                                       const ViscosityLaw& law,
                                       std::span<const double> temperature,
                                       std::span<const double> x) {
  const std::vector<double> edot = strain_rate_invariant(m, conn, x);
  const auto& n = fem::shape_values();
  std::vector<double> eta(m.elements.size() * 8);
  std::array<double, 8> te;
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::MappedQuad mq =
        fem::map_element(fem::element_geometry(m, conn, e));
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      te[static_cast<std::size_t>(i)] = 0.0;
      for (int k = 0; k < cc.n; ++k)
        te[static_cast<std::size_t>(i)] +=
            cc.w[static_cast<std::size_t>(k)] *
            temperature[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])];
    }
    for (int q = 0; q < fem::kQuad; ++q) {
      double tq = 0.0;
      for (int i = 0; i < 8; ++i)
        tq += n[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] *
              te[static_cast<std::size_t>(i)];
      eta[8 * e + static_cast<std::size_t>(q)] =
          law(mq.xq[static_cast<std::size_t>(q)], tq,
              edot[8 * e + static_cast<std::size_t>(q)]);
    }
  }
  return eta;
}

PicardResult solve_nonlinear_stokes(par::Comm& comm, const Mesh& m,
                                    const forest::Connectivity& conn,
                                    const ViscosityLaw& law,
                                    std::span<const double> temperature,
                                    std::span<double> x,
                                    const PicardOptions& opt,
                                    amg::HierarchyCache* cache) {
  PicardResult result;
  const std::size_t nl = static_cast<std::size_t>(m.n_local);
  std::vector<double> prev(x.begin(), x.end());
  // Without a caller-owned cache, a loop-local one still reuses the
  // hierarchy structure across Picard iterations (same mesh throughout).
  amg::HierarchyCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  for (int it = 0; it < opt.max_iterations; ++it) {
    const std::vector<double> eta =
        evaluate_viscosity(m, conn, law, temperature, x);
    StokesSolver solver(comm, m, conn, eta, opt.stokes, cache);
    const std::vector<double> rhs = StokesSolver::buoyancy_rhs(
        comm, m, conn, temperature, opt.rayleigh, opt.buoyancy_dir,
        opt.stokes);
    result.solves.push_back(solver.solve(comm, rhs, x));
    const StokesTimings& t = solver.timings();
    result.timings.assemble_seconds += t.assemble_seconds;
    result.timings.amg_setup_seconds += t.amg_setup_seconds;
    result.timings.amg_apply_seconds += t.amg_apply_seconds;
    result.timings.minres_seconds += t.minres_seconds;
    result.iteration_timings.push_back(t);
    result.iterations = it + 1;

    // Relative change of velocity (owned entries).
    double diff = 0.0, norm = 0.0;
    for (std::int64_t d = 0; d < m.n_owned; ++d)
      for (int c = 0; c < 3; ++c) {
        const std::size_t i = static_cast<std::size_t>(d) * 4 +
                              static_cast<std::size_t>(c);
        diff += (x[i] - prev[i]) * (x[i] - prev[i]);
        norm += x[i] * x[i];
      }
    diff = comm.allreduce_sum(diff);
    norm = comm.allreduce_sum(norm);
    result.velocity_change = norm > 0 ? std::sqrt(diff / norm) : 0.0;
    if (result.velocity_change < opt.tolerance) break;
    std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(4 * nl),
              prev.begin());
  }
  return result;
}

}  // namespace alps::stokes
