#include "stokes/stokes.hpp"

#include <chrono>
#include <cmath>
#include <optional>

#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

namespace alps::stokes {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void set_velocity_bcs(ElementOperator& op, const Mesh& m, VelocityBc bc) {
  for (std::int64_t d = 0; d < m.n_local; ++d) {
    const std::uint8_t mask = m.dof_boundary[static_cast<std::size_t>(d)];
    if (mask == 0) continue;
    for (int c = 0; c < 3; ++c) {
      const std::uint8_t faces = static_cast<std::uint8_t>(0b11u << (2 * c));
      if (bc == VelocityBc::kNoSlip || (mask & faces)) op.set_dirichlet(d, c);
    }
  }
}

StokesSolver::StokesSolver(par::Comm& comm, const Mesh& m,
                           const forest::Connectivity& conn,
                           std::span<const double> eta_quad,
                           const StokesOptions& opt,
                           amg::HierarchyCache* cache)
    : mesh_(&m), opt_(opt), cache_(cache != nullptr ? cache : &own_cache_) {
  // The StokesTimings bookkeeping stays (Picard accumulates it); the obs
  // phase spans are the cross-rank source for the breakdown tables. An
  // optional span lets assemble and amg.setup own disjoint windows
  // without nesting (nesting would double-count the phase seconds).
  std::optional<obs::Span> phase_span;
  phase_span.emplace("stokes.assemble", obs::Cat::kPhase, true);
  const std::size_t ne = m.elements.size();
  double t0 = now_seconds();

  op_ = std::make_unique<ElementOperator>(&m, 4);
  for (int c = 0; c < 3; ++c)
    poisson_[static_cast<std::size_t>(c)] =
        std::make_unique<ElementOperator>(&m, 1);
  schur_diag_.assign(static_cast<std::size_t>(m.n_local), 0.0);

  for (std::size_t e = 0; e < ne; ++e) {
    const fem::ElemGeom g = fem::element_geometry(m, conn, e);
    const fem::MappedQuad mq = fem::map_element(g);
    std::array<double, fem::kQuad> eq;
    double eta_bar = 0.0;
    for (int q = 0; q < fem::kQuad; ++q) {
      eq[static_cast<std::size_t>(q)] = eta_quad[8 * e + static_cast<std::size_t>(q)];
      eta_bar += eq[static_cast<std::size_t>(q)];
    }
    eta_bar /= fem::kQuad;

    const auto a = fem::viscous_block(mq, eq);
    const auto b = fem::divergence_block(mq);
    const fem::Mat8 cstab = fem::pressure_stabilization(mq, eta_bar);
    const fem::Mat8 kpois = fem::stiffness(mq, eq);
    const std::array<double, 8> lm = fem::lumped_mass(mq);

    std::span<double> sm = op_->element_matrix(e);
    const std::size_t bs = 32;
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j) {
        for (int ci = 0; ci < 3; ++ci)
          for (int cj = 0; cj < 3; ++cj)
            sm[(static_cast<std::size_t>(4 * i + ci)) * bs + 4 * j + cj] =
                a[static_cast<std::size_t>(3 * i + ci)]
                 [static_cast<std::size_t>(3 * j + cj)];
        for (int cj = 0; cj < 3; ++cj) {
          sm[(static_cast<std::size_t>(4 * i + 3)) * bs + 4 * j + cj] =
              b[static_cast<std::size_t>(i)][static_cast<std::size_t>(3 * j + cj)];
          sm[(static_cast<std::size_t>(4 * j + cj)) * bs + 4 * i + 3] =
              b[static_cast<std::size_t>(i)][static_cast<std::size_t>(3 * j + cj)];
        }
        sm[(static_cast<std::size_t>(4 * i + 3)) * bs + 4 * j + 3] =
            -cstab[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      }

    for (int c = 0; c < 3; ++c) {
      std::span<double> pm =
          poisson_[static_cast<std::size_t>(c)]->element_matrix(e);
      for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
          pm[static_cast<std::size_t>(i) * 8 + static_cast<std::size_t>(j)] =
              kpois[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }

    // Schur diagonal: inverse-viscosity-weighted lumped mass.
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      for (int k = 0; k < cc.n; ++k)
        schur_diag_[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])] +=
            cc.w[static_cast<std::size_t>(k)] *
            lm[static_cast<std::size_t>(i)] / eta_bar;
    }
  }
  m.accumulate(comm, schur_diag_);
  m.exchange(comm, schur_diag_);

  set_velocity_bcs(*op_, m, opt_.bc);
  for (int c = 0; c < 3; ++c) {
    ElementOperator& pc = *poisson_[static_cast<std::size_t>(c)];
    for (std::int64_t d = 0; d < m.n_local; ++d) {
      const std::uint8_t mask = m.dof_boundary[static_cast<std::size_t>(d)];
      if (mask == 0) continue;
      const std::uint8_t faces = static_cast<std::uint8_t>(0b11u << (2 * c));
      if (opt_.bc == VelocityBc::kNoSlip || (mask & faces))
        pc.set_dirichlet(d, 0);
    }
  }
  timings_.assemble_seconds = now_seconds() - t0;
  phase_span.reset();

  phase_span.emplace("amg.setup", obs::Cat::kPhase, true);
  t0 = now_seconds();
  amg::HierarchyCache& hc = *cache_;
  const bool reusable = opt_.reuse.enable && hc.valid();
  // Viscosity-drift full skip: when the quadrature viscosity has moved
  // less than the tolerance (relative l2, global) since the hierarchies
  // were last built, keep them untouched. The allreduce makes the
  // decision collectively consistent.
  bool skip = false;
  if (reusable && opt_.reuse.viscosity_drift_tol > 0.0 &&
      hc.eta_snapshot.size() == eta_quad.size()) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < eta_quad.size(); ++i) {
      const double d = eta_quad[i] - hc.eta_snapshot[i];
      num += d * d;
      den += hc.eta_snapshot[i] * hc.eta_snapshot[i];
    }
    num = comm.allreduce_sum(num);
    den = comm.allreduce_sum(den);
    skip = den > 0.0 && std::sqrt(num / den) <= opt_.reuse.viscosity_drift_tol;
  }
  if (!reusable) {
    for (int c = 0; c < 3; ++c) {
      // Owned-row distributed assembly + distributed hierarchy: per-rank
      // setup and apply cost is O(N_local), the paper's scalability claim.
      hc.amg[static_cast<std::size_t>(c)] = std::make_unique<amg::DistAmg>(
          comm, poisson_[static_cast<std::size_t>(c)]->assemble_dist(comm),
          opt_.amg);
    }
    hc.mark_built();
    ++hc.stats.full_setups;
    obs::counter_add(obs::wellknown::amg_setup_full(), 1);
  } else if (!skip) {
    // Mesh unchanged since the last build: C/F split, interpolation, and
    // the RAP symbolic structure are still exact; only operator values
    // moved with the viscosity.
    for (int c = 0; c < 3; ++c)
      hc.amg[static_cast<std::size_t>(c)]->refresh_numeric(
          comm, poisson_[static_cast<std::size_t>(c)]->assemble_dist(comm));
    ++hc.stats.numeric_refreshes;
    obs::counter_add(obs::wellknown::amg_setup_numeric(), 1);
  } else {
    ++hc.stats.skipped;
    obs::counter_add(obs::wellknown::amg_setup_skipped(), 1);
  }
  if (!skip) hc.eta_snapshot.assign(eta_quad.begin(), eta_quad.end());
  comp_b_.resize(static_cast<std::size_t>(m.n_owned));
  comp_x_.resize(static_cast<std::size_t>(m.n_owned));
  timings_.amg_setup_seconds = now_seconds() - t0;
}

void StokesSolver::apply_preconditioner(par::Comm& comm,
                                        std::span<const double> x,
                                        std::span<double> y) {
  OBS_PHASE_SPAN("amg.apply");
  const double t0 = now_seconds();
  const Mesh& m = *mesh_;
  const std::size_t no = static_cast<std::size_t>(m.n_owned);
  const std::size_t nl = static_cast<std::size_t>(m.n_local);
  // One distributed V-cycle per velocity component over the owned slices
  // (owned local dofs [0, n_owned) carry gids gid_offset + i, matching
  // the DistCsr row partition); ghosts are refreshed with one halo
  // exchange at the end — no O(N_global) gather.
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < no; ++i)
      comp_b_[i] = x[4 * i + static_cast<std::size_t>(c)];
    std::fill(comp_x_.begin(), comp_x_.end(), 0.0);
    cache_->amg[static_cast<std::size_t>(c)]->vcycle(comm, comp_b_, comp_x_);
    for (std::size_t i = 0; i < no; ++i)
      y[4 * i + static_cast<std::size_t>(c)] = comp_x_[i];
  }
  for (std::size_t i = 0; i < nl; ++i)
    y[4 * i + 3] = x[4 * i + 3] / schur_diag_[i];
  m.exchange(comm, y, 4);
  timings_.amg_apply_seconds += now_seconds() - t0;
}

la::SolveResult StokesSolver::solve(par::Comm& comm,
                                    std::span<const double> rhs,
                                    std::span<double> x) {
  OBS_PHASE_SPAN("stokes.minres");
  const double t0 = now_seconds();
  la::LinOp aop = op_->as_linop(comm);
  la::LinOp pre = [this, &comm](std::span<const double> in,
                                std::span<double> out) {
    apply_preconditioner(comm, in, out);
  };
  // Keep a residual history by default so the flight recorder always has
  // the last few MINRES convergence curves (identical on all ranks; only
  // rank 0 records to the shared registry).
  la::KrylovOptions kopt = opt_.krylov;
  if (kopt.history_capacity == 0) kopt.history_capacity = 64;
  la::SolveResult r =
      la::minres(aop, rhs, x, pre, op_->as_multi_dot(comm), kopt);
  if (comm.rank() == 0)
    obs::record_history("stokes.minres.relres", r.residual_history);
  timings_.minres_seconds += now_seconds() - t0;

  // Remove the constant-pressure mode (free-floating for enclosed flow).
  const Mesh& m = *mesh_;
  double psum = 0.0, n = 0.0;
  for (std::int64_t i = 0; i < m.n_owned; ++i) {
    psum += x[static_cast<std::size_t>(4 * i + 3)];
    n += 1.0;
  }
  psum = comm.allreduce_sum(psum);
  n = comm.allreduce_sum(n);
  const double mean = psum / n;
  for (std::int64_t i = 0; i < m.n_local; ++i)
    x[static_cast<std::size_t>(4 * i + 3)] -= mean;
  return r;
}

std::vector<double> StokesSolver::buoyancy_rhs(
    par::Comm& comm, const Mesh& m, const forest::Connectivity& conn,
    std::span<const double> temperature, double rayleigh, int dir,
    const StokesOptions& opt) {
  std::vector<double> rhs(static_cast<std::size_t>(m.n_local) * 4, 0.0);
  std::vector<double> te(8);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::MappedQuad mq =
        fem::map_element(fem::element_geometry(m, conn, e));
    const fem::Mat8 mm = fem::mass(mq);
    // Gather element temperatures through constraints.
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      te[static_cast<std::size_t>(i)] = 0.0;
      for (int k = 0; k < cc.n; ++k)
        te[static_cast<std::size_t>(i)] +=
            cc.w[static_cast<std::size_t>(k)] *
            temperature[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])];
    }
    for (int i = 0; i < 8; ++i) {
      double f = 0.0;
      for (int j = 0; j < 8; ++j)
        f += mm[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
             te[static_cast<std::size_t>(j)];
      f *= rayleigh;
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      for (int k = 0; k < cc.n; ++k)
        rhs[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]) * 4 +
            static_cast<std::size_t>(dir)] +=
            cc.w[static_cast<std::size_t>(k)] * f;
    }
  }
  m.accumulate(comm, rhs, 4);
  m.exchange(comm, rhs, 4);
  // Dirichlet velocity entries carry the boundary value (zero).
  for (std::int64_t d = 0; d < m.n_local; ++d) {
    const std::uint8_t mask = m.dof_boundary[static_cast<std::size_t>(d)];
    if (mask == 0) continue;
    for (int c = 0; c < 3; ++c) {
      const std::uint8_t faces = static_cast<std::uint8_t>(0b11u << (2 * c));
      if (opt.bc == VelocityBc::kNoSlip || (mask & faces))
        rhs[static_cast<std::size_t>(d) * 4 + static_cast<std::size_t>(c)] = 0.0;
    }
  }
  return rhs;
}

}  // namespace alps::stokes
