#pragma once
// Picard fixed-point iteration for strain-rate-dependent (yielding)
// viscosity (paper Sec. III): each iteration freezes the viscosity at the
// current velocity, solves the linearized Stokes system, and repeats
// until the velocity stops changing.

#include "stokes/stokes.hpp"

namespace alps::stokes {

/// eta = law(x, T, edot) with edot the second invariant of the deviatoric
/// strain rate tensor, sqrt(0.5 eps':eps').
using ViscosityLaw =
    std::function<double(const std::array<double, 3>& x, double temperature,
                         double strain_rate_invariant)>;

struct PicardOptions {
  int max_iterations = 10;
  double tolerance = 1e-3;  // relative velocity change
  StokesOptions stokes{};
  double rayleigh = 1e5;
  int buoyancy_dir = 2;  // radial (z) direction
};

struct PicardResult {
  int iterations = 0;
  double velocity_change = 0.0;
  std::vector<la::SolveResult> solves;
  StokesTimings timings;  // accumulated over all iterations
  /// Per-iteration breakdown: with hierarchy reuse, amg_setup_seconds of
  /// iterations >= 2 collapses to the numeric Galerkin refresh.
  std::vector<StokesTimings> iteration_timings;
};

/// Second invariant of the strain rate at each quadrature point (ne * 8)
/// of the velocity in the 4-comp solution vector x.
std::vector<double> strain_rate_invariant(const Mesh& m,
                                          const forest::Connectivity& conn,
                                          std::span<const double> x);

/// Viscosity at each quadrature point (ne * 8) from the law, the nodal
/// temperature, and the current velocity.
std::vector<double> evaluate_viscosity(const Mesh& m,
                                       const forest::Connectivity& conn,
                                       const ViscosityLaw& law,
                                       std::span<const double> temperature,
                                       std::span<const double> x);

/// Nonlinear Stokes solve; x (4*n_local) is the initial guess and result.
/// `cache` carries the AMG hierarchies across iterations (and, when the
/// caller owns it, across timesteps); when null, a loop-local cache still
/// amortizes the symbolic setup over iterations >= 2.
PicardResult solve_nonlinear_stokes(par::Comm& comm, const Mesh& m,
                                    const forest::Connectivity& conn,
                                    const ViscosityLaw& law,
                                    std::span<const double> temperature,
                                    std::span<double> x,
                                    const PicardOptions& opt,
                                    amg::HierarchyCache* cache = nullptr);

}  // namespace alps::stokes
