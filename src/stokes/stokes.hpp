#pragma once
// Variable-viscosity stabilized Stokes solver (paper Sec. III):
//
//   [ A   B^T ] [u]   [f]
//   [ B  -C   ] [p] = [0]
//
// with A the variable-viscosity viscous block, B the discrete divergence,
// and C the Dohrmann-Bochev polynomial pressure projection that
// circumvents the inf-sup condition for equal-order Q1-Q1 elements.
// The symmetric indefinite system is solved by preconditioned MINRES with
// the block-diagonal preconditioner
//
//   P = diag( A~ , S~ ),
//
// where A~ applies one AMG V-cycle per velocity component on a
// variable-viscosity discrete Poisson operator and S~ is the lumped mass
// matrix weighted by the inverse viscosity (spectrally equivalent to the
// Schur complement).
//
// Unknown layout: value index = 4 * local_dof + comp, comps 0..2 velocity
// and comp 3 pressure.

#include <functional>
#include <memory>

#include "amg/dist_amg.hpp"
#include "amg/hierarchy_cache.hpp"
#include "fem/operators.hpp"
#include "la/krylov.hpp"

namespace alps::stokes {

using fem::ElementOperator;
using mesh::Mesh;

enum class VelocityBc {
  kFreeSlip,  // u.n = 0 on every physical face (mantle convection setup)
  kNoSlip,    // u = 0 on every physical face
};

/// Hierarchy-reuse policy when a HierarchyCache is supplied: a valid
/// cache (same mesh epoch) skips the symbolic AMG setup and runs the
/// numeric Galerkin refresh only; with a positive drift tolerance, a
/// relative viscosity change ||eta - eta_built|| / ||eta_built|| at or
/// below it skips even that and reuses the hierarchy untouched. The
/// preconditioner then lags the viscosity, which is safe: MINRES always
/// iterates with the freshly assembled operator.
struct AmgReuseOptions {
  bool enable = true;
  double viscosity_drift_tol = 0.0;  // 0 = always refresh numerically
};

struct StokesOptions {
  VelocityBc bc = VelocityBc::kFreeSlip;
  la::KrylovOptions krylov{200, 1e-6};
  amg::AmgOptions amg{};
  AmgReuseOptions reuse{};
};

struct StokesTimings {
  double assemble_seconds = 0.0;
  double amg_setup_seconds = 0.0;
  double amg_apply_seconds = 0.0;
  double minres_seconds = 0.0;
};

class StokesSolver {
 public:
  /// Viscosity is supplied per element per quadrature point (ne * 8).
  /// Setup assembles the saddle operator, the three Poisson AMG
  /// hierarchies, and the inverse-viscosity Schur diagonal. When `cache`
  /// is non-null and valid for the current mesh epoch, the hierarchies in
  /// it are reused per opt.reuse instead of being rebuilt. Collective.
  StokesSolver(par::Comm& comm, const Mesh& m,
               const forest::Connectivity& conn,
               std::span<const double> eta_quad, const StokesOptions& opt,
               amg::HierarchyCache* cache = nullptr);

  /// Solve with the given right-hand side (4*n_local, ghost-consistent;
  /// pressure rows typically zero). x holds the initial guess on entry
  /// and the solution (ghost-consistent, zero-mean pressure) on exit.
  la::SolveResult solve(par::Comm& comm, std::span<const double> rhs,
                        std::span<double> x);

  const ElementOperator& op() const { return *op_; }
  const StokesTimings& timings() const { return timings_; }
  const amg::DistAmg& velocity_amg(int comp) const {
    return *cache_->amg[static_cast<std::size_t>(comp)];
  }
  /// This rank's matrix storage across the three velocity AMG hierarchies.
  std::int64_t local_amg_nnz() const {
    std::int64_t total = 0;
    for (const auto& a : cache_->amg) total += a->local_nnz();
    return total;
  }

  /// Buoyancy right-hand side f = Ra T e_dir (paper Eq. 2): 4*n_local
  /// vector with momentum component `dir` loaded. Collective.
  static std::vector<double> buoyancy_rhs(par::Comm& comm, const Mesh& m,
                                          const forest::Connectivity& conn,
                                          std::span<const double> temperature,
                                          double rayleigh, int dir,
                                          const StokesOptions& opt);

 private:
  void apply_preconditioner(par::Comm& comm, std::span<const double> x,
                            std::span<double> y);

  const Mesh* mesh_;
  StokesOptions opt_;
  std::unique_ptr<ElementOperator> op_;          // 4-comp saddle operator
  std::array<std::unique_ptr<ElementOperator>, 3> poisson_;
  amg::HierarchyCache own_cache_;   // used when no external cache is given
  amg::HierarchyCache* cache_;      // holds the three velocity hierarchies
  std::vector<double> schur_diag_;               // n_local, 1/eta-weighted
  std::vector<double> comp_b_, comp_x_;          // owned-slice workspaces
  StokesTimings timings_;
};

/// Apply the velocity boundary conditions of `opt` to a 4-comp operator.
void set_velocity_bcs(ElementOperator& op, const Mesh& m, VelocityBc bc);

}  // namespace alps::stokes
