#include "io/vtk.hpp"

#include <fstream>
#include <stdexcept>

namespace alps::io {

namespace {

// VTK_HEXAHEDRON corner order relative to our z-order (bit0->x, bit1->y,
// bit2->z): VTK wants the bottom quad counter-clockwise then the top.
constexpr int kVtkOrder[8] = {0, 1, 3, 2, 4, 5, 7, 6};

}  // namespace

void write_vtk(par::Comm& comm, const forest::Connectivity& conn,
               const mesh::Mesh& m, const std::string& path,
               const std::vector<VtkField>& fields) {
  const std::size_t ne = m.elements.size();
  for (const VtkField& f : fields)
    if (f.values.size() != ne * 8)
      throw std::invalid_argument("write_vtk: field '" + f.name +
                                  "' must have 8 values per element");

  // Pack local geometry + metadata: per element 24 coords, level, rank.
  std::vector<double> geo;
  geo.reserve(ne * 26);
  for (std::size_t e = 0; e < ne; ++e) {
    const auto xyz = m.element_corners_xyz(conn, static_cast<std::int64_t>(e));
    for (int k = 0; k < 8; ++k)
      for (int d = 0; d < 3; ++d)
        geo.push_back(xyz[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)]);
    geo.push_back(static_cast<double>(m.elements[e].level));
    geo.push_back(static_cast<double>(comm.rank()));
  }
  // Gather to rank 0 only: non-root ranks just ship their slice and stay
  // at O(local) memory instead of replicating the whole mesh.
  const std::vector<double> all_geo = comm.gatherv(geo, 0);
  std::vector<std::vector<double>> all_fields;
  for (const VtkField& f : fields) all_fields.push_back(comm.gatherv(f.values, 0));

  if (comm.rank() != 0) return;
  const std::size_t total = all_geo.size() / 26;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_vtk: cannot open " + path);
  out << "# vtk DataFile Version 3.0\nALPS octree mesh\nASCII\n";
  out << "DATASET UNSTRUCTURED_GRID\n";
  out << "POINTS " << 8 * total << " double\n";
  for (std::size_t e = 0; e < total; ++e)
    for (int k = 0; k < 8; ++k) {
      const int c = kVtkOrder[k];
      out << all_geo[26 * e + static_cast<std::size_t>(3 * c)] << ' '
          << all_geo[26 * e + static_cast<std::size_t>(3 * c + 1)] << ' '
          << all_geo[26 * e + static_cast<std::size_t>(3 * c + 2)] << '\n';
    }
  out << "CELLS " << total << ' ' << 9 * total << '\n';
  for (std::size_t e = 0; e < total; ++e) {
    out << 8;
    for (int k = 0; k < 8; ++k) out << ' ' << 8 * e + static_cast<std::size_t>(k);
    out << '\n';
  }
  out << "CELL_TYPES " << total << '\n';
  for (std::size_t e = 0; e < total; ++e) out << "12\n";  // VTK_HEXAHEDRON

  out << "CELL_DATA " << total << '\n';
  out << "SCALARS level double 1\nLOOKUP_TABLE default\n";
  for (std::size_t e = 0; e < total; ++e) out << all_geo[26 * e + 24] << '\n';
  out << "SCALARS mpirank double 1\nLOOKUP_TABLE default\n";
  for (std::size_t e = 0; e < total; ++e) out << all_geo[26 * e + 25] << '\n';

  if (!fields.empty()) {
    out << "POINT_DATA " << 8 * total << '\n';
    for (std::size_t f = 0; f < fields.size(); ++f) {
      out << "SCALARS " << fields[f].name << " double 1\nLOOKUP_TABLE default\n";
      for (std::size_t e = 0; e < total; ++e)
        for (int k = 0; k < 8; ++k)
          out << all_fields[f][8 * e + static_cast<std::size_t>(kVtkOrder[k])]
              << '\n';
    }
  }
}

}  // namespace alps::io
