#pragma once
// Legacy-VTK output of distributed octree meshes for visualization
// (workstation-scale: fields are gathered to rank 0, which writes one
// file). Elements are written as independent hexahedra with per-corner
// point data, so hanging nodes need no special casing — the duplicated
// corners carry the constrained (continuous) values.

#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace alps::io {

struct VtkField {
  std::string name;
  // 8 values per local element (element-value form, e.g. from
  // mesh::to_element_values); size must be 8 * num local elements.
  std::vector<double> values;
};

/// Write the mesh and fields to `path` (overwrites). Adds two implicit
/// cell fields: octree level and owning rank. Collective; rank 0 writes.
void write_vtk(par::Comm& comm, const forest::Connectivity& conn,
               const mesh::Mesh& m, const std::string& path,
               const std::vector<VtkField>& fields);

}  // namespace alps::io
