#pragma once
// LSD radix sort on space-filling-curve keys. The octree hot paths
// (ghost layer, balance requirement routing, mesh extraction) sort large
// octant arrays into sfc order; a comparator sort pays a morton_encode
// per comparison, O(N log N) encodes total. The radix sort encodes each
// key once and makes a constant number of counting passes — passes whose
// byte is uniform across the array (most of them: coarse forests leave
// the low Morton bytes and the tree bytes constant) are skipped.
//
// Key layout per octant, least significant first:
//   level (5 bits) | morton (57 bits)   -> one uint64 word
//   tree (32 bits)                      -> second word
// Byte-wise LSD over (word0, word1) with a stable counting pass per
// byte reproduces sfc_compare = (tree, morton, level) exactly.

#include <vector>

#include "octree/octant.hpp"

namespace alps::octree {

/// Sort `v` into sfc_less order (equivalent to std::sort with sfc_less).
void radix_sort_sfc(std::vector<Octant>& v);

/// radix_sort_sfc followed by removal of exact duplicates.
void radix_sort_unique_sfc(std::vector<Octant>& v);

}  // namespace alps::octree
