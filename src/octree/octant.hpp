#pragma once
// Octant algebra: the atomic unit of the ALPS octree (paper Sec. IV.A).
//
// An octant is an axis-aligned cube identified by the integer coordinates
// of its lower corner and a refinement level. Coordinates live on a
// 2^kMaxLevel grid per tree; an octant at level l is aligned to
// 2^(kMaxLevel - l). The Morton (z-order) code of the anchor induces the
// space-filling-curve order used for partitioning and ownership.

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace alps::octree {

inline constexpr int kMaxLevel = 19;          // 3*19 = 57 Morton bits
using coord_t = std::uint32_t;
using morton_t = std::uint64_t;

/// Edge length (in integer units) of an octant at `level`.
constexpr coord_t octant_len(int level) {
  return coord_t{1} << (kMaxLevel - level);
}

/// Number of 2^kMaxLevel-grid cells covered by an octant at `level`,
/// i.e. the size of its Morton-code range.
constexpr morton_t octant_span(int level) {
  return morton_t{1} << (3 * (kMaxLevel - level));
}

/// Interleave the low kMaxLevel bits of x,y,z (x lowest) into a Morton code.
morton_t morton_encode(coord_t x, coord_t y, coord_t z);

/// Inverse of morton_encode.
void morton_decode(morton_t m, coord_t& x, coord_t& y, coord_t& z);

struct Octant {
  std::int32_t tree = 0;  // forest tree id; 0 for single-tree use
  coord_t x = 0, y = 0, z = 0;
  std::int8_t level = 0;

  friend bool operator==(const Octant&, const Octant&) = default;

  /// Morton code of the anchor == first max-level descendant's code.
  morton_t morton() const { return morton_encode(x, y, z); }

  /// Last Morton code inside this octant's region (inclusive).
  morton_t morton_last() const { return morton() + octant_span(level) - 1; }

  Octant parent() const;
  /// Child i in z-order: bit0 -> +x, bit1 -> +y, bit2 -> +z.
  Octant child(int i) const;
  /// Which child of its parent this octant is.
  int child_id() const;
  /// Ancestor at the given (coarser or equal) level.
  Octant ancestor(int anc_level) const;
  bool is_ancestor_of(const Octant& o) const;

  /// Whether the octant lies inside the unit tree [0, 2^kMaxLevel)^3.
  bool inside_tree() const;

  std::string to_string() const;
};

/// Pre-order (ancestors first) space-filling-curve comparison.
/// Leaves of a complete octree never overlap, so among leaves this is the
/// pure Morton order the paper partitions by.
inline std::strong_ordering sfc_compare(const Octant& a, const Octant& b) {
  if (auto c = a.tree <=> b.tree; c != 0) return c;
  if (auto c = a.morton() <=> b.morton(); c != 0) return c;
  return a.level <=> b.level;
}

inline bool sfc_less(const Octant& a, const Octant& b) {
  return sfc_compare(a, b) < 0;
}

/// 26-connectivity neighbor directions. Directions 0..5 are faces
/// (-x,+x,-y,+y,-z,+z), 6..17 edges, 18..25 corners.
inline constexpr int kNumFaceDirs = 6;
inline constexpr int kNumFaceEdgeDirs = 18;
inline constexpr int kNumAllDirs = 26;
extern const std::array<std::array<int, 3>, kNumAllDirs> kNeighborDirs;

/// Same-size neighbor of `o` in direction d (may leave the tree; check
/// inside_tree(), the forest layer handles inter-tree transforms).
/// Coordinates wrap in unsigned arithmetic when outside; callers must
/// test `inside_tree_shift` instead for out-of-tree detection.
Octant neighbor(const Octant& o, int dir);

/// Signed-coordinate neighbor test: true plus result octant if the
/// neighbor stays inside the tree, false otherwise.
bool neighbor_inside(const Octant& o, int dir, Octant& out);

}  // namespace alps::octree
