#pragma once
// BALANCETREE (paper Sec. IV.B): enforce the global 2:1 size condition
// between adjacent leaves by parallel prioritized ripple propagation.
// Each round, every leaf emits the coarse octants its neighborhood
// requires, requests are routed to the owning rank (aggregated into one
// alltoall per round), violating leaves are split along the request path,
// and rounds repeat until a global fixpoint — so the number of
// communication rounds scales with the number of refinement levels.

#include <functional>

#include "octree/linear_octree.hpp"

namespace alps::octree {

/// Which adjacency the 2:1 condition is enforced across. The paper uses
/// face + edge neighbors ("edge lengths of face- and edge-neighboring
/// elements may differ by at most a factor of two").
enum class Adjacency : int {
  kFace = kNumFaceDirs,
  kFaceEdge = kNumFaceEdgeDirs,
  kFull = kNumAllDirs,
};

/// Maps (octant, direction) to its same-size neighbor, returning false if
/// the neighbor leaves the domain. The forest layer supplies a transform
/// that crosses tree boundaries; the default stays within one tree.
using NeighborFn = std::function<bool(const Octant&, int dir, Octant& out)>;

/// Balance the tree in place. Returns the number of ripple rounds.
int balance(par::Comm& comm, LinearOctree& tree,
            Adjacency adj = Adjacency::kFaceEdge,
            const NeighborFn& nbr = {});

/// True if every pair of adjacent local+ghost leaves satisfies 2:1.
/// (Checks each local leaf's neighborhood through owner queries; collective.)
bool is_balanced(par::Comm& comm, const LinearOctree& tree,
                 Adjacency adj = Adjacency::kFaceEdge,
                 const NeighborFn& nbr = {});

}  // namespace alps::octree
