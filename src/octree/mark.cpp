#include "octree/mark.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alps::octree {

namespace {

// Local expected element count for given thresholds, replicating the
// exact semantics of LinearOctree::adapt: only complete locally-owned
// sibling groups with every member marked for coarsening collapse.
std::int64_t expected_local(const LinearOctree& tree,
                            std::span<const double> eta, double theta_r,
                            double theta_c, const MarkOptions& opt) {
  const std::vector<Octant>& leaves = tree.leaves();
  const auto coarsenable = [&](std::size_t i) {
    return eta[i] <= theta_c && leaves[i].level > opt.min_level &&
           eta[i] < theta_r;
  };
  std::int64_t local = 0;
  for (std::size_t i = 0; i < leaves.size();) {
    if (coarsenable(i) && leaves[i].level > 0 && leaves[i].child_id() == 0 &&
        i + 8 <= leaves.size()) {
      const Octant p = leaves[i].parent();
      bool all = true;
      for (std::size_t j = 0; j < 8; ++j)
        if (!coarsenable(i + j) || leaves[i + j].level != leaves[i].level ||
            !(leaves[i + j].parent() == p)) {
          all = false;
          break;
        }
      if (all) {
        local += 1;
        i += 8;
        continue;
      }
    }
    local += (eta[i] >= theta_r && leaves[i].level < opt.max_level) ? 8 : 1;
    ++i;
  }
  return local;
}

}  // namespace

std::vector<std::int8_t> mark_elements(par::Comm& comm,
                                       const LinearOctree& tree,
                                       std::span<const double> eta,
                                       const MarkOptions& opt) {
  if (eta.size() != tree.leaves().size())
    throw std::invalid_argument("mark_elements: one indicator per leaf");
  const std::int64_t n_global = comm.allreduce_sum(tree.num_local());
  const std::int64_t target =
      opt.target_elements > 0 ? opt.target_elements : n_global;

  double eta_max = 0.0;
  for (double e : eta) eta_max = std::max(eta_max, e);
  eta_max = comm.allreduce_max(eta_max);
  if (eta_max <= 0.0) eta_max = 1.0;

  // Expected count is monotone decreasing in theta_r (fewer refinements,
  // more coarsenings), so bisect.
  double lo = 0.0, hi = eta_max * (1.0 + 1e-12);
  double theta_r = hi, theta_c = opt.coarsen_ratio * hi;
  for (int it = 0; it < opt.max_iterations; ++it) {
    theta_r = 0.5 * (lo + hi);
    theta_c = opt.coarsen_ratio * theta_r;
    const std::int64_t expected = comm.allreduce_sum(
        expected_local(tree, eta, theta_r, theta_c, opt));
    const double rel =
        static_cast<double>(expected - target) / static_cast<double>(target);
    if (std::abs(rel) <= opt.tolerance) break;
    if (expected > target)
      lo = theta_r;  // refine less
    else
      hi = theta_r;  // refine more
  }

  std::vector<std::int8_t> flags(tree.leaves().size(), 0);
  const std::vector<Octant>& leaves = tree.leaves();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (eta[i] >= theta_r && leaves[i].level < opt.max_level)
      flags[i] = 1;
    else if (eta[i] <= theta_c && leaves[i].level > opt.min_level)
      flags[i] = -1;
  }
  return flags;
}

std::int64_t expected_count(par::Comm& comm, const LinearOctree& tree,
                            std::span<const std::int8_t> flags) {
  const std::vector<Octant>& leaves = tree.leaves();
  std::int64_t local = 0;
  for (std::size_t i = 0; i < leaves.size();) {
    if (flags[i] < 0 && leaves[i].level > 0 && leaves[i].child_id() == 0 &&
        i + 8 <= leaves.size()) {
      const Octant p = leaves[i].parent();
      bool all = true;
      for (std::size_t j = 0; j < 8; ++j)
        if (flags[i + j] >= 0 || leaves[i + j].level != leaves[i].level ||
            !(leaves[i + j].parent() == p)) {
          all = false;
          break;
        }
      if (all) {
        local += 1;
        i += 8;
        continue;
      }
    }
    local += flags[i] > 0 ? 8 : 1;
    ++i;
  }
  return comm.allreduce_sum(local);
}

}  // namespace alps::octree
