#pragma once
// PARTITIONTREE + TRANSFERFIELDS (paper Sec. IV.B): repartition the
// linear octree by splitting the space-filling curve into per-rank
// segments of equal (optionally weighted) length, moving per-leaf payload
// data along with the octants in the same alltoall.

#include <span>
#include <vector>

#include "octree/linear_octree.hpp"

namespace alps::octree {

/// Fixed-width per-leaf payload carried through repartitioning; data holds
/// ncomp doubles for each local leaf, in leaf order.
struct LeafPayload {
  int ncomp = 1;
  std::vector<double> data;
};

/// Repartition to equal leaf counts per rank. Any payloads move with their
/// leaves. `weights`, if nonempty (one per local leaf), switches to
/// equal-weight partitioning (e.g. element work estimates). The octant
/// movement (PARTITIONTREE) and payload movement (TRANSFERFIELDS) stages
/// accumulate into the "amr.partition" / "amr.transfer_fields" obs phases,
/// matching the paper's Fig. 7/10 breakdowns — read them back with
/// obs::phase_seconds.
void partition(par::Comm& comm, LinearOctree& tree,
               std::span<LeafPayload*> payloads = {},
               std::span<const double> weights = {});

/// Max over ranks of (local leaves / ideal leaves): 1.0 is perfect balance.
double load_imbalance(par::Comm& comm, const LinearOctree& tree);

}  // namespace alps::octree
