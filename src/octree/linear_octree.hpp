#pragma once
// Distributed linear octree (paper Sec. IV.A): each rank stores a
// contiguous Morton-ordered slice of the leaves plus the global ownership
// ranges (one SFC key per rank, obtained by allgather — the only global
// state, exactly as in the paper).

#include <cstdint>
#include <span>
#include <vector>

#include "obs/mem.hpp"
#include "octree/octant.hpp"
#include "par/comm.hpp"

namespace alps::octree {

/// Global space-filling-curve position: (tree, morton code at kMaxLevel).
struct SfcKey {
  std::int32_t tree = 0;
  morton_t m = 0;

  friend auto operator<=>(const SfcKey&, const SfcKey&) = default;
};

inline SfcKey key_of(const Octant& o) { return SfcKey{o.tree, o.morton()}; }

/// Largest representable key + 1, used as a range sentinel.
inline SfcKey key_end_sentinel(std::int32_t num_trees) {
  return SfcKey{num_trees, 0};
}

class LinearOctree {
 public:
  LinearOctree() = default;

  /// NEWTREE: uniform forest of `num_trees` trees refined to `level`,
  /// partitioned evenly across ranks in SFC order (direct construction).
  static LinearOctree new_uniform(par::Comm& comm, std::int32_t num_trees,
                                  int level);

  /// NEWTREE exactly as the paper describes it: every rank grows the full
  /// coarse octree locally, the leaves are divided evenly by Morton order,
  /// and each rank prunes the parts it does not own — "an inexpensive
  /// operation that requires no communication". Produces the same forest
  /// as new_uniform (property-tested).
  static LinearOctree new_uniform_grow_prune(par::Comm& comm,
                                             std::int32_t num_trees,
                                             int level);

  std::int32_t num_trees() const { return num_trees_; }
  const std::vector<Octant>& leaves() const { return leaves_; }
  std::vector<Octant>& mutable_leaves() { return leaves_; }
  std::int64_t num_local() const {
    return static_cast<std::int64_t>(leaves_.size());
  }
  std::int64_t num_global(par::Comm& comm) const;

  // ---- ownership ------------------------------------------------------
  /// Recompute global ownership ranges (allgather of one key per rank).
  void update_ranges(par::Comm& comm);
  /// Rank owning the leaf whose region contains `k`. Requires ranges.
  int owner_of(const SfcKey& k) const;
  int owner_of(const Octant& o) const { return owner_of(key_of(o)); }
  const std::vector<SfcKey>& range_begins() const { return range_begins_; }

  // ---- local queries ---------------------------------------------------
  /// Index of the local leaf equal to or an ancestor of `o`; -1 if the
  /// region is not locally owned.
  std::int64_t find_containing(const Octant& o) const;
  /// Index of the first local leaf with key >= k.
  std::int64_t lower_bound(const SfcKey& k) const;

  // ---- adaptation (COARSENTREE + REFINETREE, purely local) -------------
  /// flags[i]: +1 refine leaf i, -1 coarsen candidate, 0 keep. Coarsening
  /// applies only to complete locally-owned sibling groups all flagged -1
  /// (the paper's restriction). Levels are clamped to [min_level,
  /// max_level].
  void adapt(std::span<const std::int8_t> flags, int min_level, int max_level);

  // ---- invariants -------------------------------------------------------
  /// Sorted, non-overlapping, inside their trees.
  bool locally_valid() const;
  /// The union of all leaves tiles the forest with no gaps or overlaps.
  static bool globally_complete(par::Comm& comm, const LinearOctree& t);

  /// This rank's heap bytes: the local leaf slice plus the replicated
  /// ownership ranges (the "forest.octants" memory scope).
  std::uint64_t memory_bytes() const {
    return obs::vec_bytes(leaves_) + obs::vec_bytes(range_begins_);
  }

 private:
  std::int32_t num_trees_ = 1;
  std::vector<Octant> leaves_;
  std::vector<SfcKey> range_begins_;  // size P+1 with sentinel
};

/// Relation of each new leaf to the old leaves after local adaptation
/// (refine/coarsen/balance never move octants across ranks, so old and new
/// local forests tile the same region and correspond by a merge walk).
struct Correspondence {
  enum class Kind : std::uint8_t { kSame, kRefined, kCoarsened };
  struct Entry {
    Kind kind = Kind::kSame;
    std::int64_t old_begin = 0;  // kSame/kRefined: the single source leaf
    std::int64_t old_end = 0;    // kCoarsened: [old_begin, old_end) children
  };
  std::vector<Entry> entries;  // one per new leaf
};

/// Compute the correspondence between two sorted local leaf arrays that
/// tile the same region (multi-level refinement allowed, e.g. after
/// balance; coarsening is single-level).
Correspondence compute_correspondence(std::span<const Octant> old_leaves,
                                      std::span<const Octant> new_leaves);

}  // namespace alps::octree
