#include "octree/sort.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace alps::octree {

namespace {

// morton (57 bits) above level (5 bits): sorting this word ascending
// orders by (morton, level) — the in-tree part of sfc_compare.
inline std::uint64_t in_tree_key(const Octant& o) {
  return (o.morton() << 5) | static_cast<std::uint64_t>(o.level);
}

struct KeyedIndex {
  std::uint64_t k;      // in-tree key
  std::uint32_t tree;   // sorted after k (more significant)
  std::uint32_t i;      // original position
};

}  // namespace

void radix_sort_sfc(std::vector<Octant>& v) {
  const std::size_t n = v.size();
  if (n < 2) return;

  std::vector<KeyedIndex> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i)
    a[i] = KeyedIndex{in_tree_key(v[i]), static_cast<std::uint32_t>(v[i].tree),
                      static_cast<std::uint32_t>(i)};

  KeyedIndex* src = a.data();
  KeyedIndex* dst = b.data();
  std::array<std::size_t, 256> count;
  // Passes 0..7 over the in-tree key bytes, 8..11 over the tree bytes.
  for (int pass = 0; pass < 12; ++pass) {
    const int shift = 8 * (pass < 8 ? pass : pass - 8);
    const auto byte_of = [pass, shift](const KeyedIndex& kv) {
      const std::uint64_t w =
          pass < 8 ? kv.k : static_cast<std::uint64_t>(kv.tree);
      return static_cast<std::size_t>((w >> shift) & 0xFF);
    };
    count.fill(0);
    for (std::size_t i = 0; i < n; ++i) ++count[byte_of(src[i])];
    if (count[byte_of(src[0])] == n) continue;  // uniform byte: no movement
    std::size_t sum = 0;
    for (std::size_t& c : count) {
      const std::size_t t = c;
      c = sum;
      sum += t;
    }
    for (std::size_t i = 0; i < n; ++i) dst[count[byte_of(src[i])]++] = src[i];
    std::swap(src, dst);
  }

  std::vector<Octant> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = v[src[i].i];
  v.swap(out);
}

void radix_sort_unique_sfc(std::vector<Octant>& v) {
  radix_sort_sfc(v);
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace alps::octree
