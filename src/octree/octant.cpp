#include "octree/octant.hpp"

#include <cassert>
#include <sstream>

namespace alps::octree {

namespace {

// Spread the low 8 bits of v so each bit lands every third position.
constexpr std::uint64_t spread3_byte(std::uint64_t v) {
  v &= 0xffu;
  v = (v | (v << 8)) & 0x0000f00full;   // 0000 0000 0000 0000 1111 0000 0000 1111
  v = (v | (v << 4)) & 0x000c30c3ull;   // ... groups of 2
  v = (v | (v << 2)) & 0x00249249ull;   // every 3rd bit
  return v;
}

struct Spread3Table {
  std::array<std::uint64_t, 256> t{};
  constexpr Spread3Table() {
    for (std::uint64_t i = 0; i < 256; ++i) t[i] = spread3_byte(i);
  }
};
constexpr Spread3Table kSpread3;

inline std::uint64_t spread3(coord_t v) {
  // kMaxLevel = 19 bits -> three byte lookups cover 24 bits.
  return kSpread3.t[v & 0xff] | (kSpread3.t[(v >> 8) & 0xff] << 24) |
         (kSpread3.t[(v >> 16) & 0xff] << 48);
}

inline coord_t compact3(morton_t m) {
  coord_t out = 0;
  for (int i = 0; i < kMaxLevel; ++i)
    out |= static_cast<coord_t>((m >> (3 * i)) & 1u) << i;
  return out;
}

}  // namespace

morton_t morton_encode(coord_t x, coord_t y, coord_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

void morton_decode(morton_t m, coord_t& x, coord_t& y, coord_t& z) {
  x = compact3(m);
  y = compact3(m >> 1);
  z = compact3(m >> 2);
}

Octant Octant::parent() const {
  assert(level > 0);
  Octant p = *this;
  p.level = static_cast<std::int8_t>(level - 1);
  const coord_t mask = ~(octant_len(p.level) - 1);
  p.x &= mask;
  p.y &= mask;
  p.z &= mask;
  return p;
}

Octant Octant::child(int i) const {
  assert(level < kMaxLevel);
  assert(i >= 0 && i < 8);
  Octant c = *this;
  c.level = static_cast<std::int8_t>(level + 1);
  const coord_t h = octant_len(c.level);
  if (i & 1) c.x += h;
  if (i & 2) c.y += h;
  if (i & 4) c.z += h;
  return c;
}

int Octant::child_id() const {
  assert(level > 0);
  const coord_t h = octant_len(level);
  return ((x & h) ? 1 : 0) | ((y & h) ? 2 : 0) | ((z & h) ? 4 : 0);
}

Octant Octant::ancestor(int anc_level) const {
  assert(anc_level >= 0 && anc_level <= level);
  Octant a = *this;
  a.level = static_cast<std::int8_t>(anc_level);
  const coord_t mask = ~(octant_len(anc_level) - 1);
  a.x &= mask;
  a.y &= mask;
  a.z &= mask;
  return a;
}

bool Octant::is_ancestor_of(const Octant& o) const {
  if (tree != o.tree || level >= o.level) return false;
  const Octant a = o.ancestor(level);
  return a.x == x && a.y == y && a.z == z;
}

bool Octant::inside_tree() const {
  const coord_t n = coord_t{1} << kMaxLevel;
  return x < n && y < n && z < n;
}

std::string Octant::to_string() const {
  std::ostringstream os;
  os << "oct(t=" << tree << " l=" << static_cast<int>(level) << " " << x << ","
     << y << "," << z << ")";
  return os.str();
}

const std::array<std::array<int, 3>, kNumAllDirs> kNeighborDirs = {{
    // 6 faces
    {{-1, 0, 0}}, {{1, 0, 0}}, {{0, -1, 0}}, {{0, 1, 0}}, {{0, 0, -1}}, {{0, 0, 1}},
    // 12 edges
    {{-1, -1, 0}}, {{1, -1, 0}}, {{-1, 1, 0}}, {{1, 1, 0}},
    {{-1, 0, -1}}, {{1, 0, -1}}, {{-1, 0, 1}}, {{1, 0, 1}},
    {{0, -1, -1}}, {{0, 1, -1}}, {{0, -1, 1}}, {{0, 1, 1}},
    // 8 corners
    {{-1, -1, -1}}, {{1, -1, -1}}, {{-1, 1, -1}}, {{1, 1, -1}},
    {{-1, -1, 1}}, {{1, -1, 1}}, {{-1, 1, 1}}, {{1, 1, 1}},
}};

Octant neighbor(const Octant& o, int dir) {
  assert(dir >= 0 && dir < kNumAllDirs);
  const coord_t h = octant_len(o.level);
  Octant n = o;
  n.x += static_cast<coord_t>(kNeighborDirs[dir][0]) * h;
  n.y += static_cast<coord_t>(kNeighborDirs[dir][1]) * h;
  n.z += static_cast<coord_t>(kNeighborDirs[dir][2]) * h;
  return n;
}

bool neighbor_inside(const Octant& o, int dir, Octant& out) {
  const std::int64_t h = octant_len(o.level);
  const std::int64_t n = std::int64_t{1} << kMaxLevel;
  const std::int64_t nx = static_cast<std::int64_t>(o.x) + kNeighborDirs[dir][0] * h;
  const std::int64_t ny = static_cast<std::int64_t>(o.y) + kNeighborDirs[dir][1] * h;
  const std::int64_t nz = static_cast<std::int64_t>(o.z) + kNeighborDirs[dir][2] * h;
  if (nx < 0 || ny < 0 || nz < 0 || nx >= n || ny >= n || nz >= n) return false;
  out = Octant{o.tree, static_cast<coord_t>(nx), static_cast<coord_t>(ny),
               static_cast<coord_t>(nz), o.level};
  return true;
}

}  // namespace alps::octree
