#include "octree/balance.hpp"

#include <algorithm>
#include <cassert>

#include "octree/sort.hpp"

namespace alps::octree {

namespace {

struct ReqOctant {
  std::int32_t tree;
  coord_t x, y, z;
  std::int32_t level;
};

ReqOctant pack(const Octant& o) {
  return ReqOctant{o.tree, o.x, o.y, o.z, o.level};
}
Octant unpack(const ReqOctant& r) {
  return Octant{r.tree, r.x, r.y, r.z, static_cast<std::int8_t>(r.level)};
}

bool default_neighbor(const Octant& o, int dir, Octant& out) {
  return neighbor_inside(o, dir, out);
}

/// Generate the requirement octants of all local leaves and route each to
/// the rank owning its anchor. Returns the requirements this rank must
/// check/enforce (its own plus received), deduplicated. Only requirements
/// anchored in another rank's region — necessarily boundary-adjacent — go
/// over the wire; locally anchored ones (the bulk of the interior) are
/// kept out of the exchange entirely.
std::vector<Octant> route_requirements(par::Comm& comm,
                                       const LinearOctree& tree, int ndirs,
                                       const NeighborFn& nbr) {
  const int p = comm.size();
  const int self = comm.rank();
  std::vector<std::vector<Octant>> outbox(static_cast<std::size_t>(p));
  std::vector<Octant> reqs;
  Octant n;
  for (const Octant& o : tree.leaves()) {
    if (o.level < 2) continue;  // any neighbor satisfies 2:1 already
    for (int d = 0; d < ndirs; ++d) {
      if (!nbr(o, d, n)) continue;
      const Octant q = n.ancestor(o.level - 1);
      const int owner = tree.owner_of(q);
      if (owner == self)
        reqs.push_back(q);
      else
        outbox[static_cast<std::size_t>(owner)].push_back(q);
    }
  }
  std::vector<std::vector<ReqOctant>> wire(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& v = outbox[static_cast<std::size_t>(r)];
    radix_sort_unique_sfc(v);
    auto& w = wire[static_cast<std::size_t>(r)];
    w.reserve(v.size());
    for (const Octant& o : v) w.push_back(pack(o));
  }
  std::vector<std::vector<ReqOctant>> inbox = comm.alltoallv(wire);
  for (const auto& v : inbox)
    for (const ReqOctant& r : v) reqs.push_back(unpack(r));
  radix_sort_unique_sfc(reqs);
  return reqs;
}

/// Emit `o` split just enough that every requirement in reqs[first, last)
/// (all descendants-or-equal of o) is met, appending leaves in SFC order.
void expand_leaf(const Octant& o, std::span<const Octant> reqs,
                 std::vector<Octant>& out) {
  bool deeper = false;
  for (const Octant& q : reqs)
    if (q.level > o.level) {
      deeper = true;
      break;
    }
  if (!deeper) {
    out.push_back(o);
    return;
  }
  // Split and hand each requirement to the child covering it. Children in
  // Morton order are child ids 0..7.
  std::array<std::vector<Octant>, 8> child_reqs;
  for (const Octant& q : reqs) {
    if (q.level <= o.level) continue;
    const Octant a = q.ancestor(o.level + 1);
    child_reqs[static_cast<std::size_t>(a.child_id())].push_back(q);
  }
  for (int c = 0; c < 8; ++c)
    expand_leaf(o.child(c), child_reqs[static_cast<std::size_t>(c)], out);
}

}  // namespace

int balance(par::Comm& comm, LinearOctree& tree, Adjacency adj,
            const NeighborFn& nbr) {
  const NeighborFn& nfn = nbr ? nbr : NeighborFn(default_neighbor);
  const int ndirs = static_cast<int>(adj);
  int rounds = 0;
  for (;;) {
    ++rounds;
    const std::vector<Octant> reqs = route_requirements(comm, tree, ndirs, nfn);

    // Group requirements by the local leaf containing their anchor; leaves
    // already at the required depth need no action.
    bool changed = false;
    const std::vector<Octant>& leaves = tree.leaves();
    std::vector<std::vector<Octant>> todo(leaves.size());
    for (const Octant& q : reqs) {
      const std::int64_t i = tree.lower_bound(key_of(q));
      // Leaf containing q's anchor: the one at or before position i.
      std::int64_t idx = i;
      if (idx == static_cast<std::int64_t>(leaves.size()) ||
          !(key_of(leaves[static_cast<std::size_t>(idx)]) == key_of(q)))
        idx = i - 1;
      if (idx < 0) continue;  // region not owned here (boundary effects)
      const Octant& l = leaves[static_cast<std::size_t>(idx)];
      if (l.is_ancestor_of(q)) {
        todo[static_cast<std::size_t>(idx)].push_back(q);
        changed = true;
      }
    }
    if (!comm.allreduce_or(changed)) break;
    if (changed) {
      std::vector<Octant> out;
      out.reserve(leaves.size() + 8 * reqs.size());
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (todo[i].empty())
          out.push_back(leaves[i]);
        else
          expand_leaf(leaves[i], todo[i], out);
      }
      tree.mutable_leaves() = std::move(out);
    }
    // Range begins are preserved by splitting (anchor of first leaf fixed),
    // so no update_ranges is needed between rounds.
  }
  return rounds;
}

bool is_balanced(par::Comm& comm, const LinearOctree& tree, Adjacency adj,
                 const NeighborFn& nbr) {
  const NeighborFn& nfn = nbr ? nbr : NeighborFn(default_neighbor);
  const std::vector<Octant> reqs =
      route_requirements(comm, tree, static_cast<int>(adj), nfn);
  bool ok = true;
  for (const Octant& q : reqs) {
    // Find the leaf containing q's anchor; a strict ancestor of q there
    // means some neighbor is more than one level coarser -> violation.
    const std::int64_t i = tree.lower_bound(key_of(q));
    std::int64_t j = i;
    if (j == tree.num_local() ||
        !(key_of(tree.leaves()[static_cast<std::size_t>(j)]) == key_of(q)))
      j = i - 1;
    if (j < 0) continue;
    const Octant& l = tree.leaves()[static_cast<std::size_t>(j)];
    if (l.is_ancestor_of(q)) ok = false;
  }
  return comm.allreduce_sum<int>(ok ? 0 : 1) == 0;
}

}  // namespace alps::octree
