#include "octree/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace alps::octree {

namespace {

struct WireOctant {
  std::int32_t tree;
  coord_t x, y, z;
  std::int32_t level;
};

}  // namespace

void partition(par::Comm& comm, LinearOctree& tree,
               std::span<LeafPayload*> payloads,
               std::span<const double> weights) {
  const int p = comm.size();
  const std::int64_t n_local = tree.num_local();
  for (LeafPayload* f : payloads) {
    if (static_cast<std::int64_t>(f->data.size()) != n_local * f->ncomp)
      throw std::invalid_argument("partition: payload size mismatch");
  }
  if (!weights.empty() &&
      static_cast<std::int64_t>(weights.size()) != n_local)
    throw std::invalid_argument("partition: weight size mismatch");

  std::vector<int> dest(static_cast<std::size_t>(n_local));
  std::vector<std::vector<WireOctant>> in_oct;
  {
    // PARTITIONTREE: split computation + octant movement.
    OBS_PHASE_SPAN("amr.partition");

    // Destination rank of each local leaf from its global SFC position.
    if (weights.empty()) {
      const std::int64_t my_offset = comm.exscan_sum(n_local);
      const std::int64_t n_global = comm.allreduce_sum(n_local);
      for (std::int64_t i = 0; i < n_local; ++i) {
        const std::int64_t g = my_offset + i;
        // Inverse of the split g in [N*r/P, N*(r+1)/P).
        int r = static_cast<int>((static_cast<__int128>(g) * p) / n_global);
        while (g < n_global * r / p) --r;
        while (g >= n_global * (r + 1) / p) ++r;
        dest[static_cast<std::size_t>(i)] = r;
      }
    } else {
      double w_local = 0.0;
      for (double w : weights) w_local += w;
      const double my_woff = comm.exscan_sum(w_local);
      const double w_global = comm.allreduce_sum(w_local);
      if (!(w_global > 0.0))
        throw std::invalid_argument(
            "partition: weights must have a positive global sum");
      double acc = my_woff;
      for (std::int64_t i = 0; i < n_local; ++i) {
        const double mid = acc + 0.5 * weights[static_cast<std::size_t>(i)];
        int r = static_cast<int>(std::floor(mid / w_global * p));
        dest[static_cast<std::size_t>(i)] = std::clamp(r, 0, p - 1);
        acc += weights[static_cast<std::size_t>(i)];
      }
      // SFC order must be preserved: destinations are already monotone
      // because the weighted prefix is monotone.
    }

    // Ship octants.
    std::vector<std::vector<WireOctant>> out_oct(static_cast<std::size_t>(p));
    for (std::int64_t i = 0; i < n_local; ++i) {
      const Octant& o = tree.leaves()[static_cast<std::size_t>(i)];
      out_oct[static_cast<std::size_t>(dest[static_cast<std::size_t>(i)])]
          .push_back(WireOctant{o.tree, o.x, o.y, o.z, o.level});
    }
    in_oct = comm.alltoallv(out_oct);
  }

  {
    // TRANSFERFIELDS: each payload moves with the identical routing.
    OBS_PHASE_SPAN("amr.transfer_fields");
    for (LeafPayload* f : payloads) {
      std::vector<std::vector<double>> out_f(static_cast<std::size_t>(p));
      for (std::int64_t i = 0; i < n_local; ++i) {
        auto& buf =
            out_f[static_cast<std::size_t>(dest[static_cast<std::size_t>(i)])];
        const double* src = f->data.data() + i * f->ncomp;
        buf.insert(buf.end(), src, src + f->ncomp);
      }
      std::vector<std::vector<double>> in_f = comm.alltoallv(out_f);
      f->data.clear();
      for (const auto& v : in_f)
        f->data.insert(f->data.end(), v.begin(), v.end());
    }
  }

  // Concatenating in source-rank order preserves global SFC order.
  std::vector<Octant> leaves;
  for (const auto& v : in_oct)
    for (const WireOctant& w : v)
      leaves.push_back(
          Octant{w.tree, w.x, w.y, w.z, static_cast<std::int8_t>(w.level)});
  tree.mutable_leaves() = std::move(leaves);
  tree.update_ranges(comm);
}

double load_imbalance(par::Comm& comm, const LinearOctree& tree) {
  const std::int64_t n_local = tree.num_local();
  const std::int64_t n_global = comm.allreduce_sum(n_local);
  const std::int64_t n_max = comm.allreduce_max(n_local);
  const double ideal =
      static_cast<double>(n_global) / static_cast<double>(comm.size());
  return ideal > 0 ? static_cast<double>(n_max) / ideal : 1.0;
}

}  // namespace alps::octree
