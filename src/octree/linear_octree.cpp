#include "octree/linear_octree.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace alps::octree {

LinearOctree LinearOctree::new_uniform(par::Comm& comm, std::int32_t num_trees,
                                       int level) {
  if (level < 0 || level > kMaxLevel)
    throw std::invalid_argument("new_uniform: bad level");
  LinearOctree t;
  t.num_trees_ = num_trees;
  const std::int64_t per_tree = std::int64_t{1} << (3 * level);
  const std::int64_t n_global = per_tree * num_trees;
  const int p = comm.size(), r = comm.rank();
  const std::int64_t lo = n_global * r / p;
  const std::int64_t hi = n_global * (r + 1) / p;
  t.leaves_.reserve(static_cast<std::size_t>(hi - lo));
  for (std::int64_t g = lo; g < hi; ++g) {
    const std::int32_t tree = static_cast<std::int32_t>(g / per_tree);
    const morton_t m = static_cast<morton_t>(g % per_tree)
                       << (3 * (kMaxLevel - level));
    Octant o;
    o.tree = tree;
    o.level = static_cast<std::int8_t>(level);
    morton_decode(m, o.x, o.y, o.z);
    t.leaves_.push_back(o);
  }
  t.update_ranges(comm);
  return t;
}

LinearOctree LinearOctree::new_uniform_grow_prune(par::Comm& comm,
                                                  std::int32_t num_trees,
                                                  int level) {
  if (level < 0 || level > kMaxLevel)
    throw std::invalid_argument("new_uniform_grow_prune: bad level");
  LinearOctree t;
  t.num_trees_ = num_trees;
  // Grow: every rank builds the complete coarse forest by recursive
  // splitting, in SFC order.
  std::vector<Octant> all;
  const auto grow = [&all, level](const auto& self, const Octant& o) -> void {
    if (o.level == level) {
      all.push_back(o);
      return;
    }
    for (int c = 0; c < 8; ++c) self(self, o.child(c));
  };
  for (std::int32_t tree = 0; tree < num_trees; ++tree)
    grow(grow, Octant{tree, 0, 0, 0, 0});
  // Prune: keep only this rank's even share of the Morton order.
  const std::int64_t n = static_cast<std::int64_t>(all.size());
  const int p = comm.size(), r = comm.rank();
  const std::int64_t lo = n * r / p, hi = n * (r + 1) / p;
  t.leaves_.assign(all.begin() + lo, all.begin() + hi);
  t.update_ranges(comm);
  return t;
}

std::int64_t LinearOctree::num_global(par::Comm& comm) const {
  return comm.allreduce_sum<std::int64_t>(num_local());
}

void LinearOctree::update_ranges(par::Comm& comm) {
  struct RankKey {
    std::int32_t has = 0;
    SfcKey key;
  };
  RankKey mine;
  mine.has = leaves_.empty() ? 0 : 1;
  if (mine.has) mine.key = key_of(leaves_.front());
  std::vector<RankKey> all = comm.allgather(mine);

  const int p = comm.size();
  range_begins_.assign(static_cast<std::size_t>(p) + 1,
                       key_end_sentinel(num_trees_));
  // Fill backwards so empty ranks inherit the next rank's begin, giving
  // them an empty [begin, begin) range.
  for (int r = p - 1; r >= 0; --r) {
    range_begins_[static_cast<std::size_t>(r)] =
        all[static_cast<std::size_t>(r)].has
            ? all[static_cast<std::size_t>(r)].key
            : range_begins_[static_cast<std::size_t>(r) + 1];
  }
}

int LinearOctree::owner_of(const SfcKey& k) const {
  assert(!range_begins_.empty());
  // Last rank whose begin <= k.
  auto it = std::upper_bound(range_begins_.begin(), range_begins_.end() - 1, k);
  if (it == range_begins_.begin())
    throw std::runtime_error("owner_of: key precedes all ranges");
  return static_cast<int>((it - range_begins_.begin()) - 1);
}

std::int64_t LinearOctree::lower_bound(const SfcKey& k) const {
  auto it = std::lower_bound(
      leaves_.begin(), leaves_.end(), k,
      [](const Octant& o, const SfcKey& key) { return key_of(o) < key; });
  return it - leaves_.begin();
}

std::int64_t LinearOctree::find_containing(const Octant& o) const {
  const SfcKey k = key_of(o);
  // Last local leaf with anchor <= k.
  auto it = std::upper_bound(
      leaves_.begin(), leaves_.end(), k,
      [](const SfcKey& key, const Octant& l) { return key < key_of(l); });
  if (it == leaves_.begin()) return -1;
  --it;
  if (it->tree == o.tree && (*it == o || it->is_ancestor_of(o)))
    return it - leaves_.begin();
  return -1;
}

void LinearOctree::adapt(std::span<const std::int8_t> flags, int min_level,
                         int max_level) {
  if (flags.size() != leaves_.size())
    throw std::invalid_argument("adapt: one flag per local leaf required");
  std::vector<Octant> out;
  out.reserve(leaves_.size());
  const std::size_t n = leaves_.size();
  for (std::size_t i = 0; i < n;) {
    const Octant& o = leaves_[i];
    // Try to coarsen a complete sibling group [i, i+8).
    if (flags[i] < 0 && o.level > min_level && o.level > 0 &&
        o.child_id() == 0 && i + 8 <= n) {
      const Octant p = o.parent();
      bool all = true;
      for (std::size_t j = 0; j < 8; ++j) {
        if (flags[i + j] >= 0 || leaves_[i + j].level != o.level ||
            !(leaves_[i + j].level > 0) ||
            !(leaves_[i + j].parent() == p)) {
          all = false;
          break;
        }
      }
      if (all) {
        out.push_back(p);
        i += 8;
        continue;
      }
    }
    if (flags[i] > 0 && o.level < max_level) {
      for (int c = 0; c < 8; ++c) out.push_back(o.child(c));
    } else {
      out.push_back(o);
    }
    ++i;
  }
  leaves_ = std::move(out);
}

bool LinearOctree::locally_valid() const {
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const Octant& o = leaves_[i];
    if (!o.inside_tree() || o.tree < 0 || o.tree >= num_trees_) return false;
    if (o.level < 0 || o.level > kMaxLevel) return false;
    if (i > 0) {
      const Octant& q = leaves_[i - 1];
      if (!(sfc_less(q, o))) return false;
      // Non-overlap: previous region must end before this one starts.
      if (q.tree == o.tree && q.morton_last() >= o.morton()) return false;
    }
  }
  return true;
}

bool LinearOctree::globally_complete(par::Comm& comm, const LinearOctree& t) {
  bool ok = t.locally_valid();
  // Each rank publishes (first key, last key end). Rank 0 checks the
  // global chain covers [0, sentinel) without gaps.
  struct Seg {
    std::int32_t has = 0;
    SfcKey first, last_end;
  };
  Seg s;
  s.has = t.leaves_.empty() ? 0 : 1;
  if (s.has) {
    s.first = key_of(t.leaves_.front());
    const Octant& b = t.leaves_.back();
    morton_t end = b.morton_last() + 1;
    if (end == octant_span(0))  // wrapped past end of tree
      s.last_end = SfcKey{b.tree + 1, 0};
    else
      s.last_end = SfcKey{b.tree, end};
  }
  std::vector<Seg> segs = comm.allgather(s);
  SfcKey expect{0, 0};
  for (const Seg& g : segs) {
    if (!g.has) continue;
    if (g.first != expect) ok = false;
    expect = g.last_end;
  }
  if (expect != key_end_sentinel(t.num_trees_)) ok = false;
  return comm.allreduce_sum<int>(ok ? 0 : 1) == 0;
}

Correspondence compute_correspondence(std::span<const Octant> old_leaves,
                                      std::span<const Octant> new_leaves) {
  Correspondence c;
  c.entries.reserve(new_leaves.size());
  std::size_t i = 0;  // cursor into old
  for (std::size_t j = 0; j < new_leaves.size(); ++j) {
    const Octant& nw = new_leaves[j];
    if (i >= old_leaves.size())
      throw std::runtime_error("correspondence: old leaves exhausted");
    const Octant& od = old_leaves[i];
    Correspondence::Entry e;
    if (od == nw) {
      e.kind = Correspondence::Kind::kSame;
      e.old_begin = static_cast<std::int64_t>(i);
      e.old_end = e.old_begin + 1;
      ++i;
    } else if (od.is_ancestor_of(nw)) {
      e.kind = Correspondence::Kind::kRefined;
      e.old_begin = static_cast<std::int64_t>(i);
      e.old_end = e.old_begin + 1;
      // Advance past od only when nw is its last covered piece.
      if (nw.morton_last() == od.morton_last()) ++i;
    } else if (nw.is_ancestor_of(od)) {
      e.kind = Correspondence::Kind::kCoarsened;
      e.old_begin = static_cast<std::int64_t>(i);
      while (i < old_leaves.size() && nw.is_ancestor_of(old_leaves[i])) ++i;
      e.old_end = static_cast<std::int64_t>(i);
    } else {
      throw std::runtime_error("correspondence: leaves do not tile equally");
    }
    c.entries.push_back(e);
  }
  if (i != old_leaves.size())
    throw std::runtime_error("correspondence: new leaves exhausted early");
  return c;
}

}  // namespace alps::octree
