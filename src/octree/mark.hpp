#pragma once
// MARKELEMENTS (paper Sec. IV.B): turn per-element error indicators into
// refine/coarsen flags while steering the expected post-adaptation element
// count toward a target, adjusting global thresholds through collective
// communication instead of a global sort.

#include <cstdint>
#include <span>
#include <vector>

#include "octree/linear_octree.hpp"

namespace alps::octree {

struct MarkOptions {
  std::int64_t target_elements = 0;  // desired global count after adaptation
  double tolerance = 0.05;           // acceptable relative deviation
  int max_iterations = 40;           // threshold-adjustment rounds
  int min_level = 0;                 // never coarsen below
  int max_level = kMaxLevel;         // never refine above
  double coarsen_ratio = 0.1;        // initial theta_c = ratio * theta_r
};

/// Returns one flag per local leaf: +1 refine, -1 coarsen, 0 keep.
/// `eta` is the per-leaf error indicator (non-negative).
std::vector<std::int8_t> mark_elements(par::Comm& comm,
                                       const LinearOctree& tree,
                                       std::span<const double> eta,
                                       const MarkOptions& opt);

/// Expected global element count if `flags` were applied (ignores the few
/// elements BalanceTree may add, as the paper does).
std::int64_t expected_count(par::Comm& comm, const LinearOctree& tree,
                            std::span<const std::int8_t> flags);

}  // namespace alps::octree
