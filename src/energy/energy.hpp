#pragma once
// Energy equation (paper Eq. 3): SUPG-stabilized advection-diffusion,
// advanced explicitly with a two-stage predictor-corrector and a lumped
// mass matrix — the transport component the paper uses to stress-test
// parallel AMR (Sec. V).

#include <functional>

#include "fem/operators.hpp"

namespace alps::energy {

using mesh::Mesh;

struct EnergyOptions {
  double kappa = 1.0;         // nondimensional thermal diffusivity
  double heat_source = 0.0;   // internal heating gamma
  // Faces with Dirichlet temperature (default: bottom and top).
  std::uint8_t dirichlet_faces = 0b110000;
  double cfl_safety = 0.5;
};

class EnergySolver {
 public:
  /// `velocity` is the 4-comp solution layout (4*n_local); only the
  /// velocity components are read. Assembles the SUPG operator once for
  /// the given velocity (re-create after the velocity or mesh changes).
  EnergySolver(par::Comm& comm, const Mesh& m,
               const forest::Connectivity& conn,
               std::span<const double> velocity, const EnergyOptions& opt);

  /// One explicit predictor-corrector step on the nodal temperature
  /// (n_local, ghost-consistent in and out). Collective.
  void step(par::Comm& comm, std::span<double> temperature, double dt) const;

  /// Largest stable time step (advective + diffusive limits), global.
  double stable_dt(par::Comm& comm) const;

  const fem::ElementOperator& op() const { return *op_; }

  /// This rank's heap bytes for the lumped-mass and source vectors (the
  /// "energy.fields" memory scope). The SUPG element operator is reported
  /// separately through op().memory_bytes() (the "fem.plan" scope).
  std::uint64_t memory_bytes() const {
    return obs::vec_bytes(lumped_) + obs::vec_bytes(source_);
  }

 private:
  void rate(par::Comm& comm, std::span<const double> t,
            std::span<double> dtdt) const;

  const Mesh* mesh_;
  EnergyOptions opt_;
  std::unique_ptr<fem::ElementOperator> op_;  // advection + diffusion + SUPG
  std::vector<double> lumped_;                // lumped mass
  std::vector<double> source_;                // gamma load vector
  double dt_limit_ = 0.0;                     // local element limit
};

}  // namespace alps::energy
