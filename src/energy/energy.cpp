#include "energy/energy.hpp"

#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace alps::energy {

EnergySolver::EnergySolver(par::Comm& comm, const Mesh& m,
                           const forest::Connectivity& conn,
                           std::span<const double> velocity,
                           const EnergyOptions& opt)
    : mesh_(&m), opt_(opt) {
  op_ = std::make_unique<fem::ElementOperator>(&m, 1);
  lumped_.assign(static_cast<std::size_t>(m.n_local), 0.0);
  source_.assign(static_cast<std::size_t>(m.n_local), 0.0);
  dt_limit_ = std::numeric_limits<double>::max();

  std::array<fem::Vec3, 8> ue;
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::ElemGeom g = fem::element_geometry(m, conn, e);
    const fem::MappedQuad mq = fem::map_element(g);
    double speed2 = 0.0;
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      for (int c = 0; c < 3; ++c) {
        double v = 0.0;
        for (int k = 0; k < cc.n; ++k)
          v += cc.w[static_cast<std::size_t>(k)] *
               velocity[static_cast<std::size_t>(
                            cc.dof[static_cast<std::size_t>(k)]) * 4 +
                        static_cast<std::size_t>(c)];
        ue[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] = v;
        speed2 += v * v;
      }
    }
    const double speed = std::sqrt(speed2 / 8.0);
    double vol = 0.0;
    for (double w : mq.jxw) vol += w;
    const double h = std::cbrt(vol);
    const double tau = fem::supg_tau(h, speed, opt_.kappa);

    fem::Mat8 advect, supg_mass;
    fem::advection_supg(mq, ue, opt_.kappa, tau, advect, supg_mass);
    std::span<double> dst = op_->element_matrix(e);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        dst[static_cast<std::size_t>(i) * 8 + static_cast<std::size_t>(j)] =
            advect[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];

    const std::array<double, 8> lm = fem::lumped_mass(mq);
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      for (int k = 0; k < cc.n; ++k) {
        lumped_[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])] +=
            cc.w[static_cast<std::size_t>(k)] * lm[static_cast<std::size_t>(i)];
        source_[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])] +=
            cc.w[static_cast<std::size_t>(k)] * lm[static_cast<std::size_t>(i)] *
            opt_.heat_source;
      }
    }

    // Explicit step limits: advective h/|u| and diffusive h^2/(6 kappa).
    if (speed > 0.0) dt_limit_ = std::min(dt_limit_, h / speed);
    if (opt_.kappa > 0.0)
      dt_limit_ = std::min(dt_limit_, h * h / (6.0 * opt_.kappa));
  }
  m.accumulate(comm, lumped_);
  m.exchange(comm, lumped_);
  m.accumulate(comm, source_);
  m.exchange(comm, source_);

  for (std::int64_t d = 0; d < m.n_local; ++d)
    if (m.dof_boundary[static_cast<std::size_t>(d)] & opt_.dirichlet_faces)
      op_->set_dirichlet(d, 0);
}

void EnergySolver::rate(par::Comm& comm, std::span<const double> t,
                        std::span<double> dtdt) const {
  op_->apply_raw(comm, t, dtdt);
  const Mesh& m = *mesh_;
  for (std::int64_t d = 0; d < m.n_local; ++d) {
    const std::size_t i = static_cast<std::size_t>(d);
    if (m.dof_boundary[i] & opt_.dirichlet_faces)
      dtdt[i] = 0.0;  // boundary temperature held fixed
    else
      dtdt[i] = (source_[i] - dtdt[i]) / lumped_[i];
  }
}

void EnergySolver::step(par::Comm& comm, std::span<double> temperature,
                        double dt) const {
  OBS_SPAN("energy.step");
  const std::size_t n = temperature.size();
  std::vector<double> k1(n), tp(n), k2(n);
  rate(comm, temperature, k1);
  for (std::size_t i = 0; i < n; ++i) tp[i] = temperature[i] + dt * k1[i];
  rate(comm, tp, k2);
  for (std::size_t i = 0; i < n; ++i)
    temperature[i] += 0.5 * dt * (k1[i] + k2[i]);
}

double EnergySolver::stable_dt(par::Comm& comm) const {
  return opt_.cfl_safety * comm.allreduce_min(dt_limit_);
}

}  // namespace alps::energy
