#pragma once
// Legendre-Gauss-Lobatto machinery for the high-order nodal DG module
// (paper Sec. VII, the MANGLL substitute): LGL nodes and quadrature
// weights, the collocation differentiation matrix, and Lagrange
// interpolation matrices used for nonconforming (2:1) face coupling and
// for adaptivity transfer.

#include <vector>

namespace alps::dg {

/// LGL nodes on [0, 1] (p+1 points for polynomial order p) and the
/// matching quadrature weights.
struct LglRule {
  int order = 1;                 // polynomial order p
  std::vector<double> nodes;     // size p+1, ascending, in [0,1]
  std::vector<double> weights;   // size p+1, sum = 1
};

LglRule lgl_rule(int order);

/// Collocation differentiation matrix D[i][j] = l_j'(x_i) on [0,1],
/// row-major (p+1)^2.
std::vector<double> differentiation_matrix(const LglRule& rule);

/// Lagrange interpolation matrix from the LGL nodes to arbitrary points:
/// I[k][j] = l_j(points[k]), row-major (npoints x (p+1)).
std::vector<double> interpolation_matrix(const LglRule& rule,
                                         const std::vector<double>& points);

/// Evaluate the Lagrange basis {l_j} of the rule at a single point.
std::vector<double> lagrange_at(const LglRule& rule, double x);

}  // namespace alps::dg
