#include "dg/kernels.hpp"

#include <cstring>

namespace alps::dg {

DerivativeKernel::DerivativeKernel(int order)
    : order_(order), rule_(lgl_rule(order)), d1_(differentiation_matrix(rule_)) {
  // Fused 3D derivative matrix: rows [0,n3) = d/dx, [n3,2n3) = d/dy,
  // [2n3,3n3) = d/dz, each (p+1)^3 x (p+1)^3. Node index = (k*n + j)*n + i.
  const std::int64_t n = n1d();
  const std::int64_t n3 = n * n * n;
  big_.assign(static_cast<std::size_t>(3 * n3 * n3), 0.0);
  const auto node = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (k * n + j) * n + i;
  };
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t r = node(i, j, k);
        for (std::int64_t m = 0; m < n; ++m) {
          big_[static_cast<std::size_t>(r * n3 + node(m, j, k))] +=
              d1_[static_cast<std::size_t>(i * n + m)];
          big_[static_cast<std::size_t>((n3 + r) * n3 + node(i, m, k))] +=
              d1_[static_cast<std::size_t>(j * n + m)];
          big_[static_cast<std::size_t>((2 * n3 + r) * n3 + node(i, j, m))] +=
              d1_[static_cast<std::size_t>(k * n + m)];
        }
      }
}

void DerivativeKernel::apply_tensor(std::span<const double> u,
                                    std::span<double> ux, std::span<double> uy,
                                    std::span<double> uz) const {
  const std::int64_t n = n1d();
  const auto node = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return static_cast<std::size_t>((k * n + j) * n + i);
  };
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        double sx = 0, sy = 0, sz = 0;
        for (std::int64_t m = 0; m < n; ++m) {
          sx += d1_[static_cast<std::size_t>(i * n + m)] * u[node(m, j, k)];
          sy += d1_[static_cast<std::size_t>(j * n + m)] * u[node(i, m, k)];
          sz += d1_[static_cast<std::size_t>(k * n + m)] * u[node(i, j, m)];
        }
        ux[node(i, j, k)] = sx;
        uy[node(i, j, k)] = sy;
        uz[node(i, j, k)] = sz;
      }
}

void blocked_gemv(std::span<const double> a, std::int64_t rows,
                  std::int64_t cols, std::span<const double> x,
                  std::span<double> y) {
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t r = 0; r < rows; ++r) y[static_cast<std::size_t>(r)] = 0.0;
  for (std::int64_t cb = 0; cb < cols; cb += kBlock) {
    const std::int64_t ce = std::min(cb + kBlock, cols);
    for (std::int64_t r = 0; r < rows; ++r) {
      const double* row = a.data() + r * cols;
      double s = 0.0;
      for (std::int64_t c = cb; c < ce; ++c)
        s += row[c] * x[static_cast<std::size_t>(c)];
      y[static_cast<std::size_t>(r)] += s;
    }
  }
}

void DerivativeKernel::apply_matrix(std::span<const double> u,
                                    std::span<double> ux, std::span<double> uy,
                                    std::span<double> uz) const {
  const std::int64_t n3 = nodes_per_elem();
  std::vector<double> out(static_cast<std::size_t>(3 * n3));
  blocked_gemv(big_, 3 * n3, n3, u, out);
  std::memcpy(ux.data(), out.data(), static_cast<std::size_t>(n3) * sizeof(double));
  std::memcpy(uy.data(), out.data() + n3, static_cast<std::size_t>(n3) * sizeof(double));
  std::memcpy(uz.data(), out.data() + 2 * n3, static_cast<std::size_t>(n3) * sizeof(double));
}

}  // namespace alps::dg
