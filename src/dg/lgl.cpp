#include "dg/lgl.hpp"

#include <cmath>
#include <stdexcept>

namespace alps::dg {

namespace {

/// Legendre polynomial P_n and derivative at x (on [-1,1]).
void legendre(int n, double x, double& p, double& dp) {
  double p0 = 1.0, p1 = x;
  if (n == 0) {
    p = 1.0;
    dp = 0.0;
    return;
  }
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = pk;
  }
  p = p1;
  dp = n * (x * p1 - p0) / (x * x - 1.0);
}

}  // namespace

LglRule lgl_rule(int order) {
  if (order < 1) throw std::invalid_argument("lgl_rule: order must be >= 1");
  const int n = order;  // nodes are roots of (1-x^2) P_n'(x)
  LglRule r;
  r.order = order;
  r.nodes.resize(static_cast<std::size_t>(n) + 1);
  r.weights.resize(static_cast<std::size_t>(n) + 1);
  std::vector<double> x(static_cast<std::size_t>(n) + 1);
  x.front() = -1.0;
  x.back() = 1.0;
  // Interior nodes by Newton from Chebyshev-Gauss-Lobatto initial guesses.
  for (int i = 1; i < n; ++i) {
    double xi = -std::cos(M_PI * i / n);
    for (int it = 0; it < 100; ++it) {
      // f(x) = P_n'(x); f'(x) from the Legendre ODE:
      // (1-x^2) P_n'' - 2x P_n' + n(n+1) P_n = 0.
      double p, dp;
      legendre(n, xi, p, dp);
      const double d2p = (2.0 * xi * dp - n * (n + 1.0) * p) / (1.0 - xi * xi);
      const double dx = dp / d2p;
      xi -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    x[static_cast<std::size_t>(i)] = xi;
  }
  for (int i = 0; i <= n; ++i) {
    double p, dp;
    legendre(n, x[static_cast<std::size_t>(i)], p, dp);
    // Weights on [-1,1]: 2 / (n(n+1) P_n(x_i)^2); halve for [0,1].
    r.weights[static_cast<std::size_t>(i)] = 1.0 / (n * (n + 1.0) * p * p);
    r.nodes[static_cast<std::size_t>(i)] = 0.5 * (x[static_cast<std::size_t>(i)] + 1.0);
  }
  return r;
}

std::vector<double> lagrange_at(const LglRule& rule, double x) {
  const std::size_t np = rule.nodes.size();
  std::vector<double> l(np, 1.0);
  for (std::size_t j = 0; j < np; ++j)
    for (std::size_t m = 0; m < np; ++m)
      if (m != j)
        l[j] *= (x - rule.nodes[m]) / (rule.nodes[j] - rule.nodes[m]);
  return l;
}

std::vector<double> interpolation_matrix(const LglRule& rule,
                                         const std::vector<double>& points) {
  const std::size_t np = rule.nodes.size();
  std::vector<double> out(points.size() * np);
  for (std::size_t k = 0; k < points.size(); ++k) {
    const std::vector<double> l = lagrange_at(rule, points[k]);
    for (std::size_t j = 0; j < np; ++j) out[k * np + j] = l[j];
  }
  return out;
}

std::vector<double> differentiation_matrix(const LglRule& rule) {
  const std::size_t np = rule.nodes.size();
  const std::vector<double>& x = rule.nodes;
  // Barycentric weights.
  std::vector<double> w(np, 1.0);
  for (std::size_t j = 0; j < np; ++j)
    for (std::size_t m = 0; m < np; ++m)
      if (m != j) w[j] /= (x[j] - x[m]);
  std::vector<double> d(np * np, 0.0);
  for (std::size_t i = 0; i < np; ++i) {
    double diag = 0.0;
    for (std::size_t j = 0; j < np; ++j) {
      if (i == j) continue;
      d[i * np + j] = (w[j] / w[i]) / (x[i] - x[j]);
      diag -= d[i * np + j];
    }
    d[i * np + i] = diag;
  }
  return d;
}

}  // namespace alps::dg
