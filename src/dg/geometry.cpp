#include "dg/geometry.hpp"

#include <cmath>

namespace alps::dg {

GeometryFn brick_geometry(const forest::Connectivity& conn) {
  return [&conn](std::int32_t tree, const std::array<double, 3>& ref) {
    const auto& tc = conn.tree_corners()[static_cast<std::size_t>(tree)];
    std::array<double, 3> p{};
    for (int k = 0; k < 8; ++k) {
      const double w = ((k & 1) ? ref[0] : 1.0 - ref[0]) *
                       ((k & 2) ? ref[1] : 1.0 - ref[1]) *
                       ((k & 4) ? ref[2] : 1.0 - ref[2]);
      for (int d = 0; d < 3; ++d)
        p[static_cast<std::size_t>(d)] +=
            w * tc[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)];
    }
    return p;
  };
}

GeometryFn shell_geometry(const forest::Connectivity& conn, double r_inner,
                          double r_outer) {
  return [&conn, r_inner, r_outer](std::int32_t tree,
                                   const std::array<double, 3>& ref) {
    const auto& tc = conn.tree_corners()[static_cast<std::size_t>(tree)];
    // Bilinear blend of the four inner corners (bit2 == 0) on the cube.
    std::array<double, 3> c{};
    for (int k = 0; k < 4; ++k) {
      const double w =
          ((k & 1) ? ref[0] : 1.0 - ref[0]) * ((k & 2) ? ref[1] : 1.0 - ref[1]);
      for (int d = 0; d < 3; ++d)
        c[static_cast<std::size_t>(d)] +=
            w * tc[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)];
    }
    const double norm = std::sqrt(c[0] * c[0] + c[1] * c[1] + c[2] * c[2]);
    const double r = r_inner + ref[2] * (r_outer - r_inner);
    return std::array<double, 3>{r * c[0] / norm, r * c[1] / norm,
                                 r * c[2] / norm};
  };
}

std::array<double, 3> solid_body_rotation(const std::array<double, 3>& x,
                                          double omega) {
  return {-omega * x[1], omega * x[0], 0.0};
}

}  // namespace alps::dg
