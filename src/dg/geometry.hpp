#pragma once
// Geometry mappings for the DG module: reference coordinates within a
// tree ([0,1]^3) to physical space. Bricks use the trilinear blend of the
// connectivity's tree corners; the spherical shell uses the cubed-sphere
// projection (paper Sec. VII, Fig. 12).

#include <functional>

#include "forest/connectivity.hpp"

namespace alps::dg {

using GeometryFn = std::function<std::array<double, 3>(
    std::int32_t tree, const std::array<double, 3>& ref)>;

/// Trilinear blend of the connectivity's tree corner positions.
GeometryFn brick_geometry(const forest::Connectivity& conn);

/// Cubed-sphere shell of inner/outer radius: lateral position from the
/// normalized direction of the tree's inner-face bilinear blend, radial
/// position linear in the third reference coordinate. Built for
/// Connectivity::cubed_sphere_shell().
GeometryFn shell_geometry(const forest::Connectivity& conn, double r_inner,
                          double r_outer);

/// Solid-body rotation about the z axis: u = omega x r (divergence-free,
/// tangential to spheres) — the advecting field for the Fig. 12 runs.
std::array<double, 3> solid_body_rotation(const std::array<double, 3>& x,
                                          double omega);

}  // namespace alps::dg
