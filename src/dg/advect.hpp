#pragma once
// High-order nodal DG advection on forest-of-octree meshes (paper
// Sec. VII): arbitrary-order LGL spectral elements with upwind fluxes and
// a five-stage fourth-order low-storage Runge-Kutta integrator, on
// adaptive (2:1 nonconforming) meshes over general geometries.
//
// Nonconforming and inter-tree face coupling uses one uniform primitive:
// the exterior trace at each of an element's face nodes is obtained by
// locating the neighboring leaf (through the connectivity's coordinate
// transforms) and evaluating its nodal polynomial at that point. This
// handles conforming, coarser, and finer neighbors identically; see
// DESIGN.md for how it relates to the paper's face integration meshes.

#include "dg/geometry.hpp"
#include "dg/kernels.hpp"
#include "forest/forest.hpp"
#include "octree/linear_octree.hpp"
#include "par/comm.hpp"

namespace alps::dg {

using forest::Forest;
using octree::Correspondence;
using octree::Octant;

/// Advecting velocity field u(x, t).
using VelocityFn = std::function<std::array<double, 3>(
    const std::array<double, 3>& x, double t)>;

class DgAdvection {
 public:
  /// Setup: node coordinates, metric terms, and the ghost exchange plan
  /// for the current forest. Re-create after adaptation/partitioning.
  /// `use_matrix_kernel` selects the matrix-based element derivative
  /// application (6(p+1)^6 flops, one big dgemm) instead of the default
  /// tensor-product kernel (6(p+1)^4) — the Sec. VII trade-off.
  /// `ghosts` takes a precomputed mesh::ghost_layer() result for this
  /// forest so one adaptation round shares the layer between consumers;
  /// empty (the default) computes it here.
  DgAdvection(par::Comm& comm, const Forest& forest, int order,
              GeometryFn geometry, VelocityFn velocity,
              bool use_matrix_kernel = false,
              std::span<const Octant> ghosts = {});

  int order() const { return kernel_.order(); }
  std::int64_t nodes_per_elem() const { return kernel_.nodes_per_elem(); }
  std::int64_t num_local_elements() const {
    return static_cast<std::int64_t>(elements_.size());
  }
  const DerivativeKernel& kernel() const { return kernel_; }

  /// Nodal interpolation of f onto all local element nodes.
  std::vector<double> interpolate(
      const std::function<double(const std::array<double, 3>&)>& f) const;

  /// Physical coordinates of node `n` of local element `e`.
  std::array<double, 3> node_xyz(std::int64_t e, std::int64_t n) const;

  /// Semi-discrete right-hand side dc/dt = L(c, t). Collective.
  void rhs(par::Comm& comm, std::span<const double> c, double t,
           std::span<double> out) const;

  /// One LSERK(5,4) step of size dt. Collective.
  void step(par::Comm& comm, std::span<double> c, double t, double dt) const;

  /// CFL-stable time step estimate at time t. Collective.
  double stable_dt(par::Comm& comm, double t, double cfl = 0.3) const;

  /// Quadrature integral of c over the domain. Collective.
  double integral(par::Comm& comm, std::span<const double> c) const;

  /// Per-element smoothness/gradient indicator for MARKELEMENTS.
  std::vector<double> indicator(std::span<const double> c) const;

  /// Flops spent in element derivative kernels since construction.
  std::int64_t kernel_flops() const { return kernel_flops_; }
  bool uses_matrix_kernel() const { return use_matrix_kernel_; }

 private:
  struct Located {
    std::int64_t slot = -1;  // index into local (if < ne) or ghost storage
    std::array<double, 3> ref{};
  };
  bool locate(std::int32_t tree, std::array<double, 3> doubled, Located& out) const;
  double evaluate(const Located& loc, std::span<const double> c,
                  std::span<const double> ghosts) const;
  std::vector<double> exchange_ghost_values(par::Comm& comm,
                                            std::span<const double> c) const;

  void derivatives(std::span<const double> u, std::span<double> dx,
                   std::span<double> dy, std::span<double> dz) const;

  DerivativeKernel kernel_;
  bool use_matrix_kernel_ = false;
  GeometryFn geometry_;
  VelocityFn velocity_;
  const forest::Connectivity* conn_;

  std::vector<Octant> elements_;       // local leaves
  std::vector<Octant> combined_;       // local + ghost, SFC-sorted
  std::vector<std::int64_t> combined_slot_;  // -> local index or ne+ghost idx
  std::vector<Octant> ghosts_;
  std::vector<std::vector<std::int32_t>> send_plan_;  // per rank: local elems
  std::vector<std::vector<std::int32_t>> recv_map_;   // per rank: ghost slots

  // Per element-node data, element-major.
  std::vector<double> xyz_;     // ne * n3 * 3
  std::vector<double> dxidx_;   // ne * n3 * 9 (row r = grad xi_r)
  std::vector<double> detj_;    // ne * n3
  std::vector<double> hmin_;    // ne, smallest physical edge scale

  mutable std::int64_t kernel_flops_ = 0;
};

/// Carry DG element nodal values across one local adaptation: children
/// evaluate the parent polynomial at their nodes; parents evaluate each
/// child's polynomial at the parent nodes it covers.
std::vector<double> dg_interpolate_element_values(
    int order, std::span<const Octant> old_leaves,
    std::span<const Octant> new_leaves, const Correspondence& corr,
    std::span<const double> old_vals);

}  // namespace alps::dg
