#include "dg/advect.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mesh/ghost.hpp"

namespace alps::dg {

namespace {

using octree::coord_t;
using octree::kMaxLevel;
using octree::morton_encode;
using octree::octant_len;
using octree::SfcKey;

constexpr double kNudge = 1e-6;  // doubled-coordinate units

struct WireOctant {
  std::int32_t tree;
  coord_t x, y, z;
  std::int32_t level;
};

// LSERK(5,4) coefficients (Carpenter & Kennedy).
constexpr double kRkA[5] = {0.0, -567301805773.0 / 1357537059087.0,
                            -2404267990393.0 / 2016746695238.0,
                            -3550918686646.0 / 2091501179385.0,
                            -1275806237668.0 / 842570457699.0};
constexpr double kRkB[5] = {1432997174477.0 / 9575080441755.0,
                            5161836677717.0 / 13612068292357.0,
                            1720146321549.0 / 2090206949498.0,
                            3134564353537.0 / 4481467310338.0,
                            2277821191437.0 / 14882151754819.0};
constexpr double kRkC[5] = {0.0, 1432997174477.0 / 9575080441755.0,
                            2526269341429.0 / 6820363962896.0,
                            2006345519317.0 / 3224310063776.0,
                            2802321613138.0 / 2924317926251.0};

/// Evaluate the nodal polynomial `vals` ((p+1)^3, z-order tensor grid) at
/// reference point r.
double eval_poly(const LglRule& rule, std::span<const double> vals,
                 const std::array<double, 3>& r) {
  const std::size_t n = rule.nodes.size();
  const std::vector<double> lx = lagrange_at(rule, r[0]);
  const std::vector<double> ly = lagrange_at(rule, r[1]);
  const std::vector<double> lz = lagrange_at(rule, r[2]);
  double s = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) {
      double row = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        row += lx[i] * vals[(k * n + j) * n + i];
      s += row * ly[j] * lz[k];
    }
  return s;
}

}  // namespace

DgAdvection::DgAdvection(par::Comm& comm, const Forest& forest, int order,
                         GeometryFn geometry, VelocityFn velocity,
                         bool use_matrix_kernel, std::span<const Octant> ghosts)
    : kernel_(order), use_matrix_kernel_(use_matrix_kernel),
      geometry_(std::move(geometry)), velocity_(std::move(velocity)),
      conn_(&forest.connectivity()) {
  const octree::LinearOctree& tree = forest.tree();
  elements_ = tree.leaves();
  if (ghosts.empty())
    ghosts_ = mesh::ghost_layer(comm, tree, *conn_);
  else
    ghosts_.assign(ghosts.begin(), ghosts.end());

  // Combined sorted table with slots.
  const std::int64_t ne = static_cast<std::int64_t>(elements_.size());
  std::vector<std::pair<Octant, std::int64_t>> entries;
  for (std::int64_t e = 0; e < ne; ++e) entries.emplace_back(elements_[static_cast<std::size_t>(e)], e);
  for (std::size_t g = 0; g < ghosts_.size(); ++g)
    entries.emplace_back(ghosts_[g], ne + static_cast<std::int64_t>(g));
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return octree::sfc_less(a.first, b.first); });
  combined_.reserve(entries.size());
  combined_slot_.reserve(entries.size());
  for (const auto& [o, s] : entries) {
    combined_.push_back(o);
    combined_slot_.push_back(s);
  }

  // Send plan: the mirror of ghost_layer's routing.
  const int p = comm.size();
  send_plan_.assign(static_cast<std::size_t>(p), {});
  {
    std::vector<std::vector<std::int32_t>> raw(static_cast<std::size_t>(p));
    Octant n;
    for (std::int64_t e = 0; e < ne; ++e) {
      const Octant& o = elements_[static_cast<std::size_t>(e)];
      for (int d = 0; d < octree::kNumAllDirs; ++d) {
        if (!conn_->neighbor_across(o, d, n)) continue;
        const int lo = tree.owner_of(octree::key_of(n));
        const int hi = tree.owner_of(SfcKey{n.tree, n.morton_last()});
        for (int r = lo; r <= hi; ++r)
          if (r != comm.rank())
            raw[static_cast<std::size_t>(r)].push_back(static_cast<std::int32_t>(e));
      }
    }
    for (int r = 0; r < p; ++r) {
      auto& v = raw[static_cast<std::size_t>(r)];
      // Sort in SFC order (matching ghost_layer's dedup order) and unique.
      std::sort(v.begin(), v.end(), [this](std::int32_t a, std::int32_t b) {
        return octree::sfc_less(elements_[static_cast<std::size_t>(a)],
                                elements_[static_cast<std::size_t>(b)]);
      });
      v.erase(std::unique(v.begin(), v.end()), v.end());
      send_plan_[static_cast<std::size_t>(r)] = std::move(v);
    }
  }

  // Geometry and metric terms at the element nodes.
  const std::int64_t n3 = nodes_per_elem();
  const std::int64_t n1 = kernel_.n1d();
  const LglRule& rule = kernel_.rule();
  xyz_.resize(static_cast<std::size_t>(ne * n3 * 3));
  dxidx_.resize(static_cast<std::size_t>(ne * n3 * 9));
  detj_.resize(static_cast<std::size_t>(ne * n3));
  hmin_.resize(static_cast<std::size_t>(ne));
  const double nn = static_cast<double>(coord_t{1} << kMaxLevel);
  std::vector<double> coord(static_cast<std::size_t>(n3));
  std::array<std::vector<double>, 3> dcoord;
  for (auto& v : dcoord) v.resize(static_cast<std::size_t>(n3));
  std::vector<double> jac(static_cast<std::size_t>(n3 * 9));
  for (std::int64_t e = 0; e < ne; ++e) {
    const Octant& o = elements_[static_cast<std::size_t>(e)];
    const double h = static_cast<double>(octant_len(o.level));
    for (std::int64_t k = 0; k < n1; ++k)
      for (std::int64_t j = 0; j < n1; ++j)
        for (std::int64_t i = 0; i < n1; ++i) {
          const std::int64_t nidx = (k * n1 + j) * n1 + i;
          const std::array<double, 3> ref = {
              (o.x + rule.nodes[static_cast<std::size_t>(i)] * h) / nn,
              (o.y + rule.nodes[static_cast<std::size_t>(j)] * h) / nn,
              (o.z + rule.nodes[static_cast<std::size_t>(k)] * h) / nn};
          const auto x = geometry_(o.tree, ref);
          for (int d = 0; d < 3; ++d)
            xyz_[static_cast<std::size_t>((e * n3 + nidx) * 3 + d)] =
                x[static_cast<std::size_t>(d)];
        }
    // Differentiate each coordinate field (element-local reference).
    for (int d = 0; d < 3; ++d) {
      for (std::int64_t nidx = 0; nidx < n3; ++nidx)
        coord[static_cast<std::size_t>(nidx)] =
            xyz_[static_cast<std::size_t>((e * n3 + nidx) * 3 + d)];
      kernel_.apply_tensor(coord, dcoord[0], dcoord[1], dcoord[2]);
      for (std::int64_t nidx = 0; nidx < n3; ++nidx)
        for (int a = 0; a < 3; ++a)
          jac[static_cast<std::size_t>(nidx * 9 + d * 3 + a)] =
              dcoord[static_cast<std::size_t>(a)][static_cast<std::size_t>(nidx)];
    }
    double hm = 1e300;
    for (std::int64_t nidx = 0; nidx < n3; ++nidx) {
      const double* jj = jac.data() + nidx * 9;  // jj[d*3+a] = dX_d/dxi_a
      const double det =
          jj[0] * (jj[4] * jj[8] - jj[5] * jj[7]) -
          jj[1] * (jj[3] * jj[8] - jj[5] * jj[6]) +
          jj[2] * (jj[3] * jj[7] - jj[4] * jj[6]);
      // Note jj is column-layout wrt [d][a]; compute det of J with
      // J[d][a] = jj[d*3+a]:
      const double j00 = jj[0], j01 = jj[1], j02 = jj[2];
      const double j10 = jj[3], j11 = jj[4], j12 = jj[5];
      const double j20 = jj[6], j21 = jj[7], j22 = jj[8];
      const double dj = j00 * (j11 * j22 - j12 * j21) -
                        j01 * (j10 * j22 - j12 * j20) +
                        j02 * (j10 * j21 - j11 * j20);
      (void)det;
      detj_[static_cast<std::size_t>(e * n3 + nidx)] = dj;
      // Inverse: dxi_a/dX_d = (1/det) cofactor.
      double* gi = dxidx_.data() + (e * n3 + nidx) * 9;  // gi[a*3+d]
      gi[0 * 3 + 0] = (j11 * j22 - j12 * j21) / dj;
      gi[0 * 3 + 1] = (j02 * j21 - j01 * j22) / dj;
      gi[0 * 3 + 2] = (j01 * j12 - j02 * j11) / dj;
      gi[1 * 3 + 0] = (j12 * j20 - j10 * j22) / dj;
      gi[1 * 3 + 1] = (j00 * j22 - j02 * j20) / dj;
      gi[1 * 3 + 2] = (j02 * j10 - j00 * j12) / dj;
      gi[2 * 3 + 0] = (j10 * j21 - j11 * j20) / dj;
      gi[2 * 3 + 1] = (j01 * j20 - j00 * j21) / dj;
      gi[2 * 3 + 2] = (j00 * j11 - j01 * j10) / dj;
      for (int a = 0; a < 3; ++a) {
        const double len = std::sqrt(jj[0 * 3 + a] * jj[0 * 3 + a] +
                                     jj[1 * 3 + a] * jj[1 * 3 + a] +
                                     jj[2 * 3 + a] * jj[2 * 3 + a]);
        hm = std::min(hm, len);
      }
    }
    hmin_[static_cast<std::size_t>(e)] = hm;
  }

  // Handshake: learn the ghost ordering of incoming value streams.
  // (Each rank sends the octants in its send order; we match them to our
  // ghost table once, so value exchanges are raw doubles afterwards.)
  {
    std::vector<std::vector<WireOctant>> out(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      for (std::int32_t e : send_plan_[static_cast<std::size_t>(r)]) {
        const Octant& o = elements_[static_cast<std::size_t>(e)];
        out[static_cast<std::size_t>(r)].push_back(
            WireOctant{o.tree, o.x, o.y, o.z, o.level});
      }
    std::vector<std::vector<WireOctant>> in = comm.alltoallv(out);
    recv_map_.assign(static_cast<std::size_t>(p), {});
    for (int r = 0; r < p; ++r)
      for (const WireOctant& w : in[static_cast<std::size_t>(r)]) {
        const Octant o{w.tree, w.x, w.y, w.z, static_cast<std::int8_t>(w.level)};
        auto it = std::lower_bound(ghosts_.begin(), ghosts_.end(), o,
                                   octree::sfc_less);
        if (it == ghosts_.end() || !(*it == o))
          throw std::runtime_error("DgAdvection: ghost handshake mismatch");
        recv_map_[static_cast<std::size_t>(r)].push_back(
            static_cast<std::int32_t>(it - ghosts_.begin()));
      }
  }
}

void DgAdvection::derivatives(std::span<const double> u,
                              std::span<double> dx, std::span<double> dy,
                              std::span<double> dz) const {
  if (use_matrix_kernel_) {
    kernel_.apply_matrix(u, dx, dy, dz);
    kernel_flops_ += kernel_.flops_matrix();
  } else {
    kernel_.apply_tensor(u, dx, dy, dz);
    kernel_flops_ += kernel_.flops_tensor();
  }
}

std::vector<double> DgAdvection::exchange_ghost_values(
    par::Comm& comm, std::span<const double> c) const {
  const int p = comm.size();
  const std::int64_t n3 = nodes_per_elem();
  std::vector<std::vector<double>> out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    for (std::int32_t e : send_plan_[static_cast<std::size_t>(r)])
      out[static_cast<std::size_t>(r)].insert(
          out[static_cast<std::size_t>(r)].end(), c.begin() + e * n3,
          c.begin() + (e + 1) * n3);
  std::vector<std::vector<double>> in = comm.alltoallv(out);
  std::vector<double> ghosts(ghosts_.size() * static_cast<std::size_t>(n3), 0.0);
  for (int r = 0; r < p; ++r) {
    const auto& map = recv_map_[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < map.size(); ++k)
      std::copy(in[static_cast<std::size_t>(r)].begin() +
                    static_cast<std::ptrdiff_t>(k * static_cast<std::size_t>(n3)),
                in[static_cast<std::size_t>(r)].begin() +
                    static_cast<std::ptrdiff_t>((k + 1) * static_cast<std::size_t>(n3)),
                ghosts.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(map[k]) *
                                     static_cast<std::size_t>(n3)));
  }
  return ghosts;
}

bool DgAdvection::locate(std::int32_t tree, std::array<double, 3> d2,
                         Located& out) const {
  const double extent = static_cast<double>(std::int64_t{2} << kMaxLevel);
  for (int attempt = 0; attempt < 4; ++attempt) {
    int axis = -1, side = 0;
    for (int d = 0; d < 3 && axis < 0; ++d) {
      // Strict inequalities: a point exactly on the domain boundary is
      // inside (tangential coordinates of face nodes land there).
      if (d2[static_cast<std::size_t>(d)] < 0.0) {
        axis = d;
        side = 0;
      } else if (d2[static_cast<std::size_t>(d)] > extent) {
        axis = d;
        side = 1;
      }
    }
    if (axis < 0) break;
    const int f = 2 * axis + side;
    const forest::FaceTransform& t = conn_->face(tree, f);
    if (t.nbr_tree < 0) return false;
    std::array<double, 3> mapped{};
    for (int r = 0; r < 3; ++r) {
      double acc = static_cast<double>(t.trans[static_cast<std::size_t>(r)]);
      for (int k = 0; k < 3; ++k)
        acc += t.rot[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] *
               d2[static_cast<std::size_t>(k)];
      mapped[static_cast<std::size_t>(r)] = acc;
    }
    d2 = mapped;
    tree = t.nbr_tree;
  }
  // Integer cell containing the point.
  const coord_t nmax = (coord_t{1} << kMaxLevel) - 1;
  Octant cell;
  cell.tree = tree;
  cell.level = kMaxLevel;
  cell.x = static_cast<coord_t>(std::clamp(std::floor(d2[0] / 2.0), 0.0,
                                           static_cast<double>(nmax)));
  cell.y = static_cast<coord_t>(std::clamp(std::floor(d2[1] / 2.0), 0.0,
                                           static_cast<double>(nmax)));
  cell.z = static_cast<coord_t>(std::clamp(std::floor(d2[2] / 2.0), 0.0,
                                           static_cast<double>(nmax)));
  const SfcKey key = octree::key_of(cell);
  auto it = std::upper_bound(
      combined_.begin(), combined_.end(), key,
      [](const SfcKey& k, const Octant& l) { return k < octree::key_of(l); });
  if (it == combined_.begin()) return false;
  --it;
  if (!(it->tree == cell.tree && (*it == cell || it->is_ancestor_of(cell))))
    return false;
  const std::size_t ci = static_cast<std::size_t>(it - combined_.begin());
  out.slot = combined_slot_[ci];
  const Octant& leaf = combined_[ci];
  const double h = static_cast<double>(octant_len(leaf.level));
  out.ref = {(d2[0] / 2.0 - leaf.x) / h, (d2[1] / 2.0 - leaf.y) / h,
             (d2[2] / 2.0 - leaf.z) / h};
  for (int d = 0; d < 3; ++d) {
    double& r = out.ref[static_cast<std::size_t>(d)];
    if (r < 1e-6) r = 0.0;
    if (r > 1.0 - 1e-6) r = 1.0;
  }
  return true;
}

double DgAdvection::evaluate(const Located& loc, std::span<const double> c,
                             std::span<const double> ghosts) const {
  const std::int64_t n3 = nodes_per_elem();
  const std::int64_t ne = num_local_elements();
  std::span<const double> vals =
      loc.slot < ne
          ? c.subspan(static_cast<std::size_t>(loc.slot * n3),
                      static_cast<std::size_t>(n3))
          : ghosts.subspan(static_cast<std::size_t>((loc.slot - ne) * n3),
                           static_cast<std::size_t>(n3));
  return eval_poly(kernel_.rule(), vals, loc.ref);
}

std::vector<double> DgAdvection::interpolate(
    const std::function<double(const std::array<double, 3>&)>& f) const {
  const std::int64_t n3 = nodes_per_elem();
  std::vector<double> c(static_cast<std::size_t>(num_local_elements() * n3));
  for (std::size_t i = 0; i < c.size(); ++i)
    c[i] = f({xyz_[3 * i], xyz_[3 * i + 1], xyz_[3 * i + 2]});
  return c;
}

std::array<double, 3> DgAdvection::node_xyz(std::int64_t e,
                                            std::int64_t n) const {
  const std::size_t b = static_cast<std::size_t>((e * nodes_per_elem() + n) * 3);
  return {xyz_[b], xyz_[b + 1], xyz_[b + 2]};
}

void DgAdvection::rhs(par::Comm& comm, std::span<const double> c, double t,
                      std::span<double> out) const {
  const std::vector<double> ghosts = exchange_ghost_values(comm, c);
  const std::int64_t ne = num_local_elements();
  const std::int64_t n3 = nodes_per_elem();
  const std::int64_t n1 = kernel_.n1d();
  const LglRule& rule = kernel_.rule();
  const double w0 = rule.weights.front();
  const double nn = static_cast<double>(coord_t{1} << kMaxLevel);

  std::vector<double> dx(static_cast<std::size_t>(n3)),
      dy(static_cast<std::size_t>(n3)), dz(static_cast<std::size_t>(n3));
  for (std::int64_t e = 0; e < ne; ++e) {
    const Octant& o = elements_[static_cast<std::size_t>(e)];
    const double h = static_cast<double>(octant_len(o.level));
    derivatives(c.subspan(static_cast<std::size_t>(e * n3),
                          static_cast<std::size_t>(n3)),
                dx, dy, dz);
    // Volume term: -u . grad c.
    for (std::int64_t nidx = 0; nidx < n3; ++nidx) {
      const std::size_t xb = static_cast<std::size_t>((e * n3 + nidx) * 3);
      const std::array<double, 3> x = {xyz_[xb], xyz_[xb + 1], xyz_[xb + 2]};
      const auto u = velocity_(x, t);
      const double* gi = dxidx_.data() + (e * n3 + nidx) * 9;
      double s = 0.0;
      const double dref[3] = {dx[static_cast<std::size_t>(nidx)],
                              dy[static_cast<std::size_t>(nidx)],
                              dz[static_cast<std::size_t>(nidx)]};
      for (int a = 0; a < 3; ++a) {
        const double ua =
            u[0] * gi[a * 3 + 0] + u[1] * gi[a * 3 + 1] + u[2] * gi[a * 3 + 2];
        s += ua * dref[a];
      }
      out[static_cast<std::size_t>(e * n3 + nidx)] = -s;
    }
    // Face terms: upwind penalty at inflow nodes.
    for (int f = 0; f < 6; ++f) {
      const int axis = f / 2, side = f % 2;
      Octant nb;
      const bool interior = conn_->neighbor_across(o, f, nb);
      for (std::int64_t b = 0; b < n1; ++b)
        for (std::int64_t a = 0; a < n1; ++a) {
          std::int64_t idx[3];
          idx[axis] = side ? n1 - 1 : 0;
          idx[(axis + 1) % 3] = a;
          idx[(axis + 2) % 3] = b;
          const std::int64_t nidx = (idx[2] * n1 + idx[1]) * n1 + idx[0];
          const std::size_t xb = static_cast<std::size_t>((e * n3 + nidx) * 3);
          const std::array<double, 3> x = {xyz_[xb], xyz_[xb + 1], xyz_[xb + 2]};
          const auto u = velocity_(x, t);
          const double* gi = dxidx_.data() + (e * n3 + nidx) * 9;
          const double ga[3] = {gi[axis * 3 + 0], gi[axis * 3 + 1],
                                gi[axis * 3 + 2]};
          const double glen =
              std::sqrt(ga[0] * ga[0] + ga[1] * ga[1] + ga[2] * ga[2]);
          const double sign = side ? 1.0 : -1.0;
          const double un =
              sign * (u[0] * ga[0] + u[1] * ga[1] + u[2] * ga[2]) / glen;
          if (un >= 0.0) continue;  // outflow: nothing to do
          const double cint = c[static_cast<std::size_t>(e * n3 + nidx)];
          double cext = 0.0;  // boundary inflow value
          if (interior) {
            const std::array<double, 3> ref = {
                (o.x + rule.nodes[static_cast<std::size_t>(idx[0])] * h),
                (o.y + rule.nodes[static_cast<std::size_t>(idx[1])] * h),
                (o.z + rule.nodes[static_cast<std::size_t>(idx[2])] * h)};
            std::array<double, 3> d2 = {2.0 * ref[0], 2.0 * ref[1],
                                        2.0 * ref[2]};
            d2[static_cast<std::size_t>(axis)] += sign * kNudge;
            Located loc;
            if (locate(o.tree, d2, loc))
              cext = evaluate(loc, c, ghosts);
            else
              cext = cint;  // cone point fallback: no jump
          }
          out[static_cast<std::size_t>(e * n3 + nidx)] +=
              (glen / w0) * un * (cint - cext);
        }
    }
    (void)nn;
  }
}

void DgAdvection::step(par::Comm& comm, std::span<double> c, double t,
                       double dt) const {
  std::vector<double> res(c.size(), 0.0), k(c.size());
  for (int s = 0; s < 5; ++s) {
    rhs(comm, c, t + kRkC[s] * dt, k);
    for (std::size_t i = 0; i < c.size(); ++i) {
      res[i] = kRkA[s] * res[i] + dt * k[i];
      c[i] += kRkB[s] * res[i];
    }
  }
}

double DgAdvection::stable_dt(par::Comm& comm, double t, double cfl) const {
  const std::int64_t ne = num_local_elements();
  const std::int64_t n3 = nodes_per_elem();
  double dt = 1e300;
  for (std::int64_t e = 0; e < ne; ++e) {
    double umax = 1e-12;
    for (std::int64_t nidx = 0; nidx < n3; ++nidx) {
      const std::size_t xb = static_cast<std::size_t>((e * n3 + nidx) * 3);
      const auto u = velocity_({xyz_[xb], xyz_[xb + 1], xyz_[xb + 2]}, t);
      umax = std::max(umax,
                      std::sqrt(u[0] * u[0] + u[1] * u[1] + u[2] * u[2]));
    }
    const double p1 = kernel_.order() + 1;
    dt = std::min(dt, hmin_[static_cast<std::size_t>(e)] / (umax * p1 * p1));
  }
  return cfl * comm.allreduce_min(dt);
}

double DgAdvection::integral(par::Comm& comm, std::span<const double> c) const {
  const std::int64_t ne = num_local_elements();
  const std::int64_t n1 = kernel_.n1d();
  const LglRule& rule = kernel_.rule();
  double s = 0.0;
  for (std::int64_t e = 0; e < ne; ++e)
    for (std::int64_t k = 0; k < n1; ++k)
      for (std::int64_t j = 0; j < n1; ++j)
        for (std::int64_t i = 0; i < n1; ++i) {
          const std::int64_t nidx = (k * n1 + j) * n1 + i;
          const double w = rule.weights[static_cast<std::size_t>(i)] *
                           rule.weights[static_cast<std::size_t>(j)] *
                           rule.weights[static_cast<std::size_t>(k)];
          s += w * detj_[static_cast<std::size_t>(e * nodes_per_elem() + nidx)] *
               c[static_cast<std::size_t>(e * nodes_per_elem() + nidx)];
        }
  return comm.allreduce_sum(s);
}

std::vector<double> DgAdvection::indicator(std::span<const double> c) const {
  const std::int64_t ne = num_local_elements();
  const std::int64_t n3 = nodes_per_elem();
  std::vector<double> eta(static_cast<std::size_t>(ne));
  std::vector<double> dx(static_cast<std::size_t>(n3)),
      dy(static_cast<std::size_t>(n3)), dz(static_cast<std::size_t>(n3));
  for (std::int64_t e = 0; e < ne; ++e) {
    kernel_.apply_tensor(c.subspan(static_cast<std::size_t>(e * n3),
                                   static_cast<std::size_t>(n3)),
                         dx, dy, dz);
    kernel_flops_ += kernel_.flops_tensor();
    double g2 = 0.0;
    for (std::int64_t nidx = 0; nidx < n3; ++nidx) {
      const double* gi = dxidx_.data() + (e * n3 + nidx) * 9;
      double gx = 0, gy = 0, gz = 0;
      const double dref[3] = {dx[static_cast<std::size_t>(nidx)],
                              dy[static_cast<std::size_t>(nidx)],
                              dz[static_cast<std::size_t>(nidx)]};
      for (int a = 0; a < 3; ++a) {
        gx += gi[a * 3 + 0] * dref[a];
        gy += gi[a * 3 + 1] * dref[a];
        gz += gi[a * 3 + 2] * dref[a];
      }
      g2 += gx * gx + gy * gy + gz * gz;
    }
    const double h = hmin_[static_cast<std::size_t>(e)];
    eta[static_cast<std::size_t>(e)] =
        std::pow(h, 1.5) * std::sqrt(g2 / static_cast<double>(n3));
  }
  return eta;
}

std::vector<double> dg_interpolate_element_values(
    int order, std::span<const Octant> old_leaves,
    std::span<const Octant> new_leaves, const Correspondence& corr,
    std::span<const double> old_vals) {
  const LglRule rule = lgl_rule(order);
  const std::int64_t n1 = order + 1;
  const std::int64_t n3 = n1 * n1 * n1;
  std::vector<double> out(new_leaves.size() * static_cast<std::size_t>(n3));
  for (std::size_t j = 0; j < new_leaves.size(); ++j) {
    const Correspondence::Entry& en = corr.entries[j];
    const Octant& nw = new_leaves[j];
    if (en.kind == Correspondence::Kind::kSame) {
      std::copy(old_vals.begin() + en.old_begin * n3,
                old_vals.begin() + (en.old_begin + 1) * n3,
                out.begin() + static_cast<std::ptrdiff_t>(j) * n3);
      continue;
    }
    for (std::int64_t k = 0; k < n1; ++k)
      for (std::int64_t jj = 0; jj < n1; ++jj)
        for (std::int64_t i = 0; i < n1; ++i) {
          const std::int64_t nidx = (k * n1 + jj) * n1 + i;
          const std::array<double, 3> xi = {
              rule.nodes[static_cast<std::size_t>(i)],
              rule.nodes[static_cast<std::size_t>(jj)],
              rule.nodes[static_cast<std::size_t>(k)]};
          double v;
          if (en.kind == Correspondence::Kind::kRefined) {
            const Octant& od = old_leaves[static_cast<std::size_t>(en.old_begin)];
            const double ho = static_cast<double>(octree::octant_len(od.level));
            const double hn = static_cast<double>(octree::octant_len(nw.level));
            const std::array<double, 3> r = {
                (nw.x - od.x + xi[0] * hn) / ho, (nw.y - od.y + xi[1] * hn) / ho,
                (nw.z - od.z + xi[2] * hn) / ho};
            v = eval_poly(rule,
                          old_vals.subspan(
                              static_cast<std::size_t>(en.old_begin * n3),
                              static_cast<std::size_t>(n3)),
                          r);
          } else {  // kCoarsened: evaluate the covering child's polynomial
            const int qx = xi[0] > 0.5 ? 1 : 0;
            const int qy = xi[1] > 0.5 ? 1 : 0;
            const int qz = xi[2] > 0.5 ? 1 : 0;
            const std::int64_t child = en.old_begin + (qz * 4 + qy * 2 + qx);
            const std::array<double, 3> r = {2.0 * xi[0] - qx, 2.0 * xi[1] - qy,
                                             2.0 * xi[2] - qz};
            v = eval_poly(rule,
                          old_vals.subspan(static_cast<std::size_t>(child * n3),
                                           static_cast<std::size_t>(n3)),
                          r);
          }
          out[j * static_cast<std::size_t>(n3) + static_cast<std::size_t>(nidx)] = v;
        }
  }
  return out;
}

}  // namespace alps::dg
