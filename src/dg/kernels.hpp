#pragma once
// Element derivative kernels (paper Sec. VII): the tensor-product
// application (6(p+1)^4 flops, asymptotically work-optimal) versus the
// matrix-based application (6(p+1)^6 flops but one large cache-friendly
// dgemm). Both compute the three reference-space derivatives of a nodal
// field on the (p+1)^3 tensor grid; flop counts are tracked so the
// benches can report sustained rates and the crossover point.

#include <cstdint>
#include <span>
#include <vector>

#include "dg/lgl.hpp"

namespace alps::dg {

class DerivativeKernel {
 public:
  explicit DerivativeKernel(int order);

  int order() const { return order_; }
  int n1d() const { return order_ + 1; }
  std::int64_t nodes_per_elem() const {
    return static_cast<std::int64_t>(n1d()) * n1d() * n1d();
  }

  /// Tensor-product application: out_d = (D x I x I etc.) u.
  /// `u` has nodes_per_elem() entries; each out_* the same.
  void apply_tensor(std::span<const double> u, std::span<double> ux,
                    std::span<double> uy, std::span<double> uz) const;

  /// Matrix-based application: three dense (p+1)^3 x (p+1)^3 operators,
  /// fused into one matrix of shape (3n x n) and applied with a blocked
  /// dgemm (the GotoBLAS stand-in).
  void apply_matrix(std::span<const double> u, std::span<double> ux,
                    std::span<double> uy, std::span<double> uz) const;

  /// Flops per element per application.
  std::int64_t flops_tensor() const {
    const std::int64_t n = n1d();
    return 6 * n * n * n * n;
  }
  std::int64_t flops_matrix() const {
    const std::int64_t n = n1d();
    return 6 * n * n * n * n * n * n;
  }

  const LglRule& rule() const { return rule_; }
  std::span<const double> d1() const { return d1_; }

 private:
  int order_;
  LglRule rule_;
  std::vector<double> d1_;   // (p+1)^2 1D differentiation matrix
  std::vector<double> big_;  // (3n x n) fused 3D derivative matrix
};

/// Blocked dense matrix-vector-ish product: y = A x with A (rows x cols)
/// row-major. Kept here so benches can time it in isolation.
void blocked_gemv(std::span<const double> a, std::int64_t rows,
                  std::int64_t cols, std::span<const double> x,
                  std::span<double> y);

}  // namespace alps::dg
