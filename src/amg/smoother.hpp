#pragma once
// Pointwise smoothers for the AMG hierarchy.

#include <span>

#include "la/csr.hpp"

namespace alps::amg {

/// One Gauss-Seidel sweep on A x = b, in place. forward=false sweeps rows
/// in reverse order (used to make the V-cycle symmetric).
void gauss_seidel(const la::Csr& a, std::span<const double> b,
                  std::span<double> x, bool forward);

/// One weighted-Jacobi sweep: x += w D^{-1} (b - A x).
void jacobi(const la::Csr& a, std::span<const double> diag,
            std::span<const double> b, std::span<double> x, double weight);

/// Spectral-radius estimate of D^{-1}A by power iteration with a
/// deterministic start vector. `diag` must be the diagonal of A.
double estimate_rho_dinv_a(const la::Csr& a, std::span<const double> diag,
                           int iterations);

/// Scratch for the Chebyshev smoother (reused across applications).
struct ChebyWork {
  std::vector<double> r, d, t;
};

/// One Chebyshev smoother application of the given degree on A x = b,
/// targeting the interval [eig_min, eig_max] of D^{-1}A (three-term
/// recurrence; `degree` matvecs). Symmetric in the D^{1/2} inner product,
/// so it preserves the SPD preconditioner property MINRES requires.
void chebyshev(const la::Csr& a, std::span<const double> diag,
               std::span<const double> b, std::span<double> x,
               double eig_min, double eig_max, int degree, ChebyWork& w);

}  // namespace alps::amg
