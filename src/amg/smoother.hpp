#pragma once
// Pointwise smoothers for the AMG hierarchy.

#include <span>

#include "la/csr.hpp"

namespace alps::amg {

/// One Gauss-Seidel sweep on A x = b, in place. forward=false sweeps rows
/// in reverse order (used to make the V-cycle symmetric).
void gauss_seidel(const la::Csr& a, std::span<const double> b,
                  std::span<double> x, bool forward);

/// One weighted-Jacobi sweep: x += w D^{-1} (b - A x).
void jacobi(const la::Csr& a, std::span<const double> diag,
            std::span<const double> b, std::span<double> x, double weight);

}  // namespace alps::amg
