#pragma once
// Algebraic multigrid, the BoomerAMG substitute (paper Sec. III): classical
// Ruge-Stüben setup — symmetric strength of connection, greedy C/F
// splitting, direct interpolation, Galerkin RAP coarse operators — and a
// V-cycle with symmetric Gauss-Seidel smoothing, used as the
// preconditioner for the variable-viscosity Poisson blocks of the Stokes
// preconditioner. One V-cycle per application, as in the paper.

#include <memory>
#include <vector>

#include "amg/smoother.hpp"
#include "la/csr.hpp"

namespace alps::amg {

/// Smoother choice for both the replicated and the distributed hierarchy.
/// Hybrid Gauss-Seidel is the sequential-sweep default; Chebyshev is a
/// polynomial in D^{-1}A whose only communication is the ghost-exchange
/// matvec, so a distributed application has no rank-order dependence.
enum class Smoother {
  kHybridGS,
  kChebyshev,
};

struct AmgOptions {
  double strength_theta = 0.25;  // classical strength threshold
  int max_levels = 25;
  std::int64_t coarse_size = 64;  // direct solve at or below this
  int pre_smooth = 1;
  int post_smooth = 1;
  Smoother smoother = Smoother::kHybridGS;
  /// Chebyshev polynomial degree (matvecs per smoother application).
  int cheby_degree = 3;
  /// Power-iteration steps for the spectral-radius estimate of D^{-1}A.
  int cheby_power_its = 10;
  /// Smoothing interval [cheby_lower * rho, cheby_upper * rho] around the
  /// estimated spectral radius rho; the upper safety factor absorbs the
  /// power-iteration underestimate.
  double cheby_lower = 0.30;
  double cheby_upper = 1.10;
  /// When set, solve() measures ||r_k|| / ||r_{k-1}|| per V-cycle (one
  /// extra fine-level matvec each) and keeps it in convergence_factors().
  bool track_convergence = false;
};

struct LevelStats {
  std::int64_t n = 0;
  std::int64_t nnz = 0;
};

class Amg {
 public:
  /// Setup phase: builds the grid hierarchy (the paper reuses one setup
  /// across the 16 time steps between mesh adaptations).
  Amg(la::Csr a, const AmgOptions& opt = {});

  /// One V-cycle applied to A x = b, overwriting x (initial guess zero is
  /// typical for preconditioner use).
  void vcycle(std::span<const double> b, std::span<double> x) const;

  /// Run `cycles` V-cycles, keeping x as the running iterate. With
  /// opt.track_convergence the per-cycle residual contraction factors are
  /// recorded (see convergence_factors).
  void solve(std::span<const double> b, std::span<double> x, int cycles) const;

  /// ||r_k|| / ||r_{k-1}|| for each V-cycle of the last tracked solve();
  /// empty unless opt.track_convergence was set.
  const std::vector<double>& convergence_factors() const { return factors_; }

  int num_levels() const { return static_cast<int>(stats_.size()); }
  const std::vector<LevelStats>& level_stats() const { return stats_; }
  /// Sum of nnz over all levels / nnz of the finest level.
  double operator_complexity() const;
  /// Sum of unknowns over all levels / unknowns on the finest level.
  double grid_complexity() const;

 private:
  struct Level {
    la::Csr a;
    la::Csr p;  // prolongation to this level from the next-coarser one
    la::Csr r;  // restriction (P^T)
    // Chebyshev smoother data (filled only with Smoother::kChebyshev).
    std::vector<double> diag;
    double eig_min = 0.0, eig_max = 0.0;
    mutable ChebyWork cheb;
  };

  void cycle(std::size_t lvl, std::span<const double> b,
             std::span<double> x) const;

  AmgOptions opt_;
  std::vector<Level> levels_;  // levels_[k].p/r connect level k and k+1
  std::unique_ptr<la::DenseLu> coarse_;
  la::Csr coarse_a_;
  std::vector<LevelStats> stats_;
  mutable std::vector<double> factors_;  // last tracked solve()
  // Scratch buffers per level (mutable: vcycle is logically const).
  mutable std::vector<std::vector<double>> scratch_r_, scratch_x_;
};

}  // namespace alps::amg
