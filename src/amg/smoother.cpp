#include "amg/smoother.hpp"

#include <vector>

namespace alps::amg {

void gauss_seidel(const la::Csr& a, std::span<const double> b,
                  std::span<double> x, bool forward) {
  const std::int64_t n = a.rows();
  const auto& rp = a.rowptr();
  const auto& ci = a.colidx();
  const auto& v = a.values();
  const auto update = [&](std::int64_t r) {
    double s = b[static_cast<std::size_t>(r)];
    double d = 1.0;
    for (std::int64_t k = rp[static_cast<std::size_t>(r)];
         k < rp[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = ci[static_cast<std::size_t>(k)];
      if (c == r)
        d = v[static_cast<std::size_t>(k)];
      else
        s -= v[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
    }
    if (d != 0.0) x[static_cast<std::size_t>(r)] = s / d;
  };
  if (forward)
    for (std::int64_t r = 0; r < n; ++r) update(r);
  else
    for (std::int64_t r = n - 1; r >= 0; --r) update(r);
}

void jacobi(const la::Csr& a, std::span<const double> diag,
            std::span<const double> b, std::span<double> x, double weight) {
  const std::int64_t n = a.rows();
  std::vector<double> ax(static_cast<std::size_t>(n));
  a.matvec(x, ax);
  for (std::int64_t r = 0; r < n; ++r) {
    const double d = diag[static_cast<std::size_t>(r)];
    if (d != 0.0)
      x[static_cast<std::size_t>(r)] +=
          weight * (b[static_cast<std::size_t>(r)] - ax[static_cast<std::size_t>(r)]) / d;
  }
}

}  // namespace alps::amg
