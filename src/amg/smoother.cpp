#include "amg/smoother.hpp"

#include <cmath>
#include <vector>

namespace alps::amg {

void gauss_seidel(const la::Csr& a, std::span<const double> b,
                  std::span<double> x, bool forward) {
  const std::int64_t n = a.rows();
  const auto& rp = a.rowptr();
  const auto& ci = a.colidx();
  const auto& v = a.values();
  const auto update = [&](std::int64_t r) {
    double s = b[static_cast<std::size_t>(r)];
    double d = 1.0;
    for (std::int64_t k = rp[static_cast<std::size_t>(r)];
         k < rp[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = ci[static_cast<std::size_t>(k)];
      if (c == r)
        d = v[static_cast<std::size_t>(k)];
      else
        s -= v[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
    }
    if (d != 0.0) x[static_cast<std::size_t>(r)] = s / d;
  };
  if (forward)
    for (std::int64_t r = 0; r < n; ++r) update(r);
  else
    for (std::int64_t r = n - 1; r >= 0; --r) update(r);
}

void jacobi(const la::Csr& a, std::span<const double> diag,
            std::span<const double> b, std::span<double> x, double weight) {
  const std::int64_t n = a.rows();
  std::vector<double> ax(static_cast<std::size_t>(n));
  a.matvec(x, ax);
  for (std::int64_t r = 0; r < n; ++r) {
    const double d = diag[static_cast<std::size_t>(r)];
    if (d != 0.0)
      x[static_cast<std::size_t>(r)] +=
          weight * (b[static_cast<std::size_t>(r)] - ax[static_cast<std::size_t>(r)]) / d;
  }
}

double estimate_rho_dinv_a(const la::Csr& a, std::span<const double> diag,
                           int iterations) {
  const std::size_t n = static_cast<std::size_t>(a.rows());
  if (n == 0) return 1.0;
  // Deterministic start with no special alignment to smooth modes.
  std::vector<double> v(n), w(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i));
  double rho = 1.0;
  for (int it = 0; it < iterations; ++it) {
    a.matvec(v, w);
    double nrm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = diag[i];
      w[i] = d != 0.0 ? w[i] / d : w[i];
      nrm2 += w[i] * w[i];
    }
    const double nrm = std::sqrt(nrm2);
    if (nrm == 0.0) return 1.0;
    rho = nrm;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nrm;
  }
  return rho;
}

void chebyshev(const la::Csr& a, std::span<const double> diag,
               std::span<const double> b, std::span<double> x,
               double eig_min, double eig_max, int degree, ChebyWork& w) {
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const double theta = 0.5 * (eig_max + eig_min);
  const double delta = 0.5 * (eig_max - eig_min);
  if (n == 0 || theta <= 0.0 || delta <= 0.0 || degree < 1) return;
  w.r.resize(n);
  w.d.resize(n);
  w.t.resize(n);
  a.matvec(x, w.r);
  for (std::size_t i = 0; i < n; ++i) w.r[i] = b[i] - w.r[i];
  const double sigma = theta / delta;
  double rho_prev = 1.0 / sigma;
  for (std::size_t i = 0; i < n; ++i)
    w.d[i] = (diag[i] != 0.0 ? w.r[i] / diag[i] : w.r[i]) / theta;
  for (int k = 1; k <= degree; ++k) {
    for (std::size_t i = 0; i < n; ++i) x[i] += w.d[i];
    if (k == degree) break;
    a.matvec(w.d, w.t);
    for (std::size_t i = 0; i < n; ++i) w.r[i] -= w.t[i];
    const double rho = 1.0 / (2.0 * sigma - rho_prev);
    for (std::size_t i = 0; i < n; ++i)
      w.d[i] = rho * rho_prev * w.d[i] +
               2.0 * rho / delta * (diag[i] != 0.0 ? w.r[i] / diag[i] : w.r[i]);
    rho_prev = rho;
  }
}

}  // namespace alps::amg
