#pragma once
// Internal pieces of classical Ruge-Stüben coarsening shared by the
// replicated (amg.cpp) and distributed (dist_amg.cpp) hierarchies. The
// distributed setup runs the same greedy splitting on each rank's owned
// subgraph (hypre-style per-processor coarsening), so at P = 1 both
// hierarchies coincide exactly.

#include <cstdint>
#include <vector>

namespace alps::amg::detail {

enum class CF : std::int8_t { kUndecided, kCoarse, kFine };

/// Ruge-Stüben first-pass greedy C/F splitting over the strength graph
/// `strong` (strong[i] = nodes i strongly depends on), followed by a
/// second pass promoting F points without a strong C neighbor.
std::vector<CF> split_cf(const std::vector<std::vector<std::int64_t>>& strong);

}  // namespace alps::amg::detail
