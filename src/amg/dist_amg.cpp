#include "amg/dist_amg.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "amg/classical.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

namespace alps::amg {

namespace {

using detail::CF;

}  // namespace

DistAmg::DistAmg(par::Comm& comm, la::DistCsr a, const AmgOptions& opt)
    : opt_(opt) {
  // Trace-only span: the phase-accumulating "amg.setup" span is owned by
  // the caller (StokesSolver), which may build several hierarchies.
  OBS_SPAN("amg.dist_setup");
  la::DistCsr cur = std::move(a);
  for (int lvl = 0; lvl < opt_.max_levels; ++lvl) {
    const std::int64_t n_global = cur.global_rows();
    stats_.push_back(LevelStats{n_global, comm.allreduce_sum(cur.local_nnz())});
    local_nnz_per_level_.push_back(cur.local_nnz());
    obs::counter_add(
        obs::counter(("amg.level" + std::to_string(lvl) + ".nnz").c_str()),
        static_cast<std::uint64_t>(cur.local_nnz()));
    if (n_global <= opt_.coarse_size) break;

    const std::int64_t n = cur.owned_rows();
    const la::Csr& D = cur.diag();
    const la::Csr& O = cur.offd();

    // Strength of connection over owned rows, classical criterion
    // -a_ij >= theta * max_k(-a_ik) with ghost columns included.
    std::vector<std::vector<std::int64_t>> strong_diag(
        static_cast<std::size_t>(n));
    std::vector<std::vector<std::int64_t>> strong_offd(
        static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      double maxneg = 0.0;
      for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
           k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
        if (D.colidx()[static_cast<std::size_t>(k)] != i)
          maxneg = std::max(maxneg, -D.values()[static_cast<std::size_t>(k)]);
      for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
           k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
        maxneg = std::max(maxneg, -O.values()[static_cast<std::size_t>(k)]);
      if (maxneg <= 0.0) continue;
      const double cut = opt_.strength_theta * maxneg;
      for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
           k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
        if (j != i && -D.values()[static_cast<std::size_t>(k)] >= cut)
          strong_diag[static_cast<std::size_t>(i)].push_back(j);
      }
      for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
           k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
        if (-O.values()[static_cast<std::size_t>(k)] >= cut)
          strong_offd[static_cast<std::size_t>(i)].push_back(
              O.colidx()[static_cast<std::size_t>(k)]);
    }

    // Per-processor C/F split on the owned subgraph (identical to the
    // replicated hierarchy at P = 1).
    const std::vector<CF> cf = detail::split_cf(strong_diag);

    // Coarse numbering: owned C points are contiguous per rank.
    std::vector<std::int64_t> cidx(static_cast<std::size_t>(n), -1);
    std::int64_t nc = 0;
    for (std::int64_t i = 0; i < n; ++i)
      if (cf[static_cast<std::size_t>(i)] == CF::kCoarse)
        cidx[static_cast<std::size_t>(i)] = nc++;
    const std::vector<std::int64_t> nc_all = comm.allgather(nc);
    std::vector<std::int64_t> coarse_offsets(nc_all.size() + 1, 0);
    for (std::size_t r = 0; r < nc_all.size(); ++r)
      coarse_offsets[r + 1] = coarse_offsets[r] + nc_all[r];
    const std::int64_t coarse_lo =
        coarse_offsets[static_cast<std::size_t>(comm.rank())];
    const std::int64_t nc_global = coarse_offsets.back();
    if (nc_global == 0 || nc_global >= n_global) break;  // no coarsening

    // Ghost coarse ids (-1 for ghost F points) through the halo plan.
    std::vector<std::int64_t> owned_cgid(static_cast<std::size_t>(n), -1);
    for (std::int64_t i = 0; i < n; ++i)
      if (cidx[static_cast<std::size_t>(i)] >= 0)
        owned_cgid[static_cast<std::size_t>(i)] =
            coarse_lo + cidx[static_cast<std::size_t>(i)];
    std::vector<std::int64_t> ghost_cgid(cur.ghost_gids().size(), -1);
    cur.plan().forward<std::int64_t>(comm, owned_cgid, ghost_cgid);

    // Direct interpolation (Stüben): C points inject; F points take
    // w_ij = -alpha a_ij / a_ii over strong C neighbors — owned or ghost.
    std::vector<la::Triplet> pt;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t gid_i = cur.row_begin() + i;
      if (cf[static_cast<std::size_t>(i)] == CF::kCoarse) {
        pt.push_back({gid_i, coarse_lo + cidx[static_cast<std::size_t>(i)], 1.0});
        continue;
      }
      double diag = 0.0, sum_all = 0.0, sum_c = 0.0;
      std::vector<std::pair<std::int64_t, double>> cweights;
      const auto& sd = strong_diag[static_cast<std::size_t>(i)];
      const auto& so = strong_offd[static_cast<std::size_t>(i)];
      for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
           k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
        const double av = D.values()[static_cast<std::size_t>(k)];
        if (j == i) {
          diag = av;
          continue;
        }
        sum_all += av;
        if (cf[static_cast<std::size_t>(j)] == CF::kCoarse &&
            std::find(sd.begin(), sd.end(), j) != sd.end()) {
          sum_c += av;
          cweights.emplace_back(
              coarse_lo + cidx[static_cast<std::size_t>(j)], av);
        }
      }
      for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
           k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t g = O.colidx()[static_cast<std::size_t>(k)];
        const double av = O.values()[static_cast<std::size_t>(k)];
        sum_all += av;
        if (ghost_cgid[static_cast<std::size_t>(g)] >= 0 &&
            std::find(so.begin(), so.end(), g) != so.end()) {
          sum_c += av;
          cweights.emplace_back(ghost_cgid[static_cast<std::size_t>(g)], av);
        }
      }
      if (cweights.empty() || diag == 0.0 || sum_c == 0.0)
        continue;  // isolated F point: relies on smoothing only
      const double alpha = sum_all / sum_c;
      for (const auto& [jc, av] : cweights)
        pt.push_back({gid_i, jc, -alpha * av / diag});
    }
    la::DistCsr p = la::DistCsr::from_triplets(comm, cur.row_offsets(),
                                               coarse_offsets, std::move(pt));

    // Galerkin product A_c = P^T A P from owned rows of A and P plus the
    // interpolation rows of ghost fine points, fetched from their owners.
    std::vector<std::int64_t> prp, pcg;
    std::vector<double> pvv;
    p.fetch_rows(comm, cur.ghost_gids(), prp, pcg, pvv);
    // Iterate a locally-owned row of P with global coarse column ids.
    const auto for_each_p_entry = [&p](std::int64_t i, auto&& fn) {
      const la::Csr& pd = p.diag();
      const la::Csr& po = p.offd();
      for (std::int64_t k = pd.rowptr()[static_cast<std::size_t>(i)];
           k < pd.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
        fn(p.col_begin() + pd.colidx()[static_cast<std::size_t>(k)],
           pd.values()[static_cast<std::size_t>(k)]);
      for (std::int64_t k = po.rowptr()[static_cast<std::size_t>(i)];
           k < po.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
        fn(p.ghost_gids()[static_cast<std::size_t>(
               po.colidx()[static_cast<std::size_t>(k)])],
           po.values()[static_cast<std::size_t>(k)]);
    };
    std::vector<la::Triplet> act;
    std::unordered_map<std::int64_t, double> ap;
    for (std::int64_t i = 0; i < n; ++i) {
      ap.clear();
      for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
           k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
        const double av = D.values()[static_cast<std::size_t>(k)];
        for_each_p_entry(j, [&](std::int64_t jc, double pv) { ap[jc] += av * pv; });
      }
      for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
           k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t g = O.colidx()[static_cast<std::size_t>(k)];
        const double av = O.values()[static_cast<std::size_t>(k)];
        for (std::int64_t kk = prp[static_cast<std::size_t>(g)];
             kk < prp[static_cast<std::size_t>(g) + 1]; ++kk)
          ap[pcg[static_cast<std::size_t>(kk)]] +=
              av * pvv[static_cast<std::size_t>(kk)];
      }
      for_each_p_entry(i, [&](std::int64_t kc, double w) {
        for (const auto& [jc, av] : ap) act.push_back({kc, jc, w * av});
      });
    }
    la::DistCsr ac = la::DistCsr::from_triplets(comm, coarse_offsets,
                                                coarse_offsets, std::move(act));
    levels_.push_back(Level{std::move(cur), std::move(p), {}, {}, {}, {}});
    cur = std::move(ac);
  }

  // Replicate the (tiny) coarsest operator for the direct solve.
  coarse_dist_ = std::move(cur);
  coarse_a_ = coarse_dist_.replicate(comm);
  coarse_ = std::make_unique<la::DenseLu>(coarse_a_);
  coarse_b_.resize(static_cast<std::size_t>(coarse_a_.rows()));
  coarse_x_.resize(static_cast<std::size_t>(coarse_a_.rows()));
  for (Level& L : levels_) {
    L.res.resize(static_cast<std::size_t>(L.a.owned_rows()));
    L.bc.resize(static_cast<std::size_t>(L.p.owned_cols()));
    L.xc.resize(static_cast<std::size_t>(L.p.owned_cols()));
    L.ghost.resize(L.a.plan().num_ghosts());
  }
}

void DistAmg::hybrid_gauss_seidel(par::Comm& comm, const Level& L,
                                  std::span<const double> b,
                                  std::span<double> x, bool forward) const {
  // Gauss-Seidel on the owned-column block; ghost contributions are
  // frozen at the sweep-start halo values (Jacobi across ranks).
  L.a.plan().forward<double>(comm, x, L.ghost);
  const la::Csr& D = L.a.diag();
  const la::Csr& O = L.a.offd();
  const std::int64_t nrows = D.rows();
  const auto update = [&](std::int64_t r) {
    double s = b[static_cast<std::size_t>(r)];
    double d = 1.0;
    for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(r)];
         k < D.rowptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = D.colidx()[static_cast<std::size_t>(k)];
      if (c == r)
        d = D.values()[static_cast<std::size_t>(k)];
      else
        s -= D.values()[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
    }
    for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(r)];
         k < O.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      s -= O.values()[static_cast<std::size_t>(k)] *
           L.ghost[static_cast<std::size_t>(
               O.colidx()[static_cast<std::size_t>(k)])];
    if (d != 0.0) x[static_cast<std::size_t>(r)] = s / d;
  };
  if (forward)
    for (std::int64_t r = 0; r < nrows; ++r) update(r);
  else
    for (std::int64_t r = nrows - 1; r >= 0; --r) update(r);
}

void DistAmg::cycle(par::Comm& comm, std::size_t lvl,
                    std::span<const double> b, std::span<double> x) const {
  if (lvl == levels_.size()) {
    // Replicated coarsest level: gather the rank-contiguous owned slices
    // (O(coarse_size), constant in N and P) and solve with dense LU.
    const std::vector<double> owned(
        b.begin(),
        b.begin() + static_cast<std::ptrdiff_t>(coarse_dist_.owned_rows()));
    coarse_b_ = comm.allgatherv(owned);
    coarse_->solve(coarse_b_, coarse_x_);
    for (std::int64_t i = 0; i < coarse_dist_.owned_rows(); ++i)
      x[static_cast<std::size_t>(i)] =
          coarse_x_[static_cast<std::size_t>(coarse_dist_.row_begin() + i)];
    return;
  }
  const Level& L = levels_[lvl];
  for (int s = 0; s < opt_.pre_smooth; ++s)
    hybrid_gauss_seidel(comm, L, b, x, /*forward=*/true);
  // Residual, restriction, coarse correction.
  L.a.matvec(comm, x, L.res);
  for (std::size_t i = 0; i < L.res.size(); ++i) L.res[i] = b[i] - L.res[i];
  L.p.matvec_transpose(comm, L.res, L.bc);
  std::fill(L.xc.begin(), L.xc.end(), 0.0);
  cycle(comm, lvl + 1, L.bc, L.xc);
  // Prolongate (reusing the residual buffer) and correct.
  L.p.matvec(comm, L.xc, L.res);
  for (std::size_t i = 0; i < L.res.size(); ++i) x[i] += L.res[i];
  for (int s = 0; s < opt_.post_smooth; ++s)
    hybrid_gauss_seidel(comm, L, b, x, /*forward=*/false);
}

void DistAmg::vcycle(par::Comm& comm, std::span<const double> b,
                     std::span<double> x) const {
  OBS_SPAN("amg.vcycle");
  obs::counter_add(obs::wellknown::amg_vcycles(), 1);
  cycle(comm, 0, b, x);
}

void DistAmg::solve(par::Comm& comm, std::span<const double> b,
                    std::span<double> x, int cycles) const {
  if (!opt_.track_convergence) {
    for (int c = 0; c < cycles; ++c) vcycle(comm, b, x);
    return;
  }
  const la::DistCsr& a = finest();
  std::vector<double> res(static_cast<std::size_t>(a.owned_rows()));
  const auto residual_norm = [&] {
    a.matvec(comm, x, res);
    double local = 0.0;
    for (std::size_t i = 0; i < res.size(); ++i) {
      const double r = b[i] - res[i];
      local += r * r;
    }
    return std::sqrt(comm.allreduce_sum(local));
  };
  factors_.clear();
  double prev = residual_norm();
  for (int c = 0; c < cycles; ++c) {
    vcycle(comm, b, x);
    const double cur = residual_norm();
    factors_.push_back(prev > 0.0 ? cur / prev : 0.0);
    prev = cur;
  }
  if (comm.rank() == 0) obs::record_history("amg.solve.factors", factors_);
}

std::int64_t DistAmg::local_nnz() const {
  std::int64_t total = coarse_a_.nnz();  // replicated coarsest copy
  for (std::int64_t nnz : local_nnz_per_level_) total += nnz;
  return total;
}

double DistAmg::operator_complexity() const {
  double total = 0.0;
  for (const LevelStats& s : stats_) total += static_cast<double>(s.nnz);
  return total / static_cast<double>(stats_.front().nnz);
}

double DistAmg::grid_complexity() const {
  double total = 0.0;
  for (const LevelStats& s : stats_) total += static_cast<double>(s.n);
  return total / static_cast<double>(stats_.front().n);
}

}  // namespace alps::amg
