#include "amg/dist_amg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "amg/classical.hpp"
#include "obs/histogram.hpp"
#include "obs/hwcounters.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

namespace alps::amg {

namespace {

using detail::CF;

/// Value-array position of (local row `kr`, global column `gid`) in the
/// owned-row matrix `ac`, encoded as diag index (>= 0) or offd index
/// (-pos-1). Both blocks keep sorted columns per row (from_triplets).
std::int64_t ac_position(const la::DistCsr& ac, std::int64_t kr,
                         std::int64_t gid) {
  if (gid >= ac.col_begin() && gid < ac.col_end()) {
    const la::Csr& d = ac.diag();
    const std::int64_t c = gid - ac.col_begin();
    const auto& ci = d.colidx();
    const auto lo = ci.begin() + d.rowptr()[static_cast<std::size_t>(kr)];
    const auto hi = ci.begin() + d.rowptr()[static_cast<std::size_t>(kr) + 1];
    const auto it = std::lower_bound(lo, hi, c);
    if (it == hi || *it != c)
      throw std::logic_error("DistAmg: coarse diag entry missing");
    return it - ci.begin();
  }
  const auto& gg = ac.ghost_gids();
  const auto git = std::lower_bound(gg.begin(), gg.end(), gid);
  if (git == gg.end() || *git != gid)
    throw std::logic_error("DistAmg: coarse ghost column missing");
  const std::int64_t c = git - gg.begin();
  const la::Csr& o = ac.offd();
  const auto& ci = o.colidx();
  const auto lo = ci.begin() + o.rowptr()[static_cast<std::size_t>(kr)];
  const auto hi = ci.begin() + o.rowptr()[static_cast<std::size_t>(kr) + 1];
  const auto it = std::lower_bound(lo, hi, c);
  if (it == hi || *it != c)
    throw std::logic_error("DistAmg: coarse offd entry missing");
  return -(it - ci.begin()) - 1;
}

/// Spectral-radius estimate of D^{-1}A by power iteration; one matvec and
/// one allreduce per step, deterministic start vector. Collective.
double estimate_rho_dist(par::Comm& comm, const la::DistCsr& a,
                         std::span<const double> diag, int iterations) {
  const std::size_t n = static_cast<std::size_t>(a.owned_rows());
  std::vector<double> v(n), w(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 1.0 + 0.5 * std::sin(static_cast<double>(a.row_begin() +
                                                    static_cast<std::int64_t>(i)));
  double rho = 1.0;
  for (int it = 0; it < iterations; ++it) {
    a.matvec(comm, v, w);
    double local = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = diag[i];
      w[i] = d != 0.0 ? w[i] / d : w[i];
      local += w[i] * w[i];
    }
    const double nrm = std::sqrt(comm.allreduce_sum(local));
    if (nrm == 0.0) return 1.0;
    rho = nrm;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nrm;
  }
  return rho;
}

}  // namespace

// ---- setup ----------------------------------------------------------------

DistAmg::DistAmg(par::Comm& comm, la::DistCsr a, const AmgOptions& opt)
    : opt_(opt) {
  // Trace-only span: the phase-accumulating "amg.setup" span is owned by
  // the caller (StokesSolver), which may build several hierarchies. The
  // amg.setup.* sub-phases below attribute the setup stages separately.
  OBS_SPAN("amg.dist_setup");
  la::DistCsr cur = std::move(a);
  for (int lvl = 0; lvl < opt_.max_levels; ++lvl) {
    const std::int64_t n_global = cur.global_rows();
    stats_.push_back(LevelStats{n_global, comm.allreduce_sum(cur.local_nnz())});
    local_nnz_per_level_.push_back(cur.local_nnz());
    obs::counter_add(
        obs::counter(("amg.level" + std::to_string(lvl) + ".nnz").c_str()),
        static_cast<std::uint64_t>(cur.local_nnz()));
    if (n_global <= opt_.coarse_size) break;

    const std::int64_t n = cur.owned_rows();
    const la::Csr& D = cur.diag();
    const la::Csr& O = cur.offd();

    // Strength of connection over owned rows, classical criterion
    // -a_ij >= theta * max_k(-a_ik) with ghost columns included.
    std::vector<std::vector<std::int64_t>> strong_diag(
        static_cast<std::size_t>(n));
    std::vector<std::vector<std::int64_t>> strong_offd(
        static_cast<std::size_t>(n));
    {
      OBS_PHASE_SPAN("amg.setup.strength");
      for (std::int64_t i = 0; i < n; ++i) {
        double maxneg = 0.0;
        for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
             k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
          if (D.colidx()[static_cast<std::size_t>(k)] != i)
            maxneg = std::max(maxneg, -D.values()[static_cast<std::size_t>(k)]);
        for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
             k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
          maxneg = std::max(maxneg, -O.values()[static_cast<std::size_t>(k)]);
        if (maxneg <= 0.0) continue;
        const double cut = opt_.strength_theta * maxneg;
        for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
             k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
          const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
          if (j != i && -D.values()[static_cast<std::size_t>(k)] >= cut)
            strong_diag[static_cast<std::size_t>(i)].push_back(j);
        }
        for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
             k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k)
          if (-O.values()[static_cast<std::size_t>(k)] >= cut)
            strong_offd[static_cast<std::size_t>(i)].push_back(
                O.colidx()[static_cast<std::size_t>(k)]);
      }
    }

    // Per-processor C/F split on the owned subgraph (identical to the
    // replicated hierarchy at P = 1), plus the global coarse numbering.
    std::vector<CF> cf;
    std::vector<std::int64_t> cidx(static_cast<std::size_t>(n), -1);
    std::vector<std::int64_t> coarse_offsets;
    std::int64_t coarse_lo = 0, nc_global = 0;
    {
      OBS_PHASE_SPAN("amg.setup.cfsplit");
      cf = detail::split_cf(strong_diag);
      std::int64_t nc = 0;
      for (std::int64_t i = 0; i < n; ++i)
        if (cf[static_cast<std::size_t>(i)] == CF::kCoarse)
          cidx[static_cast<std::size_t>(i)] = nc++;
      const std::vector<std::int64_t> nc_all = comm.allgather(nc);
      coarse_offsets.assign(nc_all.size() + 1, 0);
      for (std::size_t r = 0; r < nc_all.size(); ++r)
        coarse_offsets[r + 1] = coarse_offsets[r] + nc_all[r];
      coarse_lo = coarse_offsets[static_cast<std::size_t>(comm.rank())];
      nc_global = coarse_offsets.back();
    }
    if (nc_global == 0 || nc_global >= n_global) break;  // no coarsening

    // Direct interpolation (Stüben): C points inject; F points take
    // w_ij = -alpha a_ij / a_ii over strong C neighbors — owned or ghost.
    // Strong-neighbor membership is tested through marks stamped with the
    // current row (O(1) instead of a scan of the strong list).
    la::DistCsr p;
    {
      OBS_PHASE_SPAN("amg.setup.interp");
      // Ghost coarse ids (-1 for ghost F points) through the halo plan.
      std::vector<std::int64_t> owned_cgid(static_cast<std::size_t>(n), -1);
      for (std::int64_t i = 0; i < n; ++i)
        if (cidx[static_cast<std::size_t>(i)] >= 0)
          owned_cgid[static_cast<std::size_t>(i)] =
              coarse_lo + cidx[static_cast<std::size_t>(i)];
      std::vector<std::int64_t> ghost_cgid(cur.ghost_gids().size(), -1);
      cur.plan().forward<std::int64_t>(comm, owned_cgid, ghost_cgid);

      std::vector<std::int64_t> mark_diag(static_cast<std::size_t>(n), -1);
      std::vector<std::int64_t> mark_offd(cur.ghost_gids().size(), -1);
      std::vector<la::Triplet> pt;
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t gid_i = cur.row_begin() + i;
        if (cf[static_cast<std::size_t>(i)] == CF::kCoarse) {
          pt.push_back(
              {gid_i, coarse_lo + cidx[static_cast<std::size_t>(i)], 1.0});
          continue;
        }
        for (std::int64_t j : strong_diag[static_cast<std::size_t>(i)])
          mark_diag[static_cast<std::size_t>(j)] = i;
        for (std::int64_t g : strong_offd[static_cast<std::size_t>(i)])
          mark_offd[static_cast<std::size_t>(g)] = i;
        double diag = 0.0, sum_all = 0.0, sum_c = 0.0;
        std::vector<std::pair<std::int64_t, double>> cweights;
        for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
             k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
          const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
          const double av = D.values()[static_cast<std::size_t>(k)];
          if (j == i) {
            diag = av;
            continue;
          }
          sum_all += av;
          if (cf[static_cast<std::size_t>(j)] == CF::kCoarse &&
              mark_diag[static_cast<std::size_t>(j)] == i) {
            sum_c += av;
            cweights.emplace_back(
                coarse_lo + cidx[static_cast<std::size_t>(j)], av);
          }
        }
        for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
             k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
          const std::int64_t g = O.colidx()[static_cast<std::size_t>(k)];
          const double av = O.values()[static_cast<std::size_t>(k)];
          sum_all += av;
          if (ghost_cgid[static_cast<std::size_t>(g)] >= 0 &&
              mark_offd[static_cast<std::size_t>(g)] == i) {
            sum_c += av;
            cweights.emplace_back(ghost_cgid[static_cast<std::size_t>(g)], av);
          }
        }
        if (cweights.empty() || diag == 0.0 || sum_c == 0.0)
          continue;  // isolated F point: relies on smoothing only
        const double alpha = sum_all / sum_c;
        for (const auto& [jc, av] : cweights)
          pt.push_back({gid_i, jc, -alpha * av / diag});
      }
      p = la::DistCsr::from_triplets(comm, cur.row_offsets(), coarse_offsets,
                                     std::move(pt));
    }
    obs::counter_add(
        obs::counter(("amg.level" + std::to_string(lvl) + ".p_nnz").c_str()),
        static_cast<std::uint64_t>(p.local_nnz()));

    // Galerkin product A_c = P^T A P: symbolic pass (pattern + cached
    // RapPlan) followed by the numeric pass shared with refresh_numeric.
    Level L;
    L.a = std::move(cur);
    L.p = std::move(p);
    la::DistCsr ac;
    {
      OBS_PHASE_SPAN("amg.setup.galerkin");
      build_rap(comm, L.a, L.p, coarse_offsets, L.rap, ac);
    }
    levels_.push_back(std::move(L));
    cur = std::move(ac);
  }

  coarse_dist_ = std::move(cur);
  for (Level& L : levels_) {
    L.res.resize(static_cast<std::size_t>(L.a.owned_rows()));
    L.bc.resize(static_cast<std::size_t>(L.p.owned_cols()));
    L.xc.resize(static_cast<std::size_t>(L.p.owned_cols()));
    L.ghost.resize(L.a.plan().num_ghosts());
  }
  // Replicates the (tiny) coarsest operator for the direct solve and
  // estimates the Chebyshev intervals; shared with refresh_numeric.
  finalize_values(comm);
}

void DistAmg::build_rap(par::Comm& comm, const la::DistCsr& a,
                        const la::DistCsr& p,
                        const std::vector<std::int64_t>& coarse_offsets,
                        RapPlan& plan, la::DistCsr& ac) const {
  const std::int64_t n = a.owned_rows();
  const la::Csr& D = a.diag();
  const la::Csr& O = a.offd();
  const la::Csr& PD = p.diag();
  const la::Csr& PO = p.offd();
  const std::int64_t coarse_lo =
      coarse_offsets[static_cast<std::size_t>(comm.rank())];

  // Interpolation rows of ghost fine points, fetched once from their
  // owners (P is frozen across numeric refreshes, so never re-fetched).
  std::vector<std::int64_t> frp, fcg;
  std::vector<double> fvv;
  p.fetch_rows(comm, a.ghost_gids(), frp, fcg, fvv);

  // Compact coarse-column space: every coarse gid reachable from this
  // rank's rows of A P.
  std::vector<std::int64_t>& cc = plan.ccol_gids;
  cc.clear();
  cc.reserve(static_cast<std::size_t>(PD.nnz()) + p.ghost_gids().size() +
             fcg.size());
  for (std::int64_t c : PD.colidx()) cc.push_back(p.col_begin() + c);
  cc.insert(cc.end(), p.ghost_gids().begin(), p.ghost_gids().end());
  cc.insert(cc.end(), fcg.begin(), fcg.end());
  std::sort(cc.begin(), cc.end());
  cc.erase(std::unique(cc.begin(), cc.end()), cc.end());
  const std::size_t m = cc.size();
  const auto compact = [&cc](std::int64_t gid) {
    return static_cast<std::int32_t>(
        std::lower_bound(cc.begin(), cc.end(), gid) - cc.begin());
  };

  // P rows over compact columns: owned fine rows (diag + offd merged),
  // then the fetched ghost fine rows.
  plan.prow_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  plan.prow_col.clear();
  plan.prow_val.clear();
  plan.prow_col.reserve(static_cast<std::size_t>(p.local_nnz()));
  plan.prow_val.reserve(static_cast<std::size_t>(p.local_nnz()));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = PD.rowptr()[static_cast<std::size_t>(i)];
         k < PD.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      plan.prow_col.push_back(compact(
          p.col_begin() + PD.colidx()[static_cast<std::size_t>(k)]));
      plan.prow_val.push_back(PD.values()[static_cast<std::size_t>(k)]);
    }
    for (std::int64_t k = PO.rowptr()[static_cast<std::size_t>(i)];
         k < PO.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      plan.prow_col.push_back(compact(p.ghost_gids()[static_cast<std::size_t>(
          PO.colidx()[static_cast<std::size_t>(k)])]));
      plan.prow_val.push_back(PO.values()[static_cast<std::size_t>(k)]);
    }
    plan.prow_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(plan.prow_col.size());
  }
  plan.gprow_ptr.assign(frp.begin(), frp.end());
  plan.gprow_col.resize(fcg.size());
  plan.gprow_val.assign(fvv.begin(), fvv.end());
  for (std::size_t k = 0; k < fcg.size(); ++k)
    plan.gprow_col[k] = compact(fcg[k]);

  // Symbolic A P: union of the P rows of each A-row's columns, via marks.
  std::vector<std::int64_t> mark(m, -1);
  plan.ap_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  plan.ap_col.clear();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
         k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
      for (std::int64_t t = plan.prow_ptr[static_cast<std::size_t>(j)];
           t < plan.prow_ptr[static_cast<std::size_t>(j) + 1]; ++t) {
        const std::int32_t c = plan.prow_col[static_cast<std::size_t>(t)];
        if (mark[static_cast<std::size_t>(c)] != i) {
          mark[static_cast<std::size_t>(c)] = i;
          plan.ap_col.push_back(c);
        }
      }
    }
    for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
         k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t g = O.colidx()[static_cast<std::size_t>(k)];
      for (std::int64_t t = plan.gprow_ptr[static_cast<std::size_t>(g)];
           t < plan.gprow_ptr[static_cast<std::size_t>(g) + 1]; ++t) {
        const std::int32_t c = plan.gprow_col[static_cast<std::size_t>(t)];
        if (mark[static_cast<std::size_t>(c)] != i) {
          mark[static_cast<std::size_t>(c)] = i;
          plan.ap_col.push_back(c);
        }
      }
    }
    plan.ap_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(plan.ap_col.size());
  }
  plan.ap_val.assign(plan.ap_col.size(), 0.0);

  // Local transposes of P: owned coarse rows (pt) and ghost coarse
  // columns whose coarse rows live on other ranks (gpt).
  const std::int64_t nc_own = p.owned_cols();
  const std::size_t ngc = p.ghost_gids().size();
  plan.pt_ptr.assign(static_cast<std::size_t>(nc_own) + 1, 0);
  plan.gpt_ptr.assign(ngc + 1, 0);
  for (std::int64_t k = 0; k < PD.nnz(); ++k)
    plan.pt_ptr[static_cast<std::size_t>(PD.colidx()[static_cast<std::size_t>(k)]) + 1]++;
  for (std::int64_t k = 0; k < PO.nnz(); ++k)
    plan.gpt_ptr[static_cast<std::size_t>(PO.colidx()[static_cast<std::size_t>(k)]) + 1]++;
  for (std::size_t c = 1; c < plan.pt_ptr.size(); ++c)
    plan.pt_ptr[c] += plan.pt_ptr[c - 1];
  for (std::size_t c = 1; c < plan.gpt_ptr.size(); ++c)
    plan.gpt_ptr[c] += plan.gpt_ptr[c - 1];
  plan.pt_row.resize(static_cast<std::size_t>(PD.nnz()));
  plan.pt_w.resize(static_cast<std::size_t>(PD.nnz()));
  plan.gpt_row.resize(static_cast<std::size_t>(PO.nnz()));
  plan.gpt_w.resize(static_cast<std::size_t>(PO.nnz()));
  {
    std::vector<std::int64_t> fill(plan.pt_ptr.begin(), plan.pt_ptr.end() - 1);
    std::vector<std::int64_t> gfill(plan.gpt_ptr.begin(),
                                    plan.gpt_ptr.end() - 1);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t k = PD.rowptr()[static_cast<std::size_t>(i)];
           k < PD.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::size_t c =
            static_cast<std::size_t>(PD.colidx()[static_cast<std::size_t>(k)]);
        plan.pt_row[static_cast<std::size_t>(fill[c])] =
            static_cast<std::int32_t>(i);
        plan.pt_w[static_cast<std::size_t>(fill[c]++)] =
            PD.values()[static_cast<std::size_t>(k)];
      }
      for (std::int64_t k = PO.rowptr()[static_cast<std::size_t>(i)];
           k < PO.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::size_t c =
            static_cast<std::size_t>(PO.colidx()[static_cast<std::size_t>(k)]);
        plan.gpt_row[static_cast<std::size_t>(gfill[c])] =
            static_cast<std::int32_t>(i);
        plan.gpt_w[static_cast<std::size_t>(gfill[c]++)] =
            PO.values()[static_cast<std::size_t>(k)];
      }
    }
  }
  plan.rc_dest.resize(ngc);
  for (std::size_t g = 0; g < ngc; ++g)
    plan.rc_dest[g] = la::owner_of(coarse_offsets, p.ghost_gids()[g]);

  // First numeric A P so the coarse pattern can be built with values.
  plan.acc.assign(m, 0.0);
  {
    // Inline numeric A P (same loop as rap_numeric's first stage).
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
           k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
        const double av = D.values()[static_cast<std::size_t>(k)];
        for (std::int64_t t = plan.prow_ptr[static_cast<std::size_t>(j)];
             t < plan.prow_ptr[static_cast<std::size_t>(j) + 1]; ++t)
          plan.acc[static_cast<std::size_t>(
              plan.prow_col[static_cast<std::size_t>(t)])] +=
              av * plan.prow_val[static_cast<std::size_t>(t)];
      }
      for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
           k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int64_t g = O.colidx()[static_cast<std::size_t>(k)];
        const double av = O.values()[static_cast<std::size_t>(k)];
        for (std::int64_t t = plan.gprow_ptr[static_cast<std::size_t>(g)];
             t < plan.gprow_ptr[static_cast<std::size_t>(g) + 1]; ++t)
          plan.acc[static_cast<std::size_t>(
              plan.gprow_col[static_cast<std::size_t>(t)])] +=
              av * plan.gprow_val[static_cast<std::size_t>(t)];
      }
      for (std::int64_t k = plan.ap_ptr[static_cast<std::size_t>(i)];
           k < plan.ap_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::size_t c = static_cast<std::size_t>(
            plan.ap_col[static_cast<std::size_t>(k)]);
        plan.ap_val[static_cast<std::size_t>(k)] = plan.acc[c];
        plan.acc[c] = 0.0;
      }
    }
  }

  // Coarse rows: dense-scatter w * (A P)-rows per coarse row, emitting
  // locally-merged triplets (this, not the scan removal, is what makes
  // setup linear: duplicates are merged before any routing/sorting).
  std::vector<la::Triplet> trip;
  std::fill(mark.begin(), mark.end(), -1);
  plan.lr_ptr.assign(static_cast<std::size_t>(nc_own) + 1, 0);
  plan.lr_ccol.clear();
  for (std::int64_t kc = 0; kc < nc_own; ++kc) {
    const std::size_t start = plan.lr_ccol.size();
    for (std::int64_t t = plan.pt_ptr[static_cast<std::size_t>(kc)];
         t < plan.pt_ptr[static_cast<std::size_t>(kc) + 1]; ++t) {
      const std::int64_t i = plan.pt_row[static_cast<std::size_t>(t)];
      const double w = plan.pt_w[static_cast<std::size_t>(t)];
      for (std::int64_t k = plan.ap_ptr[static_cast<std::size_t>(i)];
           k < plan.ap_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int32_t c = plan.ap_col[static_cast<std::size_t>(k)];
        if (mark[static_cast<std::size_t>(c)] != kc) {
          mark[static_cast<std::size_t>(c)] = kc;
          plan.lr_ccol.push_back(c);
        }
        plan.acc[static_cast<std::size_t>(c)] +=
            w * plan.ap_val[static_cast<std::size_t>(k)];
      }
    }
    for (std::size_t e = start; e < plan.lr_ccol.size(); ++e) {
      const std::size_t c = static_cast<std::size_t>(plan.lr_ccol[e]);
      trip.push_back({coarse_lo + kc, cc[c], plan.acc[c]});
      plan.acc[c] = 0.0;
    }
    plan.lr_ptr[static_cast<std::size_t>(kc) + 1] =
        static_cast<std::int64_t>(plan.lr_ccol.size());
  }
  // Remote contributions: rows of A_c owned elsewhere. The pattern is
  // streamed once ([row gid, len, col gids...] per destination); numeric
  // refreshes resend values only, in this exact order.
  std::vector<std::vector<std::int64_t>> sym_out(
      static_cast<std::size_t>(comm.size()));
  plan.rc_ptr.assign(ngc + 1, 0);
  plan.rc_ccol.clear();
  for (std::size_t g = 0; g < ngc; ++g) {
    const std::int64_t stamp = nc_own + static_cast<std::int64_t>(g);
    const std::size_t start = plan.rc_ccol.size();
    for (std::int64_t t = plan.gpt_ptr[g]; t < plan.gpt_ptr[g + 1]; ++t) {
      const std::int64_t i = plan.gpt_row[static_cast<std::size_t>(t)];
      const double w = plan.gpt_w[static_cast<std::size_t>(t)];
      for (std::int64_t k = plan.ap_ptr[static_cast<std::size_t>(i)];
           k < plan.ap_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::int32_t c = plan.ap_col[static_cast<std::size_t>(k)];
        if (mark[static_cast<std::size_t>(c)] != stamp) {
          mark[static_cast<std::size_t>(c)] = stamp;
          plan.rc_ccol.push_back(c);
        }
        plan.acc[static_cast<std::size_t>(c)] +=
            w * plan.ap_val[static_cast<std::size_t>(k)];
      }
    }
    const std::int64_t gc = p.ghost_gids()[g];
    auto& sym = sym_out[static_cast<std::size_t>(plan.rc_dest[g])];
    sym.push_back(gc);
    sym.push_back(static_cast<std::int64_t>(plan.rc_ccol.size() - start));
    for (std::size_t e = start; e < plan.rc_ccol.size(); ++e) {
      const std::size_t c = static_cast<std::size_t>(plan.rc_ccol[e]);
      trip.push_back({gc, cc[c], plan.acc[c]});
      sym.push_back(cc[c]);
      plan.acc[c] = 0.0;
    }
    plan.rc_ptr[g + 1] = static_cast<std::int64_t>(plan.rc_ccol.size());
  }

  ac = la::DistCsr::from_triplets(comm, coarse_offsets, coarse_offsets,
                                  std::move(trip));

  // Resolve the incoming remote patterns to value-array positions so
  // numeric refreshes can scatter-add a bare value stream.
  const std::vector<std::vector<std::int64_t>> sym_in = comm.alltoallv(sym_out);
  plan.recv_pos.assign(static_cast<std::size_t>(comm.size()), {});
  for (int src = 0; src < comm.size(); ++src) {
    const auto& sym = sym_in[static_cast<std::size_t>(src)];
    auto& pos = plan.recv_pos[static_cast<std::size_t>(src)];
    for (std::size_t idx = 0; idx < sym.size();) {
      const std::int64_t kr = sym[idx++] - coarse_lo;
      const std::int64_t len = sym[idx++];
      for (std::int64_t e = 0; e < len; ++e)
        pos.push_back(ac_position(ac, kr, sym[idx++]));
    }
  }
  plan.lr_pos.resize(plan.lr_ccol.size());
  for (std::int64_t kc = 0; kc < nc_own; ++kc)
    for (std::int64_t e = plan.lr_ptr[static_cast<std::size_t>(kc)];
         e < plan.lr_ptr[static_cast<std::size_t>(kc) + 1]; ++e)
      plan.lr_pos[static_cast<std::size_t>(e)] = ac_position(
          ac, kc,
          cc[static_cast<std::size_t>(plan.lr_ccol[static_cast<std::size_t>(e)])]);

  // Overwrite the from_triplets values through the numeric pass so a
  // fresh setup and a later refresh_numeric with identical input values
  // produce bit-identical coarse operators.
  rap_numeric(comm, a, plan, ac);
}

void DistAmg::rap_numeric(par::Comm& comm, const la::DistCsr& a,
                          RapPlan& plan, la::DistCsr& ac) const {
  OBS_SPAN("amg.rap_numeric");
  const std::int64_t n = a.owned_rows();
  const la::Csr& D = a.diag();
  const la::Csr& O = a.offd();

  // Stage 1: values of A P over the cached pattern.
  if (plan.acc.size() != plan.ccol_gids.size())
    plan.acc.assign(plan.ccol_gids.size(), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(i)];
         k < D.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t j = D.colidx()[static_cast<std::size_t>(k)];
      const double av = D.values()[static_cast<std::size_t>(k)];
      for (std::int64_t t = plan.prow_ptr[static_cast<std::size_t>(j)];
           t < plan.prow_ptr[static_cast<std::size_t>(j) + 1]; ++t)
        plan.acc[static_cast<std::size_t>(
            plan.prow_col[static_cast<std::size_t>(t)])] +=
            av * plan.prow_val[static_cast<std::size_t>(t)];
    }
    for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(i)];
         k < O.rowptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t g = O.colidx()[static_cast<std::size_t>(k)];
      const double av = O.values()[static_cast<std::size_t>(k)];
      for (std::int64_t t = plan.gprow_ptr[static_cast<std::size_t>(g)];
           t < plan.gprow_ptr[static_cast<std::size_t>(g) + 1]; ++t)
        plan.acc[static_cast<std::size_t>(
            plan.gprow_col[static_cast<std::size_t>(t)])] +=
            av * plan.gprow_val[static_cast<std::size_t>(t)];
    }
    for (std::int64_t k = plan.ap_ptr[static_cast<std::size_t>(i)];
         k < plan.ap_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::size_t c =
          static_cast<std::size_t>(plan.ap_col[static_cast<std::size_t>(k)]);
      plan.ap_val[static_cast<std::size_t>(k)] = plan.acc[c];
      plan.acc[c] = 0.0;
    }
  }

  // Stage 2: accumulate P^T (A P) into the preallocated coarse CSR.
  std::vector<double>& dv = ac.diag_values();
  std::vector<double>& ov = ac.offd_values();
  std::fill(dv.begin(), dv.end(), 0.0);
  std::fill(ov.begin(), ov.end(), 0.0);
  const auto write = [&dv, &ov](std::int64_t pos, double v) {
    if (pos >= 0)
      dv[static_cast<std::size_t>(pos)] += v;
    else
      ov[static_cast<std::size_t>(-pos - 1)] += v;
  };
  const std::int64_t nc_own = static_cast<std::int64_t>(plan.lr_ptr.size()) - 1;
  for (std::int64_t kc = 0; kc < nc_own; ++kc) {
    for (std::int64_t t = plan.pt_ptr[static_cast<std::size_t>(kc)];
         t < plan.pt_ptr[static_cast<std::size_t>(kc) + 1]; ++t) {
      const std::int64_t i = plan.pt_row[static_cast<std::size_t>(t)];
      const double w = plan.pt_w[static_cast<std::size_t>(t)];
      for (std::int64_t k = plan.ap_ptr[static_cast<std::size_t>(i)];
           k < plan.ap_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        plan.acc[static_cast<std::size_t>(
            plan.ap_col[static_cast<std::size_t>(k)])] +=
            w * plan.ap_val[static_cast<std::size_t>(k)];
    }
    for (std::int64_t e = plan.lr_ptr[static_cast<std::size_t>(kc)];
         e < plan.lr_ptr[static_cast<std::size_t>(kc) + 1]; ++e) {
      const std::size_t c = static_cast<std::size_t>(
          plan.lr_ccol[static_cast<std::size_t>(e)]);
      write(plan.lr_pos[static_cast<std::size_t>(e)], plan.acc[c]);
      plan.acc[c] = 0.0;
    }
  }

  // Stage 3: remote rows — pack values in the cached pattern order and
  // route with a single value-only alltoallv, then scatter-add through
  // the cached receive positions.
  std::vector<std::vector<double>> val_out(
      static_cast<std::size_t>(comm.size()));
  const std::size_t ngc = plan.rc_ptr.empty() ? 0 : plan.rc_ptr.size() - 1;
  for (std::size_t g = 0; g < ngc; ++g) {
    for (std::int64_t t = plan.gpt_ptr[g]; t < plan.gpt_ptr[g + 1]; ++t) {
      const std::int64_t i = plan.gpt_row[static_cast<std::size_t>(t)];
      const double w = plan.gpt_w[static_cast<std::size_t>(t)];
      for (std::int64_t k = plan.ap_ptr[static_cast<std::size_t>(i)];
           k < plan.ap_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        plan.acc[static_cast<std::size_t>(
            plan.ap_col[static_cast<std::size_t>(k)])] +=
            w * plan.ap_val[static_cast<std::size_t>(k)];
    }
    auto& vals = val_out[static_cast<std::size_t>(plan.rc_dest[g])];
    for (std::int64_t e = plan.rc_ptr[g]; e < plan.rc_ptr[g + 1]; ++e) {
      const std::size_t c = static_cast<std::size_t>(
          plan.rc_ccol[static_cast<std::size_t>(e)]);
      vals.push_back(plan.acc[c]);
      plan.acc[c] = 0.0;
    }
  }
  const std::vector<std::vector<double>> val_in = comm.alltoallv(val_out);
  for (int src = 0; src < comm.size(); ++src) {
    const auto& vals = val_in[static_cast<std::size_t>(src)];
    const auto& pos = plan.recv_pos[static_cast<std::size_t>(src)];
    if (vals.size() != pos.size())
      throw std::logic_error("DistAmg: remote RAP stream length mismatch");
    for (std::size_t e = 0; e < vals.size(); ++e) write(pos[e], vals[e]);
  }
}

void DistAmg::finalize_values(par::Comm& comm) {
  coarse_a_ = coarse_dist_.replicate(comm);
  coarse_ = std::make_unique<la::DenseLu>(coarse_a_);
  coarse_b_.resize(static_cast<std::size_t>(coarse_a_.rows()));
  coarse_x_.resize(static_cast<std::size_t>(coarse_a_.rows()));
  if (opt_.smoother == Smoother::kChebyshev) {
    for (Level& L : levels_) {
      L.diag = L.a.diagonal();
      const double rho =
          estimate_rho_dist(comm, L.a, L.diag, opt_.cheby_power_its);
      L.eig_min = opt_.cheby_lower * rho;
      L.eig_max = opt_.cheby_upper * rho;
    }
  }
}

void DistAmg::refresh_numeric(par::Comm& comm, la::DistCsr a) {
  OBS_SPAN("amg.dist_refresh");
  la::DistCsr& fine = levels_.empty() ? coarse_dist_ : levels_.front().a;
  if (a.owned_rows() != fine.owned_rows() ||
      a.diag().nnz() != fine.diag().nnz() ||
      a.offd().nnz() != fine.offd().nnz() ||
      a.ghost_gids().size() != fine.ghost_gids().size())
    throw std::logic_error(
        "DistAmg::refresh_numeric: sparsity structure differs from setup");
  fine = std::move(a);
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    la::DistCsr& next =
        l + 1 < levels_.size() ? levels_[l + 1].a : coarse_dist_;
    rap_numeric(comm, levels_[l].a, levels_[l].rap, next);
  }
  finalize_values(comm);
}

// ---- solve ----------------------------------------------------------------

const la::DistCsr& DistAmg::matrix(int lvl) const {
  return lvl < static_cast<int>(levels_.size())
             ? levels_[static_cast<std::size_t>(lvl)].a
             : coarse_dist_;
}

void DistAmg::hybrid_gauss_seidel(par::Comm& comm, const Level& L,
                                  std::span<const double> b,
                                  std::span<double> x, bool forward) const {
  // Gauss-Seidel on the owned-column block; ghost contributions are
  // frozen at the sweep-start halo values (Jacobi across ranks).
  L.a.plan().forward<double>(comm, x, L.ghost);
  const la::Csr& D = L.a.diag();
  const la::Csr& O = L.a.offd();
  const std::int64_t nrows = D.rows();
  const auto update = [&](std::int64_t r) {
    double s = b[static_cast<std::size_t>(r)];
    double d = 1.0;
    for (std::int64_t k = D.rowptr()[static_cast<std::size_t>(r)];
         k < D.rowptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = D.colidx()[static_cast<std::size_t>(k)];
      if (c == r)
        d = D.values()[static_cast<std::size_t>(k)];
      else
        s -= D.values()[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
    }
    for (std::int64_t k = O.rowptr()[static_cast<std::size_t>(r)];
         k < O.rowptr()[static_cast<std::size_t>(r) + 1]; ++k)
      s -= O.values()[static_cast<std::size_t>(k)] *
           L.ghost[static_cast<std::size_t>(
               O.colidx()[static_cast<std::size_t>(k)])];
    if (d != 0.0) x[static_cast<std::size_t>(r)] = s / d;
  };
  if (forward)
    for (std::int64_t r = 0; r < nrows; ++r) update(r);
  else
    for (std::int64_t r = nrows - 1; r >= 0; --r) update(r);
}

void DistAmg::chebyshev_smooth(par::Comm& comm, const Level& L,
                               std::span<const double> b,
                               std::span<double> x) const {
  // Chebyshev polynomial in D^{-1}A over [eig_min, eig_max]: the only
  // communication is the ghost-exchange matvec, so the result has no
  // rank-order dependence (unlike hybrid GS) and stays symmetric — safe
  // for the SPD preconditioner MINRES requires.
  const std::size_t n = static_cast<std::size_t>(L.a.owned_rows());
  const double theta = 0.5 * (L.eig_max + L.eig_min);
  const double delta = 0.5 * (L.eig_max - L.eig_min);
  if (theta <= 0.0 || delta <= 0.0 || opt_.cheby_degree < 1) return;
  L.ch_r.resize(n);
  L.ch_d.resize(n);
  L.ch_t.resize(n);
  L.a.matvec(comm, x, L.ch_r);
  for (std::size_t i = 0; i < n; ++i) L.ch_r[i] = b[i] - L.ch_r[i];
  const double sigma = theta / delta;
  double rho_prev = 1.0 / sigma;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = L.diag[i];
    L.ch_d[i] = (d != 0.0 ? L.ch_r[i] / d : L.ch_r[i]) / theta;
  }
  for (int k = 1; k <= opt_.cheby_degree; ++k) {
    for (std::size_t i = 0; i < n; ++i) x[i] += L.ch_d[i];
    if (k == opt_.cheby_degree) break;
    L.a.matvec(comm, L.ch_d, L.ch_t);
    for (std::size_t i = 0; i < n; ++i) L.ch_r[i] -= L.ch_t[i];
    const double rho = 1.0 / (2.0 * sigma - rho_prev);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = L.diag[i];
      L.ch_d[i] = rho * rho_prev * L.ch_d[i] +
                  2.0 * rho / delta * (d != 0.0 ? L.ch_r[i] / d : L.ch_r[i]);
    }
    rho_prev = rho;
  }
}

void DistAmg::cycle(par::Comm& comm, std::size_t lvl,
                    std::span<const double> b, std::span<double> x) const {
  if (lvl == levels_.size()) {
    // Replicated coarsest level: gather the rank-contiguous owned slices
    // (O(coarse_size), constant in N and P) and solve with dense LU.
    const std::vector<double> owned(
        b.begin(),
        b.begin() + static_cast<std::ptrdiff_t>(coarse_dist_.owned_rows()));
    coarse_b_ = comm.allgatherv(owned);
    coarse_->solve(coarse_b_, coarse_x_);
    for (std::int64_t i = 0; i < coarse_dist_.owned_rows(); ++i)
      x[static_cast<std::size_t>(i)] =
          coarse_x_[static_cast<std::size_t>(coarse_dist_.row_begin() + i)];
    return;
  }
  const Level& L = levels_[lvl];
  const auto smooth = [&](bool forward) {
    if (opt_.smoother == Smoother::kChebyshev)
      chebyshev_smooth(comm, L, b, x);
    else
      hybrid_gauss_seidel(comm, L, b, x, forward);
  };
  for (int s = 0; s < opt_.pre_smooth; ++s) smooth(/*forward=*/true);
  // Residual, restriction, coarse correction.
  L.a.matvec(comm, x, L.res);
  for (std::size_t i = 0; i < L.res.size(); ++i) L.res[i] = b[i] - L.res[i];
  L.p.matvec_transpose(comm, L.res, L.bc);
  std::fill(L.xc.begin(), L.xc.end(), 0.0);
  cycle(comm, lvl + 1, L.bc, L.xc);
  // Prolongate (reusing the residual buffer) and correct.
  L.p.matvec(comm, L.xc, L.res);
  for (std::size_t i = 0; i < L.res.size(); ++i) x[i] += L.res[i];
  for (int s = 0; s < opt_.post_smooth; ++s) smooth(/*forward=*/false);
}

void DistAmg::vcycle(par::Comm& comm, std::span<const double> b,
                     std::span<double> x) const {
  OBS_SPAN("amg.vcycle");
  OBS_HW_SPAN("amg.vcycle");
  OBS_HIST_SPAN("amg.vcycle");
  obs::counter_add(obs::wellknown::amg_vcycles(), 1);
  cycle(comm, 0, b, x);
}

void DistAmg::solve(par::Comm& comm, std::span<const double> b,
                    std::span<double> x, int cycles) const {
  if (!opt_.track_convergence) {
    for (int c = 0; c < cycles; ++c) vcycle(comm, b, x);
    return;
  }
  const la::DistCsr& a = finest();
  std::vector<double> res(static_cast<std::size_t>(a.owned_rows()));
  const auto residual_norm = [&] {
    a.matvec(comm, x, res);
    double local = 0.0;
    for (std::size_t i = 0; i < res.size(); ++i) {
      const double r = b[i] - res[i];
      local += r * r;
    }
    return std::sqrt(comm.allreduce_sum(local));
  };
  factors_.clear();
  double prev = residual_norm();
  for (int c = 0; c < cycles; ++c) {
    vcycle(comm, b, x);
    const double cur = residual_norm();
    factors_.push_back(prev > 0.0 ? cur / prev : 0.0);
    prev = cur;
  }
  if (comm.rank() == 0) obs::record_history("amg.solve.factors", factors_);
}

std::int64_t DistAmg::local_nnz() const {
  std::int64_t total = coarse_a_.nnz();  // replicated coarsest copy
  for (std::int64_t nnz : local_nnz_per_level_) total += nnz;
  return total;
}

double DistAmg::operator_complexity() const {
  double total = 0.0;
  for (const LevelStats& s : stats_) total += static_cast<double>(s.nnz);
  return total / static_cast<double>(stats_.front().nnz);
}

double DistAmg::grid_complexity() const {
  double total = 0.0;
  for (const LevelStats& s : stats_) total += static_cast<double>(s.n);
  return total / static_cast<double>(stats_.front().n);
}

}  // namespace alps::amg
