#pragma once
// Cross-solve reuse of the distributed AMG hierarchies (paper Sec. IV:
// the AMG setup is amortized over the ~16 time steps between mesh
// adaptations). The C/F splitting, interpolation operators, and the
// symbolic structure of the Galerkin products depend only on the mesh,
// so between adaptations a viscosity update needs at most the numeric
// RAP pass (DistAmg::refresh_numeric) — and not even that when the
// viscosity has drifted less than a configured tolerance since the
// hierarchy was last built.
//
// The cache is keyed on a mesh epoch owned by whoever owns the mesh
// (rhea::Simulation bumps it on every adapt/repartition/rebuild). The
// Stokes solver consults it at construction: epoch mismatch -> full
// setup; match -> numeric refresh or, below the drift tolerance, no
// setup work at all. A stale *preconditioner* is safe — MINRES always
// iterates with the freshly assembled operator.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "amg/dist_amg.hpp"

namespace alps::amg {

/// Deterministic reuse accounting (rank-local; identical on every rank
/// because all reuse decisions are made collectively).
struct CacheStats {
  std::int64_t full_setups = 0;       // symbolic + numeric hierarchy builds
  std::int64_t numeric_refreshes = 0; // refresh_numeric only
  std::int64_t skipped = 0;           // hierarchy reused untouched
};

class HierarchyCache {
 public:
  std::uint64_t epoch() const { return epoch_; }

  /// Invalidate: the mesh changed (adapt, repartition, rebuild), so every
  /// cached symbolic structure is wrong. Frees the hierarchies.
  void bump_epoch() {
    ++epoch_;
    for (auto& a : amg) a.reset();
    eta_snapshot.clear();
  }

  /// True when the cached hierarchies were built for the current epoch.
  bool valid() const { return built_epoch_ == epoch_ && amg[0] != nullptr; }
  void mark_built() { built_epoch_ = epoch_; }

  /// Heap bytes the cache keeps alive between solves: the retained
  /// hierarchies plus the viscosity snapshot (the "amg.cache" scope).
  std::uint64_t retained_bytes() const {
    std::uint64_t b = obs::vec_bytes(eta_snapshot);
    for (const auto& a : amg)
      if (a) b += a->memory_bytes().total();
    return b;
  }

  /// One hierarchy per velocity component (the three variable-viscosity
  /// Poisson blocks of the Stokes preconditioner).
  std::array<std::unique_ptr<DistAmg>, 3> amg;
  /// Per-quadrature-point viscosity the hierarchies were last (re)built
  /// with; the drift test compares against this, not the previous solve.
  std::vector<double> eta_snapshot;
  CacheStats stats;

 private:
  std::uint64_t epoch_ = 0;
  std::uint64_t built_epoch_ = ~std::uint64_t{0};  // never matches epoch 0
};

}  // namespace alps::amg
