#pragma once
// Distributed algebraic multigrid on owned-row matrices (paper Sec. III,
// the BoomerAMG role). Setup and solve are both O(N_local) per rank:
//
//  - strength of connection and C/F splitting run on each rank's owned
//    subgraph (hypre-style per-processor classical coarsening, identical
//    to the replicated hierarchy at P = 1),
//  - direct interpolation may pull from ghost C points, whose coarse ids
//    arrive through the matrix's ghost-exchange plan,
//  - the Galerkin product A_c = P^T A P is formed from owned rows plus
//    fetched ghost rows of P, with off-owner coarse triplets routed to
//    their owners (one alltoallv per level, setup only),
//  - smoothing is hybrid Gauss-Seidel: Gauss-Seidel on the owned-column
//    block, Jacobi on the ghost-column contributions (frozen at the
//    sweep-start halo values) — the standard parallel compromise,
//  - only the coarsest level (<= coarse_size unknowns) is replicated for
//    the dense LU solve; its per-cycle gather is O(coarse_size).

#include <memory>
#include <vector>

#include "amg/amg.hpp"
#include "la/dist_csr.hpp"

namespace alps::amg {

class DistAmg {
 public:
  /// Setup phase; collective. Reuses AmgOptions from the replicated Amg.
  DistAmg(par::Comm& comm, la::DistCsr a, const AmgOptions& opt = {});

  /// One V-cycle on A x = b over *owned* entries (b, x: owned_rows of the
  /// finest matrix). Collective.
  void vcycle(par::Comm& comm, std::span<const double> b,
              std::span<double> x) const;

  /// Run `cycles` V-cycles, keeping x as the running iterate. Collective.
  /// With opt.track_convergence the per-cycle global residual contraction
  /// factors are recorded (one extra matvec + allreduce per cycle).
  void solve(par::Comm& comm, std::span<const double> b, std::span<double> x,
             int cycles) const;

  /// ||r_k|| / ||r_{k-1}|| per V-cycle of the last tracked solve();
  /// empty unless opt.track_convergence was set. Identical on all ranks.
  const std::vector<double>& convergence_factors() const { return factors_; }

  int num_levels() const { return static_cast<int>(stats_.size()); }
  const std::vector<LevelStats>& level_stats() const { return stats_; }
  /// This rank's matrix storage across all levels (diag + offd blocks,
  /// plus the replicated coarsest level).
  std::int64_t local_nnz() const;
  double operator_complexity() const;
  double grid_complexity() const;
  const la::DistCsr& finest() const { return levels_.empty() ? coarse_dist_ : levels_.front().a; }

 private:
  struct Level {
    la::DistCsr a;
    la::DistCsr p;  // prolongation to this level from the next-coarser one
    // Scratch (mutable via the enclosing const methods).
    mutable std::vector<double> res, bc, xc, ghost;
  };

  void cycle(par::Comm& comm, std::size_t lvl, std::span<const double> b,
             std::span<double> x) const;
  void hybrid_gauss_seidel(par::Comm& comm, const Level& L,
                           std::span<const double> b, std::span<double> x,
                           bool forward) const;

  AmgOptions opt_;
  std::vector<Level> levels_;
  la::DistCsr coarse_dist_;           // distributed coarsest operator
  la::Csr coarse_a_;                  // replicated copy for DenseLu
  std::unique_ptr<la::DenseLu> coarse_;
  std::vector<LevelStats> stats_;     // global n / nnz per level
  std::vector<std::int64_t> local_nnz_per_level_;
  mutable std::vector<double> coarse_b_, coarse_x_;  // replicated scratch
  mutable std::vector<double> factors_;              // last tracked solve()
};

}  // namespace alps::amg
