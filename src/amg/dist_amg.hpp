#pragma once
// Distributed algebraic multigrid on owned-row matrices (paper Sec. III,
// the BoomerAMG role). Setup and solve are both O(N_local) per rank:
//
//  - strength of connection and C/F splitting run on each rank's owned
//    subgraph (hypre-style per-processor classical coarsening, identical
//    to the replicated hierarchy at P = 1),
//  - direct interpolation may pull from ghost C points, whose coarse ids
//    arrive through the matrix's ghost-exchange plan; strong-neighbor
//    membership is tested through epoch-stamped marks (O(1) per entry),
//  - the Galerkin product A_c = P^T A P is a two-pass sparse triple
//    product: a symbolic pass computes the coarse pattern and a reusable
//    RapPlan (per-row scatter lists, P^T transposes, off-owner routing),
//    and a numeric pass writes values into the preallocated coarse CSR
//    with one value-only alltoallv per level — linear in nnz,
//  - because C/F split, P, and the RAP pattern depend only on the mesh,
//    refresh_numeric() re-runs just the numeric passes when the operator
//    values change (viscosity updates between Picard iterations and
//    non-adapting timesteps), skipping the entire symbolic setup,
//  - smoothing is hybrid Gauss-Seidel (Gauss-Seidel on the owned-column
//    block, Jacobi on frozen ghosts) or a Chebyshev polynomial in
//    D^{-1}A, whose only communication is the ghost-exchange matvec,
//  - only the coarsest level (<= coarse_size unknowns) is replicated for
//    the dense LU solve; its per-cycle gather is O(coarse_size).

#include <memory>
#include <vector>

#include "amg/amg.hpp"
#include "la/dist_csr.hpp"

namespace alps::amg {

class DistAmg {
 public:
  /// Setup phase; collective. Reuses AmgOptions from the replicated Amg.
  DistAmg(par::Comm& comm, la::DistCsr a, const AmgOptions& opt = {});

  /// Pattern-preserving numeric rebuild: replace the finest operator with
  /// `a` (same sparsity structure as the setup matrix) and recompute the
  /// coarse operators through the cached RAP plans — C/F split, P, and
  /// every symbolic structure are reused. One value-only alltoallv per
  /// level. Collective.
  void refresh_numeric(par::Comm& comm, la::DistCsr a);

  /// One V-cycle on A x = b over *owned* entries (b, x: owned_rows of the
  /// finest matrix). Collective.
  void vcycle(par::Comm& comm, std::span<const double> b,
              std::span<double> x) const;

  /// Run `cycles` V-cycles, keeping x as the running iterate. Collective.
  /// With opt.track_convergence the per-cycle global residual contraction
  /// factors are recorded (one extra matvec + allreduce per cycle).
  void solve(par::Comm& comm, std::span<const double> b, std::span<double> x,
             int cycles) const;

  /// ||r_k|| / ||r_{k-1}|| per V-cycle of the last tracked solve();
  /// empty unless opt.track_convergence was set. Identical on all ranks.
  const std::vector<double>& convergence_factors() const { return factors_; }

  int num_levels() const { return static_cast<int>(stats_.size()); }
  const std::vector<LevelStats>& level_stats() const { return stats_; }
  /// Distributed operator of grid level `lvl` (0 = finest; the last one,
  /// lvl == num_grid_levels()-1, is the distributed coarsest matrix).
  const la::DistCsr& matrix(int lvl) const;
  /// Prolongation from grid level `lvl`+1 to `lvl`.
  const la::DistCsr& prolongation(int lvl) const {
    return levels_[static_cast<std::size_t>(lvl)].p;
  }
  int num_grid_levels() const { return static_cast<int>(levels_.size()) + 1; }
  /// This rank's matrix storage across all levels (diag + offd blocks,
  /// plus the replicated coarsest level).
  std::int64_t local_nnz() const;
  double operator_complexity() const;
  double grid_complexity() const;
  const la::DistCsr& finest() const { return levels_.empty() ? coarse_dist_ : levels_.front().a; }

  /// This rank's heap bytes split by what the hierarchy stores them for
  /// (reported into the "amg.*" memory scopes; see obs/mem.hpp).
  struct MemoryBytes {
    std::uint64_t operators = 0;      // per-level A (diag+offd+plans)
    std::uint64_t interpolation = 0;  // per-level P
    std::uint64_t rap = 0;            // cached RAP scatter tables
    std::uint64_t coarse = 0;         // replicated coarsest + LU factors
    std::uint64_t scratch = 0;        // cycle workspaces, smoother data
    std::uint64_t total() const {
      return operators + interpolation + rap + coarse + scratch;
    }
  };
  MemoryBytes memory_bytes() const;

 private:
  /// Cached structure of one level's Galerkin product A_c = P^T A P. The
  /// symbolic pass fills it once; the numeric pass replays it whenever
  /// the operator values change. All P data (owned and fetched ghost
  /// rows) is frozen here because interpolation survives value updates.
  struct RapPlan {
    // Compact coarse-column space: sorted global coarse gids reachable
    // from this rank's rows of A P; all scatter work uses these indices.
    std::vector<std::int64_t> ccol_gids;
    // P rows over compact columns: owned fine rows, then the fetched
    // rows of ghost fine points (static, fetched once at setup).
    std::vector<std::int64_t> prow_ptr, gprow_ptr;
    std::vector<std::int32_t> prow_col, gprow_col;
    std::vector<double> prow_val, gprow_val;
    // Pattern of A P per owned fine row (compact columns).
    std::vector<std::int64_t> ap_ptr;
    std::vector<std::int32_t> ap_col;
    // P^T: (fine row, weight) lists per owned coarse row (pt) and per
    // ghost coarse column, whose coarse row lives on another rank (gpt).
    std::vector<std::int64_t> pt_ptr, gpt_ptr;
    std::vector<std::int32_t> pt_row, gpt_row;
    std::vector<double> pt_w, gpt_w;
    // Output patterns in the exact order of the numeric pass. Local rows
    // write through encoded positions into the coarse matrix (pos >= 0:
    // diag value index; pos < 0: offd index -pos-1); remote rows are
    // packed per destination rank and routed with one alltoallv.
    std::vector<std::int64_t> lr_ptr;
    std::vector<std::int32_t> lr_ccol;
    std::vector<std::int64_t> lr_pos;
    std::vector<std::int64_t> rc_ptr;
    std::vector<std::int32_t> rc_ccol;
    std::vector<int> rc_dest;  // owner rank per ghost coarse column
    // Encoded positions for each incoming value, per source rank, in the
    // sender's packing order.
    std::vector<std::vector<std::int64_t>> recv_pos;
    // Numeric workspaces (values of A P; dense scatter accumulator).
    std::vector<double> ap_val, acc;
  };

  struct Level {
    la::DistCsr a;
    la::DistCsr p;  // prolongation to this level from the next-coarser one
    RapPlan rap;    // produces the next-coarser operator
    // Chebyshev smoother data (filled only with Smoother::kChebyshev).
    std::vector<double> diag;
    double eig_min = 0.0, eig_max = 0.0;
    // Scratch (mutable via the enclosing const methods).
    mutable std::vector<double> res, bc, xc, ghost;
    mutable std::vector<double> ch_r, ch_d, ch_t;
  };

  /// Symbolic + first numeric pass: builds `plan` and the coarse operator
  /// for one level. Collective.
  void build_rap(par::Comm& comm, const la::DistCsr& a, const la::DistCsr& p,
                 const std::vector<std::int64_t>& coarse_offsets,
                 RapPlan& plan, la::DistCsr& ac) const;
  /// Numeric pass only: recompute the values of `ac` from the current
  /// values of `a` through `plan`. Collective.
  void rap_numeric(par::Comm& comm, const la::DistCsr& a, RapPlan& plan,
                   la::DistCsr& ac) const;
  /// Replicate the coarsest operator, refactor the dense LU, and (for the
  /// Chebyshev smoother) re-estimate the per-level spectral radii.
  void finalize_values(par::Comm& comm);

  void cycle(par::Comm& comm, std::size_t lvl, std::span<const double> b,
             std::span<double> x) const;
  void hybrid_gauss_seidel(par::Comm& comm, const Level& L,
                           std::span<const double> b, std::span<double> x,
                           bool forward) const;
  void chebyshev_smooth(par::Comm& comm, const Level& L,
                        std::span<const double> b, std::span<double> x) const;

  AmgOptions opt_;
  std::vector<Level> levels_;
  la::DistCsr coarse_dist_;           // distributed coarsest operator
  la::Csr coarse_a_;                  // replicated copy for DenseLu
  std::unique_ptr<la::DenseLu> coarse_;
  std::vector<LevelStats> stats_;     // global n / nnz per level
  std::vector<std::int64_t> local_nnz_per_level_;
  mutable std::vector<double> coarse_b_, coarse_x_;  // replicated scratch
  mutable std::vector<double> factors_;              // last tracked solve()
};

inline DistAmg::MemoryBytes DistAmg::memory_bytes() const {
  MemoryBytes m;
  using obs::vec_bytes;
  for (const Level& L : levels_) {
    m.operators += L.a.memory_bytes();
    m.interpolation += L.p.memory_bytes();
    const RapPlan& r = L.rap;
    m.rap += vec_bytes(r.ccol_gids) + vec_bytes(r.prow_ptr) +
             vec_bytes(r.gprow_ptr) + vec_bytes(r.prow_col) +
             vec_bytes(r.gprow_col) + vec_bytes(r.prow_val) +
             vec_bytes(r.gprow_val) + vec_bytes(r.ap_ptr) +
             vec_bytes(r.ap_col) + vec_bytes(r.pt_ptr) +
             vec_bytes(r.gpt_ptr) + vec_bytes(r.pt_row) +
             vec_bytes(r.gpt_row) + vec_bytes(r.pt_w) + vec_bytes(r.gpt_w) +
             vec_bytes(r.lr_ptr) + vec_bytes(r.lr_ccol) +
             vec_bytes(r.lr_pos) + vec_bytes(r.rc_ptr) +
             vec_bytes(r.rc_ccol) + vec_bytes(r.rc_dest) +
             vec_bytes(r.recv_pos);
    for (const auto& v : r.recv_pos) m.rap += vec_bytes(v);
    m.scratch += vec_bytes(r.ap_val) + vec_bytes(r.acc) + vec_bytes(L.diag) +
                 vec_bytes(L.res) + vec_bytes(L.bc) + vec_bytes(L.xc) +
                 vec_bytes(L.ghost) + vec_bytes(L.ch_r) + vec_bytes(L.ch_d) +
                 vec_bytes(L.ch_t);
  }
  m.operators += coarse_dist_.memory_bytes();
  m.coarse += coarse_a_.memory_bytes();
  if (coarse_) m.coarse += coarse_->memory_bytes();
  m.scratch += vec_bytes(coarse_b_) + vec_bytes(coarse_x_) +
               vec_bytes(factors_);
  return m;
}

}  // namespace alps::amg
