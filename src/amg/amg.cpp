#include "amg/amg.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "amg/classical.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"

namespace alps::amg {

namespace detail {

std::vector<CF> split_cf(const std::vector<std::vector<std::int64_t>>& strong) {
  const std::int64_t n = static_cast<std::int64_t>(strong.size());
  // Transpose: who strongly depends on i.
  std::vector<std::vector<std::int64_t>> influenced(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j : strong[static_cast<std::size_t>(i)])
      influenced[static_cast<std::size_t>(j)].push_back(i);

  std::vector<std::int64_t> measure(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    measure[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(influenced[static_cast<std::size_t>(i)].size());

  std::vector<CF> cf(static_cast<std::size_t>(n), CF::kUndecided);
  // Nodes with no strong connection in either direction — Dirichlet /
  // identity rows and rows with only weak couplings — take no part in
  // coarse-grid correction: preset them to F so they cannot accumulate as
  // C points on every coarser level (which stalls coarsening with a large
  // coarsest grid). Their interpolation row stays empty and relaxation
  // resolves them.
  for (std::int64_t i = 0; i < n; ++i)
    if (strong[static_cast<std::size_t>(i)].empty() &&
        influenced[static_cast<std::size_t>(i)].empty())
      cf[static_cast<std::size_t>(i)] = CF::kFine;
  using Entry = std::pair<std::int64_t, std::int64_t>;  // (measure, node)
  std::priority_queue<Entry> heap;
  for (std::int64_t i = 0; i < n; ++i)
    heap.emplace(measure[static_cast<std::size_t>(i)], i);

  while (!heap.empty()) {
    const auto [m, i] = heap.top();
    heap.pop();
    if (cf[static_cast<std::size_t>(i)] != CF::kUndecided) continue;
    if (m != measure[static_cast<std::size_t>(i)]) {
      heap.emplace(measure[static_cast<std::size_t>(i)], i);  // stale entry
      continue;
    }
    cf[static_cast<std::size_t>(i)] = CF::kCoarse;
    for (std::int64_t j : influenced[static_cast<std::size_t>(i)]) {
      if (cf[static_cast<std::size_t>(j)] != CF::kUndecided) continue;
      cf[static_cast<std::size_t>(j)] = CF::kFine;
      // New F point: strengthen its other dependencies toward C.
      for (std::int64_t k : strong[static_cast<std::size_t>(j)])
        if (cf[static_cast<std::size_t>(k)] == CF::kUndecided) {
          measure[static_cast<std::size_t>(k)] += 1;
          heap.emplace(measure[static_cast<std::size_t>(k)], k);
        }
    }
  }
  // Direct interpolation needs every F point to see a strong C neighbor.
  for (std::int64_t i = 0; i < n; ++i) {
    if (cf[static_cast<std::size_t>(i)] != CF::kFine) continue;
    bool has_c = false;
    for (std::int64_t j : strong[static_cast<std::size_t>(i)])
      if (cf[static_cast<std::size_t>(j)] == CF::kCoarse) {
        has_c = true;
        break;
      }
    if (!has_c && !strong[static_cast<std::size_t>(i)].empty())
      cf[static_cast<std::size_t>(i)] = CF::kCoarse;
  }
  return cf;
}

}  // namespace detail

namespace {

using detail::CF;

/// Strength graph: strong[i] lists j such that i strongly depends on j,
/// classical criterion -a_ij >= theta * max_k(-a_ik).
std::vector<std::vector<std::int64_t>> strength_graph(const la::Csr& a,
                                                      double theta) {
  const std::int64_t n = a.rows();
  std::vector<std::vector<std::int64_t>> strong(static_cast<std::size_t>(n));
  const auto& rp = a.rowptr();
  const auto& ci = a.colidx();
  const auto& v = a.values();
  for (std::int64_t i = 0; i < n; ++i) {
    double maxneg = 0.0;
    for (std::int64_t k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k)
      if (ci[static_cast<std::size_t>(k)] != i)
        maxneg = std::max(maxneg, -v[static_cast<std::size_t>(k)]);
    if (maxneg <= 0.0) continue;
    const double cut = theta * maxneg;
    for (std::int64_t k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t j = ci[static_cast<std::size_t>(k)];
      if (j != i && -v[static_cast<std::size_t>(k)] >= cut)
        strong[static_cast<std::size_t>(i)].push_back(j);
    }
  }
  return strong;
}

using detail::split_cf;

/// Direct interpolation operator (Stüben): C points inject, F points take
/// w_ij = -alpha_i a_ij / a_ii over strong coarse neighbors, with alpha
/// preserving row sums so constants interpolate exactly.
la::Csr build_interpolation(const la::Csr& a,
                            const std::vector<std::vector<std::int64_t>>& strong,
                            const std::vector<CF>& cf,
                            std::vector<std::int64_t>& coarse_index) {
  const std::int64_t n = a.rows();
  coarse_index.assign(static_cast<std::size_t>(n), -1);
  std::int64_t nc = 0;
  for (std::int64_t i = 0; i < n; ++i)
    if (cf[static_cast<std::size_t>(i)] == CF::kCoarse)
      coarse_index[static_cast<std::size_t>(i)] = nc++;

  const auto& rp = a.rowptr();
  const auto& ci = a.colidx();
  const auto& v = a.values();
  std::vector<la::Triplet> t;
  // Epoch-stamped membership marks: strong_mark[j] == i iff j is a strong
  // neighbor of the row i currently being interpolated. O(1) per test
  // instead of a linear scan of the strong list.
  std::vector<std::int64_t> strong_mark(static_cast<std::size_t>(n), -1);
  for (std::int64_t i = 0; i < n; ++i) {
    if (cf[static_cast<std::size_t>(i)] == CF::kCoarse) {
      t.push_back({i, coarse_index[static_cast<std::size_t>(i)], 1.0});
      continue;
    }
    for (std::int64_t j : strong[static_cast<std::size_t>(i)])
      strong_mark[static_cast<std::size_t>(j)] = i;
    // Strong coarse neighbors of i.
    double diag = 0.0, sum_all = 0.0, sum_c = 0.0;
    std::vector<std::pair<std::int64_t, double>> cweights;
    for (std::int64_t k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int64_t j = ci[static_cast<std::size_t>(k)];
      const double av = v[static_cast<std::size_t>(k)];
      if (j == i) {
        diag = av;
        continue;
      }
      sum_all += av;
      if (cf[static_cast<std::size_t>(j)] == CF::kCoarse &&
          strong_mark[static_cast<std::size_t>(j)] == i) {
        sum_c += av;
        cweights.emplace_back(coarse_index[static_cast<std::size_t>(j)], av);
      }
    }
    if (cweights.empty() || diag == 0.0 || sum_c == 0.0)
      continue;  // isolated F point: relies on smoothing only
    const double alpha = sum_all / sum_c;
    for (const auto& [jc, av] : cweights)
      t.push_back({i, jc, -alpha * av / diag});
  }
  return la::Csr::from_triplets(n, nc, std::move(t));
}

}  // namespace

Amg::Amg(la::Csr a, const AmgOptions& opt) : opt_(opt) {
  la::Csr cur = std::move(a);
  for (int lvl = 0; lvl < opt_.max_levels; ++lvl) {
    stats_.push_back(LevelStats{cur.rows(), cur.nnz()});
    if (cur.rows() <= opt_.coarse_size) break;
    const auto strong = strength_graph(cur, opt_.strength_theta);
    const auto cf = split_cf(strong);
    std::vector<std::int64_t> cidx;
    la::Csr p = build_interpolation(cur, strong, cf, cidx);
    if (p.cols() == 0 || p.cols() >= cur.rows()) break;  // no coarsening
    la::Csr r = p.transpose();
    la::Csr ac = la::Csr::multiply(r, la::Csr::multiply(cur, p));
    Level next;
    next.a = std::move(cur);
    next.p = std::move(p);
    next.r = std::move(r);
    levels_.push_back(std::move(next));
    cur = std::move(ac);
  }
  coarse_a_ = std::move(cur);
  coarse_ = std::make_unique<la::DenseLu>(coarse_a_);
  if (opt_.smoother == Smoother::kChebyshev) {
    for (Level& L : levels_) {
      L.diag = L.a.diagonal();
      const double rho =
          estimate_rho_dinv_a(L.a, L.diag, opt_.cheby_power_its);
      L.eig_min = opt_.cheby_lower * rho;
      L.eig_max = opt_.cheby_upper * rho;
    }
  }
  // Scratch for every level.
  scratch_r_.resize(levels_.size() + 1);
  scratch_x_.resize(levels_.size() + 1);
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    scratch_r_[k].resize(static_cast<std::size_t>(levels_[k].a.rows()));
    scratch_x_[k].resize(static_cast<std::size_t>(levels_[k].a.rows()));
  }
  scratch_r_.back().resize(static_cast<std::size_t>(coarse_a_.rows()));
  scratch_x_.back().resize(static_cast<std::size_t>(coarse_a_.rows()));
}

void Amg::cycle(std::size_t lvl, std::span<const double> b,
                std::span<double> x) const {
  if (lvl == levels_.size()) {
    coarse_->solve(b, x);
    return;
  }
  const Level& L = levels_[lvl];
  const auto smooth = [&](bool forward) {
    if (opt_.smoother == Smoother::kChebyshev)
      chebyshev(L.a, L.diag, b, x, L.eig_min, L.eig_max, opt_.cheby_degree,
                L.cheb);
    else
      gauss_seidel(L.a, b, x, forward);
  };
  for (int s = 0; s < opt_.pre_smooth; ++s) smooth(/*forward=*/true);
  // Residual and restriction.
  std::vector<double>& res = scratch_r_[lvl];
  L.a.matvec(x, res);
  for (std::size_t i = 0; i < res.size(); ++i) res[i] = b[i] - res[i];
  const std::size_t nc = static_cast<std::size_t>(L.p.cols());
  std::vector<double> bc(nc), xc(nc, 0.0);
  L.r.matvec(res, bc);
  cycle(lvl + 1, bc, xc);
  // Prolongate and correct.
  std::vector<double>& corr = scratch_x_[lvl];
  L.p.matvec(xc, corr);
  for (std::size_t i = 0; i < corr.size(); ++i) x[i] += corr[i];
  for (int s = 0; s < opt_.post_smooth; ++s) smooth(/*forward=*/false);
}

void Amg::vcycle(std::span<const double> b, std::span<double> x) const {
  OBS_HIST_SPAN("amg.vcycle");
  cycle(0, b, x);
}

void Amg::solve(std::span<const double> b, std::span<double> x,
                int cycles) const {
  if (!opt_.track_convergence) {
    for (int c = 0; c < cycles; ++c) vcycle(b, x);
    return;
  }
  const la::Csr& a = levels_.empty() ? coarse_a_ : levels_.front().a;
  std::vector<double> res(static_cast<std::size_t>(a.rows()));
  const auto residual_norm = [&] {
    a.matvec(x, res);
    double sum = 0.0;
    for (std::size_t i = 0; i < res.size(); ++i) {
      const double r = b[i] - res[i];
      sum += r * r;
    }
    return std::sqrt(sum);
  };
  factors_.clear();
  double prev = residual_norm();
  for (int c = 0; c < cycles; ++c) {
    vcycle(b, x);
    const double cur = residual_norm();
    factors_.push_back(prev > 0.0 ? cur / prev : 0.0);
    prev = cur;
  }
  obs::record_history("amg.solve.factors", factors_);
}

double Amg::operator_complexity() const {
  double total = 0.0;
  for (const LevelStats& s : stats_) total += static_cast<double>(s.nnz);
  return total / static_cast<double>(stats_.front().nnz);
}

double Amg::grid_complexity() const {
  double total = 0.0;
  for (const LevelStats& s : stats_) total += static_cast<double>(s.n);
  return total / static_cast<double>(stats_.front().n);
}

}  // namespace alps::amg
