#include "rhea/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "io/vtk.hpp"
#include "mesh/fields.hpp"
#include "obs/dump.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "obs/serve.hpp"
#include "obs/telemetry.hpp"
#include "octree/mark.hpp"
#include "octree/partition.hpp"
#include "rhea/diagnostics.hpp"

namespace alps::rhea {

namespace {

/// The calling rank's obs phase accumulators under the paper's names.
/// minres excludes the preconditioner applications nested inside it,
/// matching the historical PhaseTimers convention.
PhaseTimers read_phases() {
  PhaseTimers t;
  t.new_tree = obs::phase_seconds("amr.new_tree");
  t.coarsen_refine = obs::phase_seconds("amr.coarsen_refine");
  t.balance = obs::phase_seconds("amr.balance");
  t.partition = obs::phase_seconds("amr.partition");
  t.extract_mesh = obs::phase_seconds("amr.extract_mesh");
  t.interpolate_fields = obs::phase_seconds("amr.interpolate_fields");
  t.transfer_fields = obs::phase_seconds("amr.transfer_fields");
  t.mark_elements = obs::phase_seconds("amr.mark_elements");
  t.time_integration = obs::phase_seconds("energy.time_integration");
  t.stokes_assemble = obs::phase_seconds("stokes.assemble");
  t.amg_setup = obs::phase_seconds("amg.setup");
  t.amg_apply = obs::phase_seconds("amg.apply");
  t.minres =
      obs::phase_seconds("stokes.minres") - obs::phase_seconds("amg.apply");
  return t;
}

}  // namespace

Simulation::Simulation(par::Comm& comm, SimConfig cfg)
    : comm_(&comm), cfg_(std::move(cfg)),
      forest_(Forest::new_uniform(comm, cfg_.conn, 0)) {
  base_ = read_phases();
  OBS_PHASE_SPAN("amr.new_tree");
  forest_ = Forest::new_uniform(comm, cfg_.conn, cfg_.init_level);
}

PhaseTimers Simulation::timers() const {
  PhaseTimers t = read_phases();
  t.new_tree -= base_.new_tree;
  t.coarsen_refine -= base_.coarsen_refine;
  t.balance -= base_.balance;
  t.partition -= base_.partition;
  t.extract_mesh -= base_.extract_mesh;
  t.interpolate_fields -= base_.interpolate_fields;
  t.transfer_fields -= base_.transfer_fields;
  t.mark_elements -= base_.mark_elements;
  t.time_integration -= base_.time_integration;
  t.stokes_assemble -= base_.stokes_assemble;
  t.amg_setup -= base_.amg_setup;
  t.amg_apply -= base_.amg_apply;
  t.minres -= base_.minres;
  return t;
}

std::int64_t Simulation::global_elements() const {
  return comm_->allreduce_sum(forest_.tree().num_local());
}

void Simulation::initialize(
    const std::function<double(const std::array<double, 3>&)>& t0) {
  mesh_ = mesh::extract_mesh(*comm_, forest_);
  amg_cache_.bump_epoch();
  temperature_ = fem::interpolate(mesh_, t0);

  // Resolve the initial condition: a few mark/adapt/extract rounds where
  // the temperature is re-sampled analytically on the new mesh.
  for (int round = 0; round < cfg_.initial_adapt_rounds; ++round) {
    const std::vector<double> eta =
        gradient_indicator(mesh_, forest_.connectivity(), temperature_);
    octree::MarkOptions mopt;
    mopt.target_elements =
        cfg_.target_elements > 0 ? cfg_.target_elements : global_elements();
    mopt.tolerance = cfg_.mark_tolerance;
    mopt.coarsen_ratio = cfg_.coarsen_ratio;
    mopt.min_level = cfg_.min_level;
    mopt.max_level = cfg_.max_level;
    const std::vector<std::int8_t> flags =
        octree::mark_elements(*comm_, forest_.tree(), eta, mopt);
    forest_.tree().adapt(flags, cfg_.min_level, cfg_.max_level);
    forest_.balance(*comm_);
    forest_.partition(*comm_);
    mesh_ = mesh::extract_mesh(*comm_, forest_);
    amg_cache_.bump_epoch();
    temperature_ = fem::interpolate(mesh_, t0);
  }
  solution_.assign(static_cast<std::size_t>(mesh_.n_local) * 4, 0.0);
  update_velocity();
}

void Simulation::update_velocity() {
  if (cfg_.prescribed_velocity) {
    energy_.reset();
    for (std::int64_t d = 0; d < mesh_.n_local; ++d) {
      const auto v = cfg_.prescribed_velocity(
          mesh_.dof_coords[static_cast<std::size_t>(d)], time_);
      for (int c = 0; c < 3; ++c)
        solution_[static_cast<std::size_t>(d) * 4 + static_cast<std::size_t>(c)] =
            v[static_cast<std::size_t>(c)];
      solution_[static_cast<std::size_t>(d) * 4 + 3] = 0.0;
    }
    return;
  }
  energy_.reset();  // velocity changes invalidate the SUPG operator
  // StokesSolver accumulates the stokes.assemble / amg.setup / amg.apply /
  // stokes.minres obs phases itself; the PicardResult timings are only for
  // callers outside a rank context.
  last_stokes_ = stokes::solve_nonlinear_stokes(
      *comm_, mesh_, forest_.connectivity(), cfg_.law, temperature_,
      solution_, cfg_.picard, &amg_cache_);
}

void Simulation::extract_and_rebuild(std::span<const double> element_temps) {
  {
    OBS_PHASE_SPAN("amr.extract_mesh");
    // One ghost layer per adaptation, shared with the extractor. The
    // incremental path reuses the previous mesh's corner constraints when
    // ownership ranges are unchanged (no repartition since the last
    // extraction) and falls back to a full rebuild otherwise.
    std::vector<octree::Octant> ghosts =
        mesh::ghost_layer(*comm_, forest_.tree(), forest_.connectivity());
    mesh::ExtractStats stats;
    mesh_ = mesh::extract_mesh_incremental(*comm_, forest_, std::move(ghosts),
                                           mesh_, &stats);
    last_extract_ = stats;
  }
  amg_cache_.bump_epoch();  // new mesh: every cached AMG structure is stale
  temperature_ = mesh::from_element_values(*comm_, mesh_, element_temps);
  solution_.assign(static_cast<std::size_t>(mesh_.n_local) * 4, 0.0);
  energy_.reset();
}

void Simulation::adapt_once() {
  AdaptationStats stats;
  octree::LinearOctree& tree = forest_.tree();

  // MARKELEMENTS.
  std::vector<std::int8_t> flags;
  {
    OBS_PHASE_SPAN("amr.mark_elements");
    std::vector<double> eta;
    if (cfg_.goal_region) {
      eta = adjoint_indicator(*comm_, mesh_, forest_.connectivity(),
                              temperature_, solution_, cfg_.goal_region,
                              cfg_.energy.kappa, cfg_.adjoint_pseudo_steps);
    } else if (cfg_.strain_weight > 0.0) {
      eta = yielding_indicator(mesh_, forest_.connectivity(), temperature_,
                               solution_, cfg_.strain_weight);
    } else {
      eta = gradient_indicator(mesh_, forest_.connectivity(), temperature_);
    }
    octree::MarkOptions mopt;
    mopt.target_elements =
        cfg_.target_elements > 0 ? cfg_.target_elements : global_elements();
    mopt.tolerance = cfg_.mark_tolerance;
    mopt.coarsen_ratio = cfg_.coarsen_ratio;
    mopt.min_level = cfg_.min_level;
    mopt.max_level = cfg_.max_level;
    flags = octree::mark_elements(*comm_, tree, eta, mopt);
  }

  // Snapshot old state and element-value field.
  std::vector<double> ev = mesh::to_element_values(mesh_, temperature_);
  const std::vector<octree::Octant> old_leaves = tree.leaves();

  // COARSENTREE + REFINETREE.
  {
    OBS_PHASE_SPAN("amr.coarsen_refine");
    tree.adapt(flags, cfg_.min_level, cfg_.max_level);
  }
  const std::int64_t n_after_adapt = comm_->allreduce_sum(tree.num_local());

  // Fig. 5 statistics: what marking alone did (balance additions are
  // counted separately, matching the paper's categories).
  {
    const octree::Correspondence corr_adapt =
        octree::compute_correspondence(old_leaves, tree.leaves());
    std::int64_t refined = 0, coarsened = 0, unchanged = 0;
    std::int64_t last_refined_old = -1;
    for (const auto& en : corr_adapt.entries) {
      switch (en.kind) {
        case octree::Correspondence::Kind::kSame:
          unchanged++;
          break;
        case octree::Correspondence::Kind::kRefined:
          if (en.old_begin != last_refined_old) {
            refined++;
            last_refined_old = en.old_begin;
          }
          break;
        case octree::Correspondence::Kind::kCoarsened:
          coarsened += en.old_end - en.old_begin;
          break;
      }
    }
    stats.refined = comm_->allreduce_sum(refined);
    stats.coarsened = comm_->allreduce_sum(coarsened);
    stats.unchanged = comm_->allreduce_sum(unchanged);
  }

  // BALANCETREE.
  {
    OBS_PHASE_SPAN("amr.balance");
    forest_.balance(*comm_);
  }
  stats.balance_added =
      comm_->allreduce_sum(tree.num_local()) - n_after_adapt;

  // INTERPOLATEFIELDS.
  {
    OBS_PHASE_SPAN("amr.interpolate_fields");
    const octree::Correspondence corr =
        octree::compute_correspondence(old_leaves, tree.leaves());
    // Transient workspace: the old-leaf snapshot, the correspondence, and
    // the element-value field live only for this interpolation.
    OBS_MEM_SCOPE("amr.workspace", obs::vec_bytes(old_leaves) +
                                       obs::vec_bytes(corr.entries) +
                                       obs::vec_bytes(ev));
    ev = mesh::interpolate_element_values(old_leaves, tree.leaves(), corr, ev);
  }

  // PARTITIONTREE + TRANSFERFIELDS. octree::partition accumulates the two
  // stages into the amr.partition / amr.transfer_fields phases itself.
  // With a partition_threshold set, adaptations that keep the element
  // distribution balanced enough skip both stages; ownership ranges then
  // stay fixed and EXTRACTMESH below runs incrementally.
  bool repartition = true;
  if (cfg_.partition_threshold > 0.0) {
    const std::int64_t total = comm_->allreduce_sum(tree.num_local());
    const std::int64_t mx = comm_->allreduce_max(tree.num_local());
    const double imbalance =
        total > 0 ? static_cast<double>(mx) * comm_->size() /
                        static_cast<double>(total)
                  : 1.0;
    repartition = imbalance > cfg_.partition_threshold;
  }
  if (repartition) {
    octree::LeafPayload payload{8, std::move(ev)};
    octree::LeafPayload* ps[] = {&payload};
    forest_.partition(*comm_, ps);
    ev = std::move(payload.data);
  }

  // EXTRACTMESH + nodal rebuild.
  extract_and_rebuild(ev);

  // Level histogram and totals.
  std::array<std::int64_t, 20> hist{};
  for (const auto& o : tree.leaves())
    hist[static_cast<std::size_t>(o.level)]++;
  for (std::size_t l = 0; l < hist.size(); ++l)
    stats.per_level[l] = comm_->allreduce_sum(hist[l]);
  stats.total_elements = global_elements();
  adapt_history_.push_back(stats);
}

void Simulation::run(int steps) {
  const obs::CounterId vcycles_id = obs::wellknown::amg_vcycles();
  for (int s = 0; s < steps; ++s) {
    const std::uint64_t vc0 = obs::counter_value(comm_->rank(), vcycles_id);
    const PhaseTimers phases0 = timers();
    bool adapted = false;
    // True only when a Stokes solve ran THIS step: last_stokes_ persists
    // across steps, and the endpoint's stagnation tracker must not recount
    // a stale result on energy-only steps.
    bool stokes_solved = false;
    if (steps_ > 0 && cfg_.adapt_every > 0 && steps_ % cfg_.adapt_every == 0) {
      adapt_once();
      update_velocity();
      adapted = true;
      stokes_solved = !cfg_.prescribed_velocity;
    } else if (!cfg_.prescribed_velocity && cfg_.stokes_every > 0 &&
               steps_ % cfg_.stokes_every == 0 && steps_ > 0) {
      update_velocity();
      stokes_solved = true;
    } else if (cfg_.prescribed_velocity && cfg_.time_dependent_velocity) {
      update_velocity();  // analytic refresh for time-dependent fields
    }

    double dt = 0.0;
    {
      OBS_PHASE_SPAN("energy.time_integration");
      if (!energy_)
        energy_ = std::make_unique<energy::EnergySolver>(
            *comm_, mesh_, forest_.connectivity(), solution_, cfg_.energy);
      dt = energy_->stable_dt(*comm_);
      // Slow-rank test hook: stable_dt's allreduce just synchronized all
      // ranks, so sleeping here delays this rank's halo sends inside the
      // energy step — the other ranks' blocked receives must show up as
      // late-sender time attributed to cfg_.slow_rank.
      if (comm_->rank() == cfg_.slow_rank && cfg_.slow_rank_us > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.slow_rank_us));
      energy_->step(*comm_, temperature_, dt);
      time_ += dt;
      steps_++;
    }

    if (steps_ == cfg_.nan_inject_step && comm_->rank() == 0 &&
        !temperature_.empty())
      temperature_[0] = std::numeric_limits<double>::quiet_NaN();

    // The analyzer exchange is collective, so the gate must evaluate
    // identically on every rank (all three flags are process-global). The
    // metrics endpoint rides on this same exchange — its element counts
    // and latency histograms travel in the analysis blob, so serving adds
    // zero collectives per step.
    obs::analysis::StepRecord arec;
    const bool analyzed =
        obs::analysis_enabled() &&
        (obs::telemetry_enabled() || obs::serve_active());
    if (analyzed) {
      obs::gauge_set("mesh.local_elements",
                     static_cast<double>(forest_.tree().num_local()));
      arec = obs::analysis::analyze_step(*comm_, steps_);
    }

    // Memory accounting + aggregation every step (decoupled from the
    // analysis gate: the drift detector must run even without telemetry).
    // analyze_memory is collective; mem_enabled() is process-global.
    obs::analysis::MemRecord mrec;
    std::string drift_json;
    const bool mem_on = obs::mem_enabled();
    if (mem_on) {
      account_memory();
      mrec = obs::analysis::analyze_memory(*comm_, steps_);
      drift_json = update_mem_drift(mrec, adapted);
    }

    if (obs::telemetry_enabled()) {
      // This step's phase seconds on the calling rank (rank 0 writes them
      // into the "timings" telemetry block).
      PhaseTimers pd = timers();
      pd.mark_elements -= phases0.mark_elements;
      pd.coarsen_refine -= phases0.coarsen_refine;
      pd.balance -= phases0.balance;
      pd.partition -= phases0.partition;
      pd.extract_mesh -= phases0.extract_mesh;
      pd.interpolate_fields -= phases0.interpolate_fields;
      pd.transfer_fields -= phases0.transfer_fields;
      pd.time_integration -= phases0.time_integration;
      pd.stokes_assemble -= phases0.stokes_assemble;
      pd.amg_setup -= phases0.amg_setup;
      pd.amg_apply -= phases0.amg_apply;
      pd.minres -= phases0.minres;
      emit_step_telemetry(
          dt, obs::counter_value(comm_->rank(), vcycles_id) - vc0, adapted,
          pd, analyzed ? &arec : nullptr, mem_on ? &mrec : nullptr,
          drift_json);
    }
    if (obs::serve_active() && analyzed && comm_->rank() == 0)
      publish_metrics(dt, stokes_solved, arec, mem_on ? &mrec : nullptr);
    // The drift record is in the telemetry tail by now, so the flight
    // recorder captures it. The trip is computed from allgathered data,
    // so every rank reaches this together.
    if (mem_drift_trip_) mem_drift_panic();
    if (cfg_.sentinels) check_sentinels();
  }
}

void Simulation::account_memory() {
  using obs::mem_scope;
  using obs::mem_set;
  static const obs::MemScopeId kForest = mem_scope("forest.octants");
  static const obs::MemScopeId kMeshTopo = mem_scope("mesh.topology");
  static const obs::MemScopeId kMeshDofs = mem_scope("mesh.dofs");
  static const obs::MemScopeId kMeshHalo = mem_scope("mesh.halo");
  static const obs::MemScopeId kFemPlan = mem_scope("fem.plan");
  static const obs::MemScopeId kEnergy = mem_scope("energy.fields");
  static const obs::MemScopeId kFields = mem_scope("rhea.fields");
  static const obs::MemScopeId kAmgOps = mem_scope("amg.operators");
  static const obs::MemScopeId kAmgInterp = mem_scope("amg.interpolation");
  static const obs::MemScopeId kAmgRap = mem_scope("amg.rap_plan");
  static const obs::MemScopeId kAmgCoarse = mem_scope("amg.coarse");
  static const obs::MemScopeId kAmgCache = mem_scope("amg.cache");
  static const obs::MemScopeId kMailbox = mem_scope("par.mailbox");
  static const obs::MemScopeId kObsSelf = mem_scope("obs.self");
  static const obs::MemScopeId kObsTel = mem_scope("obs.telemetry");
  static const obs::MemScopeId kInject = mem_scope("test.drift_inject");

  mem_set(kForest, forest_.memory_bytes());
  const mesh::Mesh::MemoryBytes mb = mesh_.memory_bytes();
  mem_set(kMeshTopo, mb.topology);
  mem_set(kMeshDofs, mb.dofs);
  mem_set(kMeshHalo, mb.halo);
  mem_set(kFemPlan, energy_ ? energy_->op().memory_bytes() : 0);
  mem_set(kEnergy, energy_ ? energy_->memory_bytes() : 0);
  mem_set(kFields,
          obs::vec_bytes(temperature_) + obs::vec_bytes(solution_));

  amg::DistAmg::MemoryBytes ab;
  for (const auto& a : amg_cache_.amg) {
    if (!a) continue;
    const amg::DistAmg::MemoryBytes m = a->memory_bytes();
    ab.operators += m.operators;
    ab.interpolation += m.interpolation;
    ab.rap += m.rap;
    ab.coarse += m.coarse;
    ab.scratch += m.scratch;
  }
  mem_set(kAmgOps, ab.operators);
  mem_set(kAmgInterp, ab.interpolation);
  mem_set(kAmgRap, ab.rap);
  mem_set(kAmgCoarse, ab.coarse);
  // The cache scope holds what reuse keeps alive beyond the operators
  // themselves: the viscosity snapshot and the cycle workspaces.
  mem_set(kAmgCache, obs::vec_bytes(amg_cache_.eta_snapshot) + ab.scratch);

  mem_set(kMailbox, comm_->pending_recv_bytes());
  mem_set(kObsSelf, obs::self_memory_bytes());
  mem_set(kObsTel, obs::telemetry_tail_bytes());
  // Synthetic linear leak for the drift-detector acceptance test.
  const std::uint64_t inject =
      (comm_->rank() == cfg_.mem_drift_inject_rank &&
       cfg_.mem_drift_inject_bytes > 0)
          ? static_cast<std::uint64_t>(steps_) *
                static_cast<std::uint64_t>(cfg_.mem_drift_inject_bytes)
          : 0;
  mem_set(kInject, inject);
}

std::string Simulation::update_mem_drift(const obs::analysis::MemRecord& mrec,
                                         bool adapted) {
  if (adapted) {
    // Footprint discontinuities across an adaptation are expected; start
    // a fresh window on the new mesh.
    mem_window_.clear();
    mem_window_rss_.clear();
  }
  mem_window_.push_back(mrec.acc_by_rank);
  mem_window_rss_.push_back(mrec.rss_available ? mrec.rss_max : 0);
  const std::size_t w =
      static_cast<std::size_t>(std::max(3, cfg_.mem_drift_window));
  while (mem_window_.size() > w) {
    mem_window_.erase(mem_window_.begin());
    mem_window_rss_.erase(mem_window_rss_.begin());
  }
  if (mem_window_.size() < w) return {};

  // Least-squares slope of y over sample index 0..n-1.
  const std::size_t n = mem_window_.size();
  const auto slope_of = [n](const std::function<double(std::size_t)>& y) {
    const double xbar = static_cast<double>(n - 1) / 2.0;
    double ybar = 0.0;
    for (std::size_t i = 0; i < n; ++i) ybar += y(i);
    ybar /= static_cast<double>(n);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - xbar;
      num += dx * (y(i) - ybar);
      den += dx * dx;
    }
    return num / den;
  };

  const std::size_t ranks = mem_window_.front().size();
  double max_slope = 0.0;
  int arg = -1;
  for (std::size_t r = 0; r < ranks; ++r) {
    const double s = slope_of([this, r](std::size_t i) {
      return static_cast<double>(mem_window_[i][r]);
    });
    if (arg < 0 || s > max_slope) {
      max_slope = s;
      arg = static_cast<int>(r);
    }
  }
  const double rss_slope = slope_of([this](std::size_t i) {
    return static_cast<double>(mem_window_rss_[i]);
  });

  const bool warn = max_slope > cfg_.mem_drift_warn_bytes_per_step;
  const bool panic = cfg_.mem_drift_panic_bytes_per_step > 0.0 &&
                     max_slope > cfg_.mem_drift_panic_bytes_per_step;
  if (panic && !mem_drift_trip_) {
    mem_drift_trip_ = true;
    std::ostringstream os;
    os << "memory drift: rank " << arg << " accounted bytes growing ~"
       << static_cast<long long>(max_slope) << " bytes/step over last " << n
       << " steps";
    mem_drift_reason_ = os.str();
  }

  std::ostringstream os;
  os.precision(9);
  os << "{\"window\":" << w << ",\"samples\":" << n
     << ",\"slope_bytes_per_step\":" << max_slope << ",\"rank\":" << arg
     << ",\"rss_slope_bytes_per_step\":" << rss_slope
     << ",\"warn\":" << (warn ? "true" : "false")
     << ",\"panic\":" << (panic ? "true" : "false") << "}";
  return os.str();
}

void Simulation::mem_drift_panic() {
  // Mirrors check_sentinels: the trip was derived from allgathered data,
  // so every rank arrives here together and the barriers keep the other
  // rank threads quiescent while rank 0 reads their obs slots.
  comm_->barrier();
  if (comm_->rank() == 0) {
    obs::metrics_mark_unhealthy(mem_drift_reason_);
    obs::panic_dump(mem_drift_reason_);
  }
  comm_->barrier();
  throw SentinelError(mem_drift_reason_);
}

void Simulation::emit_step_telemetry(
    double dt, std::uint64_t step_vcycles, bool adapted,
    const PhaseTimers& step_phases, const obs::analysis::StepRecord* analysis,
    const obs::analysis::MemRecord* mem, const std::string& drift_json) {
  // Collective statistics first (every rank participates), then one rank
  // writes the record.
  const std::int64_t local_elements = forest_.tree().num_local();
  const std::int64_t total_elements = comm_->allreduce_sum(local_elements);
  const std::int64_t max_elements = comm_->allreduce_max(local_elements);
  const double imbalance =
      total_elements > 0
          ? static_cast<double>(max_elements) * comm_->size() /
                static_cast<double>(total_elements)
          : 1.0;

  std::array<std::int64_t, 20> hist{};
  for (const auto& o : forest_.tree().leaves())
    hist[static_cast<std::size_t>(o.level)]++;
  hist = comm_->allreduce(
      hist,
      [](const std::array<std::int64_t, 20>& a,
         const std::array<std::int64_t, 20>& b) {
        std::array<std::int64_t, 20> r;
        for (std::size_t i = 0; i < r.size(); ++i) r[i] = a[i] + b[i];
        return r;
      });
  int max_level = 0;
  for (std::size_t l = 0; l < hist.size(); ++l)
    if (hist[l] > 0) max_level = static_cast<int>(l);

  const std::uint64_t vcycles = comm_->allreduce_sum(step_vcycles);
  const PhysicsDiagnostics phys = compute_physics_diagnostics(
      *comm_, mesh_, forest_.connectivity(), temperature_, solution_,
      cfg_.energy.kappa);

  if (comm_->rank() != 0) return;
  obs::TelemetryRecord rec;
  rec.field("step", static_cast<std::int64_t>(steps_))
      .field("time", time_)
      .field("dt", dt)
      .field("ranks", comm_->size())
      .field("elements", total_elements)
      .field("dofs", mesh_.n_global)
      .field("partition_imbalance", imbalance)
      .field("per_level",
             std::span<const std::int64_t>(hist.data(),
                                           static_cast<std::size_t>(max_level) +
                                               1))
      .field("picard_iterations",
             static_cast<std::int64_t>(last_stokes_.iterations))
      .field("amg_vcycles", vcycles);
  if (!last_stokes_.solves.empty()) {
    const la::SolveResult& kr = last_stokes_.solves.back();
    rec.field("minres_iterations", static_cast<std::int64_t>(kr.iterations))
        .field("minres_relres", kr.relative_residual)
        .field("minres_status", la::to_string(kr.status));
  }
  rec.field("nusselt", phys.nusselt)
      .field("v_rms", phys.v_rms)
      .field("t_min", phys.t_min)
      .field("t_max", phys.t_max)
      .field("t_mean", phys.t_mean);
  {
    // Rank 0's per-phase seconds for this step: the AMR cycle stages (all
    // ~0 on non-adapting steps), the extraction reuse statistics of the
    // most recent EXTRACTMESH, and the solver phases so consumers can
    // compute the AMR share of the step (Fig. 10).
    std::ostringstream os;
    os.precision(9);
    os << "{\"adapted\":" << (adapted ? "true" : "false")
       << ",\"mark\":" << step_phases.mark_elements
       << ",\"coarsen_refine\":" << step_phases.coarsen_refine
       << ",\"balance\":" << step_phases.balance
       << ",\"partition\":" << step_phases.partition
       << ",\"extract\":" << step_phases.extract_mesh
       << ",\"interpolate\":" << step_phases.interpolate_fields
       << ",\"transfer\":" << step_phases.transfer_fields
       << ",\"time_integration\":" << step_phases.time_integration
       << ",\"stokes\":"
       << step_phases.minres + step_phases.amg_setup + step_phases.amg_apply +
              step_phases.stokes_assemble;
    if (adapted)
      os << ",\"extract_reused\":" << last_extract_.reused
         << ",\"extract_recomputed\":" << last_extract_.recomputed
         << ",\"extract_fallback\":"
         << (last_extract_.fallback ? "true" : "false");
    os << "}";
    rec.field_json("timings", os.str());
  }
  if (analysis != nullptr)
    rec.field_json("critical_path",
                   obs::analysis::critical_path_json(*analysis))
        .field_json("wait_states", obs::analysis::wait_states_json(*analysis))
        .field_json("latency", obs::analysis::latency_json(*analysis));
  if (mem != nullptr)
    rec.field_json("memory",
                   obs::analysis::memory_json(*mem, mesh_.n_global, drift_json));
  obs::telemetry_emit(rec);
}

void Simulation::publish_metrics(double dt, bool stokes_solved,
                                 const obs::analysis::StepRecord& arec,
                                 const obs::analysis::MemRecord* mem) {
  obs::MetricsSnapshot snap;
  snap.step = steps_;
  snap.sim_time = time_;
  snap.dt = dt;
  snap.dofs = mesh_.n_global;
  snap.ranks = comm_->size();
  for (const obs::analysis::GaugeStat& g : arec.gauges) {
    if (g.name == "mesh.local_elements") {
      snap.elements = static_cast<std::int64_t>(g.sum);
      snap.partition_imbalance =
          g.sum > 0 ? g.max * comm_->size() / g.sum : 1.0;
    }
  }
  snap.cp_imbalance = arec.cp_imbalance;
  snap.solver_ran = stokes_solved;
  if (stokes_solved && !last_stokes_.solves.empty()) {
    const la::SolveResult& kr = last_stokes_.solves.back();
    snap.solver_status = la::to_string(kr.status);
    snap.solver_iterations = kr.iterations;
    snap.solver_relres = kr.relative_residual;
    snap.picard_iterations = last_stokes_.iterations;
  }
  snap.counters = arec.counters;
  snap.hists = obs::analysis::merged_histograms();
  for (const obs::analysis::PhaseWaits& w : arec.waits)
    snap.wait_blocked_s +=
        w.w.late_sender_s + w.w.transfer_s + w.w.collective_s;
  if (mem != nullptr && mem->enabled) {
    snap.mem_available = true;
    snap.mem_accounted_total = mem->acc_total;
    snap.mem_rss_max = mem->rss_available ? mem->rss_max : 0;
  }
  obs::metrics_publish(snap);
}

void Simulation::check_sentinels() {
  bool bad = false;
  for (std::int64_t i = 0; i < mesh_.n_owned && !bad; ++i)
    bad = !std::isfinite(temperature_[static_cast<std::size_t>(i)]);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(mesh_.n_owned) * 4 && !bad; ++i)
    bad = !std::isfinite(solution_[i]);
  if (!comm_->allreduce_or(bad)) return;

  // Every rank reaches this point together (collective trip), so the
  // collective snapshot and the barriers below are safe.
  const std::string reason =
      "sentinel: non-finite temperature/solution after step " +
      std::to_string(steps_) + " (t = " + std::to_string(time_) + ")";
  const std::string dir = obs::dump_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    // Field snapshot: temperature plus the three velocity components.
    // NaNs are written as-is; ParaView renders them as holes.
    std::vector<io::VtkField> fields;
    fields.push_back(
        {"temperature", mesh::to_element_values(mesh_, temperature_)});
    std::vector<double> comp(static_cast<std::size_t>(mesh_.n_local));
    const char* names[3] = {"vx", "vy", "vz"};
    for (int c = 0; c < 3; ++c) {
      for (std::int64_t i = 0; i < mesh_.n_local; ++i)
        comp[static_cast<std::size_t>(i)] =
            solution_[static_cast<std::size_t>(i) * 4 +
                      static_cast<std::size_t>(c)];
      fields.push_back({names[c], mesh::to_element_values(mesh_, comp)});
    }
    io::write_vtk(*comm_, forest_.connectivity(), mesh_, dir + "/snapshot.vtk",
                  fields);
  }
  // Rank 0 reads every rank's obs slot in panic_dump; the surrounding
  // barriers keep the other rank threads quiescent (and provide the
  // happens-before edges) while it does.
  comm_->barrier();
  if (comm_->rank() == 0) {
    obs::metrics_mark_unhealthy(reason);
    obs::panic_dump(reason);
  }
  comm_->barrier();
  throw SentinelError(reason);
}

}  // namespace alps::rhea
