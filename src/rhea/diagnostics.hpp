#pragma once
// Per-timestep physics diagnostics (paper Fig. 6): the scalar time series
// that tells whether a convection run is healthy — Nusselt number, RMS
// velocity, temperature extrema. Computed with the same 2x2x2 Gauss
// quadrature as assembly so the volume averages are consistent with the
// discretization. Collective (one allreduce), cheap (one mesh sweep), and
// emitted into the telemetry stream by the Simulation timestep loop.

#include <span>

#include "forest/connectivity.hpp"
#include "mesh/mesh.hpp"
#include "par/comm.hpp"

namespace alps::rhea {

struct PhysicsDiagnostics {
  /// Nu = 1 + <u_z T> / kappa, the classical volume-averaged advective
  /// heat-transport measure for the unit Rayleigh-Benard cell (1 when
  /// kappa <= 0 or the flow is at rest).
  double nusselt = 1.0;
  double v_rms = 0.0;   // sqrt(<|u|^2>), volume-averaged
  double t_min = 0.0;   // over owned dofs
  double t_max = 0.0;
  double t_mean = 0.0;  // volume-averaged
};

/// Compute the diagnostics for nodal temperature (n_local) and 4-component
/// velocity+pressure solution (4 * n_local). Collective.
PhysicsDiagnostics compute_physics_diagnostics(
    par::Comm& comm, const mesh::Mesh& m, const forest::Connectivity& conn,
    std::span<const double> temperature, std::span<const double> solution,
    double kappa);

}  // namespace alps::rhea
