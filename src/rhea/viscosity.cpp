#include "rhea/viscosity.hpp"

#include <algorithm>
#include <cmath>

namespace alps::rhea {

stokes::ViscosityLaw arrhenius(double eta0, double activation) {
  return [eta0, activation](const std::array<double, 3>&, double t,
                            double) { return eta0 * std::exp(-activation * t); };
}

stokes::ViscosityLaw three_layer_yielding(const YieldingLawOptions& opt) {
  return [opt](const std::array<double, 3>& x, double t, double edot) {
    const double z = x[2];
    const double arr = std::exp(-6.9 * t);
    double eta;
    if (z > 0.9) {
      eta = 10.0 * arr;
      if (edot > 0.0) eta = std::min(eta, opt.sigma_y / (2.0 * edot));
    } else if (z > 0.77) {
      eta = 0.8 * arr;
    } else {
      eta = 50.0 * arr;
    }
    return std::clamp(eta, opt.eta_min, opt.eta_max);
  };
}

}  // namespace alps::rhea
