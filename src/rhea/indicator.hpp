#pragma once
// Refinement criteria: per-element error indicators driving MARKELEMENTS.

#include <span>
#include <vector>

#include "mesh/mesh.hpp"

namespace alps::rhea {

/// Scaled temperature-gradient indicator: eta_e = h_e^(3/2) ||grad T||_e.
/// The h weighting makes the indicator an (approximate) local
/// interpolation-error bound, so equilibrating it equidistributes error.
std::vector<double> gradient_indicator(const mesh::Mesh& m,
                                       const forest::Connectivity& conn,
                                       std::span<const double> temperature);

/// Combined indicator adding a strain-rate term that tracks yielding
/// zones: eta_e += weight * h_e^(3/2) * max_q edot_q (velocity in the
/// 4-comp layout). Used by the Sec. VI yielding simulation.
std::vector<double> yielding_indicator(const mesh::Mesh& m,
                                       const forest::Connectivity& conn,
                                       std::span<const double> temperature,
                                       std::span<const double> velocity,
                                       double strain_weight);

/// Adjoint-weighted (goal-oriented) indicator — the paper's "adjoint-based
/// error estimators and refinement criteria": the adjoint of the
/// advection-diffusion equation (reversed velocity) is marched a few
/// explicit pseudo-steps from a terminal condition equal to the goal
/// region's characteristic function, and the local error proxy is
///   eta_e = h_e ||grad T||_e ||grad lambda||_e,
/// which concentrates refinement where errors can still reach the goal
/// functional J(T) = int_goal T. Collective.
std::vector<double> adjoint_indicator(
    par::Comm& comm, const mesh::Mesh& m, const forest::Connectivity& conn,
    std::span<const double> temperature, std::span<const double> velocity,
    const std::function<double(const std::array<double, 3>&)>& goal_region,
    double kappa, int pseudo_steps);

}  // namespace alps::rhea
