#pragma once
// RHEA end-to-end simulation driver: couples the SUPG energy equation,
// the nonlinear Stokes solve, and the full AMR cycle of Fig. 4 (mark ->
// coarsen/refine -> balance -> interpolate -> partition -> transfer ->
// extract). Every phase is timed under the paper's function names so the
// benches can print the Fig. 7 / Fig. 8 / Fig. 10 breakdowns, and every
// adaptation step records the Fig. 5 statistics.

#include <functional>
#include <stdexcept>

#include "energy/energy.hpp"
#include "obs/analysis.hpp"
#include "rhea/indicator.hpp"
#include "rhea/viscosity.hpp"
#include "stokes/picard.hpp"

namespace alps::rhea {

using forest::Connectivity;
using forest::Forest;
using mesh::Mesh;

/// Cumulative wall-clock seconds per phase (paper terminology). Since the
/// obs migration this is a *view*: Simulation::timers() materializes it
/// from the per-rank obs phase accumulators (obs::phase_seconds), minus a
/// snapshot taken at construction so several Simulations per rank body
/// don't bleed into each other.
struct PhaseTimers {
  double new_tree = 0, coarsen_refine = 0, balance = 0, partition = 0,
         extract_mesh = 0, interpolate_fields = 0, transfer_fields = 0,
         mark_elements = 0, time_integration = 0, minres = 0, amg_setup = 0,
         amg_apply = 0, stokes_assemble = 0;

  double amr_total() const {
    return coarsen_refine + balance + partition + extract_mesh +
           interpolate_fields + transfer_fields + mark_elements;
  }
  double total() const {
    return new_tree + amr_total() + time_integration + minres + amg_setup +
           amg_apply + stokes_assemble;
  }
};

/// Per-adaptation-step statistics (Fig. 5).
struct AdaptationStats {
  std::int64_t refined = 0;         // old elements split
  std::int64_t coarsened = 0;       // old elements absorbed into parents
  std::int64_t unchanged = 0;       // old elements kept
  std::int64_t balance_added = 0;   // extra elements from BalanceTree
  std::int64_t total_elements = 0;  // after the full cycle
  std::array<std::int64_t, 20> per_level{};
};

struct SimConfig {
  Connectivity conn = Connectivity::unit_cube();
  int init_level = 3;
  int min_level = 2;
  int max_level = 7;
  int initial_adapt_rounds = 2;
  std::int64_t target_elements = 0;  // 0 = hold the current count
  double mark_tolerance = 0.08;
  double coarsen_ratio = 0.05;
  int adapt_every = 16;

  /// Element-imbalance ratio (max_rank_elements * P / total) above which
  /// an adaptation repartitions. 0 keeps the historical behavior of
  /// repartitioning on every adaptation. When a threshold is set and the
  /// mesh stays balanced enough, PARTITIONTREE/TRANSFERFIELDS are skipped
  /// and the subsequent EXTRACTMESH runs incrementally (ownership ranges
  /// unchanged), reusing the corner constraints of untouched elements.
  double partition_threshold = 0.0;

  /// When set, velocity is prescribed analytically (transport-only runs,
  /// paper Sec. V); otherwise the nonlinear Stokes system is solved.
  std::function<std::array<double, 3>(const std::array<double, 3>&, double)>
      prescribed_velocity;
  /// Set when prescribed_velocity actually depends on time; a static field
  /// is sampled once per mesh rebuild instead of every step.
  bool time_dependent_velocity = false;

  energy::EnergyOptions energy{};
  stokes::PicardOptions picard{};
  stokes::ViscosityLaw law;  // required in convection mode

  /// When set, MARKELEMENTS is driven by the goal-oriented adjoint
  /// indicator instead of the plain gradient indicator: refinement
  /// concentrates where errors can still influence J(T) = int_goal T.
  std::function<double(const std::array<double, 3>&)> goal_region;
  int adjoint_pseudo_steps = 10;
  double strain_weight = 0.0;  // yielding-zone term in the indicator
  int stokes_every = 1;        // velocity update cadence (convection mode)

  /// Scan temperature and solution for NaN/Inf after every step (one local
  /// sweep + one allreduce_or). A trip writes the flight-recorder bundle
  /// (obs::panic_dump + a VTK field snapshot under ALPS_DUMP_DIR) on every
  /// rank's behalf and throws SentinelError.
  bool sentinels = true;
  /// Test hook: poison temperature_[0] on rank 0 at this step number to
  /// exercise the sentinel / flight-recorder path (-1 = never).
  int nan_inject_step = -1;
  /// Test hook: delay this rank by slow_rank_us microseconds inside every
  /// energy step, right before its halo sends are posted (-1 = never).
  /// The wait-state analyzer must then attribute the other ranks'
  /// late-sender time to this rank (obs::analysis acceptance check).
  int slow_rank = -1;
  int slow_rank_us = 0;

  /// Memory-drift detector (obs::mem): per-rank accounted bytes are
  /// linear-fitted over a sliding window of this many consecutive
  /// non-adapting steps (the window resets on every adaptation, where
  /// footprint changes are expected). Minimum 3.
  int mem_drift_window = 8;
  /// Fitted growth rate (bytes/step) above which a drift warning is
  /// embedded in the telemetry memory block's "drift" member.
  double mem_drift_warn_bytes_per_step = 1 << 20;
  /// Growth rate above which the flight recorder trips: the telemetry
  /// record is still emitted, then every rank writes/throws like the NaN
  /// sentinels (obs::panic_dump names the leaking rank, SentinelError
  /// propagates, exit code 3 through rhea_main). 0 = never panic.
  double mem_drift_panic_bytes_per_step = 0.0;
  /// Test hook: report steps_ * mem_drift_inject_bytes into the
  /// "test.drift_inject" scope on this rank (-1 = never), a synthetic
  /// linear leak that provably trips the detector.
  int mem_drift_inject_rank = -1;
  std::int64_t mem_drift_inject_bytes = 0;
};

/// Thrown (on every rank) when the NaN/Inf sentinels trip; the
/// flight-recorder bundle has already been written when this propagates.
class SentinelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Simulation {
 public:
  Simulation(par::Comm& comm, SimConfig cfg);

  /// Build the initial adapted mesh resolving T0 and set initial fields.
  void initialize(
      const std::function<double(const std::array<double, 3>&)>& t0);

  /// Advance `steps` time steps, adapting every cfg.adapt_every steps.
  void run(int steps);

  /// One adaptation cycle (public so benches can drive it directly).
  void adapt_once();

  const Mesh& mesh() const { return mesh_; }
  const Forest& forest() const { return forest_; }
  const std::vector<double>& temperature() const { return temperature_; }
  const std::vector<double>& solution() const { return solution_; }
  double time() const { return time_; }
  int steps_taken() const { return steps_; }
  /// This simulation's per-phase seconds on the calling rank, read from
  /// the obs phase accumulators. Call from inside the par::run rank body.
  PhaseTimers timers() const;
  const std::vector<AdaptationStats>& adapt_history() const {
    return adapt_history_;
  }
  std::int64_t global_elements() const;
  par::Comm& comm() { return *comm_; }

  /// Recompute the velocity (Stokes solve or prescription at `time_`).
  void update_velocity();

  /// Picard/MINRES statistics of the most recent Stokes solve; iterations
  /// is 0 until convection mode has solved at least once.
  const stokes::PicardResult& last_stokes() const { return last_stokes_; }

  /// What the most recent EXTRACTMESH did (element reuse vs recompute and
  /// whether the incremental path fell back to a full extraction).
  const mesh::ExtractStats& last_extract() const { return last_extract_; }

 private:
  void extract_and_rebuild(std::span<const double> element_temps);
  void emit_step_telemetry(double dt, std::uint64_t step_vcycles, bool adapted,
                           const PhaseTimers& step_phases,
                           const obs::analysis::StepRecord* analysis,
                           const obs::analysis::MemRecord* mem,
                           const std::string& drift_json);
  /// Rank 0 only: fill a MetricsSnapshot from this step's analysis record
  /// (element gauges, counters, cumulative latency histograms all arrived
  /// in the analysis exchange — no extra collectives) and hand it to the
  /// obs::serve double buffer.
  void publish_metrics(double dt, bool stokes_solved,
                       const obs::analysis::StepRecord& arec,
                       const obs::analysis::MemRecord* mem);
  void check_sentinels();

  /// Pull-model byte accounting: push every subsystem's current
  /// memory_bytes() into its obs::mem scope (once per step, cold path).
  void account_memory();
  /// Slide the drift window, fit per-rank growth, and return the drift
  /// JSON for the telemetry memory block ("" until the window is full).
  /// Sets mem_drift_trip_/mem_drift_reason_ when the panic threshold is
  /// exceeded; the throw happens later (after telemetry) in run().
  std::string update_mem_drift(const obs::analysis::MemRecord& mrec,
                               bool adapted);
  /// Collective panic path for a tripped drift detector (mirrors
  /// check_sentinels: barrier, rank-0 panic_dump, barrier, throw).
  [[noreturn]] void mem_drift_panic();

  par::Comm* comm_;
  SimConfig cfg_;
  Forest forest_;
  Mesh mesh_;
  std::vector<double> temperature_;  // nodal, n_local
  std::vector<double> solution_;     // 4-comp velocity+pressure
  double time_ = 0.0;
  int steps_ = 0;
  PhaseTimers base_;  // obs phase accumulators at construction time
  stokes::PicardResult last_stokes_;  // convection mode only
  mesh::ExtractStats last_extract_;   // most recent extraction
  std::vector<AdaptationStats> adapt_history_;
  // Cached SUPG operator; invalidated when the mesh or velocity changes.
  std::unique_ptr<energy::EnergySolver> energy_;
  // AMG hierarchies shared across Picard iterations and non-adapting
  // timesteps; its epoch is bumped on every mesh rebuild.
  amg::HierarchyCache amg_cache_;
  // Drift-detector window: one row per non-adapting step, per-rank
  // accounted bytes (identical on every rank — analyze_memory allgathers
  // them — so the trip decision below is collective-safe without another
  // reduction). Cleared on every adaptation.
  std::vector<std::vector<std::uint64_t>> mem_window_;
  std::vector<std::uint64_t> mem_window_rss_;  // max-rank RSS per row
  bool mem_drift_trip_ = false;
  std::string mem_drift_reason_;
};

}  // namespace alps::rhea
