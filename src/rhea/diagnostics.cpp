#include "rhea/diagnostics.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "fem/operators.hpp"

namespace alps::rhea {

PhysicsDiagnostics compute_physics_diagnostics(
    par::Comm& comm, const mesh::Mesh& m, const forest::Connectivity& conn,
    std::span<const double> temperature, std::span<const double> solution,
    double kappa) {
  const auto& shapes = fem::shape_values();
  // Local quadrature sums: volume, u_z T, |u|^2, T. Elements are owned
  // leaves (never replicated across ranks), so one allreduce over the
  // packed sums yields the global integrals.
  std::array<double, 4> sums{};
  std::array<double, 8> te, ue[3];
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::MappedQuad mq =
        fem::map_element(fem::element_geometry(m, conn, e));
    // Gather nodal values through the hanging-node constraints.
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      double t = 0.0;
      std::array<double, 3> u{};
      for (int k = 0; k < cc.n; ++k) {
        const std::size_t d =
            static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]);
        const double w = cc.w[static_cast<std::size_t>(k)];
        t += w * temperature[d];
        for (int c = 0; c < 3; ++c)
          u[static_cast<std::size_t>(c)] +=
              w * solution[4 * d + static_cast<std::size_t>(c)];
      }
      te[static_cast<std::size_t>(i)] = t;
      for (int c = 0; c < 3; ++c)
        ue[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
            u[static_cast<std::size_t>(c)];
    }
    for (int q = 0; q < fem::kQuad; ++q) {
      double tq = 0.0;
      std::array<double, 3> uq{};
      for (int i = 0; i < 8; ++i) {
        const double n = shapes[static_cast<std::size_t>(q)]
                               [static_cast<std::size_t>(i)];
        tq += n * te[static_cast<std::size_t>(i)];
        for (int c = 0; c < 3; ++c)
          uq[static_cast<std::size_t>(c)] +=
              n * ue[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)];
      }
      const double w = mq.jxw[static_cast<std::size_t>(q)];
      sums[0] += w;
      sums[1] += w * uq[2] * tq;
      sums[2] += w * (uq[0] * uq[0] + uq[1] * uq[1] + uq[2] * uq[2]);
      sums[3] += w * tq;
    }
  }
  sums = comm.allreduce(
      sums, [](const std::array<double, 4>& a, const std::array<double, 4>& b) {
        std::array<double, 4> r;
        for (std::size_t i = 0; i < r.size(); ++i) r[i] = a[i] + b[i];
        return r;
      });

  PhysicsDiagnostics d;
  const double vol = sums[0];
  if (vol > 0.0) {
    d.v_rms = std::sqrt(sums[2] / vol);
    d.t_mean = sums[3] / vol;
    if (kappa > 0.0) d.nusselt = 1.0 + sums[1] / vol / kappa;
  }
  double tmin = std::numeric_limits<double>::infinity();
  double tmax = -std::numeric_limits<double>::infinity();
  for (std::int64_t i = 0; i < m.n_owned; ++i) {
    const double t = temperature[static_cast<std::size_t>(i)];
    tmin = t < tmin ? t : tmin;
    tmax = t > tmax ? t : tmax;
  }
  d.t_min = comm.allreduce_min(tmin);
  d.t_max = comm.allreduce_max(tmax);
  if (!(d.t_min <= d.t_max)) d.t_min = d.t_max = 0.0;  // no owned dofs
  return d;
}

}  // namespace alps::rhea
