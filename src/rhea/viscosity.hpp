#pragma once
// Mantle viscosity laws (paper Sec. VI): temperature-dependent layered
// viscosity with plastic yielding in the lithosphere.

#include "stokes/picard.hpp"

namespace alps::rhea {

/// Simple temperature-dependent law: eta = eta0 * exp(-activation * T).
stokes::ViscosityLaw arrhenius(double eta0, double activation);

/// The paper's three-layer law for a domain with depth coordinate z in
/// [0, 1] (z = 1 is the surface):
///   z > 0.9        : min(10 exp(-6.9 T), sigma_y / (2 edot))  [lithosphere]
///   0.77 < z <= 0.9: 0.8 exp(-6.9 T)                          [aesthenosphere]
///   z <= 0.77      : 50 exp(-6.9 T)                           [lower mantle]
/// Viscosity is clamped to [eta_min, eta_max] for numerical safety.
struct YieldingLawOptions {
  double sigma_y = 1.0;   // nondimensional yield stress
  double eta_min = 1e-4;
  double eta_max = 1e4;
};
stokes::ViscosityLaw three_layer_yielding(const YieldingLawOptions& opt);

}  // namespace alps::rhea
