#include "rhea/indicator.hpp"

#include <cmath>

#include "energy/energy.hpp"
#include "fem/operators.hpp"
#include "stokes/picard.hpp"

namespace alps::rhea {

namespace {

/// Element L2 norm of the gradient of a nodal field, and element size.
void element_gradient_norms(const mesh::Mesh& m,
                            const forest::Connectivity& conn,
                            std::span<const double> field,
                            std::vector<double>& norms,
                            std::vector<double>& sizes) {
  norms.assign(m.elements.size(), 0.0);
  sizes.assign(m.elements.size(), 0.0);
  std::array<double, 8> fe;
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::MappedQuad mq =
        fem::map_element(fem::element_geometry(m, conn, e));
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      fe[static_cast<std::size_t>(i)] = 0.0;
      for (int k = 0; k < cc.n; ++k)
        fe[static_cast<std::size_t>(i)] +=
            cc.w[static_cast<std::size_t>(k)] *
            field[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])];
    }
    double g2 = 0.0, vol = 0.0;
    for (int q = 0; q < fem::kQuad; ++q) {
      double grad[3] = {};
      for (int i = 0; i < 8; ++i)
        for (int d = 0; d < 3; ++d)
          grad[d] += fe[static_cast<std::size_t>(i)] *
                     mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(d)];
      const double w = mq.jxw[static_cast<std::size_t>(q)];
      g2 += w * (grad[0] * grad[0] + grad[1] * grad[1] + grad[2] * grad[2]);
      vol += w;
    }
    norms[e] = std::sqrt(g2);
    sizes[e] = std::cbrt(vol);
  }
}

}  // namespace

std::vector<double> gradient_indicator(const mesh::Mesh& m,
                                       const forest::Connectivity& conn,
                                       std::span<const double> temperature) {
  std::vector<double> eta(m.elements.size(), 0.0);
  std::array<double, 8> te;
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const fem::MappedQuad mq =
        fem::map_element(fem::element_geometry(m, conn, e));
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      te[static_cast<std::size_t>(i)] = 0.0;
      for (int k = 0; k < cc.n; ++k)
        te[static_cast<std::size_t>(i)] +=
            cc.w[static_cast<std::size_t>(k)] *
            temperature[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])];
    }
    double g2 = 0.0, vol = 0.0;
    for (int q = 0; q < fem::kQuad; ++q) {
      double grad[3] = {};
      for (int i = 0; i < 8; ++i)
        for (int d = 0; d < 3; ++d)
          grad[d] += te[static_cast<std::size_t>(i)] *
                     mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(d)];
      const double w = mq.jxw[static_cast<std::size_t>(q)];
      g2 += w * (grad[0] * grad[0] + grad[1] * grad[1] + grad[2] * grad[2]);
      vol += w;
    }
    const double h = std::cbrt(vol);
    eta[e] = std::pow(h, 1.5) * std::sqrt(g2);
  }
  return eta;
}

std::vector<double> yielding_indicator(const mesh::Mesh& m,
                                       const forest::Connectivity& conn,
                                       std::span<const double> temperature,
                                       std::span<const double> velocity,
                                       double strain_weight) {
  std::vector<double> eta = gradient_indicator(m, conn, temperature);
  const std::vector<double> edot =
      stokes::strain_rate_invariant(m, conn, velocity);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const double vol = fem::element_volume(fem::element_geometry(m, conn, e));
    const double h = std::cbrt(vol);
    double emax = 0.0;
    for (int q = 0; q < fem::kQuad; ++q)
      emax = std::max(emax, edot[8 * e + static_cast<std::size_t>(q)]);
    eta[e] += strain_weight * std::pow(h, 1.5) * emax;
  }
  return eta;
}

std::vector<double> adjoint_indicator(
    par::Comm& comm, const mesh::Mesh& m, const forest::Connectivity& conn,
    std::span<const double> temperature, std::span<const double> velocity,
    const std::function<double(const std::array<double, 3>&)>& goal_region,
    double kappa, int pseudo_steps) {
  // Reverse the velocity for the adjoint transport operator.
  std::vector<double> rev(velocity.begin(), velocity.end());
  for (std::int64_t d = 0; d < m.n_local; ++d)
    for (int c = 0; c < 3; ++c)
      rev[static_cast<std::size_t>(d * 4 + c)] =
          -velocity[static_cast<std::size_t>(d * 4 + c)];
  energy::EnergyOptions opt;
  opt.kappa = kappa;
  opt.dirichlet_faces = 0b111111;
  energy::EnergySolver adjoint(comm, m, conn, rev, opt);
  std::vector<double> lambda = fem::interpolate(m, goal_region);
  const double dt = adjoint.stable_dt(comm);
  for (int s = 0; s < pseudo_steps; ++s) adjoint.step(comm, lambda, dt);

  std::vector<double> gt, gl, h, hl;
  element_gradient_norms(m, conn, temperature, gt, h);
  element_gradient_norms(m, conn, lambda, gl, hl);
  std::vector<double> eta(m.elements.size());
  for (std::size_t e = 0; e < eta.size(); ++e) eta[e] = h[e] * gt[e] * gl[e];
  return eta;
}

}  // namespace alps::rhea
