#pragma once
// Ghost layer exchange (part of EXTRACTMESH, paper Sec. IV.B): every rank
// obtains the one layer of remote leaves adjacent (face/edge/corner) to
// its own leaves, by sending each boundary leaf to the ranks owning the
// neighboring regions — one alltoall total.

#include <vector>

#include "forest/connectivity.hpp"
#include "octree/linear_octree.hpp"

namespace alps::mesh {

using forest::Connectivity;
using octree::LinearOctree;
using octree::Octant;

/// Remote leaves adjacent to this rank's leaves, sorted in SFC order.
std::vector<Octant> ghost_layer(par::Comm& comm, const LinearOctree& tree,
                                const Connectivity& conn);

}  // namespace alps::mesh
