#include "mesh/mesh.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>

#include "obs/obs.hpp"

namespace alps::mesh {

namespace {

using octree::kMaxLevel;
using octree::kNeighborDirs;
using octree::kNumAllDirs;
using octree::morton_encode;
using octree::octant_len;
using octree::SfcKey;

constexpr coord_t kN = coord_t{1} << kMaxLevel;

/// All representations of a node across inter-tree boundaries (BFS over
/// glued faces), plus the physical-boundary face mask over all reps.
void node_reps(const Connectivity& conn, const NodeKey& node,
               std::vector<NodeKey>& reps, std::uint8_t& boundary_mask) {
  reps.clear();
  boundary_mask = 0;
  reps.push_back(node);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const NodeKey r = reps[i];
    const std::array<coord_t, 3> c = {r.x, r.y, r.z};
    for (int f = 0; f < 6; ++f) {
      const int axis = f / 2;
      const bool upper = (f % 2) != 0;
      const coord_t want = upper ? kN : 0;
      if (c[static_cast<std::size_t>(axis)] != want) continue;
      if (conn.face(r.tree, f).nbr_tree < 0) {
        boundary_mask |= static_cast<std::uint8_t>(1u << f);
        continue;
      }
      std::array<std::int64_t, 3> c2 = {2 * static_cast<std::int64_t>(r.x),
                                        2 * static_cast<std::int64_t>(r.y),
                                        2 * static_cast<std::int64_t>(r.z)};
      if (!conn.transform_center(r.tree, f, c2)) continue;
      NodeKey nr{conn.face(r.tree, f).nbr_tree,
                 static_cast<coord_t>(c2[0] / 2),
                 static_cast<coord_t>(c2[1] / 2),
                 static_cast<coord_t>(c2[2] / 2)};
      if (std::find(reps.begin(), reps.end(), nr) == reps.end())
        reps.push_back(nr);
    }
  }
}

/// Index of the leaf in `sorted` equal to or an ancestor of `o`, else -1.
std::int64_t find_in(const std::vector<Octant>& sorted, const Octant& o) {
  const SfcKey k = octree::key_of(o);
  auto it = std::upper_bound(
      sorted.begin(), sorted.end(), k,
      [](const SfcKey& key, const Octant& l) { return key < octree::key_of(l); });
  if (it == sorted.begin()) return -1;
  --it;
  if (it->tree == o.tree && (*it == o || it->is_ancestor_of(o)))
    return it - sorted.begin();
  return -1;
}

/// Direction index (0..25) for an offset vector with components in
/// {-1,0,1}; -1 for the zero vector.
int dir_index(int dx, int dy, int dz) {
  for (int d = 0; d < kNumAllDirs; ++d)
    if (kNeighborDirs[static_cast<std::size_t>(d)][0] == dx &&
        kNeighborDirs[static_cast<std::size_t>(d)][1] == dy &&
        kNeighborDirs[static_cast<std::size_t>(d)][2] == dz)
      return d;
  return -1;
}

struct Master {
  NodeKey key;
  double w;
};

/// Constraint masters of node `v_rep` (expressed in q's tree frame) inside
/// coarse element q: corners of q with nonzero trilinear weight. A single
/// master with weight 1 means v coincides with a corner of q (independent).
void masters_in(const Connectivity& conn, const Octant& q, const NodeKey& v_rep,
                std::vector<Master>& out) {
  out.clear();
  const coord_t h = octant_len(q.level);
  const std::array<coord_t, 3> t = {v_rep.x - q.x, v_rep.y - q.y,
                                    v_rep.z - q.z};
  for (int d = 0; d < 3; ++d)
    assert(t[static_cast<std::size_t>(d)] <= h);
  for (int k = 0; k < 8; ++k) {
    double w = 1.0;
    for (int d = 0; d < 3; ++d) {
      const double xi =
          static_cast<double>(t[static_cast<std::size_t>(d)]) / h;
      w *= (k >> d & 1) ? xi : 1.0 - xi;
    }
    if (w <= 0.0) continue;
    NodeKey corner{q.tree, q.x + ((k & 1) ? h : 0), q.y + ((k & 2) ? h : 0),
                   q.z + ((k & 4) ? h : 0)};
    std::vector<NodeKey> reps;
    std::uint8_t mask = 0;
    node_reps(conn, corner, reps, mask);
    out.push_back(Master{*std::min_element(reps.begin(), reps.end()), w});
  }
}

/// Owning rank of a canonical node: the rank owning the region just below
/// it along the space-filling curve (coords clamped at the tree origin).
int node_owner(const LinearOctree& tree, const NodeKey& v) {
  const coord_t px = v.x > 0 ? v.x - 1 : 0;
  const coord_t py = v.y > 0 ? v.y - 1 : 0;
  const coord_t pz = v.z > 0 ? v.z - 1 : 0;
  return tree.owner_of(SfcKey{v.tree, morton_encode(px, py, pz)});
}

struct WireNodeKey {
  std::int32_t tree;
  coord_t x, y, z;
};

}  // namespace

std::pair<NodeKey, std::uint8_t> canonical_node(const Connectivity& conn,
                                                const NodeKey& node) {
  std::vector<NodeKey> reps;
  std::uint8_t mask = 0;
  node_reps(conn, node, reps, mask);
  return {*std::min_element(reps.begin(), reps.end()), mask};
}

Mesh extract_mesh(par::Comm& comm, const forest::Forest& forest) {
  OBS_SPAN("mesh.extract");
  const Connectivity& conn = forest.connectivity();
  const LinearOctree& tree = forest.tree();
  const int p = comm.size();

  Mesh m;
  m.elements = tree.leaves();

  // Local + ghost leaves, sorted, for neighbor-level queries.
  std::vector<Octant> combined = ghost_layer(comm, tree, conn);
  combined.insert(combined.end(), tree.leaves().begin(), tree.leaves().end());
  std::sort(combined.begin(), combined.end(), octree::sfc_less);

  // ---- pass 1: per element corner, find the canonical masters ----------
  // masters_per_corner[e][c]: 1 entry (independent) or 2/4 (hanging).
  const std::size_t ne = m.elements.size();
  std::vector<std::array<std::vector<Master>, 8>> elem_masters(ne);
  std::vector<std::array<bool, 8>> elem_hanging(ne);

  std::vector<NodeKey> reps;
  std::vector<Master> masters;
  for (std::size_t e = 0; e < ne; ++e) {
    const Octant& o = m.elements[e];
    const coord_t h = octant_len(o.level);
    for (int c = 0; c < 8; ++c) {
      const NodeKey v{o.tree, o.x + ((c & 1) ? h : 0), o.y + ((c & 2) ? h : 0),
                      o.z + ((c & 4) ? h : 0)};
      std::uint8_t mask = 0;
      node_reps(conn, v, reps, mask);
      const std::vector<NodeKey> v_reps = reps;

      // Search the (up to 7) neighbor octants sharing this corner for a
      // coarser leaf; with face+edge 2:1 balance a hanging constraint is
      // single-level and its masters are independent (see header).
      bool hanging = false;
      const int sx = (c & 1) ? 1 : -1, sy = (c & 2) ? 1 : -1,
                sz = (c & 4) ? 1 : -1;
      for (int msk = 1; msk < 8 && !hanging; ++msk) {
        const int d =
            dir_index((msk & 1) ? sx : 0, (msk & 2) ? sy : 0, (msk & 4) ? sz : 0);
        Octant n;
        if (!conn.neighbor_across(o, d, n)) continue;
        const std::int64_t qi = find_in(combined, n);
        if (qi < 0) continue;
        const Octant& q = combined[static_cast<std::size_t>(qi)];
        if (q.level != o.level - 1) continue;
        // Express v in q's tree frame.
        const NodeKey* vq = nullptr;
        for (const NodeKey& r : v_reps)
          if (r.tree == q.tree) {
            vq = &r;
            break;
          }
        if (vq == nullptr) continue;
        masters_in(conn, q, *vq, masters);
        if (masters.size() >= 2) {
          elem_masters[e][static_cast<std::size_t>(c)] = masters;
          hanging = true;
        }
      }
      if (!hanging) {
        elem_masters[e][static_cast<std::size_t>(c)] = {
            Master{*std::min_element(v_reps.begin(), v_reps.end()), 1.0}};
      }
      elem_hanging[e][static_cast<std::size_t>(c)] = hanging;
    }
  }

  // ---- pass 2: needed dofs, ownership, numbering ------------------------
  std::vector<NodeKey> needed;
  for (const auto& em : elem_masters)
    for (const auto& ms : em)
      for (const Master& mm : ms) needed.push_back(mm.key);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  std::vector<NodeKey> owned_keys;
  std::vector<std::vector<WireNodeKey>> requests(static_cast<std::size_t>(p));
  for (const NodeKey& k : needed) {
    const int owner = node_owner(tree, k);
    if (owner == comm.rank())
      owned_keys.push_back(k);
    else
      requests[static_cast<std::size_t>(owner)].push_back(
          WireNodeKey{k.tree, k.x, k.y, k.z});
  }
  m.n_owned = static_cast<std::int64_t>(owned_keys.size());
  m.gid_offset = comm.exscan_sum(m.n_owned);
  m.n_global = comm.allreduce_sum(m.n_owned);

  // Resolve remote gids: owners answer lookups in request order.
  std::vector<std::vector<WireNodeKey>> incoming = comm.alltoallv(requests);
  std::vector<std::vector<std::int64_t>> replies(static_cast<std::size_t>(p));
  m.send_idx.assign(static_cast<std::size_t>(p), {});
  for (int r = 0; r < p; ++r) {
    for (const WireNodeKey& wk : incoming[static_cast<std::size_t>(r)]) {
      const NodeKey k{wk.tree, wk.x, wk.y, wk.z};
      auto it = std::lower_bound(owned_keys.begin(), owned_keys.end(), k);
      if (it == owned_keys.end() || *it != k)
        throw std::runtime_error(
            "extract_mesh: rank asked me for a node I do not own");
      const std::int32_t idx =
          static_cast<std::int32_t>(it - owned_keys.begin());
      replies[static_cast<std::size_t>(r)].push_back(m.gid_offset + idx);
      m.send_idx[static_cast<std::size_t>(r)].push_back(idx);
    }
  }
  std::vector<std::vector<std::int64_t>> resolved = comm.alltoallv(replies);

  // ---- pass 3: local dof table (owned, then ghosts by key) --------------
  m.dof_keys = owned_keys;
  m.dof_gids.resize(owned_keys.size());
  for (std::size_t i = 0; i < owned_keys.size(); ++i)
    m.dof_gids[i] = m.gid_offset + static_cast<std::int64_t>(i);
  m.recv_idx.assign(static_cast<std::size_t>(p), {});
  for (int r = 0; r < p; ++r) {
    const auto& req = requests[static_cast<std::size_t>(r)];
    const auto& ans = resolved[static_cast<std::size_t>(r)];
    if (req.size() != ans.size())
      throw std::runtime_error("extract_mesh: reply size mismatch");
    for (std::size_t i = 0; i < req.size(); ++i) {
      m.recv_idx[static_cast<std::size_t>(r)].push_back(
          static_cast<std::int32_t>(m.dof_keys.size()));
      m.dof_keys.push_back(
          NodeKey{req[i].tree, req[i].x, req[i].y, req[i].z});
      m.dof_gids.push_back(ans[i]);
    }
  }
  m.n_local = static_cast<std::int64_t>(m.dof_keys.size());

  // Key -> local index lookup.
  std::vector<std::pair<NodeKey, std::int32_t>> lookup;
  lookup.reserve(m.dof_keys.size());
  for (std::size_t i = 0; i < m.dof_keys.size(); ++i)
    lookup.emplace_back(m.dof_keys[i], static_cast<std::int32_t>(i));
  std::sort(lookup.begin(), lookup.end());
  const auto local_index = [&lookup](const NodeKey& k) {
    auto it = std::lower_bound(
        lookup.begin(), lookup.end(), k,
        [](const std::pair<NodeKey, std::int32_t>& a, const NodeKey& b) {
          return a.first < b;
        });
    if (it == lookup.end() || it->first != k)
      throw std::logic_error("extract_mesh: dof key not in local table");
    return it->second;
  };

  // ---- pass 4: element corner constraints -------------------------------
  m.corners.resize(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    for (int c = 0; c < 8; ++c) {
      const auto& ms = elem_masters[e][static_cast<std::size_t>(c)];
      Corner& cc = m.corners[e][static_cast<std::size_t>(c)];
      cc.hanging = elem_hanging[e][static_cast<std::size_t>(c)] ? 1 : 0;
      cc.n = static_cast<std::int8_t>(ms.size());
      for (std::size_t i = 0; i < ms.size(); ++i) {
        cc.dof[i] = local_index(ms[i].key);
        cc.w[i] = ms[i].w;
      }
    }
  }

  // ---- pass 5: coordinates and boundary flags ----------------------------
  m.dof_coords.resize(m.dof_keys.size());
  m.dof_boundary.resize(m.dof_keys.size());
  for (std::size_t i = 0; i < m.dof_keys.size(); ++i) {
    const NodeKey& k = m.dof_keys[i];
    m.dof_coords[i] = conn.map_point(k.tree, k.x, k.y, k.z);
    std::uint8_t mask = 0;
    node_reps(conn, k, reps, mask);
    m.dof_boundary[i] = mask;
  }
  return m;
}

namespace {

// Message tags of the split-phase halo. Distinct per operation so a
// mismatched start/finish pair can never silently consume the other
// operation's payload; distinct rounds of the same operation stay ordered
// because the mailbox delivers same-(src, tag) messages FIFO and the halo
// calls are collective in matching order on every rank.
constexpr int kHaloAccumulateTag = 0x7b00;
constexpr int kHaloExchangeTag = 0x7c00;

}  // namespace

void Mesh::build_halo_plan() const {
  halo_owner_ranks_.clear();
  halo_user_ranks_.clear();
  halo_out_.assign(send_idx.size(), {});
  for (std::size_t r = 0; r < recv_idx.size(); ++r)
    if (!recv_idx[r].empty()) halo_owner_ranks_.push_back(static_cast<int>(r));
  for (std::size_t r = 0; r < send_idx.size(); ++r)
    if (!send_idx[r].empty()) halo_user_ranks_.push_back(static_cast<int>(r));
  halo_plan_built_ = true;
}

void Mesh::check_start(HaloOp op) const {
  if (!halo_plan_built_) build_halo_plan();
  if (halo_inflight_ != HaloOp::kNone)
    throw std::logic_error(
        "mesh halo: start while another halo operation is in flight");
  halo_inflight_ = op;
}

void Mesh::check_finish(HaloOp op, int ncomp) const {
  if (halo_inflight_ == HaloOp::kNone)
    throw std::logic_error("mesh halo: finish without a matching start");
  if (halo_inflight_ != op)
    throw std::logic_error(
        "mesh halo: finish does not match the in-flight operation");
  // Validate before clearing: a rejected finish must leave the operation
  // in flight so the caller can still complete it correctly.
  if (ncomp != halo_ncomp_)
    throw std::logic_error("mesh halo: finish ncomp differs from start");
  halo_inflight_ = HaloOp::kNone;
}

void Mesh::accumulate_start(par::Comm& comm, std::span<double> values,
                            int ncomp) const {
  check_start(HaloOp::kAccumulate);
  halo_ncomp_ = ncomp;
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  std::uint64_t bytes = 0;
  for (int r : halo_owner_ranks_) {
    const auto& idx = recv_idx[static_cast<std::size_t>(r)];
    std::vector<double>& out = halo_out_[static_cast<std::size_t>(r)];
    out.resize(idx.size() * nc);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c) {
        double& v = values[static_cast<std::size_t>(idx[i]) * nc + c];
        out[i * nc + c] = v;
        v = 0.0;
      }
    bytes += out.size() * sizeof(double);
    // Flow start stamped before the post: the mailbox delivers instantly,
    // so emitting after send could timestamp "s" later than the peer's "f".
    obs::flow_emit(r, obs::kFlowHaloAccumulate, true);
    comm.send(r, kHaloAccumulateTag, out);
  }
  obs::counter_add(obs::wellknown::ghost_exchange_bytes(), bytes);
  obs::overlap_mark_start();
}

void Mesh::accumulate_finish(par::Comm& comm, std::span<double> values,
                             int ncomp) const {
  check_finish(HaloOp::kAccumulate, ncomp);
  obs::overlap_mark_finish_begin();
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  for (int r : halo_user_ranks_) {
    const auto& idx = send_idx[static_cast<std::size_t>(r)];
    const std::vector<double> in = comm.recv<double>(r, kHaloAccumulateTag);
    obs::flow_emit(r, obs::kFlowHaloAccumulate, false);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c)
        values[static_cast<std::size_t>(idx[i]) * nc + c] += in[i * nc + c];
  }
  obs::overlap_mark_finish_end();
}

void Mesh::exchange_start(par::Comm& comm, std::span<double> values,
                          int ncomp) const {
  check_start(HaloOp::kExchange);
  halo_ncomp_ = ncomp;
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  std::uint64_t bytes = 0;
  for (int r : halo_user_ranks_) {
    const auto& idx = send_idx[static_cast<std::size_t>(r)];
    std::vector<double>& out = halo_out_[static_cast<std::size_t>(r)];
    out.resize(idx.size() * nc);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c)
        out[i * nc + c] = values[static_cast<std::size_t>(idx[i]) * nc + c];
    bytes += out.size() * sizeof(double);
    obs::flow_emit(r, obs::kFlowHaloExchange, true);
    comm.send(r, kHaloExchangeTag, out);
  }
  obs::counter_add(obs::wellknown::ghost_exchange_bytes(), bytes);
  obs::overlap_mark_start();
}

void Mesh::exchange_finish(par::Comm& comm, std::span<double> values,
                           int ncomp) const {
  check_finish(HaloOp::kExchange, ncomp);
  obs::overlap_mark_finish_begin();
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  for (int r : halo_owner_ranks_) {
    const auto& idx = recv_idx[static_cast<std::size_t>(r)];
    const std::vector<double> in = comm.recv<double>(r, kHaloExchangeTag);
    obs::flow_emit(r, obs::kFlowHaloExchange, false);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c)
        values[static_cast<std::size_t>(idx[i]) * nc + c] = in[i * nc + c];
  }
  obs::overlap_mark_finish_end();
}

void Mesh::exchange(par::Comm& comm, std::span<double> values,
                    int ncomp) const {
  exchange_start(comm, values, ncomp);
  exchange_finish(comm, values, ncomp);
}

void Mesh::accumulate(par::Comm& comm, std::span<double> values,
                      int ncomp) const {
  accumulate_start(comm, values, ncomp);
  accumulate_finish(comm, values, ncomp);
}

std::array<std::array<double, 3>, 8> Mesh::element_corners_xyz(
    const forest::Connectivity& conn, std::int64_t e) const {
  const Octant& o = elements[static_cast<std::size_t>(e)];
  const coord_t h = octree::octant_len(o.level);
  std::array<std::array<double, 3>, 8> out;
  for (int c = 0; c < 8; ++c)
    out[static_cast<std::size_t>(c)] =
        conn.map_point(o.tree, o.x + ((c & 1) ? h : 0), o.y + ((c & 2) ? h : 0),
                       o.z + ((c & 4) ? h : 0));
  return out;
}

}  // namespace alps::mesh
