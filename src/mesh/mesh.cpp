// Halo communication and element geometry. The extraction algorithms
// (reference, hashed, incremental) live in mesh/extract.cpp.

#include "mesh/mesh.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace alps::mesh {

namespace {

// Message tags of the split-phase halo. Distinct per operation so a
// mismatched start/finish pair can never silently consume the other
// operation's payload; distinct rounds of the same operation stay ordered
// because the mailbox delivers same-(src, tag) messages FIFO and the halo
// calls are collective in matching order on every rank.
constexpr int kHaloAccumulateTag = 0x7b00;
constexpr int kHaloExchangeTag = 0x7c00;

}  // namespace

void Mesh::build_halo_plan() const {
  halo_owner_ranks_.clear();
  halo_user_ranks_.clear();
  halo_out_.assign(send_idx.size(), {});
  for (std::size_t r = 0; r < recv_idx.size(); ++r)
    if (!recv_idx[r].empty()) halo_owner_ranks_.push_back(static_cast<int>(r));
  for (std::size_t r = 0; r < send_idx.size(); ++r)
    if (!send_idx[r].empty()) halo_user_ranks_.push_back(static_cast<int>(r));
  halo_plan_built_ = true;
}

void Mesh::check_start(HaloOp op) const {
  if (!halo_plan_built_) build_halo_plan();
  if (halo_inflight_ != HaloOp::kNone)
    throw std::logic_error(
        "mesh halo: start while another halo operation is in flight");
  halo_inflight_ = op;
}

void Mesh::check_finish(HaloOp op, int ncomp) const {
  if (halo_inflight_ == HaloOp::kNone)
    throw std::logic_error("mesh halo: finish without a matching start");
  if (halo_inflight_ != op)
    throw std::logic_error(
        "mesh halo: finish does not match the in-flight operation");
  // Validate before clearing: a rejected finish must leave the operation
  // in flight so the caller can still complete it correctly.
  if (ncomp != halo_ncomp_)
    throw std::logic_error("mesh halo: finish ncomp differs from start");
  halo_inflight_ = HaloOp::kNone;
}

void Mesh::accumulate_start(par::Comm& comm, std::span<double> values,
                            int ncomp) const {
  check_start(HaloOp::kAccumulate);
  halo_ncomp_ = ncomp;
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  std::uint64_t bytes = 0;
  for (int r : halo_owner_ranks_) {
    const auto& idx = recv_idx[static_cast<std::size_t>(r)];
    std::vector<double>& out = halo_out_[static_cast<std::size_t>(r)];
    out.resize(idx.size() * nc);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c) {
        double& v = values[static_cast<std::size_t>(idx[i]) * nc + c];
        out[i * nc + c] = v;
        v = 0.0;
      }
    bytes += out.size() * sizeof(double);
    // Flow start stamped before the post: the mailbox delivers instantly,
    // so emitting after send could timestamp "s" later than the peer's "f".
    obs::flow_emit(r, obs::kFlowHaloAccumulate, true);
    comm.send(r, kHaloAccumulateTag, out);
  }
  obs::counter_add(obs::wellknown::ghost_exchange_bytes(), bytes);
  obs::overlap_mark_start();
}

void Mesh::accumulate_finish(par::Comm& comm, std::span<double> values,
                             int ncomp) const {
  check_finish(HaloOp::kAccumulate, ncomp);
  obs::overlap_mark_finish_begin();
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  for (int r : halo_user_ranks_) {
    const auto& idx = send_idx[static_cast<std::size_t>(r)];
    const std::vector<double> in = comm.recv<double>(r, kHaloAccumulateTag);
    obs::flow_emit(r, obs::kFlowHaloAccumulate, false);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c)
        values[static_cast<std::size_t>(idx[i]) * nc + c] += in[i * nc + c];
  }
  obs::overlap_mark_finish_end();
}

void Mesh::exchange_start(par::Comm& comm, std::span<double> values,
                          int ncomp) const {
  check_start(HaloOp::kExchange);
  halo_ncomp_ = ncomp;
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  std::uint64_t bytes = 0;
  for (int r : halo_user_ranks_) {
    const auto& idx = send_idx[static_cast<std::size_t>(r)];
    std::vector<double>& out = halo_out_[static_cast<std::size_t>(r)];
    out.resize(idx.size() * nc);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c)
        out[i * nc + c] = values[static_cast<std::size_t>(idx[i]) * nc + c];
    bytes += out.size() * sizeof(double);
    obs::flow_emit(r, obs::kFlowHaloExchange, true);
    comm.send(r, kHaloExchangeTag, out);
  }
  obs::counter_add(obs::wellknown::ghost_exchange_bytes(), bytes);
  obs::overlap_mark_start();
}

void Mesh::exchange_finish(par::Comm& comm, std::span<double> values,
                           int ncomp) const {
  check_finish(HaloOp::kExchange, ncomp);
  obs::overlap_mark_finish_begin();
  const std::size_t nc = static_cast<std::size_t>(ncomp);
  for (int r : halo_owner_ranks_) {
    const auto& idx = recv_idx[static_cast<std::size_t>(r)];
    const std::vector<double> in = comm.recv<double>(r, kHaloExchangeTag);
    obs::flow_emit(r, obs::kFlowHaloExchange, false);
    for (std::size_t i = 0; i < idx.size(); ++i)
      for (std::size_t c = 0; c < nc; ++c)
        values[static_cast<std::size_t>(idx[i]) * nc + c] = in[i * nc + c];
  }
  obs::overlap_mark_finish_end();
}

void Mesh::exchange(par::Comm& comm, std::span<double> values,
                    int ncomp) const {
  exchange_start(comm, values, ncomp);
  exchange_finish(comm, values, ncomp);
}

void Mesh::accumulate(par::Comm& comm, std::span<double> values,
                      int ncomp) const {
  accumulate_start(comm, values, ncomp);
  accumulate_finish(comm, values, ncomp);
}

std::array<std::array<double, 3>, 8> Mesh::element_corners_xyz(
    const forest::Connectivity& conn, std::int64_t e) const {
  const Octant& o = elements[static_cast<std::size_t>(e)];
  const coord_t h = octree::octant_len(o.level);
  std::array<std::array<double, 3>, 8> out;
  for (int c = 0; c < 8; ++c)
    out[static_cast<std::size_t>(c)] =
        conn.map_point(o.tree, o.x + ((c & 1) ? h : 0), o.y + ((c & 2) ? h : 0),
                       o.z + ((c & 4) ? h : 0));
  return out;
}

}  // namespace alps::mesh
