#include "mesh/ghost.hpp"

#include <algorithm>

#include "octree/sort.hpp"

namespace alps::mesh {

namespace {

struct WireOctant {
  std::int32_t tree;
  octree::coord_t x, y, z;
  std::int32_t level;
};

}  // namespace

std::vector<Octant> ghost_layer(par::Comm& comm, const LinearOctree& tree,
                                const Connectivity& conn) {
  const int p = comm.size();
  std::vector<std::vector<Octant>> outbox(static_cast<std::size_t>(p));
  Octant n;
  for (const Octant& o : tree.leaves()) {
    for (int d = 0; d < octree::kNumAllDirs; ++d) {
      if (!conn.neighbor_across(o, d, n)) continue;
      const int lo = tree.owner_of(octree::key_of(n));
      const int hi =
          tree.owner_of(octree::SfcKey{n.tree, n.morton_last()});
      for (int r = lo; r <= hi; ++r) {
        if (r == comm.rank()) continue;
        outbox[static_cast<std::size_t>(r)].push_back(o);
      }
    }
  }
  std::vector<std::vector<WireOctant>> wire(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& v = outbox[static_cast<std::size_t>(r)];
    octree::radix_sort_unique_sfc(v);
    auto& w = wire[static_cast<std::size_t>(r)];
    w.reserve(v.size());
    for (const Octant& o : v)
      w.push_back(WireOctant{o.tree, o.x, o.y, o.z, o.level});
  }
  std::vector<std::vector<WireOctant>> inbox = comm.alltoallv(wire);
  std::vector<Octant> ghosts;
  std::size_t total = 0;
  for (const auto& v : inbox) total += v.size();
  ghosts.reserve(total);
  for (const auto& v : inbox)
    for (const WireOctant& w : v)
      ghosts.push_back(
          Octant{w.tree, w.x, w.y, w.z, static_cast<std::int8_t>(w.level)});
  octree::radix_sort_unique_sfc(ghosts);
  return ghosts;
}

}  // namespace alps::mesh
