#include "mesh/ghost.hpp"

#include <algorithm>

namespace alps::mesh {

namespace {

struct WireOctant {
  std::int32_t tree;
  octree::coord_t x, y, z;
  std::int32_t level;
};

}  // namespace

std::vector<Octant> ghost_layer(par::Comm& comm, const LinearOctree& tree,
                                const Connectivity& conn) {
  const int p = comm.size();
  std::vector<std::vector<WireOctant>> outbox(static_cast<std::size_t>(p));
  Octant n;
  for (const Octant& o : tree.leaves()) {
    for (int d = 0; d < octree::kNumAllDirs; ++d) {
      if (!conn.neighbor_across(o, d, n)) continue;
      const int lo = tree.owner_of(octree::key_of(n));
      const int hi =
          tree.owner_of(octree::SfcKey{n.tree, n.morton_last()});
      for (int r = lo; r <= hi; ++r) {
        if (r == comm.rank()) continue;
        outbox[static_cast<std::size_t>(r)].push_back(
            WireOctant{o.tree, o.x, o.y, o.z, o.level});
      }
    }
  }
  for (auto& v : outbox) {
    std::sort(v.begin(), v.end(), [](const WireOctant& a, const WireOctant& b) {
      return octree::sfc_less(
          Octant{a.tree, a.x, a.y, a.z, static_cast<std::int8_t>(a.level)},
          Octant{b.tree, b.x, b.y, b.z, static_cast<std::int8_t>(b.level)});
    });
    v.erase(std::unique(v.begin(), v.end(),
                        [](const WireOctant& a, const WireOctant& b) {
                          return a.tree == b.tree && a.x == b.x && a.y == b.y &&
                                 a.z == b.z && a.level == b.level;
                        }),
            v.end());
  }
  std::vector<std::vector<WireOctant>> inbox = comm.alltoallv(outbox);
  std::vector<Octant> ghosts;
  for (const auto& v : inbox)
    for (const WireOctant& w : v)
      ghosts.push_back(
          Octant{w.tree, w.x, w.y, w.z, static_cast<std::int8_t>(w.level)});
  std::sort(ghosts.begin(), ghosts.end(), octree::sfc_less);
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  return ghosts;
}

}  // namespace alps::mesh
