// EXTRACTMESH implementations (paper Sec. IV.B).
//
// Three entry points share one contract and must produce bit-identical
// meshes (gids, constraint weights, halo plans):
//
//  * extract_mesh_reference — the original per-corner algorithm, kept as
//    the parity oracle: per element corner it runs the glued-face BFS
//    (node_reps), scans directions linearly, binary-searches the combined
//    leaf array per candidate neighbor, and re-derives every shared node
//    up to 8 times.
//  * extract_mesh — the hashed path: an open-addressing table maps every
//    node representation to its class once, hanging status and masters
//    are resolved once per node (they are node properties under face+edge
//    2:1 balance, see mesh.hpp), and the combined array is searched with
//    precomputed SFC keys.
//  * extract_mesh_incremental — the hashed path plus Correspondence-
//    driven reuse: elements whose closed corner neighborhood contains no
//    changed octant (local or ghost) copy their corner constraints from
//    the previous mesh instead of re-deriving them.
//
// Master lists are stored sorted by canonical node key in every path.
// The per-corner enumeration order of the original algorithm depended on
// which coarse neighbor (and hence which tree frame) detected the
// constraint; sorting makes the constraint row a pure node property, so
// two elements sharing a hanging node — and a reused element a timestep
// later — record identical rows.

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>

#include "mesh/mesh.hpp"
#include "obs/obs.hpp"
#include "octree/sort.hpp"

namespace alps::mesh {

namespace {

using octree::kMaxLevel;
using octree::kNeighborDirs;
using octree::kNumAllDirs;
using octree::morton_encode;
using octree::octant_len;
using octree::SfcKey;

constexpr coord_t kN = coord_t{1} << kMaxLevel;

/// All representations of a node across inter-tree boundaries (BFS over
/// glued faces), plus the physical-boundary face mask over all reps.
void node_reps(const Connectivity& conn, const NodeKey& node,
               std::vector<NodeKey>& reps, std::uint8_t& boundary_mask) {
  reps.clear();
  boundary_mask = 0;
  reps.push_back(node);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const NodeKey r = reps[i];
    const std::array<coord_t, 3> c = {r.x, r.y, r.z};
    for (int f = 0; f < 6; ++f) {
      const int axis = f / 2;
      const bool upper = (f % 2) != 0;
      const coord_t want = upper ? kN : 0;
      if (c[static_cast<std::size_t>(axis)] != want) continue;
      if (conn.face(r.tree, f).nbr_tree < 0) {
        boundary_mask |= static_cast<std::uint8_t>(1u << f);
        continue;
      }
      std::array<std::int64_t, 3> c2 = {2 * static_cast<std::int64_t>(r.x),
                                        2 * static_cast<std::int64_t>(r.y),
                                        2 * static_cast<std::int64_t>(r.z)};
      if (!conn.transform_center(r.tree, f, c2)) continue;
      NodeKey nr{conn.face(r.tree, f).nbr_tree,
                 static_cast<coord_t>(c2[0] / 2),
                 static_cast<coord_t>(c2[1] / 2),
                 static_cast<coord_t>(c2[2] / 2)};
      if (std::find(reps.begin(), reps.end(), nr) == reps.end())
        reps.push_back(nr);
    }
  }
}

/// Index of the leaf in `sorted` equal to or an ancestor of `o`, else -1.
std::int64_t find_in(const std::vector<Octant>& sorted, const Octant& o) {
  const SfcKey k = octree::key_of(o);
  auto it = std::upper_bound(
      sorted.begin(), sorted.end(), k,
      [](const SfcKey& key, const Octant& l) { return key < octree::key_of(l); });
  if (it == sorted.begin()) return -1;
  --it;
  if (it->tree == o.tree && (*it == o || it->is_ancestor_of(o)))
    return it - sorted.begin();
  return -1;
}

/// find_in against a precomputed key array (one morton_encode per query
/// instead of one per probe) — the hashed path's variant.
std::int64_t find_in_keys(const std::vector<SfcKey>& keys,
                          const std::vector<Octant>& sorted, const Octant& o) {
  const SfcKey k = octree::key_of(o);
  const auto it = std::upper_bound(keys.begin(), keys.end(), k);
  if (it == keys.begin()) return -1;
  const std::int64_t i = (it - keys.begin()) - 1;
  const Octant& l = sorted[static_cast<std::size_t>(i)];
  if (l.tree == o.tree && (l == o || l.is_ancestor_of(o))) return i;
  return -1;
}

/// Direction index (0..25) for an offset vector with components in
/// {-1,0,1}; -1 for the zero vector. Linear scan, reference path only.
int dir_index(int dx, int dy, int dz) {
  for (int d = 0; d < kNumAllDirs; ++d)
    if (kNeighborDirs[static_cast<std::size_t>(d)][0] == dx &&
        kNeighborDirs[static_cast<std::size_t>(d)][1] == dy &&
        kNeighborDirs[static_cast<std::size_t>(d)][2] == dz)
      return d;
  return -1;
}

/// Constant-time inverse of kNeighborDirs for the hashed path.
struct DirTable {
  std::int8_t d[3][3][3];
  DirTable() {
    for (auto& plane : d)
      for (auto& row : plane)
        for (auto& v : row) v = -1;
    for (int i = 0; i < kNumAllDirs; ++i) {
      const auto& n = kNeighborDirs[static_cast<std::size_t>(i)];
      d[n[0] + 1][n[1] + 1][n[2] + 1] = static_cast<std::int8_t>(i);
    }
  }
};

int dir_lookup(int dx, int dy, int dz) {
  static const DirTable t;
  return t.d[dx + 1][dy + 1][dz + 1];
}

struct Master {
  NodeKey key;
  double w;
};

/// Constraint masters of node `v_rep` (expressed in q's tree frame) inside
/// coarse element q: corners of q with nonzero trilinear weight. A single
/// master with weight 1 means v coincides with a corner of q (independent).
void masters_in(const Connectivity& conn, const Octant& q, const NodeKey& v_rep,
                std::vector<Master>& out) {
  out.clear();
  const coord_t h = octant_len(q.level);
  const std::array<coord_t, 3> t = {v_rep.x - q.x, v_rep.y - q.y,
                                    v_rep.z - q.z};
  for (int d = 0; d < 3; ++d)
    assert(t[static_cast<std::size_t>(d)] <= h);
  for (int k = 0; k < 8; ++k) {
    double w = 1.0;
    for (int d = 0; d < 3; ++d) {
      const double xi =
          static_cast<double>(t[static_cast<std::size_t>(d)]) / h;
      w *= (k >> d & 1) ? xi : 1.0 - xi;
    }
    if (w <= 0.0) continue;
    NodeKey corner{q.tree, q.x + ((k & 1) ? h : 0), q.y + ((k & 2) ? h : 0),
                   q.z + ((k & 4) ? h : 0)};
    std::vector<NodeKey> reps;
    std::uint8_t mask = 0;
    node_reps(conn, corner, reps, mask);
    out.push_back(Master{*std::min_element(reps.begin(), reps.end()), w});
  }
}

/// Owning rank of a canonical node: the rank owning the region just below
/// it along the space-filling curve (coords clamped at the tree origin).
int node_owner(const LinearOctree& tree, const NodeKey& v) {
  const coord_t px = v.x > 0 ? v.x - 1 : 0;
  const coord_t py = v.y > 0 ? v.y - 1 : 0;
  const coord_t pz = v.z > 0 ? v.z - 1 : 0;
  return tree.owner_of(SfcKey{v.tree, morton_encode(px, py, pz)});
}

struct WireNodeKey {
  std::int32_t tree;
  coord_t x, y, z;
};

}  // namespace

std::pair<NodeKey, std::uint8_t> canonical_node(const Connectivity& conn,
                                                const NodeKey& node) {
  std::vector<NodeKey> reps;
  std::uint8_t mask = 0;
  node_reps(conn, node, reps, mask);
  return {*std::min_element(reps.begin(), reps.end()), mask};
}

// ======================================================================
// Reference path (parity oracle)
// ======================================================================

Mesh extract_mesh_reference(par::Comm& comm, const forest::Forest& forest,
                            std::vector<Octant> ghosts) {
  OBS_SPAN("mesh.extract.reference");
  const Connectivity& conn = forest.connectivity();
  const LinearOctree& tree = forest.tree();
  const int p = comm.size();

  Mesh m;
  m.elements = tree.leaves();

  // Local + ghost leaves, sorted, for neighbor-level queries.
  std::vector<Octant> combined = ghosts;
  combined.insert(combined.end(), tree.leaves().begin(), tree.leaves().end());
  std::sort(combined.begin(), combined.end(), octree::sfc_less);
  m.ghosts = std::move(ghosts);
  m.regions = tree.range_begins();
  m.epoch = 1;

  // ---- pass 1: per element corner, find the canonical masters ----------
  // masters_per_corner[e][c]: 1 entry (independent) or 2/4 (hanging).
  const std::size_t ne = m.elements.size();
  std::vector<std::array<std::vector<Master>, 8>> elem_masters(ne);
  std::vector<std::array<bool, 8>> elem_hanging(ne);

  std::vector<NodeKey> reps;
  std::vector<Master> masters;
  for (std::size_t e = 0; e < ne; ++e) {
    const Octant& o = m.elements[e];
    const coord_t h = octant_len(o.level);
    for (int c = 0; c < 8; ++c) {
      const NodeKey v{o.tree, o.x + ((c & 1) ? h : 0), o.y + ((c & 2) ? h : 0),
                      o.z + ((c & 4) ? h : 0)};
      std::uint8_t mask = 0;
      node_reps(conn, v, reps, mask);
      const std::vector<NodeKey> v_reps = reps;

      // Search the (up to 7) neighbor octants sharing this corner for a
      // coarser leaf; with face+edge 2:1 balance a hanging constraint is
      // single-level and its masters are independent (see header).
      bool hanging = false;
      const int sx = (c & 1) ? 1 : -1, sy = (c & 2) ? 1 : -1,
                sz = (c & 4) ? 1 : -1;
      for (int msk = 1; msk < 8 && !hanging; ++msk) {
        const int d =
            dir_index((msk & 1) ? sx : 0, (msk & 2) ? sy : 0, (msk & 4) ? sz : 0);
        Octant n;
        if (!conn.neighbor_across(o, d, n)) continue;
        const std::int64_t qi = find_in(combined, n);
        if (qi < 0) continue;
        const Octant& q = combined[static_cast<std::size_t>(qi)];
        if (q.level != o.level - 1) continue;
        // Express v in q's tree frame.
        const NodeKey* vq = nullptr;
        for (const NodeKey& r : v_reps)
          if (r.tree == q.tree) {
            vq = &r;
            break;
          }
        if (vq == nullptr) continue;
        masters_in(conn, q, *vq, masters);
        if (masters.size() >= 2) {
          std::stable_sort(
              masters.begin(), masters.end(),
              [](const Master& a, const Master& b) { return a.key < b.key; });
          elem_masters[e][static_cast<std::size_t>(c)] = masters;
          hanging = true;
        }
      }
      if (!hanging) {
        elem_masters[e][static_cast<std::size_t>(c)] = {
            Master{*std::min_element(v_reps.begin(), v_reps.end()), 1.0}};
      }
      elem_hanging[e][static_cast<std::size_t>(c)] = hanging;
    }
  }

  // ---- pass 2: needed dofs, ownership, numbering ------------------------
  std::vector<NodeKey> needed;
  for (const auto& em : elem_masters)
    for (const auto& ms : em)
      for (const Master& mm : ms) needed.push_back(mm.key);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  std::vector<NodeKey> owned_keys;
  std::vector<std::vector<WireNodeKey>> requests(static_cast<std::size_t>(p));
  for (const NodeKey& k : needed) {
    const int owner = node_owner(tree, k);
    if (owner == comm.rank())
      owned_keys.push_back(k);
    else
      requests[static_cast<std::size_t>(owner)].push_back(
          WireNodeKey{k.tree, k.x, k.y, k.z});
  }
  m.n_owned = static_cast<std::int64_t>(owned_keys.size());
  m.gid_offset = comm.exscan_sum(m.n_owned);
  m.n_global = comm.allreduce_sum(m.n_owned);

  // Resolve remote gids: owners answer lookups in request order.
  std::vector<std::vector<WireNodeKey>> incoming = comm.alltoallv(requests);
  std::vector<std::vector<std::int64_t>> replies(static_cast<std::size_t>(p));
  m.send_idx.assign(static_cast<std::size_t>(p), {});
  for (int r = 0; r < p; ++r) {
    for (const WireNodeKey& wk : incoming[static_cast<std::size_t>(r)]) {
      const NodeKey k{wk.tree, wk.x, wk.y, wk.z};
      auto it = std::lower_bound(owned_keys.begin(), owned_keys.end(), k);
      if (it == owned_keys.end() || *it != k)
        throw std::runtime_error(
            "extract_mesh: rank asked me for a node I do not own");
      const std::int32_t idx =
          static_cast<std::int32_t>(it - owned_keys.begin());
      replies[static_cast<std::size_t>(r)].push_back(m.gid_offset + idx);
      m.send_idx[static_cast<std::size_t>(r)].push_back(idx);
    }
  }
  std::vector<std::vector<std::int64_t>> resolved = comm.alltoallv(replies);

  // ---- pass 3: local dof table (owned, then ghosts by key) --------------
  m.dof_keys = owned_keys;
  m.dof_gids.resize(owned_keys.size());
  for (std::size_t i = 0; i < owned_keys.size(); ++i)
    m.dof_gids[i] = m.gid_offset + static_cast<std::int64_t>(i);
  m.recv_idx.assign(static_cast<std::size_t>(p), {});
  for (int r = 0; r < p; ++r) {
    const auto& req = requests[static_cast<std::size_t>(r)];
    const auto& ans = resolved[static_cast<std::size_t>(r)];
    if (req.size() != ans.size())
      throw std::runtime_error("extract_mesh: reply size mismatch");
    for (std::size_t i = 0; i < req.size(); ++i) {
      m.recv_idx[static_cast<std::size_t>(r)].push_back(
          static_cast<std::int32_t>(m.dof_keys.size()));
      m.dof_keys.push_back(
          NodeKey{req[i].tree, req[i].x, req[i].y, req[i].z});
      m.dof_gids.push_back(ans[i]);
    }
  }
  m.n_local = static_cast<std::int64_t>(m.dof_keys.size());

  // Key -> local index lookup.
  std::vector<std::pair<NodeKey, std::int32_t>> lookup;
  lookup.reserve(m.dof_keys.size());
  for (std::size_t i = 0; i < m.dof_keys.size(); ++i)
    lookup.emplace_back(m.dof_keys[i], static_cast<std::int32_t>(i));
  std::sort(lookup.begin(), lookup.end());
  const auto local_index = [&lookup](const NodeKey& k) {
    auto it = std::lower_bound(
        lookup.begin(), lookup.end(), k,
        [](const std::pair<NodeKey, std::int32_t>& a, const NodeKey& b) {
          return a.first < b;
        });
    if (it == lookup.end() || it->first != k)
      throw std::logic_error("extract_mesh: dof key not in local table");
    return it->second;
  };

  // ---- pass 4: element corner constraints -------------------------------
  m.corners.resize(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    for (int c = 0; c < 8; ++c) {
      const auto& ms = elem_masters[e][static_cast<std::size_t>(c)];
      Corner& cc = m.corners[e][static_cast<std::size_t>(c)];
      cc.hanging = elem_hanging[e][static_cast<std::size_t>(c)] ? 1 : 0;
      cc.n = static_cast<std::int8_t>(ms.size());
      for (std::size_t i = 0; i < ms.size(); ++i) {
        cc.dof[i] = local_index(ms[i].key);
        cc.w[i] = ms[i].w;
      }
    }
  }

  // ---- pass 5: coordinates and boundary flags ----------------------------
  m.dof_coords.resize(m.dof_keys.size());
  m.dof_boundary.resize(m.dof_keys.size());
  for (std::size_t i = 0; i < m.dof_keys.size(); ++i) {
    const NodeKey& k = m.dof_keys[i];
    m.dof_coords[i] = conn.map_point(k.tree, k.x, k.y, k.z);
    std::uint8_t mask = 0;
    node_reps(conn, k, reps, mask);
    m.dof_boundary[i] = mask;
  }
  return m;
}

Mesh extract_mesh_reference(par::Comm& comm, const forest::Forest& forest) {
  return extract_mesh_reference(
      comm, forest, ghost_layer(comm, forest.tree(), forest.connectivity()));
}

// ======================================================================
// Hashed path
// ======================================================================

namespace {

/// One node class: canonical key, boundary mask, the glued-face
/// representations (for frame changes during master derivation), the
/// resolved hanging constraint, and the local dof index once numbered.
struct NodeEntry {
  NodeKey canon;
  std::int32_t reps_off = 0;
  std::int32_t masters_off = 0;
  std::int32_t dof = -1;
  std::int16_t reps_n = 0;
  std::uint8_t mask = 0;
  std::int8_t hanging = -1;  // -1 unresolved, 0 independent, 1 hanging
  std::int8_t n_masters = 0;
  bool referenced = false;   // appears in some element's constraint row
};

struct MasterRef {
  std::int32_t node;
  double w;
};

/// Open-addressing map from any node representation to its class id.
/// Keys pack into 128 bits: (tree << 21 | x, y << 21 | z) — coordinates
/// are at most 2^19, so 21 bits per component keeps the packing exact and
/// lexicographic. An all-ones first word marks an empty slot (no real
/// tree reaches it). Linear probing, growth at ~0.7 load.
class NodeCache {
 public:
  explicit NodeCache(std::size_t expected) {
    std::size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{kEmpty, 0, -1});
    mask_ = cap - 1;
    entries.reserve(expected);
    rep_pool.reserve(expected + expected / 4);
  }

  std::vector<NodeEntry> entries;
  std::vector<MasterRef> master_pool;
  std::vector<NodeKey> rep_pool;

  /// Class id of `raw` (any representation). First contact runs the
  /// glued-face BFS once and indexes every representation, so subsequent
  /// lookups from any frame are a single probe sequence.
  std::int32_t canon_id(const Connectivity& conn, const NodeKey& raw) {
    if (const std::int32_t hit = find(raw); hit >= 0) return hit;
    std::uint8_t mask = 0;
    node_reps(conn, raw, reps_tmp_, mask);
    const NodeKey canon =
        *std::min_element(reps_tmp_.begin(), reps_tmp_.end());
    std::int32_t id = find(canon);
    if (id < 0) {
      id = static_cast<std::int32_t>(entries.size());
      NodeEntry e;
      e.canon = canon;
      e.mask = mask;
      e.reps_off = static_cast<std::int32_t>(rep_pool.size());
      e.reps_n = static_cast<std::int16_t>(reps_tmp_.size());
      rep_pool.insert(rep_pool.end(), reps_tmp_.begin(), reps_tmp_.end());
      entries.push_back(e);
    } else if (entries[static_cast<std::size_t>(id)].reps_n == 0) {
      // Class was seeded by the reuse path (canonical key only); attach
      // the representation list now that the BFS has run.
      NodeEntry& e = entries[static_cast<std::size_t>(id)];
      e.reps_off = static_cast<std::int32_t>(rep_pool.size());
      e.reps_n = static_cast<std::int16_t>(reps_tmp_.size());
      rep_pool.insert(rep_pool.end(), reps_tmp_.begin(), reps_tmp_.end());
    }
    for (const NodeKey& r : reps_tmp_) put_if_absent(r, id);
    return id;
  }

  /// Class id of a key known to be canonical, carried over from a
  /// previous mesh together with its boundary mask — no BFS. Masters are
  /// independent in any balanced mesh (single-level constraints), so the
  /// class is created already resolved as independent.
  std::int32_t resolved_dof_id(const NodeKey& canon, std::uint8_t mask) {
    std::int32_t id = find(canon);
    if (id >= 0) return id;
    id = static_cast<std::int32_t>(entries.size());
    NodeEntry e;
    e.canon = canon;
    e.mask = mask;
    e.hanging = 0;
    entries.push_back(e);
    put_if_absent(canon, id);
    return id;
  }

  std::span<const NodeKey> reps(std::int32_t id) const {
    const NodeEntry& e = entries[static_cast<std::size_t>(id)];
    return {rep_pool.data() + e.reps_off, static_cast<std::size_t>(e.reps_n)};
  }

  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(slots_.capacity()) * sizeof(Slot) +
           obs::vec_bytes(entries) + obs::vec_bytes(master_pool) +
           obs::vec_bytes(rep_pool);
  }

 private:
  struct Slot {
    std::uint64_t hi, lo;
    std::int32_t id;
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static void pack(const NodeKey& k, std::uint64_t& hi, std::uint64_t& lo) {
    hi = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tree))
          << 21) |
         k.x;
    lo = (static_cast<std::uint64_t>(k.y) << 21) | k.z;
  }

  static std::uint64_t hash(std::uint64_t hi, std::uint64_t lo) {
    std::uint64_t x = hi * 0x9e3779b97f4a7c15ULL ^ lo;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::int32_t find(const NodeKey& k) const {
    std::uint64_t hi, lo;
    pack(k, hi, lo);
    std::size_t i = static_cast<std::size_t>(hash(hi, lo)) & mask_;
    while (slots_[i].hi != kEmpty) {
      if (slots_[i].hi == hi && slots_[i].lo == lo) return slots_[i].id;
      i = (i + 1) & mask_;
    }
    return -1;
  }

  void put_if_absent(const NodeKey& k, std::int32_t id) {
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) grow();
    std::uint64_t hi, lo;
    pack(k, hi, lo);
    std::size_t i = static_cast<std::size_t>(hash(hi, lo)) & mask_;
    while (slots_[i].hi != kEmpty) {
      if (slots_[i].hi == hi && slots_[i].lo == lo) return;
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{hi, lo, id};
    ++size_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = (mask_ + 1) * 2;
    slots_.assign(cap, Slot{kEmpty, 0, -1});
    mask_ = cap - 1;
    for (const Slot& s : old) {
      if (s.hi == kEmpty) continue;
      std::size_t i = static_cast<std::size_t>(hash(s.hi, s.lo)) & mask_;
      while (slots_[i].hi != kEmpty) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<NodeKey> reps_tmp_;
};

/// Per-corner resolved constraint, as node-class ids (turned into local
/// dof indices once numbering is done).
struct CornerCM {
  std::int8_t hanging = 0;
  std::int8_t n = 0;
  std::array<std::int32_t, 4> node{};
  std::array<double, 4> w{};
};

/// Resolve the hanging status and masters of node class `id`, probing
/// from element `o`, corner `c`. The answer is a node property: every
/// element sharing the node reaches the same sorted master set, so the
/// first prober stores it for all.
void resolve_node(NodeCache& cache, const Connectivity& conn,
                  const std::vector<Octant>& combined,
                  const std::vector<SfcKey>& combined_keys, const Octant& o,
                  int c, std::int32_t id, std::vector<MasterRef>& tmp) {
  const int sx = (c & 1) ? 1 : -1, sy = (c & 2) ? 1 : -1,
            sz = (c & 4) ? 1 : -1;
  for (int msk = 1; msk < 8; ++msk) {
    const int d = dir_lookup((msk & 1) ? sx : 0, (msk & 2) ? sy : 0,
                             (msk & 4) ? sz : 0);
    Octant n;
    if (!conn.neighbor_across(o, d, n)) continue;
    const std::int64_t qi = find_in_keys(combined_keys, combined, n);
    if (qi < 0) continue;
    const Octant& q = combined[static_cast<std::size_t>(qi)];
    if (q.level != o.level - 1) continue;
    // Express the node in q's tree frame (copy: canon_id below may grow
    // the representation pool).
    NodeKey v{};
    bool have_v = false;
    for (const NodeKey& r : cache.reps(id))
      if (r.tree == q.tree) {
        v = r;
        have_v = true;
        break;
      }
    if (!have_v) continue;
    const coord_t h = octant_len(q.level);
    const std::array<coord_t, 3> t = {v.x - q.x, v.y - q.y, v.z - q.z};
    for (int dd = 0; dd < 3; ++dd)
      assert(t[static_cast<std::size_t>(dd)] <= h);
    tmp.clear();
    for (int k = 0; k < 8; ++k) {
      double w = 1.0;
      for (int dd = 0; dd < 3; ++dd) {
        const double xi =
            static_cast<double>(t[static_cast<std::size_t>(dd)]) / h;
        w *= (k >> dd & 1) ? xi : 1.0 - xi;
      }
      if (w <= 0.0) continue;
      const NodeKey corner{q.tree, q.x + ((k & 1) ? h : 0),
                           q.y + ((k & 2) ? h : 0), q.z + ((k & 4) ? h : 0)};
      tmp.push_back(MasterRef{cache.canon_id(conn, corner), w});
    }
    if (tmp.size() >= 2) {
      std::stable_sort(tmp.begin(), tmp.end(),
                       [&cache](const MasterRef& a, const MasterRef& b) {
                         return cache.entries[static_cast<std::size_t>(a.node)]
                                    .canon <
                                cache.entries[static_cast<std::size_t>(b.node)]
                                    .canon;
                       });
      NodeEntry& e = cache.entries[static_cast<std::size_t>(id)];
      e.hanging = 1;
      e.n_masters = static_cast<std::int8_t>(tmp.size());
      e.masters_off = static_cast<std::int32_t>(cache.master_pool.size());
      cache.master_pool.insert(cache.master_pool.end(), tmp.begin(),
                               tmp.end());
      return;
    }
  }
  cache.entries[static_cast<std::size_t>(id)].hanging = 0;
}

/// The hashed extraction. With `prev`/`corr` set, elements whose closed
/// corner neighborhood contains no changed octant copy their constraint
/// rows from `prev` (reuse); everything else — and everything, when prev
/// is null — is derived through the node cache. The numbering and lookup
/// passes are shared and match the reference bit for bit.
Mesh hashed_extract(par::Comm& comm, const forest::Forest& forest,
                    std::vector<Octant> ghosts, const Mesh* prev,
                    const octree::Correspondence* corr, ExtractStats* stats) {
  OBS_SPAN("mesh.extract");
  const Connectivity& conn = forest.connectivity();
  const LinearOctree& tree = forest.tree();
  const int p = comm.size();

  Mesh m;
  m.elements = tree.leaves();
  const std::size_t ne = m.elements.size();

  std::vector<Octant> combined;
  combined.reserve(ghosts.size() + ne);
  combined = ghosts;
  combined.insert(combined.end(), tree.leaves().begin(), tree.leaves().end());
  octree::radix_sort_sfc(combined);
  std::vector<SfcKey> combined_keys(combined.size());
  for (std::size_t i = 0; i < combined.size(); ++i)
    combined_keys[i] = octree::key_of(combined[i]);

  NodeCache cache(ne + ne / 2 + 64);
  static const obs::MemScopeId kHashScope =
      obs::mem_scope("mesh.extract.node_hash");
  obs::MemScope hash_scope(kHashScope, 0);

  std::vector<std::array<CornerCM, 8>> cm(ne);
  std::vector<std::array<std::int32_t, 8>> node_id(ne);

  // ---- reuse analysis ---------------------------------------------------
  // An element may keep its previous constraint row iff it is the same
  // octant as before (Correspondence kSame) and no changed octant — local
  // refine/coarsen product or ghost-layer difference — touches its closed
  // corner neighborhood. Marking works from the changed side: each
  // changed octant invalidates every new element overlapping it or any of
  // its 26 same-size neighbor regions (a 3x cube covering everything
  // adjacent to its closure).
  std::vector<char> reuse(ne, 0);
  std::vector<std::int64_t> old_of(ne, -1);
  if (prev != nullptr) {
    for (std::size_t e = 0; e < ne; ++e) {
      const auto& en = corr->entries[e];
      if (en.kind == octree::Correspondence::Kind::kSame) {
        reuse[e] = 1;
        old_of[e] = en.old_begin;
      }
    }
    std::vector<Octant> changed;
    std::set_symmetric_difference(
        prev->elements.begin(), prev->elements.end(), m.elements.begin(),
        m.elements.end(), std::back_inserter(changed), octree::sfc_less);
    std::set_symmetric_difference(prev->ghosts.begin(), prev->ghosts.end(),
                                  ghosts.begin(), ghosts.end(),
                                  std::back_inserter(changed),
                                  octree::sfc_less);
    const auto mark_region = [&](const Octant& n) {
      const SfcKey lo = octree::key_of(n);
      const SfcKey hi{n.tree, n.morton_last()};
      const auto it = std::lower_bound(
          m.elements.begin(), m.elements.end(), lo,
          [](const Octant& l, const SfcKey& k) { return octree::key_of(l) < k; });
      std::size_t i = static_cast<std::size_t>(it - m.elements.begin());
      if (i > 0) {
        const Octant& l = m.elements[i - 1];
        if (l.tree == n.tree && l.is_ancestor_of(n)) reuse[i - 1] = 0;
      }
      for (; i < ne && octree::key_of(m.elements[i]) <= hi; ++i) reuse[i] = 0;
    };
    Octant nn;
    for (const Octant& ch : changed) {
      mark_region(ch);
      for (int d = 0; d < kNumAllDirs; ++d)
        if (conn.neighbor_across(ch, d, nn)) mark_region(nn);
    }
  }

  // ---- canon: corner -> node class --------------------------------------
  std::int64_t n_reused = 0;
  {
    OBS_PHASE_SPAN("amr.extract.canon");
    for (std::size_t e = 0; e < ne; ++e) {
      if (reuse[e]) {
        const auto& oc = prev->corners[static_cast<std::size_t>(old_of[e])];
        for (int c = 0; c < 8; ++c) {
          const Corner& pc = oc[static_cast<std::size_t>(c)];
          CornerCM& out = cm[e][static_cast<std::size_t>(c)];
          out.hanging = pc.hanging;
          out.n = pc.n;
          for (int i = 0; i < pc.n; ++i) {
            const auto pd = static_cast<std::size_t>(pc.dof[static_cast<std::size_t>(i)]);
            out.node[static_cast<std::size_t>(i)] = cache.resolved_dof_id(
                prev->dof_keys[pd], prev->dof_boundary[pd]);
            out.w[static_cast<std::size_t>(i)] = pc.w[static_cast<std::size_t>(i)];
          }
        }
        ++n_reused;
      } else {
        const Octant& o = m.elements[e];
        const coord_t h = octant_len(o.level);
        for (int c = 0; c < 8; ++c)
          node_id[e][static_cast<std::size_t>(c)] = cache.canon_id(
              conn, NodeKey{o.tree, o.x + ((c & 1) ? h : 0),
                            o.y + ((c & 2) ? h : 0), o.z + ((c & 4) ? h : 0)});
      }
    }
    hash_scope.resize(cache.bytes());
  }

  // ---- masters: resolve each node class once ----------------------------
  {
    OBS_PHASE_SPAN("amr.extract.masters");
    std::vector<MasterRef> tmp;
    for (std::size_t e = 0; e < ne; ++e) {
      if (reuse[e]) continue;
      const Octant& o = m.elements[e];
      for (int c = 0; c < 8; ++c) {
        const std::int32_t id = node_id[e][static_cast<std::size_t>(c)];
        if (cache.entries[static_cast<std::size_t>(id)].hanging < 0)
          resolve_node(cache, conn, combined, combined_keys, o, c, id, tmp);
        const NodeEntry& en = cache.entries[static_cast<std::size_t>(id)];
        CornerCM& out = cm[e][static_cast<std::size_t>(c)];
        if (en.hanging == 1) {
          out.hanging = 1;
          out.n = en.n_masters;
          for (int i = 0; i < en.n_masters; ++i) {
            const MasterRef& mr =
                cache.master_pool[static_cast<std::size_t>(en.masters_off + i)];
            out.node[static_cast<std::size_t>(i)] = mr.node;
            out.w[static_cast<std::size_t>(i)] = mr.w;
          }
        } else {
          out.hanging = 0;
          out.n = 1;
          out.node[0] = id;
          out.w[0] = 1.0;
        }
      }
    }
    hash_scope.resize(cache.bytes());
  }

  static const obs::CounterId kReusedCtr = obs::counter("amr.extract.reused");
  static const obs::CounterId kRecomputedCtr =
      obs::counter("amr.extract.recomputed");
  obs::counter_add(kReusedCtr, static_cast<std::uint64_t>(n_reused));
  obs::counter_add(kRecomputedCtr,
                   static_cast<std::uint64_t>(static_cast<std::int64_t>(ne) -
                                              n_reused));
  if (stats != nullptr) {
    stats->reused += n_reused;
    stats->recomputed += static_cast<std::int64_t>(ne) - n_reused;
  }

  // ---- number: ownership, gid handshake, dof table ----------------------
  std::vector<std::int32_t> dof_entry;  // node class per local dof slot
  {
    OBS_PHASE_SPAN("amr.extract.number");
    for (const auto& ec : cm)
      for (const CornerCM& cc : ec)
        for (int i = 0; i < cc.n; ++i)
          cache.entries[static_cast<std::size_t>(
                            cc.node[static_cast<std::size_t>(i)])]
              .referenced = true;

    std::vector<std::pair<NodeKey, std::int32_t>> needed;
    needed.reserve(cache.entries.size());
    for (std::size_t id = 0; id < cache.entries.size(); ++id)
      if (cache.entries[id].referenced)
        needed.emplace_back(cache.entries[id].canon,
                            static_cast<std::int32_t>(id));
    std::sort(needed.begin(), needed.end());

    std::vector<std::int32_t> owned_ids;
    std::vector<std::vector<WireNodeKey>> requests(static_cast<std::size_t>(p));
    std::vector<std::vector<std::int32_t>> request_ids(
        static_cast<std::size_t>(p));
    for (const auto& [k, id] : needed) {
      const int owner = node_owner(tree, k);
      if (owner == comm.rank()) {
        owned_ids.push_back(id);
      } else {
        requests[static_cast<std::size_t>(owner)].push_back(
            WireNodeKey{k.tree, k.x, k.y, k.z});
        request_ids[static_cast<std::size_t>(owner)].push_back(id);
      }
    }
    m.n_owned = static_cast<std::int64_t>(owned_ids.size());
    m.gid_offset = comm.exscan_sum(m.n_owned);
    m.n_global = comm.allreduce_sum(m.n_owned);

    std::vector<NodeKey> owned_keys(owned_ids.size());
    for (std::size_t i = 0; i < owned_ids.size(); ++i)
      owned_keys[i] =
          cache.entries[static_cast<std::size_t>(owned_ids[i])].canon;

    std::vector<std::vector<WireNodeKey>> incoming = comm.alltoallv(requests);
    std::vector<std::vector<std::int64_t>> replies(static_cast<std::size_t>(p));
    m.send_idx.assign(static_cast<std::size_t>(p), {});
    for (int r = 0; r < p; ++r) {
      for (const WireNodeKey& wk : incoming[static_cast<std::size_t>(r)]) {
        const NodeKey k{wk.tree, wk.x, wk.y, wk.z};
        auto it = std::lower_bound(owned_keys.begin(), owned_keys.end(), k);
        if (it == owned_keys.end() || *it != k)
          throw std::runtime_error(
              "extract_mesh: rank asked me for a node I do not own");
        const std::int32_t idx =
            static_cast<std::int32_t>(it - owned_keys.begin());
        replies[static_cast<std::size_t>(r)].push_back(m.gid_offset + idx);
        m.send_idx[static_cast<std::size_t>(r)].push_back(idx);
      }
    }
    std::vector<std::vector<std::int64_t>> resolved = comm.alltoallv(replies);

    m.dof_keys = owned_keys;
    m.dof_gids.resize(owned_keys.size());
    dof_entry = owned_ids;
    for (std::size_t i = 0; i < owned_ids.size(); ++i) {
      m.dof_gids[i] = m.gid_offset + static_cast<std::int64_t>(i);
      cache.entries[static_cast<std::size_t>(owned_ids[i])].dof =
          static_cast<std::int32_t>(i);
    }
    m.recv_idx.assign(static_cast<std::size_t>(p), {});
    for (int r = 0; r < p; ++r) {
      const auto& req = requests[static_cast<std::size_t>(r)];
      const auto& ans = resolved[static_cast<std::size_t>(r)];
      if (req.size() != ans.size())
        throw std::runtime_error("extract_mesh: reply size mismatch");
      for (std::size_t i = 0; i < req.size(); ++i) {
        const std::int32_t li = static_cast<std::int32_t>(m.dof_keys.size());
        m.recv_idx[static_cast<std::size_t>(r)].push_back(li);
        m.dof_keys.push_back(
            NodeKey{req[i].tree, req[i].x, req[i].y, req[i].z});
        m.dof_gids.push_back(ans[i]);
        const std::int32_t id = request_ids[static_cast<std::size_t>(r)][i];
        cache.entries[static_cast<std::size_t>(id)].dof = li;
        dof_entry.push_back(id);
      }
    }
    m.n_local = static_cast<std::int64_t>(m.dof_keys.size());
  }

  // ---- lookup: constraint rows, coordinates, boundary flags -------------
  {
    OBS_PHASE_SPAN("amr.extract.lookup");
    m.corners.resize(ne);
    for (std::size_t e = 0; e < ne; ++e) {
      for (int c = 0; c < 8; ++c) {
        const CornerCM& in = cm[e][static_cast<std::size_t>(c)];
        Corner& cc = m.corners[e][static_cast<std::size_t>(c)];
        cc.hanging = in.hanging;
        cc.n = in.n;
        for (int i = 0; i < in.n; ++i) {
          cc.dof[static_cast<std::size_t>(i)] =
              cache.entries[static_cast<std::size_t>(
                                in.node[static_cast<std::size_t>(i)])]
                  .dof;
          cc.w[static_cast<std::size_t>(i)] = in.w[static_cast<std::size_t>(i)];
        }
      }
    }
    m.dof_coords.resize(m.dof_keys.size());
    m.dof_boundary.resize(m.dof_keys.size());
    for (std::size_t i = 0; i < m.dof_keys.size(); ++i) {
      const NodeKey& k = m.dof_keys[i];
      m.dof_coords[i] = conn.map_point(k.tree, k.x, k.y, k.z);
      m.dof_boundary[i] =
          cache.entries[static_cast<std::size_t>(dof_entry[i])].mask;
    }
  }

  m.ghosts = std::move(ghosts);
  m.regions = tree.range_begins();
  return m;
}

}  // namespace

Mesh extract_mesh(par::Comm& comm, const forest::Forest& forest,
                  std::vector<Octant> ghosts) {
  Mesh m = hashed_extract(comm, forest, std::move(ghosts), nullptr, nullptr,
                          nullptr);
  m.epoch = 1;
  return m;
}

Mesh extract_mesh(par::Comm& comm, const forest::Forest& forest) {
  return extract_mesh(comm, forest,
                      ghost_layer(comm, forest.tree(), forest.connectivity()));
}

Mesh extract_mesh_incremental(par::Comm& comm, const forest::Forest& forest,
                              std::vector<Octant> ghosts, const Mesh& prev,
                              ExtractStats* stats) {
  // The reuse contract: prev must have been extracted (epoch > 0) for this
  // forest lineage, and the ownership ranges must be unchanged since —
  // partition moves elements across ranks, invalidating both the local
  // correspondence and the ghost-difference reasoning. The checks are
  // globally uniform (epoch and ranges are replicated), so every rank
  // takes the same branch; both branches issue identical collectives.
  if (prev.epoch > 0 && prev.regions == forest.tree().range_begins()) {
    bool ok = true;
    octree::Correspondence corr;
    try {
      corr = octree::compute_correspondence(prev.elements,
                                            forest.tree().leaves());
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      Mesh m =
          hashed_extract(comm, forest, std::move(ghosts), &prev, &corr, stats);
      m.epoch = prev.epoch + 1;
      return m;
    }
  }
  if (stats != nullptr) stats->fallback = true;
  Mesh m = hashed_extract(comm, forest, std::move(ghosts), nullptr, nullptr,
                          stats);
  m.epoch = 1;
  return m;
}

}  // namespace alps::mesh
