#pragma once
// INTERPOLATEFIELDS / TRANSFERFIELDS support (paper Sec. IV.B, Fig. 4).
//
// Fields travel between meshes in "element-value" form: 8 corner values
// per element (per scalar component), in leaf order. This form is local
// to each element, so interpolation across one adaptation step needs no
// communication, and repartitioning moves it with octree::partition as a
// plain per-leaf payload. Conversion to and from the global nodal vector
// happens on the extracted mesh.

#include <span>
#include <vector>

#include "mesh/mesh.hpp"

namespace alps::mesh {

using octree::Correspondence;

/// Nodal dof vector (n_local entries) -> per-element corner values
/// (8 per element), resolving hanging-node constraints. Ghost dof entries
/// must be current (call Mesh::exchange first if needed).
std::vector<double> to_element_values(const Mesh& m,
                                      std::span<const double> nodal);

/// Per-element corner values -> nodal dof vector on `m` (n_local entries,
/// ghosts filled). Assumes the element values describe a continuous field
/// (each independent node receives the same value from every element that
/// touches it). Collective.
std::vector<double> from_element_values(par::Comm& comm, const Mesh& m,
                                        std::span<const double> evals);

/// INTERPOLATEFIELDS: carry element values across one local adaptation
/// (refine/coarsen/balance; same-rank regions). Trilinear interpolation
/// into refined elements, corner injection for coarsened ones. Pure local.
std::vector<double> interpolate_element_values(
    std::span<const Octant> old_leaves, std::span<const Octant> new_leaves,
    const Correspondence& corr, std::span<const double> old_vals);

}  // namespace alps::mesh
