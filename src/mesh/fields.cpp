#include "mesh/fields.hpp"

#include <cassert>
#include <stdexcept>

namespace alps::mesh {

namespace {

double trilinear(std::span<const double> corner_vals, double xi, double eta,
                 double zeta) {
  double v = 0.0;
  for (int k = 0; k < 8; ++k) {
    const double w = ((k & 1) ? xi : 1.0 - xi) * ((k & 2) ? eta : 1.0 - eta) *
                     ((k & 4) ? zeta : 1.0 - zeta);
    v += w * corner_vals[static_cast<std::size_t>(k)];
  }
  return v;
}

}  // namespace

std::vector<double> to_element_values(const Mesh& m,
                                      std::span<const double> nodal) {
  if (static_cast<std::int64_t>(nodal.size()) != m.n_local)
    throw std::invalid_argument("to_element_values: nodal size mismatch");
  std::vector<double> evals(m.elements.size() * 8);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    for (int c = 0; c < 8; ++c) {
      const Corner& cc = m.corners[e][static_cast<std::size_t>(c)];
      double v = 0.0;
      for (int i = 0; i < cc.n; ++i)
        v += cc.w[static_cast<std::size_t>(i)] *
             nodal[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(i)])];
      evals[8 * e + static_cast<std::size_t>(c)] = v;
    }
  }
  return evals;
}

std::vector<double> from_element_values(par::Comm& comm, const Mesh& m,
                                        std::span<const double> evals) {
  if (evals.size() != m.elements.size() * 8)
    throw std::invalid_argument("from_element_values: size mismatch");
  std::vector<double> nodal(static_cast<std::size_t>(m.n_local), 0.0);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    for (int c = 0; c < 8; ++c) {
      const Corner& cc = m.corners[e][static_cast<std::size_t>(c)];
      if (cc.hanging) continue;
      nodal[static_cast<std::size_t>(cc.dof[0])] =
          evals[8 * e + static_cast<std::size_t>(c)];
    }
  }
  m.exchange(comm, nodal);
  return nodal;
}

std::vector<double> interpolate_element_values(
    std::span<const Octant> old_leaves, std::span<const Octant> new_leaves,
    const Correspondence& corr, std::span<const double> old_vals) {
  if (old_vals.size() != old_leaves.size() * 8)
    throw std::invalid_argument("interpolate: old values size mismatch");
  if (corr.entries.size() != new_leaves.size())
    throw std::invalid_argument("interpolate: correspondence size mismatch");
  std::vector<double> out(new_leaves.size() * 8);
  for (std::size_t j = 0; j < new_leaves.size(); ++j) {
    const Correspondence::Entry& en = corr.entries[j];
    const Octant& nw = new_leaves[j];
    switch (en.kind) {
      case Correspondence::Kind::kSame: {
        const std::size_t b = static_cast<std::size_t>(en.old_begin) * 8;
        for (int c = 0; c < 8; ++c)
          out[8 * j + static_cast<std::size_t>(c)] =
              old_vals[b + static_cast<std::size_t>(c)];
        break;
      }
      case Correspondence::Kind::kRefined: {
        const Octant& od = old_leaves[static_cast<std::size_t>(en.old_begin)];
        const double h_old = static_cast<double>(octree::octant_len(od.level));
        const double h_new = static_cast<double>(octree::octant_len(nw.level));
        const std::span<const double> ov =
            old_vals.subspan(static_cast<std::size_t>(en.old_begin) * 8, 8);
        for (int c = 0; c < 8; ++c) {
          const double xi =
              (static_cast<double>(nw.x - od.x) + ((c & 1) ? h_new : 0.0)) /
              h_old;
          const double eta =
              (static_cast<double>(nw.y - od.y) + ((c & 2) ? h_new : 0.0)) /
              h_old;
          const double zeta =
              (static_cast<double>(nw.z - od.z) + ((c & 4) ? h_new : 0.0)) /
              h_old;
          out[8 * j + static_cast<std::size_t>(c)] = trilinear(ov, xi, eta, zeta);
        }
        break;
      }
      case Correspondence::Kind::kCoarsened: {
        // Single-level coarsening: corner c of the parent is corner c of
        // child c, and children are stored in Morton (== child id) order.
        if (en.old_end - en.old_begin != 8)
          throw std::runtime_error("interpolate: non-8 coarsening group");
        for (int c = 0; c < 8; ++c) {
          const std::size_t child =
              static_cast<std::size_t>(en.old_begin) + static_cast<std::size_t>(c);
          out[8 * j + static_cast<std::size_t>(c)] =
              old_vals[8 * child + static_cast<std::size_t>(c)];
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace alps::mesh
