#pragma once
// EXTRACTMESH (paper Sec. IV.B): build a distributed trilinear hexahedral
// finite-element mesh from a balanced forest. Establishes the unique
// global numbering of independent degrees of freedom, detects hanging
// nodes on nonconforming faces and edges, expresses them as algebraic
// constraints on the independent dofs (enforced at the element level, as
// in the paper), gathers ghost information, and sets up the communication
// pattern used by the solvers.
//
// Requires the tree to be 2:1 balanced across faces and edges
// (Adjacency::kFaceEdge), which guarantees single-level constraints.

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"
#include "mesh/ghost.hpp"
#include "obs/mem.hpp"

namespace alps::mesh {

using octree::coord_t;
using octree::Octant;

/// Canonical node identifier: tree + integer corner coordinates in
/// [0, 2^kMaxLevel]. Nodes on inter-tree boundaries are canonicalized to
/// their lexicographically smallest representation.
struct NodeKey {
  std::int32_t tree = 0;
  coord_t x = 0, y = 0, z = 0;

  friend auto operator<=>(const NodeKey&, const NodeKey&) = default;
};

/// One element corner: either a single independent dof (n == 1, w == 1)
/// or a hanging node constrained by up to 4 independent dofs (the corners
/// of the coarse neighbor's face or edge it sits on).
struct Corner {
  std::int8_t hanging = 0;
  std::int8_t n = 0;
  std::array<std::int32_t, 4> dof{};  // local dof indices
  std::array<double, 4> w{};
};

class Mesh {
 public:
  // ---- elements ---------------------------------------------------------
  std::vector<Octant> elements;                 // this rank's leaves
  std::vector<std::array<Corner, 8>> corners;   // per element, z-order

  // ---- extraction provenance --------------------------------------------
  // What this mesh was extracted from, kept so the next adaptation can
  // re-extract incrementally: the ghost layer used, the ownership ranges
  // at extract time (incremental extraction is valid only while they are
  // unchanged — partition invalidates them), and a generation counter
  // (0 = never extracted, 1 = full extraction, +1 per incremental reuse).
  std::vector<Octant> ghosts;
  std::vector<octree::SfcKey> regions;
  std::int64_t epoch = 0;

  // ---- degrees of freedom ------------------------------------------------
  std::int64_t n_owned = 0;    // dofs this rank numbers
  std::int64_t n_local = 0;    // owned + ghost dofs addressable locally
  std::int64_t n_global = 0;   // total independent dofs
  std::int64_t gid_offset = 0; // global id of local dof 0
  std::vector<NodeKey> dof_keys;                 // size n_local
  std::vector<std::int64_t> dof_gids;            // size n_local
  std::vector<std::array<double, 3>> dof_coords; // physical positions
  std::vector<std::uint8_t> dof_boundary;        // bitmask of physical faces

  // ---- ghost-dof communication pattern -----------------------------------
  // One slot per rank (empty vectors for non-neighbors).
  std::vector<std::vector<std::int32_t>> send_idx;  // owned indices to send
  std::vector<std::vector<std::int32_t>> recv_idx;  // ghost indices to fill

  /// Overwrite the ghost entries of `values` (n_local * ncomp doubles,
  /// node-major) with the owners' values. Collective.
  void exchange(par::Comm& comm, std::span<double> values, int ncomp = 1) const;

  /// Add this rank's ghost-slot contributions into the owners' entries and
  /// zero the ghost slots; after the call owners hold the global sums and
  /// a subsequent exchange() makes all copies consistent. Collective.
  void accumulate(par::Comm& comm, std::span<double> values,
                  int ncomp = 1) const;

  // ---- split-phase halo operations ---------------------------------------
  // accumulate() and exchange() are start + finish back to back. The split
  // halves let callers hide the neighbor messages behind local work: the
  // element operator computes its boundary elements, posts the ghost
  // accumulate with accumulate_start, streams the interior elements while
  // the messages are in flight, then completes with accumulate_finish.
  // Sends go over the buffered p2p layer, so *_start returns without
  // waiting on any other rank; *_finish blocks until the matching messages
  // arrive. Packing buffers and the neighbor lists are precomputed and
  // reused — no per-call allocations on the Krylov hot path.
  //
  // At most one operation may be in flight per Mesh at a time; misuse
  // (double start, finish without start, or finishing a different
  // operation than was started) throws std::logic_error.
  void accumulate_start(par::Comm& comm, std::span<double> values,
                        int ncomp = 1) const;
  void accumulate_finish(par::Comm& comm, std::span<double> values,
                         int ncomp = 1) const;
  void exchange_start(par::Comm& comm, std::span<double> values,
                      int ncomp = 1) const;
  void exchange_finish(par::Comm& comm, std::span<double> values,
                       int ncomp = 1) const;

  /// Number of local elements.
  std::int64_t num_elements() const {
    return static_cast<std::int64_t>(elements.size());
  }

  /// True if local dof index i is owned by this rank.
  bool is_owned(std::int32_t i) const { return i < n_owned; }

  /// Physical corner positions of element e (z-order), via the geometry.
  std::array<std::array<double, 3>, 8> element_corners_xyz(
      const forest::Connectivity& conn, std::int64_t e) const;

  /// This rank's heap bytes split by what they store (reported into the
  /// "mesh.*" memory scopes; see obs/mem.hpp).
  struct MemoryBytes {
    std::uint64_t topology = 0;  // octants + hanging-node corner tables
    std::uint64_t dofs = 0;      // numbering, coords, boundary masks
    std::uint64_t halo = 0;      // ghost index lists + packing buffers
    std::uint64_t total() const { return topology + dofs + halo; }
  };
  MemoryBytes memory_bytes() const {
    MemoryBytes m;
    m.topology = obs::vec_bytes(elements) + obs::vec_bytes(corners) +
                 obs::vec_bytes(ghosts) + obs::vec_bytes(regions);
    m.dofs = obs::vec_bytes(dof_keys) + obs::vec_bytes(dof_gids) +
             obs::vec_bytes(dof_coords) + obs::vec_bytes(dof_boundary);
    m.halo = obs::vec_bytes(send_idx) + obs::vec_bytes(recv_idx) +
             obs::vec_bytes(halo_owner_ranks_) +
             obs::vec_bytes(halo_user_ranks_) + obs::vec_bytes(halo_out_);
    for (const auto& v : send_idx) m.halo += obs::vec_bytes(v);
    for (const auto& v : recv_idx) m.halo += obs::vec_bytes(v);
    for (const auto& v : halo_out_) m.halo += obs::vec_bytes(v);
    return m;
  }

 private:
  enum class HaloOp : std::uint8_t { kNone, kAccumulate, kExchange };

  void build_halo_plan() const;
  void check_start(HaloOp op) const;
  void check_finish(HaloOp op, int ncomp) const;

  // Lazily-built neighbor lists: ranks that own our ghosts (recv_idx
  // non-empty) and ranks that ghost our owned dofs (send_idx non-empty),
  // plus reusable per-neighbor packing buffers. Mutable because the halo
  // runs inside logically-const hot paths; each rank owns its Mesh, so
  // there is no cross-thread access.
  mutable bool halo_plan_built_ = false;
  mutable std::vector<int> halo_owner_ranks_;  // recv_idx[r] non-empty
  mutable std::vector<int> halo_user_ranks_;   // send_idx[r] non-empty
  mutable std::vector<std::vector<double>> halo_out_;
  mutable HaloOp halo_inflight_ = HaloOp::kNone;
  mutable int halo_ncomp_ = 0;
};

/// What an extraction did: how many elements kept their previous corner
/// constraints versus being rebuilt, and whether incremental extraction
/// had to fall back to a full rebuild (ownership ranges moved, or no
/// usable previous mesh).
struct ExtractStats {
  std::int64_t reused = 0;
  std::int64_t recomputed = 0;
  bool fallback = false;
};

/// Build the mesh from a face+edge balanced forest. Collective. The
/// single-argument form computes the ghost layer itself; the two-argument
/// form takes a precomputed ghost_layer() result so one adaptation round
/// computes the layer once and shares it between consumers.
Mesh extract_mesh(par::Comm& comm, const forest::Forest& forest);
Mesh extract_mesh(par::Comm& comm, const forest::Forest& forest,
                  std::vector<Octant> ghosts);

/// The original per-corner extraction, kept verbatim as the parity oracle
/// for the hashed and incremental paths (tests/test_extract.cpp compares
/// gids, constraint weights, and halo plans bit for bit). Collective.
Mesh extract_mesh_reference(par::Comm& comm, const forest::Forest& forest);
Mesh extract_mesh_reference(par::Comm& comm, const forest::Forest& forest,
                            std::vector<Octant> ghosts);

/// Re-extract after a local adaptation, reusing the corner constraints of
/// every element whose corner neighborhood is untouched (Correspondence-
/// driven; typically the vast majority when a thin front adapts). Falls
/// back to a full extraction — identical result, stats->fallback set —
/// when `prev` was never extracted or ownership ranges moved since
/// (partition). Collective either way. Bit-identical to extract_mesh.
Mesh extract_mesh_incremental(par::Comm& comm, const forest::Forest& forest,
                              std::vector<Octant> ghosts, const Mesh& prev,
                              ExtractStats* stats = nullptr);

/// Canonicalize a node across inter-tree boundaries. Returns the minimal
/// representation and a bitmask of the physical boundary faces it lies on.
std::pair<NodeKey, std::uint8_t> canonical_node(const forest::Connectivity& conn,
                                                const NodeKey& node);

}  // namespace alps::mesh
