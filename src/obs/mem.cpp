#include "obs/mem.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hpp"

#ifdef __linux__
#include <unistd.h>
#endif

namespace alps::obs {

namespace {

// -1 = not yet initialized from ALPS_MEM (default: on).
std::atomic<int> g_mem{-1};

[[maybe_unused]] int mem_init() {  // unused under ALPS_OBS_DISABLE
  int on = 1;
  if (const char* env = std::getenv("ALPS_MEM")) {
    const std::string v(env);
    if (v == "0" || v.empty()) on = 0;
  }
  g_mem.store(on, std::memory_order_relaxed);
  return on;
}

// RSS sampling cadence: every N-th phase-span close (ALPS_MEM_SAMPLE).
std::atomic<int> g_sample_every{-1};

int sample_every() {
  int v = g_sample_every.load(std::memory_order_relaxed);
  if (v > 0) return v;
  v = 16;
  if (const char* env = std::getenv("ALPS_MEM_SAMPLE")) {
    const long e = std::atol(env);
    if (e > 0) v = static_cast<int>(e);
  }
  g_sample_every.store(v, std::memory_order_relaxed);
  return v;
}

std::atomic<bool> g_rss_forced_unavailable{false};

// One slot per rank; the owning rank thread is the only writer, the main
// thread reads after par::run joins (same contract as obs RankSlot).
struct MemRankSlot {
  int rank = -1;
  std::vector<std::uint64_t> bytes;  // indexed by MemScopeId
  std::uint64_t accounted = 0;       // sum over scopes
  std::uint64_t accounted_hwm = 0;
  const char* hwm_phase = nullptr;   // innermost phase when hwm was set
};

struct MemState {
  std::mutex mtx;  // guards slots layout, scope registry, rss peak
  std::vector<std::unique_ptr<MemRankSlot>> slots;
  std::vector<std::string> scope_names;
  std::unordered_map<std::string, MemScopeId> scope_ids;
  // Process-wide RSS peak seen by the cadence sampler (all in-process
  // ranks share one address space).
  std::uint64_t rss_peak_bytes = 0;
  const char* rss_peak_phase = nullptr;
};

MemState& state() {
  static MemState s;
  return s;
}

thread_local MemRankSlot* tl_mem_slot = nullptr;
thread_local int tl_tick = 0;

MemRankSlot& checked_slot(int rank) {
  MemState& s = state();
  if (rank < 0 || static_cast<std::size_t>(rank) >= s.slots.size())
    throw std::out_of_range("obs::mem: rank out of range");
  return *s.slots[static_cast<std::size_t>(rank)];
}

void bump_hwm(MemRankSlot& slot) {
  if (slot.accounted > slot.accounted_hwm) {
    slot.accounted_hwm = slot.accounted;
    slot.hwm_phase = current_phase();
  }
}

}  // namespace

bool mem_enabled() {
#ifdef ALPS_OBS_DISABLE
  return false;
#else
  const int v = g_mem.load(std::memory_order_relaxed);
  return (v >= 0 ? v : mem_init()) != 0;
#endif
}

void set_mem_enabled(bool on) {
  g_mem.store(on ? 1 : 0, std::memory_order_relaxed);
}

MemScopeId mem_scope(const char* name) {
  MemState& s = state();
  std::lock_guard<std::mutex> lock(s.mtx);
  const auto it = s.scope_ids.find(name);
  if (it != s.scope_ids.end()) return it->second;
  const MemScopeId id = static_cast<MemScopeId>(s.scope_names.size());
  s.scope_names.emplace_back(name);
  s.scope_ids.emplace(name, id);
  return id;
}

void mem_set(MemScopeId id, std::uint64_t bytes) {
  MemRankSlot* slot = tl_mem_slot;
  if (slot == nullptr || !mem_enabled()) return;
  if (slot->bytes.size() <= id) slot->bytes.resize(id + 1, 0);
  const std::uint64_t prev = slot->bytes[id];
  slot->bytes[id] = bytes;
  slot->accounted += bytes;
  slot->accounted -= prev;
  bump_hwm(*slot);
}

void mem_add(MemScopeId id, std::int64_t delta) {
  MemRankSlot* slot = tl_mem_slot;
  if (slot == nullptr || !mem_enabled()) return;
  if (slot->bytes.size() <= id) slot->bytes.resize(id + 1, 0);
  std::uint64_t& cur = slot->bytes[id];
  // Clamp at zero: a mismatched release must not wrap the scope (or the
  // accounted sum) around to 2^64.
  const std::uint64_t sub =
      delta < 0 ? std::min(cur, static_cast<std::uint64_t>(-delta)) : 0;
  const std::uint64_t add =
      delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
  cur += add;
  cur -= sub;
  slot->accounted += add;
  slot->accounted -= sub;
  bump_hwm(*slot);
}

std::uint64_t mem_bytes(int rank, MemScopeId id) {
  const MemRankSlot& slot = checked_slot(rank);
  return id < slot.bytes.size() ? slot.bytes[id] : 0;
}

std::uint64_t mem_accounted(int rank) { return checked_slot(rank).accounted; }

std::uint64_t mem_accounted() {
  const MemRankSlot* slot = tl_mem_slot;
  return slot != nullptr ? slot->accounted : 0;
}

MemHwm mem_hwm(int rank) {
  const MemRankSlot& slot = checked_slot(rank);
  return MemHwm{slot.accounted_hwm, slot.hwm_phase};
}

std::vector<std::pair<std::string, std::uint64_t>> aggregate_mem() {
  MemState& s = state();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(s.mtx);
    names = s.scope_names;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t id = 0; id < names.size(); ++id) {
    std::uint64_t sum = 0;
    for (const auto& slot : s.slots)
      if (id < slot->bytes.size()) sum += slot->bytes[id];
    if (sum > 0) out.emplace_back(names[id], sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> mem_snapshot() {
  const MemRankSlot* slot = tl_mem_slot;
  if (slot == nullptr) return {};
  MemState& s = state();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(s.mtx);
    names = s.scope_names;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t id = 0; id < names.size() && id < slot->bytes.size(); ++id)
    if (slot->bytes[id] > 0) out.emplace_back(names[id], slot->bytes[id]);
  std::sort(out.begin(), out.end());
  return out;
}

MemScope::MemScope(MemScopeId id, std::uint64_t bytes)
    : id_(id), bytes_(bytes) {
  mem_add(id_, static_cast<std::int64_t>(bytes_));
}

MemScope::~MemScope() { mem_add(id_, -static_cast<std::int64_t>(bytes_)); }

void MemScope::resize(std::uint64_t bytes) {
  mem_add(id_, static_cast<std::int64_t>(bytes) -
                   static_cast<std::int64_t>(bytes_));
  bytes_ = bytes;
}

// ---- process RSS ------------------------------------------------------

RssSample sample_rss() {
  RssSample s;
  if (g_rss_forced_unavailable.load(std::memory_order_relaxed)) return s;
#ifdef __linux__
  // statm field 2 is resident pages — cheaper to parse than status and
  // always present; VmHWM only lives in status.
  std::ifstream statm("/proc/self/statm");
  std::uint64_t size_pages = 0, resident_pages = 0;
  if (!(statm >> size_pages >> resident_pages)) return s;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return s;
  s.rss_bytes = resident_pages * static_cast<std::uint64_t>(page);
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, 6, "VmHWM:") != 0) continue;
    std::istringstream ls(line.substr(6));
    std::uint64_t kib = 0;
    if (ls >> kib) s.hwm_bytes = kib * 1024;
    break;
  }
  // VmHWM can lag VmRSS within a scheduling tick; keep the invariant
  // hwm >= rss that check_telemetry.py enforces.
  s.hwm_bytes = std::max(s.hwm_bytes, s.rss_bytes);
  s.available = true;
#endif
  return s;
}

void set_rss_unavailable_for_testing(bool forced) {
  g_rss_forced_unavailable.store(forced, std::memory_order_relaxed);
}

RssPeak rss_peak() {
  MemState& s = state();
  std::lock_guard<std::mutex> lock(s.mtx);
  return RssPeak{s.rss_peak_bytes, s.rss_peak_phase};
}

namespace memdetail {

void world_begin(int nranks) {
  MemState& s = state();
  std::lock_guard<std::mutex> lock(s.mtx);
  s.slots.clear();
  for (int r = 0; r < nranks; ++r) {
    auto slot = std::make_unique<MemRankSlot>();
    slot->rank = r;
    s.slots.push_back(std::move(slot));
  }
  s.rss_peak_bytes = 0;
  s.rss_peak_phase = nullptr;
}

void rank_bind(int rank) {
  tl_mem_slot = &checked_slot(rank);
  tl_tick = 0;
}

void rank_unbind() { tl_mem_slot = nullptr; }

void phase_close_tick(const char* phase) {
  if (tl_mem_slot == nullptr || !mem_enabled()) return;
  if (++tl_tick < sample_every()) return;
  tl_tick = 0;
  const RssSample r = sample_rss();
  if (!r.available) return;
  MemState& s = state();
  std::lock_guard<std::mutex> lock(s.mtx);
  if (r.rss_bytes > s.rss_peak_bytes) {
    s.rss_peak_bytes = r.rss_bytes;
    s.rss_peak_phase = phase;
  }
}

}  // namespace memdetail

}  // namespace alps::obs
