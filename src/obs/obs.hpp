#pragma once
// alps::obs — unified per-rank tracing and metrics (DESIGN.md §8).
//
// Three pieces, shared by the whole stack:
//
//  1. Scoped spans (OBS_SPAN / OBS_PHASE_SPAN) recorded into per-rank
//     ring buffers. Each simulated rank (par::run thread) owns its buffer
//     and is its only writer, so recording takes no locks; the main
//     thread reads the buffers only after par::run has joined the rank
//     threads. Buffers export as Chrome trace-event JSON — one track per
//     rank — loadable in Perfetto or chrome://tracing.
//  2. A counter registry (interned name -> small integer id, per-rank
//     value slots) absorbing solver metrics: MINRES/CG iterations, AMG
//     V-cycles, per-level hierarchy nnz, ghost-exchange payload bytes.
//  3. Per-rank phase accumulators (name -> cumulative seconds) feeding a
//     cross-rank aggregator that reduces each phase to min / median /
//     max / mean / imbalance — the single source for the paper's
//     Fig. 7/8/10 breakdown tables and for perf::MachineModel inputs.
//
// Kill switches: tracing is off unless ALPS_TRACE is set (=1 enables
// phase + solver spans; =comm/all additionally records per-collective
// spans) or set_enabled() is called; a disabled span is one relaxed
// atomic load. Compiling with -DALPS_OBS_DISABLE removes the span macros
// entirely. Phase accumulation and counters stay on regardless — they
// replace the old hand-threaded rhea::PhaseTimers bookkeeping and cost
// one thread-local add on paths that are never per-element hot.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace alps::obs {

// ---- enablement -------------------------------------------------------

enum class Cat : std::uint8_t { kPhase = 0, kSolver = 1, kComm = 2 };

namespace detail {
// Bit 0: record phase/solver spans. Bit 1: record comm spans.
// Initialized from ALPS_TRACE on first use; see ensure_init().
extern std::atomic<int> g_mask;
int init_mask();
inline int mask() {
  int m = g_mask.load(std::memory_order_relaxed);
  return m >= 0 ? m : init_mask();
}
}  // namespace detail

inline bool enabled() { return (detail::mask() & 1) != 0; }
inline bool category_enabled(Cat c) {
  const int m = detail::mask();
  return c == Cat::kComm ? (m & 2) != 0 : (m & 1) != 0;
}
void set_enabled(bool on);       // overrides ALPS_TRACE
void set_comm_tracing(bool on);  // overrides ALPS_TRACE=comm/all

// ---- world / rank lifecycle (called by par::run) ----------------------

/// Reset all per-rank state for a world of `nranks` and restart the
/// trace clock. Must be called while no rank thread is running.
void world_begin(int nranks);
/// Bind the calling thread to rank slot `rank`; spans/counters/phases
/// recorded by this thread go there. Unbound threads record nothing.
void rank_bind(int rank);
void rank_unbind();
int world_size();
/// Monotone counter bumped by every world_begin; obs::analysis uses it to
/// invalidate its per-world baselines without a reverse link dependency.
std::uint64_t world_generation();
/// Nanoseconds since the current world's trace epoch.
std::uint64_t trace_now_ns();

/// Ring capacity (span events per rank) for subsequent world_begin calls;
/// also settable via ALPS_TRACE_BUF. Returns the previous value.
std::size_t set_ring_capacity(std::size_t events_per_rank);

// ---- spans ------------------------------------------------------------

struct SpanEvent {
  const char* name;  // string literal or interned counter name
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  Cat cat = Cat::kSolver;
};

/// RAII scoped span. `accumulate_phase` additionally adds the elapsed
/// seconds to this rank's phase accumulator under `name` (always, even
/// with tracing disabled — this is what powers rhea::PhaseTimers).
/// `name` must outlive the trace session: pass a string literal.
class Span {
 public:
  explicit Span(const char* name, Cat cat = Cat::kSolver,
                bool accumulate_phase = false);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_ = 0;
  Cat cat_;
  bool record_ = false;  // emit a trace event on close
  bool phase_ = false;   // add to the phase accumulator on close
};

#ifndef ALPS_OBS_DISABLE
#define ALPS_OBS_CONCAT2(a, b) a##b
#define ALPS_OBS_CONCAT(a, b) ALPS_OBS_CONCAT2(a, b)
/// Trace-only scoped span (solver category).
#define OBS_SPAN(name) \
  ::alps::obs::Span ALPS_OBS_CONCAT(obs_span_, __LINE__)(name)
/// Scoped span that also accumulates into the named phase.
#define OBS_PHASE_SPAN(name)                             \
  ::alps::obs::Span ALPS_OBS_CONCAT(obs_span_, __LINE__)( \
      name, ::alps::obs::Cat::kPhase, true)
/// Communication-category span (recorded only with ALPS_TRACE=comm/all).
#define OBS_COMM_SPAN(name)                              \
  ::alps::obs::Span ALPS_OBS_CONCAT(obs_span_, __LINE__)( \
      name, ::alps::obs::Cat::kComm)
#else
#define OBS_SPAN(name) ((void)0)
#define OBS_PHASE_SPAN(name) ((void)0)
#define OBS_COMM_SPAN(name) ((void)0)
#endif

/// Completed span events of `rank`, in completion order. Call only after
/// par::run has returned (the rank threads are the only writers).
std::vector<SpanEvent> events(int rank);
/// Events that did not fit in the ring and were dropped.
std::uint64_t dropped(int rank);

/// Innermost open OBS_PHASE_SPAN name on the calling thread, or nullptr
/// outside any phase. Wait-state classification keys its buckets on this.
const char* current_phase();

/// Approximate bytes held by the calling rank's own obs state (span ring,
/// flow buffer, counter/phase tables) — what the "obs.self" memory scope
/// reports, so the observer shows up in its own accounting.
std::uint64_t self_memory_bytes();

// ---- wait-state instrumentation (consumed by obs::analysis) -----------
//
// The par::Comm runtime stamps every message envelope with its send time
// and reports each blocked receive and collective barrier here, so per
// phase and per rank the blocked time decomposes Scalasca-style:
//   late_sender_s    waited before the matching send was even posted
//                    (attributed to the sending rank),
//   transfer_s       waited after the send was posted (delivery/wakeup),
//   late_receiver_s  messages sat queued before this rank entered the
//                    receive — comm time that WAS hidden by local work,
//   collective_s     blocked in collective staging barriers (imbalance).
// The split-phase halo marks (overlap_mark_*) additionally measure, per
// phase, how much of the halo round-trip the caller covered with local
// compute between *_start and *_finish — the achieved-overlap metric of
// the PR 5 split apply. Everything here is a relaxed-atomic no-op unless
// ALPS_ANALYSIS is on (default: on; set ALPS_ANALYSIS=0 to remove the
// two clock reads per receive).

struct WaitBuckets {
  double late_sender_s = 0, transfer_s = 0, late_receiver_s = 0,
         collective_s = 0;
  double overlap_covered_s = 0;  // compute between halo start and finish
  double overlap_waited_s = 0;   // blocked inside halo finish
  std::uint64_t recvs = 0, waited_recvs = 0, collectives = 0, halo_ops = 0;
};

/// True when wait-state accounting is active (ALPS_ANALYSIS, default on).
bool analysis_enabled();
void set_analysis_enabled(bool on);  // overrides ALPS_ANALYSIS

/// trace_now_ns() when accounting is active on a bound rank thread, else
/// 0 — the sentinel the recorders use to skip disabled call sites.
std::uint64_t wait_now();
/// Thread-local recursion guard: while suppressed, the calling thread's
/// waits are not recorded (obs::analysis uses it so the analyzer's own
/// collectives do not pollute the buckets it is measuring).
void wait_suppress(bool on);
void wait_record_recv(int src, std::uint64_t enter_ns, std::uint64_t sent_ns,
                      std::uint64_t got_ns);
void wait_record_collective(std::uint64_t enter_ns, std::uint64_t resume_ns,
                            bool count_call = true);
/// Split-phase halo markers: start = sends posted, finish_begin = caller
/// done with overlapped compute, finish_end = ghost data consumed.
void overlap_mark_start();
void overlap_mark_finish_begin();
void overlap_mark_finish_end();

/// One phase's wait buckets on one rank, with the per-source-rank
/// late-sender attribution (who this rank waited for, and how long).
struct PhaseWaitSample {
  std::string phase;
  WaitBuckets w;
  std::vector<std::pair<int, double>> late_sender_by_rank;  // sorted by rank
};
/// Wait buckets of `rank`, one entry per phase that recorded any wait.
/// Safe from the owning rank thread or after par::run has joined.
std::vector<PhaseWaitSample> wait_samples(int rank);
/// Same, for the calling thread's bound rank (empty when unbound).
std::vector<PhaseWaitSample> wait_samples();
/// Per-phase cumulative seconds of every rank: {name, seconds[rank]}.
/// Call after par::run has joined (main thread).
std::vector<std::pair<std::string, std::vector<double>>> phase_table();
/// All phase accumulators of the calling thread's rank.
std::vector<std::pair<std::string, double>> phase_snapshot();

// ---- cross-rank flow events -------------------------------------------
//
// Perfetto flow arrows linking the split-phase halo: the sender records a
// flow start ("s") inside its *_start span, the receiver records the
// matching finish ("f") inside its *_finish span. Ids are derived from a
// per-(channel, src, dst) sequence counter on both sides — the mailbox
// delivers same-channel messages FIFO, so the k-th send matches the k-th
// receive and both ends compute the same id without shipping it.

struct FlowEvent {
  std::uint64_t id = 0;
  std::uint64_t ns = 0;
  bool start = false;
};

/// Flow channels (part of the flow id, so arrows of different operations
/// can never cross-link).
enum : int {
  kFlowHaloAccumulate = 0,
  kFlowHaloExchange = 1,
  kFlowGhostForward = 2,
  kFlowGhostReverse = 3,
};

/// Record one flow endpoint with `peer` on `channel`. `outgoing` is true
/// on the sending side. The sequence counter always advances so both
/// sides stay matched even when tracing toggles mid-run; the event itself
/// is recorded only while tracing is enabled.
void flow_emit(int peer, int channel, bool outgoing);
std::vector<FlowEvent> flows(int rank);
std::uint64_t flow_dropped(int rank);

// ---- counters ---------------------------------------------------------

using CounterId = std::uint32_t;

/// Intern `name` into the registry (thread-safe; cache the id in a
/// function-local static on hot paths).
CounterId counter(const char* name);
/// Add to this rank's slot for `id`; no-op on unbound threads.
void counter_add(CounterId id, std::uint64_t delta);
std::uint64_t counter_value(int rank, CounterId id);

/// Pre-interned ids for the hot instrumentation sites.
namespace wellknown {
CounterId ghost_exchange_bytes();
CounterId minres_iterations();
CounterId cg_iterations();
CounterId amg_vcycles();
/// Hierarchy-reuse outcomes per StokesSolver construction (see
/// amg::HierarchyCache): full symbolic setup / numeric-only RAP refresh /
/// setup skipped entirely under the viscosity-drift tolerance.
CounterId amg_setup_full();
CounterId amg_setup_numeric();
CounterId amg_setup_skipped();
/// Global synchronization rounds (fused multi-value allreduces) issued by
/// the Krylov iterations ("comm.sync.minres" / "comm.sync.cg"). Divided
/// by the matching *_iterations counter this yields the per-iteration
/// sync count the reduced-synchronization solvers must keep <= 2.
CounterId minres_syncs();
CounterId cg_syncs();
}  // namespace wellknown

/// Sum each counter across all rank slots; sorted by name, zero-valued
/// counters omitted.
std::vector<std::pair<std::string, std::uint64_t>> aggregate_counters();

/// The calling thread's rank's nonzero counters, sorted by name (empty
/// when unbound). Single-rank view of aggregate_counters(); safe to call
/// from a running rank thread — obs::analysis ships it in the per-step
/// exchange so cross-rank totals never require reading foreign slots.
std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot();

// ---- gauges ------------------------------------------------------------
//
// Instantaneous per-rank values (local element count, owned dofs, queue
// depths): set-overwrite semantics, shipped in the per-step analysis
// exchange and reduced to {sum, max} across ranks — how the metrics
// endpoint learns global mesh statistics without any extra collective.

/// Overwrite this rank's gauge `name` (string literal; no-op unbound).
void gauge_set(const char* name, double value);
/// All gauges of the calling thread's rank, sorted by name.
std::vector<std::pair<std::string, double>> gauge_snapshot();

// ---- phases -----------------------------------------------------------

/// Add `seconds` to this rank's accumulator for `name` (no-op unbound).
void phase_add(const char* name, double seconds);
/// Cumulative seconds of `name` on the calling thread's rank (0 unbound).
double phase_seconds(const char* name);
double phase_seconds(int rank, const char* name);

/// Cross-rank reduction of one phase: the Fig. 7/8/10 statistics.
struct PhaseBreakdown {
  std::string name;
  double min_s = 0, median_s = 0, max_s = 0, mean_s = 0;
  double total_s = 0;    // sum over ranks (total work)
  double imbalance = 1;  // max / mean; 1 when the phase is balanced
  int ranks = 0;
};

/// Reduce every recorded phase across ranks (call after par::run; ranks
/// that never entered a phase contribute 0). Sorted by name.
std::vector<PhaseBreakdown> aggregate_phases();

// ---- trace export -----------------------------------------------------

/// All ranks' spans as Chrome trace-event JSON ("X" complete events,
/// pid 0, tid = rank, ts/dur in microseconds) plus thread-name metadata
/// and a top-level "alpsDropped" array (per-rank dropped-event counts,
/// checked by scripts/check_trace.py).
std::string chrome_trace_json();
void write_chrome_trace(const std::string& path);
/// If tracing is enabled, write the trace to ALPS_TRACE_OUT (or
/// `default_path` when unset) and return the path; else return "".
std::string maybe_write_trace(const std::string& default_path);

}  // namespace alps::obs
