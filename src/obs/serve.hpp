#pragma once
// obs::serve — rank-0 in-situ metrics endpoint (DESIGN.md §14).
//
// A tiny dependency-free blocking HTTP server on a background thread,
// off by default and enabled with ALPS_METRICS_PORT (port number; 0
// binds an ephemeral port). It binds 127.0.0.1 unless ALPS_METRICS_BIND
// overrides the address. Endpoints:
//
//   /metrics         Prometheus text exposition: run gauges, cumulative
//                    counters, and one histogram series per phase
//                    (alps_latency_seconds{phase=...}).
//   /status          JSON run manifest: step, sim time, dt, dofs,
//                    elements, health, last solver status, and a
//                    wall-clock ETA from a sliding-window step rate.
//   /healthz         200 "ok" while stepping; 503 after a sentinel trip
//                    or >= N consecutive stagnated/failed solves.
//   /telemetry/tail  The in-memory telemetry tail ring as JSONL (the
//                    lines reuse the telemetry sanitizer: non-finite
//                    values are already null).
//
// Concurrency: the simulation thread (rank 0, once per step) renders a
// MetricsSnapshot into one of two pre-allocated response buffers and
// atomically publishes it; the server thread pins a buffer with a
// per-slot reader count before reading and the publisher never rewrites
// a slot that still has readers. No locks on the read side, no
// allocation races — the protocol TSan is pointed at in CI. All
// cross-rank data in the snapshot arrives via the per-step obs::analysis
// exchange: serving metrics adds zero collectives.
//
// Compiled out (inline no-op stubs) under -DALPS_OBS_DISABLE.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace alps::obs {

/// Everything one /metrics + /status render needs, filled by the
/// simulation loop on rank 0 from the step's analysis record.
struct MetricsSnapshot {
  int step = 0;
  double sim_time = 0;
  double dt = 0;
  std::int64_t dofs = 0;
  std::int64_t elements = 0;
  int ranks = 0;
  double partition_imbalance = 1;
  double cp_imbalance = 1;
  // Most recent Stokes outcome; solver_ran is false on steps that only
  // advanced energy (stagnation tracking ignores those).
  bool solver_ran = false;
  std::string solver_status;  // la::to_string token; "" before any solve
  int solver_iterations = 0;
  double solver_relres = 0;
  int picard_iterations = 0;
  bool healthy = true;
  std::string health_reason;  // "" while healthy
  // Rank-summed cumulative counters (analysis::StepRecord::counters).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  // Run-cumulative cross-rank histograms (analysis::merged_histograms).
  std::vector<std::pair<std::string, Histogram>> hists;
  // Step wait-state total over ranks (late_sender + transfer + collective).
  double wait_blocked_s = 0;
  bool mem_available = false;
  std::uint64_t mem_accounted_total = 0;
  std::uint64_t mem_rss_max = 0;
};

#ifndef ALPS_OBS_DISABLE

/// Start the server on `port` (0 = ephemeral) at ALPS_METRICS_BIND or
/// 127.0.0.1. Returns the bound port, or -1 with `*err` set. No-op
/// (returns the current port) when already running.
int serve_start(int port, std::string* err = nullptr);
/// Start from ALPS_METRICS_PORT when set; returns the bound port or -1
/// (unset, empty, or failed — failure is reported on stderr, never fatal:
/// monitoring must not take down the run).
int serve_maybe_start();
/// Stop the server thread and release the socket. Safe when not running.
void serve_stop();
/// True between a successful serve_start and serve_stop. Process-global,
/// so every rank branches identically on it around collectives.
bool serve_active();
/// Bound port of the running server (-1 when inactive).
int serve_port();

/// Render and atomically publish `snap`; the server thread picks it up
/// on the next request. Also feeds the ETA window and the stagnation
/// tracker. Call from one thread (rank 0 of the step loop).
void metrics_publish(const MetricsSnapshot& snap);
/// Total steps this run intends to take (-1 = unknown): the ETA target.
void metrics_set_target_steps(long steps);
/// Consecutive non-converged ("stagnated"/"diverged"/"nonfinite") solves
/// after which /healthz flips to 503. Returns the previous limit.
int metrics_set_stagnation_limit(int n);
/// Sticky kill switch: flips /healthz to 503 immediately (sentinel and
/// drift trips call this before the SentinelError propagates).
void metrics_mark_unhealthy(const std::string& reason);
/// When the server is active and unhealthy has been marked, keep serving
/// for ALPS_METRICS_LINGER seconds (default 2) so an external prober can
/// observe the 503 before the process exits. Returns immediately
/// otherwise.
void metrics_linger_if_unhealthy();
/// Clear the sticky unhealthy mark, the stagnation run, the ETA window
/// and any published snapshot. Tests only: real runs never recover.
void metrics_reset_for_testing();

/// Pure renderers, exposed for tests (exactly what /metrics and /status
/// serve for `snap`).
std::string prometheus_text(const MetricsSnapshot& snap);
std::string status_json(const MetricsSnapshot& snap, double eta_s,
                        double step_rate_per_s, long target_steps);

#else  // ALPS_OBS_DISABLE: observability is compiled out entirely.

inline int serve_start(int, std::string* = nullptr) { return -1; }
inline int serve_maybe_start() { return -1; }
inline void serve_stop() {}
inline bool serve_active() { return false; }
inline int serve_port() { return -1; }
inline void metrics_publish(const MetricsSnapshot&) {}
inline void metrics_set_target_steps(long) {}
inline int metrics_set_stagnation_limit(int) { return 0; }
inline void metrics_mark_unhealthy(const std::string&) {}
inline void metrics_linger_if_unhealthy() {}
inline void metrics_reset_for_testing() {}
inline std::string prometheus_text(const MetricsSnapshot&) { return {}; }
inline std::string status_json(const MetricsSnapshot&, double, double, long) {
  return {};
}

#endif

}  // namespace alps::obs
