#pragma once
// alps::obs flight recorder — "leave a usable corpse" (DESIGN.md §8).
//
// panic_dump(reason) writes a diagnostics bundle into ALPS_DUMP_DIR
// (default "alps_dump"):
//
//   reason.txt           what tripped, free text
//   trace.json           Chrome trace of the spans recorded so far
//                        (last-N per rank — the ring keeps the newest)
//   counters.json        merged counter registry (all ranks summed)
//   phases.json          cross-rank phase breakdown table
//   residuals.json       recent solver residual histories / AMG factors
//   telemetry_tail.jsonl the last telemetry records (even when the
//                        telemetry file sink was off)
//
// Callers add collective artifacts (e.g. a VTK field snapshot) into the
// same directory themselves — panic_dump only writes obs-owned state and
// must therefore be called from ONE thread while the other rank threads
// are quiescent (parked at a barrier, or joined). rhea::Simulation trips
// it on NaN/Inf sentinels and solver breakdown; anything can call it
// explicitly.

#include <string>

namespace alps::obs {

/// Directory the next dump will be written to: ALPS_DUMP_DIR or
/// "alps_dump". Created on demand by panic_dump.
std::string dump_dir();

/// Write the diagnostics bundle; returns the directory written to.
/// Never throws — a flight recorder that crashes the crash handler is
/// worse than useless; file errors are reported on stderr and skipped.
std::string panic_dump(const std::string& reason) noexcept;

}  // namespace alps::obs
