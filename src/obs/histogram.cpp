#include "obs/histogram.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace alps::obs {

namespace {

constexpr double kGrowth = 1.08;
constexpr double kFirstUpper = 1e-9;

// The boundary table *defines* the buckets: bucket_index agrees with it
// bit-for-bit, so a value equal to upper(i) always lands in bucket i —
// the exactness property test_serve.cpp asserts. Cumulative
// multiplication (not pow) keeps adjacent bounds consistent.
const std::array<double, Histogram::kBucketCount>& upper_table() {
  static const std::array<double, Histogram::kBucketCount> t = [] {
    std::array<double, Histogram::kBucketCount> a{};
    double u = kFirstUpper;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      a[static_cast<std::size_t>(i)] = u;
      u *= kGrowth;
    }
    return a;
  }();
  return t;
}

}  // namespace

double Histogram::growth() { return kGrowth; }
double Histogram::first_upper() { return kFirstUpper; }

double Histogram::bucket_upper(int i) {
  i = std::clamp(i, 0, kBucketCount - 1);
  return upper_table()[static_cast<std::size_t>(i)];
}

double Histogram::bucket_lower(int i) {
  return i <= 0 ? 0.0 : bucket_upper(i - 1);
}

double Histogram::bucket_mid(int i) {
  // Geometric midpoint of (lower, upper]; for bucket 0 the nominal lower
  // bound upper/growth keeps the formula uniform.
  return bucket_upper(i) / std::sqrt(kGrowth);
}

int Histogram::bucket_index(double seconds) {
  if (!(seconds > kFirstUpper)) return 0;  // also catches NaN / negatives
  static const double inv_log_g = 1.0 / std::log(kGrowth);
  int i = static_cast<int>(std::ceil(std::log(seconds / kFirstUpper) *
                                     inv_log_g));
  i = std::clamp(i, 0, kBucketCount - 1);
  // The log estimate can be off by one ulp-step near a boundary; settle
  // against the table so the boundary semantics are exact.
  while (i > 0 && seconds <= bucket_upper(i - 1)) --i;
  while (i < kBucketCount - 1 && seconds > bucket_upper(i)) ++i;
  return i;
}

void Histogram::record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  buckets_[static_cast<std::size_t>(bucket_index(seconds))]++;
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  count_++;
  sum_ += seconds;
}

void Histogram::merge(const Histogram& o) {
  if (o.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  for (int i = 0; i < kBucketCount; ++i)
    buckets_[static_cast<std::size_t>(i)] += o.bucket(i);
  expand_range(o.min_, o.max_);
  count_ += o.count_;
  sum_ += o.sum_;
}

Histogram Histogram::delta_since(const Histogram& base) const {
  Histogram d;
  int lo = -1, hi = -1;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t cur = bucket(i);
    const std::uint64_t old = base.bucket(i);
    const std::uint64_t n = cur > old ? cur - old : 0;
    if (n == 0) continue;
    if (d.buckets_.empty()) d.buckets_.assign(kBucketCount, 0);
    d.buckets_[static_cast<std::size_t>(i)] = n;
    d.count_ += n;
    if (lo < 0) lo = i;
    hi = i;
  }
  d.sum_ = std::max(0.0, sum_ - base.sum_);
  if (d.count_ > 0) {
    // Window extremes are unknown exactly (cumulative min/max do not
    // difference); the bucket midpoints bound the quantile clamp with the
    // same <= sqrt(growth) - 1 error as the quantiles themselves.
    d.min_ = bucket_mid(lo);
    d.max_ = bucket_mid(hi);
  }
  return d;
}

double Histogram::min() const { return count_ > 0 ? min_ : 0.0; }
double Histogram::max() const { return count_ > 0 ? max_ : 0.0; }

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  std::uint64_t seen = 0;
  int b = kBucketCount - 1;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += bucket(i);
    if (seen > target) {
      b = i;
      break;
    }
  }
  return std::clamp(bucket_mid(b), min(), max());
}

std::uint64_t Histogram::bucket(int i) const {
  if (buckets_.empty() || i < 0 || i >= kBucketCount) return 0;
  return buckets_[static_cast<std::size_t>(i)];
}

void Histogram::add_bucket(int i, std::uint64_t n) {
  if (i < 0 || i >= kBucketCount || n == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  buckets_[static_cast<std::size_t>(i)] += n;
  count_ += n;
}

void Histogram::expand_range(double mn, double mx) {
  if (count_ == 0) {
    min_ = mn;
    max_ = mx;
  } else {
    min_ = std::min(min_, mn);
    max_ = std::max(max_, mx);
  }
}

}  // namespace alps::obs
