#pragma once
// alps::obs memory observability — per-subsystem byte accounting and
// process-level RSS sampling (DESIGN.md §12).
//
// The paper's scalability claim is that AMR + AMG keep memory per core
// bounded as the mesh adapts; this module makes that claim measurable.
// Two complementary views, deliberately kept apart:
//
//  1. *Accounted* bytes: the big owners (mesh/forest, la::DistCsr,
//     amg::DistAmg, par mailboxes, obs itself) report what they hold into
//     a registry of named scopes ("amg.operators", "mesh.halo", ...)
//     mirroring the counter registry — interned name -> small id, one
//     value slot per rank, lock-free on the owning rank thread. Scope
//     names use a "subsystem.detail" convention; aggregation by the
//     prefix before the first '.' yields the per-subsystem breakdown and
//     the bytes/dof figures gated by bench_memory.
//  2. *RSS*: what the OS actually charges the process, sampled from
//     /proc/self/statm + /proc/self/status (VmHWM). Off-Linux or when
//     /proc is unreadable the sample degrades to available:false rather
//     than fabricating zeros (same contract as obs/hwcounters.hpp).
//
// High-water marks are attributed to the innermost OBS_PHASE_SPAN open
// when the peak was set, so a spike names the phase that caused it. The
// accounted HWM updates on every mem_set/mem_add; the RSS peak is
// sampled on every ALPS_MEM_SAMPLE-th phase-span close (default 16 —
// RSS only moves when allocations happen, and those sit inside phases).
//
// Enablement: ALPS_MEM (default ON — accounting is a handful of adds per
// timestep, never per-element) or set_mem_enabled(). -DALPS_OBS_DISABLE
// compiles the OBS_MEM_SCOPE macro out and pins mem_enabled() to false.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace alps::obs {

// ---- enablement -------------------------------------------------------

/// True unless ALPS_MEM is "0" or set_mem_enabled(false) was called.
/// Process-global, so collective code may branch on it symmetrically.
bool mem_enabled();
void set_mem_enabled(bool on);  // overrides ALPS_MEM

// ---- scope registry ---------------------------------------------------

using MemScopeId = std::uint32_t;

/// Heap bytes a vector holds — capacity-based, i.e. what the allocator
/// actually charges, not just what is in use. The owners' memory_bytes()
/// accessors are built from this.
template <typename T>
std::uint64_t vec_bytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

/// Intern `name` ("subsystem.detail") into the registry (thread-safe;
/// cache the id in a function-local static at reporting sites).
MemScopeId mem_scope(const char* name);

/// Set this rank's byte count for `id` to the absolute value `bytes`
/// (owners recompute their footprint and report the total). No-op on
/// unbound threads or when disabled.
void mem_set(MemScopeId id, std::uint64_t bytes);
/// Adjust this rank's byte count for `id` by `delta`, clamped at zero.
void mem_add(MemScopeId id, std::int64_t delta);

/// Current bytes of `id` on `rank` / summed accounted bytes of `rank`.
/// Safe from the owning rank thread or after par::run has joined.
std::uint64_t mem_bytes(int rank, MemScopeId id);
std::uint64_t mem_accounted(int rank);
/// Accounted bytes of the calling thread's bound rank (0 unbound).
std::uint64_t mem_accounted();

/// Accounted high-water mark of one rank with the innermost phase that
/// was open when it was last raised (nullptr = outside any phase).
struct MemHwm {
  std::uint64_t bytes = 0;
  const char* phase = nullptr;
};
MemHwm mem_hwm(int rank);

/// Per-scope bytes summed over all rank slots; sorted by name, zero
/// scopes omitted. Call after par::run has joined.
std::vector<std::pair<std::string, std::uint64_t>> aggregate_mem();
/// All non-zero scopes of the calling thread's rank, sorted by name
/// (the per-rank blob obs::analysis::analyze_memory exchanges).
std::vector<std::pair<std::string, std::uint64_t>> mem_snapshot();

// ---- RAII tag for transients ------------------------------------------

/// Tags a transient allocation (e.g. the AMR interpolation workspace):
/// adds `bytes` to `id` for the scope's lifetime. For long-lived owners
/// prefer recomputing and mem_set-ing the absolute footprint.
class MemScope {
 public:
  MemScope(MemScopeId id, std::uint64_t bytes);
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;
  /// Re-tag to a new size (the workspace grew or shrank).
  void resize(std::uint64_t bytes);

 private:
  MemScopeId id_;
  std::uint64_t bytes_;
};

#ifndef ALPS_OBS_DISABLE
#ifndef ALPS_OBS_CONCAT
#define ALPS_OBS_CONCAT2(a, b) a##b
#define ALPS_OBS_CONCAT(a, b) ALPS_OBS_CONCAT2(a, b)
#endif
/// Scoped transient-allocation tag: OBS_MEM_SCOPE("amr.workspace", n).
#define OBS_MEM_SCOPE(name, bytes)                                        \
  static const ::alps::obs::MemScopeId ALPS_OBS_CONCAT(                   \
      obs_mem_id_, __LINE__) = ::alps::obs::mem_scope(name);              \
  ::alps::obs::MemScope ALPS_OBS_CONCAT(obs_mem_scope_, __LINE__)(        \
      ALPS_OBS_CONCAT(obs_mem_id_, __LINE__),                             \
      static_cast<std::uint64_t>(bytes))
#else
#define OBS_MEM_SCOPE(name, bytes) ((void)0)
#endif

// ---- process RSS ------------------------------------------------------

/// One /proc sample. available is false off-Linux, when /proc is
/// unreadable, or under set_rss_unavailable_for_testing — consumers must
/// then omit the numeric fields entirely (checked by check_telemetry.py).
struct RssSample {
  bool available = false;
  std::uint64_t rss_bytes = 0;  // VmRSS right now
  std::uint64_t hwm_bytes = 0;  // VmHWM: kernel-tracked lifetime peak
};
RssSample sample_rss();
/// Force the unavailable path regardless of /proc (tests).
void set_rss_unavailable_for_testing(bool forced);

/// Highest RSS seen by the cadence sampler since world_begin, with the
/// innermost phase open on the sampling thread when it was set. The
/// process address space is shared by every in-process rank, so this is
/// per-world, not per-rank.
struct RssPeak {
  std::uint64_t bytes = 0;
  const char* phase = nullptr;
};
RssPeak rss_peak();

namespace memdetail {
// Called by the obs world/rank lifecycle (obs.cpp).
void world_begin(int nranks);
void rank_bind(int rank);
void rank_unbind();
/// Called on every phase-span close; samples RSS every ALPS_MEM_SAMPLE-th
/// call (default 16) and folds the result into rss_peak().
void phase_close_tick(const char* phase);
}  // namespace memdetail

}  // namespace alps::obs
