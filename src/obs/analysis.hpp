#pragma once
// obs::analysis — cross-rank wait-state attribution and critical-path
// profiling over the span/counter/wait streams (DESIGN.md §11).
//
// The raw instrumentation (obs.hpp wait-state section) is strictly
// rank-local: each rank accumulates, per innermost phase, how long it was
// blocked and why (late sender / transfer / collective staging), plus the
// split-phase halo overlap marks. This module adds the collective step:
// analyze_step() is called by every rank at a synchronization point (the
// rhea timestep loop calls it once per step), exchanges each rank's
// per-phase deltas since the previous call, and stitches them into
//
//  * a step-level critical path: for each phase, the slowest rank and its
//    time; the chain of per-phase maxima bounds the step (phase-additive —
//    nested phases like stokes.minres/amg.apply are reported as-is, so
//    the total is an upper bound when phases overlap);
//  * per-phase wait-state totals with the most-blamed late sender;
//  * the achieved-overlap ratio covered/(covered+waited) of the
//    split-phase halo exchanges, which is in [0, 1] by construction.
//
// The analyzer's own collectives run under wait_suppress so they never
// appear in the buckets they are measuring. Records are retained per
// world (rank 0 stores them) for bench::Reporter run summaries and for
// the per-step telemetry blocks validated by scripts/check_analysis.py.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace alps::par {
class Comm;
}

namespace alps::obs::analysis {

/// One phase on the step's critical path.
struct PhaseCritical {
  std::string phase;
  double cp_s = 0;       // max over ranks of this step's phase time
  double mean_s = 0;     // mean over ranks
  int rank = -1;         // argmax rank (who bounded the step here)
  double imbalance = 1;  // cp_s / mean_s (1 when balanced or empty)
};

/// One phase's wait-state totals, summed over ranks for this step.
struct PhaseWaits {
  std::string phase;
  WaitBuckets w;              // rank-summed buckets
  double wall_s = 0;          // rank-summed phase seconds (for validation)
  double max_blocked_s = 0;   // worst single-rank blocked time
  double overlap = -1;        // covered/(covered+waited); -1 = no halo ops
  int blamed_rank = -1;       // sender with the most attributed late time
  double blamed_s = 0;
};

/// Everything analyze_step derives for one timestep; identical on every
/// rank (built from the same allgathered data).
struct StepRecord {
  int step = 0;
  double cp_length_s = 0;    // sum of per-phase maxima
  double mean_length_s = 0;  // sum of per-phase means
  double cp_imbalance = 1;   // cp_length_s / mean_length_s
  std::vector<PhaseCritical> critical;  // sorted by cp_s, descending
  std::vector<PhaseWaits> waits;        // sorted by blocked time, descending
};

/// Collective: exchange this rank's per-phase time and wait deltas since
/// the previous analyze_step (or world start) and return the stitched
/// step record. Every rank of `comm` must call it together; rank 0 also
/// appends the record to step_records(). Returns an empty record when
/// analysis is disabled (still collective-safe: no communication happens).
StepRecord analyze_step(par::Comm& comm, int step);

/// Records stored by rank 0's analyze_step calls in the current world,
/// oldest first. Read from the main thread after par::run, or clear
/// between bench repetitions with reset_records().
const std::vector<StepRecord>& step_records();
void reset_records();

/// Run-level roll-up of `recs` (step-summed phases, re-sorted).
struct RunSummary {
  int steps = 0;
  double cp_length_s = 0;
  double mean_length_s = 0;
  std::vector<PhaseCritical> critical;
  std::vector<PhaseWaits> waits;
};
RunSummary summarize(const std::vector<StepRecord>& recs);

/// JSON object fragments (no surrounding key) for telemetry / BENCH_*.json
/// embedding: {"length_s":..,"phases":[{"phase":..,"cp_s":..,"rank":..},..]}
/// and {"phases":[{"phase":..,"late_sender_s":..,..,"overlap":..},..]}.
std::string critical_path_json(const StepRecord& rec);
std::string wait_states_json(const StepRecord& rec);
std::string critical_path_json(const RunSummary& sum);
std::string wait_states_json(const RunSummary& sum);

}  // namespace alps::obs::analysis
