#pragma once
// obs::analysis — cross-rank wait-state attribution and critical-path
// profiling over the span/counter/wait streams (DESIGN.md §11).
//
// The raw instrumentation (obs.hpp wait-state section) is strictly
// rank-local: each rank accumulates, per innermost phase, how long it was
// blocked and why (late sender / transfer / collective staging), plus the
// split-phase halo overlap marks. This module adds the collective step:
// analyze_step() is called by every rank at a synchronization point (the
// rhea timestep loop calls it once per step), exchanges each rank's
// per-phase deltas since the previous call, and stitches them into
//
//  * a step-level critical path: for each phase, the slowest rank and its
//    time; the chain of per-phase maxima bounds the step (phase-additive —
//    nested phases like stokes.minres/amg.apply are reported as-is, so
//    the total is an upper bound when phases overlap);
//  * per-phase wait-state totals with the most-blamed late sender;
//  * the achieved-overlap ratio covered/(covered+waited) of the
//    split-phase halo exchanges, which is in [0, 1] by construction.
//
// The analyzer's own collectives run under wait_suppress so they never
// appear in the buckets they are measuring. Records are retained per
// world (rank 0 stores them) for bench::Reporter run summaries and for
// the per-step telemetry blocks validated by scripts/check_analysis.py.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/obs.hpp"

namespace alps::par {
class Comm;
}

namespace alps::obs::analysis {

/// One phase on the step's critical path.
struct PhaseCritical {
  std::string phase;
  double cp_s = 0;       // max over ranks of this step's phase time
  double mean_s = 0;     // mean over ranks
  int rank = -1;         // argmax rank (who bounded the step here)
  double imbalance = 1;  // cp_s / mean_s (1 when balanced or empty)
};

/// One phase's wait-state totals, summed over ranks for this step.
struct PhaseWaits {
  std::string phase;
  WaitBuckets w;              // rank-summed buckets
  double wall_s = 0;          // rank-summed phase seconds (for validation)
  double max_blocked_s = 0;   // worst single-rank blocked time
  double overlap = -1;        // covered/(covered+waited); -1 = no halo ops
  int blamed_rank = -1;       // sender with the most attributed late time
  double blamed_s = 0;
};

/// One phase's all-rank duration histogram for this step's window (the
/// exact bucket merge of every rank's delta since the previous step).
struct PhaseLatency {
  std::string phase;
  Histogram hist;
};

/// One per-rank gauge reduced over ranks (obs::gauge_set values).
struct GaugeStat {
  std::string name;
  double sum = 0;
  double max = 0;
};

/// Everything analyze_step derives for one timestep; identical on every
/// rank (built from the same allgathered data).
struct StepRecord {
  int step = 0;
  double cp_length_s = 0;    // sum of per-phase maxima
  double mean_length_s = 0;  // sum of per-phase means
  double cp_imbalance = 1;   // cp_length_s / mean_length_s
  std::vector<PhaseCritical> critical;  // sorted by cp_s, descending
  std::vector<PhaseWaits> waits;        // sorted by blocked time, descending
  std::vector<PhaseLatency> latency;    // sorted by name
  // Rank-summed *cumulative* counter values (monotone; Prometheus-ready).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<GaugeStat> gauges;  // sorted by name
};

/// Collective: exchange this rank's per-phase time and wait deltas since
/// the previous analyze_step (or world start) and return the stitched
/// step record. Every rank of `comm` must call it together; rank 0 also
/// appends the record to step_records(). Returns an empty record when
/// analysis is disabled (still collective-safe: no communication happens).
StepRecord analyze_step(par::Comm& comm, int step);

/// Records stored by rank 0's analyze_step calls in the current world,
/// oldest first. Read from the main thread after par::run, or clear
/// between bench repetitions with reset_records().
const std::vector<StepRecord>& step_records();
void reset_records();

/// Run-level roll-up of `recs` (step-summed phases, re-sorted).
struct RunSummary {
  int steps = 0;
  double cp_length_s = 0;
  double mean_length_s = 0;
  std::vector<PhaseCritical> critical;
  std::vector<PhaseWaits> waits;
};
RunSummary summarize(const std::vector<StepRecord>& recs);

/// JSON object fragments (no surrounding key) for telemetry / BENCH_*.json
/// embedding: {"length_s":..,"phases":[{"phase":..,"cp_s":..,"rank":..},..]}
/// and {"phases":[{"phase":..,"late_sender_s":..,..,"overlap":..},..]}.
std::string critical_path_json(const StepRecord& rec);
std::string wait_states_json(const StepRecord& rec);
std::string critical_path_json(const RunSummary& sum);
std::string wait_states_json(const RunSummary& sum);

/// The telemetry "latency" block for one step's merged histograms:
/// {"phases":[{"phase":..,"count":..,"sum_s":..,"p50_s":..,"p95_s":..,
/// "p99_s":..,"max_s":..},..]}. Quantiles carry the histogram's ~4%
/// relative-error bound (DESIGN.md §14).
std::string latency_json(const StepRecord& rec);

/// Run-cumulative cross-rank histograms: every step's merged deltas
/// accumulated by rank 0's analyze_step calls in the current world —
/// the source of the Prometheus histogram series and the bench::Reporter
/// percentile rows. Sorted by name; copied under the analysis lock.
std::vector<std::pair<std::string, Histogram>> merged_histograms();

// ---- memory aggregation (obs/mem.hpp across ranks) ---------------------

/// One memory scope reduced over ranks.
struct MemScopeStat {
  std::string scope;        // full "subsystem.detail" name
  std::uint64_t total = 0;  // summed over ranks
  std::uint64_t max = 0;    // worst single rank
  int argmax = -1;
};

/// Everything analyze_memory derives for one timestep; identical on every
/// rank. `enabled` is false (and nothing else valid) when obs::mem is off.
struct MemRecord {
  int step = 0;
  bool enabled = false;
  int ranks = 0;
  // Accounted (registry) bytes per rank.
  std::uint64_t acc_min = 0, acc_max = 0, acc_total = 0;
  double acc_median = 0, acc_mean = 0, acc_imbalance = 1;
  int acc_argmax = -1;
  std::vector<std::uint64_t> acc_by_rank;  // drift detector input
  std::uint64_t acc_hwm_max = 0;  // worst rank's accounted high-water mark
  std::string acc_hwm_phase;      // phase it was set in ("" = unattributed)
  // Process RSS (identical across in-process ranks; kept per rank so the
  // schema survives a real-MPI backend).
  bool rss_available = false;
  std::uint64_t rss_min = 0, rss_max = 0;
  double rss_mean = 0, rss_imbalance = 1;
  int rss_argmax = -1;
  std::uint64_t rss_hwm_max = 0;  // max over ranks of sampled-peak RSS
  std::string rss_hwm_phase;
  std::vector<MemScopeStat> scopes;       // full names, sorted
  std::vector<MemScopeStat> subsystems;   // grouped by prefix before '.'
};

/// Collective: allgather every rank's accounted bytes, HWMs, RSS sample,
/// and scope snapshot, and return the stitched record. Every rank of
/// `comm` must call it together. When obs::mem is disabled no
/// communication happens (the gate is process-global, so all ranks
/// branch the same way).
MemRecord analyze_memory(par::Comm& comm, int step);

/// The telemetry "memory" block: {"available":..,"accounted":{..},
/// "rss":{..},"subsystems":[..],"scopes":[..]}. Subsystems group scopes
/// by the name prefix before the first '.'; bytes_per_dof fields are
/// emitted when `dofs` > 0. When RSS is unavailable its object is exactly
/// {"available":false} — no numeric fields (check_telemetry.py rejects
/// mixtures). `drift_json`, when non-empty, is embedded verbatim as the
/// "drift" member (rhea's detector state).
std::string memory_json(const MemRecord& rec, std::int64_t dofs,
                        const std::string& drift_json = {});

}  // namespace alps::obs::analysis
