#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace alps::obs {

namespace detail {
std::atomic<int> g_mask{-1};  // -1 = not yet initialized from ALPS_TRACE

int init_mask() {
  int m = 0;
  if (const char* env = std::getenv("ALPS_TRACE")) {
    const std::string v(env);
    if (v == "comm" || v == "all" || v == "2")
      m = 3;
    else if (!v.empty() && v != "0")
      m = 1;
  }
  // Another thread may race the first lookup; both compute the same
  // value, so a plain store is fine.
  g_mask.store(m, std::memory_order_relaxed);
  return m;
}
}  // namespace detail

void set_enabled(bool on) {
  int m = detail::mask();
  m = on ? (m | 1) : 0;  // disabling also turns comm spans off
  detail::g_mask.store(m, std::memory_order_relaxed);
}

void set_comm_tracing(bool on) {
  int m = detail::mask();
  m = on ? (m | 3) : (m & ~2);
  detail::g_mask.store(m, std::memory_order_relaxed);
}

namespace {

using Clock = std::chrono::steady_clock;

// One slot per rank. The owning rank thread is the only writer; the main
// thread reads only after par::run joins the workers (the join provides
// the happens-before edge, so no per-event synchronization is needed).
struct RankSlot {
  std::vector<SpanEvent> ring;
  std::size_t count = 0;  // events stored (<= ring.size())
  std::uint64_t dropped = 0;
  std::vector<std::uint64_t> counters;
  std::unordered_map<std::string, double> phases;
};

struct State {
  std::vector<std::unique_ptr<RankSlot>> slots;
  Clock::time_point epoch = Clock::now();
  std::size_t ring_capacity = init_ring_capacity();
  // Counter name registry (interned once, shared by all ranks).
  std::mutex reg_mtx;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, CounterId> counter_ids;

  static std::size_t init_ring_capacity() {
    if (const char* env = std::getenv("ALPS_TRACE_BUF")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return 1u << 16;
  }
};

State& state() {
  static State s;
  return s;
}

thread_local RankSlot* tl_slot = nullptr;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           state().epoch)
          .count());
}

RankSlot& checked_slot(int rank) {
  State& s = state();
  if (rank < 0 || static_cast<std::size_t>(rank) >= s.slots.size())
    throw std::out_of_range("obs: rank out of range");
  return *s.slots[static_cast<std::size_t>(rank)];
}

}  // namespace

void world_begin(int nranks) {
  State& s = state();
  s.slots.clear();
  for (int r = 0; r < nranks; ++r) {
    auto slot = std::make_unique<RankSlot>();
    slot->ring.resize(s.ring_capacity);
    s.slots.push_back(std::move(slot));
  }
  s.epoch = Clock::now();
}

void rank_bind(int rank) { tl_slot = &checked_slot(rank); }

void rank_unbind() { tl_slot = nullptr; }

int world_size() { return static_cast<int>(state().slots.size()); }

std::size_t set_ring_capacity(std::size_t events_per_rank) {
  State& s = state();
  const std::size_t old = s.ring_capacity;
  if (events_per_rank > 0) s.ring_capacity = events_per_rank;
  return old;
}

// ---- spans ------------------------------------------------------------

Span::Span(const char* name, Cat cat, bool accumulate_phase)
    : name_(name), cat_(cat), phase_(accumulate_phase) {
  if (tl_slot == nullptr) return;
  record_ = category_enabled(cat);
  if (record_ || phase_) t0_ = now_ns();
}

Span::~Span() {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || !(record_ || phase_)) return;
  const std::uint64_t t1 = now_ns();
  if (phase_)
    slot->phases[name_] += static_cast<double>(t1 - t0_) * 1e-9;
  if (record_) {
    if (slot->count < slot->ring.size())
      slot->ring[slot->count++] = SpanEvent{name_, t0_, t1 - t0_, cat_};
    else
      slot->dropped++;
  }
}

std::vector<SpanEvent> events(int rank) {
  const RankSlot& slot = checked_slot(rank);
  return {slot.ring.begin(),
          slot.ring.begin() + static_cast<std::ptrdiff_t>(slot.count)};
}

std::uint64_t dropped(int rank) { return checked_slot(rank).dropped; }

// ---- counters ---------------------------------------------------------

CounterId counter(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.reg_mtx);
  const auto it = s.counter_ids.find(name);
  if (it != s.counter_ids.end()) return it->second;
  const CounterId id = static_cast<CounterId>(s.counter_names.size());
  s.counter_names.emplace_back(name);
  s.counter_ids.emplace(name, id);
  return id;
}

void counter_add(CounterId id, std::uint64_t delta) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  if (slot->counters.size() <= id) slot->counters.resize(id + 1, 0);
  slot->counters[id] += delta;
}

std::uint64_t counter_value(int rank, CounterId id) {
  const RankSlot& slot = checked_slot(rank);
  return id < slot.counters.size() ? slot.counters[id] : 0;
}

namespace wellknown {
CounterId ghost_exchange_bytes() {
  static const CounterId id = counter("ghost.exchange_bytes");
  return id;
}
CounterId minres_iterations() {
  static const CounterId id = counter("minres.iterations");
  return id;
}
CounterId cg_iterations() {
  static const CounterId id = counter("cg.iterations");
  return id;
}
CounterId amg_vcycles() {
  static const CounterId id = counter("amg.vcycles");
  return id;
}
CounterId amg_setup_full() {
  static const CounterId id = counter("amg.setup.full");
  return id;
}
CounterId amg_setup_numeric() {
  static const CounterId id = counter("amg.setup.numeric");
  return id;
}
CounterId amg_setup_skipped() {
  static const CounterId id = counter("amg.setup.skipped");
  return id;
}
CounterId minres_syncs() {
  static const CounterId id = counter("comm.sync.minres");
  return id;
}
CounterId cg_syncs() {
  static const CounterId id = counter("comm.sync.cg");
  return id;
}
}  // namespace wellknown

std::vector<std::pair<std::string, std::uint64_t>> aggregate_counters() {
  State& s = state();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(s.reg_mtx);
    names = s.counter_names;
  }
  for (std::size_t id = 0; id < names.size(); ++id) {
    std::uint64_t sum = 0;
    for (const auto& slot : s.slots)
      if (id < slot->counters.size()) sum += slot->counters[id];
    if (sum > 0) out.emplace_back(names[id], sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- phases -----------------------------------------------------------

void phase_add(const char* name, double seconds) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  slot->phases[name] += seconds;
}

double phase_seconds(const char* name) {
  const RankSlot* slot = tl_slot;
  if (slot == nullptr) return 0.0;
  const auto it = slot->phases.find(name);
  return it == slot->phases.end() ? 0.0 : it->second;
}

double phase_seconds(int rank, const char* name) {
  const RankSlot& slot = checked_slot(rank);
  const auto it = slot.phases.find(name);
  return it == slot.phases.end() ? 0.0 : it->second;
}

std::vector<PhaseBreakdown> aggregate_phases() {
  State& s = state();
  const int p = static_cast<int>(s.slots.size());
  // Union of phase names, each reduced over every rank (absent = 0).
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& slot : s.slots)
    for (const auto& [name, secs] : slot->phases) {
      auto& v = by_name[name];
      v.resize(static_cast<std::size_t>(p), 0.0);
    }
  int r = 0;
  for (const auto& slot : s.slots) {
    for (auto& [name, v] : by_name) {
      const auto it = slot->phases.find(name);
      if (it != slot->phases.end()) v[static_cast<std::size_t>(r)] = it->second;
    }
    ++r;
  }
  std::vector<PhaseBreakdown> out;
  out.reserve(by_name.size());
  for (auto& [name, v] : by_name) {
    PhaseBreakdown b;
    b.name = name;
    b.ranks = p;
    std::sort(v.begin(), v.end());
    b.min_s = v.front();
    b.max_s = v.back();
    const std::size_t n = v.size();
    b.median_s = (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    for (double x : v) b.total_s += x;
    b.mean_s = b.total_s / static_cast<double>(n);
    b.imbalance = b.mean_s > 0.0 ? b.max_s / b.mean_s : 1.0;
    out.push_back(std::move(b));
  }
  return out;
}

// ---- trace export -----------------------------------------------------

namespace {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kPhase: return "phase";
    case Cat::kComm: return "comm";
    case Cat::kSolver: break;
  }
  return "solver";
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

std::string chrome_trace_json() {
  State& s = state();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    comma();
    out += "{\"ph\": \"M\", \"pid\": 0, \"tid\": " + std::to_string(r) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"rank " +
           std::to_string(r) + "\"}}";
  }
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    const RankSlot& slot = *s.slots[r];
    for (std::size_t i = 0; i < slot.count; ++i) {
      const SpanEvent& e = slot.ring[i];
      comma();
      out += "{\"ph\": \"X\", \"pid\": 0, \"tid\": " + std::to_string(r) +
             ", \"name\": \"" + e.name + "\", \"cat\": \"" +
             cat_name(e.cat) + "\", \"ts\": ";
      append_double(out, static_cast<double>(e.start_ns) / 1000.0);
      out += ", \"dur\": ";
      append_double(out, static_cast<double>(e.dur_ns) / 1000.0);
      out += "}";
    }
  }
  // Per-rank dropped-event counts so trace validators can reject
  // truncated recordings instead of silently passing them.
  out += "\n], \"displayTimeUnit\": \"ms\", \"alpsDropped\": [";
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    if (r > 0) out += ", ";
    out += std::to_string(s.slots[r]->dropped);
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("obs: cannot open trace output " + path);
  f << chrome_trace_json() << '\n';
}

std::string maybe_write_trace(const std::string& default_path) {
  if (!enabled()) return {};
  std::string path = default_path;
  if (const char* env = std::getenv("ALPS_TRACE_OUT"))
    if (*env != '\0') path = env;
  write_chrome_trace(path);
  return path;
}

}  // namespace alps::obs
