#include "obs/obs.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "obs/histogram.hpp"
#include "obs/hwcounters.hpp"
#include "obs/mem.hpp"

namespace alps::obs {

namespace detail {
std::atomic<int> g_mask{-1};  // -1 = not yet initialized from ALPS_TRACE

int init_mask() {
  int m = 0;
  if (const char* env = std::getenv("ALPS_TRACE")) {
    const std::string v(env);
    if (v == "comm" || v == "all" || v == "2")
      m = 3;
    else if (!v.empty() && v != "0")
      m = 1;
  }
  // Another thread may race the first lookup; both compute the same
  // value, so a plain store is fine.
  g_mask.store(m, std::memory_order_relaxed);
  return m;
}
}  // namespace detail

void set_enabled(bool on) {
  int m = detail::mask();
  m = on ? (m | 1) : 0;  // disabling also turns comm spans off
  detail::g_mask.store(m, std::memory_order_relaxed);
}

void set_comm_tracing(bool on) {
  int m = detail::mask();
  m = on ? (m | 3) : (m & ~2);
  detail::g_mask.store(m, std::memory_order_relaxed);
}

namespace {

using Clock = std::chrono::steady_clock;

// Per-phase wait buckets plus the per-source late-sender attribution.
struct PhaseWaitSlot {
  WaitBuckets w;
  std::map<int, double> late_sender_by_rank;
};

// One slot per rank. The owning rank thread is the only writer; the main
// thread reads only after par::run joins the workers (the join provides
// the happens-before edge, so no per-event synchronization is needed).
struct RankSlot {
  int rank = -1;
  std::vector<SpanEvent> ring;
  std::size_t count = 0;  // events stored (<= ring.size())
  std::uint64_t dropped = 0;
  std::vector<std::uint64_t> counters;
  std::unordered_map<std::string, double> phases;
  // Duration histograms (keyed like `waits` by the name literal's
  // address; hist_samples re-merges by content).
  std::unordered_map<const char*, Histogram> hists;
  std::unordered_map<const char*, double> gauges;
  // Wait-state accounting (keyed by the phase-name literal's address —
  // phase names are string literals, so the pointer is a stable key; the
  // aggregation layer re-merges by content).
  std::unordered_map<const char*, PhaseWaitSlot> waits;
  double recv_blocked_s = 0;  // running total, snapshotted by halo marks
  struct OverlapFrame {
    std::uint64_t start_ns = 0;
    double covered_s = 0;
    double blocked0_s = 0;
    const char* phase = nullptr;
  };
  std::array<OverlapFrame, 4> overlap_stack{};
  int overlap_depth = 0;
  // Cross-rank flow events (bounded by the ring capacity).
  std::vector<FlowEvent> flows;
  std::uint64_t flow_dropped = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> flow_seq;
};

struct State {
  std::vector<std::unique_ptr<RankSlot>> slots;
  Clock::time_point epoch = Clock::now();
  std::size_t ring_capacity = init_ring_capacity();
  // Counter name registry (interned once, shared by all ranks).
  std::mutex reg_mtx;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, CounterId> counter_ids;

  static std::size_t init_ring_capacity() {
    if (const char* env = std::getenv("ALPS_TRACE_BUF")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return 1u << 16;
  }
};

State& state() {
  static State s;
  return s;
}

thread_local RankSlot* tl_slot = nullptr;

// Innermost-first stack of open phase-span names on this thread.
constexpr int kPhaseStackDepth = 16;
thread_local const char* tl_phase_stack[kPhaseStackDepth];
thread_local int tl_phase_depth = 0;
thread_local bool tl_wait_suppressed = false;

std::atomic<std::uint64_t> g_generation{0};

// -1 = not yet initialized from ALPS_ANALYSIS (default: on).
std::atomic<int> g_analysis{-1};

int analysis_init() {
  int on = 1;
  if (const char* env = std::getenv("ALPS_ANALYSIS")) {
    const std::string v(env);
    if (v == "0" || v.empty()) on = 0;
  }
  g_analysis.store(on, std::memory_order_relaxed);
  return on;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           state().epoch)
          .count());
}

RankSlot& checked_slot(int rank) {
  State& s = state();
  if (rank < 0 || static_cast<std::size_t>(rank) >= s.slots.size())
    throw std::out_of_range("obs: rank out of range");
  return *s.slots[static_cast<std::size_t>(rank)];
}

}  // namespace

void world_begin(int nranks) {
  State& s = state();
  s.slots.clear();
  for (int r = 0; r < nranks; ++r) {
    auto slot = std::make_unique<RankSlot>();
    slot->rank = r;
    slot->ring.resize(s.ring_capacity);
    s.slots.push_back(std::move(slot));
  }
  s.epoch = Clock::now();
  g_generation.fetch_add(1, std::memory_order_relaxed);
  detail::world_begin(nranks);
  memdetail::world_begin(nranks);
}

void rank_bind(int rank) {
  tl_slot = &checked_slot(rank);
  tl_phase_depth = 0;
  tl_wait_suppressed = false;
  detail::rank_bind(rank);
  memdetail::rank_bind(rank);
}

void rank_unbind() {
  tl_slot = nullptr;
  detail::rank_unbind();
  memdetail::rank_unbind();
}

int world_size() { return static_cast<int>(state().slots.size()); }

std::uint64_t world_generation() {
  return g_generation.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() { return now_ns(); }

std::size_t set_ring_capacity(std::size_t events_per_rank) {
  State& s = state();
  const std::size_t old = s.ring_capacity;
  if (events_per_rank > 0) s.ring_capacity = events_per_rank;
  return old;
}

// ---- spans ------------------------------------------------------------

Span::Span(const char* name, Cat cat, bool accumulate_phase)
    : name_(name), cat_(cat), phase_(accumulate_phase) {
  if (tl_slot == nullptr) return;
  record_ = category_enabled(cat);
  if (phase_ && tl_phase_depth < kPhaseStackDepth)
    tl_phase_stack[tl_phase_depth++] = name;
  if (record_ || phase_) t0_ = now_ns();
}

Span::~Span() {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || !(record_ || phase_)) return;
  if (phase_ && tl_phase_depth > 0) --tl_phase_depth;
  // RSS only moves when something allocated, and allocations live inside
  // phases — so phase closes are the natural (cheap, cadenced) sampling
  // points for the memory peak tracker.
  if (phase_) memdetail::phase_close_tick(name_);
  const std::uint64_t t1 = now_ns();
  if (phase_) {
    const double secs = static_cast<double>(t1 - t0_) * 1e-9;
    slot->phases[name_] += secs;
    slot->hists[name_].record(secs);
  }
  if (record_) {
    if (slot->count < slot->ring.size())
      slot->ring[slot->count++] = SpanEvent{name_, t0_, t1 - t0_, cat_};
    else
      slot->dropped++;
  }
}

std::vector<SpanEvent> events(int rank) {
  const RankSlot& slot = checked_slot(rank);
  return {slot.ring.begin(),
          slot.ring.begin() + static_cast<std::ptrdiff_t>(slot.count)};
}

std::uint64_t dropped(int rank) { return checked_slot(rank).dropped; }

// ---- counters ---------------------------------------------------------

CounterId counter(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.reg_mtx);
  const auto it = s.counter_ids.find(name);
  if (it != s.counter_ids.end()) return it->second;
  const CounterId id = static_cast<CounterId>(s.counter_names.size());
  s.counter_names.emplace_back(name);
  s.counter_ids.emplace(name, id);
  return id;
}

void counter_add(CounterId id, std::uint64_t delta) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  if (slot->counters.size() <= id) slot->counters.resize(id + 1, 0);
  slot->counters[id] += delta;
}

std::uint64_t counter_value(int rank, CounterId id) {
  const RankSlot& slot = checked_slot(rank);
  return id < slot.counters.size() ? slot.counters[id] : 0;
}

namespace wellknown {
CounterId ghost_exchange_bytes() {
  static const CounterId id = counter("ghost.exchange_bytes");
  return id;
}
CounterId minres_iterations() {
  static const CounterId id = counter("minres.iterations");
  return id;
}
CounterId cg_iterations() {
  static const CounterId id = counter("cg.iterations");
  return id;
}
CounterId amg_vcycles() {
  static const CounterId id = counter("amg.vcycles");
  return id;
}
CounterId amg_setup_full() {
  static const CounterId id = counter("amg.setup.full");
  return id;
}
CounterId amg_setup_numeric() {
  static const CounterId id = counter("amg.setup.numeric");
  return id;
}
CounterId amg_setup_skipped() {
  static const CounterId id = counter("amg.setup.skipped");
  return id;
}
CounterId minres_syncs() {
  static const CounterId id = counter("comm.sync.minres");
  return id;
}
CounterId cg_syncs() {
  static const CounterId id = counter("comm.sync.cg");
  return id;
}
}  // namespace wellknown

std::vector<std::pair<std::string, std::uint64_t>> aggregate_counters() {
  State& s = state();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(s.reg_mtx);
    names = s.counter_names;
  }
  for (std::size_t id = 0; id < names.size(); ++id) {
    std::uint64_t sum = 0;
    for (const auto& slot : s.slots)
      if (id < slot->counters.size()) sum += slot->counters[id];
    if (sum > 0) out.emplace_back(names[id], sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() {
  const RankSlot* slot = tl_slot;
  if (slot == nullptr) return {};
  State& s = state();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(s.reg_mtx);
    names = s.counter_names;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  const std::size_t n = std::min(names.size(), slot->counters.size());
  for (std::size_t id = 0; id < n; ++id)
    if (slot->counters[id] > 0) out.emplace_back(names[id], slot->counters[id]);
  std::sort(out.begin(), out.end());
  return out;
}

// ---- gauges ------------------------------------------------------------

void gauge_set(const char* name, double value) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  slot->gauges[name] = value;
}

std::vector<std::pair<std::string, double>> gauge_snapshot() {
  const RankSlot* slot = tl_slot;
  if (slot == nullptr) return {};
  std::map<std::string, double> merged;
  for (const auto& [name, v] : slot->gauges) merged[name] = v;
  return {merged.begin(), merged.end()};
}

// ---- histograms --------------------------------------------------------

void hist_record(const char* name, double seconds) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  slot->hists[name].record(seconds);
}

namespace {

// Merge one slot's pointer-keyed histograms by string content (identical
// literals in different translation units may have different addresses).
std::map<std::string, Histogram> merged_hists(const RankSlot& slot) {
  std::map<std::string, Histogram> merged;
  for (const auto& [name, h] : slot.hists) merged[name].merge(h);
  return merged;
}

}  // namespace

std::vector<std::pair<std::string, Histogram>> hist_samples(int rank) {
  const auto merged = merged_hists(checked_slot(rank));
  return {merged.begin(), merged.end()};
}

std::vector<std::pair<std::string, Histogram>> hist_samples() {
  RankSlot* slot = tl_slot;
  return slot != nullptr
             ? hist_samples(slot->rank)
             : std::vector<std::pair<std::string, Histogram>>{};
}

std::vector<std::pair<std::string, Histogram>> aggregate_hists() {
  State& s = state();
  std::map<std::string, Histogram> merged;
  for (const auto& slot : s.slots)
    for (const auto& [name, h] : merged_hists(*slot)) merged[name].merge(h);
  return {merged.begin(), merged.end()};
}

// ---- phases -----------------------------------------------------------

void phase_add(const char* name, double seconds) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  slot->phases[name] += seconds;
}

double phase_seconds(const char* name) {
  const RankSlot* slot = tl_slot;
  if (slot == nullptr) return 0.0;
  const auto it = slot->phases.find(name);
  return it == slot->phases.end() ? 0.0 : it->second;
}

double phase_seconds(int rank, const char* name) {
  const RankSlot& slot = checked_slot(rank);
  const auto it = slot.phases.find(name);
  return it == slot.phases.end() ? 0.0 : it->second;
}

std::vector<PhaseBreakdown> aggregate_phases() {
  State& s = state();
  const int p = static_cast<int>(s.slots.size());
  // Union of phase names, each reduced over every rank (absent = 0).
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& slot : s.slots)
    for (const auto& [name, secs] : slot->phases) {
      auto& v = by_name[name];
      v.resize(static_cast<std::size_t>(p), 0.0);
    }
  int r = 0;
  for (const auto& slot : s.slots) {
    for (auto& [name, v] : by_name) {
      const auto it = slot->phases.find(name);
      if (it != slot->phases.end()) v[static_cast<std::size_t>(r)] = it->second;
    }
    ++r;
  }
  std::vector<PhaseBreakdown> out;
  out.reserve(by_name.size());
  for (auto& [name, v] : by_name) {
    PhaseBreakdown b;
    b.name = name;
    b.ranks = p;
    std::sort(v.begin(), v.end());
    b.min_s = v.front();
    b.max_s = v.back();
    const std::size_t n = v.size();
    b.median_s = (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    for (double x : v) b.total_s += x;
    b.mean_s = b.total_s / static_cast<double>(n);
    b.imbalance = b.mean_s > 0.0 ? b.max_s / b.mean_s : 1.0;
    out.push_back(std::move(b));
  }
  return out;
}

const char* current_phase() {
  return tl_phase_depth > 0 ? tl_phase_stack[tl_phase_depth - 1] : nullptr;
}

std::uint64_t self_memory_bytes() {
  const RankSlot* slot = tl_slot;
  if (slot == nullptr) return 0;
  std::uint64_t b = slot->ring.capacity() * sizeof(SpanEvent);
  b += slot->flows.capacity() * sizeof(FlowEvent);
  b += slot->counters.capacity() * sizeof(std::uint64_t);
  // Hash-map footprints are estimates: bucket array + one node per entry.
  b += slot->phases.size() *
       (sizeof(std::string) + sizeof(double) + 2 * sizeof(void*));
  b += slot->waits.size() * (sizeof(PhaseWaitSlot) + 2 * sizeof(void*));
  b += slot->hists.size() *
       (sizeof(Histogram) + Histogram::kBucketCount * sizeof(std::uint64_t) +
        2 * sizeof(void*));
  b += slot->flow_seq.size() *
       (sizeof(std::uint64_t) + sizeof(std::uint32_t) + 2 * sizeof(void*));
  return b;
}

std::vector<std::pair<std::string, std::vector<double>>> phase_table() {
  State& s = state();
  const std::size_t p = s.slots.size();
  std::map<std::string, std::vector<double>> by_name;
  for (std::size_t r = 0; r < p; ++r)
    for (const auto& [name, secs] : s.slots[r]->phases) {
      auto& v = by_name[name];
      v.resize(p, 0.0);
      v[r] = secs;
    }
  return {by_name.begin(), by_name.end()};
}

std::vector<std::pair<std::string, double>> phase_snapshot() {
  const RankSlot* slot = tl_slot;
  if (slot == nullptr) return {};
  std::vector<std::pair<std::string, double>> out(slot->phases.begin(),
                                                  slot->phases.end());
  std::sort(out.begin(), out.end());
  return out;
}

// ---- wait-state accounting --------------------------------------------

bool analysis_enabled() {
  const int v = g_analysis.load(std::memory_order_relaxed);
  return (v >= 0 ? v : analysis_init()) != 0;
}

void set_analysis_enabled(bool on) {
  g_analysis.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t wait_now() {
  if (tl_slot == nullptr || tl_wait_suppressed || !analysis_enabled())
    return 0;
  return now_ns();
}

void wait_suppress(bool on) { tl_wait_suppressed = on; }

namespace {

// The phase-pointer key of the bucket that waits outside any OBS_PHASE_SPAN
// land in; excluded from per-phase invariants but kept for the totals.
constexpr const char* kUnphased = "(unphased)";

PhaseWaitSlot& wait_slot(RankSlot& slot) {
  const char* phase = current_phase();
  return slot.waits[phase != nullptr ? phase : kUnphased];
}

}  // namespace

void wait_record_recv(int src, std::uint64_t enter_ns, std::uint64_t sent_ns,
                      std::uint64_t got_ns) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || enter_ns == 0 || tl_wait_suppressed) return;
  PhaseWaitSlot& w = wait_slot(*slot);
  w.w.recvs++;
  // sent_ns == 0 means the sender recorded no post time (unbound thread
  // or suppressed): no late-sender blame, no late-receiver credit — all
  // blocked time counts as transfer.
  const bool sender_known = sent_ns != 0;
  // Blocked interval [enter, got): the part before the sender posted the
  // message is the sender's fault, the rest is delivery.
  const std::uint64_t send_visible =
      sender_known ? std::min(std::max(sent_ns, enter_ns), got_ns) : enter_ns;
  const double late_s = static_cast<double>(send_visible - enter_ns) * 1e-9;
  const double transfer_s = static_cast<double>(got_ns - send_visible) * 1e-9;
  if (got_ns > enter_ns) {
    w.w.waited_recvs++;
    slot->recv_blocked_s += static_cast<double>(got_ns - enter_ns) * 1e-9;
  }
  w.w.late_sender_s += late_s;
  w.w.transfer_s += transfer_s;
  if (late_s > 0) w.late_sender_by_rank[src] += late_s;
  // Queued time: the message waited for *us* — communication this rank
  // already hid behind local work.
  if (sender_known && enter_ns > sent_ns)
    w.w.late_receiver_s += static_cast<double>(enter_ns - sent_ns) * 1e-9;
}

void wait_record_collective(std::uint64_t enter_ns, std::uint64_t resume_ns,
                            bool count_call) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || enter_ns == 0 || tl_wait_suppressed) return;
  PhaseWaitSlot& w = wait_slot(*slot);
  if (count_call) w.w.collectives++;
  if (resume_ns > enter_ns)
    w.w.collective_s += static_cast<double>(resume_ns - enter_ns) * 1e-9;
}

void overlap_mark_start() {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || !analysis_enabled()) return;
  if (slot->overlap_depth >=
      static_cast<int>(slot->overlap_stack.size()))
    return;  // nested deeper than tracked: drop the frame, keep counting
  auto& f = slot->overlap_stack[static_cast<std::size_t>(slot->overlap_depth++)];
  f.start_ns = now_ns();
  f.blocked0_s = slot->recv_blocked_s;
  f.phase = current_phase();
}

void overlap_mark_finish_begin() {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || !analysis_enabled() || slot->overlap_depth <= 0)
    return;
  auto& f = slot->overlap_stack[static_cast<std::size_t>(slot->overlap_depth - 1)];
  f.covered_s = static_cast<double>(now_ns() - f.start_ns) * 1e-9;
  f.blocked0_s = slot->recv_blocked_s;
}

void overlap_mark_finish_end() {
  RankSlot* slot = tl_slot;
  if (slot == nullptr || !analysis_enabled() || slot->overlap_depth <= 0)
    return;
  auto& f = slot->overlap_stack[static_cast<std::size_t>(--slot->overlap_depth)];
  const char* phase = f.phase != nullptr ? f.phase : kUnphased;
  PhaseWaitSlot& w = slot->waits[phase];
  w.w.halo_ops++;
  w.w.overlap_covered_s += f.covered_s;
  w.w.overlap_waited_s += slot->recv_blocked_s - f.blocked0_s;
}

std::vector<PhaseWaitSample> wait_samples(int rank) {
  const RankSlot& slot = checked_slot(rank);
  // Merge by phase *content*: identical literals in different translation
  // units may have different addresses.
  std::map<std::string, PhaseWaitSlot> merged;
  for (const auto& [phase, pw] : slot.waits) {
    PhaseWaitSlot& m = merged[phase];
    m.w.late_sender_s += pw.w.late_sender_s;
    m.w.transfer_s += pw.w.transfer_s;
    m.w.late_receiver_s += pw.w.late_receiver_s;
    m.w.collective_s += pw.w.collective_s;
    m.w.overlap_covered_s += pw.w.overlap_covered_s;
    m.w.overlap_waited_s += pw.w.overlap_waited_s;
    m.w.recvs += pw.w.recvs;
    m.w.waited_recvs += pw.w.waited_recvs;
    m.w.collectives += pw.w.collectives;
    m.w.halo_ops += pw.w.halo_ops;
    for (const auto& [src, secs] : pw.late_sender_by_rank)
      m.late_sender_by_rank[src] += secs;
  }
  std::vector<PhaseWaitSample> out;
  out.reserve(merged.size());
  for (auto& [phase, pw] : merged) {
    PhaseWaitSample s;
    s.phase = phase;
    s.w = pw.w;
    s.late_sender_by_rank.assign(pw.late_sender_by_rank.begin(),
                                 pw.late_sender_by_rank.end());
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<PhaseWaitSample> wait_samples() {
  RankSlot* slot = tl_slot;
  return slot != nullptr ? wait_samples(slot->rank)
                         : std::vector<PhaseWaitSample>{};
}

// ---- flow events ------------------------------------------------------

void flow_emit(int peer, int channel, bool outgoing) {
  RankSlot* slot = tl_slot;
  if (slot == nullptr) return;
  // Both endpoints must advance the same per-(channel, src, dst) sequence
  // regardless of tracing state, or ids desynchronize when tracing is
  // toggled mid-run.
  const int src = outgoing ? slot->rank : peer;
  const int dst = outgoing ? peer : slot->rank;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(channel) * 4096 +
       static_cast<std::uint64_t>(src)) *
          4096 +
      static_cast<std::uint64_t>(dst);
  const std::uint32_t seq = slot->flow_seq[key]++;
  if ((detail::mask() & 1) == 0) return;
  if (slot->flows.size() >= state().ring_capacity) {
    slot->flow_dropped++;
    return;
  }
  slot->flows.push_back(
      FlowEvent{(key << 24) | (seq & 0xffffffu), now_ns(), outgoing});
}

std::vector<FlowEvent> flows(int rank) { return checked_slot(rank).flows; }

std::uint64_t flow_dropped(int rank) { return checked_slot(rank).flow_dropped; }

// ---- trace export -----------------------------------------------------

namespace {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kPhase: return "phase";
    case Cat::kComm: return "comm";
    case Cat::kSolver: break;
  }
  return "solver";
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

std::string chrome_trace_json() {
  State& s = state();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    comma();
    out += "{\"ph\": \"M\", \"pid\": 0, \"tid\": " + std::to_string(r) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"rank " +
           std::to_string(r) + "\"}}";
  }
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    const RankSlot& slot = *s.slots[r];
    for (std::size_t i = 0; i < slot.count; ++i) {
      const SpanEvent& e = slot.ring[i];
      comma();
      out += "{\"ph\": \"X\", \"pid\": 0, \"tid\": " + std::to_string(r) +
             ", \"name\": \"" + e.name + "\", \"cat\": \"" +
             cat_name(e.cat) + "\", \"ts\": ";
      append_double(out, static_cast<double>(e.start_ns) / 1000.0);
      out += ", \"dur\": ";
      append_double(out, static_cast<double>(e.dur_ns) / 1000.0);
      out += "}";
    }
  }
  // Perfetto flow arrows: "s" on the sending rank's *_start span, "f"
  // (binding to the enclosing slice) on the receiving rank's *_finish
  // span. Matching requires identical name/cat plus the shared id.
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    for (const FlowEvent& f : s.slots[r]->flows) {
      comma();
      out += "{\"ph\": \"";
      out += f.start ? 's' : 'f';
      out += "\", \"pid\": 0, \"tid\": " + std::to_string(r) +
             ", \"name\": \"halo\", \"cat\": \"flow\", \"id\": " +
             std::to_string(f.id) + ", \"ts\": ";
      append_double(out, static_cast<double>(f.ns) / 1000.0);
      if (!f.start) out += ", \"bp\": \"e\"";
      out += "}";
    }
  }
  // Per-rank dropped-event counts so trace validators can reject
  // truncated recordings instead of silently passing them.
  out += "\n], \"displayTimeUnit\": \"ms\", \"alpsDropped\": [";
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    if (r > 0) out += ", ";
    out += std::to_string(s.slots[r]->dropped);
  }
  out += "], \"alpsFlowDropped\": [";
  for (std::size_t r = 0; r < s.slots.size(); ++r) {
    if (r > 0) out += ", ";
    out += std::to_string(s.slots[r]->flow_dropped);
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("obs: cannot open trace output " + path);
  f << chrome_trace_json() << '\n';
}

std::string maybe_write_trace(const std::string& default_path) {
  if (!enabled()) return {};
  std::string path = default_path;
  if (const char* env = std::getenv("ALPS_TRACE_OUT"))
    if (*env != '\0') path = env;
  write_chrome_trace(path);
  return path;
}

}  // namespace alps::obs
