#pragma once
// Hardware-counter sampling for selected spans (DESIGN.md §11).
//
// OBS_HW_SPAN(name) attaches a per-thread perf_event group — cycles,
// instructions, LLC misses, stalled backend cycles — to the enclosing
// scope and accumulates the deltas into a per-rank, per-name table. This
// is what pins the "matrix-stream-bound" claim of the batched apply
// kernel empirically: cycles and LLC misses per apply, with bytes/s and
// FLOP/s derived by the benches from the known stream sizes.
//
// Enablement and fallback:
//  * off unless ALPS_HW is set (=1/all samples every OBS_HW_SPAN site;
//    a comma list restricts sampling to those span names) or
//    set_hw_enabled(true) is called — a disabled span costs one relaxed
//    atomic load;
//  * perf_event_open needs permission (perf_event_paranoid, seccomp);
//    when the probe fails — unprivileged CI, non-Linux — sampling
//    degrades to span counting with every counter flagged unavailable,
//    and aggregate_hw() reports that instead of fabricating zeros;
//  * individual events may be unsupported (no LLC event in VMs): each
//    counter carries its own ok flag.
//
// -DALPS_OBS_DISABLE compiles OBS_HW_SPAN out entirely, like the other
// span macros.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace alps::obs {

/// Accumulated counter deltas for one span name on one rank (or summed
/// across ranks by aggregate_hw).
struct HwCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t stalled_cycles = 0;
  std::uint64_t spans = 0;  // OBS_HW_SPAN scopes that closed
  bool cycles_ok = false;
  bool instructions_ok = false;
  bool llc_ok = false;
  bool stalled_ok = false;
  /// True when at least one counter delivered real counts.
  bool available() const {
    return cycles_ok || instructions_ok || llc_ok || stalled_ok;
  }
};

/// True when ALPS_HW is set (and not "0") or set_hw_enabled(true) was
/// called. This is the cheap gate every OBS_HW_SPAN checks first.
bool hw_enabled();
void set_hw_enabled(bool on);  // overrides ALPS_HW

/// True when `name` is selected by ALPS_HW ("1"/"all" selects every
/// site; a comma list selects by exact span name).
bool hw_span_selected(const char* name);

/// True when perf_event_open works in this process (probed once).
bool hw_available();
/// Force the unavailable path regardless of the probe (tests).
void set_hw_unavailable_for_testing(bool forced);

/// RAII sampler: reads the thread's counter group at entry and exit and
/// adds the deltas under `name` for the bound rank. Inactive (and nearly
/// free) when disabled, unselected, or on unbound threads.
class HwSpan {
 public:
  explicit HwSpan(const char* name);
  ~HwSpan();
  HwSpan(const HwSpan&) = delete;
  HwSpan& operator=(const HwSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = inactive
  std::uint64_t v0_[4] = {0, 0, 0, 0};
};

/// Per-name counts summed over all rank slots, sorted by name. Spans that
/// ran while perf was unavailable contribute span counts with every ok
/// flag false.
std::vector<std::pair<std::string, HwCounts>> aggregate_hw();

namespace detail {
// Called by obs world/rank lifecycle (obs.cpp).
void world_begin(int nranks);
void rank_bind(int rank);
void rank_unbind();
}  // namespace detail

}  // namespace alps::obs

#ifndef ALPS_OBS_DISABLE
#ifndef ALPS_OBS_CONCAT
#define ALPS_OBS_CONCAT2(a, b) a##b
#define ALPS_OBS_CONCAT(a, b) ALPS_OBS_CONCAT2(a, b)
#endif
/// Hardware-counter scoped span (see obs/hwcounters.hpp).
#define OBS_HW_SPAN(name) \
  ::alps::obs::HwSpan ALPS_OBS_CONCAT(obs_hw_span_, __LINE__)(name)
#else
#define OBS_HW_SPAN(name) ((void)0)
#endif
