#include "obs/analysis.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/mem.hpp"
#include "par/comm.hpp"

namespace alps::obs::analysis {

namespace {

// ---- per-rank baselines ------------------------------------------------
//
// analyze_step reports *deltas* since the previous call, so each rank
// keeps the cumulative phase seconds and wait buckets it last reported.
// Baselines are invalidated when obs::world_generation() changes (a new
// par::run world reset all the underlying accumulators).

struct WaitCum {
  WaitBuckets w;
  std::map<int, double> late_by_rank;
};

struct RankBaseline {
  std::map<std::string, double> phases;
  std::map<std::string, WaitCum> waits;
  std::map<std::string, Histogram> hists;  // cumulative as of last report
};

struct AnalysisState {
  std::mutex mtx;
  std::uint64_t generation = 0;
  std::vector<RankBaseline> baselines;
  std::vector<StepRecord> records;  // written by rank 0 only
  // Run-cumulative cross-rank histograms: every step's merged deltas
  // added in (rank 0 only). Exact because bucket merging is.
  std::map<std::string, Histogram> cum_hists;
};

AnalysisState& state() {
  static AnalysisState s;
  return s;
}

/// Fetch this rank's baseline, resetting everything on a new world. The
/// lock is only contended at world boundaries and analyze_step entry.
RankBaseline& baseline_for(int rank, int nranks) {
  AnalysisState& s = state();
  const std::uint64_t gen = world_generation();
  std::lock_guard<std::mutex> lock(s.mtx);
  if (s.generation != gen) {
    s.generation = gen;
    s.baselines.assign(static_cast<std::size_t>(nranks), RankBaseline{});
    s.records.clear();
    s.cum_hists.clear();
  }
  if (s.baselines.size() < static_cast<std::size_t>(nranks))
    s.baselines.resize(static_cast<std::size_t>(nranks));
  return s.baselines[static_cast<std::size_t>(rank)];
}

// ---- wire format -------------------------------------------------------
//
// Each rank contributes one byte blob, exchanged with allgatherv:
//   u32 n_phases   { u32 len, chars, f64 seconds } ...
//   u32 n_waits    { u32 len, chars, f64 x6 buckets, u64 x4 counts,
//                    u32 n_srcs { i32 rank, f64 seconds } ... } ...
//   u32 n_counters { u32 len, chars, u64 value } ...          (cumulative)
//   u32 n_gauges   { u32 len, chars, f64 value } ...       (instantaneous)
//   u32 n_hists    { u32 len, chars, f64 sum, f64 min, f64 max,
//                    u32 n_nonzero { u32 bucket, u64 count } ... } ...
// The counter and histogram sections piggyback on the same allgatherv the
// wait-state analysis already pays for — the metrics endpoint adds zero
// collectives per step. Histograms ship as sparse step deltas (bucket
// counts difference exactly); counters ship cumulative values (monotone,
// so rank sums are directly Prometheus-exposable).

void put_u32(std::vector<std::byte>& b, std::uint32_t v) {
  const std::size_t off = b.size();
  b.resize(off + sizeof v);
  std::memcpy(b.data() + off, &v, sizeof v);
}
void put_i32(std::vector<std::byte>& b, std::int32_t v) {
  const std::size_t off = b.size();
  b.resize(off + sizeof v);
  std::memcpy(b.data() + off, &v, sizeof v);
}
void put_f64(std::vector<std::byte>& b, double v) {
  const std::size_t off = b.size();
  b.resize(off + sizeof v);
  std::memcpy(b.data() + off, &v, sizeof v);
}
void put_u64(std::vector<std::byte>& b, std::uint64_t v) {
  const std::size_t off = b.size();
  b.resize(off + sizeof v);
  std::memcpy(b.data() + off, &v, sizeof v);
}
void put_str(std::vector<std::byte>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  const std::size_t off = b.size();
  b.resize(off + s.size());
  std::memcpy(b.data() + off, s.data(), s.size());
}

struct Reader {
  const std::byte* p;
  const std::byte* end;
  template <typename T>
  T get() {
    T v{};
    if (p + sizeof v <= end) {
      std::memcpy(&v, p, sizeof v);
      p += sizeof v;
    } else {
      p = end;
    }
    return v;
  }
  std::string str() {
    const std::uint32_t n = get<std::uint32_t>();
    if (p + n > end) {
      p = end;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
};

struct RankDelta {
  std::map<std::string, double> phases;
  std::map<std::string, WaitCum> waits;
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // cumulative
  std::vector<std::pair<std::string, double>> gauges;  // instantaneous
  std::map<std::string, Histogram> hists;  // step-window deltas
};

std::vector<std::byte> encode(const RankDelta& d) {
  std::vector<std::byte> b;
  put_u32(b, static_cast<std::uint32_t>(d.phases.size()));
  for (const auto& [name, sec] : d.phases) {
    put_str(b, name);
    put_f64(b, sec);
  }
  put_u32(b, static_cast<std::uint32_t>(d.waits.size()));
  for (const auto& [name, c] : d.waits) {
    put_str(b, name);
    put_f64(b, c.w.late_sender_s);
    put_f64(b, c.w.transfer_s);
    put_f64(b, c.w.late_receiver_s);
    put_f64(b, c.w.collective_s);
    put_f64(b, c.w.overlap_covered_s);
    put_f64(b, c.w.overlap_waited_s);
    put_u64(b, c.w.recvs);
    put_u64(b, c.w.waited_recvs);
    put_u64(b, c.w.collectives);
    put_u64(b, c.w.halo_ops);
    put_u32(b, static_cast<std::uint32_t>(c.late_by_rank.size()));
    for (const auto& [src, sec] : c.late_by_rank) {
      put_i32(b, src);
      put_f64(b, sec);
    }
  }
  put_u32(b, static_cast<std::uint32_t>(d.counters.size()));
  for (const auto& [name, value] : d.counters) {
    put_str(b, name);
    put_u64(b, value);
  }
  put_u32(b, static_cast<std::uint32_t>(d.gauges.size()));
  for (const auto& [name, value] : d.gauges) {
    put_str(b, name);
    put_f64(b, value);
  }
  put_u32(b, static_cast<std::uint32_t>(d.hists.size()));
  for (const auto& [name, h] : d.hists) {
    put_str(b, name);
    put_f64(b, h.sum());
    put_f64(b, h.min());
    put_f64(b, h.max());
    std::uint32_t nonzero = 0;
    for (int i = 0; i < Histogram::kBucketCount; ++i)
      if (h.bucket(i) > 0) ++nonzero;
    put_u32(b, nonzero);
    for (int i = 0; i < Histogram::kBucketCount; ++i)
      if (h.bucket(i) > 0) {
        put_u32(b, static_cast<std::uint32_t>(i));
        put_u64(b, h.bucket(i));
      }
  }
  return b;
}

RankDelta decode(const std::byte* p, std::size_t n) {
  RankDelta d;
  Reader r{p, p + n};
  const std::uint32_t np = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < np && r.p < r.end; ++i) {
    std::string name = r.str();
    d.phases[name] = r.get<double>();
  }
  const std::uint32_t nw = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nw && r.p < r.end; ++i) {
    std::string name = r.str();
    WaitCum& c = d.waits[name];
    c.w.late_sender_s = r.get<double>();
    c.w.transfer_s = r.get<double>();
    c.w.late_receiver_s = r.get<double>();
    c.w.collective_s = r.get<double>();
    c.w.overlap_covered_s = r.get<double>();
    c.w.overlap_waited_s = r.get<double>();
    c.w.recvs = r.get<std::uint64_t>();
    c.w.waited_recvs = r.get<std::uint64_t>();
    c.w.collectives = r.get<std::uint64_t>();
    c.w.halo_ops = r.get<std::uint64_t>();
    const std::uint32_t ns = r.get<std::uint32_t>();
    for (std::uint32_t j = 0; j < ns && r.p < r.end; ++j) {
      const int src = r.get<std::int32_t>();
      c.late_by_rank[src] = r.get<double>();
    }
  }
  const std::uint32_t nc = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nc && r.p < r.end; ++i) {
    std::string name = r.str();
    d.counters.emplace_back(std::move(name), r.get<std::uint64_t>());
  }
  const std::uint32_t ng = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < ng && r.p < r.end; ++i) {
    std::string name = r.str();
    d.gauges.emplace_back(std::move(name), r.get<double>());
  }
  const std::uint32_t nh = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nh && r.p < r.end; ++i) {
    std::string name = r.str();
    Histogram& h = d.hists[name];
    const double sum = r.get<double>();
    const double mn = r.get<double>();
    const double mx = r.get<double>();
    // Range before buckets: expand_range seeds min/max only while the
    // histogram is still empty.
    h.expand_range(mn, mx);
    h.add_sum(sum);
    const std::uint32_t nb = r.get<std::uint32_t>();
    for (std::uint32_t j = 0; j < nb && r.p < r.end; ++j) {
      const std::uint32_t idx = r.get<std::uint32_t>();
      h.add_bucket(static_cast<int>(idx), r.get<std::uint64_t>());
    }
  }
  return d;
}

/// This rank's cumulative state minus its baseline; updates the baseline.
RankDelta local_delta(int rank, int nranks) {
  RankBaseline& base = baseline_for(rank, nranks);
  RankDelta d;

  for (const auto& [name, sec] : phase_snapshot()) {
    const double prev = base.phases.count(name) ? base.phases[name] : 0.0;
    if (sec - prev > 0) d.phases[name] = sec - prev;
    base.phases[name] = sec;
  }

  // wait_samples() excludes the analyzer's own suppressed waits already;
  // the "(unphased)" bucket (waits outside any OBS_PHASE_SPAN) is kept
  // out of the per-step record because it has no wall time to validate
  // against.
  for (const PhaseWaitSample& s : wait_samples()) {
    if (s.phase == "(unphased)") continue;
    WaitCum& prev = base.waits[s.phase];
    WaitCum cur;
    cur.w = s.w;
    for (const auto& [src, sec] : s.late_sender_by_rank)
      cur.late_by_rank[src] = sec;

    WaitCum delta;
    delta.w.late_sender_s = cur.w.late_sender_s - prev.w.late_sender_s;
    delta.w.transfer_s = cur.w.transfer_s - prev.w.transfer_s;
    delta.w.late_receiver_s = cur.w.late_receiver_s - prev.w.late_receiver_s;
    delta.w.collective_s = cur.w.collective_s - prev.w.collective_s;
    delta.w.overlap_covered_s =
        cur.w.overlap_covered_s - prev.w.overlap_covered_s;
    delta.w.overlap_waited_s = cur.w.overlap_waited_s - prev.w.overlap_waited_s;
    delta.w.recvs = cur.w.recvs - prev.w.recvs;
    delta.w.waited_recvs = cur.w.waited_recvs - prev.w.waited_recvs;
    delta.w.collectives = cur.w.collectives - prev.w.collectives;
    delta.w.halo_ops = cur.w.halo_ops - prev.w.halo_ops;
    for (const auto& [src, sec] : cur.late_by_rank) {
      const auto it = prev.late_by_rank.find(src);
      const double ds = sec - (it != prev.late_by_rank.end() ? it->second : 0);
      if (ds > 0) delta.late_by_rank[src] = ds;
    }
    if (delta.w.recvs > 0 || delta.w.collectives > 0 || delta.w.halo_ops > 0 ||
        delta.w.collective_s > 0)
      d.waits[s.phase] = delta;
    prev = cur;
  }

  // Counters ship cumulative (monotone, no baseline needed); histograms
  // ship the step window against the cumulative baseline.
  d.counters = counter_snapshot();
  d.gauges = gauge_snapshot();
  for (auto& [name, cur] : hist_samples()) {
    Histogram& prev = base.hists[name];
    Histogram delta = cur.delta_since(prev);
    if (!delta.empty()) d.hists[name] = std::move(delta);
    prev = std::move(cur);
  }
  return d;
}

StepRecord stitch(const std::vector<RankDelta>& deltas, int step) {
  StepRecord rec;
  rec.step = step;
  const int nranks = static_cast<int>(deltas.size());

  // Critical path: per phase, max and mean over ranks with argmax.
  std::map<std::string, PhaseCritical> crit;
  for (int r = 0; r < nranks; ++r) {
    for (const auto& [name, sec] : deltas[static_cast<std::size_t>(r)].phases) {
      PhaseCritical& c = crit[name];
      c.phase = name;
      c.mean_s += sec;
      if (sec > c.cp_s) {
        c.cp_s = sec;
        c.rank = r;
      }
    }
  }
  for (auto& [name, c] : crit) {
    c.mean_s /= nranks > 0 ? nranks : 1;
    c.imbalance = c.mean_s > 0 ? c.cp_s / c.mean_s : 1.0;
    rec.cp_length_s += c.cp_s;
    rec.mean_length_s += c.mean_s;
    rec.critical.push_back(c);
  }
  std::sort(rec.critical.begin(), rec.critical.end(),
            [](const PhaseCritical& a, const PhaseCritical& b) {
              return a.cp_s > b.cp_s;
            });
  rec.cp_imbalance =
      rec.mean_length_s > 0 ? rec.cp_length_s / rec.mean_length_s : 1.0;

  // Wait states: rank-summed buckets with the worst-blamed sender.
  std::map<std::string, PhaseWaits> waits;
  std::map<std::string, std::map<int, double>> blame;
  std::map<std::string, double> max_blocked;
  for (int r = 0; r < nranks; ++r) {
    const RankDelta& d = deltas[static_cast<std::size_t>(r)];
    for (const auto& [name, c] : d.waits) {
      PhaseWaits& w = waits[name];
      w.phase = name;
      w.w.late_sender_s += c.w.late_sender_s;
      w.w.transfer_s += c.w.transfer_s;
      w.w.late_receiver_s += c.w.late_receiver_s;
      w.w.collective_s += c.w.collective_s;
      w.w.overlap_covered_s += c.w.overlap_covered_s;
      w.w.overlap_waited_s += c.w.overlap_waited_s;
      w.w.recvs += c.w.recvs;
      w.w.waited_recvs += c.w.waited_recvs;
      w.w.collectives += c.w.collectives;
      w.w.halo_ops += c.w.halo_ops;
      const double blocked =
          c.w.late_sender_s + c.w.transfer_s + c.w.collective_s;
      max_blocked[name] = std::max(max_blocked[name], blocked);
      for (const auto& [src, sec] : c.late_by_rank) blame[name][src] += sec;
    }
  }
  // Wall seconds in a second pass: the waits map must already hold every
  // phase any rank waited in, else early ranks' wall time is dropped.
  for (int r = 0; r < nranks; ++r)
    for (const auto& [name, sec] : deltas[static_cast<std::size_t>(r)].phases)
      if (waits.count(name)) waits[name].wall_s += sec;
  for (auto& [name, w] : waits) {
    w.max_blocked_s = max_blocked[name];
    const double cov = w.w.overlap_covered_s + w.w.overlap_waited_s;
    if (w.w.halo_ops > 0 && cov > 0) w.overlap = w.w.overlap_covered_s / cov;
    else if (w.w.halo_ops > 0) w.overlap = 1.0;  // finished with zero wait
    for (const auto& [src, sec] : blame[name])
      if (sec > w.blamed_s) {
        w.blamed_s = sec;
        w.blamed_rank = src;
      }
    rec.waits.push_back(w);
  }
  std::sort(rec.waits.begin(), rec.waits.end(),
            [](const PhaseWaits& a, const PhaseWaits& b) {
              const double ba = a.w.late_sender_s + a.w.transfer_s +
                                a.w.collective_s;
              const double bb = b.w.late_sender_s + b.w.transfer_s +
                                b.w.collective_s;
              return ba > bb;
            });

  // Latency: exact elementwise merge of every rank's step-window
  // histogram, and rank-summed cumulative counters.
  std::map<std::string, Histogram> lat;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeStat> gauges;
  for (int r = 0; r < nranks; ++r) {
    const RankDelta& d = deltas[static_cast<std::size_t>(r)];
    for (const auto& [name, h] : d.hists) lat[name].merge(h);
    for (const auto& [name, v] : d.counters) counters[name] += v;
    for (const auto& [name, v] : d.gauges) {
      GaugeStat& g = gauges[name];
      g.name = name;
      g.sum += v;
      g.max = std::max(g.max, v);
    }
  }
  for (auto& [name, h] : lat)
    rec.latency.push_back(PhaseLatency{name, std::move(h)});
  rec.counters.assign(counters.begin(), counters.end());
  for (auto& [name, g] : gauges) rec.gauges.push_back(std::move(g));
  return rec;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

void append_critical(std::ostringstream& os, double length_s, double mean_s,
                     const std::vector<PhaseCritical>& phases) {
  os << "{\"length_s\":" << fmt(length_s) << ",\"mean_s\":" << fmt(mean_s)
     << ",\"imbalance\":" << fmt(mean_s > 0 ? length_s / mean_s : 1.0)
     << ",\"phases\":[";
  std::size_t limit = std::min<std::size_t>(phases.size(), 12);
  for (std::size_t i = 0; i < limit; ++i) {
    const PhaseCritical& c = phases[i];
    if (i) os << ",";
    os << "{\"phase\":\"" << c.phase << "\",\"cp_s\":" << fmt(c.cp_s)
       << ",\"mean_s\":" << fmt(c.mean_s) << ",\"rank\":" << c.rank
       << ",\"imbalance\":" << fmt(c.imbalance) << "}";
  }
  os << "]}";
}

void append_waits(std::ostringstream& os,
                  const std::vector<PhaseWaits>& phases) {
  os << "{\"phases\":[";
  std::size_t limit = std::min<std::size_t>(phases.size(), 12);
  for (std::size_t i = 0; i < limit; ++i) {
    const PhaseWaits& w = phases[i];
    if (i) os << ",";
    os << "{\"phase\":\"" << w.phase << "\",\"wall_s\":" << fmt(w.wall_s)
       << ",\"late_sender_s\":" << fmt(w.w.late_sender_s)
       << ",\"transfer_s\":" << fmt(w.w.transfer_s)
       << ",\"late_receiver_s\":" << fmt(w.w.late_receiver_s)
       << ",\"collective_s\":" << fmt(w.w.collective_s)
       << ",\"max_blocked_s\":" << fmt(w.max_blocked_s)
       << ",\"recvs\":" << w.w.recvs << ",\"waited_recvs\":" << w.w.waited_recvs
       << ",\"collectives\":" << w.w.collectives
       << ",\"halo_ops\":" << w.w.halo_ops;
    if (w.overlap >= 0) os << ",\"overlap\":" << fmt(w.overlap);
    if (w.blamed_rank >= 0)
      os << ",\"blamed_rank\":" << w.blamed_rank
         << ",\"blamed_s\":" << fmt(w.blamed_s);
    os << "}";
  }
  os << "]}";
}

}  // namespace

StepRecord analyze_step(par::Comm& comm, int step) {
  StepRecord rec;
  rec.step = step;
  if (!analysis_enabled()) return rec;

  // The analyzer's own collective must not land in the buckets.
  wait_suppress(true);
  const RankDelta mine = local_delta(comm.rank(), comm.size());
  const std::vector<std::byte> blob = encode(mine);
  const std::uint64_t my_size = blob.size();
  const std::vector<std::uint64_t> sizes = comm.allgather(my_size);
  const std::vector<std::byte> all = comm.allgatherv(blob);
  wait_suppress(false);

  std::vector<RankDelta> deltas;
  deltas.reserve(static_cast<std::size_t>(comm.size()));
  std::size_t off = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const std::size_t n = static_cast<std::size_t>(sizes[static_cast<std::size_t>(r)]);
    deltas.push_back(decode(all.data() + off, n));
    off += n;
  }
  rec = stitch(deltas, step);

  if (comm.rank() == 0) {
    AnalysisState& s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    for (const PhaseLatency& l : rec.latency) s.cum_hists[l.phase].merge(l.hist);
    s.records.push_back(rec);
  }
  return rec;
}

std::vector<std::pair<std::string, Histogram>> merged_histograms() {
  AnalysisState& s = state();
  std::lock_guard<std::mutex> lock(s.mtx);
  return {s.cum_hists.begin(), s.cum_hists.end()};
}

const std::vector<StepRecord>& step_records() { return state().records; }

void reset_records() {
  AnalysisState& s = state();
  std::lock_guard<std::mutex> lock(s.mtx);
  s.records.clear();
}

RunSummary summarize(const std::vector<StepRecord>& recs) {
  RunSummary sum;
  sum.steps = static_cast<int>(recs.size());
  std::map<std::string, PhaseCritical> crit;
  std::map<std::string, PhaseWaits> waits;
  for (const StepRecord& rec : recs) {
    sum.cp_length_s += rec.cp_length_s;
    sum.mean_length_s += rec.mean_length_s;
    for (const PhaseCritical& c : rec.critical) {
      PhaseCritical& a = crit[c.phase];
      a.phase = c.phase;
      a.cp_s += c.cp_s;
      a.mean_s += c.mean_s;
      if (c.cp_s > 0) a.rank = c.rank;  // last step's slowest rank
    }
    for (const PhaseWaits& w : rec.waits) {
      PhaseWaits& a = waits[w.phase];
      a.phase = w.phase;
      a.wall_s += w.wall_s;
      a.w.late_sender_s += w.w.late_sender_s;
      a.w.transfer_s += w.w.transfer_s;
      a.w.late_receiver_s += w.w.late_receiver_s;
      a.w.collective_s += w.w.collective_s;
      a.w.overlap_covered_s += w.w.overlap_covered_s;
      a.w.overlap_waited_s += w.w.overlap_waited_s;
      a.w.recvs += w.w.recvs;
      a.w.waited_recvs += w.w.waited_recvs;
      a.w.collectives += w.w.collectives;
      a.w.halo_ops += w.w.halo_ops;
      a.max_blocked_s = std::max(a.max_blocked_s, w.max_blocked_s);
      if (w.blamed_s > a.blamed_s) {
        a.blamed_s = w.blamed_s;
        a.blamed_rank = w.blamed_rank;
      }
    }
  }
  for (auto& [name, c] : crit) {
    c.imbalance = c.mean_s > 0 ? c.cp_s / c.mean_s : 1.0;
    sum.critical.push_back(c);
  }
  std::sort(sum.critical.begin(), sum.critical.end(),
            [](const PhaseCritical& a, const PhaseCritical& b) {
              return a.cp_s > b.cp_s;
            });
  for (auto& [name, w] : waits) {
    const double cov = w.w.overlap_covered_s + w.w.overlap_waited_s;
    if (w.w.halo_ops > 0 && cov > 0) w.overlap = w.w.overlap_covered_s / cov;
    else if (w.w.halo_ops > 0) w.overlap = 1.0;
    sum.waits.push_back(w);
  }
  std::sort(sum.waits.begin(), sum.waits.end(),
            [](const PhaseWaits& a, const PhaseWaits& b) {
              const double ba =
                  a.w.late_sender_s + a.w.transfer_s + a.w.collective_s;
              const double bb =
                  b.w.late_sender_s + b.w.transfer_s + b.w.collective_s;
              return ba > bb;
            });
  return sum;
}

std::string critical_path_json(const StepRecord& rec) {
  std::ostringstream os;
  append_critical(os, rec.cp_length_s, rec.mean_length_s, rec.critical);
  return os.str();
}

std::string wait_states_json(const StepRecord& rec) {
  std::ostringstream os;
  append_waits(os, rec.waits);
  return os.str();
}

std::string critical_path_json(const RunSummary& sum) {
  std::ostringstream os;
  append_critical(os, sum.cp_length_s, sum.mean_length_s, sum.critical);
  return os.str();
}

std::string wait_states_json(const RunSummary& sum) {
  std::ostringstream os;
  append_waits(os, sum.waits);
  return os.str();
}

std::string latency_json(const StepRecord& rec) {
  std::ostringstream os;
  os << "{\"phases\":[";
  bool first = true;
  for (const PhaseLatency& l : rec.latency) {
    if (l.hist.empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"phase\":\"" << l.phase << "\",\"count\":" << l.hist.count()
       << ",\"sum_s\":" << fmt(l.hist.sum())
       << ",\"p50_s\":" << fmt(l.hist.quantile(0.50))
       << ",\"p95_s\":" << fmt(l.hist.quantile(0.95))
       << ",\"p99_s\":" << fmt(l.hist.quantile(0.99))
       << ",\"max_s\":" << fmt(l.hist.max()) << "}";
  }
  os << "]}";
  return os.str();
}

// ---- memory aggregation ------------------------------------------------

namespace {

// One rank's contribution to the memory exchange:
//   u64 accounted, u64 acc_hwm, str acc_hwm_phase,
//   u32 rss_available, u64 rss, u64 rss_hwm, str rss_peak_phase,
//   u32 n_scopes { str name, u64 bytes } ...
struct MemDelta {
  std::uint64_t accounted = 0;
  std::uint64_t acc_hwm = 0;
  std::string acc_hwm_phase;
  bool rss_available = false;
  std::uint64_t rss = 0;
  std::uint64_t rss_hwm = 0;
  std::string rss_peak_phase;
  std::vector<std::pair<std::string, std::uint64_t>> scopes;
};

std::vector<std::byte> encode_mem(const MemDelta& d) {
  std::vector<std::byte> b;
  put_u64(b, d.accounted);
  put_u64(b, d.acc_hwm);
  put_str(b, d.acc_hwm_phase);
  put_u32(b, d.rss_available ? 1 : 0);
  put_u64(b, d.rss);
  put_u64(b, d.rss_hwm);
  put_str(b, d.rss_peak_phase);
  put_u32(b, static_cast<std::uint32_t>(d.scopes.size()));
  for (const auto& [name, bytes] : d.scopes) {
    put_str(b, name);
    put_u64(b, bytes);
  }
  return b;
}

MemDelta decode_mem(const std::byte* p, std::size_t n) {
  MemDelta d;
  Reader r{p, p + n};
  d.accounted = r.get<std::uint64_t>();
  d.acc_hwm = r.get<std::uint64_t>();
  d.acc_hwm_phase = r.str();
  d.rss_available = r.get<std::uint32_t>() != 0;
  d.rss = r.get<std::uint64_t>();
  d.rss_hwm = r.get<std::uint64_t>();
  d.rss_peak_phase = r.str();
  const std::uint32_t ns = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < ns && r.p < r.end; ++i) {
    std::string name = r.str();
    d.scopes.emplace_back(std::move(name), r.get<std::uint64_t>());
  }
  return d;
}

/// The scope-name prefix before the first '.' — the subsystem key.
std::string subsystem_of(const std::string& scope) {
  const std::size_t dot = scope.find('.');
  return dot == std::string::npos ? scope : scope.substr(0, dot);
}

std::string mem_uint(std::uint64_t v) { return std::to_string(v); }

}  // namespace

MemRecord analyze_memory(par::Comm& comm, int step) {
  MemRecord rec;
  rec.step = step;
  rec.ranks = comm.size();
  if (!mem_enabled()) return rec;  // process-global: symmetric on all ranks
  rec.enabled = true;

  MemDelta mine;
  mine.accounted = mem_accounted();
  const MemHwm hwm = mem_hwm(comm.rank());
  mine.acc_hwm = hwm.bytes;
  if (hwm.phase != nullptr) mine.acc_hwm_phase = hwm.phase;
  const RssSample rss = sample_rss();
  const RssPeak peak = rss_peak();
  mine.rss_available = rss.available;
  mine.rss = rss.rss_bytes;
  // Report the larger of the kernel lifetime peak (VmHWM, monotone) and
  // the cadence sampler's observed peak; the phase comes from the latter.
  mine.rss_hwm = std::max(rss.hwm_bytes, peak.bytes);
  if (peak.phase != nullptr) mine.rss_peak_phase = peak.phase;
  mine.scopes = mem_snapshot();

  // The analyzer's own collectives stay out of the wait buckets.
  wait_suppress(true);
  const std::vector<std::byte> blob = encode_mem(mine);
  const std::uint64_t my_size = blob.size();
  const std::vector<std::uint64_t> sizes = comm.allgather(my_size);
  const std::vector<std::byte> all = comm.allgatherv(blob);
  wait_suppress(false);

  std::vector<MemDelta> deltas;
  deltas.reserve(static_cast<std::size_t>(comm.size()));
  std::size_t off = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const std::size_t n =
        static_cast<std::size_t>(sizes[static_cast<std::size_t>(r)]);
    deltas.push_back(decode_mem(all.data() + off, n));
    off += n;
  }

  // Accounted stats.
  std::vector<std::uint64_t> acc;
  for (const MemDelta& d : deltas) acc.push_back(d.accounted);
  rec.acc_by_rank = acc;
  std::vector<std::uint64_t> sorted = acc;
  std::sort(sorted.begin(), sorted.end());
  rec.acc_min = sorted.front();
  rec.acc_max = sorted.back();
  const std::size_t n = sorted.size();
  rec.acc_median =
      (n % 2 == 1) ? static_cast<double>(sorted[n / 2])
                   : 0.5 * (static_cast<double>(sorted[n / 2 - 1]) +
                            static_cast<double>(sorted[n / 2]));
  for (std::uint64_t v : acc) rec.acc_total += v;
  rec.acc_mean = static_cast<double>(rec.acc_total) / static_cast<double>(n);
  rec.acc_imbalance =
      rec.acc_mean > 0 ? static_cast<double>(rec.acc_max) / rec.acc_mean : 1.0;
  for (int r = 0; r < rec.ranks; ++r)
    if (acc[static_cast<std::size_t>(r)] == rec.acc_max) {
      rec.acc_argmax = r;
      break;
    }
  for (int r = 0; r < rec.ranks; ++r) {
    const MemDelta& d = deltas[static_cast<std::size_t>(r)];
    if (d.acc_hwm >= rec.acc_hwm_max) {
      rec.acc_hwm_max = d.acc_hwm;
      rec.acc_hwm_phase = d.acc_hwm_phase;
    }
  }

  // RSS stats — only when every rank had a live sample (a mixed world
  // would make the min/mean meaningless).
  rec.rss_available = true;
  for (const MemDelta& d : deltas) rec.rss_available &= d.rss_available;
  if (rec.rss_available) {
    std::uint64_t total = 0;
    rec.rss_min = deltas.front().rss;
    for (int r = 0; r < rec.ranks; ++r) {
      const MemDelta& d = deltas[static_cast<std::size_t>(r)];
      total += d.rss;
      rec.rss_min = std::min(rec.rss_min, d.rss);
      if (d.rss > rec.rss_max) {
        rec.rss_max = d.rss;
        rec.rss_argmax = r;
      }
      if (d.rss_hwm >= rec.rss_hwm_max) {
        rec.rss_hwm_max = d.rss_hwm;
        rec.rss_hwm_phase = d.rss_peak_phase;
      }
    }
    rec.rss_mean = static_cast<double>(total) / static_cast<double>(rec.ranks);
    rec.rss_imbalance =
        rec.rss_mean > 0 ? static_cast<double>(rec.rss_max) / rec.rss_mean
                         : 1.0;
  }

  // Scope and subsystem reductions.
  std::map<std::string, MemScopeStat> scopes, subs;
  std::map<std::string, std::map<int, std::uint64_t>> sub_by_rank;
  for (int r = 0; r < rec.ranks; ++r) {
    const MemDelta& d = deltas[static_cast<std::size_t>(r)];
    for (const auto& [name, bytes] : d.scopes) {
      MemScopeStat& s = scopes[name];
      s.scope = name;
      s.total += bytes;
      if (bytes > s.max) {
        s.max = bytes;
        s.argmax = r;
      }
      sub_by_rank[subsystem_of(name)][r] += bytes;
    }
  }
  for (const auto& [name, by_rank] : sub_by_rank) {
    MemScopeStat& s = subs[name];
    s.scope = name;
    for (const auto& [r, bytes] : by_rank) {
      s.total += bytes;
      if (bytes > s.max) {
        s.max = bytes;
        s.argmax = r;
      }
    }
  }
  for (auto& [name, s] : scopes) rec.scopes.push_back(std::move(s));
  for (auto& [name, s] : subs) rec.subsystems.push_back(std::move(s));
  return rec;
}

std::string memory_json(const MemRecord& rec, std::int64_t dofs,
                        const std::string& drift_json) {
  std::ostringstream os;
  if (!rec.enabled) {
    os << "{\"available\":false}";
    return os.str();
  }
  os << "{\"available\":true,\"ranks\":" << rec.ranks;
  os << ",\"accounted\":{\"min_bytes\":" << mem_uint(rec.acc_min)
     << ",\"median_bytes\":" << fmt(rec.acc_median)
     << ",\"max_bytes\":" << mem_uint(rec.acc_max)
     << ",\"mean_bytes\":" << fmt(rec.acc_mean)
     << ",\"total_bytes\":" << mem_uint(rec.acc_total)
     << ",\"imbalance\":" << fmt(rec.acc_imbalance)
     << ",\"argmax_rank\":" << rec.acc_argmax
     << ",\"hwm_bytes\":" << mem_uint(rec.acc_hwm_max) << ",\"hwm_phase\":\""
     << rec.acc_hwm_phase << "\"}";
  if (rec.rss_available) {
    os << ",\"rss\":{\"available\":true,\"min_bytes\":" << mem_uint(rec.rss_min)
       << ",\"max_bytes\":" << mem_uint(rec.rss_max)
       << ",\"mean_bytes\":" << fmt(rec.rss_mean)
       << ",\"imbalance\":" << fmt(rec.rss_imbalance)
       << ",\"argmax_rank\":" << rec.rss_argmax
       << ",\"hwm_bytes\":" << mem_uint(rec.rss_hwm_max)
       << ",\"hwm_phase\":\"" << rec.rss_hwm_phase << "\"}";
  } else {
    // Exactly this shape: check_telemetry.py fails records that mix
    // available:false with numeric RSS fields.
    os << ",\"rss\":{\"available\":false}";
  }
  os << ",\"subsystems\":[";
  for (std::size_t i = 0; i < rec.subsystems.size(); ++i) {
    const MemScopeStat& s = rec.subsystems[i];
    if (i) os << ",";
    os << "{\"name\":\"" << s.scope << "\",\"bytes\":" << mem_uint(s.total)
       << ",\"max_bytes\":" << mem_uint(s.max)
       << ",\"argmax_rank\":" << s.argmax;
    if (dofs > 0)
      os << ",\"bytes_per_dof\":"
         << fmt(static_cast<double>(s.total) / static_cast<double>(dofs));
    os << "}";
  }
  os << "],\"scopes\":[";
  for (std::size_t i = 0; i < rec.scopes.size(); ++i) {
    const MemScopeStat& s = rec.scopes[i];
    if (i) os << ",";
    os << "{\"name\":\"" << s.scope << "\",\"bytes\":" << mem_uint(s.total)
       << "}";
  }
  os << "]";
  if (dofs > 0)
    os << ",\"bytes_per_dof\":"
       << fmt(static_cast<double>(rec.acc_total) / static_cast<double>(dofs));
  if (!drift_json.empty()) os << ",\"drift\":" << drift_json;
  os << "}";
  return os.str();
}

}  // namespace alps::obs::analysis
