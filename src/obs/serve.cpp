#include "obs/serve.hpp"

#ifndef ALPS_OBS_DISABLE

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/telemetry.hpp"

namespace alps::obs {

namespace {

// ---- double-buffered snapshot publication ------------------------------
//
// Two pre-rendered response slots. The publisher (simulation rank 0)
// writes the retired slot only after its reader count drains to zero,
// then swaps `cur`; the reader (server thread) pins a slot by bumping
// its reader count and re-checking `cur` — if the publisher swapped in
// between, it retreats and retries. All operations are seq_cst: the
// cur.store/load pair orders the slot's string writes before the reads,
// and the readers fetch_sub/load pair orders the reads before the next
// overwrite. Lock-free on the read side by construction.

struct Published {
  std::string metrics;
  std::string status;
  bool healthy = true;
  std::string health_reason;
};

struct ServeState {
  Published bufs[2];
  std::atomic<int> cur{-1};  // -1 = nothing published yet
  std::atomic<int> readers[2] = {{0}, {0}};

  std::atomic<bool> active{false};
  std::atomic<bool> stopping{false};
  std::atomic<int> listen_fd{-1};
  std::atomic<int> port{-1};
  std::thread thread;

  // Publisher-side state (one publisher at a time; the mutex also covers
  // restarts from tests).
  std::mutex pub_mtx;
  std::deque<std::pair<double, int>> window;  // (wall_s, step)
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<long> target_steps{-1};
  std::atomic<int> stagnation_limit{3};
  int consecutive_stagnated = 0;
  std::atomic<bool> marked_unhealthy{false};
  std::string marked_reason;  // under pub_mtx
};

ServeState& state() {
  static ServeState s;
  return s;
}

int acquire_slot(ServeState& s) {
  for (;;) {
    const int c = s.cur.load();
    if (c < 0) return -1;
    s.readers[c].fetch_add(1);
    if (s.cur.load() == c) return c;
    s.readers[c].fetch_sub(1);  // publisher swapped underneath: retry
  }
}

void release_slot(ServeState& s, int c) { s.readers[c].fetch_sub(1); }

// ---- rendering ---------------------------------------------------------

std::string fmt_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt_num(v);
}

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; everything else -> '_'.
std::string sanitize_metric(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) c = '_';
  return out;
}

void append_gauge(std::string& out, const char* name, const char* help,
                  double v) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += ' ';
  out += fmt_num(v);
  out += '\n';
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(16384);
  append_gauge(out, "alps_up", "1 while the metrics publisher is stepping", 1);
  append_gauge(out, "alps_step", "Current simulation step",
               static_cast<double>(snap.step));
  append_gauge(out, "alps_sim_time", "Simulation time (model units)",
               snap.sim_time);
  append_gauge(out, "alps_dt", "Current time-step size", snap.dt);
  append_gauge(out, "alps_dofs", "Global velocity-pressure dofs",
               static_cast<double>(snap.dofs));
  append_gauge(out, "alps_elements", "Global element count",
               static_cast<double>(snap.elements));
  append_gauge(out, "alps_ranks", "World size",
               static_cast<double>(snap.ranks));
  append_gauge(out, "alps_partition_imbalance",
               "max_rank_elements * ranks / total_elements",
               snap.partition_imbalance);
  append_gauge(out, "alps_cp_imbalance",
               "Step critical-path length over mean path length",
               snap.cp_imbalance);
  append_gauge(out, "alps_healthy", "1 healthy, 0 after a sentinel trip",
               snap.healthy ? 1 : 0);
  append_gauge(out, "alps_wait_blocked_seconds",
               "Rank-summed blocked time in the last step",
               snap.wait_blocked_s);
  if (snap.solver_ran) {
    append_gauge(out, "alps_solver_iterations",
                 "Krylov iterations of the last Stokes solve",
                 static_cast<double>(snap.solver_iterations));
    append_gauge(out, "alps_solver_relative_residual",
                 "Relative residual of the last Stokes solve",
                 snap.solver_relres);
    append_gauge(out, "alps_picard_iterations",
                 "Picard iterations of the last Stokes solve",
                 static_cast<double>(snap.picard_iterations));
  }
  if (snap.mem_available) {
    append_gauge(out, "alps_mem_accounted_bytes",
                 "Registry-accounted bytes, summed over ranks",
                 static_cast<double>(snap.mem_accounted_total));
    append_gauge(out, "alps_mem_rss_max_bytes", "Worst single-rank RSS",
                 static_cast<double>(snap.mem_rss_max));
  }

  for (const auto& [name, value] : snap.counters) {
    const std::string m = "alps_" + sanitize_metric(name) + "_total";
    out += "# TYPE " + m + " counter\n";
    out += m + ' ' + std::to_string(value) + '\n';
  }

  // One histogram family, one series per phase. Bucket counts are
  // cumulative and close with +Inf, sum and count follow — the exposition
  // shape check_metrics.py validates for monotonicity.
  out +=
      "# HELP alps_latency_seconds Per-phase duration distribution "
      "(log-bucketed, growth 1.08)\n"
      "# TYPE alps_latency_seconds histogram\n";
  for (const auto& [name, h] : snap.hists) {
    if (h.empty()) continue;
    int lo = 0, hi = Histogram::kBucketCount - 1;
    while (lo < Histogram::kBucketCount && h.bucket(lo) == 0) ++lo;
    while (hi > lo && h.bucket(hi) == 0) --hi;
    std::uint64_t cum = 0;
    const std::string series =
        "alps_latency_seconds_bucket{phase=\"" + name + "\",le=\"";
    for (int i = lo; i <= hi; ++i) {
      if (h.bucket(i) == 0 && i != hi) continue;  // sparse but cumulative
      cum += h.bucket(i);
      // Re-scan: skipped empty buckets contribute nothing, so cum is the
      // true cumulative count at upper(i).
      out += series + fmt_num(Histogram::bucket_upper(i)) + "\"} " +
             std::to_string(cum) + '\n';
    }
    out += series + "+Inf\"} " + std::to_string(h.count()) + '\n';
    out += "alps_latency_seconds_sum{phase=\"" + name + "\"} " +
           fmt_num(h.sum()) + '\n';
    out += "alps_latency_seconds_count{phase=\"" + name + "\"} " +
           std::to_string(h.count()) + '\n';
  }
  return out;
}

std::string status_json(const MetricsSnapshot& snap, double eta_s,
                        double step_rate_per_s, long target_steps) {
  std::string out = "{";
  out += "\"step\":" + std::to_string(snap.step);
  out += ",\"time\":" + fmt_json_num(snap.sim_time);
  out += ",\"dt\":" + fmt_json_num(snap.dt);
  out += ",\"dofs\":" + std::to_string(snap.dofs);
  out += ",\"elements\":" + std::to_string(snap.elements);
  out += ",\"ranks\":" + std::to_string(snap.ranks);
  out += ",\"partition_imbalance\":" + fmt_json_num(snap.partition_imbalance);
  out += ",\"cp_imbalance\":" + fmt_json_num(snap.cp_imbalance);
  out += std::string(",\"healthy\":") + (snap.healthy ? "true" : "false");
  out += ",\"health_reason\":\"" + snap.health_reason + "\"";
  out += ",\"solver\":{";
  if (snap.solver_ran) {
    out += "\"status\":\"" + snap.solver_status + "\"";
    out += ",\"iterations\":" + std::to_string(snap.solver_iterations);
    out += ",\"relative_residual\":" + fmt_json_num(snap.solver_relres);
    out += ",\"picard_iterations\":" + std::to_string(snap.picard_iterations);
  } else {
    out += "\"status\":null";
  }
  out += "}";
  out += ",\"wait_blocked_s\":" + fmt_json_num(snap.wait_blocked_s);
  if (snap.mem_available) {
    out += ",\"memory\":{\"accounted_total_bytes\":" +
           std::to_string(snap.mem_accounted_total) +
           ",\"rss_max_bytes\":" + std::to_string(snap.mem_rss_max) + "}";
  }
  out += ",\"target_steps\":" +
         (target_steps >= 0 ? std::to_string(target_steps)
                            : std::string("null"));
  out += ",\"step_rate_per_s\":" +
         (step_rate_per_s > 0 ? fmt_json_num(step_rate_per_s)
                              : std::string("null"));
  out += ",\"eta_s\":" +
         (eta_s >= 0 ? fmt_json_num(eta_s) : std::string("null"));
  out += ",\"telemetry_records\":" + std::to_string(telemetry_records());
  out += "}";
  return out;
}

// ---- publishing --------------------------------------------------------

void metrics_publish(const MetricsSnapshot& snap) {
  ServeState& s = state();
  std::lock_guard<std::mutex> lock(s.pub_mtx);

  // ETA from a sliding window of (wall clock, step) pairs.
  const double now = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - s.epoch)
                         .count();
  s.window.emplace_back(now, snap.step);
  while (s.window.size() > 32) s.window.pop_front();
  double rate = 0;
  if (s.window.size() >= 2) {
    const double dt_wall = s.window.back().first - s.window.front().first;
    const int dsteps = s.window.back().second - s.window.front().second;
    if (dt_wall > 0 && dsteps > 0) rate = dsteps / dt_wall;
  }
  const long target = s.target_steps.load();
  double eta = -1;
  if (target >= 0 && rate > 0)
    eta = target > snap.step ? (target - snap.step) / rate : 0.0;

  // Stagnation tracking: consecutive solves that made no progress.
  if (snap.solver_ran) {
    const bool bad = snap.solver_status == "stagnated" ||
                     snap.solver_status == "diverged" ||
                     snap.solver_status == "nonfinite";
    s.consecutive_stagnated = bad ? s.consecutive_stagnated + 1 : 0;
  }

  MetricsSnapshot eff = snap;
  if (s.marked_unhealthy.load()) {
    eff.healthy = false;
    if (eff.health_reason.empty()) eff.health_reason = s.marked_reason;
  }
  if (s.consecutive_stagnated >= s.stagnation_limit.load()) {
    eff.healthy = false;
    if (eff.health_reason.empty())
      eff.health_reason = "stagnated_solves=" +
                          std::to_string(s.consecutive_stagnated);
  }

  const int c = s.cur.load();
  const int next = c < 0 ? 0 : 1 - c;
  // Wait for the retired slot's readers to drain; the server handles one
  // short request at a time, so this spin is bounded by one response.
  while (s.readers[next].load() != 0) std::this_thread::yield();
  Published& p = s.bufs[next];
  p.metrics = prometheus_text(eff);
  p.status = status_json(eff, eta, rate, target);
  p.healthy = eff.healthy;
  p.health_reason = eff.health_reason;
  s.cur.store(next);
}

void metrics_set_target_steps(long steps) {
  state().target_steps.store(steps);
}

int metrics_set_stagnation_limit(int n) {
  return state().stagnation_limit.exchange(n > 0 ? n : 1);
}

void metrics_mark_unhealthy(const std::string& reason) {
  ServeState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.pub_mtx);
    if (s.marked_reason.empty()) s.marked_reason = reason;
  }
  s.marked_unhealthy.store(true);
}

void metrics_linger_if_unhealthy() {
  ServeState& s = state();
  if (!s.active.load() || !s.marked_unhealthy.load()) return;
  double linger = 2.0;
  if (const char* env = std::getenv("ALPS_METRICS_LINGER"))
    if (*env != '\0') linger = std::atof(env);
  if (linger <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(linger));
}

void metrics_reset_for_testing() {
  ServeState& s = state();
  std::lock_guard<std::mutex> lock(s.pub_mtx);
  // Readers may still hold a slot only while the server runs; tests call
  // this with the server stopped (or between their own requests).
  s.cur.store(-1);
  s.window.clear();
  s.consecutive_stagnated = 0;
  s.marked_unhealthy.store(false);
  s.marked_reason.clear();
  s.target_steps.store(-1);
  s.stagnation_limit.store(3);
}

// ---- HTTP server -------------------------------------------------------

namespace {

void send_response(int fd, int code, const char* reason,
                   const char* content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(code) + ' ' + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  head += body;
  std::size_t off = 0;
  while (off < head.size()) {
    const ssize_t n = ::send(fd, head.data() + off, head.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void handle_connection(ServeState& s, int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char buf[2048];
  std::size_t got = 0;
  while (got < sizeof buf - 1) {
    const ssize_t n = ::recv(fd, buf + got, sizeof buf - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr)
      break;
  }
  buf[got] = '\0';
  // "GET <path> HTTP/1.x" — anything else is a 400.
  std::string path;
  if (std::strncmp(buf, "GET ", 4) == 0) {
    const char* p = buf + 4;
    const char* sp = std::strchr(p, ' ');
    if (sp != nullptr) path.assign(p, sp);
  }
  if (path.empty()) {
    send_response(fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);

  if (path == "/metrics") {
    const int c = acquire_slot(s);
    if (c < 0) {
      send_response(fd, 200, "OK", "text/plain; version=0.0.4",
                    "# no snapshot published yet\nalps_up 1\n");
      return;
    }
    send_response(fd, 200, "OK", "text/plain; version=0.0.4",
                  s.bufs[c].metrics);
    release_slot(s, c);
  } else if (path == "/status") {
    const int c = acquire_slot(s);
    if (c < 0) {
      send_response(fd, 200, "OK", "application/json", "{\"step\":null}");
      return;
    }
    send_response(fd, 200, "OK", "application/json", s.bufs[c].status);
    release_slot(s, c);
  } else if (path == "/healthz") {
    bool healthy = !s.marked_unhealthy.load();
    std::string reason;
    if (!healthy) {
      // The sticky mark may predate the next publish; its reason lives
      // under pub_mtx. Safe to take here: we hold no slot pin, so the
      // publisher's reader-drain spin cannot be waiting on us.
      std::lock_guard<std::mutex> lock(s.pub_mtx);
      reason = s.marked_reason;
    }
    const int c = acquire_slot(s);
    if (c >= 0) {
      healthy = healthy && s.bufs[c].healthy;
      if (reason.empty()) reason = s.bufs[c].health_reason;
      release_slot(s, c);
    }
    if (healthy) {
      send_response(fd, 200, "OK", "text/plain", "ok\n");
    } else {
      send_response(fd, 503, "Service Unavailable", "text/plain",
                    "unhealthy: " + (reason.empty() ? "sentinel" : reason) +
                        "\n");
    }
  } else if (path == "/telemetry/tail") {
    // Lines come pre-sanitized from the telemetry JSONL renderer
    // (non-finite doubles are already null); the sink mutex makes the
    // read safe against the emitting rank.
    std::string body;
    for (const std::string& line : telemetry_tail()) {
      body += line;
      body += '\n';
    }
    send_response(fd, 200, "OK", "application/x-ndjson", body);
  } else {
    send_response(fd, 404, "Not Found", "text/plain", "not found\n");
  }
}

void server_loop(ServeState& s) {
  for (;;) {
    const int lfd = s.listen_fd.load();
    if (lfd < 0 || s.stopping.load()) break;
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd =
        ::accept(lfd, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (s.stopping.load()) break;
      if (errno == EINTR) continue;
      break;  // listen socket is gone
    }
    handle_connection(s, fd);
    ::close(fd);
  }
}

}  // namespace

int serve_start(int port, std::string* err) {
  ServeState& s = state();
  std::lock_guard<std::mutex> lock(s.pub_mtx);
  if (s.active.load()) return s.port.load();

  const char* bind_env = std::getenv("ALPS_METRICS_BIND");
  const std::string bind_addr =
      (bind_env != nullptr && *bind_env != '\0') ? bind_env : "127.0.0.1";

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = "socket: " + std::string(std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad bind address: " + bind_addr;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    if (err != nullptr) {
      *err = "bind " + bind_addr + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  const int got_port = static_cast<int>(ntohs(bound.sin_port));

  s.stopping.store(false);
  s.listen_fd.store(fd);
  s.port.store(got_port);
  s.thread = std::thread([&s] { server_loop(s); });
  s.active.store(true);
  return got_port;
}

int serve_maybe_start() {
  const char* env = std::getenv("ALPS_METRICS_PORT");
  if (env == nullptr || *env == '\0') return -1;
  const long port = std::atol(env);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "alps: ignoring ALPS_METRICS_PORT=%s (bad port)\n",
                 env);
    return -1;
  }
  std::string err;
  const int got = serve_start(static_cast<int>(port), &err);
  if (got < 0)
    std::fprintf(stderr, "alps: metrics server failed: %s\n", err.c_str());
  return got;
}

void serve_stop() {
  ServeState& s = state();
  std::thread joiner;
  {
    std::lock_guard<std::mutex> lock(s.pub_mtx);
    if (!s.active.load()) return;
    s.stopping.store(true);
    const int fd = s.listen_fd.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);  // wakes the blocking accept
      ::close(fd);
    }
    joiner = std::move(s.thread);
    s.active.store(false);
    s.port.store(-1);
  }
  if (joiner.joinable()) joiner.join();
}

bool serve_active() { return state().active.load(); }

int serve_port() { return state().port.load(); }

}  // namespace alps::obs

#endif  // ALPS_OBS_DISABLE
