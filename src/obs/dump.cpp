#include "obs/dump.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

namespace alps::obs {

namespace {

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "obs::panic_dump: cannot write %s\n",
                 path.string().c_str());
    return;
  }
  f << body;
  if (!body.empty() && body.back() != '\n') f << '\n';
}

void append_double(std::string& out, double v) {
  // null for non-finite: residual histories of a diverged solve routinely
  // hold NaN/Inf, and the bundle must stay valid JSON.
  char buf[40] = "null";
  if (std::isfinite(v)) std::snprintf(buf, sizeof buf, "%.12g", v);
  out += buf;
}

std::string counters_json() {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : aggregate_counters()) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + name + "\": " + std::to_string(value);
  }
  out += "\n}";
  return out;
}

std::string phases_json() {
  std::string out = "[";
  bool first = true;
  for (const auto& p : aggregate_phases()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"" + p.name + "\", \"min_s\": ";
    append_double(out, p.min_s);
    out += ", \"median_s\": ";
    append_double(out, p.median_s);
    out += ", \"max_s\": ";
    append_double(out, p.max_s);
    out += ", \"mean_s\": ";
    append_double(out, p.mean_s);
    out += ", \"total_s\": ";
    append_double(out, p.total_s);
    out += ", \"imbalance\": ";
    append_double(out, p.imbalance);
    out += ", \"ranks\": " + std::to_string(p.ranks) + "}";
  }
  out += "\n]";
  return out;
}

std::string residuals_json() {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, hists] : histories()) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + name + "\": [";
    for (std::size_t h = 0; h < hists.size(); ++h) {
      if (h > 0) out += ", ";
      out += "[";
      for (std::size_t i = 0; i < hists[h].size(); ++i) {
        if (i > 0) out += ", ";
        append_double(out, hists[h][i]);
      }
      out += "]";
    }
    out += "]";
  }
  out += "\n}";
  return out;
}

std::string memory_json() {
  if (!mem_enabled()) return "{\"available\": false}";
  std::string out = "{\"available\": true,\n  \"accounted\": {";
  std::uint64_t total = 0, hwm_max = 0;
  const char* hwm_phase = nullptr;
  out += "\"by_rank\": [";
  const int p = world_size();
  for (int r = 0; r < p; ++r) {
    if (r > 0) out += ", ";
    const std::uint64_t acc = mem_accounted(r);
    total += acc;
    out += std::to_string(acc);
    const MemHwm h = mem_hwm(r);
    if (h.bytes >= hwm_max) {
      hwm_max = h.bytes;
      hwm_phase = h.phase;
    }
  }
  out += "], \"total_bytes\": " + std::to_string(total);
  out += ", \"hwm_bytes\": " + std::to_string(hwm_max);
  out += ", \"hwm_phase\": \"" +
         std::string(hwm_phase != nullptr ? hwm_phase : "") + "\"},";
  const RssSample rss = sample_rss();
  if (rss.available) {
    const RssPeak peak = rss_peak();
    out += "\n  \"rss\": {\"available\": true, \"rss_bytes\": " +
           std::to_string(rss.rss_bytes) +
           ", \"hwm_bytes\": " +
           std::to_string(std::max(rss.hwm_bytes, peak.bytes)) +
           ", \"peak_phase\": \"" +
           std::string(peak.phase != nullptr ? peak.phase : "") + "\"},";
  } else {
    out += "\n  \"rss\": {\"available\": false},";
  }
  out += "\n  \"scopes\": {";
  bool first = true;
  for (const auto& [name, bytes] : aggregate_mem()) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + name + "\": " + std::to_string(bytes);
  }
  out += "\n  }\n}";
  return out;
}

}  // namespace

std::string dump_dir() {
  if (const char* env = std::getenv("ALPS_DUMP_DIR"))
    if (*env != '\0') return env;
  return "alps_dump";
}

std::string panic_dump(const std::string& reason) noexcept {
  try {
    const std::filesystem::path dir = dump_dir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "obs::panic_dump: cannot create %s: %s\n",
                   dir.string().c_str(), ec.message().c_str());
      return {};
    }
    write_file(dir / "reason.txt", reason);
    write_file(dir / "trace.json", chrome_trace_json());
    write_file(dir / "counters.json", counters_json());
    write_file(dir / "phases.json", phases_json());
    write_file(dir / "residuals.json", residuals_json());
    write_file(dir / "memory.json", memory_json());
    std::string tail;
    for (const std::string& line : telemetry_tail()) tail += line + "\n";
    write_file(dir / "telemetry_tail.jsonl", tail);
    std::fprintf(stderr, "obs::panic_dump: flight-recorder bundle in %s (%s)\n",
                 dir.string().c_str(), reason.c_str());
    return dir.string();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs::panic_dump: failed: %s\n", e.what());
    return {};
  }
}

}  // namespace alps::obs
