#pragma once
// alps::obs telemetry — the per-timestep health stream (DESIGN.md §8).
//
// While spans answer "where did the time go", telemetry answers "is the
// simulation healthy and converging": one JSONL record per time step
// (step, time, dt, mesh statistics, solver iterations and residuals,
// physics diagnostics), appended to ALPS_TELEMETRY_OUT by rank 0 of the
// rhea timestep loop. The stream reproduces the paper's Fig. 5 (mesh
// statistics per adaptation) and Fig. 6 (long-horizon convection
// diagnostics) data directly; scripts/check_telemetry.py validates the
// schema and step monotonicity in CI.
//
// The sink also keeps an in-memory tail ring of the last records and a
// registry of recent solver residual histories — both are written into
// the flight-recorder bundle (obs/dump.hpp) when a run dies.
//
// Enablement: ALPS_TELEMETRY=1 (or any non-empty value but "0") turns the
// stream on; ALPS_TELEMETRY_OUT overrides the output path (default
// "alps_telemetry.jsonl"). set_telemetry()/set_telemetry_path() override
// the environment programmatically (tests). Emission is mutex-guarded —
// it is a once-per-timestep cold path.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace alps::obs {

// ---- enablement -------------------------------------------------------

/// True when ALPS_TELEMETRY is set (and not "0"/"") or set_telemetry(true)
/// was called.
bool telemetry_enabled();
void set_telemetry(bool on);  // overrides ALPS_TELEMETRY

/// Output path: ALPS_TELEMETRY_OUT, or the set_telemetry_path override,
/// or "alps_telemetry.jsonl".
std::string telemetry_path();
/// Override the output path (takes precedence over the environment;
/// empty string restores the default resolution). Closes any open sink.
void set_telemetry_path(const std::string& path);

// ---- record builder ---------------------------------------------------

/// One JSONL record. Keys are emitted in call order; no escaping is
/// performed (telemetry keys and string values are ASCII identifiers).
class TelemetryRecord {
 public:
  TelemetryRecord& field(const char* key, double v);
  TelemetryRecord& field(const char* key, std::int64_t v);
  TelemetryRecord& field(const char* key, std::uint64_t v);
  TelemetryRecord& field(const char* key, int v);
  TelemetryRecord& field(const char* key, const std::string& v);
  /// Integer array value, e.g. per-level element counts.
  TelemetryRecord& field(const char* key, std::span<const std::int64_t> v);
  /// Pre-serialized JSON value emitted verbatim (obs::analysis blocks).
  TelemetryRecord& field_json(const char* key, const std::string& raw);

  /// The record as a single JSON object line (no trailing newline).
  std::string json() const { return "{" + body_ + "}"; }

 private:
  void comma();
  std::string body_;
};

// ---- sink -------------------------------------------------------------

/// Append `rec` as one line to the telemetry file (lazily opened,
/// truncated on the first emit of the process) and to the in-memory tail
/// ring. Call from one rank per record — by convention rank 0 of the
/// simulation loop. Thread-safe.
void telemetry_emit(const TelemetryRecord& rec);

/// The most recent emitted lines, oldest first (bounded ring; also fed by
/// emits that happened while the file sink was disabled).
std::vector<std::string> telemetry_tail();

/// Number of records emitted since process start (monotonic).
std::uint64_t telemetry_records();

/// Bytes held by the in-memory tail ring and history registry — what the
/// "obs.telemetry" memory scope reports (see obs/mem.hpp).
std::uint64_t telemetry_tail_bytes();

// ---- solver history registry ------------------------------------------

/// Keep `values` as the most recent history under `name` (per-iteration
/// Krylov residuals, AMG convergence factors, ...). A bounded number of
/// histories per name is retained, newest last. Thread-safe; cold path.
void record_history(const char* name, std::span<const double> values);

/// Snapshot of all recorded histories, sorted by name; each name carries
/// its retained histories, oldest first.
std::vector<std::pair<std::string, std::vector<std::vector<double>>>>
histories();

/// Drop all recorded histories and the telemetry tail (tests).
void telemetry_reset_for_testing();

}  // namespace alps::obs
