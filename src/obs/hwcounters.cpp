#include "obs/hwcounters.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace alps::obs {

namespace {

constexpr int kEvents = 4;  // cycles, instructions, llc, stalled

// -1 = not yet read from ALPS_HW.
std::atomic<int> g_hw{-1};
// 0 = unknown, 1 = available, 2 = unavailable (probe failed or forced).
std::atomic<int> g_avail{0};
std::atomic<bool> g_forced_unavailable{false};

int hw_init() {
  int on = 0;
  if (const char* env = std::getenv("ALPS_HW")) {
    const std::string v(env);
    if (!v.empty() && v != "0") on = 1;
  }
  g_hw.store(on, std::memory_order_relaxed);
  return on;
}

// Span-name filter from ALPS_HW ("1"/"all" = everything).
struct Filter {
  bool all = true;
  std::vector<std::string> names;
};

const Filter& filter() {
  static const Filter f = [] {
    Filter out;
    const char* env = std::getenv("ALPS_HW");
    if (env == nullptr) return out;
    const std::string v(env);
    if (v.empty() || v == "0" || v == "1" || v == "all") return out;
    out.all = false;
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ','))
      if (!item.empty()) out.names.push_back(item);
    return out;
  }();
  return f;
}

// Per-rank accumulation slots; same single-writer model as obs spans.
struct HwSlot {
  std::unordered_map<const char*, HwCounts> by_name;
};

struct HwState {
  std::mutex mtx;  // guards slots resize only (world_begin)
  std::vector<std::unique_ptr<HwSlot>> slots;
};

HwState& hw_state() {
  static HwState s;
  return s;
}

thread_local HwSlot* tl_hw_slot = nullptr;

#ifdef __linux__

long perf_open(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
}

// One counter file descriptor set per thread, opened lazily on the first
// active span and closed when the thread exits.
struct ThreadCounters {
  int fd[kEvents] = {-1, -1, -1, -1};
  bool opened = false;

  void open() {
    opened = true;
    fd[0] = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES));
    fd[1] = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS));
    fd[2] = static_cast<int>(
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES));
    fd[3] = static_cast<int>(perf_open(
        PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND));
  }
  void read_now(std::uint64_t v[kEvents]) {
    for (int i = 0; i < kEvents; ++i) {
      v[i] = 0;
      if (fd[i] >= 0 && read(fd[i], &v[i], sizeof v[i]) != sizeof v[i])
        v[i] = 0;
    }
  }
  ~ThreadCounters() {
    for (int i = 0; i < kEvents; ++i)
      if (fd[i] >= 0) close(fd[i]);
  }
};

thread_local ThreadCounters tl_counters;

int probe_available() {
  const long fd = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (fd < 0) return 2;
  close(static_cast<int>(fd));
  return 1;
}

#else  // !__linux__

struct ThreadCounters {
  int fd[kEvents] = {-1, -1, -1, -1};
  bool opened = false;
  void open() { opened = true; }
  void read_now(std::uint64_t v[kEvents]) {
    for (int i = 0; i < kEvents; ++i) v[i] = 0;
  }
};

thread_local ThreadCounters tl_counters;

int probe_available() { return 2; }

#endif

int availability() {
  if (g_forced_unavailable.load(std::memory_order_relaxed)) return 2;
  int a = g_avail.load(std::memory_order_relaxed);
  if (a == 0) {
    a = probe_available();
    g_avail.store(a, std::memory_order_relaxed);
  }
  return a;
}

}  // namespace

bool hw_enabled() {
  const int v = g_hw.load(std::memory_order_relaxed);
  return (v >= 0 ? v : hw_init()) != 0;
}

void set_hw_enabled(bool on) {
  g_hw.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool hw_span_selected(const char* name) {
  const Filter& f = filter();
  if (f.all) return true;
  for (const std::string& n : f.names)
    if (n == name) return true;
  return false;
}

bool hw_available() { return availability() == 1; }

void set_hw_unavailable_for_testing(bool forced) {
  g_forced_unavailable.store(forced, std::memory_order_relaxed);
}

HwSpan::HwSpan(const char* name) {
  if (!hw_enabled() || tl_hw_slot == nullptr || !hw_span_selected(name))
    return;
  name_ = name;
  if (availability() != 1) return;
  if (!tl_counters.opened) tl_counters.open();
  tl_counters.read_now(v0_);
}

HwSpan::~HwSpan() {
  if (name_ == nullptr || tl_hw_slot == nullptr) return;
  HwCounts& c = tl_hw_slot->by_name[name_];
  c.spans++;
  if (availability() != 1 || !tl_counters.opened) return;
  std::uint64_t v1[kEvents];
  tl_counters.read_now(v1);
  const bool ok[kEvents] = {
      tl_counters.fd[0] >= 0, tl_counters.fd[1] >= 0,
      tl_counters.fd[2] >= 0, tl_counters.fd[3] >= 0};
  if (ok[0] && v1[0] >= v0_[0]) { c.cycles += v1[0] - v0_[0]; c.cycles_ok = true; }
  if (ok[1] && v1[1] >= v0_[1]) { c.instructions += v1[1] - v0_[1]; c.instructions_ok = true; }
  if (ok[2] && v1[2] >= v0_[2]) { c.llc_misses += v1[2] - v0_[2]; c.llc_ok = true; }
  if (ok[3] && v1[3] >= v0_[3]) { c.stalled_cycles += v1[3] - v0_[3]; c.stalled_ok = true; }
}

std::vector<std::pair<std::string, HwCounts>> aggregate_hw() {
  HwState& s = hw_state();
  std::map<std::string, HwCounts> merged;
  for (const auto& slot : s.slots) {
    if (!slot) continue;
    for (const auto& [name, c] : slot->by_name) {
      HwCounts& m = merged[name];
      m.cycles += c.cycles;
      m.instructions += c.instructions;
      m.llc_misses += c.llc_misses;
      m.stalled_cycles += c.stalled_cycles;
      m.spans += c.spans;
      m.cycles_ok = m.cycles_ok || c.cycles_ok;
      m.instructions_ok = m.instructions_ok || c.instructions_ok;
      m.llc_ok = m.llc_ok || c.llc_ok;
      m.stalled_ok = m.stalled_ok || c.stalled_ok;
    }
  }
  return {merged.begin(), merged.end()};
}

namespace detail {

void world_begin(int nranks) {
  HwState& s = hw_state();
  std::lock_guard<std::mutex> lock(s.mtx);
  s.slots.clear();
  for (int r = 0; r < nranks; ++r)
    s.slots.push_back(std::make_unique<HwSlot>());
}

void rank_bind(int rank) {
  HwState& s = hw_state();
  std::lock_guard<std::mutex> lock(s.mtx);
  tl_hw_slot = (rank >= 0 && static_cast<std::size_t>(rank) < s.slots.size())
                   ? s.slots[static_cast<std::size_t>(rank)].get()
                   : nullptr;
}

void rank_unbind() { tl_hw_slot = nullptr; }

}  // namespace detail

}  // namespace alps::obs
