#pragma once
// obs::Histogram — fixed-size log-bucketed duration histograms with exact
// mergeable bucket counts (DESIGN.md §14).
//
// Buckets grow geometrically by kGrowth = 1.08 from kFirstUpper = 1 ns:
// bucket i covers (upper(i-1), upper(i)] with upper(i) = 1e-9 * 1.08^i.
// Reported quantiles are the geometric midpoint of the selected bucket,
// clamped to the exact [min, max] range, so the relative error against a
// sorted reference is bounded by sqrt(1.08) - 1 ~= 3.92% < 4%. The 400
// buckets span 1 ns .. ~6 h, wide enough for any span this code times.
//
// Bucket counts are exact integers, so cross-rank merging (elementwise
// add) is associative and lossless — the property the per-step analysis
// exchange relies on: each rank ships its sparse delta, every rank adds
// them in rank order, and the result is identical everywhere regardless
// of how the reduction is grouped.
//
// Recording sites: every OBS_PHASE_SPAN close (hooked in Span::~Span),
// plus explicit OBS_HIST_SPAN scopes per Krylov solve ("la.cg",
// "la.minres"), AMG V-cycle ("amg.vcycle") and operator application
// ("fem.apply"). Like counters and phase accumulators, recording is a
// per-rank single-writer operation: no locks, no atomics.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace alps::obs {

class Histogram {
 public:
  static constexpr int kBucketCount = 400;

  /// Geometric bucket growth factor; quantile error bound is sqrt(g) - 1.
  static double growth();
  /// Upper bound of bucket 0 (seconds). Lower bounds follow as
  /// upper(i - 1); bucket 0 is (0, upper(0)].
  static double first_upper();
  /// Inclusive upper bound of bucket `i` (seconds).
  static double bucket_upper(int i);
  /// Exclusive lower bound of bucket `i` (0 for bucket 0).
  static double bucket_lower(int i);
  /// Bucket index for a duration: the smallest i with v <= upper(i);
  /// values beyond the last bound clamp into the last bucket.
  static int bucket_index(double seconds);

  /// Record one duration. Non-finite or negative samples are dropped
  /// (they would poison sum/min/max; the sentinel layer reports them).
  void record(double seconds);
  /// Elementwise-add `o` into this histogram (exact, associative).
  void merge(const Histogram& o);
  /// This histogram minus a prefix `base` of itself (bucket counts, count
  /// and sum subtract). Exact min/max do not difference, so the window's
  /// range is re-estimated from its lowest/highest non-empty buckets.
  Histogram delta_since(const Histogram& base) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  bool empty() const { return count_ == 0; }
  /// Smallest / largest recorded duration: exact when this histogram was
  /// filled by record()/merge(), bucket-midpoint estimates for windows
  /// produced by delta_since(). Both are 0 when empty.
  double min() const;
  double max() const;
  /// Nearest-rank quantile (q in [0, 1]): geometric midpoint of the
  /// bucket holding the floor(q * count)-th sample, clamped to
  /// [min(), max()]. Monotone in q; 0 when empty.
  double quantile(double q) const;

  std::uint64_t bucket(int i) const;
  /// Direct bucket injection for wire decoding; updates count() too.
  void add_bucket(int i, std::uint64_t n);
  void add_sum(double s) { sum_ += s; }
  void expand_range(double mn, double mx);

 private:
  static double bucket_mid(int i);
  std::vector<std::uint64_t> buckets_;  // empty until first sample
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;  // valid only when count_ > 0
  double max_ = 0;
};

// ---- recording (per-rank slots live in obs.cpp) ------------------------

/// Record `seconds` into this rank's histogram named `name` (no-op on
/// unbound threads). `name` must be a string literal.
void hist_record(const char* name, double seconds);
/// Histograms of `rank`, merged by name content, sorted by name. Safe
/// from the owning rank thread or after par::run has joined.
std::vector<std::pair<std::string, Histogram>> hist_samples(int rank);
/// Same, for the calling thread's bound rank (empty when unbound).
std::vector<std::pair<std::string, Histogram>> hist_samples();
/// Every rank's histograms merged per name, sorted by name. Call after
/// par::run has joined (main thread).
std::vector<std::pair<std::string, Histogram>> aggregate_hists();

/// RAII duration recorder feeding hist_record on scope exit. Used where
/// the span is not an OBS_PHASE_SPAN (which records automatically):
/// Krylov solves, AMG V-cycles, operator applies.
class HistSpan {
 public:
  explicit HistSpan(const char* name) : name_(name), t0_(trace_now_ns()) {}
  ~HistSpan() {
    hist_record(name_, static_cast<double>(trace_now_ns() - t0_) * 1e-9);
  }
  HistSpan(const HistSpan&) = delete;
  HistSpan& operator=(const HistSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_;
};

#ifndef ALPS_OBS_DISABLE
#define OBS_HIST_SPAN(name) \
  ::alps::obs::HistSpan ALPS_OBS_CONCAT(obs_hist_, __LINE__)(name)
#else
#define OBS_HIST_SPAN(name) ((void)0)
#endif

}  // namespace alps::obs
