#include "obs/telemetry.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>

namespace alps::obs {

namespace {

constexpr std::size_t kTailCapacity = 256;   // lines kept for the dump
constexpr std::size_t kHistoriesPerName = 4; // residual histories kept

// -1 = not yet read from ALPS_TELEMETRY.
std::atomic<int> g_telemetry{-1};

int telemetry_init() {
  int on = 0;
  if (const char* env = std::getenv("ALPS_TELEMETRY")) {
    const std::string v(env);
    if (!v.empty() && v != "0") on = 1;
  }
  g_telemetry.store(on, std::memory_order_relaxed);
  return on;
}

struct Sink {
  std::mutex mtx;
  std::string path_override;
  std::ofstream file;
  bool opened = false;
  std::deque<std::string> tail;
  std::uint64_t records = 0;
  std::map<std::string, std::deque<std::vector<double>>> histories;
};

Sink& sink() {
  static Sink s;
  return s;
}

}  // namespace

bool telemetry_enabled() {
  const int v = g_telemetry.load(std::memory_order_relaxed);
  return (v >= 0 ? v : telemetry_init()) != 0;
}

void set_telemetry(bool on) {
  g_telemetry.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string telemetry_path() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  if (!s.path_override.empty()) return s.path_override;
  if (const char* env = std::getenv("ALPS_TELEMETRY_OUT"))
    if (*env != '\0') return env;
  return "alps_telemetry.jsonl";
}

void set_telemetry_path(const std::string& path) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  s.path_override = path;
  if (s.opened) {
    s.file.close();
    s.opened = false;
  }
}

// ---- record builder ---------------------------------------------------

void TelemetryRecord::comma() {
  if (!body_.empty()) body_ += ", ";
}

TelemetryRecord& TelemetryRecord::field(const char* key, double v) {
  comma();
  // JSON has no NaN/Inf literal; a dying run (the flight-recorder case)
  // must still produce parseable lines, so non-finite becomes null.
  char buf[40] = "null";
  if (std::isfinite(v)) std::snprintf(buf, sizeof buf, "%.12g", v);
  body_ += '"' + std::string(key) + "\": " + buf;
  return *this;
}

TelemetryRecord& TelemetryRecord::field(const char* key, std::int64_t v) {
  comma();
  body_ += '"' + std::string(key) + "\": " + std::to_string(v);
  return *this;
}

TelemetryRecord& TelemetryRecord::field(const char* key, std::uint64_t v) {
  comma();
  body_ += '"' + std::string(key) + "\": " + std::to_string(v);
  return *this;
}

TelemetryRecord& TelemetryRecord::field(const char* key, int v) {
  return field(key, static_cast<std::int64_t>(v));
}

TelemetryRecord& TelemetryRecord::field(const char* key,
                                        const std::string& v) {
  comma();
  body_ += '"' + std::string(key) + "\": \"" + v + '"';
  return *this;
}

TelemetryRecord& TelemetryRecord::field_json(const char* key,
                                             const std::string& raw) {
  comma();
  body_ += '"' + std::string(key) + "\": " + raw;
  return *this;
}

TelemetryRecord& TelemetryRecord::field(const char* key,
                                        std::span<const std::int64_t> v) {
  comma();
  body_ += '"' + std::string(key) + "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) body_ += ", ";
    body_ += std::to_string(v[i]);
  }
  body_ += ']';
  return *this;
}

// ---- sink -------------------------------------------------------------

void telemetry_emit(const TelemetryRecord& rec) {
  const std::string line = rec.json();
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  s.records++;
  s.tail.push_back(line);
  if (s.tail.size() > kTailCapacity) s.tail.pop_front();
  if (!telemetry_enabled()) return;  // tail still records for the dump
  if (!s.opened) {
    std::string path = s.path_override;
    if (path.empty()) {
      if (const char* env = std::getenv("ALPS_TELEMETRY_OUT"))
        if (*env != '\0') path = env;
      if (path.empty()) path = "alps_telemetry.jsonl";
    }
    s.file.open(path, std::ios::trunc);
    if (!s.file)
      throw std::runtime_error("obs: cannot open telemetry output " + path);
    s.opened = true;
  }
  s.file << line << '\n';
  s.file.flush();  // a crashed run must keep its telemetry
}

std::vector<std::string> telemetry_tail() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  return {s.tail.begin(), s.tail.end()};
}

std::uint64_t telemetry_records() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  return s.records;
}

std::uint64_t telemetry_tail_bytes() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  std::uint64_t b = 0;
  for (const std::string& line : s.tail) b += line.capacity() + sizeof line;
  for (const auto& [name, q] : s.histories) {
    b += name.capacity() + sizeof(std::string);
    for (const auto& h : q) b += h.capacity() * sizeof(double) + sizeof h;
  }
  return b;
}

// ---- solver history registry ------------------------------------------

void record_history(const char* name, std::span<const double> values) {
  if (values.empty()) return;
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  auto& q = s.histories[name];
  q.emplace_back(values.begin(), values.end());
  if (q.size() > kHistoriesPerName) q.pop_front();
}

std::vector<std::pair<std::string, std::vector<std::vector<double>>>>
histories() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  std::vector<std::pair<std::string, std::vector<std::vector<double>>>> out;
  out.reserve(s.histories.size());
  for (const auto& [name, q] : s.histories)
    out.emplace_back(name, std::vector<std::vector<double>>(q.begin(), q.end()));
  return out;
}

void telemetry_reset_for_testing() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mtx);
  s.tail.clear();
  s.histories.clear();
  s.records = 0;
  if (s.opened) {
    s.file.close();
    s.opened = false;
  }
}

}  // namespace alps::obs
