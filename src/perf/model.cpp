#include "perf/model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace alps::perf {

MachineModel MachineModel::ranger() {
  MachineModel m;
  m.name = "TACC Ranger (2008): 2.3 GHz AMD Barcelona, SDR InfiniBand";
  m.alpha = 2.3e-6;
  m.beta = 1.0 / 950.0e6;
  m.core_flops = 2.1e9;
  // This repository's host is assumed roughly 2x one Ranger core for
  // FEM-type kernels; benches print the assumption with every table.
  m.host_core_ratio = 2.0;
  return m;
}

double contention_factor(const MachineModel& m, std::int64_t p,
                         std::int64_t base_cores) {
  if (p <= base_cores) return 1.0;
  const double fill =
      std::min(1.0, std::log2(static_cast<double>(p) / base_cores) /
                        std::log2(static_cast<double>(m.cores_per_node)));
  return 1.0 + (m.node_contention - 1.0) * fill;
}

double collective_time(const MachineModel& m, std::int64_t p,
                       std::int64_t bytes) {
  if (p <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(p)));
  return rounds * (m.alpha + m.sync + static_cast<double>(bytes) * m.beta);
}

double neighbor_time(const MachineModel& m, std::int64_t nmsg, double bytes) {
  return static_cast<double>(nmsg) * (m.alpha + m.sync) + bytes * m.beta;
}

double ghost_bytes_per_rank(std::int64_t elements_per_rank,
                            double bytes_per_face) {
  const double n23 =
      std::pow(static_cast<double>(elements_per_rank), 2.0 / 3.0);
  return 6.0 * n23 * bytes_per_face;
}

double phase_time(const MachineModel& m, const PhaseCost& c, std::int64_t p) {
  double t = c.work_seconds / static_cast<double>(p);
  t += static_cast<double>(c.collectives) *
       collective_time(m, p, c.collective_bytes);
  if (p > 1) t += neighbor_time(m, c.p2p_msgs_per_rank, c.p2p_bytes_per_rank);
  return t;
}

PhaseCost phase_cost_from_stats(const std::string& name, double work_seconds,
                                const par::CommStats& s, int nranks) {
  PhaseCost c;
  c.name = name;
  c.work_seconds = work_seconds;
  const std::int64_t p = std::max(1, nranks);
  // Each rank counts every collective it participates in once, so the
  // rank-summed call counters are nranks * logical rounds.
  const std::uint64_t coll_calls =
      (s.allreduce_calls + s.allgather_calls + s.alltoall_calls + s.barrier_calls);
  c.collectives = static_cast<std::int64_t>(coll_calls) / p;
  const std::uint64_t coll_bytes =
      s.allreduce_bytes + s.allgather_bytes + s.alltoall_bytes;
  if (coll_calls > 0)
    c.collective_bytes = static_cast<std::int64_t>(coll_bytes / coll_calls);
  c.p2p_msgs_per_rank = static_cast<std::int64_t>(s.p2p_messages) / p;
  c.p2p_bytes_per_rank = static_cast<double>(s.p2p_bytes) / static_cast<double>(p);
  return c;
}

double measure_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace alps::perf
