#pragma once
// Performance model used to synthesize large-core-count scaling curves
// (the hardware-gate substitution documented in DESIGN.md): per-kernel
// compute rates are MEASURED on the host, communication volumes are
// COUNTED by the par runtime or derived from the SFC partition's
// surface/volume geometry, and only the network parameters (latency,
// bandwidth, per-core flops of the paper's 2008-era Ranger system) come
// from the model.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "par/comm.hpp"

namespace alps::perf {

struct MachineModel {
  std::string name;
  double alpha = 2.3e-6;        // point-to-point hardware latency, seconds
  double beta = 1.0 / 950.0e6;  // seconds per byte per core (shared IB link)
  double core_flops = 2.1e9;    // sustained flops per core for FEM kernels
  // Effective per-communication-round software overhead: MPI stack,
  // synchronization, and OS noise (2008-era clusters; dominates alpha).
  double sync = 4.0e-5;
  // Memory-bandwidth contention multiplier on compute when all cores of a
  // node are busy (the paper's first scaling steps go from 1 to 16
  // cores/node and it notes the resource sharing explicitly).
  double node_contention = 1.35;
  int cores_per_node = 16;
  // Per-core performance of this host relative to one Ranger core; used
  // to translate measured host seconds into modeled Ranger-core seconds.
  double host_core_ratio = 1.0;

  /// TACC Ranger (paper hardware): 2.3 GHz AMD Barcelona, SDR InfiniBand.
  static MachineModel ranger();
};

/// Compute-slowdown factor at p cores when the base configuration used
/// one core per node: ramps from 1 to node_contention as nodes fill.
double contention_factor(const MachineModel& m, std::int64_t p,
                         std::int64_t base_cores);

/// Time of a tree-based reduction/broadcast collective of `bytes` payload
/// over p cores.
double collective_time(const MachineModel& m, std::int64_t p,
                       std::int64_t bytes);

/// Time for a rank to exchange `nmsg` messages totalling `bytes` with its
/// neighbors (latency + bandwidth).
double neighbor_time(const MachineModel& m, std::int64_t nmsg, double bytes);

/// Ghost-surface bytes per rank for an SFC partition: elements_per_rank
/// elements in a compact region expose ~6 (N/P)^(2/3) faces.
double ghost_bytes_per_rank(std::int64_t elements_per_rank,
                            double bytes_per_face);

/// One phase of an SPMD computation, in model units.
struct PhaseCost {
  std::string name;
  double work_seconds = 0.0;       // total serial work (Ranger-core seconds)
  std::int64_t collectives = 0;    // allreduce/allgather rounds
  std::int64_t collective_bytes = 8;
  std::int64_t p2p_msgs_per_rank = 0;
  double p2p_bytes_per_rank = 0.0;
};

/// Modeled wall-clock time of the phase on p cores (perfect work split +
/// modeled communication).
double phase_time(const MachineModel& m, const PhaseCost& c, std::int64_t p);

/// Derive a PhaseCost from the par runtime's measured traffic: collective
/// rounds and payloads, and per-rank p2p message/byte averages, for a run
/// at `nranks`. Counters in CommStats are summed over ranks and each rank
/// increments once per collective call, so calls are divided by nranks to
/// recover logical rounds. `work_seconds` stays the caller's measurement
/// (already in model units).
PhaseCost phase_cost_from_stats(const std::string& name, double work_seconds,
                                const par::CommStats& s, int nranks);

/// Measure the wall-clock seconds of a callable on this host.
double measure_seconds(const std::function<void()>& fn);

/// Convert measured host seconds to modeled Ranger-core seconds.
inline double to_model_seconds(const MachineModel& m, double host_seconds) {
  return host_seconds * m.host_core_ratio;
}

}  // namespace alps::perf
