#include "fem/hex8.hpp"

#include <cassert>
#include <cmath>

namespace alps::fem {

namespace {

// Reference coordinates of node i in [0,1]^3 (z-order).
constexpr double node_ref(int i, int d) { return (i >> d) & 1 ? 1.0 : 0.0; }

struct QuadTables {
  std::array<std::array<double, 8>, kQuad> n;        // N[q][i]
  std::array<std::array<Vec3, 8>, kQuad> dn_ref;     // ref gradients
  std::array<Vec3, kQuad> xi;                        // quad point coords
  std::array<double, kQuad> w;

  QuadTables() {
    const double a = 0.5 - 0.5 / std::sqrt(3.0);
    const double b = 0.5 + 0.5 / std::sqrt(3.0);
    const double g[2] = {a, b};
    for (int q = 0; q < kQuad; ++q) {
      const Vec3 x = {g[q & 1], g[(q >> 1) & 1], g[(q >> 2) & 1]};
      xi[static_cast<std::size_t>(q)] = x;
      w[static_cast<std::size_t>(q)] = 1.0 / 8.0;
      for (int i = 0; i < 8; ++i) {
        double val = 1.0;
        Vec3 grad = {1.0, 1.0, 1.0};
        for (int d = 0; d < 3; ++d) {
          const double r = node_ref(i, d);
          const double f = r * x[static_cast<std::size_t>(d)] +
                           (1.0 - r) * (1.0 - x[static_cast<std::size_t>(d)]);
          const double df = r * 1.0 + (1.0 - r) * -1.0;
          val *= f;
          for (int e = 0; e < 3; ++e)
            grad[static_cast<std::size_t>(e)] *= (e == d) ? df : f;
        }
        n[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] = val;
        dn_ref[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] = grad;
      }
    }
  }
};

const QuadTables& tables() {
  static const QuadTables t;
  return t;
}

}  // namespace

const std::array<std::array<double, 8>, kQuad>& shape_values() {
  return tables().n;
}

MappedQuad map_element(const ElemGeom& geom) {
  const QuadTables& t = tables();
  MappedQuad mq;
  for (int q = 0; q < kQuad; ++q) {
    // Jacobian J_de = d x_d / d xi_e.
    double j[3][3] = {};
    for (int i = 0; i < 8; ++i)
      for (int d = 0; d < 3; ++d)
        for (int e = 0; e < 3; ++e)
          j[d][e] += geom[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] *
                     t.dn_ref[static_cast<std::size_t>(q)]
                             [static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(e)];
    const double det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1]) -
                       j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0]) +
                       j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
    assert(det > 0.0);
    // Inverse transpose of J.
    double inv[3][3];
    inv[0][0] = (j[1][1] * j[2][2] - j[1][2] * j[2][1]) / det;
    inv[0][1] = (j[0][2] * j[2][1] - j[0][1] * j[2][2]) / det;
    inv[0][2] = (j[0][1] * j[1][2] - j[0][2] * j[1][1]) / det;
    inv[1][0] = (j[1][2] * j[2][0] - j[1][0] * j[2][2]) / det;
    inv[1][1] = (j[0][0] * j[2][2] - j[0][2] * j[2][0]) / det;
    inv[1][2] = (j[0][2] * j[1][0] - j[0][0] * j[1][2]) / det;
    inv[2][0] = (j[1][0] * j[2][1] - j[1][1] * j[2][0]) / det;
    inv[2][1] = (j[0][1] * j[2][0] - j[0][0] * j[2][1]) / det;
    inv[2][2] = (j[0][0] * j[1][1] - j[0][1] * j[1][0]) / det;
    for (int i = 0; i < 8; ++i) {
      Vec3 g = {};
      for (int d = 0; d < 3; ++d)
        for (int e = 0; e < 3; ++e)
          g[static_cast<std::size_t>(d)] +=
              inv[e][d] * t.dn_ref[static_cast<std::size_t>(q)]
                                  [static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(e)];
      mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] = g;
    }
    mq.jxw[static_cast<std::size_t>(q)] = det * t.w[static_cast<std::size_t>(q)];
    Vec3 x = {};
    for (int i = 0; i < 8; ++i)
      for (int d = 0; d < 3; ++d)
        x[static_cast<std::size_t>(d)] +=
            t.n[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] *
            geom[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
    mq.xq[static_cast<std::size_t>(q)] = x;
  }
  return mq;
}

double element_volume(const ElemGeom& geom) {
  const MappedQuad mq = map_element(geom);
  double v = 0.0;
  for (double w : mq.jxw) v += w;
  return v;
}

Mat8 stiffness(const MappedQuad& mq, std::span<const double, kQuad> eta_q) {
  Mat8 k{};
  for (int q = 0; q < kQuad; ++q) {
    const double c = eta_q[static_cast<std::size_t>(q)] *
                     mq.jxw[static_cast<std::size_t>(q)];
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j) {
        double dd = 0.0;
        for (int d = 0; d < 3; ++d)
          dd += mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(d)] *
                mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)]
                     [static_cast<std::size_t>(d)];
        k[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] += c * dd;
      }
  }
  return k;
}

Mat8 mass(const MappedQuad& mq) {
  const auto& n = shape_values();
  Mat8 m{};
  for (int q = 0; q < kQuad; ++q) {
    const double c = mq.jxw[static_cast<std::size_t>(q)];
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            c * n[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] *
            n[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)];
  }
  return m;
}

std::array<double, 8> lumped_mass(const MappedQuad& mq) {
  const Mat8 m = mass(mq);
  std::array<double, 8> l{};
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      l[static_cast<std::size_t>(i)] +=
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  return l;
}

std::array<std::array<double, 24>, 24> viscous_block(
    const MappedQuad& mq, std::span<const double, kQuad> eta_q) {
  std::array<std::array<double, 24>, 24> a{};
  for (int q = 0; q < kQuad; ++q) {
    const double c = 2.0 * eta_q[static_cast<std::size_t>(q)] *
                     mq.jxw[static_cast<std::size_t>(q)];
    const auto& dn = mq.dn[static_cast<std::size_t>(q)];
    // eps(u):eps(v) with u = phi_j e_c, v = phi_i e_d:
    //   0.5 (d_i,c d_j,d + delta_cd grad_i.grad_j) -- standard identity.
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j) {
        double gg = 0.0;
        for (int d = 0; d < 3; ++d)
          gg += dn[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] *
                dn[static_cast<std::size_t>(j)][static_cast<std::size_t>(d)];
        for (int ci = 0; ci < 3; ++ci)
          for (int cj = 0; cj < 3; ++cj) {
            double v = 0.5 * dn[static_cast<std::size_t>(i)]
                                [static_cast<std::size_t>(cj)] *
                       dn[static_cast<std::size_t>(j)]
                         [static_cast<std::size_t>(ci)];
            if (ci == cj) v += 0.5 * gg;
            a[static_cast<std::size_t>(3 * i + ci)]
             [static_cast<std::size_t>(3 * j + cj)] += c * v;
          }
      }
  }
  return a;
}

std::array<std::array<double, 24>, 8> divergence_block(const MappedQuad& mq) {
  const auto& n = shape_values();
  std::array<std::array<double, 24>, 8> b{};
  for (int q = 0; q < kQuad; ++q) {
    const double c = mq.jxw[static_cast<std::size_t>(q)];
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        for (int d = 0; d < 3; ++d)
          b[static_cast<std::size_t>(i)][static_cast<std::size_t>(3 * j + d)] -=
              c * n[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] *
              mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)]
                   [static_cast<std::size_t>(d)];
  }
  return b;
}

Mat8 pressure_stabilization(const MappedQuad& mq, double eta_bar) {
  const Mat8 m = mass(mq);
  double vol = 0.0;
  for (double w : mq.jxw) vol += w;
  std::array<double, 8> rowsum{};
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      rowsum[static_cast<std::size_t>(i)] +=
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  Mat8 c{};
  const double s = 1.0 / eta_bar;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          s * (m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -
               rowsum[static_cast<std::size_t>(i)] *
                   rowsum[static_cast<std::size_t>(j)] / vol);
  return c;
}

void advection_supg(const MappedQuad& mq,
                    const std::array<Vec3, 8>& vel_nodes, double kappa,
                    double tau, Mat8& advect, Mat8& supg_mass) {
  const auto& n = shape_values();
  advect = Mat8{};
  supg_mass = Mat8{};
  for (int q = 0; q < kQuad; ++q) {
    const double c = mq.jxw[static_cast<std::size_t>(q)];
    Vec3 u = {};
    for (int i = 0; i < 8; ++i)
      for (int d = 0; d < 3; ++d)
        u[static_cast<std::size_t>(d)] +=
            n[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] *
            vel_nodes[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
    std::array<double, 8> ugrad{};
    for (int i = 0; i < 8; ++i)
      for (int d = 0; d < 3; ++d)
        ugrad[static_cast<std::size_t>(i)] +=
            u[static_cast<std::size_t>(d)] *
            mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)]
                 [static_cast<std::size_t>(d)];
    for (int i = 0; i < 8; ++i) {
      const double test = n[static_cast<std::size_t>(q)]
                           [static_cast<std::size_t>(i)] +
                          tau * ugrad[static_cast<std::size_t>(i)];
      for (int j = 0; j < 8; ++j) {
        double val = test * ugrad[static_cast<std::size_t>(j)];
        double diff = 0.0;
        for (int d = 0; d < 3; ++d)
          diff += mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(d)] *
                  mq.dn[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)]
                       [static_cast<std::size_t>(d)];
        advect[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            c * (val + kappa * diff);
        supg_mass[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            c * test *
            n[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)];
      }
    }
  }
}

double supg_tau(double h, double speed, double kappa) {
  if (speed <= 1e-30) return 0.0;
  const double pe = speed * h / (2.0 * std::max(kappa, 1e-300));
  double zeta;
  if (pe < 1e-4)
    zeta = pe / 3.0;  // coth(x) - 1/x ~ x/3
  else if (pe > 30.0)
    zeta = 1.0 - 1.0 / pe;
  else
    zeta = 1.0 / std::tanh(pe) - 1.0 / pe;
  return h / (2.0 * speed) * zeta;
}

}  // namespace alps::fem
