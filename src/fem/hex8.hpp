#pragma once
// Trilinear (Q1) hexahedral element kernels (paper Sec. III): shape
// functions on 2x2x2 Gauss quadrature, and the element matrices for the
// stabilized variable-viscosity Stokes system and the SUPG
// advection-diffusion equation. Node order is z-order (bit0 -> +x).

#include <array>
#include <span>

namespace alps::fem {

inline constexpr int kNodes = 8;
inline constexpr int kQuad = 8;  // 2x2x2 Gauss points

using Mat8 = std::array<std::array<double, 8>, 8>;
using Vec3 = std::array<double, 3>;
using ElemGeom = std::array<Vec3, 8>;  // physical corner positions

/// Shape function values at the quadrature points: N[q][i].
const std::array<std::array<double, 8>, kQuad>& shape_values();

/// Quadrature data evaluated on a trilinearly-mapped element.
struct MappedQuad {
  // dN[q][i] = physical gradient of shape i at quad point q.
  std::array<std::array<Vec3, 8>, kQuad> dn;
  std::array<double, kQuad> jxw;  // |J| * weight
  std::array<Vec3, kQuad> xq;     // physical position of the point
};

MappedQuad map_element(const ElemGeom& geom);

double element_volume(const ElemGeom& geom);

/// Scalar variable-viscosity stiffness: K_ij = int eta grad(phi_i).grad(phi_j).
/// `eta_q` holds the viscosity at the 8 quadrature points.
Mat8 stiffness(const MappedQuad& mq, std::span<const double, kQuad> eta_q);

/// Consistent mass matrix: M_ij = int phi_i phi_j.
Mat8 mass(const MappedQuad& mq);

/// Row-sum lumped mass vector.
std::array<double, 8> lumped_mass(const MappedQuad& mq);

/// Full viscous block for Stokes: A = int 2 eta eps(u):eps(v), 24x24 with
/// dof order (node-major, component-minor): dof = 3*node + comp.
std::array<std::array<double, 24>, 24> viscous_block(
    const MappedQuad& mq, std::span<const double, kQuad> eta_q);

/// Discrete divergence coupling: B_(p i)(u j,c) = -int phi_i d(phi_j)/dx_c.
/// (The transpose couples pressure gradients back to momentum.)
std::array<std::array<double, 24>, 8> divergence_block(const MappedQuad& mq);

/// Dohrmann-Bochev polynomial pressure projection stabilization:
/// C = (1/eta_bar) (M - m m^T / vol), projecting out the non-constant
/// pressure modes at the element level.
Mat8 pressure_stabilization(const MappedQuad& mq, double eta_bar);

/// SUPG advection-diffusion operator and consistent SUPG mass:
///   L_ij = int (u.grad phi_j)(phi_i + tau u.grad phi_i)
///        + int kappa grad(phi_i).grad(phi_j)
///   Ms_ij = int phi_j (phi_i + tau u.grad phi_i)
/// `vel_nodes[i]` is the velocity at element node i (interpolated to
/// quadrature points internally); tau is the SUPG parameter.
void advection_supg(const MappedQuad& mq,
                    const std::array<Vec3, 8>& vel_nodes, double kappa,
                    double tau, Mat8& advect, Mat8& supg_mass);

/// Standard SUPG parameter for element size h, speed |u|, diffusivity k:
/// tau = h / (2|u|) * (coth(Pe) - 1/Pe) with Pe = |u| h / (2k); safe limits
/// at Pe -> 0 and k -> 0.
double supg_tau(double h, double speed, double kappa);

}  // namespace alps::fem
