#include "fem/assembly.hpp"

#include <algorithm>

namespace alps::fem {

void ElementOperator::gather_element(std::size_t e, std::span<const double> x,
                                     std::span<double> xe) const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (int i = 0; i < 8; ++i) {
    const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
    for (std::size_t c = 0; c < nc; ++c) {
      double v = 0.0;
      for (int k = 0; k < cc.n; ++k)
        v += cc.w[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]) * nc + c];
      xe[static_cast<std::size_t>(i) * nc + c] = v;
    }
  }
}

void ElementOperator::scatter_element(std::size_t e, std::span<const double> ye,
                                      std::span<double> y) const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (int i = 0; i < 8; ++i) {
    const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
    for (std::size_t c = 0; c < nc; ++c) {
      const double v = ye[static_cast<std::size_t>(i) * nc + c];
      for (int k = 0; k < cc.n; ++k)
        y[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]) * nc + c] +=
            cc.w[static_cast<std::size_t>(k)] * v;
    }
  }
}

void ElementOperator::apply_raw(par::Comm& comm, std::span<const double> x,
                                std::span<double> y) const {
  const std::size_t bs = block_size();
  std::fill(y.begin(), y.end(), 0.0);
  work_xe_.resize(bs);
  work_ye_.resize(bs);
  std::span<double> xe(work_xe_), ye(work_ye_);
  for (std::size_t e = 0; e < mesh_->elements.size(); ++e) {
    gather_element(e, x, xe);
    const std::span<const double> m = element_matrix(e);
    for (std::size_t i = 0; i < bs; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < bs; ++j) s += m[i * bs + j] * xe[j];
      ye[i] = s;
    }
    scatter_element(e, ye, y);
  }
  mesh_->accumulate(comm, y, ncomp_);
  mesh_->exchange(comm, y, ncomp_);
}

void ElementOperator::apply(par::Comm& comm, std::span<const double> x,
                            std::span<double> y) const {
  // Zero constrained inputs, apply, then restore identity on them. The
  // masked copy lives in a reused member workspace: apply runs every
  // Krylov iteration and must not allocate.
  work_x_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    work_x_[i] = dirichlet_[i] ? 0.0 : x[i];
  apply_raw(comm, work_x_, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    if (dirichlet_[i]) y[i] = x[i];
}

double ElementOperator::dot(par::Comm& comm, std::span<const double> a,
                            std::span<const double> b) const {
  const std::size_t owned =
      static_cast<std::size_t>(mesh_->n_owned) * static_cast<std::size_t>(ncomp_);
  double s = 0.0;
  for (std::size_t i = 0; i < owned; ++i) s += a[i] * b[i];
  return comm.allreduce_sum(s);
}

void ElementOperator::lift_bcs(par::Comm& comm, std::span<const double> g,
                               std::span<double> b) const {
  work_ax_.resize(b.size());
  apply_raw(comm, g, work_ax_);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (dirichlet_[i])
      b[i] = g[i];
    else
      b[i] -= work_ax_[i];
  }
}

std::vector<la::Triplet> ElementOperator::local_triplets() const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  std::vector<la::Triplet> trips;
  const std::size_t bs = block_size();
  for (std::size_t e = 0; e < mesh_->elements.size(); ++e) {
    const std::span<const double> m = element_matrix(e);
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& ci = mesh_->corners[e][static_cast<std::size_t>(i)];
      for (int j = 0; j < 8; ++j) {
        const mesh::Corner& cj = mesh_->corners[e][static_cast<std::size_t>(j)];
        for (std::size_t a = 0; a < nc; ++a)
          for (std::size_t bcomp = 0; bcomp < nc; ++bcomp) {
            const double v = m[(static_cast<std::size_t>(i) * nc + a) * bs +
                               static_cast<std::size_t>(j) * nc + bcomp];
            if (v == 0.0) continue;
            for (int ki = 0; ki < ci.n; ++ki) {
              const std::int32_t di = ci.dof[static_cast<std::size_t>(ki)];
              if (dirichlet_[static_cast<std::size_t>(di) * nc + a]) continue;
              for (int kj = 0; kj < cj.n; ++kj) {
                const std::int32_t dj = cj.dof[static_cast<std::size_t>(kj)];
                if (dirichlet_[static_cast<std::size_t>(dj) * nc + bcomp])
                  continue;
                trips.push_back(la::Triplet{
                    mesh_->dof_gids[static_cast<std::size_t>(di)] * ncomp_ +
                        static_cast<std::int64_t>(a),
                    mesh_->dof_gids[static_cast<std::size_t>(dj)] * ncomp_ +
                        static_cast<std::int64_t>(bcomp),
                    ci.w[static_cast<std::size_t>(ki)] *
                        cj.w[static_cast<std::size_t>(kj)] * v});
              }
            }
          }
      }
    }
  }
  // Identity rows for owned Dirichlet values.
  for (std::int64_t d = 0; d < mesh_->n_owned; ++d)
    for (std::size_t c = 0; c < nc; ++c)
      if (dirichlet_[static_cast<std::size_t>(d) * nc + c]) {
        const std::int64_t g =
            mesh_->dof_gids[static_cast<std::size_t>(d)] * ncomp_ +
            static_cast<std::int64_t>(c);
        trips.push_back(la::Triplet{g, g, 1.0});
      }
  return trips;
}

la::DistCsr ElementOperator::assemble_dist(par::Comm& comm) const {
  // Owned value gids are [gid_offset * ncomp, (gid_offset + n_owned) *
  // ncomp) and rank-contiguous, so the ownership partition comes straight
  // from an allgather of the per-rank offsets.
  const std::vector<std::int64_t> starts = comm.allgather(
      mesh_->gid_offset * static_cast<std::int64_t>(ncomp_));
  std::vector<std::int64_t> offsets(starts.begin(), starts.end());
  offsets.push_back(mesh_->n_global * ncomp_);
  return la::DistCsr::from_triplets(comm, offsets, offsets, local_triplets());
}

la::Csr ElementOperator::assemble_global(par::Comm& comm) const {
  const std::int64_t n = mesh_->n_global * ncomp_;
  std::vector<la::Triplet> all = comm.allgatherv(local_triplets());
  return la::Csr::from_triplets(n, n, std::move(all));
}

}  // namespace alps::fem
