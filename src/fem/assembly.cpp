#include "fem/assembly.hpp"

#include <algorithm>
#include <cassert>

#include "obs/histogram.hpp"
#include "obs/hwcounters.hpp"

namespace alps::fem {

// ---- scalar reference path ----------------------------------------------

void ElementOperator::gather_element(std::size_t e, std::span<const double> x,
                                     std::span<double> xe) const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (int i = 0; i < 8; ++i) {
    const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
    for (std::size_t c = 0; c < nc; ++c) {
      double v = 0.0;
      for (int k = 0; k < cc.n; ++k)
        v += cc.w[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]) * nc + c];
      xe[static_cast<std::size_t>(i) * nc + c] = v;
    }
  }
}

void ElementOperator::scatter_element(std::size_t e, std::span<const double> ye,
                                      std::span<double> y) const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  for (int i = 0; i < 8; ++i) {
    const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
    for (std::size_t c = 0; c < nc; ++c) {
      const double v = ye[static_cast<std::size_t>(i) * nc + c];
      for (int k = 0; k < cc.n; ++k)
        y[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]) * nc + c] +=
            cc.w[static_cast<std::size_t>(k)] * v;
    }
  }
}

void ElementOperator::apply_raw_scalar(par::Comm& comm,
                                       std::span<const double> x,
                                       std::span<double> y) const {
  const std::size_t bs = block_size();
  std::fill(y.begin(), y.end(), 0.0);
  work_xe_.resize(bs);
  work_ye_.resize(bs);
  std::span<double> xe(work_xe_.data(), bs), ye(work_ye_.data(), bs);
  for (std::size_t e = 0; e < mesh_->elements.size(); ++e) {
    gather_element(e, x, xe);
    const std::span<const double> m = element_matrix(e);
    for (std::size_t i = 0; i < bs; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < bs; ++j) s += m[i * bs + j] * xe[j];
      ye[i] = s;
    }
    scatter_element(e, ye, y);
  }
  mesh_->accumulate(comm, y, ncomp_);
  mesh_->exchange(comm, y, ncomp_);
}

void ElementOperator::apply_scalar(par::Comm& comm, std::span<const double> x,
                                   std::span<double> y) const {
  // Zero constrained inputs, apply, then restore identity on them. The
  // masked copy lives in a reused member workspace.
  work_x_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    work_x_[i] = dirichlet_[i] ? 0.0 : x[i];
  apply_raw_scalar(comm, work_x_, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    if (dirichlet_[i]) y[i] = x[i];
}

// ---- lane-batched SoA plan ----------------------------------------------

namespace {

// The default build targets baseline x86-64 (16-byte vectors). The batch
// kernel is the one genuinely compute-bound loop nest in the apply path,
// so let GCC emit AVX2/AVX-512 clones of it and dispatch by CPU at load
// time — the portable binary then runs 4- or 8-wide on the machines that
// have it without a -march=native build.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define ALPS_APPLY_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define ALPS_APPLY_CLONES
#endif

/// Gather + lane-interleaved matvec + scatter for ONE batch of kLanes
/// elements. bs = 8*nc, ns = max constraint fan-in of the batch.
ALPS_APPLY_CLONES
void batch_kernel(std::size_t bs, std::size_t nc, std::size_t ns,
                  const double* __restrict A, const std::int32_t* __restrict gb,
                  const double* __restrict w, const double* __restrict x,
                  double* __restrict xe, double* __restrict ye,
                  double* __restrict y) {
  constexpr std::size_t L = fem::ElementOperator::kLanes;

  // Gather through the flattened constraint table: replaces the
  // pointer-chasing Corner walk of the scalar path. Pad slots/lanes have
  // zero weight and dof base 0, so they add exactly 0.0.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t c = 0; c < nc; ++c) {
      double acc[L] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t k = 0; k < ns; ++k) {
        const std::size_t s = i * 4 + k;
        for (std::size_t l = 0; l < L; ++l)
          acc[l] += w[(s * nc + c) * L + l] *
                    x[static_cast<std::size_t>(gb[s * L + l]) + c];
      }
      for (std::size_t l = 0; l < L; ++l) xe[(i * nc + c) * L + l] = acc[l];
    }
  }

  // Lane-interleaved dense matvec: the l-loops are independent element
  // columns, so they vectorize without FP reassociation; four j-chains
  // give the FMA units independent accumulators to hide latency.
  for (std::size_t i = 0; i < bs; ++i) {
    const double* row = A + i * bs * L;
    double a0[L] = {0.0, 0.0, 0.0, 0.0}, a1[L] = {0.0, 0.0, 0.0, 0.0};
    double a2[L] = {0.0, 0.0, 0.0, 0.0}, a3[L] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = 0; j < bs; j += 4) {
      for (std::size_t l = 0; l < L; ++l)
        a0[l] += row[j * L + l] * xe[j * L + l];
      for (std::size_t l = 0; l < L; ++l)
        a1[l] += row[(j + 1) * L + l] * xe[(j + 1) * L + l];
      for (std::size_t l = 0; l < L; ++l)
        a2[l] += row[(j + 2) * L + l] * xe[(j + 2) * L + l];
      for (std::size_t l = 0; l < L; ++l)
        a3[l] += row[(j + 3) * L + l] * xe[(j + 3) * L + l];
    }
    for (std::size_t l = 0; l < L; ++l)
      ye[i * L + l] = (a0[l] + a1[l]) + (a2[l] + a3[l]);
  }

  // Scatter C^T: lanes may share dofs (neighboring elements), so the
  // l-loop stays sequential; weights already carry the Dirichlet mask.
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t c = 0; c < nc; ++c)
      for (std::size_t k = 0; k < ns; ++k) {
        const std::size_t s = i * 4 + k;
        for (std::size_t l = 0; l < L; ++l)
          y[static_cast<std::size_t>(gb[s * L + l]) + c] +=
              w[(s * nc + c) * L + l] * ye[(i * nc + c) * L + l];
      }
}

/// Same as batch_kernel but A holds only the upper triangle (row-wise,
/// diagonal first): each loaded entry a_ij feeds both ye_i += a*xe_j and
/// ye_j += a*xe_i, halving the matrix traffic of the memory-bound matvec.
ALPS_APPLY_CLONES
void batch_kernel_sym(std::size_t bs, std::size_t nc, std::size_t ns,
                      const double* __restrict A,
                      const std::int32_t* __restrict gb,
                      const double* __restrict w, const double* __restrict x,
                      double* __restrict xe, double* __restrict ye,
                      double* __restrict y) {
  constexpr std::size_t L = fem::ElementOperator::kLanes;

  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t c = 0; c < nc; ++c) {
      double acc[L] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t k = 0; k < ns; ++k) {
        const std::size_t s = i * 4 + k;
        for (std::size_t l = 0; l < L; ++l)
          acc[l] += w[(s * nc + c) * L + l] *
                    x[static_cast<std::size_t>(gb[s * L + l]) + c];
      }
      for (std::size_t l = 0; l < L; ++l) xe[(i * nc + c) * L + l] = acc[l];
    }
  }

  // ye accumulates below-diagonal contributions as the rows above stream
  // by, so it must start at zero.
  for (std::size_t i = 0; i < bs * L; ++i) ye[i] = 0.0;
  const double* arow = A;
  for (std::size_t i = 0; i < bs; ++i) {
    const std::size_t rowlen = bs - i;  // diagonal + strict upper
    double acc0[L] = {0.0, 0.0, 0.0, 0.0}, acc1[L] = {0.0, 0.0, 0.0, 0.0};
    double accd[L];
    for (std::size_t l = 0; l < L; ++l)
      accd[l] = arow[l] * xe[i * L + l];  // diagonal term
    std::size_t dj = 1;
    for (; dj + 1 < rowlen; dj += 2) {
      for (std::size_t l = 0; l < L; ++l) {
        const double a = arow[dj * L + l];
        acc0[l] += a * xe[(i + dj) * L + l];
        ye[(i + dj) * L + l] += a * xe[i * L + l];
      }
      for (std::size_t l = 0; l < L; ++l) {
        const double a = arow[(dj + 1) * L + l];
        acc1[l] += a * xe[(i + dj + 1) * L + l];
        ye[(i + dj + 1) * L + l] += a * xe[i * L + l];
      }
    }
    for (; dj < rowlen; ++dj)
      for (std::size_t l = 0; l < L; ++l) {
        const double a = arow[dj * L + l];
        acc0[l] += a * xe[(i + dj) * L + l];
        ye[(i + dj) * L + l] += a * xe[i * L + l];
      }
    for (std::size_t l = 0; l < L; ++l)
      ye[i * L + l] += accd[l] + (acc0[l] + acc1[l]);
    arow += rowlen * L;
  }

  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t c = 0; c < nc; ++c)
      for (std::size_t k = 0; k < ns; ++k) {
        const std::size_t s = i * 4 + k;
        for (std::size_t l = 0; l < L; ++l)
          y[static_cast<std::size_t>(gb[s * L + l]) + c] +=
              w[(s * nc + c) * L + l] * ye[(i * nc + c) * L + l];
      }
}

}  // namespace

void ElementOperator::ensure_plan() const {
  if (plan_dirty_) build_plan();
}

void ElementOperator::build_plan() const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  const std::size_t bs = block_size();
  const std::size_t ne = mesh_->elements.size();
  constexpr std::size_t L = kLanes;

  // Classify: an element is boundary iff any gather slot (corner dof or
  // hanging-constraint master) is a ghost — only those elements write the
  // ghost slots the accumulate ships, so the interior set is free to
  // stream while the halo is in flight.
  std::vector<std::int32_t> order;
  order.reserve(ne);
  std::size_t n_boundary = 0;
  for (std::size_t e = 0; e < ne; ++e) {
    bool boundary = false;
    for (int i = 0; i < 8 && !boundary; ++i) {
      const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
      for (int k = 0; k < cc.n; ++k)
        if (!mesh_->is_owned(cc.dof[static_cast<std::size_t>(k)])) {
          boundary = true;
          break;
        }
    }
    if (boundary) {
      order.push_back(static_cast<std::int32_t>(e));
      ++n_boundary;
    }
  }
  for (std::size_t e = 0; e < ne; ++e) {
    bool boundary = false;
    for (int i = 0; i < 8 && !boundary; ++i) {
      const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
      for (int k = 0; k < cc.n; ++k)
        if (!mesh_->is_owned(cc.dof[static_cast<std::size_t>(k)])) {
          boundary = true;
          break;
        }
    }
    if (!boundary) order.push_back(static_cast<std::int32_t>(e));
  }

  // Exact symmetry scan: one mismatch anywhere selects the full layout.
  bool symmetric = true;
  for (std::size_t e = 0; e < ne && symmetric; ++e) {
    const double* m = mats_.data() + e * bs * bs;
    for (std::size_t i = 0; i < bs && symmetric; ++i)
      for (std::size_t j = i + 1; j < bs; ++j)
        if (m[i * bs + j] != m[j * bs + i]) {
          symmetric = false;
          break;
        }
  }

  Plan& p = plan_;
  p.symmetric = symmetric;
  p.n_boundary = n_boundary;
  p.n_interior = ne - n_boundary;
  p.boundary_batches = (n_boundary + L - 1) / L;
  p.n_batches = p.boundary_batches + (p.n_interior + L - 1) / L;
  const std::size_t msize = symmetric ? bs * (bs + 1) / 2 : bs * bs;
  p.mats.assign(p.n_batches * msize * L, 0.0);
  p.gbase.assign(p.n_batches * 32 * L, 0);
  p.w_raw.assign(p.n_batches * 32 * nc * L, 0.0);
  p.w_bc.assign(p.n_batches * 32 * nc * L, 0.0);
  p.slots.assign(p.n_batches, 1);

  const auto pack_lane = [&](std::size_t batch, std::size_t lane,
                             std::size_t e) {
    const double* m = mats_.data() + e * bs * bs;
    double* mb = p.mats.data() + batch * msize * L;
    if (symmetric) {
      std::size_t t = 0;
      for (std::size_t i = 0; i < bs; ++i)
        for (std::size_t j = i; j < bs; ++j) mb[t++ * L + lane] = m[i * bs + j];
    } else {
      for (std::size_t ij = 0; ij < bs * bs; ++ij) mb[ij * L + lane] = m[ij];
    }
    std::int32_t* gb = p.gbase.data() + batch * 32 * L;
    double* wr = p.w_raw.data() + batch * 32 * nc * L;
    double* wb = p.w_bc.data() + batch * 32 * nc * L;
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = mesh_->corners[e][static_cast<std::size_t>(i)];
      if (cc.n > p.slots[batch])
        p.slots[batch] = static_cast<std::uint8_t>(cc.n);
      for (int k = 0; k < cc.n; ++k) {
        const std::size_t s = static_cast<std::size_t>(i) * 4 +
                              static_cast<std::size_t>(k);
        const std::size_t d =
            static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)]);
        const double w = cc.w[static_cast<std::size_t>(k)];
        gb[s * L + lane] = static_cast<std::int32_t>(d * nc);
        for (std::size_t c = 0; c < nc; ++c) {
          wr[(s * nc + c) * L + lane] = w;
          wb[(s * nc + c) * L + lane] = dirichlet_[d * nc + c] ? 0.0 : w;
        }
      }
    }
  };

  std::size_t cursor = 0;
  for (std::size_t idx = 0; idx < n_boundary; ++idx, ++cursor)
    pack_lane(idx / L, idx % L, static_cast<std::size_t>(order[cursor]));
  for (std::size_t idx = 0; idx < p.n_interior; ++idx, ++cursor)
    pack_lane(p.boundary_batches + idx / L, idx % L,
              static_cast<std::size_t>(order[cursor]));

  p.owned_dirichlet.clear();
  const std::size_t owned = static_cast<std::size_t>(mesh_->n_owned) * nc;
  for (std::size_t i = 0; i < owned; ++i)
    if (dirichlet_[i]) p.owned_dirichlet.push_back(static_cast<std::int32_t>(i));

  work_xe_.resize(bs * L);
  work_ye_.resize(bs * L);
  plan_dirty_ = false;
}

void ElementOperator::run_batches(std::size_t b0, std::size_t b1,
                                  const double* weights,
                                  std::span<const double> x,
                                  std::span<double> y) const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  const std::size_t bs = block_size();
  constexpr std::size_t L = kLanes;
  assert(bs % 4 == 0);
  double* xe = work_xe_.data();
  double* ye = work_ye_.data();
  const Plan& p = plan_;
  const std::size_t msize = p.symmetric ? bs * (bs + 1) / 2 : bs * bs;
  for (std::size_t b = b0; b < b1; ++b) {
    const double* A = p.mats.data() + b * msize * L;
    const std::int32_t* gb = p.gbase.data() + b * 32 * L;
    const double* w = weights + b * 32 * nc * L;
    if (p.symmetric)
      batch_kernel_sym(bs, nc, p.slots[b], A, gb, w, x.data(), xe, ye,
                       y.data());
    else
      batch_kernel(bs, nc, p.slots[b], A, gb, w, x.data(), xe, ye, y.data());
  }
}

void ElementOperator::apply_batched(par::Comm& comm, const double* weights,
                                    std::span<const double> x,
                                    std::span<double> y) const {
  const Plan& p = plan_;
  std::fill(y.begin(), y.end(), 0.0);
  // Boundary elements first: once they are done the ghost slots are
  // final, so the accumulate can ship while the interior set streams.
  run_batches(0, p.boundary_batches, weights, x, y);
  mesh_->accumulate_start(comm, y, ncomp_);
  run_batches(p.boundary_batches, p.n_batches, weights, x, y);
  mesh_->accumulate_finish(comm, y, ncomp_);
}

void ElementOperator::apply_raw(par::Comm& comm, std::span<const double> x,
                                std::span<double> y) const {
  ensure_plan();
  OBS_HW_SPAN("fem.apply");
  OBS_HIST_SPAN("fem.apply");
  apply_batched(comm, plan_.w_raw.data(), x, y);
  mesh_->exchange_start(comm, y, ncomp_);
  mesh_->exchange_finish(comm, y, ncomp_);
}

void ElementOperator::apply(par::Comm& comm, std::span<const double> x,
                            std::span<double> y) const {
  ensure_plan();
  OBS_HW_SPAN("fem.apply");
  OBS_HIST_SPAN("fem.apply");
  apply_batched(comm, plan_.w_bc.data(), x, y);
  // Identity rows: the masked weights dropped every contribution into a
  // constrained row, so owned Dirichlet values are restored from x before
  // the exchange packs them — ghost copies then arrive from their owners
  // with the same value (x is ghost-consistent). No O(n) masking pass.
  for (std::int32_t i : plan_.owned_dirichlet)
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  mesh_->exchange_start(comm, y, ncomp_);
  mesh_->exchange_finish(comm, y, ncomp_);
}

double ElementOperator::dot(par::Comm& comm, std::span<const double> a,
                            std::span<const double> b) const {
  const std::size_t owned =
      static_cast<std::size_t>(mesh_->n_owned) * static_cast<std::size_t>(ncomp_);
  const double s = la::pairwise_dot(a.first(owned), b.first(owned));
  return comm.allreduce_sum(s);
}

void ElementOperator::multi_dot(par::Comm& comm,
                                std::span<const la::DotPair> pairs,
                                std::span<double> out) const {
  const std::size_t owned =
      static_cast<std::size_t>(mesh_->n_owned) * static_cast<std::size_t>(ncomp_);
  double local[8];
  assert(pairs.size() <= 8);
  for (std::size_t k = 0; k < pairs.size(); ++k)
    local[k] =
        la::pairwise_dot(pairs[k].a.first(owned), pairs[k].b.first(owned));
  comm.allreduce_sum(std::span<const double>(local, pairs.size()), out);
}

void ElementOperator::lift_bcs(par::Comm& comm, std::span<const double> g,
                               std::span<double> b) const {
  work_ax_.resize(b.size());
  apply_raw(comm, g, work_ax_);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (dirichlet_[i])
      b[i] = g[i];
    else
      b[i] -= work_ax_[i];
  }
}

std::vector<la::Triplet> ElementOperator::local_triplets() const {
  const std::size_t nc = static_cast<std::size_t>(ncomp_);
  std::vector<la::Triplet> trips;
  const std::size_t bs = block_size();
  for (std::size_t e = 0; e < mesh_->elements.size(); ++e) {
    const std::span<const double> m = element_matrix(e);
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& ci = mesh_->corners[e][static_cast<std::size_t>(i)];
      for (int j = 0; j < 8; ++j) {
        const mesh::Corner& cj = mesh_->corners[e][static_cast<std::size_t>(j)];
        for (std::size_t a = 0; a < nc; ++a)
          for (std::size_t bcomp = 0; bcomp < nc; ++bcomp) {
            const double v = m[(static_cast<std::size_t>(i) * nc + a) * bs +
                               static_cast<std::size_t>(j) * nc + bcomp];
            if (v == 0.0) continue;
            for (int ki = 0; ki < ci.n; ++ki) {
              const std::int32_t di = ci.dof[static_cast<std::size_t>(ki)];
              if (dirichlet_[static_cast<std::size_t>(di) * nc + a]) continue;
              for (int kj = 0; kj < cj.n; ++kj) {
                const std::int32_t dj = cj.dof[static_cast<std::size_t>(kj)];
                if (dirichlet_[static_cast<std::size_t>(dj) * nc + bcomp])
                  continue;
                trips.push_back(la::Triplet{
                    mesh_->dof_gids[static_cast<std::size_t>(di)] * ncomp_ +
                        static_cast<std::int64_t>(a),
                    mesh_->dof_gids[static_cast<std::size_t>(dj)] * ncomp_ +
                        static_cast<std::int64_t>(bcomp),
                    ci.w[static_cast<std::size_t>(ki)] *
                        cj.w[static_cast<std::size_t>(kj)] * v});
              }
            }
          }
      }
    }
  }
  // Identity rows for owned Dirichlet values.
  for (std::int64_t d = 0; d < mesh_->n_owned; ++d)
    for (std::size_t c = 0; c < nc; ++c)
      if (dirichlet_[static_cast<std::size_t>(d) * nc + c]) {
        const std::int64_t g =
            mesh_->dof_gids[static_cast<std::size_t>(d)] * ncomp_ +
            static_cast<std::int64_t>(c);
        trips.push_back(la::Triplet{g, g, 1.0});
      }
  return trips;
}

la::DistCsr ElementOperator::assemble_dist(par::Comm& comm) const {
  // Owned value gids are [gid_offset * ncomp, (gid_offset + n_owned) *
  // ncomp) and rank-contiguous, so the ownership partition comes straight
  // from an allgather of the per-rank offsets.
  const std::vector<std::int64_t> starts = comm.allgather(
      mesh_->gid_offset * static_cast<std::int64_t>(ncomp_));
  std::vector<std::int64_t> offsets(starts.begin(), starts.end());
  offsets.push_back(mesh_->n_global * ncomp_);
  return la::DistCsr::from_triplets(comm, offsets, offsets, local_triplets());
}

la::Csr ElementOperator::assemble_global(par::Comm& comm) const {
  const std::int64_t n = mesh_->n_global * ncomp_;
  std::vector<la::Triplet> all = comm.allgatherv(local_triplets());
  return la::Csr::from_triplets(n, n, std::move(all));
}

}  // namespace alps::fem
