#pragma once
// Distributed finite-element operator machinery. Element matrices are
// stored per local element; hanging-node constraints are applied at the
// element level (gather C x, element matvec, scatter C^T y), exactly the
// strategy the paper describes. Dirichlet conditions are eliminated
// symmetrically (identity rows/columns).
//
// Multi-component fields use node-major layout: value index =
// local_dof * ncomp + component.

#include <span>
#include <vector>

#include "la/csr.hpp"
#include "la/dist_csr.hpp"
#include "la/krylov.hpp"
#include "mesh/mesh.hpp"

namespace alps::fem {

class ElementOperator {
 public:
  ElementOperator(const mesh::Mesh* m, int ncomp)
      : mesh_(m), ncomp_(ncomp),
        mats_(m->elements.size() * block_size() * block_size(), 0.0),
        dirichlet_(static_cast<std::size_t>(m->n_local) * ncomp, 0) {}

  int ncomp() const { return ncomp_; }
  std::size_t block_size() const { return 8 * static_cast<std::size_t>(ncomp_); }
  const mesh::Mesh& mesh() const { return *mesh_; }

  /// Mutable element matrix block e, row-major (8*ncomp)^2.
  std::span<double> element_matrix(std::size_t e) {
    const std::size_t b = block_size() * block_size();
    return std::span<double>(mats_).subspan(e * b, b);
  }
  std::span<const double> element_matrix(std::size_t e) const {
    const std::size_t b = block_size() * block_size();
    return std::span<const double>(mats_).subspan(e * b, b);
  }

  /// Mark value (dof, comp) as Dirichlet-constrained.
  void set_dirichlet(std::int64_t dof, int comp) {
    dirichlet_[static_cast<std::size_t>(dof) * ncomp_ +
               static_cast<std::size_t>(comp)] = 1;
  }
  bool is_dirichlet(std::int64_t dof, int comp) const {
    return dirichlet_[static_cast<std::size_t>(dof) * ncomp_ +
                      static_cast<std::size_t>(comp)] != 0;
  }

  /// y = A x with Dirichlet rows acting as identity. x must be ghost-
  /// consistent; y comes back ghost-consistent. Collective.
  void apply(par::Comm& comm, std::span<const double> x,
             std::span<double> y) const;

  /// y = A x without any boundary handling (used for RHS lifting).
  void apply_raw(par::Comm& comm, std::span<const double> x,
                 std::span<double> y) const;

  /// Globally-consistent inner product over owned values.
  double dot(par::Comm& comm, std::span<const double> a,
             std::span<const double> b) const;

  /// Move inhomogeneous boundary values `g` (zero at interior) into the
  /// right-hand side: b -= A g, then b = g on the boundary. Collective.
  void lift_bcs(par::Comm& comm, std::span<const double> g,
                std::span<double> b) const;

  /// Assemble the owned-row distributed matrix (with identity Dirichlet
  /// rows): off-owner triplets are routed to their owners with one
  /// alltoallv, so per-rank storage is O(N_local). This is the solver
  /// path's matrix — see DESIGN.md, "Distributed solver data layout".
  /// Collective.
  la::DistCsr assemble_dist(par::Comm& comm) const;

  /// Gather the fully-assembled global matrix (with identity Dirichlet
  /// rows) on every rank. O(N_global) per rank: kept only as the
  /// replicated reference for tests and bench baselines — the solvers use
  /// assemble_dist. Collective.
  la::Csr assemble_global(par::Comm& comm) const;

  /// Adapters for the Krylov drivers.
  la::LinOp as_linop(par::Comm& comm) const {
    return [this, &comm](std::span<const double> x, std::span<double> y) {
      apply(comm, x, y);
    };
  }
  la::DotFn as_dot(par::Comm& comm) const {
    return [this, &comm](std::span<const double> a, std::span<const double> b) {
      return dot(comm, a, b);
    };
  }

 private:
  void gather_element(std::size_t e, std::span<const double> x,
                      std::span<double> xe) const;
  void scatter_element(std::size_t e, std::span<const double> ye,
                       std::span<double> y) const;

  std::vector<la::Triplet> local_triplets() const;

  const mesh::Mesh* mesh_;
  int ncomp_;
  std::vector<double> mats_;
  std::vector<std::uint8_t> dirichlet_;
  // Hot-path workspaces (mutable: apply/lift_bcs are logically const and
  // run every MINRES iteration — no per-application allocations).
  mutable std::vector<double> work_x_, work_ax_, work_xe_, work_ye_;
};

}  // namespace alps::fem
