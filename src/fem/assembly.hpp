#pragma once
// Distributed finite-element operator machinery. Element matrices are
// stored per local element; hanging-node constraints are applied at the
// element level (gather C x, element matvec, scatter C^T y), exactly the
// strategy the paper describes. Dirichlet conditions are eliminated
// symmetrically (identity rows/columns).
//
// The Krylov hot path runs through a lane-batched SoA plan built lazily
// from the mesh: elements are sorted into boundary (touching a ghost dof)
// and interior sets, packed kLanes at a time with lane-interleaved
// element matrices and flattened gather/scatter index+weight tables (the
// Dirichlet mask folded into the weights), so the inner dense matvec
// vectorizes across lanes without FP reassociation. apply() computes the
// boundary elements first, posts the ghost accumulate, and streams the
// interior elements while the neighbor messages are in flight
// (mesh::accumulate_start/finish). The original scalar path is kept as
// apply_scalar()/apply_raw_scalar() — the parity reference and the
// bench_apply baseline.
//
// Multi-component fields use node-major layout: value index =
// local_dof * ncomp + component.

#include <span>
#include <vector>

#include "la/csr.hpp"
#include "la/dist_csr.hpp"
#include "la/krylov.hpp"
#include "mesh/mesh.hpp"

namespace alps::fem {

class ElementOperator {
 public:
  /// Elements per SIMD batch of the SoA apply plan.
  static constexpr std::size_t kLanes = 4;

  ElementOperator(const mesh::Mesh* m, int ncomp)
      : mesh_(m), ncomp_(ncomp),
        mats_(m->elements.size() * block_size() * block_size(), 0.0),
        dirichlet_(static_cast<std::size_t>(m->n_local) * ncomp, 0) {}

  int ncomp() const { return ncomp_; }
  std::size_t block_size() const { return 8 * static_cast<std::size_t>(ncomp_); }
  const mesh::Mesh& mesh() const { return *mesh_; }

  /// Mutable element matrix block e, row-major (8*ncomp)^2. Invalidates
  /// the batched apply plan (rebuilt lazily on the next apply).
  std::span<double> element_matrix(std::size_t e) {
    plan_dirty_ = true;
    const std::size_t b = block_size() * block_size();
    return std::span<double>(mats_).subspan(e * b, b);
  }
  std::span<const double> element_matrix(std::size_t e) const {
    const std::size_t b = block_size() * block_size();
    return std::span<const double>(mats_).subspan(e * b, b);
  }

  /// Mark value (dof, comp) as Dirichlet-constrained.
  void set_dirichlet(std::int64_t dof, int comp) {
    plan_dirty_ = true;
    dirichlet_[static_cast<std::size_t>(dof) * ncomp_ +
               static_cast<std::size_t>(comp)] = 1;
  }
  bool is_dirichlet(std::int64_t dof, int comp) const {
    return dirichlet_[static_cast<std::size_t>(dof) * ncomp_ +
                      static_cast<std::size_t>(comp)] != 0;
  }

  /// y = A x with Dirichlet rows acting as identity. x must be ghost-
  /// consistent; y comes back ghost-consistent. Collective. Runs the
  /// batched plan with comm-compute overlap.
  void apply(par::Comm& comm, std::span<const double> x,
             std::span<double> y) const;

  /// y = A x without any boundary handling (used for RHS lifting and the
  /// explicit energy update). Batched + overlapped like apply().
  void apply_raw(par::Comm& comm, std::span<const double> x,
                 std::span<double> y) const;

  /// Scalar reference paths: per-element Corner gathers, the O(n)
  /// Dirichlet masking pass, and a blocking post-loop halo. Bitwise the
  /// same math as the pre-batching implementation — kept as the parity
  /// oracle for tests and the ns/element baseline for bench_apply.
  void apply_scalar(par::Comm& comm, std::span<const double> x,
                    std::span<double> y) const;
  void apply_raw_scalar(par::Comm& comm, std::span<const double> x,
                        std::span<double> y) const;

  /// Globally-consistent inner product over owned values (blocked
  /// pairwise summation + one allreduce).
  double dot(par::Comm& comm, std::span<const double> a,
             std::span<const double> b) const;

  /// Fused inner products: all pairs reduce in ONE multi-value allreduce.
  /// This is what the reduced-synchronization Krylov loops call.
  void multi_dot(par::Comm& comm, std::span<const la::DotPair> pairs,
                 std::span<double> out) const;

  /// Move inhomogeneous boundary values `g` (zero at interior) into the
  /// right-hand side: b -= A g, then b = g on the boundary. Collective.
  void lift_bcs(par::Comm& comm, std::span<const double> g,
                std::span<double> b) const;

  /// Assemble the owned-row distributed matrix (with identity Dirichlet
  /// rows): off-owner triplets are routed to their owners with one
  /// alltoallv, so per-rank storage is O(N_local). This is the solver
  /// path's matrix — see DESIGN.md, "Distributed solver data layout".
  /// Collective.
  la::DistCsr assemble_dist(par::Comm& comm) const;

  /// Gather the fully-assembled global matrix (with identity Dirichlet
  /// rows) on every rank. O(N_global) per rank: kept only as the
  /// replicated reference for tests and bench baselines — the solvers use
  /// assemble_dist. Collective.
  la::Csr assemble_global(par::Comm& comm) const;

  /// Adapters for the Krylov drivers.
  la::LinOp as_linop(par::Comm& comm) const {
    return [this, &comm](std::span<const double> x, std::span<double> y) {
      apply(comm, x, y);
    };
  }
  la::DotFn as_dot(par::Comm& comm) const {
    return [this, &comm](std::span<const double> a, std::span<const double> b) {
      return dot(comm, a, b);
    };
  }
  la::MultiDotFn as_multi_dot(par::Comm& comm) const {
    return [this, &comm](std::span<const la::DotPair> pairs,
                         std::span<double> out) {
      multi_dot(comm, pairs, out);
    };
  }

  /// Interior / boundary element counts of the apply plan (builds the
  /// plan if needed). An element is boundary when any of its gather slots
  /// — its own corners or the hanging-constraint masters they resolve to
  /// — references a ghost dof; only those elements contribute to the
  /// ghost accumulate, so the interior set streams while it is in flight.
  std::size_t boundary_elements() const {
    ensure_plan();
    return plan_.n_boundary;
  }
  std::size_t interior_elements() const {
    ensure_plan();
    return plan_.n_interior;
  }
  /// Doubles of element-matrix data the batched plan streams per apply
  /// (upper-tri packed when symmetric, full blocks otherwise, lane padding
  /// included). bench_apply derives the achieved bytes/s from this.
  std::size_t plan_matrix_doubles() const {
    ensure_plan();
    return plan_.mats.size();
  }

  /// This rank's heap bytes: element matrices, Dirichlet masks, the
  /// batched apply-plan index/weight tables, and the hot-path workspaces
  /// (the "fem.plan" memory scope). Does not force a plan build — an
  /// unbuilt plan reports its current (empty) footprint.
  std::uint64_t memory_bytes() const {
    using obs::vec_bytes;
    return vec_bytes(mats_) + vec_bytes(dirichlet_) + vec_bytes(plan_.mats) +
           vec_bytes(plan_.gbase) + vec_bytes(plan_.w_raw) +
           vec_bytes(plan_.w_bc) + vec_bytes(plan_.slots) +
           vec_bytes(plan_.owned_dirichlet) + vec_bytes(work_x_) +
           vec_bytes(work_ax_) + vec_bytes(work_xe_) + vec_bytes(work_ye_);
  }

 private:
  void gather_element(std::size_t e, std::span<const double> x,
                      std::span<double> xe) const;
  void scatter_element(std::size_t e, std::span<const double> ye,
                       std::span<double> y) const;

  std::vector<la::Triplet> local_triplets() const;

  void ensure_plan() const;
  void build_plan() const;
  /// Gather + lane-batched matvec + scatter for batches [b0, b1), using
  /// the BC-masked (apply) or raw (apply_raw) weight table.
  void run_batches(std::size_t b0, std::size_t b1, const double* weights,
                   std::span<const double> x, std::span<double> y) const;
  /// Shared batched + overlapped pipeline behind apply/apply_raw.
  void apply_batched(par::Comm& comm, const double* weights,
                     std::span<const double> x, std::span<double> y) const;

  const mesh::Mesh* mesh_;
  int ncomp_;
  std::vector<double> mats_;
  std::vector<std::uint8_t> dirichlet_;

  // ---- lane-batched SoA apply plan (DESIGN.md §10) ----------------------
  // Boundary batches form a prefix so apply can post the ghost accumulate
  // after [0, boundary_batches) and overlap [boundary_batches, n_batches)
  // with the messages. Pad lanes carry dof base 0 with zero weights and a
  // zeroed matrix block, so they contribute exactly nothing.
  struct Plan {
    std::size_t n_batches = 0;         // total kLanes-wide batches
    std::size_t boundary_batches = 0;  // prefix of batches
    std::size_t n_boundary = 0;        // real (unpadded) element counts
    std::size_t n_interior = 0;
    // When every element matrix is (bitwise) symmetric — Laplace, mass,
    // the stabilized Stokes block — only the upper triangle is stored and
    // the matvec does 2 FMAs per loaded entry. The apply is memory-bound
    // on the matrix stream, so packing nearly halves its cost; detection
    // is exact, nonsymmetric operators (e.g. advection) use the full
    // layout.
    bool symmetric = false;
    std::vector<double> mats;       // full: [batch][i*bs+j][lane];
                                    // packed: [batch][upper-tri rowwise][lane]
    std::vector<std::int32_t> gbase;  // [batch][corner*4+slot][lane] = dof*nc
    std::vector<double> w_raw;      // [batch][(corner*4+slot)*nc+c][lane]
    std::vector<double> w_bc;       // w_raw with the Dirichlet mask folded in
    std::vector<std::uint8_t> slots;  // [batch] max constraint fan-in (1..4)
    std::vector<std::int32_t> owned_dirichlet;  // value idx < n_owned*nc
  };
  mutable Plan plan_;
  mutable bool plan_dirty_ = true;

  // Hot-path workspaces (mutable: apply/lift_bcs are logically const and
  // run every MINRES iteration — no per-application allocations).
  mutable std::vector<double> work_x_, work_ax_, work_xe_, work_ye_;
};

}  // namespace alps::fem
