#include "fem/operators.hpp"

namespace alps::fem {

ElemGeom element_geometry(const mesh::Mesh& m, const forest::Connectivity& conn,
                          std::size_t e) {
  const auto xyz = m.element_corners_xyz(conn, static_cast<std::int64_t>(e));
  ElemGeom g;
  for (int i = 0; i < 8; ++i) g[static_cast<std::size_t>(i)] = xyz[static_cast<std::size_t>(i)];
  return g;
}

ElementOperator build_scalar_laplace(const mesh::Mesh& m,
                                     const forest::Connectivity& conn,
                                     const CoeffFn& eta,
                                     std::uint8_t dirichlet_faces) {
  ElementOperator op(&m, 1);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const ElemGeom g = element_geometry(m, conn, e);
    const MappedQuad mq = map_element(g);
    std::array<double, kQuad> eta_q;
    for (int q = 0; q < kQuad; ++q)
      eta_q[static_cast<std::size_t>(q)] = eta(mq.xq[static_cast<std::size_t>(q)]);
    const Mat8 k = stiffness(mq, eta_q);
    std::span<double> dst = op.element_matrix(e);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        dst[static_cast<std::size_t>(i) * 8 + static_cast<std::size_t>(j)] =
            k[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }
  for (std::int64_t d = 0; d < m.n_local; ++d)
    if (m.dof_boundary[static_cast<std::size_t>(d)] & dirichlet_faces)
      op.set_dirichlet(d, 0);
  return op;
}

ElementOperator build_mass(const mesh::Mesh& m,
                           const forest::Connectivity& conn) {
  ElementOperator op(&m, 1);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const MappedQuad mq = map_element(element_geometry(m, conn, e));
    const Mat8 mm = mass(mq);
    std::span<double> dst = op.element_matrix(e);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        dst[static_cast<std::size_t>(i) * 8 + static_cast<std::size_t>(j)] =
            mm[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }
  return op;
}

std::vector<double> build_lumped_mass(par::Comm& comm, const mesh::Mesh& m,
                                      const forest::Connectivity& conn) {
  std::vector<double> lm(static_cast<std::size_t>(m.n_local), 0.0);
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const MappedQuad mq = map_element(element_geometry(m, conn, e));
    const std::array<double, 8> le = lumped_mass(mq);
    for (int i = 0; i < 8; ++i) {
      const mesh::Corner& cc = m.corners[e][static_cast<std::size_t>(i)];
      for (int k = 0; k < cc.n; ++k)
        lm[static_cast<std::size_t>(cc.dof[static_cast<std::size_t>(k)])] +=
            cc.w[static_cast<std::size_t>(k)] * le[static_cast<std::size_t>(i)];
    }
  }
  m.accumulate(comm, lm);
  m.exchange(comm, lm);
  return lm;
}

std::vector<double> interpolate(
    const mesh::Mesh& m,
    const std::function<double(const std::array<double, 3>&)>& f) {
  std::vector<double> v(static_cast<std::size_t>(m.n_local));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = f(m.dof_coords[i]);
  return v;
}

}  // namespace alps::fem
