#pragma once
// Ready-made operator builders on an extracted mesh: variable-coefficient
// scalar Laplacians (the Stokes preconditioner's building block and the
// Fig. 9 benchmark operator), mass matrices, and boundary-condition
// helpers shared by the energy and Stokes solvers.

#include <functional>

#include "fem/assembly.hpp"
#include "fem/hex8.hpp"

namespace alps::fem {

/// Scalar coefficient field evaluated at a physical point.
using CoeffFn = std::function<double(const std::array<double, 3>&)>;

/// Element geometry of mesh element e.
ElemGeom element_geometry(const mesh::Mesh& m, const forest::Connectivity& conn,
                          std::size_t e);

/// K_ij = int eta grad(phi_i).grad(phi_j), Dirichlet on the physical faces
/// whose bits are set in `dirichlet_faces` (bit f = octree face f).
ElementOperator build_scalar_laplace(const mesh::Mesh& m,
                                     const forest::Connectivity& conn,
                                     const CoeffFn& eta,
                                     std::uint8_t dirichlet_faces);

/// Consistent mass matrix operator (no boundary conditions).
ElementOperator build_mass(const mesh::Mesh& m,
                           const forest::Connectivity& conn);

/// Globally-assembled row-sum lumped mass (one value per local dof,
/// ghost-consistent). Collective.
std::vector<double> build_lumped_mass(par::Comm& comm, const mesh::Mesh& m,
                                      const forest::Connectivity& conn);

/// Nodal interpolation of an analytic function into dof values
/// (n_local * 1 entries).
std::vector<double> interpolate(const mesh::Mesh& m,
                                const std::function<double(const std::array<double, 3>&)>& f);

}  // namespace alps::fem
