#include "forest/connectivity.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace alps::forest {

namespace {

// Doubled-coordinate extent of one tree: centers live in [0, kD).
constexpr std::int64_t kD = std::int64_t{2} << kMaxLevel;

// Corner indices of each face, in a fixed traversal order.
constexpr std::array<std::array<int, 4>, 6> kFaceCorners = {{
    {{0, 2, 4, 6}},  // -x
    {{1, 3, 5, 7}},  // +x
    {{0, 1, 4, 5}},  // -y
    {{2, 3, 6, 7}},  // +y
    {{0, 1, 2, 3}},  // -z
    {{4, 5, 6, 7}},  // +z
}};

constexpr std::array<std::array<int, 3>, 6> kFaceOutward = {{
    {{-1, 0, 0}}, {{1, 0, 0}}, {{0, -1, 0}},
    {{0, 1, 0}},  {{0, 0, -1}}, {{0, 0, 1}},
}};

// Reference position of cube corner c in doubled units.
std::array<std::int64_t, 3> corner_ref(int c) {
  return {(c & 1) ? kD : 0, (c & 2) ? kD : 0, (c & 4) ? kD : 0};
}

std::array<std::int64_t, 3> sub(const std::array<std::int64_t, 3>& a,
                                const std::array<std::int64_t, 3>& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

}  // namespace

Connectivity Connectivity::unit_cube() {
  Connectivity c;
  c.faces_.resize(1);
  TreeCorners tc{};
  for (int k = 0; k < 8; ++k)
    tc[static_cast<std::size_t>(k)] = {k & 1, (k >> 1) & 1, (k >> 2) & 1};
  c.corners_.push_back(tc);
  return c;
}

Connectivity Connectivity::brick(int nx, int ny, int nz, bool period_x,
                                 bool period_y, bool period_z) {
  Connectivity c;
  const auto id = [nx, ny](int i, int j, int k) {
    return static_cast<std::int32_t>((k * ny + j) * nx + i);
  };
  c.faces_.resize(static_cast<std::size_t>(nx) * ny * nz);
  const std::array<int, 3> dims = {nx, ny, nz};
  const std::array<bool, 3> per = {period_x, period_y, period_z};
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        TreeCorners tc{};
        for (int cc = 0; cc < 8; ++cc)
          tc[static_cast<std::size_t>(cc)] = {i + (cc & 1), j + ((cc >> 1) & 1),
                                              k + ((cc >> 2) & 1)};
        c.corners_.push_back(tc);
        for (int axis = 0; axis < 3; ++axis)
          for (int side = 0; side < 2; ++side) {
            std::array<int, 3> q = {i, j, k};
            q[axis] += side ? 1 : -1;
            bool wrapped = false;
            if (q[axis] < 0 || q[axis] >= dims[axis]) {
              if (!per[axis]) continue;
              q[axis] = (q[axis] + dims[axis]) % dims[axis];
              wrapped = true;
            }
            (void)wrapped;
            FaceTransform& t =
                c.faces_[static_cast<std::size_t>(id(i, j, k))]
                        [static_cast<std::size_t>(2 * axis + side)];
            t.nbr_tree = id(q[0], q[1], q[2]);
            t.nbr_face = static_cast<std::int8_t>(2 * axis + (side ? 0 : 1));
            for (int d = 0; d < 3; ++d)
              t.rot[static_cast<std::size_t>(d)][static_cast<std::size_t>(d)] = 1;
            t.trans[static_cast<std::size_t>(axis)] = side ? -kD : kD;
          }
      }
  return c;
}

Connectivity Connectivity::from_corners(const std::vector<TreeCorners>& corners) {
  Connectivity c;
  c.faces_.resize(corners.size());
  c.corners_ = corners;

  // Assign vertex ids by deduplicating corner positions: sort + unique
  // once, then binary-search each corner. Ids are lexicographic ranks
  // (only equality of ids matters downstream).
  std::vector<std::array<int, 3>> verts;
  verts.reserve(corners.size() * 8);
  for (const TreeCorners& tc : corners)
    for (const auto& pt : tc) verts.push_back(pt);
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  std::vector<std::array<int, 8>> tree_vids(corners.size());
  for (std::size_t t = 0; t < corners.size(); ++t)
    for (int k = 0; k < 8; ++k)
      tree_vids[t][static_cast<std::size_t>(k)] = static_cast<int>(
          std::lower_bound(verts.begin(), verts.end(),
                           corners[t][static_cast<std::size_t>(k)]) -
          verts.begin());

  // Group faces by their (sorted) vertex-id quadruple: flat list sorted
  // by key, shared faces become adjacent runs.
  struct FaceUse {
    std::array<int, 4> key;
    int tree;
    int face;
  };
  std::vector<FaceUse> uses;
  uses.reserve(corners.size() * 6);
  for (std::size_t t = 0; t < corners.size(); ++t)
    for (int f = 0; f < 6; ++f) {
      std::array<int, 4> key;
      for (int k = 0; k < 4; ++k)
        key[static_cast<std::size_t>(k)] =
            tree_vids[t][static_cast<std::size_t>(
                kFaceCorners[static_cast<std::size_t>(f)]
                            [static_cast<std::size_t>(k)])];
      std::sort(key.begin(), key.end());
      uses.push_back(FaceUse{key, static_cast<int>(t), f});
    }
  std::sort(uses.begin(), uses.end(), [](const FaceUse& a, const FaceUse& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.face < b.face;
  });

  for (std::size_t lo = 0; lo < uses.size();) {
    std::size_t hi = lo + 1;
    while (hi < uses.size() && uses[hi].key == uses[lo].key) ++hi;
    const std::size_t nuse = hi - lo;
    if (nuse == 1) {  // physical boundary
      lo = hi;
      continue;
    }
    if (nuse != 2)
      throw std::invalid_argument(
          "from_corners: a face is shared by more than two trees");
    const std::array<std::pair<int, int>, 2> users = {
        std::make_pair(uses[lo].tree, uses[lo].face),
        std::make_pair(uses[lo + 1].tree, uses[lo + 1].face)};
    lo = hi;
    for (int dirn = 0; dirn < 2; ++dirn) {
      const auto [ta, fa] = users[static_cast<std::size_t>(dirn)];
      const auto [tb, fb] = users[static_cast<std::size_t>(1 - dirn)];
      // Vertex-id -> corner index lookup for tree B's face.
      const auto corner_of_vid = [&](int v) {
        for (int k = 0; k < 8; ++k)
          if (tree_vids[static_cast<std::size_t>(tb)]
                       [static_cast<std::size_t>(k)] == v)
            return k;
        throw std::logic_error("from_corners: vertex not found in nbr tree");
      };
      const auto& fca = kFaceCorners[static_cast<std::size_t>(fa)];
      const int ca0 = fca[0], ca1 = fca[1], ca2 = fca[2];
      const int va0 = tree_vids[static_cast<std::size_t>(ta)]
                               [static_cast<std::size_t>(ca0)];
      const int va1 = tree_vids[static_cast<std::size_t>(ta)]
                               [static_cast<std::size_t>(ca1)];
      const int va2 = tree_vids[static_cast<std::size_t>(ta)]
                               [static_cast<std::size_t>(ca2)];
      const auto a0 = corner_ref(ca0);
      const auto u = sub(corner_ref(ca1), a0);
      const auto v = sub(corner_ref(ca2), a0);
      const auto b0 = corner_ref(corner_of_vid(va0));
      const auto up = sub(corner_ref(corner_of_vid(va1)), b0);
      const auto vp = sub(corner_ref(corner_of_vid(va2)), b0);
      // Outward normal of fa maps to inward normal of fb.
      std::array<std::int64_t, 3> n{}, np{};
      for (int d = 0; d < 3; ++d) {
        n[static_cast<std::size_t>(d)] =
            kD * kFaceOutward[static_cast<std::size_t>(fa)]
                             [static_cast<std::size_t>(d)];
        np[static_cast<std::size_t>(d)] =
            -kD * kFaceOutward[static_cast<std::size_t>(fb)]
                              [static_cast<std::size_t>(d)];
      }

      FaceTransform t;
      t.nbr_tree = static_cast<std::int32_t>(tb);
      t.nbr_face = static_cast<std::int8_t>(fb);
      // Each source vector s*kD*e_i with image w gives column i = s*w/kD.
      const auto set_column = [&](const std::array<std::int64_t, 3>& src,
                                  const std::array<std::int64_t, 3>& dst) {
        for (int i = 0; i < 3; ++i)
          if (src[static_cast<std::size_t>(i)] != 0) {
            const std::int64_t s = src[static_cast<std::size_t>(i)] / kD;
            for (int r = 0; r < 3; ++r)
              t.rot[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
                  static_cast<std::int8_t>(s * dst[static_cast<std::size_t>(r)] /
                                           kD);
            return;
          }
        throw std::logic_error("from_corners: degenerate face vector");
      };
      set_column(u, up);
      set_column(v, vp);
      set_column(n, np);
      // Translation: M(a0) = b0.
      for (int r = 0; r < 3; ++r) {
        std::int64_t acc = 0;
        for (int k = 0; k < 3; ++k)
          acc += t.rot[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] *
                 a0[static_cast<std::size_t>(k)];
        t.trans[static_cast<std::size_t>(r)] = b0[static_cast<std::size_t>(r)] - acc;
      }
      c.faces_[static_cast<std::size_t>(ta)][static_cast<std::size_t>(fa)] = t;
    }
  }
  return c;
}

Connectivity Connectivity::cubed_sphere_shell() {
  // 6 caps x (2x2) trees, radially one tree deep. Surface lattice points
  // have one coordinate = +-2 and the others in {-2, 0, 2}; the inner
  // shell corner is the point itself, the outer shell corner is doubled,
  // so corners shared between caps coincide exactly.
  std::vector<TreeCorners> corners;
  for (int axis = 0; axis < 3; ++axis)
    for (int sign = -1; sign <= 1; sign += 2) {
      const int b = (axis + 1) % 3, cax = (axis + 2) % 3;
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i) {
          TreeCorners tc{};
          for (int k = 0; k < 8; ++k) {
            std::array<int, 3> p{};
            p[static_cast<std::size_t>(axis)] = 2 * sign;
            p[static_cast<std::size_t>(b)] = -2 + 2 * i + 2 * ((k & 1) ? 1 : 0);
            p[static_cast<std::size_t>(cax)] = -2 + 2 * j + 2 * ((k & 2) ? 1 : 0);
            const int scale = (k & 4) ? 2 : 1;  // bit2 = radially outward
            tc[static_cast<std::size_t>(k)] = {scale * p[0], scale * p[1],
                                               scale * p[2]};
          }
          corners.push_back(tc);
        }
    }
  return from_corners(corners);
}

std::array<double, 3> Connectivity::map_point(std::int32_t tree, coord_t x,
                                              coord_t y, coord_t z) const {
  const double n = static_cast<double>(coord_t{1} << kMaxLevel);
  const double xi = x / n, yj = y / n, zk = z / n;
  const TreeCorners& tc = corners_[static_cast<std::size_t>(tree)];
  std::array<double, 3> p{};
  for (int k = 0; k < 8; ++k) {
    const double w = ((k & 1) ? xi : 1.0 - xi) * ((k & 2) ? yj : 1.0 - yj) *
                     ((k & 4) ? zk : 1.0 - zk);
    for (int d = 0; d < 3; ++d)
      p[static_cast<std::size_t>(d)] +=
          w * tc[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)];
  }
  return p;
}

bool Connectivity::transform_center(std::int32_t tree, int f,
                                    std::array<std::int64_t, 3>& center2) const {
  const FaceTransform& t =
      faces_[static_cast<std::size_t>(tree)][static_cast<std::size_t>(f)];
  if (t.nbr_tree < 0) return false;
  std::array<std::int64_t, 3> out{};
  for (int r = 0; r < 3; ++r) {
    std::int64_t acc = t.trans[static_cast<std::size_t>(r)];
    for (int k = 0; k < 3; ++k)
      acc += t.rot[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] *
             center2[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(r)] = acc;
  }
  center2 = out;
  return true;
}

bool Connectivity::neighbor_across(const Octant& o, int dir, Octant& out) const {
  const std::int64_t h = octree::octant_len(o.level);
  std::array<std::int64_t, 3> c = {
      2 * static_cast<std::int64_t>(o.x) + h +
          2 * h * octree::kNeighborDirs[static_cast<std::size_t>(dir)][0],
      2 * static_cast<std::int64_t>(o.y) + h +
          2 * h * octree::kNeighborDirs[static_cast<std::size_t>(dir)][1],
      2 * static_cast<std::int64_t>(o.z) + h +
          2 * h * octree::kNeighborDirs[static_cast<std::size_t>(dir)][2]};
  std::int32_t tree = o.tree;
  for (int attempt = 0; attempt < 4; ++attempt) {
    int axis = -1, side = 0;
    for (int d = 0; d < 3 && axis < 0; ++d) {
      if (c[static_cast<std::size_t>(d)] < 0) {
        axis = d;
        side = 0;
      } else if (c[static_cast<std::size_t>(d)] >= kD) {
        axis = d;
        side = 1;
      }
    }
    if (axis < 0) {
      out.tree = tree;
      out.level = o.level;
      out.x = static_cast<coord_t>((c[0] - h) / 2);
      out.y = static_cast<coord_t>((c[1] - h) / 2);
      out.z = static_cast<coord_t>((c[2] - h) / 2);
      return true;
    }
    const int f = 2 * axis + side;
    const FaceTransform& t =
        faces_[static_cast<std::size_t>(tree)][static_cast<std::size_t>(f)];
    if (t.nbr_tree < 0) return false;
    if (!transform_center(tree, f, c)) return false;
    tree = t.nbr_tree;
  }
  return false;  // cone point: diagonal neighbor not well defined
}

}  // namespace alps::forest
