#pragma once
// Forest-of-octrees connectivity (paper Sec. VII, the P4EST idea): a
// domain decomposed into hexahedron-mappable subdomains, each the root of
// an adaptive octree, glued along faces with coordinate transforms.
//
// Connectivity is built from the geometric corner positions of each tree
// (p4est's "vertices"): shared faces are discovered by matching corner
// sets, and each inter-tree transform — a signed axis permutation plus
// translation — is derived from the vertex correspondence. This supports
// bricks (with optional periodicity) and the cubed-sphere shell used for
// the spherical advection experiments (6 caps x 4 trees = 24 trees).

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "octree/octant.hpp"

namespace alps::forest {

using octree::coord_t;
using octree::kMaxLevel;
using octree::Octant;

/// Corner positions of one tree in an arbitrary integer lattice; corner
/// order follows octant child order (bit0 -> +x, bit1 -> +y, bit2 -> +z).
using TreeCorners = std::array<std::array<int, 3>, 8>;

/// Affine transform between neighboring trees' coordinate systems,
/// evaluated on doubled coordinates (so octant centers stay integral).
struct FaceTransform {
  std::int32_t nbr_tree = -1;  // -1: physical boundary
  std::int8_t nbr_face = -1;
  std::array<std::array<std::int8_t, 3>, 3> rot{};  // signed permutation
  std::array<std::int64_t, 3> trans{};              // doubled units
};

class Connectivity {
 public:
  /// Single unit-cube tree, all faces physical boundary.
  static Connectivity unit_cube();

  /// nx x ny x nz grid of trees with identity gluing; per-axis periodicity.
  static Connectivity brick(int nx, int ny, int nz, bool period_x = false,
                            bool period_y = false, bool period_z = false);

  /// Generic construction from per-tree corner positions. Faces sharing
  /// the same 4 corners are glued; transforms derived from the vertex
  /// correspondence.
  static Connectivity from_corners(const std::vector<TreeCorners>& corners);

  /// Cubed-sphere shell: 6 caps split 2x2, radially one tree deep =
  /// 24 trees, exactly the paper's spherical-shell decomposition.
  static Connectivity cubed_sphere_shell();

  std::int32_t num_trees() const {
    return static_cast<std::int32_t>(faces_.size());
  }
  const FaceTransform& face(std::int32_t tree, int f) const {
    return faces_[static_cast<std::size_t>(tree)][static_cast<std::size_t>(f)];
  }

  /// Map an octant whose coordinates have left `tree` through face `f`
  /// into the neighboring tree's frame. Returns false at physical
  /// boundaries. `o` carries the (out-of-range, signed) doubled center.
  bool transform_center(std::int32_t tree, int f,
                        std::array<std::int64_t, 3>& center2) const;

  /// Same-size neighbor of `o` in direction dir (0..25), following face
  /// gluings as needed (diagonal directions may cross two or three faces).
  /// Returns false at physical boundaries and at cone points where the
  /// diagonal neighbor is not well defined (see DESIGN.md).
  bool neighbor_across(const Octant& o, int dir, Octant& out) const;

  /// Adapter for octree::balance / is_balanced.
  auto neighbor_fn() const {
    return [this](const Octant& o, int dir, Octant& out) {
      return neighbor_across(o, dir, out);
    };
  }

  /// Geometric corner positions of each tree (in the construction lattice);
  /// the default mesh geometry blends these trilinearly.
  const std::vector<TreeCorners>& tree_corners() const { return corners_; }

  /// Physical position of a point given by tree + integer coordinates in
  /// [0, 2^kMaxLevel], by trilinear blend of the tree's corner positions.
  std::array<double, 3> map_point(std::int32_t tree, coord_t x, coord_t y,
                                  coord_t z) const;

 private:
  std::vector<std::array<FaceTransform, 6>> faces_;
  std::vector<TreeCorners> corners_;
};

}  // namespace alps::forest
