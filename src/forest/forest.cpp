#include "forest/forest.hpp"

// Forest is header-only today; this TU anchors the library target.
