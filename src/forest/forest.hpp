#pragma once
// Forest = connectivity + distributed linear octree whose leaves carry
// tree ids. Thin facade tying the octree AMR functions to inter-tree
// neighbor transforms, mirroring the paper's P4EST layer.

#include "forest/connectivity.hpp"
#include "obs/obs.hpp"
#include "octree/balance.hpp"
#include "octree/linear_octree.hpp"
#include "octree/mark.hpp"
#include "octree/partition.hpp"

namespace alps::forest {

class Forest {
 public:
  Forest(Connectivity conn, octree::LinearOctree tree)
      : conn_(std::move(conn)), tree_(std::move(tree)) {}

  /// NEWTREE over all trees of the connectivity.
  static Forest new_uniform(par::Comm& comm, Connectivity conn, int level) {
    octree::LinearOctree t =
        octree::LinearOctree::new_uniform(comm, conn.num_trees(), level);
    return Forest(std::move(conn), std::move(t));
  }

  const Connectivity& connectivity() const { return conn_; }
  octree::LinearOctree& tree() { return tree_; }
  const octree::LinearOctree& tree() const { return tree_; }

  /// Same-size neighbor following inter-tree gluing.
  bool neighbor(const Octant& o, int dir, Octant& out) const {
    return conn_.neighbor_across(o, dir, out);
  }

  int balance(par::Comm& comm,
              octree::Adjacency adj = octree::Adjacency::kFaceEdge) {
    OBS_SPAN("forest.balance");
    return octree::balance(comm, tree_, adj, conn_.neighbor_fn());
  }
  bool is_balanced(par::Comm& comm,
                   octree::Adjacency adj = octree::Adjacency::kFaceEdge) const {
    return octree::is_balanced(comm, tree_, adj, conn_.neighbor_fn());
  }
  void partition(par::Comm& comm,
                 std::span<octree::LeafPayload*> payloads = {},
                 std::span<const double> weights = {}) {
    OBS_SPAN("forest.partition");
    octree::partition(comm, tree_, payloads, weights);
  }

  /// This rank's heap bytes (leaf slice + ownership ranges; the
  /// "forest.octants" memory scope).
  std::uint64_t memory_bytes() const { return tree_.memory_bytes(); }

 private:
  Connectivity conn_;
  octree::LinearOctree tree_;
};

}  // namespace alps::forest
