#!/usr/bin/env python3
"""Validate an alps telemetry JSONL stream and/or a flight-recorder bundle.

JSONL mode (default):
  * every line parses as a JSON object,
  * required keys are present with finite numeric values
    (step, time, dt, elements, dofs, partition_imbalance,
    nusselt, v_rms, t_min, t_max, t_mean),
  * "step" is strictly increasing, "time" non-decreasing, "dt" > 0,
  * "per_level" is a list of non-negative ints summing to "elements",
  * optional "timings" blocks (per-step phase seconds) carry a bool
    "adapted" and non-negative finite phase entries, with the AMR
    phases (extract in particular) at zero on non-adapting steps, and
    the extraction reuse statistics, when present, are non-negative
    counts plus a bool fallback flag,
  * optional "latency" blocks (per-phase histogram quantiles) carry,
    per phase, a positive sample count and quantiles ordered
    p50 <= p95 <= p99 <= max with max <= sum <= count * max,
  * optional "memory" blocks obey the accounting invariants: imbalance
    >= 1, min <= mean <= max <= hwm, the accounted and RSS high-water
    marks never decrease across records, accounted total <= global RSS
    (per-rank accounting can never exceed what the OS charges the
    process times ranks), and an {"available": false} RSS object carries
    no numeric fields (no fabricated zeros),
  * optional: --min-records N requires at least N records.

Bundle mode (--dump-dir DIR): the flight-recorder layout written by
obs::panic_dump is present and parses — reason.txt (non-empty),
trace.json / counters.json / phases.json / residuals.json / memory.json
(valid JSON), telemetry_tail.jsonl (every line a JSON object).

Usage:
  check_telemetry.py rhea_telemetry.jsonl --min-records 4
  check_telemetry.py --dump-dir alps_dump
"""

import argparse
import json
import math
import os
import sys

REQUIRED = [
    "step", "time", "dt", "elements", "dofs", "partition_imbalance",
    "nusselt", "v_rms", "t_min", "t_max", "t_mean",
]


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _num(obj, key, where):
    v = obj.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(f"{where}: \"{key}\" is not numeric: {v!r}")
    if not math.isfinite(v):
        fail(f"{where}: \"{key}\" is not finite: {v!r}")
    return v


def check_memory_block(mem, where, hwm_state) -> None:
    """Validate one record's "memory" block against the accounting
    invariants; hwm_state carries the previous record's high-water marks
    (they must never decrease across a run)."""
    if not isinstance(mem, dict):
        fail(f"{where}: \"memory\" is not an object")
    if not isinstance(mem.get("available"), bool):
        fail(f"{where}: memory.available is not a bool")
    if not mem["available"]:
        return
    acc = mem.get("accounted")
    if not isinstance(acc, dict):
        fail(f"{where}: memory.accounted missing or not an object")
    amin = _num(acc, "min_bytes", where)
    amed = _num(acc, "median_bytes", where)
    amax = _num(acc, "max_bytes", where)
    amean = _num(acc, "mean_bytes", where)
    ahwm = _num(acc, "hwm_bytes", where)
    aimb = _num(acc, "imbalance", where)
    if not (0 <= amin <= amed <= amax):
        fail(f"{where}: accounted min/median/max out of order "
             f"({amin}/{amed}/{amax})")
    if not (amin <= amean <= amax):
        fail(f"{where}: accounted mean {amean} outside [{amin}, {amax}]")
    if ahwm < amax:
        fail(f"{where}: accounted hwm {ahwm} below current max {amax}")
    if aimb < 1:
        fail(f"{where}: accounted imbalance {aimb} < 1")
    if ahwm < hwm_state.get("acc", 0):
        fail(f"{where}: accounted hwm {ahwm} decreased "
             f"(previous {hwm_state['acc']})")
    hwm_state["acc"] = ahwm

    rss = mem.get("rss")
    if not isinstance(rss, dict):
        fail(f"{where}: memory.rss missing or not an object")
    if not isinstance(rss.get("available"), bool):
        fail(f"{where}: memory.rss.available is not a bool")
    if not rss["available"]:
        if len(rss) != 1:
            fail(f"{where}: rss has available:false mixed with other "
                 f"fields: {sorted(rss)}")
        return
    rmin = _num(rss, "min_bytes", where)
    rmax = _num(rss, "max_bytes", where)
    rhwm = _num(rss, "hwm_bytes", where)
    rimb = _num(rss, "imbalance", where)
    if not (0 < rmin <= rmax <= rhwm):
        fail(f"{where}: rss min/max/hwm out of order "
             f"({rmin}/{rmax}/{rhwm})")
    if rimb < 1:
        fail(f"{where}: rss imbalance {rimb} < 1")
    if rhwm < hwm_state.get("rss", 0):
        fail(f"{where}: rss hwm {rhwm} decreased "
             f"(previous {hwm_state['rss']})")
    hwm_state["rss"] = rhwm
    total = acc.get("total_bytes")
    if isinstance(total, (int, float)) and total > rmax:
        fail(f"{where}: accounted total {total} exceeds RSS {rmax}")


def check_latency_block(lat, where) -> None:
    """Validate one record's "latency" block: per-phase quantiles from
    the merged cross-rank histograms. Quantiles are nearest-rank, so they
    must be monotone in q and bounded by the exact max; the sum of count
    samples is bounded by [max, count * max]."""
    if not isinstance(lat, dict):
        fail(f"{where}: \"latency\" is not an object")
    phases = lat.get("phases")
    if not isinstance(phases, list):
        fail(f"{where}: latency.phases missing or not a list")
    seen = set()
    for p in phases:
        if not isinstance(p, dict) or not isinstance(p.get("phase"), str):
            fail(f"{where}: latency phase entry malformed: {p!r}")
        name = p["phase"]
        if name in seen:
            fail(f"{where}: latency phase {name!r} duplicated")
        seen.add(name)
        count = p.get("count")
        if not isinstance(count, int) or count < 1:
            fail(f"{where}: latency.{name}.count not a positive int: "
                 f"{count!r}")
        s = _num(p, "sum_s", where)
        p50 = _num(p, "p50_s", where)
        p95 = _num(p, "p95_s", where)
        p99 = _num(p, "p99_s", where)
        mx = _num(p, "max_s", where)
        if not (0 <= p50 <= p95 <= p99 <= mx):
            fail(f"{where}: latency.{name} quantiles out of order "
                 f"({p50}/{p95}/{p99}/{mx})")
        # FP slack: sum accumulates count rounded terms.
        if not (mx <= s * (1 + 1e-9) + 1e-12):
            fail(f"{where}: latency.{name} sum {s} below max {mx}")
        if s > count * mx * (1 + 1e-9) + 1e-12:
            fail(f"{where}: latency.{name} sum {s} exceeds "
                 f"count * max = {count * mx}")


TIMING_KEYS = [
    "mark", "coarsen_refine", "balance", "partition", "extract",
    "interpolate", "transfer", "time_integration", "stokes",
]


def check_timings_block(t, where) -> None:
    """Validate one record's "timings" block: the AMR cycle phase seconds
    are non-negative, and phases that only run inside an adaptation
    (extraction above all) are zero on non-adapting steps."""
    if not isinstance(t, dict):
        fail(f"{where}: \"timings\" is not an object")
    if not isinstance(t.get("adapted"), bool):
        fail(f"{where}: timings.adapted is not a bool")
    for key in TIMING_KEYS:
        v = _num(t, key, where)
        if v < -1e-9:
            fail(f"{where}: timings.{key} is negative: {v}")
    if not t["adapted"]:
        for key in ("mark", "coarsen_refine", "balance", "partition",
                    "extract", "interpolate", "transfer"):
            if t[key] > 1e-6:
                fail(f"{where}: timings.{key} = {t[key]} on a "
                     f"non-adapting step")
    else:
        for key in ("extract_reused", "extract_recomputed"):
            if key in t and _num(t, key, where) < 0:
                fail(f"{where}: timings.{key} is negative")
        if ("extract_fallback" in t
                and not isinstance(t["extract_fallback"], bool)):
            fail(f"{where}: timings.extract_fallback is not a bool")


def check_jsonl(path: str, min_records: int) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"cannot read {path}: {e}")

    if len(lines) < min_records:
        fail(f"{path}: expected >= {min_records} records, found {len(lines)}")

    prev_step, prev_time = None, None
    hwm_state = {}
    mem_records = 0
    timing_records = 0
    latency_records = 0
    for i, line in enumerate(lines, start=1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: not valid JSON: {e}")
        if not isinstance(rec, dict):
            fail(f"{path}:{i}: record is not a JSON object")
        for key in REQUIRED:
            if key not in rec:
                fail(f"{path}:{i}: missing required key \"{key}\"")
            v = rec[key]
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(f"{path}:{i}: \"{key}\" is not numeric: {v!r}")
            if not math.isfinite(v):
                fail(f"{path}:{i}: \"{key}\" is not finite: {v!r}")
        if prev_step is not None and rec["step"] <= prev_step:
            fail(f"{path}:{i}: step {rec['step']} not strictly increasing "
                 f"(previous {prev_step})")
        if prev_time is not None and rec["time"] < prev_time:
            fail(f"{path}:{i}: time {rec['time']} decreased "
                 f"(previous {prev_time})")
        if rec["dt"] <= 0:
            fail(f"{path}:{i}: dt {rec['dt']} is not positive")
        per_level = rec.get("per_level")
        if per_level is not None:
            if (not isinstance(per_level, list)
                    or any(not isinstance(n, int) or n < 0
                           for n in per_level)):
                fail(f"{path}:{i}: \"per_level\" is not a list of "
                     f"non-negative ints")
            if sum(per_level) != rec["elements"]:
                fail(f"{path}:{i}: per_level sums to {sum(per_level)}, "
                     f"elements says {rec['elements']}")
        if "memory" in rec:
            check_memory_block(rec["memory"], f"{path}:{i}", hwm_state)
            mem_records += 1
        if "timings" in rec:
            check_timings_block(rec["timings"], f"{path}:{i}")
            timing_records += 1
        if "latency" in rec:
            check_latency_block(rec["latency"], f"{path}:{i}")
            latency_records += 1
        prev_step, prev_time = rec["step"], rec["time"]

    print(f"check_telemetry: OK: {len(lines)} records in {path}, "
          f"steps {lines and json.loads(lines[0])['step']}..{prev_step}, "
          f"{mem_records} with memory blocks, "
          f"{timing_records} with timings blocks, "
          f"{latency_records} with latency blocks")


def check_bundle(dump_dir: str) -> None:
    if not os.path.isdir(dump_dir):
        fail(f"dump dir {dump_dir} does not exist")

    reason = os.path.join(dump_dir, "reason.txt")
    try:
        with open(reason, encoding="utf-8") as f:
            text = f.read().strip()
    except OSError as e:
        fail(f"cannot read {reason}: {e}")
    if not text:
        fail(f"{reason} is empty")

    for name in ("trace.json", "counters.json", "phases.json",
                 "residuals.json", "memory.json"):
        path = os.path.join(dump_dir, name)
        try:
            with open(path, encoding="utf-8") as f:
                json.load(f)
        except OSError as e:
            fail(f"cannot read {path}: {e}")
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")

    tail = os.path.join(dump_dir, "telemetry_tail.jsonl")
    try:
        with open(tail, encoding="utf-8") as f:
            tail_lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"cannot read {tail}: {e}")
    for i, line in enumerate(tail_lines, start=1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{tail}:{i}: not valid JSON: {e}")
        if not isinstance(rec, dict):
            fail(f"{tail}:{i}: record is not a JSON object")

    print(f"check_telemetry: OK: bundle in {dump_dir} "
          f"(reason: {text.splitlines()[0]!r}, "
          f"{len(tail_lines)} telemetry tail records)")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("jsonl", nargs="?", help="telemetry JSONL stream")
    ap.add_argument("--min-records", type=int, default=1,
                    help="minimum number of JSONL records expected")
    ap.add_argument("--dump-dir",
                    help="validate a flight-recorder bundle directory")
    args = ap.parse_args()

    if not args.jsonl and not args.dump_dir:
        fail("nothing to check: pass a JSONL file and/or --dump-dir")
    if args.jsonl:
        check_jsonl(args.jsonl, args.min_records)
    if args.dump_dir:
        check_bundle(args.dump_dir)


if __name__ == "__main__":
    main()
