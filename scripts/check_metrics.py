#!/usr/bin/env python3
"""Scrape and validate the live obs::serve metrics endpoint.

Launches rhea_main with ALPS_METRICS_PORT=0 (ephemeral port, parsed from
the "metrics: serving on port N" stdout line) and, while the run is still
stepping, asserts:

  * /metrics parses as Prometheus text exposition: every non-comment line
    is `name[{labels}] value`, every metric name is preceded by a # TYPE,
    gauge values are finite,
  * the alps_latency_seconds histogram exposes one series per phase with
    cumulative (monotone non-decreasing) bucket counts per series, a
    closing +Inf bucket equal to _count, and _sum / _count present —
    including series for the explicitly instrumented "fem.apply" and
    "amg.vcycle" phases,
  * alps_step increases monotonically across two scrapes,
  * /status is valid JSON whose eta_s and step_rate_per_s are finite
    (and positive) once the rate window has filled,
  * /healthz answers 200 while healthy.

With --nan, the run is started with nan_inject_step so the sentinels
trip; the script then polls /healthz until it observes the 503 (the
driver lingers for ALPS_METRICS_LINGER seconds before exiting 3 to make
this observable) and asserts the process exits with code 3.

Usage:
  check_metrics.py build/examples/rhea_main
  check_metrics.py build/examples/rhea_main --nan
"""

import argparse
import json
import math
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

METRIC_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")


def fail(msg: str) -> None:
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(port: int, path: str, timeout: float = 5.0) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=timeout) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()


def parse_exposition(text: str):
    """Parse Prometheus text exposition; returns {series: value} with the
    full name{labels} as the key, failing on any malformed line."""
    typed = set()
    series = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            # Arbitrary comments are legal; HELP/TYPE must be well-formed.
            if line.startswith(("# HELP", "# TYPE")):
                m = re.match(
                    r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) ", line)
                if not m:
                    fail(f"/metrics:{lineno}: malformed {line.split()[1]}: "
                         f"{line!r}")
                if m.group(1) == "TYPE":
                    typed.add(m.group(2))
            continue
        m = METRIC_LINE.match(line)
        if not m:
            fail(f"/metrics:{lineno}: malformed sample line: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            v = float(value)
        except ValueError:
            fail(f"/metrics:{lineno}: non-numeric value: {line!r}")
        if not math.isfinite(v):
            fail(f"/metrics:{lineno}: non-finite value: {line!r}")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            fail(f"/metrics:{lineno}: {name} has no preceding # TYPE")
        series[name + labels] = v
    return series


def check_histograms(series, required_phases) -> None:
    """Per-phase bucket series must be cumulative, close with +Inf equal
    to _count, and carry _sum; the required phases must be present."""
    by_phase = {}
    for key, v in series.items():
        m = re.match(
            r'^alps_latency_seconds_bucket\{phase="([^"]+)",le="([^"]+)"\}$',
            key)
        if m:
            by_phase.setdefault(m.group(1), []).append((m.group(2), v))
    for phase in required_phases:
        if phase not in by_phase:
            fail(f"no alps_latency_seconds series for phase {phase!r} "
                 f"(have {sorted(by_phase)})")
    for phase, buckets in by_phase.items():
        inf = [v for le, v in buckets if le == "+Inf"]
        if len(inf) != 1:
            fail(f"phase {phase!r}: expected exactly one +Inf bucket")
        finite = [(float(le), v) for le, v in buckets if le != "+Inf"]
        if not finite:
            fail(f"phase {phase!r}: no finite buckets")
        finite.sort()
        prev = 0.0
        for le, v in finite:
            if v < prev:
                fail(f"phase {phase!r}: bucket le={le} count {v} below "
                     f"previous {prev} (not cumulative)")
            prev = v
        if inf[0] < prev:
            fail(f"phase {phase!r}: +Inf bucket {inf[0]} below last "
                 f"finite bucket {prev}")
        count = series.get(f'alps_latency_seconds_count{{phase="{phase}"}}')
        if count is None:
            fail(f"phase {phase!r}: missing _count")
        if count != inf[0]:
            fail(f"phase {phase!r}: +Inf bucket {inf[0]} != _count {count}")
        total = series.get(f'alps_latency_seconds_sum{{phase="{phase}"}}')
        if total is None or total < 0:
            fail(f"phase {phase!r}: missing or negative _sum: {total}")


def wait_for_port(proc) -> int:
    for line in proc.stdout:
        sys.stdout.write(line)
        m = re.search(r"metrics: serving on port (\d+)", line)
        if m:
            return int(m.group(1))
    fail("rhea_main exited without printing the serving-port line")


def scrape_until_step(port: int, deadline: float):
    """Poll /metrics until a snapshot with alps_step appears."""
    while time.time() < deadline:
        status, text = get(port, "/metrics")
        if status != 200:
            fail(f"/metrics returned {status}")
        # Before the first publish the endpoint serves a bare
        # "no snapshot published yet" stub; only full snapshots are held
        # to the exposition-format checks.
        if "\nalps_step " in text or text.startswith("alps_step "):
            return parse_exposition(text)
        time.sleep(0.2)
    fail("no snapshot published before the deadline")


def run_healthy(binary: str, ranks: int, steps: int) -> None:
    cfg = tempfile.NamedTemporaryFile(
        "w", suffix=".cfg", prefix="check_metrics_", delete=False)
    cfg.write(f"ranks = {ranks}\nsteps = {steps}\n"
              f"target_elements = 1500\n")
    cfg.close()
    env = dict(os.environ, ALPS_METRICS_PORT="0")
    proc = subprocess.Popen([binary, cfg.name], stdout=subprocess.PIPE,
                            text=True, env=env)
    try:
        port = wait_for_port(proc)
        deadline = time.time() + 120
        first = scrape_until_step(port, deadline)
        check_histograms(first, ["fem.apply", "amg.vcycle"])
        step0 = first["alps_step"]
        if first.get("alps_up") != 1:
            fail(f"alps_up != 1: {first.get('alps_up')}")
        if first.get("alps_healthy") != 1:
            fail(f"alps_healthy != 1 on a healthy run")
        for g in ("alps_dofs", "alps_elements", "alps_ranks"):
            if first.get(g, 0) <= 0:
                fail(f"{g} not positive: {first.get(g)}")
        if first["alps_ranks"] != ranks:
            fail(f"alps_ranks {first['alps_ranks']} != {ranks}")

        status, body = get(port, "/healthz")
        if status != 200:
            fail(f"/healthz returned {status} on a healthy run")

        # The step counter must move between scrapes; wait for progress.
        step1 = step0
        while time.time() < deadline and step1 <= step0:
            time.sleep(0.3)
            later = scrape_until_step(port, deadline)
            step1 = later["alps_step"]
            if step1 < step0:
                fail(f"alps_step went backwards: {step0} -> {step1}")
        if step1 <= step0:
            fail(f"alps_step never advanced past {step0}")
        check_histograms(later, ["fem.apply", "amg.vcycle"])

        status, body = get(port, "/status")
        if status != 200:
            fail(f"/status returned {status}")
        st = json.loads(body)
        for key in ("step", "elements", "dofs", "eta_s",
                    "step_rate_per_s", "target_steps"):
            if key not in st:
                fail(f"/status missing {key!r}")
        # Two publishes have happened by now, so the rate window is live.
        for key in ("eta_s", "step_rate_per_s"):
            v = st[key]
            if v is None or not isinstance(v, (int, float)) \
                    or not math.isfinite(v) or v < 0:
                fail(f"/status {key} not a finite non-negative number: {v!r}")
        if st["target_steps"] != steps:
            fail(f"/status target_steps {st['target_steps']} != {steps}")
        if not st["healthy"]:
            fail("/status healthy is false on a healthy run")
    finally:
        rc = proc.wait(timeout=300)
        os.unlink(cfg.name)
    if rc != 0:
        fail(f"rhea_main exited with {rc}")
    print(f"check_metrics: OK: scraped live run on port {port}, "
          f"step {step0:g} -> {step1:g}, eta_s = {st['eta_s']:.3g}, "
          f"{sum(1 for k in first if k.startswith('alps_latency_seconds_count'))}"
          f" histogram phases")


def run_nan(binary: str, ranks: int) -> None:
    cfg = tempfile.NamedTemporaryFile(
        "w", suffix=".cfg", prefix="check_metrics_nan_", delete=False)
    cfg.write(f"ranks = {ranks}\nsteps = 10\ntarget_elements = 800\n"
              f"nan_inject_step = 3\n")
    cfg.close()
    dump = tempfile.mkdtemp(prefix="check_metrics_dump_")
    env = dict(os.environ, ALPS_METRICS_PORT="0", ALPS_METRICS_LINGER="6",
               ALPS_DUMP_DIR=dump)
    proc = subprocess.Popen([binary, cfg.name], stdout=subprocess.PIPE,
                            text=True, env=env)
    try:
        port = wait_for_port(proc)
        saw_503 = None
        deadline = time.time() + 120
        while time.time() < deadline and proc.poll() is None:
            try:
                status, body = get(port, "/healthz", timeout=2)
            except OSError:
                break  # server already gone: too late this poll
            if status == 503:
                saw_503 = body.strip()
                break
            if status != 200:
                fail(f"/healthz returned {status}")
            time.sleep(0.2)
        if saw_503 is None:
            fail("never observed /healthz 503 after NaN injection")
        if "unhealthy" not in saw_503:
            fail(f"503 body lacks a reason: {saw_503!r}")
    finally:
        rc = proc.wait(timeout=300)
        os.unlink(cfg.name)
    if rc != 3:
        fail(f"expected sentinel exit code 3, got {rc}")
    print(f"check_metrics: OK: /healthz flipped to 503 ({saw_503!r}) "
          f"and the driver exited 3")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to rhea_main")
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--steps", type=int, default=10)
    ap.add_argument("--nan", action="store_true",
                    help="NaN-injection mode: assert /healthz goes 503")
    args = ap.parse_args()
    if args.nan:
        run_nan(args.binary, args.ranks)
    else:
        run_healthy(args.binary, args.ranks, args.steps)


if __name__ == "__main__":
    main()
