#!/usr/bin/env python3
"""Gate the AMG setup-cost scaling recorded by bench_amg_setup.

The two-pass Galerkin setup is linear in nnz, so the per-nonzero setup
cost must stay flat as the problem grows. This script fails (exit 1)
when the highest-level setup_ns_per_nnz exceeds --max-ratio times the
lowest-level value, which is how CI catches a superlinear regression
(e.g. reintroducing a scan or a per-entry hash map on the setup path).
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", nargs="?", default="BENCH_amg_setup.json",
                    help="bench output file (default: BENCH_amg_setup.json)")
    ap.add_argument("--max-ratio", type=float, default=3.0,
                    help="highest-vs-lowest level setup_ns_per_nnz bound")
    args = ap.parse_args()

    try:
        with open(args.bench_json, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {args.bench_json}: {e}")
        return 1

    cases = [c for c in data.get("cases", [])
             if "setup_ns_per_nnz" in c and "level" in c]
    if len(cases) < 2:
        print(f"check_bench: need at least two levels in {args.bench_json}, "
              f"got {len(cases)}")
        return 1

    lo = min(cases, key=lambda c: c["level"])
    hi = max(cases, key=lambda c: c["level"])
    if lo["setup_ns_per_nnz"] <= 0:
        print("check_bench: lowest-level setup_ns_per_nnz is not positive")
        return 1
    ratio = hi["setup_ns_per_nnz"] / lo["setup_ns_per_nnz"]

    for c in sorted(cases, key=lambda c: c["level"]):
        print(f"  level {c['level']}: {c['setup_ns_per_nnz']:.1f} ns/nnz "
              f"(n_dof={c.get('n_dof', '?')}, setup={c.get('setup_s', 0):.3f}s, "
              f"refresh/setup={c.get('refresh_over_setup', 0):.3f})")
    verdict = "PASS" if ratio <= args.max_ratio else "FAIL"
    print(f"check_bench: level {hi['level']} vs level {lo['level']} "
          f"setup_ns_per_nnz ratio = {ratio:.2f} "
          f"(max allowed {args.max_ratio:.2f}): {verdict}")
    return 0 if ratio <= args.max_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
