#!/usr/bin/env python3
"""Gate machine-readable BENCH_*.json results in CI.

Two schemas are understood, detected from the file contents:

bench_amg_setup (cases[].setup_ns_per_nnz): the two-pass Galerkin setup
is linear in nnz, so the per-nonzero setup cost must stay flat as the
problem grows. Fails when the highest-level setup_ns_per_nnz exceeds
--max-ratio times the lowest-level value, which is how CI catches a
superlinear regression (e.g. reintroducing a scan or a per-entry hash
map on the setup path).

bench_apply (cases[].speedup + solvers[]): the batched SoA apply must
beat the scalar reference by --min-speedup on its best case (the
Stokes-shaped 4-component operator) with no case regressing below 1x
by more than the noise floor; the reduced-synchronization Krylov loops
must issue at most --max-sync reductions per iteration and the fused
multi-value reductions must not change iteration counts by more than
--max-iter-delta versus one-reduction-per-dot.

bench_amr (cases[].extract_speedup): the hashed mesh extraction must
beat the per-corner reference by --min-extract-speedup at the largest
problem size; every case on which no repartition happened must reuse a
strictly positive fraction of elements via the incremental path
(> --min-reuse) without falling back; and the reported AMR share of
the full step time must be finite.

bench_memory (cases[].bytes_per_dof): accounted memory per dof must not
grow with refinement level — the paper's memory-per-core-bounded claim.
Fails when the highest level's bytes/dof exceeds --max-mem-ratio times
the lowest level's, for the total and for every subsystem that carries
at least --min-mem-share of the highest level's footprint (fixed-size
overheads like the obs ring buffers legitimately shrink per dof, and
surface terms like mesh.halo shrink too; only growth is a leak).
"""

import argparse
import json
import sys


def check_amg_setup(data, args) -> int:
    cases = [c for c in data.get("cases", [])
             if "setup_ns_per_nnz" in c and "level" in c]
    if len(cases) < 2:
        print(f"check_bench: need at least two levels, got {len(cases)}")
        return 1

    lo = min(cases, key=lambda c: c["level"])
    hi = max(cases, key=lambda c: c["level"])
    if lo["setup_ns_per_nnz"] <= 0:
        print("check_bench: lowest-level setup_ns_per_nnz is not positive")
        return 1
    ratio = hi["setup_ns_per_nnz"] / lo["setup_ns_per_nnz"]

    for c in sorted(cases, key=lambda c: c["level"]):
        print(f"  level {c['level']}: {c['setup_ns_per_nnz']:.1f} ns/nnz "
              f"(n_dof={c.get('n_dof', '?')}, setup={c.get('setup_s', 0):.3f}s, "
              f"refresh/setup={c.get('refresh_over_setup', 0):.3f})")
    verdict = "PASS" if ratio <= args.max_ratio else "FAIL"
    print(f"check_bench: level {hi['level']} vs level {lo['level']} "
          f"setup_ns_per_nnz ratio = {ratio:.2f} "
          f"(max allowed {args.max_ratio:.2f}): {verdict}")
    return 0 if ratio <= args.max_ratio else 1


def check_apply(data, args) -> int:
    ok = True
    cases = [c for c in data.get("cases", []) if "speedup" in c]
    if not cases:
        print("check_bench: no apply cases found")
        return 1
    for c in cases:
        print(f"  ncomp={c.get('ncomp', '?')}: scalar "
              f"{c.get('scalar_ns_per_element', 0):.1f} ns/el, batched "
              f"{c.get('batched_ns_per_element', 0):.1f} ns/el, "
              f"speedup {c['speedup']:.2f}x")
        if c["speedup"] < args.min_case_speedup:
            print(f"check_bench: FAIL ncomp={c.get('ncomp', '?')} regressed "
                  f"below {args.min_case_speedup:.2f}x")
            ok = False
    best = max(c["speedup"] for c in cases)
    verdict = "PASS" if best >= args.min_speedup else "FAIL"
    print(f"check_bench: best apply speedup = {best:.2f}x "
          f"(min required {args.min_speedup:.2f}): {verdict}")
    ok = ok and best >= args.min_speedup

    solvers = data.get("solvers", [])
    if not solvers:
        print("check_bench: FAIL no solver sync records")
        return 1
    for s in solvers:
        name = s.get("solver", "?")
        per = s.get("sync_per_iter", 1e9)
        delta = abs(s.get("iters_fused", 0) - s.get("iters_reference", 0))
        line_ok = per <= args.max_sync and delta <= args.max_iter_delta
        print(f"  {name}: {s.get('iters_fused', '?')} iters, "
              f"{per:.3f} syncs/iter (max {args.max_sync:.1f}), "
              f"fused-vs-reference iteration delta {delta} "
              f"(max {args.max_iter_delta}): "
              f"{'PASS' if line_ok else 'FAIL'}")
        ok = ok and line_ok
    return 0 if ok else 1


def check_amr(data, args) -> int:
    import math

    cases = [c for c in data.get("cases", [])
             if "extract_speedup" in c and "level" in c]
    if not cases:
        print("check_bench: no amr cases found")
        return 1
    cases.sort(key=lambda c: c["level"])
    ok = True
    for c in cases:
        print(f"  level {c['level']}: reference "
              f"{c.get('reference_s', 0) * 1e3:.1f} ms, hashed "
              f"{c.get('hashed_s', 0) * 1e3:.1f} ms, speedup "
              f"{c['extract_speedup']:.2f}x "
              f"(elements={c.get('elements', '?')})")
        if "reuse_fraction" in c:
            rf = c["reuse_fraction"]
            repart = c.get("repartitioned", False)
            fb = c.get("fallback", False)
            print(f"    incremental: {c.get('incremental_s', 0) * 1e3:.1f} ms,"
                  f" reuse {rf:.1%}, repartitioned={repart}, fallback={fb}")
            if not repart:
                if fb:
                    print(f"check_bench: FAIL level {c['level']}: incremental "
                          f"path fell back without a repartition")
                    ok = False
                if rf <= args.min_reuse:
                    print(f"check_bench: FAIL level {c['level']}: reuse "
                          f"fraction {rf:.3f} not above {args.min_reuse:.3f} "
                          f"on a non-repartitioning adapt")
                    ok = False

    top = cases[-1]
    verdict = "PASS" if top["extract_speedup"] >= args.min_extract_speedup \
        else "FAIL"
    print(f"check_bench: level {top['level']} extract speedup = "
          f"{top['extract_speedup']:.2f}x "
          f"(min required {args.min_extract_speedup:.2f}): {verdict}")
    ok = ok and top["extract_speedup"] >= args.min_extract_speedup

    share = data.get("amr_share")
    if isinstance(share, dict):
        s = share.get("share")
        if not isinstance(s, (int, float)) or not math.isfinite(s):
            print(f"check_bench: FAIL amr_share.share not finite: {s!r}")
            ok = False
        else:
            print(f"check_bench: AMR share of step time = {s:.1%} "
                  f"(amr {share.get('amr_s', 0):.3f}s of "
                  f"{share.get('step_s', 0):.3f}s)")
    else:
        print("check_bench: FAIL missing amr_share block")
        ok = False
    return 0 if ok else 1


def check_memory(data, args) -> int:
    cases = [c for c in data.get("cases", [])
             if "bytes_per_dof" in c and "level" in c]
    if len(cases) < 2:
        print(f"check_bench: need at least two levels, got {len(cases)}")
        return 1
    cases.sort(key=lambda c: c["level"])
    ok = True
    for c in cases:
        if c.get("n_dof", 0) <= 0 or c.get("accounted_bytes", 0) <= 0:
            print(f"check_bench: FAIL level {c['level']}: empty accounting "
                  f"(n_dof={c.get('n_dof')}, "
                  f"accounted_bytes={c.get('accounted_bytes')})")
            ok = False
        print(f"  level {c['level']}: {c['bytes_per_dof']:.1f} bytes/dof "
              f"(n_dof={c.get('n_dof', '?')}, "
              f"accounted={c.get('accounted_bytes', 0)}, "
              f"imbalance={c.get('imbalance', 0):.3f})")

    lo, hi = cases[0], cases[-1]
    if lo["bytes_per_dof"] <= 0:
        print("check_bench: lowest-level bytes_per_dof is not positive")
        return 1
    ratio = hi["bytes_per_dof"] / lo["bytes_per_dof"]
    verdict = "PASS" if ratio <= args.max_mem_ratio else "FAIL"
    print(f"check_bench: level {hi['level']} vs level {lo['level']} total "
          f"bytes/dof ratio = {ratio:.2f} "
          f"(max allowed {args.max_mem_ratio:.2f}): {verdict}")
    ok = ok and ratio <= args.max_mem_ratio

    def sub_bpd(case):
        return {s["name"]: s.get("bytes_per_dof", 0.0)
                for s in case.get("subsystems", [])}

    hi_total = sum(s.get("bytes", 0) for s in hi.get("subsystems", []))
    lo_sub, hi_sub = sub_bpd(lo), sub_bpd(hi)
    for s in hi.get("subsystems", []):
        name = s["name"]
        share = s.get("bytes", 0) / hi_total if hi_total > 0 else 0.0
        if share < args.min_mem_share:
            continue  # too small to gate; noise and fixed overheads
        if name not in lo_sub or lo_sub[name] <= 0:
            print(f"  subsystem {name}: new at level {hi['level']} "
                  f"({share:.0%} share) — no baseline, skipped")
            continue
        r = hi_sub[name] / lo_sub[name]
        line_ok = r <= args.max_mem_ratio
        print(f"  subsystem {name}: {lo_sub[name]:.1f} -> "
              f"{hi_sub[name]:.1f} bytes/dof, ratio {r:.2f} "
              f"({share:.0%} of footprint): "
              f"{'PASS' if line_ok else 'FAIL'}")
        ok = ok and line_ok
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", nargs="?", default="BENCH_amg_setup.json",
                    help="bench output file (default: BENCH_amg_setup.json)")
    ap.add_argument("--max-ratio", type=float, default=3.0,
                    help="amg_setup: highest-vs-lowest level ns/nnz bound")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="apply: required best-case batched-vs-scalar speedup")
    ap.add_argument("--min-case-speedup", type=float, default=0.9,
                    help="apply: per-case floor (no real regression; 0.9 "
                    "leaves room for timer noise on small operators)")
    ap.add_argument("--max-sync", type=float, default=2.0,
                    help="apply: max Krylov synchronization rounds per "
                    "iteration")
    ap.add_argument("--max-iter-delta", type=int, default=2,
                    help="apply: max fused-vs-reference iteration count "
                    "difference")
    ap.add_argument("--max-mem-ratio", type=float, default=1.5,
                    help="memory: highest-vs-lowest level bytes/dof bound")
    ap.add_argument("--min-mem-share", type=float, default=0.05,
                    help="memory: minimum share of the highest level's "
                    "footprint for a subsystem to be gated")
    ap.add_argument("--min-extract-speedup", type=float, default=2.0,
                    help="amr: required hashed-vs-reference extraction "
                    "speedup at the largest level")
    ap.add_argument("--min-reuse", type=float, default=0.0,
                    help="amr: reuse fraction on non-repartitioning adapts "
                    "must be strictly above this")
    args = ap.parse_args()

    try:
        with open(args.bench_json, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {args.bench_json}: {e}")
        return 1

    cases = data.get("cases", [])
    if any("extract_speedup" in c for c in cases):
        return check_amr(data, args)
    if any("speedup" in c for c in cases):
        return check_apply(data, args)
    if any("setup_ns_per_nnz" in c for c in cases):
        return check_amg_setup(data, args)
    if any("bytes_per_dof" in c for c in cases):
        return check_memory(data, args)
    print(f"check_bench: unrecognized schema in {args.bench_json}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
