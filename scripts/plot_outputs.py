#!/usr/bin/env python3
"""Plot the CSV snapshots written by the examples, or the per-step
wait-state / critical-path time-series from a telemetry JSONL stream.

Usage:
  python3 scripts/plot_outputs.py mantle_slice_2.csv      # x-z temperature slice
  python3 scripts/plot_outputs.py sphere_front_1.csv      # 3D scatter of the front
  python3 scripts/plot_outputs.py alps_telemetry.jsonl    # analysis time-series
  python3 scripts/plot_outputs.py run_dir/                # every *.jsonl inside

Requires matplotlib. The examples write these files into the current
working directory:
  mantle_slice_<n>.csv   columns x,z,T,eta   (examples/mantle_convection)
  sphere_front_<n>.csv   columns x,y,z,c     (examples/spherical_advection)

Telemetry mode reads the JSONL written with ALPS_TELEMETRY=1 (rhea runs
embed "critical_path" and "wait_states" blocks when ALPS_ANALYSIS is on,
the default) and renders one PNG per input file: per-phase critical-path
imbalance over steps on top, stacked wait-state buckets (late-sender /
transfer / collective) per phase over steps below.

Records with a "memory" block (ALPS_MEM on, the default) additionally get
a <base>_memory.png: per-subsystem accounted bytes stacked over steps on
top, accounted total / HWM and RSS / RSS-HWM time-series below.

Records with a "timings" block additionally get a <base>_amr.png: the
AMR cycle phases (mark / coarsen+refine / balance / partition / extract /
interpolate / transfer) stacked per step on top, and the AMR share of
the total step time below (adaptation steps marked).

Records with a "latency" block (the per-step cross-rank histogram
quantiles, DESIGN.md section 14) additionally get a <base>_latency.png:
per-phase p50 / p95 / p99 duration time-series over steps, log-scaled,
one subplot column of the busiest phases.
"""

import csv
import json
import os
import sys


def load(path):
    with open(path) as f:
        reader = csv.reader(f)
        header = next(reader)
        cols = {name: [] for name in header}
        for row in reader:
            for name, val in zip(header, row):
                cols[name].append(float(val))
    return cols


def load_telemetry(path):
    """Per-step analysis series: (steps, {phase: [imbalance]},
    {phase: {bucket: [seconds]}}). Missing phases carry 0 for that step."""
    steps = []
    imb = {}
    waits = {}
    buckets = ("late_sender_s", "transfer_s", "collective_s")
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "step" not in rec or "critical_path" not in rec:
                continue
            steps.append(rec["step"])
            n = len(steps)
            for ph in rec["critical_path"].get("phases", []):
                series = imb.setdefault(ph["phase"], [])
                series.extend([1.0] * (n - 1 - len(series)))
                series.append(ph["imbalance"])
            for ph in rec.get("wait_states", {}).get("phases", []):
                per = waits.setdefault(ph["phase"],
                                       {b: [] for b in buckets})
                for b in buckets:
                    per[b].extend([0.0] * (n - 1 - len(per[b])))
                    per[b].append(ph.get(b, 0.0))
    # pad trailing steps where a phase went missing
    for series in imb.values():
        series.extend([1.0] * (len(steps) - len(series)))
    for per in waits.values():
        for b in buckets:
            per[b].extend([0.0] * (len(steps) - len(per[b])))
    return steps, imb, waits


def plot_telemetry(path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    steps, imb, waits = load_telemetry(path)
    if not steps:
        print(f"skip {path}: no analyzed step records")
        return None

    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(10, 8), sharex=True)
    for phase, series in sorted(imb.items()):
        ax1.plot(steps, series, marker=".", label=phase)
    ax1.set_ylabel("critical-path imbalance (max/mean)")
    ax1.set_title(os.path.basename(path))
    ax1.axhline(1.0, color="grey", lw=0.5)
    if imb:
        ax1.legend(fontsize=7, ncol=2)

    # one stacked band per phase: total blocked time split into buckets
    labels = {"late_sender_s": "late sender", "transfer_s": "transfer",
              "collective_s": "collective"}
    plotted = False
    for phase, per in sorted(waits.items()):
        total = [sum(per[b][i] for b in per) for i in range(len(steps))]
        if max(total, default=0.0) <= 0.0:
            continue
        bottom = [0.0] * len(steps)
        for b in ("late_sender_s", "transfer_s", "collective_s"):
            top = [bottom[i] + per[b][i] for i in range(len(steps))]
            ax2.fill_between(steps, bottom, top, alpha=0.5,
                             label=f"{phase}: {labels[b]}")
            bottom = top
        plotted = True
    ax2.set_xlabel("step")
    ax2.set_ylabel("blocked time per step [s]")
    if plotted:
        ax2.legend(fontsize=7, ncol=2)

    out = path.rsplit(".", 1)[0] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)
    print(f"wrote {out}")
    return out


def load_memory(path):
    """Per-step memory series: (steps, {subsystem: [bytes]}, series dict
    with accounted/hwm/rss/rss_hwm lists; None entries where absent)."""
    steps = []
    subs = {}
    series = {"accounted": [], "acc_hwm": [], "rss": [], "rss_hwm": []}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            mem = rec.get("memory")
            if "step" not in rec or not isinstance(mem, dict) \
                    or not mem.get("available"):
                continue
            steps.append(rec["step"])
            n = len(steps)
            for s in mem.get("subsystems", []):
                col = subs.setdefault(s["name"], [])
                col.extend([0] * (n - 1 - len(col)))
                col.append(s.get("bytes", 0))
            acc = mem.get("accounted", {})
            series["accounted"].append(acc.get("total_bytes"))
            series["acc_hwm"].append(acc.get("hwm_bytes"))
            rss = mem.get("rss", {})
            ok = rss.get("available")
            series["rss"].append(rss.get("max_bytes") if ok else None)
            series["rss_hwm"].append(rss.get("hwm_bytes") if ok else None)
    for col in subs.values():
        col.extend([0] * (len(steps) - len(col)))
    return steps, subs, series


def plot_memory(path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    steps, subs, series = load_memory(path)
    if not steps:
        print(f"skip {path}: no memory records")
        return None

    mib = 1.0 / (1 << 20)
    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(10, 8), sharex=True)
    bottom = [0.0] * len(steps)
    for name, col in sorted(subs.items(),
                            key=lambda kv: -max(kv[1], default=0)):
        top = [bottom[i] + col[i] * mib for i in range(len(steps))]
        ax1.fill_between(steps, bottom, top, alpha=0.6, label=name)
        bottom = top
    ax1.set_ylabel("accounted bytes per subsystem [MiB]")
    ax1.set_title(os.path.basename(path))
    if subs:
        ax1.legend(fontsize=7, ncol=2)

    styles = {"accounted": ("accounted total", "-"),
              "acc_hwm": ("accounted HWM", "--"),
              "rss": ("RSS (max rank)", "-"),
              "rss_hwm": ("RSS HWM", "--")}
    for key, (label, ls) in styles.items():
        pts = [(s, v * mib) for s, v in zip(steps, series[key])
               if isinstance(v, (int, float))]
        if pts:
            ax2.plot([p[0] for p in pts], [p[1] for p in pts],
                     ls, marker=".", label=label)
    ax2.set_xlabel("step")
    ax2.set_ylabel("bytes [MiB]")
    ax2.legend(fontsize=8)

    out = path.rsplit(".", 1)[0] + "_memory.png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)
    print(f"wrote {out}")
    return out


AMR_PHASES = ["mark", "coarsen_refine", "balance", "partition", "extract",
              "interpolate", "transfer"]


def load_amr(path):
    """Per-step AMR timing series from "timings" blocks: (steps,
    {phase: [seconds]}, [amr share of step], [adapted flags])."""
    steps = []
    phases = {ph: [] for ph in AMR_PHASES}
    share = []
    adapted = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            t = rec.get("timings")
            if "step" not in rec or not isinstance(t, dict):
                continue
            steps.append(rec["step"])
            amr = 0.0
            for ph in AMR_PHASES:
                v = t.get(ph, 0.0)
                phases[ph].append(v)
                amr += v
            total = amr + t.get("time_integration", 0.0) + t.get("stokes", 0.0)
            share.append(amr / total if total > 0 else 0.0)
            adapted.append(bool(t.get("adapted")))
    return steps, phases, share, adapted


def plot_amr(path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    steps, phases, share, adapted = load_amr(path)
    if not steps:
        print(f"skip {path}: no timings records")
        return None

    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(10, 8), sharex=True)
    bottom = [0.0] * len(steps)
    for ph in AMR_PHASES:
        col = phases[ph]
        top = [bottom[i] + col[i] for i in range(len(steps))]
        ax1.fill_between(steps, bottom, top, alpha=0.6, label=ph, step="mid")
        bottom = top
    ax1.set_ylabel("AMR phase seconds per step")
    ax1.set_title(os.path.basename(path))
    ax1.legend(fontsize=7, ncol=2)

    ax2.plot(steps, [s * 100 for s in share], marker=".", lw=1)
    for s, sh, ad in zip(steps, share, adapted):
        if ad:
            ax2.axvline(s, color="grey", lw=0.5, alpha=0.5)
    ax2.set_xlabel("step")
    ax2.set_ylabel("AMR share of step time [%]")
    ax2.set_ylim(bottom=0)

    out = path.rsplit(".", 1)[0] + "_amr.png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)
    print(f"wrote {out}")
    return out


def load_latency(path):
    """Per-step latency quantile series: (steps, {phase: {q: [seconds]}},
    {phase: total count}). Missing phases carry None for that step."""
    steps = []
    phases = {}
    counts = {}
    qkeys = ("p50_s", "p95_s", "p99_s")
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            lat = rec.get("latency")
            if "step" not in rec or not isinstance(lat, dict):
                continue
            steps.append(rec["step"])
            n = len(steps)
            for ph in lat.get("phases", []):
                per = phases.setdefault(ph["phase"],
                                        {q: [] for q in qkeys})
                for q in qkeys:
                    per[q].extend([None] * (n - 1 - len(per[q])))
                    per[q].append(ph.get(q))
                counts[ph["phase"]] = counts.get(ph["phase"], 0)                     + ph.get("count", 0)
    for per in phases.values():
        for q in per:
            per[q].extend([None] * (len(steps) - len(per[q])))
    return steps, phases, counts


def plot_latency(path, max_phases=8):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    steps, phases, counts = load_latency(path)
    if not steps:
        print(f"skip {path}: no latency records")
        return None

    # The busiest phases tell the story; cap the subplot count.
    names = sorted(phases, key=lambda ph: -counts.get(ph, 0))[:max_phases]
    fig, axes = plt.subplots(len(names), 1, figsize=(10, 2.2 * len(names)),
                             sharex=True, squeeze=False)
    styles = {"p50_s": ("p50", "-"), "p95_s": ("p95", "--"),
              "p99_s": ("p99", ":")}
    for ax, name in zip((a for row in axes for a in row), names):
        per = phases[name]
        for q, (label, ls) in styles.items():
            pts = [(s, v) for s, v in zip(steps, per[q])
                   if isinstance(v, (int, float)) and v > 0]
            if pts:
                ax.plot([p[0] for p in pts], [p[1] for p in pts], ls,
                        marker=".", ms=3, lw=1, label=label)
        ax.set_yscale("log")
        ax.set_ylabel(f"{name}\n[s]", fontsize=8)
        ax.legend(fontsize=7, loc="upper right", ncol=3)
    axes[0][0].set_title(os.path.basename(path))
    axes[-1][0].set_xlabel("step")

    out = path.rsplit(".", 1)[0] + "_latency.png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)
    print(f"wrote {out}")
    return out


def plot_csv(path, cols):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    out = path.rsplit(".", 1)[0] + ".png"
    if "T" in cols:  # mantle slice
        fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(14, 4))
        s1 = ax1.scatter(cols["x"], cols["z"], c=cols["T"], s=12, cmap="inferno")
        fig.colorbar(s1, ax=ax1, label="T")
        ax1.set_title("temperature")
        import math

        logeta = [math.log10(v) for v in cols["eta"]]
        s2 = ax2.scatter(cols["x"], cols["z"], c=logeta, s=12, cmap="viridis")
        fig.colorbar(s2, ax=ax2, label="log10 eta")
        ax2.set_title("viscosity")
        for ax in (ax1, ax2):
            ax.set_xlabel("x")
            ax.set_ylabel("z")
    else:  # spherical front
        fig = plt.figure(figsize=(6, 6))
        ax = fig.add_subplot(projection="3d")
        s = ax.scatter(cols["x"], cols["y"], cols["z"], c=cols["c"], s=10,
                       cmap="inferno")
        fig.colorbar(s, ax=ax, label="c")
        ax.set_title("advected front on the spherical shell")
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    path = sys.argv[1]
    if os.path.isdir(path):
        made = 0
        for name in sorted(os.listdir(path)):
            if name.endswith(".jsonl"):
                full = os.path.join(path, name)
                if plot_telemetry(full):
                    made += 1
                if plot_memory(full):
                    made += 1
                if plot_amr(full):
                    made += 1
                if plot_latency(full):
                    made += 1
        if made == 0:
            print(f"no telemetry JSONL with analyzed steps under {path}")
            return 1
        return 0
    if path.endswith(".jsonl"):
        made = 1 if plot_telemetry(path) else 0
        made += 1 if plot_memory(path) else 0
        made += 1 if plot_amr(path) else 0
        made += 1 if plot_latency(path) else 0
        return 0 if made else 1
    plot_csv(path, load(path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
