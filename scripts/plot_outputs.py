#!/usr/bin/env python3
"""Plot the CSV snapshots written by the examples.

Usage:
  python3 scripts/plot_outputs.py mantle_slice_2.csv      # x-z temperature slice
  python3 scripts/plot_outputs.py sphere_front_1.csv      # 3D scatter of the front

Requires matplotlib. The examples write these files into the current
working directory:
  mantle_slice_<n>.csv   columns x,z,T,eta   (examples/mantle_convection)
  sphere_front_<n>.csv   columns x,y,z,c     (examples/spherical_advection)
"""

import csv
import sys


def load(path):
    with open(path) as f:
        reader = csv.reader(f)
        header = next(reader)
        cols = {name: [] for name in header}
        for row in reader:
            for name, val in zip(header, row):
                cols[name].append(float(val))
    return cols


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    path = sys.argv[1]
    cols = load(path)
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    out = path.rsplit(".", 1)[0] + ".png"
    if "T" in cols:  # mantle slice
        fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(14, 4))
        s1 = ax1.scatter(cols["x"], cols["z"], c=cols["T"], s=12, cmap="inferno")
        fig.colorbar(s1, ax=ax1, label="T")
        ax1.set_title("temperature")
        import math

        logeta = [math.log10(v) for v in cols["eta"]]
        s2 = ax2.scatter(cols["x"], cols["z"], c=logeta, s=12, cmap="viridis")
        fig.colorbar(s2, ax=ax2, label="log10 eta")
        ax2.set_title("viscosity")
        for ax in (ax1, ax2):
            ax.set_xlabel("x")
            ax.set_ylabel("z")
    else:  # spherical front
        fig = plt.figure(figsize=(6, 6))
        ax = fig.add_subplot(projection="3d")
        s = ax.scatter(cols["x"], cols["y"], cols["z"], c=cols["c"], s=10,
                       cmap="inferno")
        fig.colorbar(s, ax=ax, label="c")
        ax.set_title("advected front on the spherical shell")
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
